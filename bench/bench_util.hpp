// Shared helpers for the PM2 benchmark drivers.
//
// The distributed experiments (migration latency, allocation sweeps,
// negotiation scaling) are end-to-end protocol measurements; they run a real
// multi-node session and print the same rows/series the paper reports, so
// the output of each binary regenerates the corresponding table/figure.
// Micro-measurements (context switch, thread create) use google-benchmark.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace pm2::bench {

/// Simple aligned table printer: print_header({"size", "malloc_us", ...}).
inline void print_header(const std::string& title,
                         const std::vector<std::string>& cols) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "---------");
  std::printf("\n");
}

inline void print_cell(double v) { std::printf("%16.2f", v); }
inline void print_cell(uint64_t v) { std::printf("%16" PRIu64, v); }
inline void print_cell(const char* v) { std::printf("%16s", v); }
inline void print_row_end() { std::printf("\n"); }

/// Measure the wall-clock of `fn` in microseconds.
template <typename Fn>
double time_us(Fn&& fn) {
  Stopwatch sw;
  fn();
  return sw.elapsed_us();
}

}  // namespace pm2::bench
