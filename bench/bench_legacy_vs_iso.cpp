// E6 — Iso-address migration vs the legacy registered-pointer scheme
// (paper §2, Figs. 2–3; the comparison that motivates isomalloc).
//
// Two tables:
//   1. Post-migration processing cost of the legacy scheme as a function of
//      the number of registered pointers and stack depth — the work that
//      iso-addressing removes entirely (its fix-up cost is identically 0).
//   2. End-to-end one-way migration: iso ping-pong vs legacy
//      relocate-and-resume (same stack sizes).
#include <malloc.h>
#include <cstring>
#include <vector>

#include <atomic>
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/legacy_migration.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

// --- legacy fixture -----------------------------------------------------------

struct LegacyParams {
  int n_pointers;
  int depth;
};

LegacyParams g_params;

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winfinite-recursion"  // parks forever at
                                                       // depth 0 by design
void legacy_body_rec(legacy::LegacyThread& self, int depth,
                     std::vector<uint32_t>& keys) {
  volatile int frame_local = depth;
  if (depth > 0) {
    legacy_body_rec(self, depth - 1, keys);
    (void)frame_local;
    return;
  }
  // Register n pointers to locals spread across a buffer.
  constexpr int kMax = 4096;
  static thread_local int* ptrs[kMax];
  int values[kMax / 4];
  int n = g_params.n_pointers;
  for (int i = 0; i < n; ++i) {
    ptrs[i] = &values[i % (kMax / 4)];
    keys.push_back(self.register_pointer(reinterpret_cast<void**>(&ptrs[i])));
  }
  while (true) self.yield();  // relocations happen while parked here
}
#pragma GCC diagnostic pop

void legacy_body(legacy::LegacyThread& self, void* arg) {
  auto* keys = static_cast<std::vector<uint32_t>*>(arg);
  legacy_body_rec(self, g_params.depth, *keys);
}

double measure_legacy_fixup_us(int n_pointers, int depth, int iters) {
  g_params = {n_pointers, depth};
  std::vector<uint32_t> keys;
  legacy::LegacyThread t(256 * 1024, &legacy_body, &keys);
  t.resume();  // runs to the yield with everything registered
  // Warm-up: the first relocations pay allocator page faults for fresh
  // stack regions; steady state cycles through already-faulted memory,
  // which is the regime where the patching cost is visible.
  for (int i = 0; i < 50; ++i) t.relocate();
  Stopwatch sw;
  for (int i = 0; i < iters; ++i) t.relocate();
  return sw.elapsed_us() / iters;
}

// --- iso side -----------------------------------------------------------------

std::atomic<uint64_t> g_iso_total_ns{0};
std::atomic<uint64_t> g_iso_rounds{0};
std::atomic<uint64_t> g_iso_copy_bytes{0};

void iso_ping_worker(void*) {
  const auto rounds = static_cast<int>(g_iso_rounds.load());
  pm2_migrate(marcel_self(), 1);
  pm2_migrate(marcel_self(), 0);
  Stopwatch sw;
  for (int r = 0; r < rounds; ++r) {
    pm2_migrate(marcel_self(), 1);
    pm2_migrate(marcel_self(), 0);
  }
  g_iso_total_ns = sw.elapsed_ns();
  pm2_signal(0);
}

double measure_iso_one_way_us(uint32_t rounds, bool socket_fabric) {
  g_iso_rounds = rounds;
  g_iso_copy_bytes = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.socket_fabric = socket_fabric;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&iso_ping_worker, nullptr, "iso-ping");
      pm2_wait_signals(1);
    }
    rt.barrier();
    g_iso_copy_bytes += rt.fabric().payload_copy_bytes();
  });
  return static_cast<double>(g_iso_total_ns.load()) / 1e3 / (2.0 * rounds);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (is_spawned_child()) return 0;  // not meaningful multi-process
  const int iters = static_cast<int>(flags.i64("iters", 200));
  // Keep stack-sized allocations on the heap: with the default 128 KB mmap
  // threshold every legacy stack relocation would pay a fresh
  // mmap/fault/munmap cycle, hiding the patching cost being measured.
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  // …and stop free() from trimming the heap top, which would re-fault the
  // pages on the next allocation.
  mallopt(M_TRIM_THRESHOLD, 1 << 30);

  bench::print_header(
      "E6a: legacy post-migration fix-up cost (iso-address cost: 0 by "
      "construction)",
      {"registered", "depth", "fixup_us"});
  for (int depth : {4, 32}) {
    for (int n : {0, 16, 64, 256, 1024}) {
      double us = measure_legacy_fixup_us(n, depth, iters);
      bench::print_cell(static_cast<uint64_t>(n));
      bench::print_cell(static_cast<uint64_t>(depth));
      bench::print_cell(us);
      bench::print_row_end();
    }
  }

  bench::print_header(
      "E6b: end-to-end one-way migration (iso) vs relocate-and-fixup "
      "(legacy, no wire transfer!)",
      {"scheme", "one_way_us", "copied_KB_per_mig"});
  const auto rounds = static_cast<uint32_t>(flags.i64("rounds", 300));
  double iso = measure_iso_one_way_us(rounds, /*socket_fabric=*/false);
  double iso_copy_kb = static_cast<double>(g_iso_copy_bytes.load()) / 1e3 /
                       (2.0 * rounds + 2);
  bench::print_cell("iso-inproc");
  bench::print_cell(iso);
  bench::print_cell(iso_copy_kb);
  bench::print_row_end();
  double iso_sock = measure_iso_one_way_us(rounds, /*socket_fabric=*/true);
  double iso_sock_copy_kb = static_cast<double>(g_iso_copy_bytes.load()) /
                            1e3 / (2.0 * rounds + 2);
  bench::print_cell("iso-sockets");
  bench::print_cell(iso_sock);
  bench::print_cell(iso_sock_copy_kb);  // 0: extents gather straight to writev
  bench::print_row_end();
  {
    g_params = {256, 16};
    std::vector<uint32_t> keys;
    legacy::LegacyThread probe(256 * 1024, &legacy_body, &keys);
    probe.resume();
    probe.relocate();
    double legacy_copy_kb = static_cast<double>(probe.bytes_copied()) / 1e3;
    double legacy = measure_legacy_fixup_us(256, 16, iters);
    bench::print_cell("legacy-fixup");
    bench::print_cell(legacy);
    bench::print_cell(legacy_copy_kb);  // full stack copy every migration
    bench::print_row_end();
  }

  std::printf(
      "\nShape check vs paper: the legacy fix-up grows with the number of\n"
      "registered pointers and stack size while the iso-address scheme\n"
      "pays nothing after the copy — and the legacy number above does not\n"
      "even include the network transfer the iso number carries.\n"
      "copied_KB_per_mig counts transport-side payload copies: the legacy\n"
      "scheme re-copies its whole stack per migration, the in-process hub\n"
      "pays one ownership copy of the live extents, and the socket fabric\n"
      "ships them straight from slot memory (zero).\n");
  return 0;
}
