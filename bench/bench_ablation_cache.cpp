// A2 — Ablation: the slot cache (paper §6: "Instead of unmmapping a slot
// each time it is released, we keep a number of mmapped empty slots in a
// process-wide cache.  This saves the mmapping time at the next slot
// allocation.").
//
// Pure node-local experiment: slot-sized alloc/free churn against a slot
// manager with the cache disabled vs enabled, reporting both the time and
// the number of VM commit/decommit operations avoided.
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "isomalloc/heap.hpp"

using namespace pm2;
using namespace pm2::iso;

namespace {

struct Result {
  double avg_us;
  uint64_t commits;
  uint64_t decommits;
  uint64_t cache_hits;
};

Result churn(size_t cache_capacity, int iters) {
  AreaConfig ac;
  ac.base = iso::offset_area_base(1);
  ac.size = 256ull << 20;
  Area area(ac);
  SlotManagerConfig sc;
  sc.node = 0;
  sc.n_nodes = 1;
  sc.cache_capacity = cache_capacity;
  SlotManager mgr(area, sc);
  void* slot_list = nullptr;
  ThreadHeap heap(&slot_list, 1, mgr);

  // Slot-churning workload: each block needs its own slot, each free
  // empties and releases that slot.
  const size_t size = 60 * 1024;
  double t = bench::time_us([&] {
    for (int i = 0; i < iters; ++i) {
      void* p = heap.alloc(size);
      static_cast<volatile char*>(p)[0] = 1;
      heap.free(p);
    }
  });
  return Result{t / iters, mgr.stats().commits, mgr.stats().decommits,
                mgr.stats().cache_hits};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int iters = static_cast<int>(flags.i64("iters", 5000));

  bench::print_header(
      "A2: slot cache on/off — slot-sized alloc/free churn (60 KB blocks)",
      {"cache_slots", "avg_us", "vm_commits", "vm_decommits", "cache_hits"});
  for (size_t capacity : {size_t{0}, size_t{4}, size_t{64}}) {
    Result r = churn(capacity, iters);
    bench::print_cell(static_cast<uint64_t>(capacity));
    bench::print_cell(r.avg_us);
    bench::print_cell(r.commits);
    bench::print_cell(r.decommits);
    bench::print_cell(r.cache_hits);
    bench::print_row_end();
  }
  std::printf(
      "\nShape check: with the cache on, steady-state churn performs no VM\n"
      "calls at all (one commit total, all reuse through the cache) and the\n"
      "per-cycle time drops accordingly — the paper's §6 optimization.\n");
  return 0;
}
