// E2 — Figure 11 (top): average allocation time, malloc vs pm2_isomalloc,
// small requests (up to ~500 KB), 2-node configuration, round-robin slot
// distribution (the paper's own setup: "the negotiation automatically
// required by any multi-slot allocation when the slots are distributed in a
// round-robin way").
//
// Methodology: for each block size, a fresh 2-node session allocates K
// blocks *without freeing* (so every multi-slot request needs a fresh
// contiguous run and therefore a negotiation, as in the paper) and reports
// the average per-allocation time; the malloc baseline runs the same
// pattern against the libc heap.
#include <atomic>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "isomalloc/distribution.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

struct Sample {
  double malloc_us = 0;
  double iso_us = 0;
  uint64_t negotiations = 0;
};

std::atomic<uint64_t> g_size{0};
std::atomic<uint64_t> g_iters{0};
Sample g_sample;  // written by node 0's main only, read after run_app

void measure_one_size(Runtime& rt) {
  const size_t size = g_size.load();
  const int iters = static_cast<int>(g_iters.load());

  // malloc baseline: allocate-and-keep, then free untimed.
  std::vector<void*> mallocs;
  mallocs.reserve(iters);
  double t_malloc = bench::time_us([&] {
    for (int i = 0; i < iters; ++i) {
      void* p = std::malloc(size);
      // Touch one byte per page so lazily-mapped pages are actually
      // faulted in, as a real consumer would.
      for (size_t off = 0; off < size; off += 4096)
        static_cast<volatile char*>(p)[off] = 1;
      mallocs.push_back(p);
    }
  });
  for (void* p : mallocs) std::free(p);

  uint64_t nego_before = rt.negotiations_initiated();
  std::vector<void*> isos;
  isos.reserve(iters);
  double t_iso = bench::time_us([&] {
    for (int i = 0; i < iters; ++i) {
      void* p = pm2_isomalloc(size);
      for (size_t off = 0; off < size; off += 4096)
        static_cast<volatile char*>(p)[off] = 1;
      isos.push_back(p);
    }
  });
  for (void* p : isos) pm2_isofree(p);

  g_sample.malloc_us = t_malloc / iters;
  g_sample.iso_us = t_iso / iters;
  g_sample.negotiations = rt.negotiations_initiated() - nego_before;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int iters = static_cast<int>(flags.i64("iters", 20));
  std::vector<std::string> child_args(argv + 1, argv + argc);

  auto run_size = [&](size_t size) {
    g_size = size;
    g_iters = static_cast<uint64_t>(iters);
    g_sample = Sample{};
    AppConfig cfg;
    cfg.nodes = 2;
    cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
    run_app(cfg, [&](Runtime& rt) {
      if (rt.self() == 0) measure_one_size(rt);
    });
  };

  bench::print_header(
      "E2 / Fig.11(top): avg allocation time, 2 nodes, round-robin slots",
      {"size_B", "malloc_us", "isomalloc_us", "negotiations", "ratio"});

  const size_t sizes[] = {4096,       16 * 1024,  32 * 1024,  48 * 1024,
                          64 * 1024,  96 * 1024,  128 * 1024, 192 * 1024,
                          256 * 1024, 384 * 1024, 500 * 1024};
  for (size_t size : sizes) {
    run_size(size);
    bench::print_cell(static_cast<uint64_t>(size));
    bench::print_cell(g_sample.malloc_us);
    bench::print_cell(g_sample.iso_us);
    bench::print_cell(g_sample.negotiations);
    bench::print_cell(g_sample.iso_us / (g_sample.malloc_us > 0
                                             ? g_sample.malloc_us
                                             : 1e-9));
    bench::print_row_end();
  }
  std::printf(
      "\nShape check vs paper (Fig. 11 top): isomalloc tracks malloc for\n"
      "sub-slot sizes (<64K: zero negotiations), then pays a roughly\n"
      "constant negotiation overhead per allocation beyond one slot.\n");
  (void)child_args;
  return 0;
}
