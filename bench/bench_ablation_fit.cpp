// A3 — Ablation: block fit policy (paper §4.3: "a first-fit strategy is
// used, but other strategies could be considered as well, especially if
// fragmentation is to be kept low").
//
// Random alloc/free traces with a bounded live set; reports throughput and
// fragmentation proxies (slots attached at steady state, block splits) for
// first-fit vs best-fit.
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/random.hpp"
#include "isomalloc/heap.hpp"

using namespace pm2;
using namespace pm2::iso;

namespace {

struct Result {
  double avg_op_us;
  uint64_t peak_slots;
  uint64_t end_slots;
  uint64_t splits;
  uint64_t coalesces;
};

Result run_trace(FitPolicy fit, int ops, uint64_t seed) {
  AreaConfig ac;
  ac.base = iso::offset_area_base(2);
  ac.size = 512ull << 20;
  Area area(ac);
  SlotManagerConfig sc;
  sc.node = 0;
  sc.n_nodes = 1;
  SlotManager mgr(area, sc);
  void* slot_list = nullptr;
  HeapStats stats;
  HeapConfig hc;
  hc.fit = fit;
  ThreadHeap heap(&slot_list, 1, mgr, hc, &stats);

  Rng rng(seed);
  std::vector<void*> live;
  uint64_t peak_slots = 0;
  auto attached = [&] {
    uint64_t n = 0;
    ThreadHeap::for_each_slot(slot_list,
                              [&](SlotHeader* s) { n += s->nslots; });
    return n;
  };

  double t = bench::time_us([&] {
    for (int i = 0; i < ops; ++i) {
      // Skewed size mix: mostly small, occasionally near-slot-size.
      bool grow = live.size() < 400 || rng.next_bool(0.5);
      if (grow) {
        size_t size = rng.next_bool(0.9) ? rng.next_range(16, 2048)
                                         : rng.next_range(16 * 1024, 60 * 1024);
        live.push_back(heap.alloc(size));
      } else {
        size_t idx = rng.next_below(live.size());
        heap.free(live[idx]);
        live[idx] = live.back();
        live.pop_back();
      }
      if (i % 256 == 0) peak_slots = std::max(peak_slots, attached());
    }
  });
  Result r{t / ops, peak_slots, attached(), stats.block_splits,
           stats.block_coalesces};
  for (void* p : live) heap.free(p);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int ops = static_cast<int>(flags.i64("ops", 100000));

  bench::print_header(
      "A3: fit policy vs throughput and fragmentation (random trace, "
      "skewed sizes, live set ~400)",
      {"policy", "avg_op_us", "peak_slots", "end_slots", "splits",
       "coalesces"});
  for (auto fit : {FitPolicy::kFirstFit, FitPolicy::kBestFit}) {
    for (uint64_t seed : {1ull, 42ull}) {
      Result r = run_trace(fit, ops, seed);
      bench::print_cell(fit == FitPolicy::kFirstFit ? "first-fit" : "best-fit");
      bench::print_cell(r.avg_op_us);
      bench::print_cell(r.peak_slots);
      bench::print_cell(r.end_slots);
      bench::print_cell(r.splits);
      bench::print_cell(r.coalesces);
      bench::print_row_end();
    }
  }
  std::printf(
      "\nShape check: first-fit is faster per operation (stops at the first\n"
      "hole); best-fit trades time for slightly tighter packing — the\n"
      "trade-off the paper leaves open in §4.3.\n");
  return 0;
}
