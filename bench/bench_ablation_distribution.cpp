// A1 — Ablation: initial slot distribution (paper §4.1 "Slot distribution";
// the design discussion: round-robin "behaves rather poorly for multi-slot
// allocations"; block-cyclic and partitioned favour contiguity and should
// avoid negotiations).
#include <atomic>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "isomalloc/distribution.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

std::atomic<uint64_t> g_iters{0};
double g_avg_us = 0;
uint64_t g_negotiations = 0;
uint64_t g_negotiated_slots = 0;

void measure(Runtime& rt) {
  const int iters = static_cast<int>(g_iters.load());
  std::vector<void*> held;
  uint64_t nego_before = rt.negotiations_initiated();
  double t = bench::time_us([&] {
    for (int i = 0; i < iters; ++i) held.push_back(pm2_isomalloc(100 * 1024));
  });
  for (void* p : held) pm2_isofree(p);
  g_avg_us = t / iters;
  g_negotiations = rt.negotiations_initiated() - nego_before;
  g_negotiated_slots = rt.slots().stats().negotiated_slots;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int iters = static_cast<int>(flags.i64("iters", 30));
  const auto nodes = static_cast<uint32_t>(flags.i64("nodes", 4));

  bench::print_header(
      "A1: slot distribution policy vs multi-slot allocation cost (4 nodes, "
      "100 KB blocks = 2 slots each)",
      {"distribution", "avg_alloc_us", "negotiations", "bought_slots"});

  const iso::Distribution dists[] = {iso::Distribution::kRoundRobin,
                                     iso::Distribution::kBlockCyclic,
                                     iso::Distribution::kPartitioned};
  for (auto dist : dists) {
    g_iters = static_cast<uint64_t>(iters);
    AppConfig cfg;
    cfg.nodes = nodes;
    cfg.rt.slots.distribution = dist;
    cfg.rt.slots.block_cyclic_block = 16;
    run_app(cfg, [&](Runtime& rt) {
      if (rt.self() == 0) measure(rt);
    });
    bench::print_cell(iso::to_string(dist));
    bench::print_cell(g_avg_us);
    bench::print_cell(g_negotiations);
    bench::print_cell(g_negotiated_slots);
    bench::print_row_end();
  }
  std::printf(
      "\nShape check: round-robin negotiates on every multi-slot request;\n"
      "block-cyclic(16) and partitioned satisfy them locally (zero\n"
      "negotiations) and allocate an order of magnitude faster.\n");
  return 0;
}
