// E3 — Figure 11 (bottom): average allocation time, malloc vs
// pm2_isomalloc, large requests (1–8 MB), 2-node round-robin configuration.
// Paper: "for large allocations, this overhead is small and rather
// insignificant compared to the total allocation time … our approach
// scales well."
#include <atomic>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "isomalloc/distribution.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

std::atomic<uint64_t> g_size{0};
std::atomic<uint64_t> g_iters{0};
double g_malloc_us = 0;
double g_iso_us = 0;
uint64_t g_negotiations = 0;

void measure(Runtime& rt) {
  const size_t size = g_size.load();
  const int iters = static_cast<int>(g_iters.load());

  std::vector<void*> held;
  held.reserve(iters);
  double t_malloc = bench::time_us([&] {
    for (int i = 0; i < iters; ++i) {
      void* p = std::malloc(size);
      for (size_t off = 0; off < size; off += 4096)
        static_cast<volatile char*>(p)[off] = 1;
      held.push_back(p);
    }
  });
  for (void* p : held) std::free(p);
  held.clear();

  uint64_t nego_before = rt.negotiations_initiated();
  double t_iso = bench::time_us([&] {
    for (int i = 0; i < iters; ++i) {
      void* p = pm2_isomalloc(size);
      for (size_t off = 0; off < size; off += 4096)
        static_cast<volatile char*>(p)[off] = 1;
      held.push_back(p);
    }
  });
  for (void* p : held) pm2_isofree(p);

  g_malloc_us = t_malloc / iters;
  g_iso_us = t_iso / iters;
  g_negotiations = rt.negotiations_initiated() - nego_before;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int iters = static_cast<int>(flags.i64("iters", 5));

  bench::print_header(
      "E3 / Fig.11(bottom): avg allocation time, large blocks, 2 nodes, "
      "round-robin",
      {"size_MB", "malloc_us", "isomalloc_us", "negotiations", "overhead_%"});

  for (size_t mb = 1; mb <= 8; ++mb) {
    g_size = mb << 20;
    g_iters = static_cast<uint64_t>(iters);
    AppConfig cfg;
    cfg.nodes = 2;
    cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
    run_app(cfg, [&](Runtime& rt) {
      if (rt.self() == 0) measure(rt);
    });
    bench::print_cell(static_cast<uint64_t>(mb));
    bench::print_cell(g_malloc_us);
    bench::print_cell(g_iso_us);
    bench::print_cell(g_negotiations);
    bench::print_cell(100.0 * (g_iso_us - g_malloc_us) /
                      (g_malloc_us > 0 ? g_malloc_us : 1e-9));
    bench::print_row_end();
  }
  std::printf(
      "\nShape check vs paper (Fig. 11 bottom): the fixed negotiation cost\n"
      "is amortized by page-faulting/copy time, so the relative overhead\n"
      "shrinks as blocks grow — the scheme scales well.\n");
  return 0;
}
