// E4 — Negotiation cost vs. cluster size (paper §5: "This negotiation takes
// 255 us in a 2-node configuration when using BIP/Myrinet.  If the
// underlying architecture provides more than 2 nodes, another 165 us should
// be added per extra node.").
//
// The gather step is sequential per peer, so the cost model is linear in
// the node count; this bench measures the per-allocation negotiation cost
// for 2..8 nodes and fits the slope.
#include <atomic>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "isomalloc/distribution.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

std::atomic<uint64_t> g_iters{0};
double g_local_us = 0;   // single-slot (no negotiation) baseline
double g_nego_us = 0;    // multi-slot (always negotiates under RR)
uint64_t g_negotiations = 0;

void measure(Runtime& rt) {
  const int iters = static_cast<int>(g_iters.load());
  // Baseline: single-slot allocations are purely local.
  std::vector<void*> held;
  double t_local = bench::time_us([&] {
    for (int i = 0; i < iters; ++i) held.push_back(pm2_isomalloc(1024));
  });
  for (void* p : held) pm2_isofree(p);
  held.clear();

  // Multi-slot allocations under round-robin: one negotiation each (blocks
  // are kept so every request needs a fresh contiguous run).
  uint64_t nego_before = rt.negotiations_initiated();
  double t_nego = bench::time_us([&] {
    for (int i = 0; i < iters; ++i) held.push_back(pm2_isomalloc(100 * 1024));
  });
  for (void* p : held) pm2_isofree(p);

  g_local_us = t_local / iters;
  g_nego_us = t_nego / iters;
  g_negotiations = rt.negotiations_initiated() - nego_before;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int iters = static_cast<int>(flags.i64("iters", 30));
  const auto max_nodes = static_cast<uint32_t>(flags.i64("max_nodes", 8));

  bench::print_header(
      "E4: negotiation cost vs node count (paper: 255us at 2 nodes, "
      "+165us per extra node)",
      {"nodes", "local_us", "negotiated_us", "nego_overhead_us",
       "negotiations"});

  std::vector<double> xs, ys;
  for (uint32_t nodes = 2; nodes <= max_nodes; ++nodes) {
    g_iters = static_cast<uint64_t>(iters);
    AppConfig cfg;
    cfg.nodes = nodes;
    cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
    run_app(cfg, [&](Runtime& rt) {
      if (rt.self() == 0) measure(rt);
    });
    double overhead = g_nego_us - g_local_us;
    bench::print_cell(static_cast<uint64_t>(nodes));
    bench::print_cell(g_local_us);
    bench::print_cell(g_nego_us);
    bench::print_cell(overhead);
    bench::print_cell(g_negotiations);
    bench::print_row_end();
    xs.push_back(nodes);
    ys.push_back(overhead);
  }

  // Least-squares slope: the paper's "+165us per extra node" analogue.
  double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  double intercept = (sy - slope * sx) / n;
  std::printf(
      "\nLinear fit: negotiation overhead ~= %.1f us + %.1f us per node\n"
      "Shape check vs paper: cost at 2 nodes is a few hundred us-equivalent\n"
      "of messaging and grows linearly with the node count (sequential\n"
      "bitmap gather), matching the +165us/node model.\n",
      intercept, slope);
  return 0;
}
