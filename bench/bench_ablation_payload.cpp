// A4 — Ablation: migration payload mode (paper §6: "When migrating a slot
// attached to a thread, it is sufficient to send its internally allocated
// blocks.").
//
// A thread with a deliberately sparse heap (large slots, mostly free)
// ping-pongs under both payload modes; reports wire bytes and latency.
#include <atomic>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/migration.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

std::atomic<uint64_t> g_rounds{0};
std::atomic<uint64_t> g_slots{0};       // heap slots to attach
std::atomic<uint64_t> g_live_bytes{0};  // live bytes per slot
std::atomic<uint64_t> g_total_ns{0};
std::atomic<uint64_t> g_payload_bytes{0};

void sparse_worker(void*) {
  const auto rounds = static_cast<int>(g_rounds.load());
  const auto slots = static_cast<size_t>(g_slots.load());
  const auto live = static_cast<size_t>(g_live_bytes.load());

  // Build a sparse heap.  Step 1: force `slots` distinct slots to attach
  // by filling each with a near-slot-sized block; step 2: free the fillers
  // (release_empty_slots=false keeps the now-empty slots attached); step 3:
  // place one `live`-byte block per slot's worth of requested liveness.
  std::vector<void*> fillers;
  for (size_t i = 0; i < slots; ++i)
    fillers.push_back(pm2_isomalloc(60 * 1024));
  for (void* p : fillers) pm2_isofree(p);
  std::vector<void*> blocks;
  for (size_t i = 0; i < slots; ++i) {
    auto* p = static_cast<char*>(pm2_isomalloc(live));
    std::memset(p, 0x42, live);
    blocks.push_back(p);
  }

  // Report what one migration would ship in this mode.
  Runtime* rt = Runtime::current();
  g_payload_bytes =
      migration_payload_size(*rt, marcel_self(), rt->config().migrate_blocks_only);

  pm2_migrate(marcel_self(), 1);
  pm2_migrate(marcel_self(), 0);
  Stopwatch sw;
  for (int r = 0; r < rounds; ++r) {
    pm2_migrate(marcel_self(), 1);
    pm2_migrate(marcel_self(), 0);
  }
  g_total_ns = sw.elapsed_ns();

  for (void* p : blocks) {
    PM2_CHECK(static_cast<char*>(p)[0] == 0x42);
    pm2_isofree(p);
  }
  pm2_signal(0);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (is_spawned_child()) return 0;
  const auto rounds = static_cast<uint32_t>(flags.i64("rounds", 200));

  bench::print_header(
      "A4: migration payload — whole slots vs allocated-blocks-only "
      "(sparse heaps)",
      {"heap_slots", "live_B/slot", "mode", "payload_B", "one_way_us"});

  struct Shape {
    size_t slots;
    size_t live;
  };
  const Shape shapes[] = {{1, 256}, {4, 256}, {16, 256}, {16, 32 * 1024}};
  for (const Shape& s : shapes) {
    for (bool blocks_only : {false, true}) {
      g_rounds = rounds;
      g_slots = s.slots;
      g_live_bytes = s.live;
      AppConfig cfg;
      cfg.nodes = 2;
      cfg.rt.migrate_blocks_only = blocks_only;
      cfg.rt.heap.release_empty_slots = false;  // keep sparse slots attached
      run_app(cfg, [&](Runtime& rt) {
        if (rt.self() == 0) {
          pm2_thread_create(&sparse_worker, nullptr, "sparse");
          pm2_wait_signals(1);
        }
      });
      double one_way = static_cast<double>(g_total_ns.load()) / 1e3 /
                       (2.0 * static_cast<double>(rounds));
      bench::print_cell(static_cast<uint64_t>(s.slots));
      bench::print_cell(static_cast<uint64_t>(s.live));
      bench::print_cell(blocks_only ? "blocks" : "full-slots");
      bench::print_cell(g_payload_bytes.load());
      bench::print_cell(one_way);
      bench::print_row_end();
    }
  }
  std::printf(
      "\nShape check: blocks-only payloads shrink with heap sparsity while\n"
      "full-slot payloads scale with attached slots regardless of liveness;\n"
      "latency follows payload size — the paper's §6 optimization.\n");
  return 0;
}
