// E5 — Marcel thread primitives (paper §2: "PM2 provides very efficient
// primitives to handle these operations: creation, destruction and context
// switching").
//
// google-benchmark micro-measurements of the user-level thread layer in
// isolation (no networking): raw context switch, scheduler round-robin,
// thread create/destroy, and the isomalloc fast path vs malloc.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "isomalloc/heap.hpp"
#include "madeleine/buffers.hpp"
#include "marcel/scheduler.hpp"

namespace {

using namespace pm2;
using namespace pm2::marcel;

constexpr size_t kRegion = 64 * 1024;

// --- raw switch --------------------------------------------------------------

void* g_bench_sp = nullptr;
void* g_peer_sp = nullptr;

void bounce_peer(void*) {
  while (true) pm2_ctx_switch(&g_peer_sp, g_bench_sp);
}

/// One iteration = switch to a peer context and back (2 switches).
void BM_RawContextSwitchRoundTrip(benchmark::State& state) {
  void* stack = std::aligned_alloc(16, kRegion);
  g_peer_sp = ctx_make(stack, static_cast<char*>(stack) + kRegion,
                       &bounce_peer, nullptr);
  for (auto _ : state) {
    pm2_ctx_switch(&g_bench_sp, g_peer_sp);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  std::free(stack);
}
BENCHMARK(BM_RawContextSwitchRoundTrip);

// --- scheduler round-robin ----------------------------------------------------

struct RoundRobinCtx {
  int yields;
};

void rr_worker(void* p) {
  auto* c = static_cast<RoundRobinCtx*>(p);
  Scheduler* sched = Scheduler::current_scheduler();
  for (int i = 0; i < c->yields; ++i) sched->yield();
  sched->exit_current([](Thread*) {});
}

/// Full scheduler path: N threads each yield 100 times; the per-switch cost
/// is reported through items/sec.
void BM_SchedulerRoundRobin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int yields = 100;
  std::vector<void*> regions;
  for (int i = 0; i < threads; ++i)
    regions.push_back(std::aligned_alloc(64, kRegion));

  for (auto _ : state) {
    state.PauseTiming();
    Scheduler sched;
    RoundRobinCtx ctx{yields};
    for (int i = 0; i < threads; ++i) {
      sched.create(regions[i], kRegion, &rr_worker, &ctx,
                   static_cast<ThreadId>(i + 1), "w");
    }
    sched.stop();
    state.ResumeTiming();
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * threads * yields);
  for (void* r : regions) std::free(r);
}
BENCHMARK(BM_SchedulerRoundRobin)->Arg(2)->Arg(16)->Arg(128)->Arg(1024);

// --- steal storm --------------------------------------------------------------

/// SMP contention shape: workers + 1 yield-churning threads over `workers`
/// kernel threads, so every deque hovers at zero or one element and nearly
/// every dispatch involves the Chase-Lev one-element owner-vs-thief CAS (or,
/// at workers == 1, the uncontended owner path — the parity baseline).
/// items/sec = scheduler dispatches under maximal steal pressure.
void BM_StealStorm(benchmark::State& state) {
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  const int threads = static_cast<int>(workers) + 1;
  const int yields = 2000;
  std::vector<void*> regions;
  for (int i = 0; i < threads; ++i)
    regions.push_back(std::aligned_alloc(64, kRegion));

  for (auto _ : state) {
    state.PauseTiming();
    Scheduler sched(workers);
    RoundRobinCtx ctx{yields};
    for (int i = 0; i < threads; ++i) {
      sched.create(regions[i], kRegion, &rr_worker, &ctx,
                   static_cast<ThreadId>(i + 1), "s");
    }
    sched.stop();
    state.ResumeTiming();
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * threads * yields);
  for (void* r : regions) std::free(r);
}
BENCHMARK(BM_StealStorm)->Arg(1)->Arg(4)->UseRealTime();

// --- create/destroy ------------------------------------------------------------

void noop_worker(void*) {
  Scheduler::current_scheduler()->exit_current([](Thread*) {});
}

/// One iteration = create a thread, run it to completion, reap it.
void BM_ThreadCreateDestroy(benchmark::State& state) {
  Scheduler sched;
  void* region = std::aligned_alloc(64, kRegion);
  ThreadId id = 1;
  for (auto _ : state) {
    sched.create(region, kRegion, &noop_worker, nullptr, id++, "t");
    sched.stop();
    sched.run();
  }
  state.SetItemsProcessed(state.iterations());
  std::free(region);
}
BENCHMARK(BM_ThreadCreateDestroy);

// --- allocation fast path -------------------------------------------------------

void BM_IsomallocFastPath(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  iso::AreaConfig ac;
  ac.base = iso::offset_area_base(3);
  ac.size = 256ull << 20;
  iso::Area area(ac);
  iso::SlotManagerConfig sc;
  sc.node = 0;
  sc.n_nodes = 1;
  iso::SlotManager mgr(area, sc);
  void* slot_list = nullptr;
  iso::ThreadHeap heap(&slot_list, 1, mgr);
  void* anchor = heap.alloc(16);  // keep the slot attached across iterations
  for (auto _ : state) {
    void* p = heap.alloc(size);
    benchmark::DoNotOptimize(p);
    heap.free(p);
  }
  heap.free(anchor);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IsomallocFastPath)->Arg(16)->Arg(256)->Arg(4096)->Arg(32768);

void BM_MallocBaseline(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    void* p = std::malloc(size);
    benchmark::DoNotOptimize(p);
    std::free(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MallocBaseline)->Arg(16)->Arg(256)->Arg(4096)->Arg(32768);

// --- payload pipeline ---------------------------------------------------------
// The migration pack shape: a little staged metadata plus one slot-sized
// bulk region.  Flatten copies the bulk per message; the chain borrows it.

void BM_PackFlattenPayload(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> slot_image(size, 0x3C);
  for (auto _ : state) {
    mad::PackBuffer pack;
    pack.pack<uint64_t>(0xDEADBEEF);
    pack.pack<uint32_t>(1);
    pack.pack_bytes(slot_image.data(), slot_image.size(),
                    mad::PackMode::kBorrow);
    auto flat = pack.finalize();  // old wire path: borrowed bytes copied here
    benchmark::DoNotOptimize(flat.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}
BENCHMARK(BM_PackFlattenPayload)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_PackChainPayload(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> slot_image(size, 0x3C);
  for (auto _ : state) {
    mad::PackBuffer pack;
    pack.pack<uint64_t>(0xDEADBEEF);
    pack.pack<uint32_t>(1);
    pack.pack_bytes(slot_image.data(), slot_image.size(),
                    mad::PackMode::kBorrow);
    auto chain = pack.take_chain();  // new wire path: segments go to writev
    benchmark::DoNotOptimize(chain.segments().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}
BENCHMARK(BM_PackChainPayload)->Arg(64 * 1024)->Arg(1024 * 1024);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): accept the repo-wide
// `--json <path>` convention (bench_rpc speaks it too) by translating it
// into google-benchmark's JSON reporter flags, so CI collects one
// machine-readable artifact format from every bench binary.
int main(int argc, char** argv) {
  std::vector<std::string> store;
  store.reserve(static_cast<size_t>(argc) + 1);
  store.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      store.emplace_back(std::string("--benchmark_out=") + argv[i + 1]);
      store.emplace_back("--benchmark_out_format=json");
      ++i;
    } else if (std::string(argv[i]) == "--steal-storm") {
      // Shorthand the CI bench leg uses: run only the SMP contention
      // benchmark (both worker counts).
      store.emplace_back("--benchmark_filter=BM_StealStorm");
    } else {
      store.emplace_back(argv[i]);
    }
  }
  std::vector<char*> args;
  args.reserve(store.size());
  for (std::string& s : store) args.push_back(s.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
