// RPC latency & throughput: blocking call() vs pipelined call_async().
//
// The v2 asynchronous API exists to overlap communication with computation:
// a blocking call() holds one thread hostage per outstanding request, so
// the round-trip latency is the throughput ceiling; call_async() keeps any
// number of correlations in flight from a single thread.  This bench
// measures both on the in-process hub and on the socket fabric (real UNIX
// domain sockets inside one process), sweeping the number of outstanding
// requests 1 → N, and reports µs/call with p50/p99 per-request latency,
// calls/s, the transport copy columns and the server's invocation-pool
// counters alongside.  The p50/p99 columns exist to keep the event-driven
// reply wake-up path honest: a return of the poll-bounce bug (blind
// busy-poll windows + fixed recv timeouts) shows up as a p50 in the
// hundreds of µs long before throughput moves.  The pool columns keep the
// pooled-invocation hot path honest the same way: pool_hits collapsing to
// zero means every call is paying the thread-build cold path again.
//
//   ./bench_rpc                 # default: 2000 calls, up to 64 outstanding
//   ./bench_rpc --calls 10000 --payload 256
//   ./bench_rpc --workers 4     # SMP scheduler: 4 workers on every node
//   ./bench_rpc --json out.json # machine-readable rows alongside the table
//   ./bench_rpc --smoke         # short sessions, both fabrics (CI: the
//                               # binary must run, the second call of a
//                               # session must be pool-served, and async
//                               # p99 at window 8 must stay under a very
//                               # generous fixed ceiling)
//   ./bench_rpc --fault "drop=0.01,delay=200us,seed=7" --timeout_ms 100
//                               # deterministic fault injection: the given
//                               # FaultPlan wraps the fabric, lost calls
//                               # time out after --timeout_ms and retry,
//                               # and the latency sample keeps the full
//                               # timeout + retry cost — p99/p999 under
//                               # loss is the number this mode exists for.
//                               # A `timeouts` column counts the retries.
//
// The p999 column and the smoke p99 guard bound the *tail*: a lost wakeup
// (a reply landing while the worker parks) hides in an average but stands
// out three nines deep.  --json rows additionally carry the callee node's
// per-worker scheduler counters (dispatches / steals / handoffs / idle
// wakeups) so a run records how the SMP scheduler actually spread the
// service threads.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "fabric/fault_fabric.hpp"
#include "madeleine/buffers.hpp"
#include "marcel/sync.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

std::atomic<uint64_t> g_total_ns{0};
std::atomic<uint64_t> g_wire_bytes{0};
std::atomic<uint64_t> g_copy_bytes{0};
std::atomic<uint64_t> g_p50_ns{0};
std::atomic<uint64_t> g_p99_ns{0};
std::atomic<uint64_t> g_p999_ns{0};
std::atomic<uint64_t> g_pool_hits{0};
std::atomic<uint64_t> g_pool_misses{0};
std::atomic<uint64_t> g_pool_evictions{0};
std::atomic<uint64_t> g_fut_hits{0};
std::atomic<uint64_t> g_fut_misses{0};
std::atomic<uint64_t> g_chunk_hits{0};
std::atomic<uint64_t> g_chunk_misses{0};
std::atomic<uint32_t> g_srv_workers{1};
std::vector<uint64_t> g_wstats;  // callee node, 5 counters per worker

uint64_t g_calls = 2000;
size_t g_payload = 64;
uint32_t g_workers = 0;  // 0 = RuntimeConfig auto (PM2_WORKERS env / 1)
std::string g_fault;          // FaultPlan spec; empty = no injection
uint64_t g_timeout_ms = 0;    // per-call deadline; 0 = unbounded
std::atomic<uint64_t> g_timeouts{0};  // measured calls that retried

// Generous smoke ceiling for async p99 at window >= 8.  Healthy in-process
// round trips sit in the tens of µs even under sanitizers; the failure
// class this guards (blind busy-poll windows, lost reply wakeups bounded
// only by the 100 ms idle park) shows up as 10^2–10^5 µs tails.
constexpr double kSmokeP99CeilingUs = 50000.0;

struct Row {
  std::string fabric;
  std::string mode;
  size_t outstanding;
  uint64_t calls;
  double us_per_call;
  double p50_us;
  double p99_us;
  double p999_us;
  double calls_per_s;
  double wire_mb;
  double copy_mb;
  uint64_t pool_hits;
  uint64_t pool_misses;
  uint64_t pool_evictions;
  uint64_t fut_hits;
  uint64_t fut_misses;
  uint64_t chunk_hits;
  uint64_t chunk_misses;
  uint64_t timeouts;
  uint32_t workers;
  std::vector<uint64_t> wstats;  // dispatches,steals,failed,handoffs,wakeups
};
std::vector<Row> g_rows;

/// Percentile in tenths of a percent (500 = p50, 999 = p99.9).
uint64_t percentile(std::vector<uint64_t>& sorted, int permille) {
  if (sorted.empty()) return 0;
  size_t idx = sorted.size() * static_cast<size_t>(permille) / 1000;
  return sorted[std::min(idx, sorted.size() - 1)];
}

double hit_rate(uint64_t hits, uint64_t misses) {
  uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(hits) /
                          static_cast<double>(total);
}

/// One echo round trip that survives injected loss: a kTimeout failure
/// re-issues the request.  rt.call<R>() is exactly call_async<R>().take(),
/// so the fault-free path measures the same thing the blocking call did.
uint64_t echo_retry(Runtime& rt, const std::vector<uint8_t>& blob) {
  for (;;) {
    RpcFuture<uint64_t> fut = rt.call_async<uint64_t>(1, "echo-len", blob);
    fut.wait();
    if (!fut.failed()) return fut.take();
    PM2_CHECK(rpc_error_code(fut.error()) == RpcErrorCode::kTimeout)
        << fut.error();
    ++g_timeouts;
  }
}

/// One measured session: node 0 issues `g_calls` echo requests to node 1
/// keeping `outstanding` in flight (outstanding == 0 → the legacy blocking
/// call() path).  Per-request latency is sampled issue → completion; under
/// --fault that includes any timeout + retry laps, which is the tail the
/// fault mode exists to expose.
void run_session(bool socket_fabric, size_t outstanding) {
  g_total_ns = 0;
  g_timeouts = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.socket_fabric = socket_fabric;
  cfg.rt.workers = g_workers;
  // "seed=1" parses to an inactive plan: an explicit "no faults" that also
  // masks any ambient PM2_FAULT_PLAN, so baseline numbers stay baseline.
  cfg.rt.fault_plan = g_fault.empty() ? "seed=1" : g_fault;
  cfg.rt.rpc_timeout_ns = g_timeout_ms * 1'000'000;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        std::vector<uint8_t> blob(g_payload, 0x5A);
        // Warm-up: fault the path end to end.
        echo_retry(rt, blob);
        g_timeouts = 0;  // count measured-loop retries only

        std::vector<uint64_t> samples;
        samples.reserve(g_calls);
        Stopwatch sw;
        if (outstanding == 0) {
          for (uint64_t i = 0; i < g_calls; ++i) {
            Stopwatch call_sw;
            uint64_t len = echo_retry(rt, blob);
            samples.push_back(call_sw.elapsed_ns());
            PM2_CHECK(len == blob.size());
          }
        } else {
          // Sliding window: top the window up, then reap-and-refill with
          // wait_any so the wire never drains.
          std::vector<RpcFuture<uint64_t>> window;
          std::vector<uint64_t> issued_at;
          uint64_t issued = 0;
          uint64_t done = 0;
          while (done < g_calls) {
            while (window.size() < outstanding && issued < g_calls) {
              issued_at.push_back(now_ns());
              window.push_back(rt.call_async<uint64_t>(1, "echo-len", blob));
              ++issued;
            }
            size_t idx = wait_any(window);
            if (window[idx].failed()) {
              PM2_CHECK(rpc_error_code(window[idx].error()) ==
                        RpcErrorCode::kTimeout)
                  << window[idx].error();
              ++g_timeouts;
              // Re-issue under the original issue stamp so the sample
              // carries the full timeout + retry latency.
              window[idx] = rt.call_async<uint64_t>(1, "echo-len", blob);
              continue;
            }
            samples.push_back(now_ns() - issued_at[idx]);
            PM2_CHECK(window[idx].take() == blob.size());
            window.erase(window.begin() + static_cast<long>(idx));
            issued_at.erase(issued_at.begin() + static_cast<long>(idx));
            ++done;
          }
        }
        g_total_ns = sw.elapsed_ns();
        std::sort(samples.begin(), samples.end());
        g_p50_ns = percentile(samples, 500);
        g_p99_ns = percentile(samples, 990);
        g_p999_ns = percentile(samples, 999);
        g_wire_bytes = rt.fabric().bytes_sent();
        g_copy_bytes = rt.fabric().payload_copy_bytes();
        // The service threads (and therefore the invocation pool) live on
        // the callee node: fetch its counters over the same RPC plane.
        // Layout: 3 invocation-pool + 2 future-pool + 2 chunk-pool
        // counters, then n_workers and 5 scheduler counters per worker.
        // The counter fetch sits outside the measured window; retry on
        // injected loss without charging the timeouts column.
        std::vector<uint64_t> pool;
        for (;;) {
          auto f = rt.call_async<std::vector<uint64_t>>(1, "pool-stats");
          f.wait();
          if (!f.failed()) {
            pool = f.take();
            break;
          }
          PM2_CHECK(rpc_error_code(f.error()) == RpcErrorCode::kTimeout)
              << f.error();
        }
        PM2_CHECK(pool.size() >= 8 && pool.size() == 8 + 5 * pool[7]);
        g_pool_hits = pool[0];
        g_pool_misses = pool[1];
        g_pool_evictions = pool[2];
        g_fut_hits = pool[3];
        g_fut_misses = pool[4];
        g_chunk_hits = pool[5];
        g_chunk_misses = pool[6];
        g_srv_workers = static_cast<uint32_t>(pool[7]);
        g_wstats.assign(pool.begin() + 8, pool.end());
      },
      [](Runtime& rt) {
        rt.service("echo-len",
                   [](RpcContext&, std::vector<uint8_t> v) -> uint64_t {
                     return v.size();
                   });
        rt.service("pool-stats", [](RpcContext&) -> std::vector<uint64_t> {
          Runtime& self = *Runtime::current();
          std::vector<uint64_t> out = {
              self.pool_hits(),    self.pool_misses(),
              self.pool_evictions(),
              // Process-wide pools (both in-process nodes share them):
              // cumulative across the bench's sessions, which is what the
              // hit-rate columns need.
              marcel::detail::future_pool_hits(),
              marcel::detail::future_pool_misses(),
              mad::chunk_pool_hits(), mad::chunk_pool_misses()};
          auto wstats = self.sched().worker_stats();
          out.push_back(wstats.size());
          for (const marcel::WorkerStats& w : wstats) {
            out.push_back(w.dispatches);
            out.push_back(w.steals);
            out.push_back(w.steal_failures);
            out.push_back(w.handoffs);
            out.push_back(w.idle_wakeups);
          }
          return out;
        });
      });
}

void bench_fabric(const char* fabric_name, bool socket_fabric, bool smoke,
                  const std::vector<size_t>& windows, double* sync_us,
                  double* best_async_us) {
  for (size_t outstanding : windows) {
    run_session(socket_fabric, outstanding);
    double us_per_call =
        static_cast<double>(g_total_ns.load()) / 1e3 /
        static_cast<double>(g_calls);
    double calls_per_s = 1e9 * static_cast<double>(g_calls) /
                         static_cast<double>(g_total_ns.load());
    if (outstanding == 0)
      *sync_us = us_per_call;
    else if (us_per_call < *best_async_us)
      *best_async_us = us_per_call;
    Row row;
    row.fabric = fabric_name;
    row.mode = outstanding == 0 ? "sync" : "async";
    row.outstanding = outstanding == 0 ? 1 : outstanding;
    row.calls = g_calls;
    row.us_per_call = us_per_call;
    row.p50_us = static_cast<double>(g_p50_ns.load()) / 1e3;
    row.p99_us = static_cast<double>(g_p99_ns.load()) / 1e3;
    row.p999_us = static_cast<double>(g_p999_ns.load()) / 1e3;
    row.calls_per_s = calls_per_s;
    row.wire_mb = static_cast<double>(g_wire_bytes.load()) / 1e6;
    row.copy_mb = static_cast<double>(g_copy_bytes.load()) / 1e6;
    row.pool_hits = g_pool_hits.load();
    row.pool_misses = g_pool_misses.load();
    row.pool_evictions = g_pool_evictions.load();
    row.fut_hits = g_fut_hits.load();
    row.fut_misses = g_fut_misses.load();
    row.chunk_hits = g_chunk_hits.load();
    row.chunk_misses = g_chunk_misses.load();
    row.timeouts = g_timeouts.load();
    row.workers = g_srv_workers.load();
    row.wstats = g_wstats;
    g_rows.push_back(row);
    // CI smoke assertions.  Even a short session makes warm-up + measured
    // calls + counter fetch — the second invocation onwards must be served
    // by the pool, or the recycling hot path has silently rotted.
    if (smoke) {
      PM2_CHECK(row.pool_hits > 0)
          << fabric_name << " smoke run had pool_hits == 0 — the "
          << "invocation pool is not serving the RPC hot path";
      // Tail guard: a p99 anywhere near the ceiling means replies are
      // crossing a blind poll window or a lost-wakeup park, not a fabric.
      // Injected faults legitimately blow the tail, so the guard only
      // applies to clean runs.
      if (row.mode == "async" && outstanding >= 8 && g_fault.empty()) {
        PM2_CHECK(row.p99_us < kSmokeP99CeilingUs)
            << fabric_name << " async window " << outstanding
            << " smoke p99 " << row.p99_us << " us exceeds the "
            << kSmokeP99CeilingUs << " us ceiling — reply wake-up path "
            << "regressed";
      }
    }
    uint64_t steals = 0;
    for (size_t w = 0; w < row.wstats.size(); w += 5)
      steals += row.wstats[w + 1];
    bench::print_cell(fabric_name);
    bench::print_cell(row.mode.c_str());
    bench::print_cell(static_cast<uint64_t>(row.outstanding));
    bench::print_cell(row.calls);
    bench::print_cell(row.us_per_call);
    bench::print_cell(row.p50_us);
    bench::print_cell(row.p99_us);
    bench::print_cell(row.p999_us);
    bench::print_cell(row.calls_per_s);
    bench::print_cell(row.wire_mb);
    bench::print_cell(row.copy_mb);
    bench::print_cell(row.pool_hits);
    bench::print_cell(row.pool_misses);
    bench::print_cell(hit_rate(row.fut_hits, row.fut_misses));
    bench::print_cell(hit_rate(row.chunk_hits, row.chunk_misses));
    bench::print_cell(row.timeouts);
    bench::print_cell(static_cast<uint64_t>(row.workers));
    bench::print_cell(steals);
    bench::print_row_end();
  }
}

void write_json(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  PM2_CHECK(f != nullptr) << "cannot write " << path;
  std::fprintf(f,
               "{\n  \"bench\": \"bench_rpc\",\n  \"calls\": %llu,\n"
               "  \"payload\": %zu,\n  \"workers_requested\": %u,\n"
               "  \"fault_plan\": \"%s\",\n  \"timeout_ms\": %llu,\n"
               "  \"rows\": [\n",
               static_cast<unsigned long long>(g_calls), g_payload,
               g_workers, g_fault.c_str(),
               static_cast<unsigned long long>(g_timeout_ms));
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(
        f,
        "    {\"fabric\": \"%s\", \"mode\": \"%s\", \"outstanding\": %zu, "
        "\"calls\": %llu, \"us_per_call\": %.3f, \"p50_us\": %.3f, "
        "\"p99_us\": %.3f, \"p999_us\": %.3f, \"calls_per_s\": %.1f, "
        "\"wire_mb\": %.3f, \"copy_mb\": %.3f, \"pool_hits\": %llu, "
        "\"pool_misses\": %llu, \"pool_evictions\": %llu, "
        "\"future_pool_hits\": %llu, \"future_pool_misses\": %llu, "
        "\"chunk_pool_hits\": %llu, \"chunk_pool_misses\": %llu, "
        "\"timeouts\": %llu, \"workers\": %u, \"worker_stats\": [",
        r.fabric.c_str(), r.mode.c_str(), r.outstanding,
        static_cast<unsigned long long>(r.calls), r.us_per_call, r.p50_us,
        r.p99_us, r.p999_us, r.calls_per_s, r.wire_mb, r.copy_mb,
        static_cast<unsigned long long>(r.pool_hits),
        static_cast<unsigned long long>(r.pool_misses),
        static_cast<unsigned long long>(r.pool_evictions),
        static_cast<unsigned long long>(r.fut_hits),
        static_cast<unsigned long long>(r.fut_misses),
        static_cast<unsigned long long>(r.chunk_hits),
        static_cast<unsigned long long>(r.chunk_misses),
        static_cast<unsigned long long>(r.timeouts), r.workers);
    for (size_t w = 0; w * 5 < r.wstats.size(); ++w) {
      std::fprintf(
          f,
          "{\"dispatches\": %llu, \"steals\": %llu, "
          "\"steal_failures\": %llu, \"handoffs\": %llu, "
          "\"idle_wakeups\": %llu}%s",
          static_cast<unsigned long long>(r.wstats[w * 5]),
          static_cast<unsigned long long>(r.wstats[w * 5 + 1]),
          static_cast<unsigned long long>(r.wstats[w * 5 + 2]),
          static_cast<unsigned long long>(r.wstats[w * 5 + 3]),
          static_cast<unsigned long long>(r.wstats[w * 5 + 4]),
          (w + 1) * 5 < r.wstats.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bool smoke = flags.has("smoke");
  // Smoke needs enough calls for the window-8 p99 tail guard to sample
  // something beyond the warm-up call, while staying CI-cheap.
  g_calls = static_cast<uint64_t>(flags.i64("calls", smoke ? 64 : 2000));
  g_payload = static_cast<size_t>(flags.i64("payload", 64));
  g_workers = static_cast<uint32_t>(flags.i64("workers", 0));
  std::string json_path = flags.str("json", "");
  g_fault = flags.str("fault", "");
  g_timeout_ms = static_cast<uint64_t>(flags.i64("timeout_ms", 0));
  if (!g_fault.empty()) {
    // Validate the plan grammar loudly before any session runs, and refuse
    // a lossy plan without a deadline — a dropped reply with no timeout
    // parks the caller forever.
    fabric::FaultPlan plan = fabric::FaultPlan::parse(g_fault);
    PM2_CHECK(plan.active()) << "--fault plan injects nothing: " << g_fault;
    if (g_timeout_ms == 0) g_timeout_ms = 100;
  }

  bench::print_header(
      "RPC: blocking call() vs pipelined call_async() (echo round trips)",
      {"fabric", "mode", "outstanding", "calls", "us_per_call", "p50_us",
       "p99_us", "p999_us", "calls_per_s", "wire_MB", "copy_MB",
       "pool_hits", "pool_miss", "fut_hit%", "chk_hit%", "timeouts",
       "workers", "steals"});

  // outstanding == 0 encodes the blocking-call baseline.  Smoke mode runs
  // short sessions of each mode on both fabrics: CI keeps the binary, the
  // session bring-up, and the async tail (window 8) from rotting without
  // paying for a measurement.
  const std::vector<size_t> windows =
      smoke ? std::vector<size_t>{0, 1, 8}
            : std::vector<size_t>{0, 1, 2, 4, 8, 16, 32, 64};

  double sync_us_inproc = 0;
  double best_async_us_inproc = 1e18;
  bench_fabric("inproc", false, smoke, windows, &sync_us_inproc,
               &best_async_us_inproc);
  double sync_us_socket = 0;
  double best_async_us_socket = 1e18;
  bench_fabric("socket", true, smoke, windows, &sync_us_socket,
               &best_async_us_socket);

  if (!json_path.empty()) write_json(json_path);

  if (!smoke) {
    std::printf(
        "\nPipelining speedup (sync us/call over best async us/call):\n"
        "  inproc  %.2fx   socket  %.2fx\n"
        "With pooled invocations the serial cost per call is a context\n"
        "reset + dispatch, so the blocking round trip is near the kernel\n"
        "handoff floor; pipelining pays off once per-call service work\n"
        "exceeds the round trip — widen --payload or add work to see it.\n",
        sync_us_inproc / best_async_us_inproc,
        sync_us_socket / best_async_us_socket);
  }
  return 0;
}
