// Slot-store checkpoint & residency-tiering costs.
//
// The slot store turns a node's iso-area into buffer-managed storage: a
// node checkpoint persists every checkpointable thread into the per-node
// store file, soft-dirty tracking shrinks the second and later rounds to
// the pages actually written since the last one, and the residency tier
// (demote / fault-back) trades resident bytes for file bytes on cold
// frozen threads.  This bench prices all three on one node:
//
//   * full node checkpoint of N threads (bytes written, µs);
//   * incremental re-checkpoint after dirtying ~10% of the pages
//     (bytes written vs skipped — the soft-dirty payoff);
//   * demote + fault-back round trip per thread (µs each way), plus the
//     resident-byte count the store absorbed.
//
//   ./bench_checkpoint                    # default: 16 threads x 64 KiB
//   ./bench_checkpoint --threads 64 --kb 256
//   ./bench_checkpoint --json out.json    # machine-readable rows
//   ./bench_checkpoint --smoke            # CI: small run; asserts the
//                                         # incremental round writes less
//                                         # than the full one (soft-dirty
//                                         # kernels) and that demote /
//                                         # fault-back round trips happen
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/time.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/checkpoint.hpp"
#include "pm2/runtime.hpp"
#include "sys/vm.hpp"

using namespace pm2;

namespace {

int64_t g_threads = 16;
int64_t g_kb = 64;  // iso-heap per thread

std::atomic<int> g_built{0};
std::atomic<int> g_phase{0};
std::atomic<int> g_done{0};

struct Row {
  const char* phase;
  double us;
  uint64_t threads;
  uint64_t bytes_written;
  uint64_t bytes_skipped;
  uint64_t incremental;
};
std::vector<Row> g_rows;

void add_row(const char* phase, double us, const StoreCheckpointStats& s) {
  g_rows.push_back(Row{phase, us, s.threads, s.bytes_written, s.bytes_skipped,
                       s.incremental ? 1u : 0u});
  bench::print_cell(phase);
  bench::print_cell(us);
  bench::print_cell(s.threads);
  bench::print_cell(s.bytes_written);
  bench::print_cell(s.bytes_skipped);
  bench::print_cell(uint64_t{s.incremental ? 1u : 0u});
  bench::print_row_end();
}

void worker(void*) {
  const size_t bytes = static_cast<size_t>(g_kb) * 1024;
  auto* data = static_cast<unsigned char*>(pm2_isomalloc(bytes));
  std::memset(data, 0x5a, bytes);
  g_built.fetch_add(1);
  while (g_phase.load() < 1) pm2_yield();
  // Dirty ~10% of the pages between the full and incremental rounds.
  for (size_t p = 0; p * 4096 < bytes; p += 10) data[p * 4096] ^= 0xff;
  g_done.fetch_add(1);
  while (g_phase.load() < 2) pm2_yield();
  pm2_isofree(data);
  pm2_signal(0);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.has("smoke");
  g_threads = flags.i64("threads", smoke ? 4 : 16);
  g_kb = flags.i64("kb", 64);
  const std::string json_path = flags.str("json", "");

  char dir[] = "/tmp/pm2-bench-ckpt-XXXXXX";
  PM2_CHECK(::mkdtemp(dir) != nullptr);

  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.slot_store_dir = dir;

  StoreCheckpointStats full_stats, incr_stats;
  double full_us = 0, incr_us = 0, demote_us = 0, fault_us = 0;
  uint64_t demoted_bytes = 0, residual_bytes = 0;
  uint64_t demotions = 0, fault_backs = 0;

  run_app(cfg, [&](Runtime& rt) {
    std::vector<marcel::ThreadId> ids;
    for (int64_t i = 0; i < g_threads; ++i) {
      ids.push_back(pm2_thread_create(worker, nullptr, "ckpt"));
    }
    while (g_built.load() < g_threads) pm2_yield();

    full_us = bench::time_us([&] { full_stats = checkpoint_node_to_store(rt); });

    g_phase = 1;
    while (g_done.load() < g_threads) pm2_yield();
    incr_us = bench::time_us([&] { incr_stats = checkpoint_node_to_store(rt); });

    // Residency tier: freeze everything, page it out, fault it all back.
    for (marcel::ThreadId id : ids) PM2_CHECK(rt.freeze_thread(id));
    demote_us = bench::time_us([&] {
      for (marcel::ThreadId id : ids) PM2_CHECK(rt.demote_thread(id));
    });
    demoted_bytes = rt.demoted_bytes();
    fault_us = bench::time_us([&] {
      for (marcel::ThreadId id : ids) PM2_CHECK(rt.unfreeze_thread(id));
    });
    residual_bytes = rt.demoted_bytes();
    demotions = rt.demotions();
    fault_backs = rt.fault_backs();

    g_phase = 2;
    pm2_wait_signals(static_cast<uint64_t>(g_threads));
  });

  bench::print_header(
      "Node checkpoint through the slot store (PM2STOR1)",
      {"phase", "us", "threads", "bytes_out", "bytes_skip", "incr"});
  add_row("full", full_us, full_stats);
  add_row("incremental", incr_us, incr_stats);

  bench::print_header(
      "Residency tier: demote / fault-back of all threads",
      {"threads", "demote_us", "fault_us", "bytes", "demotions",
       "fault_backs"});
  bench::print_cell(static_cast<uint64_t>(g_threads));
  bench::print_cell(demote_us);
  bench::print_cell(fault_us);
  bench::print_cell(demoted_bytes);
  bench::print_cell(demotions);
  bench::print_cell(fault_backs);
  bench::print_row_end();

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    PM2_CHECK(f != nullptr) << "cannot write " << json_path;
    std::fprintf(f,
                 "{\n  \"bench\": \"bench_checkpoint\",\n"
                 "  \"threads\": %lld,\n  \"kb_per_thread\": %lld,\n"
                 "  \"soft_dirty\": %s,\n  \"rows\": [\n",
                 static_cast<long long>(g_threads),
                 static_cast<long long>(g_kb),
                 sys::soft_dirty_supported() ? "true" : "false");
    for (size_t i = 0; i < g_rows.size(); ++i) {
      const Row& r = g_rows[i];
      std::fprintf(f,
                   "    {\"phase\": \"%s\", \"us\": %.1f, \"threads\": %llu, "
                   "\"bytes_written\": %llu, \"bytes_skipped\": %llu, "
                   "\"incremental\": %llu}%s\n",
                   r.phase, r.us, static_cast<unsigned long long>(r.threads),
                   static_cast<unsigned long long>(r.bytes_written),
                   static_cast<unsigned long long>(r.bytes_skipped),
                   static_cast<unsigned long long>(r.incremental),
                   i + 1 < g_rows.size() ? "," : ",");
    }
    std::fprintf(f,
                 "    {\"phase\": \"tier\", \"demote_us\": %.1f, "
                 "\"fault_us\": %.1f, \"demoted_bytes\": %llu, "
                 "\"demotions\": %llu, \"fault_backs\": %llu}\n  ]\n}\n",
                 demote_us, fault_us,
                 static_cast<unsigned long long>(demoted_bytes),
                 static_cast<unsigned long long>(demotions),
                 static_cast<unsigned long long>(fault_backs));
    std::fclose(f);
  }

  if (smoke) {
    PM2_CHECK(full_stats.threads == static_cast<uint64_t>(g_threads));
    PM2_CHECK(full_stats.bytes_written > 0);
    if (sys::soft_dirty_supported()) {
      PM2_CHECK(incr_stats.incremental)
          << "smoke: second checkpoint round was not incremental";
      PM2_CHECK(incr_stats.bytes_written < full_stats.bytes_written)
          << "smoke: incremental round (" << incr_stats.bytes_written
          << " bytes) did not write less than the full round ("
          << full_stats.bytes_written << " bytes)";
      PM2_CHECK(incr_stats.bytes_skipped > 0);
    }
    PM2_CHECK(demotions == static_cast<uint64_t>(g_threads));
    PM2_CHECK(fault_backs == static_cast<uint64_t>(g_threads));
    PM2_CHECK(demoted_bytes > 0) << "demote paged nothing out";
    PM2_CHECK(residual_bytes == 0) << "fault-back left bytes demoted";
    std::printf("\nsmoke OK\n");
  }
  return 0;
}
