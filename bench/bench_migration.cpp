// E1 — Thread migration latency (paper §5: "The time needed to migrate a
// thread with no static data between two nodes is less than 75 us.  It was
// measured by means of a thread ping-pong between two nodes.").
//
// Reproduces the measurement: a thread ping-pongs between two nodes; the
// one-way latency is total/(2*rounds).  The paper's number includes packing,
// transfer, allocation on the destination and unpacking — ours does too.
// Sweeps the amount of isomalloc'd data attached to the thread (the paper's
// thread carries none) and the payload mode (whole slots vs live blocks,
// the §6 optimization).
//
// Run with --spawn to use real processes over UNIX sockets instead of the
// in-process fabric.
#include <atomic>
#include <cstring>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

std::atomic<uint64_t> g_total_ns{0};
std::atomic<uint64_t> g_wire_bytes{0};
std::atomic<uint64_t> g_copy_bytes{0};
std::atomic<uint64_t> g_rounds{0};
std::atomic<uint64_t> g_payload{0};
// In --spawn mode the measurement happens in a child process, so the worker
// prints its own result line instead of returning it to the parent table.
std::atomic<bool> g_print_from_worker{false};

void ping_worker(void*) {
  const auto rounds = static_cast<int>(g_rounds.load());
  const auto payload = static_cast<size_t>(g_payload.load());

  unsigned char* data = nullptr;
  if (payload > 0) {
    data = static_cast<unsigned char*>(pm2_isomalloc(payload));
    std::memset(data, 0x3C, payload);
  }
  // Warm-up: fault in both directions.
  pm2_migrate(marcel_self(), 1);
  pm2_migrate(marcel_self(), 0);

  Stopwatch sw;
  for (int r = 0; r < rounds; ++r) {
    pm2_migrate(marcel_self(), 1);
    pm2_migrate(marcel_self(), 0);
  }
  g_total_ns = sw.elapsed_ns();
  if (g_print_from_worker.load()) {
    pm2_printf("payload=%zu one_way_us=%.2f copy_MB=%.2f (over %d rounds)\n",
               payload,
               static_cast<double>(g_total_ns.load()) / 1e3 / (2.0 * rounds),
               static_cast<double>(
                   Runtime::current()->fabric().payload_copy_bytes()) / 1e6,
               rounds);
  }

  if (data != nullptr) {
    // Sanity: the data made every trip intact.
    PM2_CHECK(data[0] == 0x3C && data[payload - 1] == 0x3C);
    pm2_isofree(data);
  }
  pm2_signal(0);
}

double run_pingpong(uint32_t rounds, size_t payload, bool blocks_only,
                    bool multiprocess, const std::vector<std::string>& argv) {
  g_rounds = rounds;
  g_payload = payload;
  g_total_ns = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.multiprocess = multiprocess;
  cfg.child_args = argv;
  cfg.rt.migrate_blocks_only = blocks_only;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&ping_worker, nullptr, "pingpong");
      pm2_wait_signals(1);
      g_wire_bytes = rt.fabric().bytes_sent();
      // Transport-side payload copies (flatten/seal) per session: 0 on the
      // socket fabric (writev gathers straight from slot memory); the
      // in-process hub pays one ownership copy per borrowed payload.
      g_copy_bytes = rt.fabric().payload_copy_bytes();
    }
  });
  return static_cast<double>(g_total_ns.load()) / 1e3 /
         (2.0 * static_cast<double>(rounds));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto rounds = static_cast<uint32_t>(flags.i64("rounds", 500));
  const bool spawn = flags.b("spawn");
  std::vector<std::string> child_args(argv + 1, argv + argc);

  if (is_spawned_child()) {
    // Child node processes re-enter here; payload/mode arrive via flags.
    g_print_from_worker = true;
    run_pingpong(rounds, static_cast<size_t>(flags.i64("payload", 0)),
                 flags.b("blocks_only", true), true, child_args);
    return 0;
  }

  bench::print_header(
      "E1: thread migration ping-pong (one-way latency, paper: <75us on "
      "BIP/Myrinet; Active Threads baseline: 150us)",
      {"payload_B", "mode", "rounds", "one_way_us", "wire_MB", "copy_MB"});

  const size_t payloads[] = {0,       4 * 1024,   16 * 1024,
                             64 * 1024, 256 * 1024, 1024 * 1024};
  for (size_t payload : payloads) {
    for (bool blocks_only : {true, false}) {
      std::vector<std::string> args = child_args;
      args.push_back("--payload=" + std::to_string(payload));
      args.push_back(std::string("--blocks_only=") +
                     (blocks_only ? "true" : "false"));
      double us = run_pingpong(rounds, payload, blocks_only, spawn, args);
      bench::print_cell(static_cast<uint64_t>(payload));
      bench::print_cell(blocks_only ? "blocks" : "full-slots");
      bench::print_cell(static_cast<uint64_t>(rounds));
      bench::print_cell(us);
      bench::print_cell(static_cast<double>(g_wire_bytes.load()) / 1e6);
      bench::print_cell(static_cast<double>(g_copy_bytes.load()) / 1e6);
      bench::print_row_end();
    }
  }
  std::printf(
      "\nShape check vs paper: null-payload migration should sit in the\n"
      "tens-of-microseconds range and scale linearly with payload; the\n"
      "blocks-only mode should beat full-slots once the heap is sparse.\n"
      "copy_MB counts transport-side payload copies (flatten/seal): with\n"
      "--spawn (socket fabric) it is 0 — slot extents gather straight to\n"
      "writev — while the in-process hub pays one ownership copy.\n");
  return 0;
}
