// Thread-specific keys (marcel_key_*) and the readers-writer lock.
#include <gtest/gtest.h>

#include <atomic>

#include "marcel/keys.hpp"
#include "marcel/sync.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

// Key ids are process-global; allocate the test's keys once.
marcel::Key g_key_a = marcel::key_create();
marcel::Key g_key_b = marcel::key_create();

std::atomic<bool> g_ok{true};

TEST(Keys, DefaultsToNull) {
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime&) {
    EXPECT_EQ(marcel::getspecific(g_key_a), nullptr);
  });
}

TEST(Keys, PerThreadIsolation) {
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime& rt) {
    auto t1 = rt.spawn_local([&] {
      marcel::setspecific(g_key_a, reinterpret_cast<void*>(0x11));
      pm2_yield();
      EXPECT_EQ(marcel::getspecific(g_key_a), reinterpret_cast<void*>(0x11));
    });
    auto t2 = rt.spawn_local([&] {
      marcel::setspecific(g_key_a, reinterpret_cast<void*>(0x22));
      pm2_yield();
      EXPECT_EQ(marcel::getspecific(g_key_a), reinterpret_cast<void*>(0x22));
    });
    rt.join(t1);
    rt.join(t2);
    EXPECT_EQ(marcel::getspecific(g_key_a), nullptr);  // main untouched
  });
}

void key_migrating_worker(void*) {
  // A key value pointing into iso-memory must survive migration.
  auto* data = static_cast<int*>(pm2_isomalloc(sizeof(int)));
  *data = 4242;
  marcel::setspecific(g_key_b, data);
  pm2_migrate(marcel_self(), 1);
  auto* back = static_cast<int*>(marcel::getspecific(g_key_b));
  if (back != data || *back != 4242) g_ok = false;
  pm2_isofree(back);
  pm2_signal(0);
}

TEST(Keys, ValuesMigrateWithThread) {
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&key_migrating_worker, nullptr, "keys");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

TEST(RwLock, ManyConcurrentReaders) {
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime& rt) {
    marcel::RwLock rw;
    std::atomic<int> concurrent{0}, peak{0};
    std::vector<marcel::ThreadId> ids;
    for (int i = 0; i < 5; ++i) {
      ids.push_back(rt.spawn_local([&] {
        rw.lock_shared();
        int now = ++concurrent;
        peak = std::max(peak.load(), now);
        pm2_yield();
        --concurrent;
        rw.unlock_shared();
      }));
    }
    for (auto id : ids) rt.join(id);
    EXPECT_EQ(peak.load(), 5);  // readers overlapped
  });
}

TEST(RwLock, WriterExcludesEveryone) {
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime& rt) {
    marcel::RwLock rw;
    int shared_value = 0;
    bool reader_saw_partial = false;
    auto writer = rt.spawn_local([&] {
      rw.lock();
      shared_value = 1;
      pm2_yield();  // readers must NOT slip in here
      shared_value = 2;
      rw.unlock();
    });
    auto reader = rt.spawn_local([&] {
      rw.lock_shared();
      if (shared_value == 1) reader_saw_partial = true;
      rw.unlock_shared();
    });
    rt.join(writer);
    rt.join(reader);
    EXPECT_FALSE(reader_saw_partial);
    EXPECT_EQ(shared_value, 2);
  });
}

TEST(RwLock, WriterPreferenceBlocksNewReaders) {
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime& rt) {
    marcel::RwLock rw;
    std::vector<int> order;
    // Reader 1 holds the lock; a writer queues; reader 2 arrives later and
    // must wait behind the writer.
    auto r1 = rt.spawn_local([&] {
      rw.lock_shared();
      for (int i = 0; i < 4; ++i) pm2_yield();
      rw.unlock_shared();
      order.push_back(1);
    });
    pm2_yield();  // let r1 take the lock
    auto w = rt.spawn_local([&] {
      rw.lock();
      order.push_back(2);
      rw.unlock();
    });
    pm2_yield();
    auto r2 = rt.spawn_local([&] {
      rw.lock_shared();
      order.push_back(3);
      rw.unlock_shared();
    });
    rt.join(r1);
    rt.join(w);
    rt.join(r2);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);  // writer before the late reader
    EXPECT_EQ(order[2], 3);
  });
}

}  // namespace
}  // namespace pm2
