// Block layer: first/best fit, split, coalesce, invariants.
#include "isomalloc/block.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>

namespace pm2::iso {
namespace {

constexpr size_t kSlotSize = 64 * 1024;

/// Block tests need no iso-addresses: any aligned region works.
class BlockTest : public ::testing::Test {
 protected:
  BlockTest() {
    region_ = std::aligned_alloc(4096, 4 * kSlotSize);
    std::memset(region_, 0, 4 * kSlotSize);
  }
  ~BlockTest() override { std::free(region_); }

  SlotHeader* heap_slot(uint32_t nslots = 1) {
    return init_heap_slot(region_, nslots, kSlotSize, /*owner=*/7);
  }

  void* region_;
};

TEST_F(BlockTest, FreshSlotIsOneFreeBlock) {
  SlotHeader* slot = heap_slot();
  EXPECT_TRUE(slot->valid());
  EXPECT_TRUE(slot_empty(slot, kSlotSize));
  EXPECT_EQ(slot_free_bytes(slot),
            kSlotSize - sizeof(SlotHeader) - sizeof(BlockHeader));
  check_slot_invariants(slot, kSlotSize);
}

TEST_F(BlockTest, AllocReturnsAlignedPayload) {
  SlotHeader* slot = heap_slot();
  void* p = block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
  EXPECT_GE(block_payload_size(p), 100u);
  check_slot_invariants(slot, kSlotSize);
}

TEST_F(BlockTest, AllocZeroBytesIsUnique) {
  SlotHeader* slot = heap_slot();
  void* a = block_alloc(slot, 0, kSlotSize, FitPolicy::kFirstFit);
  void* b = block_alloc(slot, 0, kSlotSize, FitPolicy::kFirstFit);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  check_slot_invariants(slot, kSlotSize);
}

TEST_F(BlockTest, WriteFullPayloadDoesNotCorrupt) {
  SlotHeader* slot = heap_slot();
  void* a = block_alloc(slot, 1000, kSlotSize, FitPolicy::kFirstFit);
  void* b = block_alloc(slot, 2000, kSlotSize, FitPolicy::kFirstFit);
  std::memset(a, 0xAA, block_payload_size(a));
  std::memset(b, 0xBB, block_payload_size(b));
  check_slot_invariants(slot, kSlotSize);
  EXPECT_EQ(static_cast<unsigned char*>(a)[999], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(b)[1999], 0xBB);
}

TEST_F(BlockTest, ExhaustionReturnsNull) {
  SlotHeader* slot = heap_slot();
  size_t usable = kSlotSize - sizeof(SlotHeader) - sizeof(BlockHeader);
  void* p = block_alloc(slot, usable, kSlotSize, FitPolicy::kFirstFit);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(block_alloc(slot, 1, kSlotSize, FitPolicy::kFirstFit), nullptr);
}

TEST_F(BlockTest, FreeThenReuseSameSpace) {
  SlotHeader* slot = heap_slot();
  void* a = block_alloc(slot, 5000, kSlotSize, FitPolicy::kFirstFit);
  bool empty = false;
  block_free(a, kSlotSize, &empty);
  EXPECT_TRUE(empty);  // only block: coalesced back to a pristine slot
  void* b = block_alloc(slot, 5000, kSlotSize, FitPolicy::kFirstFit);
  EXPECT_EQ(a, b);
  check_slot_invariants(slot, kSlotSize);
}

TEST_F(BlockTest, CoalesceWithNext) {
  SlotHeader* slot = heap_slot();
  void* a = block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  void* b = block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  [[maybe_unused]] void* guard =
      block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  // Free b (middle) first, then a: a must absorb b.
  uint64_t coalesces = 0;
  block_free(b, kSlotSize, nullptr, &coalesces);
  block_free(a, kSlotSize, nullptr, &coalesces);
  EXPECT_GE(coalesces, 1u);
  check_slot_invariants(slot, kSlotSize);
  // The merged hole must now fit something bigger than either block.
  void* big = block_alloc(slot, 200, kSlotSize, FitPolicy::kFirstFit);
  EXPECT_EQ(big, a);
}

TEST_F(BlockTest, CoalesceWithPrev) {
  SlotHeader* slot = heap_slot();
  void* a = block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  void* b = block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  [[maybe_unused]] void* guard =
      block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  uint64_t coalesces = 0;
  block_free(a, kSlotSize, nullptr, &coalesces);
  block_free(b, kSlotSize, nullptr, &coalesces);  // merges into a's hole
  EXPECT_GE(coalesces, 1u);
  check_slot_invariants(slot, kSlotSize);
}

TEST_F(BlockTest, FullCycleRestoresEmptySlot) {
  SlotHeader* slot = heap_slot();
  std::vector<void*> ptrs;
  for (int i = 0; i < 20; ++i)
    ptrs.push_back(block_alloc(slot, 512, kSlotSize, FitPolicy::kFirstFit));
  for (void* p : ptrs) block_free(p, kSlotSize, nullptr);
  EXPECT_TRUE(slot_empty(slot, kSlotSize));
  EXPECT_EQ(slot_largest_free(slot),
            kSlotSize - sizeof(SlotHeader) - sizeof(BlockHeader));
}

TEST_F(BlockTest, BestFitPicksTightestHole) {
  SlotHeader* slot = heap_slot();
  // Carve: [A:2000][B:100][C:600][D:100][E:rest]; free A and C.
  void* a = block_alloc(slot, 2000, kSlotSize, FitPolicy::kFirstFit);
  block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  void* c = block_alloc(slot, 600, kSlotSize, FitPolicy::kFirstFit);
  block_alloc(slot, 100, kSlotSize, FitPolicy::kFirstFit);
  block_free(a, kSlotSize, nullptr);
  block_free(c, kSlotSize, nullptr);
  // Request 500: first-fit would take A's 2000-hole (lower address).
  void* ff = block_alloc(slot, 500, kSlotSize, FitPolicy::kFirstFit);
  EXPECT_EQ(ff, a);
  block_free(ff, kSlotSize, nullptr);
  // Best-fit must take C's 600-hole instead.
  void* bf = block_alloc(slot, 500, kSlotSize, FitPolicy::kBestFit);
  EXPECT_EQ(bf, c);
  check_slot_invariants(slot, kSlotSize);
}

TEST_F(BlockTest, MultiSlotRunActsAsOneBigSlot) {
  SlotHeader* slot = heap_slot(4);
  size_t usable = 4 * kSlotSize - sizeof(SlotHeader) - sizeof(BlockHeader);
  EXPECT_EQ(slot_largest_free(slot), usable);
  void* p = block_alloc(slot, 3 * kSlotSize, kSlotSize, FitPolicy::kFirstFit);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, 3 * kSlotSize);
  check_slot_invariants(slot, kSlotSize);
  bool empty = false;
  block_free(p, kSlotSize, &empty);
  EXPECT_TRUE(empty);
}

TEST_F(BlockTest, ForEachBlockVisitsAllInOrder) {
  SlotHeader* slot = heap_slot();
  block_alloc(slot, 64, kSlotSize, FitPolicy::kFirstFit);
  block_alloc(slot, 64, kSlotSize, FitPolicy::kFirstFit);
  std::vector<BlockHeader*> seen;
  for_each_block(slot, kSlotSize, [&](BlockHeader* b) { seen.push_back(b); });
  ASSERT_EQ(seen.size(), 3u);  // two busy + trailing free
  EXPECT_LT(seen[0], seen[1]);
  EXPECT_LT(seen[1], seen[2]);
  EXPECT_FALSE(seen[0]->free);
  EXPECT_TRUE(seen[2]->free);
}

TEST_F(BlockTest, SlotsNeededComputation) {
  EXPECT_EQ(slots_needed(1, kSlotSize), 1u);
  EXPECT_EQ(slots_needed(kSlotSize / 2, kSlotSize), 1u);
  // A full slot of payload cannot fit beside the headers.
  EXPECT_EQ(slots_needed(kSlotSize, kSlotSize), 2u);
  EXPECT_EQ(slots_needed(10 * kSlotSize, kSlotSize), 11u);
}

TEST_F(BlockTest, DoubleFreeDies) {
  SlotHeader* slot = heap_slot();
  void* p = block_alloc(slot, 64, kSlotSize, FitPolicy::kFirstFit);
  block_free(p, kSlotSize, nullptr);
  EXPECT_DEATH(block_free(p, kSlotSize, nullptr), "double free");
}

TEST_F(BlockTest, FreeingGarbageDies) {
  SlotHeader* slot = heap_slot();
  void* p = block_alloc(slot, 64, kSlotSize, FitPolicy::kFirstFit);
  EXPECT_DEATH(block_free(static_cast<char*>(p) + 8, kSlotSize, nullptr),
               "not an isomalloc block");
}

}  // namespace
}  // namespace pm2::iso
