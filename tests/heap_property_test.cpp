// Property-based tests: random alloc/free/realloc traces must preserve all
// heap invariants, never overlap live blocks, and conserve slots.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/random.hpp"
#include "isomalloc/heap.hpp"

namespace pm2::iso {
namespace {

AreaConfig prop_area_config() {
  AreaConfig cfg;
  cfg.base = iso::offset_area_base(3);
  cfg.size = 128ull << 20;  // 2048 slots
  cfg.slot_size = 64 * 1024;
  return cfg;
}

struct TraceParams {
  uint64_t seed;
  FitPolicy fit;
  bool release_empty;
  size_t max_size;  // allocation size cap
};

class HeapTraceProperty : public ::testing::TestWithParam<TraceParams> {};

TEST_P(HeapTraceProperty, RandomTracePreservesInvariants) {
  const TraceParams param = GetParam();
  Area area(prop_area_config());
  SlotManagerConfig mc;
  mc.node = 0;
  mc.n_nodes = 1;
  mc.distribution = Distribution::kPartitioned;
  SlotManager mgr(area, mc);

  void* slot_list = nullptr;
  HeapStats stats;
  HeapConfig hc;
  hc.fit = param.fit;
  hc.release_empty_slots = param.release_empty;
  ThreadHeap heap(&slot_list, 1, mgr, hc, &stats);

  Rng rng(param.seed);
  // live: payload pointer -> (size, fill byte)
  std::map<char*, std::pair<size_t, unsigned char>> live;
  const size_t total_slots = mgr.owned_free_slots();

  for (int step = 0; step < 2000; ++step) {
    double dice = rng.next_double();
    if (dice < 0.55 || live.empty()) {
      size_t size = rng.next_range(1, param.max_size);
      auto* p = static_cast<char*>(heap.alloc(size));
      if (p == nullptr) continue;  // single node: genuine exhaustion only
      auto fill = static_cast<unsigned char>(rng.next() & 0xFF);
      std::memset(p, fill, size);
      // No overlap with any live block.
      for (const auto& [q, meta] : live) {
        bool disjoint = p + size <= q || q + meta.first <= p;
        ASSERT_TRUE(disjoint) << "allocator returned overlapping block";
      }
      live[p] = {size, fill};
    } else if (dice < 0.9) {
      // Free a pseudo-random live block.
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      auto [p, meta] = *it;
      // Contents must be intact before the free.
      for (size_t i = 0; i < meta.first; i += 251)
        ASSERT_EQ(static_cast<unsigned char>(p[i]), meta.second);
      heap.free(p);
      live.erase(it);
    } else {
      // Realloc a live block to a new size.
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      auto [p, meta] = *it;
      size_t new_size = rng.next_range(1, param.max_size);
      auto* q = static_cast<char*>(heap.realloc(p, new_size));
      ASSERT_NE(q, nullptr);
      size_t preserved = std::min(meta.first, new_size);
      for (size_t i = 0; i < preserved; i += 97)
        ASSERT_EQ(static_cast<unsigned char>(q[i]), meta.second);
      live.erase(it);
      std::memset(q, meta.second, new_size);
      live[q] = {new_size, meta.second};
    }

    if (step % 100 == 0) {
      ThreadHeap::check_invariants(slot_list, area.slot_size());
      // Slot conservation: owned + thread-attached == total.
      size_t attached = 0;
      ThreadHeap::for_each_slot(
          slot_list, [&](SlotHeader* s) { attached += s->nslots; });
      ASSERT_EQ(mgr.owned_free_slots() + attached, total_slots);
    }
  }

  // Drain and verify the world returns to pristine.
  while (!live.empty()) {
    auto it = live.begin();
    heap.free(it->first);
    live.erase(it);
  }
  ThreadHeap::check_invariants(slot_list, area.slot_size());
  if (param.release_empty) {
    EXPECT_EQ(slot_list, nullptr);
    EXPECT_EQ(mgr.owned_free_slots(), total_slots);
  }
  EXPECT_EQ(stats.bytes_allocated, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Traces, HeapTraceProperty,
    ::testing::Values(
        // Small blocks, both fit policies, both release policies.
        TraceParams{1, FitPolicy::kFirstFit, true, 4096},
        TraceParams{2, FitPolicy::kBestFit, true, 4096},
        TraceParams{3, FitPolicy::kFirstFit, false, 4096},
        TraceParams{4, FitPolicy::kBestFit, false, 4096},
        // Mixed sizes crossing the slot boundary (multi-slot runs).
        TraceParams{5, FitPolicy::kFirstFit, true, 200 * 1024},
        TraceParams{6, FitPolicy::kBestFit, true, 200 * 1024},
        TraceParams{7, FitPolicy::kFirstFit, false, 200 * 1024},
        // Different seeds for coverage.
        TraceParams{99, FitPolicy::kFirstFit, true, 32 * 1024},
        TraceParams{1337, FitPolicy::kBestFit, true, 32 * 1024}));

// Fragmentation property: first-fit on an adversarial trace still reuses
// freed space (no unbounded growth).
TEST(HeapFragmentation, AlternatingFreePatternBounded) {
  Area area(prop_area_config());
  SlotManagerConfig mc;
  mc.node = 0;
  mc.n_nodes = 1;
  mc.distribution = Distribution::kPartitioned;
  SlotManager mgr(area, mc);
  void* slot_list = nullptr;
  ThreadHeap heap(&slot_list, 1, mgr);

  std::vector<void*> ptrs;
  for (int i = 0; i < 200; ++i) ptrs.push_back(heap.alloc(500));
  // Free every other block, then allocate same-size blocks: they must fit
  // into the holes without growing the slot set.
  size_t attached_before = 0;
  ThreadHeap::for_each_slot(slot_list,
                            [&](SlotHeader* s) { attached_before += s->nslots; });
  for (size_t i = 0; i < ptrs.size(); i += 2) heap.free(ptrs[i]);
  for (size_t i = 0; i < ptrs.size(); i += 2) {
    ptrs[i] = heap.alloc(400);
    ASSERT_NE(ptrs[i], nullptr);
  }
  size_t attached_after = 0;
  ThreadHeap::for_each_slot(slot_list,
                            [&](SlotHeader* s) { attached_after += s->nslots; });
  EXPECT_EQ(attached_after, attached_before);
  for (void* p : ptrs) heap.free(p);
}

}  // namespace
}  // namespace pm2::iso
