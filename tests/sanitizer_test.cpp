// Sanitizer-clean migration coverage.
//
// Everything here ran *unsanitized* until the fiber-annotation work: the CI
// sanitizers job excluded every migration-heavy test because a byte-copied
// stack left its ASan shadow behind.  These tests concentrate the shapes
// that stress the annotation protocol — deep instrumented call chains alive
// across a migration, pooled service stacks recycled under poison, repeated
// checkpoint/restore of the same image — so a regression in the protocol
// fails loudly here, in both sanitized and plain builds.  The death-style
// test additionally pins the poison half of the contract: with ASan on, a
// write into a parked (poisoned) invocation-pool stack must be reported.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "fabric/inproc.hpp"
#include "marcel/keys.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/checkpoint.hpp"
#include "pm2/runtime.hpp"
#include "sys/sanitizer.hpp"

namespace pm2 {
namespace {

std::atomic<bool> g_ok{true};
std::atomic<int> g_sum{0};
std::atomic<int> g_progress{0};
std::atomic<int> g_dtor_runs{0};
std::atomic<bool> g_tsd_dirty{false};

#define SAN_EXPECT(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      g_ok = false;                                                      \
      pm2_printf("SAN_EXPECT failed: %s (line %d)\n", #cond, __LINE__);  \
    }                                                                    \
  } while (0)

AppConfig nodes_config(uint32_t nodes) {
  AppConfig cfg;
  cfg.nodes = nodes;
  return cfg;
}

// --- Migration under live instrumented frames --------------------------------

// Recursion with an addressable local per frame: every live frame owns a
// redzoned stack array, so a migration at depth 8 ships a stack whose
// shadow was dense with poison on the source — the pack/install unpoison
// protocol must neutralize it on both ends, and the annotated switches
// must resume the copied frames under the destination scheduler.
int deep_sum(int depth, bool roam) {
  volatile int buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = depth + i;
  int acc = buf[15];
  if (depth > 0) acc += deep_sum(depth - 1, roam);
  if (roam && depth == 8) pm2_migrate(marcel_self(), 1 - pm2_self());
  return acc;
}

void deep_pingpong_worker(void* arg) {
  auto rounds = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  const int expect = deep_sum(16, /*roam=*/false);
  for (int i = 0; i < rounds; ++i) {
    SAN_EXPECT(deep_sum(16, /*roam=*/true) == expect);
    SAN_EXPECT(pm2_self() == static_cast<uint32_t>((i + 1) % 2));
  }
  pm2_signal(0);
}

TEST(SanitizerMigration, DeepFramesPingPong) {
  g_ok = true;
  run_app(nodes_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&deep_pingpong_worker,
                        reinterpret_cast<void*>(intptr_t{6}), "deep");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

// Heap blocks and stack pointers crossing together, several round trips:
// the install-side unpoison must cover heap slot runs too (their extents
// land at addresses a previous local tenant may have poisoned).
void heap_roamer_worker(void*) {
  auto* data = static_cast<int*>(pm2_isomalloc(512 * sizeof(int)));
  for (int i = 0; i < 512; ++i) data[i] = 7 * i;
  int local = 41;
  int* p = &local;
  for (int round = 0; round < 4; ++round) {
    pm2_migrate(marcel_self(), 1 - pm2_self());
    ++*p;
    for (int i = 0; i < 512; ++i) SAN_EXPECT(data[i] == 7 * i);
  }
  SAN_EXPECT(local == 45);
  pm2_isofree(data);
  pm2_signal(0);
}

TEST(SanitizerMigration, HeapAndStackRoundTrips) {
  g_ok = true;
  run_app(nodes_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&heap_roamer_worker, nullptr, "roamer");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

// --- Invocation pool: recycled stacks under the poison protocol --------------

// Each invocation runs the deep recursion on a stack that was parked
// (fully poisoned) between calls: rearm must have scrubbed the shadow or
// the very first frame write reports.
TEST(SanitizerPool, RecycledStackRunsDeepFrames) {
  g_ok = true;
  std::atomic<uint64_t> hits{0};
  AppConfig cfg = nodes_config(1);
  run_app(
      cfg,
      [&](Runtime& rt) {
        int expect = deep_sum(16, /*roam=*/false);
        for (int i = 0; i < 8; ++i)
          ASSERT_EQ(rt.call<int>(0, "deep", 0), expect);
        hits = rt.pool_hits();
      },
      [](Runtime& rt) {
        rt.service("deep", [](RpcContext&, int) -> int {
          return deep_sum(16, /*roam=*/false);
        });
      });
  EXPECT_TRUE(g_ok.load());
  EXPECT_GE(hits.load(), 7u);  // everything after the cold build re-arms
}

// TSD must not bleed between pooled invocations: a destructor-bearing key
// set by one invocation is destroyed at exit (running the destructor) and
// observed pristine by the next invocation on the same recycled thread.
marcel::Key g_tsd_key = marcel::key_create(+[](void* v) {
  ++g_dtor_runs;
  delete static_cast<int*>(v);
});

TEST(SanitizerPool, KeysResetAndDestructorsRunAcrossRearm) {
  g_dtor_runs = 0;
  g_tsd_dirty = false;
  std::atomic<uint64_t> hits{0};
  run_app(
      nodes_config(1),
      [&](Runtime& rt) {
        for (int i = 0; i < 6; ++i) ASSERT_EQ(rt.call<int>(0, "tsd", i), i);
        hits = rt.pool_hits();
      },
      [](Runtime& rt) {
        rt.service("tsd", [](RpcContext&, int v) -> int {
          // A previous invocation's value surviving the re-arm is exactly
          // the cross-call bleed this test pins down.
          if (marcel::getspecific(g_tsd_key) != nullptr) g_tsd_dirty = true;
          marcel::setspecific(g_tsd_key, new int(v));
          return v;
        });
      });
  EXPECT_FALSE(g_tsd_dirty.load()) << "stale TSD observed across invocations";
  EXPECT_EQ(g_dtor_runs.load(), 6) << "key destructor skipped at thread exit";
  EXPECT_GE(hits.load(), 5u);  // the bleed scenario needs actual reuse
}

// --- Checkpoint/restore loops ------------------------------------------------

void ck_worker(void*) {
  auto* data = static_cast<int*>(pm2_isomalloc(256 * sizeof(int)));
  for (int i = 0; i < 256; ++i) data[i] = i * 3;
  int local = 777;
  g_progress = 1;
  while (g_progress.load() < 2) pm2_yield();
  for (int i = 0; i < 256; ++i) SAN_EXPECT(data[i] == i * 3);
  g_sum += local;
  pm2_isofree(data);
  pm2_signal(0);
}

// The same image restored repeatedly: every generation re-claims the slot
// runs, scatters the image over whatever shadow the previous generation
// left, and must resume clean.
TEST(SanitizerCheckpoint, SameImageRestoresRepeatedly) {
  g_ok = true;
  g_sum = 0;
  g_progress = 0;
  run_app(nodes_config(1), [&](Runtime& rt) {
    auto id = pm2_thread_create(&ck_worker, nullptr, "ck");
    while (g_progress.load() < 1) pm2_yield();
    std::vector<uint8_t> image = checkpoint_thread(rt, id);
    g_progress = 2;
    pm2_wait_signals(1);
    for (int gen = 0; gen < 3; ++gen) {
      restore_thread(rt, image);
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
  EXPECT_EQ(g_sum.load(), 4 * 777);  // original + three restored clones
}

// --- Park poison is live -----------------------------------------------------

// Scribble into a parked service thread's stack.  Under ASan the park
// poison turns this into a hard use-after-poison report (the death test
// asserts the report fires); in a plain build the write is silently
// absorbed — the next re-arm rebuilds the initial frame from scratch — so
// the same scenario runs to completion and documents why the poison
// matters.
void scribble_on_parked_stack() {
  iso::AreaConfig ac;
  ac.base = iso::offset_area_base(6);
  ac.size = 64ull << 20;
  iso::Area area(ac);
  auto hub = std::make_shared<fabric::InProcHub>(1);
  RuntimeConfig rc;
  rc.node = 0;
  rc.n_nodes = 1;
  Runtime rt(rc, area, hub->endpoint(0));
  rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
  rt.run([] {
    Runtime& self = *Runtime::current();
    ASSERT_EQ(self.call<int>(0, "inc", 1), 2);
    ASSERT_GT(self.pool_size(), 0u);
    self.for_each_parked([](marcel::Thread* t) {
      auto* into = static_cast<volatile char*>(t->stack_base) + 2048;
      *into = 42;  // use-after-return onto a recycled service stack
    });
    self.halt();
  });
}

TEST(SanitizerPool, WriteToParkedStackIsCaughtUnderAsan) {
  if constexpr (sys::kAsan) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(scribble_on_parked_stack(), "use-after-poison");
  } else {
    scribble_on_parked_stack();
  }
}

}  // namespace
}  // namespace pm2
