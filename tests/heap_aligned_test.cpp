// Aligned and zeroed allocation extensions (block_alloc_aligned, calloc).
#include <gtest/gtest.h>

#include <cstring>

#include "common/random.hpp"
#include "isomalloc/heap.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2::iso {
namespace {

AreaConfig aligned_area_config() {
  AreaConfig cfg;
  cfg.base = iso::offset_area_base(2);
  cfg.size = 128ull << 20;
  cfg.slot_size = 64 * 1024;
  return cfg;
}

class AlignedHeapTest : public ::testing::Test {
 protected:
  AlignedHeapTest() : area_(aligned_area_config()), mgr_(area_, mgr_config()) {}
  static SlotManagerConfig mgr_config() {
    SlotManagerConfig cfg;
    cfg.node = 0;
    cfg.n_nodes = 1;
    cfg.distribution = Distribution::kPartitioned;
    return cfg;
  }
  Area area_;
  SlotManager mgr_;
  void* slot_list_ = nullptr;
};

TEST_F(AlignedHeapTest, AlignmentHonored) {
  ThreadHeap heap(&slot_list_, 1, mgr_);
  for (size_t align : {16u, 64u, 256u, 4096u, 16384u}) {
    void* p = heap.alloc_aligned(100, align);
    ASSERT_NE(p, nullptr) << align;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
    std::memset(p, 0x5A, 100);
    heap.free(p);
    ThreadHeap::check_invariants(slot_list_, area_.slot_size());
  }
}

TEST_F(AlignedHeapTest, AlignedBlocksFreeNormally) {
  ThreadHeap heap(&slot_list_, 1, mgr_);
  void* anchor = heap.alloc(16);
  std::vector<void*> ptrs;
  for (int i = 0; i < 20; ++i) ptrs.push_back(heap.alloc_aligned(500, 1024));
  for (void* p : ptrs) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 1024, 0u);
    heap.free(p);
  }
  ThreadHeap::check_invariants(slot_list_, area_.slot_size());
  heap.free(anchor);
  EXPECT_EQ(slot_list_, nullptr);  // fully coalesced and released
}

TEST_F(AlignedHeapTest, MixedAlignedUnalignedTrace) {
  ThreadHeap heap(&slot_list_, 1, mgr_);
  pm2::Rng rng(7);
  std::vector<void*> live;
  for (int step = 0; step < 3000; ++step) {
    if (rng.next_bool(0.6) || live.empty()) {
      if (rng.next_bool(0.3)) {
        size_t align = size_t{16} << rng.next_below(8);  // 16..2048
        void* p = heap.alloc_aligned(rng.next_range(1, 3000), align);
        ASSERT_NE(p, nullptr);
        ASSERT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
        live.push_back(p);
      } else {
        live.push_back(heap.alloc(rng.next_range(1, 3000)));
      }
    } else {
      size_t i = rng.next_below(live.size());
      heap.free(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
    if (step % 500 == 0)
      ThreadHeap::check_invariants(slot_list_, area_.slot_size());
  }
  for (void* p : live) heap.free(p);
  ThreadHeap::check_invariants(slot_list_, area_.slot_size());
}

TEST_F(AlignedHeapTest, CallocZeroes) {
  ThreadHeap heap(&slot_list_, 1, mgr_);
  auto* p = static_cast<unsigned char*>(heap.calloc(100, 7));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 700; ++i) EXPECT_EQ(p[i], 0);
  // Dirty, free, calloc again: still zero (not stale).
  std::memset(p, 0xFF, 700);
  heap.free(p);
  auto* q = static_cast<unsigned char*>(heap.calloc(100, 7));
  for (int i = 0; i < 700; ++i) ASSERT_EQ(q[i], 0);
  heap.free(q);
}

TEST_F(AlignedHeapTest, CallocOverflowReturnsNull) {
  ThreadHeap heap(&slot_list_, 1, mgr_);
  EXPECT_EQ(heap.calloc(SIZE_MAX / 2, 3), nullptr);
}

// Runtime-level API plumbing.
TEST(AlignedApi, Pm2ApiWrappers) {
  pm2::AppConfig cfg;
  cfg.nodes = 1;
  pm2::run_app(cfg, [&](pm2::Runtime&) {
    auto* z = static_cast<unsigned char*>(pm2::pm2_isocalloc(10, 10));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(z[i], 0);
    void* a = pm2::pm2_isomemalign(4096, 100);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 4096, 0u);
    pm2::pm2_isofree(a);
    pm2::pm2_isofree(z);
  });
}

// Aligned data must migrate like everything else.
void aligned_migrating_worker(void*) {
  auto* p = static_cast<unsigned char*>(pm2::pm2_isomemalign(4096, 8192));
  std::memset(p, 0x6B, 8192);
  pm2::pm2_migrate(pm2::marcel_self(), 1);
  bool ok = reinterpret_cast<uintptr_t>(p) % 4096 == 0;
  for (int i = 0; i < 8192 && ok; i += 512) ok = p[i] == 0x6B;
  PM2_CHECK(ok) << "aligned block corrupted by migration";
  pm2::pm2_isofree(p);
  pm2::pm2_signal(0);
}

TEST(AlignedApi, AlignedBlockMigrates) {
  pm2::AppConfig cfg;
  cfg.nodes = 2;
  pm2::run_app(cfg, [&](pm2::Runtime& rt) {
    if (rt.self() == 0) {
      pm2::pm2_thread_create(&aligned_migrating_worker, nullptr, "aligned");
      pm2::pm2_wait_signals(1);
    }
  });
}

}  // namespace
}  // namespace pm2::iso
