// Socket fabric unit tests: mesh setup, framing over stream sockets,
// large-message handling and the anti-deadlock send path — exercised with
// real UNIX sockets between kernel threads in this process.
#include "fabric/socket_fabric.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "common/time.hpp"

namespace pm2::fabric {
namespace {

std::string fresh_dir() {
  static int counter = 0;
  std::string dir = "/tmp/pm2-socktest-" + std::to_string(::getpid()) + "-" +
                    std::to_string(counter++);
  ::mkdir(dir.c_str(), 0700);
  return dir;
}

SocketFabricConfig config_for(NodeId node, NodeId nodes,
                              const std::string& dir) {
  SocketFabricConfig cfg;
  cfg.node_id = node;
  cfg.n_nodes = nodes;
  cfg.dir = dir;
  return cfg;
}

TEST(SocketFabric, PairSendReceive) {
  std::string dir = fresh_dir();
  std::unique_ptr<Fabric> f0, f1;
  std::thread t1([&] { f1 = make_socket_fabric(config_for(1, 2, dir)); });
  f0 = make_socket_fabric(config_for(0, 2, dir));
  t1.join();

  Message m;
  m.type = 9;
  m.dst = 1;
  m.corr = 1234;
  m.payload = {5, 6, 7};
  f0->send(std::move(m));

  auto got = f1->recv(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 9);
  EXPECT_EQ(got->src, 0u);
  EXPECT_EQ(got->corr, 1234u);
  EXPECT_EQ(got->payload, (std::vector<uint8_t>{5, 6, 7}));
}

TEST(SocketFabric, LargeMessageSurvivesFraming) {
  std::string dir = fresh_dir();
  std::unique_ptr<Fabric> f0, f1;
  std::thread t1([&] { f1 = make_socket_fabric(config_for(1, 2, dir)); });
  f0 = make_socket_fabric(config_for(0, 2, dir));
  t1.join();

  // Bigger than both the socket buffers and the fabric's 64 KB read chunk.
  Message m;
  m.type = 1;
  m.dst = 1;
  m.payload.resize(5 * 1024 * 1024);
  for (size_t i = 0; i < m.payload.size(); ++i)
    m.payload[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  auto expect = m.payload;

  std::thread sender([&] { f0->send(std::move(m)); });
  std::optional<Message> got;
  while (!got) got = f1->recv(100);
  sender.join();
  EXPECT_EQ(got->payload, expect);
}

TEST(SocketFabric, SimultaneousLargeSendsDoNotDeadlock) {
  // Both sides fire multi-megabyte messages at each other at once: the
  // send path must drain incoming traffic while its own pipe is full.
  std::string dir = fresh_dir();
  std::unique_ptr<Fabric> f0, f1;
  std::thread t1([&] { f1 = make_socket_fabric(config_for(1, 2, dir)); });
  f0 = make_socket_fabric(config_for(0, 2, dir));
  t1.join();

  auto pump = [](Fabric& f, NodeId peer) {
    Message m;
    m.type = 2;
    m.dst = peer;
    m.payload.resize(8 * 1024 * 1024, 0x5A);
    f.send(std::move(m));
    std::optional<Message> got;
    while (!got) got = f.recv(100);
    EXPECT_EQ(got->payload.size(), 8u * 1024 * 1024);
  };
  std::thread a([&] { pump(*f0, 1); });
  std::thread b([&] { pump(*f1, 0); });
  a.join();
  b.join();
}

TEST(SocketFabric, WakeEventfdInterruptsBlockedRecv) {
  // The readiness handle's cross-thread wake: a write to the fabric's
  // eventfd (registered in its epoll set) pops an indefinitely blocked
  // recv_until without a frame.
  std::string dir = fresh_dir();
  std::unique_ptr<Fabric> f0, f1;
  std::thread t1([&] { f1 = make_socket_fabric(config_for(1, 2, dir)); });
  f0 = make_socket_fabric(config_for(0, 2, dir));
  t1.join();

  std::thread waker([&] {
    ::usleep(10'000);  // land the wake inside the epoll wait
    f0->wake();
  });
  Stopwatch sw;
  auto got = f0->recv_until(now_ns() + 5'000'000'000ull);
  waker.join();
  EXPECT_FALSE(got.has_value());
  EXPECT_LT(sw.elapsed_ms(), 1000.0) << "wake() did not interrupt recv_until";
  // The wake is consumed; frames still flow afterwards.
  Message m;
  m.type = 11;
  m.dst = 0;
  f1->send(std::move(m));
  auto after = f0->recv(2000);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->type, 11);
}

TEST(SocketFabric, ThreeNodeMeshRoutes) {
  std::string dir = fresh_dir();
  std::unique_ptr<Fabric> f0, f1, f2;
  std::thread t1([&] { f1 = make_socket_fabric(config_for(1, 3, dir)); });
  std::thread t2([&] { f2 = make_socket_fabric(config_for(2, 3, dir)); });
  f0 = make_socket_fabric(config_for(0, 3, dir));
  t1.join();
  t2.join();

  // 2 -> 1 directly (not through 0): the mesh is full.
  Message m;
  m.type = 77;
  m.dst = 1;
  f2->send(std::move(m));
  auto got = f1->recv(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 2u);
  EXPECT_FALSE(f0->try_recv().has_value());
}

TEST(SocketFabric, ManySmallMessagesInOrder) {
  std::string dir = fresh_dir();
  std::unique_ptr<Fabric> f0, f1;
  std::thread t1([&] { f1 = make_socket_fabric(config_for(1, 2, dir)); });
  f0 = make_socket_fabric(config_for(0, 2, dir));
  t1.join();

  for (uint16_t i = 0; i < 500; ++i) {
    Message m;
    m.type = i;
    m.dst = 1;
    f0->send(std::move(m));
  }
  for (uint16_t i = 0; i < 500; ++i) {
    std::optional<Message> got;
    while (!got) got = f1->recv(100);
    EXPECT_EQ(got->type, i);
  }
}

TEST(SocketFabric, ChainedSendGathersWithZeroCopies) {
  std::string dir = fresh_dir();
  std::unique_ptr<Fabric> f0, f1;
  std::thread t1([&] { f1 = make_socket_fabric(config_for(1, 2, dir)); });
  f0 = make_socket_fabric(config_for(0, 2, dir));
  t1.join();

  // A many-segment chain of borrowed extents (the migration payload shape),
  // big enough to exercise partial sendmsg and the direct scatter-read path.
  std::vector<uint8_t> slab(3 * 1024 * 1024);
  for (size_t i = 0; i < slab.size(); ++i)
    slab[i] = static_cast<uint8_t>(i * 2654435761u >> 16);

  Message m;
  m.type = 5;
  m.dst = 1;
  m.chain.append_copy("extent-table", 12);
  size_t off = 0;
  while (off < slab.size()) {
    size_t len = std::min<size_t>(37 * 1024 + off % 4096, slab.size() - off);
    m.chain.append_borrow(slab.data() + off, len);
    off += len;
  }
  std::vector<uint8_t> expect = m.chain.flatten();

  std::thread sender([&] { f0->send(std::move(m)); });
  std::optional<Message> got;
  while (!got) got = f1->recv(100);
  sender.join();

  EXPECT_EQ(got->flat(), expect);
  // The tentpole claim: payload segments went borrowed memory -> writev
  // with no intermediate flatten on the send path.
  EXPECT_EQ(f0->payload_copy_bytes(), 0u);
  EXPECT_EQ(f0->bytes_sent(), sizeof(WireHeader) + expect.size());
}

TEST(SocketFabric, TcpVariant) {
  std::unique_ptr<Fabric> f0, f1;
  SocketFabricConfig c0, c1;
  c0.node_id = 0;
  c0.n_nodes = 2;
  c0.use_tcp = true;
  c0.base_port = static_cast<uint16_t>(24000 + (::getpid() % 10000));
  c1 = c0;
  c1.node_id = 1;
  std::thread t1([&] { f1 = make_socket_fabric(c1); });
  f0 = make_socket_fabric(c0);
  t1.join();

  Message m;
  m.type = 4;
  m.dst = 0;
  m.payload = {1};
  f1->send(std::move(m));
  auto got = f0->recv(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 4);
}

}  // namespace
}  // namespace pm2::fabric
