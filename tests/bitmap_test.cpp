// Unit and property tests for the slot-layer bitmap.
#include "common/bitmap.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace pm2 {
namespace {

TEST(Bitmap, StartsEmpty) {
  Bitmap b(1000);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.find_first_set().has_value());
}

TEST(Bitmap, SetTestClear) {
  Bitmap b(200);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.clear(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitmap, RangeOps) {
  Bitmap b(300);
  b.set_range(60, 70);
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b.all_set(60, 70));
  EXPECT_FALSE(b.all_set(59, 70));
  EXPECT_TRUE(b.none_set(0, 60));
  EXPECT_TRUE(b.none_set(130, 170));
  b.clear_range(80, 10);
  EXPECT_EQ(b.count(), 60u);
  EXPECT_FALSE(b.all_set(60, 70));
}

TEST(Bitmap, FindFirstSetFromOffset) {
  Bitmap b(256);
  b.set(5);
  b.set(100);
  b.set(255);
  EXPECT_EQ(b.find_first_set(0).value(), 5u);
  EXPECT_EQ(b.find_first_set(5).value(), 5u);
  EXPECT_EQ(b.find_first_set(6).value(), 100u);
  EXPECT_EQ(b.find_first_set(101).value(), 255u);
  EXPECT_FALSE(b.find_first_set(256).has_value());
}

TEST(Bitmap, FindRunBasics) {
  Bitmap b(128);
  b.set_range(10, 3);
  b.set_range(20, 5);
  EXPECT_EQ(b.find_run(1).value(), 10u);
  EXPECT_EQ(b.find_run(3).value(), 10u);
  EXPECT_EQ(b.find_run(4).value(), 20u);
  EXPECT_EQ(b.find_run(5).value(), 20u);
  EXPECT_FALSE(b.find_run(6).has_value());
}

TEST(Bitmap, FindRunAcrossWordBoundary) {
  Bitmap b(256);
  b.set_range(60, 10);  // spans the 64-bit word boundary
  EXPECT_EQ(b.find_run(10).value(), 60u);
  EXPECT_FALSE(b.find_run(11).has_value());
}

TEST(Bitmap, FindRunAtEnd) {
  Bitmap b(100);
  b.set_range(95, 5);
  EXPECT_EQ(b.find_run(5).value(), 95u);
  EXPECT_FALSE(b.find_run(6).has_value());
}

TEST(Bitmap, FindRunFromOffset) {
  Bitmap b(128);
  b.set_range(0, 4);
  b.set_range(50, 4);
  EXPECT_EQ(b.find_run(4, 1).value(), 50u);  // run at 0 no longer complete
}

TEST(Bitmap, FindBestRunPrefersTightestHole) {
  Bitmap b(256);
  b.set_range(0, 50);    // big run
  b.set_range(100, 5);   // exact-ish run
  b.set_range(200, 10);  // medium run
  EXPECT_EQ(b.find_best_run(5).value(), 100u);
  EXPECT_EQ(b.find_best_run(6).value(), 200u);
  EXPECT_EQ(b.find_best_run(11).value(), 0u);
  EXPECT_FALSE(b.find_best_run(51).has_value());
}

TEST(Bitmap, OrWithAndSubtract) {
  Bitmap a(128), b(128);
  a.set_range(0, 10);
  b.set_range(5, 10);
  Bitmap c = a;
  c.or_with(b);
  EXPECT_EQ(c.count(), 15u);
  c.subtract(a);
  EXPECT_EQ(c.count(), 5u);
  EXPECT_TRUE(c.all_set(10, 5));
}

TEST(Bitmap, Intersects) {
  Bitmap a(128), b(128);
  a.set(3);
  b.set(4);
  EXPECT_FALSE(a.intersects(b));
  b.set(3);
  EXPECT_TRUE(a.intersects(b));
}

TEST(Bitmap, WordsRoundTrip) {
  Bitmap a(130);
  a.set(0);
  a.set(64);
  a.set(129);
  Bitmap b = Bitmap::from_words(130, a.words());
  EXPECT_EQ(a, b);
}

// Property: find_run agrees with a naive scan on random bitmaps.
class BitmapRunProperty : public ::testing::TestWithParam<uint64_t> {};

std::optional<size_t> naive_find_run(const Bitmap& b, size_t run) {
  size_t streak = 0;
  for (size_t i = 0; i < b.size(); ++i) {
    streak = b.test(i) ? streak + 1 : 0;
    if (streak == run) return i + 1 - run;
  }
  return std::nullopt;
}

TEST_P(BitmapRunProperty, MatchesNaiveScan) {
  Rng rng(GetParam());
  Bitmap b(512);
  for (size_t i = 0; i < 512; ++i)
    if (rng.next_bool(0.6)) b.set(i);
  for (size_t run = 1; run <= 20; ++run) {
    EXPECT_EQ(b.find_run(run), naive_find_run(b, run)) << "run=" << run;
  }
}

TEST_P(BitmapRunProperty, BestRunIsValidAndTight) {
  Rng rng(GetParam() ^ 0xBEEF);
  Bitmap b(512);
  for (size_t i = 0; i < 512; ++i)
    if (rng.next_bool(0.5)) b.set(i);
  for (size_t run = 1; run <= 10; ++run) {
    auto best = b.find_best_run(run);
    auto first = b.find_run(run);
    ASSERT_EQ(best.has_value(), first.has_value());
    if (best) {
      EXPECT_TRUE(b.all_set(*best, run));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapRunProperty,
                         ::testing::Values(1, 2, 3, 7, 42, 1337, 99991));

}  // namespace
}  // namespace pm2
