// Load balancer: preemptive redistribution of oblivious worker threads.
#include "pm2/load_balancer.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<int> g_done{0};
std::atomic<uint32_t> g_finish_mask{0};

// CPU-ish worker that yields often and never asks to migrate.
void lb_worker(void* arg) {
  auto iters = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  volatile long sink = 0;
  for (int i = 0; i < iters; ++i) {
    for (int k = 0; k < 2000; ++k) sink = sink + k;
    pm2_yield();
  }
  g_finish_mask |= 1u << pm2_self();
  ++g_done;
  pm2_signal(0);
}

TEST(LoadBalancer, SpreadsWorkAcrossNodes) {
  g_done = 0;
  g_finish_mask = 0;
  constexpr int kWorkers = 12;
  std::atomic<uint64_t> moved{0};

  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    LoadBalancerConfig lb;
    lb.period_us = 200;
    lb.imbalance_threshold = 2;
    lb.max_migrations_per_round = 2;
    LoadBalancer::start(rt, lb);
    if (rt.self() == 0) {
      // All work lands on node 0; the balancer must push some of it away.
      for (int i = 0; i < kWorkers; ++i) {
        pm2_thread_create(&lb_worker, reinterpret_cast<void*>(intptr_t{400}),
                          "worker");
      }
      pm2_wait_signals(kWorkers);
      moved = rt.migrations_out();
    }
    rt.barrier();
  });
  EXPECT_EQ(g_done.load(), kWorkers);
  EXPECT_GE(moved.load(), 1u) << "balancer never migrated anything";
  EXPECT_EQ(g_finish_mask.load(), 0b11u)
      << "workers should have finished on both nodes";
}

TEST(LoadBalancer, IdleClusterStaysQuiet) {
  std::atomic<uint64_t> moved{0};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    LoadBalancerConfig lb;
    lb.period_us = 100;
    LoadBalancer::start(rt, lb);
    // No application threads at all: nothing to migrate.
    for (int i = 0; i < 50; ++i) pm2_yield();
    rt.barrier();
    moved += rt.migrations_out();
  });
  EXPECT_EQ(moved.load(), 0u);
}

TEST(LoadBalancer, RespectsThreshold) {
  std::atomic<uint64_t> moved{0};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    LoadBalancerConfig lb;
    lb.period_us = 100;
    lb.imbalance_threshold = 100;  // effectively never
    LoadBalancer::start(rt, lb);
    if (rt.self() == 0) {
      for (int i = 0; i < 4; ++i)
        pm2_thread_create(&lb_worker, reinterpret_cast<void*>(intptr_t{50}),
                          "w");
      pm2_wait_signals(4);
      moved = rt.migrations_out();
    }
    rt.barrier();
  });
  EXPECT_EQ(moved.load(), 0u);
}

}  // namespace
}  // namespace pm2
