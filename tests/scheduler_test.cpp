// Cooperative scheduler tests (thread lifecycle, freeze/adopt, join).
#include "marcel/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace pm2::marcel {
namespace {

constexpr size_t kRegion = 64 * 1024;

/// Region pool so tests do not leak thread memory (reapers are no-ops; the
/// pool frees everything at the end of the test).
struct Pool {
  std::vector<void*> regions;
  void* take() {
    void* p = std::aligned_alloc(64, kRegion);
    regions.push_back(p);
    return p;
  }
  ~Pool() {
    for (void* p : regions) std::free(p);
  }
};

void exit_now() {
  Scheduler::current_scheduler()->exit_current([](Thread*) {});
}

struct TraceCtx {
  std::vector<int>* trace;
  int id;
  int yields;
};

void tracing_entry(void* arg) {
  auto* ctx = static_cast<TraceCtx*>(arg);
  for (int i = 0; i < ctx->yields; ++i) {
    ctx->trace->push_back(ctx->id);
    Scheduler::current_scheduler()->yield();
  }
  ctx->trace->push_back(ctx->id * 100);
  exit_now();
}

TEST(Scheduler, RoundRobinInterleaving) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  TraceCtx a{&trace, 1, 2}, b{&trace, 2, 2};
  sched.create(pool.take(), kRegion, &tracing_entry, &a, 1, "a");
  sched.create(pool.take(), kRegion, &tracing_entry, &b, 2, "b");
  sched.stop();
  sched.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 1, 2, 100, 200}));
}

TEST(Scheduler, LiveAndReadyCounts) {
  Pool pool;
  Scheduler sched;
  TraceCtx a{nullptr, 0, 0};
  std::vector<int> trace;
  a.trace = &trace;
  sched.create(pool.take(), kRegion, &tracing_entry, &a, 1, "a");
  EXPECT_EQ(sched.live_count(), 1u);
  EXPECT_EQ(sched.ready_count(), 1u);
  sched.stop();
  sched.run();
  EXPECT_EQ(sched.live_count(), 0u);
  EXPECT_EQ(sched.ready_count(), 0u);
}

TEST(Scheduler, DaemonNotCountedLive) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  TraceCtx a{&trace, 1, 0};
  sched.create(pool.take(), kRegion, &tracing_entry, &a, 1, "d",
               Thread::kFlagDaemon);
  EXPECT_EQ(sched.live_count(), 0u);
  sched.stop();
  sched.run();
}

TEST(Scheduler, ReaperRunsAfterExit) {
  Pool pool;
  Scheduler sched;
  bool reaped = false;
  ThreadId reaped_id = 0;
  // exit_current via a custom path: thread body calls exit with a reaper
  // that records the thread identity.
  struct Ctx {
    bool* reaped;
    ThreadId* id;
  } ctx{&reaped, &reaped_id};
  auto entry = [](void* p) {
    auto* c = static_cast<Ctx*>(p);
    Scheduler::current_scheduler()->exit_current([c](Thread* t) {
      *c->reaped = true;
      *c->id = t->id;
    });
  };
  sched.create(pool.take(), kRegion, entry, &ctx, 77, "x");
  sched.stop();
  sched.run();
  EXPECT_TRUE(reaped);
  EXPECT_EQ(reaped_id, 77u);
}

struct JoinCtx {
  std::vector<int>* trace;
  ThreadId target;
};

void joiner_entry(void* arg) {
  auto* ctx = static_cast<JoinCtx*>(arg);
  ctx->trace->push_back(1);
  Scheduler::current_scheduler()->join(ctx->target);
  ctx->trace->push_back(3);
  exit_now();
}

void joinee_entry(void* arg) {
  auto* ctx = static_cast<JoinCtx*>(arg);
  Scheduler::current_scheduler()->yield();
  ctx->trace->push_back(2);
  exit_now();
}

TEST(Scheduler, JoinBlocksUntilExit) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  JoinCtx jc{&trace, 2};
  sched.create(pool.take(), kRegion, &joiner_entry, &jc, 1, "joiner");
  sched.create(pool.take(), kRegion, &joinee_entry, &jc, 2, "joinee");
  sched.stop();
  sched.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, JoinOnMissingThreadReturnsFalse) {
  Pool pool;
  Scheduler sched;
  bool result = true;
  auto entry = [](void* p) {
    *static_cast<bool*>(p) = Scheduler::current_scheduler()->join(12345);
    exit_now();
  };
  sched.create(pool.take(), kRegion, entry, &result, 1, "x");
  sched.stop();
  sched.run();
  EXPECT_FALSE(result);
}

// Freeze a READY thread, then adopt it back: it must resume where it was.
TEST(Scheduler, FreezeAndReadopt) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  TraceCtx a{&trace, 1, 1};
  Thread* victim = nullptr;
  struct FCtx {
    Thread** victim;
    Scheduler* sched;
    std::vector<int>* trace;
  } fctx{&victim, &sched, &trace};

  // Controller thread: freezes the victim after its first yield, then
  // re-adopts it (a degenerate "migration to self").
  auto controller = [](void* p) {
    auto* c = static_cast<FCtx*>(p);
    Scheduler* s = Scheduler::current_scheduler();
    ASSERT_TRUE(s->freeze(*c->victim));
    EXPECT_EQ((*c->victim)->state, ThreadState::kFrozen);
    c->trace->push_back(42);
    s->forget(*c->victim);
    s->adopt(*c->victim);
    exit_now();
  };

  victim = sched.create(pool.take(), kRegion, &tracing_entry, &a, 1, "victim");
  sched.create(pool.take(), kRegion, controller, &fctx, 2, "controller");
  sched.stop();
  sched.run();
  // victim prints 1, yields; controller freezes+readopts, prints 42;
  // victim resumes and prints 100.
  EXPECT_EQ(trace, (std::vector<int>{1, 42, 100}));
}

TEST(Scheduler, FreezeRefusesCurrentAndBlocked) {
  Pool pool;
  Scheduler sched;
  struct Ctx {
    bool self_result = true;
  } ctx;
  auto entry = [](void* p) {
    auto* c = static_cast<Ctx*>(p);
    Scheduler* s = Scheduler::current_scheduler();
    c->self_result = s->freeze(Scheduler::self());
    exit_now();
  };
  sched.create(pool.take(), kRegion, entry, &ctx, 1, "x");
  sched.stop();
  sched.run();
  EXPECT_FALSE(ctx.self_result);
}

void counting_entry(void* arg) {
  auto* n = static_cast<int*>(arg);
  for (int i = 0; i < 10; ++i) {
    ++*n;
    Scheduler::current_scheduler()->yield();
  }
  exit_now();
}

TEST(Scheduler, ManyThreads) {
  Pool pool;
  Scheduler sched;
  constexpr int kThreads = 100;
  int counters[kThreads] = {};
  for (int i = 0; i < kThreads; ++i) {
    sched.create(pool.take(), kRegion, &counting_entry, &counters[i],
                 static_cast<ThreadId>(i + 1), "n");
  }
  EXPECT_EQ(sched.live_count(), static_cast<size_t>(kThreads));
  sched.stop();
  sched.run();
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(counters[i], 10);
  EXPECT_GE(sched.context_switches(), 1000u);
}

TEST(Scheduler, FindAndForEach) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  TraceCtx a{&trace, 1, 0};
  Thread* t = sched.create(pool.take(), kRegion, &tracing_entry, &a, 9, "f");
  EXPECT_EQ(sched.find(9), t);
  EXPECT_EQ(sched.find(10), nullptr);
  size_t seen = 0;
  sched.for_each([&](Thread*) { ++seen; });
  EXPECT_EQ(seen, 1u);
  sched.stop();
  sched.run();
}

TEST(SchedulerDeath, StackOverflowCaught) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Pool pool;
  auto entry = [](void*) {
    // Smash the canary the way a runaway stack would.
    Thread* self = Scheduler::self();
    *reinterpret_cast<uint64_t*>(self->stack_base) = 0;
    Scheduler::current_scheduler()->yield();
    exit_now();
  };
  EXPECT_DEATH(
      {
        Scheduler sched;
        sched.create(pool.take(), kRegion, entry, nullptr, 1, "smash");
        sched.stop();
        sched.run();
      },
      "stack overflow");
}

}  // namespace
}  // namespace pm2::marcel
