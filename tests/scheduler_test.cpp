// Cooperative scheduler tests (thread lifecycle, freeze/adopt, join).
#include "marcel/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace pm2::marcel {
namespace {

constexpr size_t kRegion = 64 * 1024;

/// Region pool so tests do not leak thread memory (reapers are no-ops; the
/// pool frees everything at the end of the test).
struct Pool {
  std::vector<void*> regions;
  void* take() {
    void* p = std::aligned_alloc(64, kRegion);
    regions.push_back(p);
    return p;
  }
  ~Pool() {
    for (void* p : regions) std::free(p);
  }
};

void exit_now() {
  Scheduler::current_scheduler()->exit_current([](Thread*) {});
}

struct TraceCtx {
  std::vector<int>* trace;
  int id;
  int yields;
};

void tracing_entry(void* arg) {
  auto* ctx = static_cast<TraceCtx*>(arg);
  for (int i = 0; i < ctx->yields; ++i) {
    ctx->trace->push_back(ctx->id);
    Scheduler::current_scheduler()->yield();
  }
  ctx->trace->push_back(ctx->id * 100);
  exit_now();
}

TEST(Scheduler, RoundRobinInterleaving) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  TraceCtx a{&trace, 1, 2}, b{&trace, 2, 2};
  sched.create(pool.take(), kRegion, &tracing_entry, &a, 1, "a");
  sched.create(pool.take(), kRegion, &tracing_entry, &b, 2, "b");
  sched.stop();
  sched.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 1, 2, 100, 200}));
}

TEST(Scheduler, LiveAndReadyCounts) {
  Pool pool;
  Scheduler sched;
  TraceCtx a{nullptr, 0, 0};
  std::vector<int> trace;
  a.trace = &trace;
  sched.create(pool.take(), kRegion, &tracing_entry, &a, 1, "a");
  EXPECT_EQ(sched.live_count(), 1u);
  EXPECT_EQ(sched.ready_count(), 1u);
  sched.stop();
  sched.run();
  EXPECT_EQ(sched.live_count(), 0u);
  EXPECT_EQ(sched.ready_count(), 0u);
}

TEST(Scheduler, DaemonNotCountedLive) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  TraceCtx a{&trace, 1, 0};
  sched.create(pool.take(), kRegion, &tracing_entry, &a, 1, "d",
               Thread::kFlagDaemon);
  EXPECT_EQ(sched.live_count(), 0u);
  sched.stop();
  sched.run();
}

TEST(Scheduler, ReaperRunsAfterExit) {
  Pool pool;
  Scheduler sched;
  bool reaped = false;
  ThreadId reaped_id = 0;
  // exit_current via a custom path: thread body calls exit with a reaper
  // that records the thread identity.
  struct Ctx {
    bool* reaped;
    ThreadId* id;
  } ctx{&reaped, &reaped_id};
  auto entry = [](void* p) {
    auto* c = static_cast<Ctx*>(p);
    Scheduler::current_scheduler()->exit_current([c](Thread* t) {
      *c->reaped = true;
      *c->id = t->id;
    });
  };
  sched.create(pool.take(), kRegion, entry, &ctx, 77, "x");
  sched.stop();
  sched.run();
  EXPECT_TRUE(reaped);
  EXPECT_EQ(reaped_id, 77u);
}

struct JoinCtx {
  std::vector<int>* trace;
  ThreadId target;
};

void joiner_entry(void* arg) {
  auto* ctx = static_cast<JoinCtx*>(arg);
  ctx->trace->push_back(1);
  Scheduler::current_scheduler()->join(ctx->target);
  ctx->trace->push_back(3);
  exit_now();
}

void joinee_entry(void* arg) {
  auto* ctx = static_cast<JoinCtx*>(arg);
  Scheduler::current_scheduler()->yield();
  ctx->trace->push_back(2);
  exit_now();
}

TEST(Scheduler, JoinBlocksUntilExit) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  JoinCtx jc{&trace, 2};
  sched.create(pool.take(), kRegion, &joiner_entry, &jc, 1, "joiner");
  sched.create(pool.take(), kRegion, &joinee_entry, &jc, 2, "joinee");
  sched.stop();
  sched.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, JoinOnMissingThreadReturnsFalse) {
  Pool pool;
  Scheduler sched;
  bool result = true;
  auto entry = [](void* p) {
    *static_cast<bool*>(p) = Scheduler::current_scheduler()->join(12345);
    exit_now();
  };
  sched.create(pool.take(), kRegion, entry, &result, 1, "x");
  sched.stop();
  sched.run();
  EXPECT_FALSE(result);
}

// Freeze a READY thread, then adopt it back: it must resume where it was.
TEST(Scheduler, FreezeAndReadopt) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  TraceCtx a{&trace, 1, 1};
  Thread* victim = nullptr;
  struct FCtx {
    Thread** victim;
    Scheduler* sched;
    std::vector<int>* trace;
  } fctx{&victim, &sched, &trace};

  // Controller thread: freezes the victim after its first yield, then
  // re-adopts it (a degenerate "migration to self").
  auto controller = [](void* p) {
    auto* c = static_cast<FCtx*>(p);
    Scheduler* s = Scheduler::current_scheduler();
    ASSERT_TRUE(s->freeze(*c->victim));
    EXPECT_EQ((*c->victim)->state, ThreadState::kFrozen);
    c->trace->push_back(42);
    s->forget(*c->victim);
    s->adopt(*c->victim);
    exit_now();
  };

  victim = sched.create(pool.take(), kRegion, &tracing_entry, &a, 1, "victim");
  sched.create(pool.take(), kRegion, controller, &fctx, 2, "controller");
  sched.stop();
  sched.run();
  // victim prints 1, yields; controller freezes+readopts, prints 42;
  // victim resumes and prints 100.
  EXPECT_EQ(trace, (std::vector<int>{1, 42, 100}));
}

TEST(Scheduler, FreezeRefusesCurrentAndBlocked) {
  Pool pool;
  Scheduler sched;
  struct Ctx {
    bool self_result = true;
  } ctx;
  auto entry = [](void* p) {
    auto* c = static_cast<Ctx*>(p);
    Scheduler* s = Scheduler::current_scheduler();
    c->self_result = s->freeze(Scheduler::self());
    exit_now();
  };
  sched.create(pool.take(), kRegion, entry, &ctx, 1, "x");
  sched.stop();
  sched.run();
  EXPECT_FALSE(ctx.self_result);
}

void counting_entry(void* arg) {
  auto* n = static_cast<int*>(arg);
  for (int i = 0; i < 10; ++i) {
    ++*n;
    Scheduler::current_scheduler()->yield();
  }
  exit_now();
}

TEST(Scheduler, ManyThreads) {
  Pool pool;
  Scheduler sched;
  constexpr int kThreads = 100;
  int counters[kThreads] = {};
  for (int i = 0; i < kThreads; ++i) {
    sched.create(pool.take(), kRegion, &counting_entry, &counters[i],
                 static_cast<ThreadId>(i + 1), "n");
  }
  EXPECT_EQ(sched.live_count(), static_cast<size_t>(kThreads));
  sched.stop();
  sched.run();
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(counters[i], 10);
  EXPECT_GE(sched.context_switches(), 1000u);
}

TEST(Scheduler, FindAndForEach) {
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  TraceCtx a{&trace, 1, 0};
  Thread* t = sched.create(pool.take(), kRegion, &tracing_entry, &a, 9, "f");
  EXPECT_EQ(sched.find(9), t);
  EXPECT_EQ(sched.find(10), nullptr);
  size_t seen = 0;
  sched.for_each([&](Thread*) { ++seen; });
  EXPECT_EQ(seen, 1u);
  sched.stop();
  sched.run();
}

// ---------------------------------------------------------------------------
// Multi-worker (SMP) scheduling
// ---------------------------------------------------------------------------

struct SmpCtx {
  std::atomic<uint32_t>* worker_mask;  // bit per worker this thread ran on
  std::atomic<bool>* bad_worker;       // pinned thread saw a foreign worker
  std::atomic<bool>* done;             // churn threads spin until set
  std::atomic<int>* runs;              // rearm bodies executed
};

/// Yield until this thread has been observed on two distinct workers (i.e.
/// it was stolen at least once) or the iteration cap trips.  The cap keeps
/// the test terminating even if stealing were broken — the assertion below
/// then fails loudly instead of hanging.
void mask_entry(void* arg) {
  auto* ctx = static_cast<SmpCtx*>(arg);
  for (int i = 0; i < 100000; ++i) {
    uint32_t w = Scheduler::current_worker();
    uint32_t mask =
        ctx->worker_mask->fetch_or(1u << w, std::memory_order_relaxed) |
        (1u << w);
    if (__builtin_popcount(mask) >= 2 && i >= 100) break;
    Scheduler::current_scheduler()->yield();
  }
  exit_now();
}

TEST(SchedulerSmp, StealSpreadsImbalancedLoad) {
  Pool pool;
  Scheduler sched(4);
  EXPECT_EQ(sched.workers(), 4u);
  std::atomic<uint32_t> worker_mask{0};
  SmpCtx ctx{&worker_mask, nullptr, nullptr, nullptr};
  // All 32 threads enter worker 0's deque (created from bootstrap); the
  // other three workers start empty and can only obtain work by stealing.
  for (int i = 0; i < 32; ++i)
    sched.create(pool.take(), kRegion, &mask_entry, &ctx,
                 static_cast<ThreadId>(i + 1), "m");
  sched.stop();
  sched.run();
  EXPECT_GE(__builtin_popcount(worker_mask.load()), 2)
      << "no thread ever ran off worker 0";
  auto stats = sched.worker_stats();
  ASSERT_EQ(stats.size(), 4u);
  uint64_t steals = 0, dispatches = 0;
  for (const WorkerStats& s : stats) {
    steals += s.steals;
    dispatches += s.dispatches;
  }
  EXPECT_GT(steals, 0u);
  EXPECT_GE(dispatches, 32u);
}

void pinned_entry(void* arg) {
  auto* ctx = static_cast<SmpCtx*>(arg);
  // Created from bootstrap with kFlagPinned: hard affinity to worker 0.
  for (int i = 0; i < 500; ++i) {
    if (Scheduler::current_worker() != 0) ctx->bad_worker->store(true);
    Scheduler::current_scheduler()->yield();
  }
  exit_now();
}

TEST(SchedulerSmp, PinnedThreadsNeverChangeWorker) {
  Pool pool;
  Scheduler sched(4);
  std::atomic<bool> bad_worker{false};
  std::atomic<uint32_t> worker_mask{0};
  SmpCtx ctx{&worker_mask, &bad_worker, nullptr, nullptr};
  for (int i = 0; i < 4; ++i)
    sched.create(pool.take(), kRegion, &pinned_entry, &ctx,
                 static_cast<ThreadId>(i + 1), "p", Thread::kFlagPinned);
  // Unpinned churn alongside, so thieves are active and would take the
  // pinned threads if the affinity check in try_steal were missing.
  for (int i = 0; i < 16; ++i)
    sched.create(pool.take(), kRegion, &mask_entry, &ctx,
                 static_cast<ThreadId>(i + 100), "c");
  sched.stop();
  sched.run();
  EXPECT_FALSE(bad_worker.load())
      << "a kFlagPinned thread was dispatched off its affinity worker";
}

void churn_entry(void* arg) {
  auto* ctx = static_cast<SmpCtx*>(arg);
  while (!ctx->done->load(std::memory_order_relaxed))
    Scheduler::current_scheduler()->yield();
  exit_now();
}

struct FreezeCtx {
  std::atomic<bool> done{false};
  int freezes = 0;
};

void freeze_controller(void* arg) {
  auto* c = static_cast<FreezeCtx*>(arg);
  Scheduler* s = Scheduler::current_scheduler();
  for (int round = 0; round < 50; ++round) {
    // Gate the other workers: no victim can be mid-dispatch, so freeze()
    // must succeed on every still-registered yielding victim.
    s->pause_workers();
    Thread* t = s->find(static_cast<ThreadId>(round % 8 + 1));
    if (t != nullptr && s->freeze(t)) {
      ++c->freezes;
      s->unfreeze(t);
    }
    s->resume_workers();
    s->yield();
  }
  c->done.store(true);
  exit_now();
}

TEST(SchedulerSmp, FreezeWhileWorkersDispatchConcurrently) {
  Pool pool;
  Scheduler sched(4);
  FreezeCtx fc;
  SmpCtx ctx{nullptr, nullptr, &fc.done, nullptr};
  for (int i = 0; i < 8; ++i)
    sched.create(pool.take(), kRegion, &churn_entry, &ctx,
                 static_cast<ThreadId>(i + 1), "v");
  sched.create(pool.take(), kRegion, &freeze_controller, &fc, 99, "ctl");
  sched.stop();
  sched.run();
  // Victims only yield (never block, never exit before `done`), so under
  // the pause gate every round's freeze must have landed.
  EXPECT_EQ(fc.freezes, 50);
}

struct RearmCtx {
  std::mutex mu;
  std::vector<Thread*> parked;
  std::atomic<int> runs{0};
  std::atomic<bool> done{false};
};

void rearm_body(void* arg) {
  auto* c = static_cast<RearmCtx*>(arg);
  c->runs.fetch_add(1, std::memory_order_relaxed);
  Scheduler::current_scheduler()->exit_current([c](Thread* t) {
    std::lock_guard<std::mutex> g(c->mu);
    c->parked.push_back(t);
  });
}

void rearm_controller(void* arg) {
  auto* c = static_cast<RearmCtx*>(arg);
  Scheduler* s = Scheduler::current_scheduler();
  ThreadId next_id = 1000;
  int rearmed = 0;
  while (rearmed < 200) {
    Thread* t = nullptr;
    {
      std::lock_guard<std::mutex> g(c->mu);
      if (!c->parked.empty()) {
        t = c->parked.back();
        c->parked.pop_back();
      }
    }
    if (t == nullptr) {
      s->yield();
      continue;
    }
    // The rearmed thread re-enters scheduling immediately and may be
    // stolen and dispatched by another worker while this thread keeps
    // rearming — the race under test.
    s->rearm(t, &rearm_body, c, next_id++, "r");
    ++rearmed;
  }
  while (c->runs.load(std::memory_order_relaxed) < 204) s->yield();
  c->done.store(true);
  exit_now();
}

TEST(SchedulerSmp, RearmRacesWithStealingWorkers) {
  Pool pool;
  Scheduler sched(4);
  RearmCtx rc;
  SmpCtx churn{nullptr, nullptr, &rc.done, nullptr};
  // 4 seed threads run once and park their descriptors via the reaper.
  for (int i = 0; i < 4; ++i)
    sched.create(pool.take(), kRegion, &rearm_body, &rc,
                 static_cast<ThreadId>(i + 1), "seed");
  for (int i = 0; i < 8; ++i)
    sched.create(pool.take(), kRegion, &churn_entry, &churn,
                 static_cast<ThreadId>(i + 500), "churn");
  sched.create(pool.take(), kRegion, &rearm_controller, &rc, 999, "ctl");
  sched.stop();
  sched.run();
  // 4 seed runs + 200 rearms, each body executing exactly once.
  EXPECT_EQ(rc.runs.load(), 204);
  // Every descriptor of the final generation ends up parked again.
  EXPECT_EQ(rc.parked.size(), 4u);
}

// --- handoff mailbox -------------------------------------------------------

struct FrontCtx {
  std::vector<int>* trace;
};

void front_blocker(void* arg) {
  auto* c = static_cast<FrontCtx*>(arg);
  c->trace->push_back(1);
  Scheduler::current_scheduler()->block();
  c->trace->push_back(200);
  exit_now();
}

void front_filler(void* arg) {
  auto* c = static_cast<FrontCtx*>(arg);
  c->trace->push_back(10);
  Scheduler::current_scheduler()->yield();
  c->trace->push_back(11);
  exit_now();
}

void front_controller(void* arg) {
  auto* c = static_cast<FrontCtx*>(arg);
  Scheduler* s = Scheduler::current_scheduler();
  Thread* a = s->find(1);
  while (a->state != ThreadState::kBlocked) s->yield();
  s->unblock(a, /*front=*/true);
  c->trace->push_back(3);
  s->yield();
  exit_now();
}

TEST(Scheduler, FrontUnblockDispatchesBeforeFifoPeers) {
  // unblock(front=true) lands in the handoff mailbox, which pop_local
  // consults before the deque: the woken thread must run at the next
  // dispatch even though the filler was queued ahead of it in FIFO order.
  Pool pool;
  Scheduler sched;
  std::vector<int> trace;
  FrontCtx ctx{&trace};
  sched.create(pool.take(), kRegion, &front_blocker, &ctx, 1, "blk");
  sched.create(pool.take(), kRegion, &front_filler, &ctx, 2, "fill");
  sched.create(pool.take(), kRegion, &front_controller, &ctx, 3, "ctl");
  sched.stop();
  sched.run();
  // blocker parks; filler marks 10 and yields; controller hands the blocker
  // off front and yields — the very next dispatch must be the blocker's
  // wakeup (200), ahead of the filler's second lap (11).
  ASSERT_GE(trace.size(), 4u);
  EXPECT_EQ((std::vector<int>{trace[0], trace[1], trace[2], trace[3]}),
            (std::vector<int>{1, 10, 3, 200}));
}

// --- unfreeze publication --------------------------------------------------

struct PubPayload {
  uint64_t a = 0;
  uint64_t b = 0;
  std::atomic<int>* bad;
  std::atomic<int>* runs;
};

void pub_entry(void* arg) {
  auto* p = static_cast<PubPayload*>(arg);
  // Filled by the creator AFTER create(..., start_frozen=true) returned;
  // only unfreeze()'s release publication makes these reads well-defined on
  // the (possibly stealing) worker that dispatches us.
  if (p->a == 0 || p->b != p->a * 7)
    p->bad->fetch_add(1, std::memory_order_relaxed);
  p->runs->fetch_add(1, std::memory_order_relaxed);
  exit_now();
}

struct PubCtx {
  Pool* pool;
  std::vector<PubPayload> payloads;
  std::atomic<int> bad{0};
  std::atomic<int> runs{0};
  std::atomic<bool> done{false};
};

void pub_controller(void* arg) {
  auto* c = static_cast<PubCtx*>(arg);
  Scheduler* s = Scheduler::current_scheduler();
  const int n = static_cast<int>(c->payloads.size());
  for (int i = 0; i < n; ++i) {
    PubPayload& p = c->payloads[static_cast<size_t>(i)];
    p.bad = &c->bad;
    p.runs = &c->runs;
    Thread* t = s->create(c->pool->take(), kRegion, &pub_entry, &p,
                          static_cast<ThreadId>(2000 + i), "pub", 0,
                          /*start_frozen=*/true);
    // The race under test: at workers > 1 a ready newborn could already be
    // stolen — frozen creation holds it back until the payload is complete.
    p.a = 0x1234567890abcdefULL + static_cast<uint64_t>(i);
    p.b = p.a * 7;
    s->unfreeze(t);
    s->yield();
  }
  while (c->runs.load(std::memory_order_relaxed) < n) s->yield();
  c->done.store(true);
  exit_now();
}

TEST(SchedulerSmp, UnfreezePublishesPreparedDescriptor) {
  Pool pool;
  Scheduler sched(4);
  PubCtx pc;
  pc.pool = &pool;
  pc.payloads.resize(100);
  SmpCtx churn{nullptr, nullptr, &pc.done, nullptr};
  // Churners keep the other workers actively stealing, so freshly
  // unfrozen threads really do get picked up by foreign workers.
  for (int i = 0; i < 8; ++i)
    sched.create(pool.take(), kRegion, &churn_entry, &churn,
                 static_cast<ThreadId>(i + 500), "churn");
  sched.create(pool.take(), kRegion, &pub_controller, &pc, 999, "ctl");
  sched.stop();
  sched.run();
  EXPECT_EQ(pc.runs.load(), 100);
  EXPECT_EQ(pc.bad.load(), 0)
      << "a stolen thread observed a half-prepared descriptor";
}

TEST(SchedulerDeath, StackOverflowCaught) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Pool pool;
  auto entry = [](void*) {
    // Smash the canary the way a runaway stack would.
    Thread* self = Scheduler::self();
    *reinterpret_cast<uint64_t*>(self->stack_base) = 0;
    Scheduler::current_scheduler()->yield();
    exit_now();
  };
  EXPECT_DEATH(
      {
        Scheduler sched;
        sched.create(pool.take(), kRegion, entry, nullptr, 1, "smash");
        sched.stop();
        sched.run();
      },
      "stack overflow");
}

}  // namespace
}  // namespace pm2::marcel
