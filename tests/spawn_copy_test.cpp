// spawn_copy (migration-safe argument hand-off) and the block ownership
// discipline it exists to uphold.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<long> g_sum{0};
std::atomic<bool> g_ok{true};

struct WorkArgs {
  long base;
  int count;
  char tag[16];
};

void copy_worker(void* arg) {
  auto* a = static_cast<WorkArgs*>(arg);
  if (std::strcmp(a->tag, "hello") != 0) g_ok = false;
  long local = 0;
  for (int i = 0; i < a->count; ++i) local += a->base + i;
  g_sum += local;
  pm2_isofree(a);  // the copy belongs to THIS thread
  pm2_signal(0);
}

TEST(SpawnCopy, ChildOwnsAndFreesItsCopy) {
  g_sum = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime&) {
    WorkArgs args{100, 5, "hello"};  // stack-local: dies after the call
    pm2_thread_create_copy(&copy_worker, &args, sizeof(args), "cw");
    std::memset(&args, 0, sizeof(args));  // prove the child has a copy
    pm2_wait_signals(1);
  });
  EXPECT_TRUE(g_ok.load());
  EXPECT_EQ(g_sum.load(), 100 + 101 + 102 + 103 + 104);
}

void migrating_copy_worker(void* arg) {
  auto* a = static_cast<WorkArgs*>(arg);
  pm2_migrate(marcel_self(), 1);
  // The argument block belongs to us, so it came along.
  if (a->base != 7 || std::strcmp(a->tag, "roam") != 0) g_ok = false;
  pm2_isofree(a);
  pm2_signal(0);
}

TEST(SpawnCopy, ArgumentMigratesWithChild) {
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime&) {
    if (pm2_self() == 0) {
      WorkArgs args{7, 0, "roam"};
      pm2_thread_create_copy(&migrating_copy_worker, &args, sizeof(args),
                             "roamer");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

TEST(SpawnCopy, ManyChildrenManyNodes) {
  g_sum = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime&) {
    if (pm2_self() == 0) {
      for (long i = 0; i < 50; ++i) {
        WorkArgs args{i, 1, "hello"};
        pm2_thread_create_copy(&copy_worker, &args, sizeof(args), "batch");
      }
      pm2_wait_signals(50);
    }
  });
  EXPECT_EQ(g_sum.load(), 49 * 50 / 2);
}

// Regression: when the argument allocation fails (system-wide out of
// contiguous slots), spawn_copy must unwind the already-created thread —
// forget it, release its slots, throw bad_alloc — instead of CHECK-failing
// with the newborn leaked.  The node stays fully usable afterwards.
TEST(SpawnCopy, FailedArgumentAllocationUnwindsCleanly) {
  g_sum = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.area.size = 2ull << 20;  // 32 slots of 64 KiB: a tiny session
  run_app(cfg, [&](Runtime& rt) {
    uint64_t live_before = rt.load();
    size_t free_before = rt.slots().owned_free_slots();
    // Far more than the whole area can hold contiguously.
    std::vector<uint8_t> huge(40 * 64 * 1024, 0x5A);
    EXPECT_THROW(
        pm2_thread_create_copy(&copy_worker, huge.data(), huge.size(), "big"),
        std::bad_alloc);
    // The half-created thread is gone and its stack slot came back.
    EXPECT_EQ(rt.load(), live_before);
    EXPECT_EQ(rt.slots().owned_free_slots(), free_before);
    // The node still spawns normally after the unwind.
    WorkArgs args{1, 3, "hello"};
    pm2_thread_create_copy(&copy_worker, &args, sizeof(args), "ok");
    pm2_wait_signals(1);
  });
  EXPECT_TRUE(g_ok.load());
  EXPECT_EQ(g_sum.load(), 1 + 2 + 3);
}

// The ownership rule itself: freeing another thread's block is a caught
// programming error, not silent corruption.
void foreign_free_worker(void* arg) {
  pm2_isofree(arg);  // arg belongs to main — must abort cleanly
  pm2_signal(0);
}

TEST(SpawnCopyDeath, ForeignFreeIsCaught) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        AppConfig cfg;
        cfg.nodes = 1;
        run_app(cfg, [&](Runtime&) {
          void* mine = pm2_isomalloc(64);
          pm2_thread_create(&foreign_free_worker, mine, "evil");
          pm2_wait_signals(1);
        });
      },
      "belongs to thread");
}

}  // namespace
}  // namespace pm2
