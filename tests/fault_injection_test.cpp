// Fault-tolerant sessions: deterministic fault injection (FaultFabric),
// RPC/migration deadlines with tombstoned correlations, and heartbeat-based
// peer failure detection.
//
// Coverage:
//   * FaultPlan grammar and FaultFabric mutation counters over a raw
//     in-process hub (no runtime);
//   * a deadlined call against a partitioned peer fails kTimeout within
//     2x the deadline;
//   * a reply arriving after the deadline is dropped by the correlation
//     tombstone (counter increments, no double-resolve);
//   * a timed-out migration rolls back: the thread is runnable at the
//     source again and the destination never saw it (exactly one owner);
//   * seeded chaos (random drops) with at-least-once retries still
//     completes every call;
//   * kill -9 of a peer mid-session: heartbeat detection fails the pending
//     call and the in-flight migration with kPeerDown, the migration rolls
//     back, and halt drains without hanging on the dead link.
//
// Every in-proc test pins its own fault plan and per-call deadlines, so the
// suite stays deterministic even under a CI chaos leg that exports
// PM2_FAULT_PLAN / PM2_RPC_TIMEOUT_MS ("seed=1" parses to an inactive plan,
// which also documents "explicitly no faults" and masks the environment).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "fabric/fault_fabric.hpp"
#include "fabric/inproc.hpp"
#include "fabric/socket_fabric.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"
#include "sys/process.hpp"

namespace pm2 {
namespace {

using fabric::FaultFabric;
using fabric::FaultPlan;

#define CHILD_REQUIRE(cond) \
  PM2_CHECK(cond) << "fault-injection child assertion failed"

std::string make_dir() {
  char tmpl[] = "/tmp/pm2-fault-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  PM2_CHECK(dir != nullptr) << "mkdtemp failed";
  return dir;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void touch(const std::string& path) {
  std::ofstream f(path);
  f << "1\n";
}

bool wait_for_file(const std::string& path, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    if (file_exists(path)) return true;
    ::usleep(20'000);
  }
  return file_exists(path);
}

// --- plan grammar ------------------------------------------------------------

TEST(FaultPlanTest, ParsesTheFullGrammar) {
  FaultPlan p = FaultPlan::parse(
      "seed=42,drop=0.25,dup=0.1,trunc=0.05,delay=2ms,delay_p=0.5,"
      "part=0->1,flap_p=0.001,flap=5ms,shortw=16,eintr=8,drop@2=1");
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.drop, 0.25);
  EXPECT_DOUBLE_EQ(p.dup, 0.1);
  EXPECT_DOUBLE_EQ(p.trunc, 0.05);
  EXPECT_EQ(p.delay_ns, 2'000'000u);
  EXPECT_DOUBLE_EQ(p.delay_p, 0.5);
  ASSERT_EQ(p.partitions.size(), 1u);
  EXPECT_EQ(p.partitions[0].first, 0u);
  EXPECT_EQ(p.partitions[0].second, 1u);
  EXPECT_DOUBLE_EQ(p.flap_p, 0.001);
  EXPECT_EQ(p.flap_ns, 5'000'000u);
  EXPECT_EQ(p.short_writes, 16u);
  EXPECT_EQ(p.eintr, 8u);
  ASSERT_EQ(p.drop_per_peer.count(2), 1u);
  EXPECT_DOUBLE_EQ(p.drop_per_peer.at(2), 1.0);
  EXPECT_TRUE(p.active());

  EXPECT_FALSE(FaultPlan::parse("").active());
  // A bare seed is an *inactive* plan: "explicitly no faults".
  EXPECT_FALSE(FaultPlan::parse("seed=7").active());
  // A delay without delay_p delays every frame.
  EXPECT_DOUBLE_EQ(FaultPlan::parse("delay=1ms").delay_p, 1.0);
}

// --- raw decorator over the in-process hub -----------------------------------

fabric::Message user_frame(uint32_t dst, size_t len) {
  fabric::Message m;
  m.type = kUserBase;
  m.dst = dst;
  m.payload.assign(len, 0xAB);
  return m;
}

TEST(FaultFabricTest, InactivePlanIsPassThrough) {
  auto hub = std::make_shared<fabric::InProcHub>(2);
  auto f = fabric::wrap_with_faults(hub->endpoint(0), FaultPlan::parse("seed=9"));
  EXPECT_EQ(dynamic_cast<FaultFabric*>(f.get()), nullptr);
}

TEST(FaultFabricTest, DropCounterMatchesLostFrames) {
  auto hub = std::make_shared<fabric::InProcHub>(2);
  auto ep0 = fabric::wrap_with_faults(hub->endpoint(0),
                                      FaultPlan::parse("drop=1,seed=2"));
  auto ep1 = hub->endpoint(1);
  for (int i = 0; i < 10; ++i) ep0->send(user_frame(1, 16));
  EXPECT_FALSE(ep1->try_recv().has_value());
  auto* ff = dynamic_cast<FaultFabric*>(ep0.get());
  ASSERT_NE(ff, nullptr);
  EXPECT_EQ(ff->stats().dropped, 10u);
  EXPECT_EQ(ff->stats().total(), 10u);
}

TEST(FaultFabricTest, DuplicateDeliversTheFrameTwice) {
  auto hub = std::make_shared<fabric::InProcHub>(2);
  auto ep0 = fabric::wrap_with_faults(hub->endpoint(0),
                                      FaultPlan::parse("dup=1,seed=2"));
  auto ep1 = hub->endpoint(1);
  ep0->send(user_frame(1, 32));
  auto a = ep1->try_recv();
  auto b = ep1->try_recv();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->payload.size(), 32u);
  EXPECT_EQ(b->payload.size(), 32u);
  EXPECT_EQ(dynamic_cast<FaultFabric*>(ep0.get())->stats().duplicated, 1u);
}

TEST(FaultFabricTest, TruncateShortensThePayload) {
  auto hub = std::make_shared<fabric::InProcHub>(2);
  auto ep0 = fabric::wrap_with_faults(hub->endpoint(0),
                                      FaultPlan::parse("trunc=1,seed=5"));
  auto ep1 = hub->endpoint(1);
  ep0->send(user_frame(1, 100));
  auto m = ep1->try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_LT(m->payload.size(), 100u);
  EXPECT_EQ(dynamic_cast<FaultFabric*>(ep0.get())->stats().truncated, 1u);
}

TEST(FaultFabricTest, DelayHoldsFramesUntilRelease) {
  auto hub = std::make_shared<fabric::InProcHub>(2);
  auto ep0 = fabric::wrap_with_faults(hub->endpoint(0),
                                      FaultPlan::parse("delay=20ms,seed=2"));
  auto ep1 = hub->endpoint(1);
  ep0->send(user_frame(1, 8));
  // Held on the sender side: nothing in the destination mailbox yet.
  EXPECT_FALSE(ep1->try_recv().has_value());
  // After the max delay, any sender-side fabric activity releases it.
  ::usleep(30'000);
  ep0->try_recv();
  auto m = ep1->try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.size(), 8u);
  EXPECT_EQ(dynamic_cast<FaultFabric*>(ep0.get())->stats().delayed, 1u);
}

// --- deadlines against a partitioned peer ------------------------------------

int echo_service(RpcContext&, int v) { return v; }

int slow_service(RpcContext&, int v) {
  pm2_sleep_us(120'000);
  return v;
}

TEST(FaultInjection, DeadlinedCallToPartitionedPeerTimesOutWithinTwice) {
  constexpr uint64_t kDeadlineNs = 200'000'000;
  std::atomic<uint64_t> elapsed{0}, timeouts{0}, dropped{0};
  std::atomic<int> code{-1};
  AppConfig cfg;
  cfg.nodes = 2;
  // RPC-level one-way partition: every loss-tolerant frame to node 1 is
  // dropped (control traffic still flows, so the session closes cleanly).
  cfg.rt.fault_plan = "drop@1=1,seed=3";
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        uint64_t t0 = now_ns();
        try {
          rt.call_within<int>(kDeadlineNs, 1, "echo", 7);
        } catch (const RpcError& e) {
          code = static_cast<int>(rpc_error_code(e.what()));
        }
        elapsed = now_ns() - t0;
        timeouts = rt.rpc_timeouts();
        ASSERT_NE(rt.fault_fabric(), nullptr);
        dropped = rt.fault_fabric()->stats().dropped;
      },
      [&](Runtime& rt) { rt.service("echo", &echo_service); });
  EXPECT_EQ(code.load(), static_cast<int>(RpcErrorCode::kTimeout));
  EXPECT_GE(elapsed.load(), kDeadlineNs - 5'000'000);
  EXPECT_LT(elapsed.load(), 2 * kDeadlineNs);
  EXPECT_EQ(timeouts.load(), 1u);
  EXPECT_GE(dropped.load(), 1u);
}

TEST(FaultInjection, LateReplyAfterTimeoutIsTombstoned) {
  std::atomic<int> code{-1}, second{-1};
  std::atomic<uint64_t> late{0}, timeouts{0};
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.fault_plan = "seed=1";  // explicitly no faults
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        try {
          rt.call_within<int>(30'000'000, 1, "slow", 5);
        } catch (const RpcError& e) {
          code = static_cast<int>(rpc_error_code(e.what()));
        }
        // The service replies at ~120 ms; the correlation is already
        // tombstoned, so the reply must be dropped — not resolve anything.
        pm2_sleep_us(300'000);
        late = rt.late_replies_dropped();
        timeouts = rt.rpc_timeouts();
        // The pending machinery is intact: a fresh unbounded call works.
        second = rt.call_within<int>(0, 1, "slow", 9);
      },
      [&](Runtime& rt) { rt.service("slow", &slow_service); });
  EXPECT_EQ(code.load(), static_cast<int>(RpcErrorCode::kTimeout));
  EXPECT_EQ(late.load(), 1u);
  EXPECT_EQ(timeouts.load(), 1u);
  EXPECT_EQ(second.load(), 9);
}

TEST(FaultInjection, ExplicitZeroTimeoutWaitsForever) {
  std::atomic<int> got{-1};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<bool> no_fault_fabric{false};
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.fault_plan = "seed=1";
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        no_fault_fabric = rt.fault_fabric() == nullptr;
        got = rt.call_within<int>(0, 1, "slow", 3);
        timeouts = rt.rpc_timeouts();
      },
      [&](Runtime& rt) { rt.service("slow", &slow_service); });
  EXPECT_EQ(got.load(), 3);
  EXPECT_EQ(timeouts.load(), 0u);
  EXPECT_TRUE(no_fault_fabric.load());
}

// --- seeded chaos with at-least-once retries ---------------------------------

TEST(FaultInjection, SeededChaosCallsSucceedWithRetries) {
  std::atomic<int> correct{0};
  std::atomic<uint64_t> timeouts{0}, dropped{0};
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.fault_plan = "drop=0.25,seed=42";
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        for (int i = 0; i < 12; ++i) {
          for (int attempt = 0;; ++attempt) {
            ASSERT_LT(attempt, 100) << "call " << i << " never got through";
            try {
              // Echo is idempotent, and the tombstones swallow duplicate
              // replies from retries whose first answer was merely dropped:
              // at-least-once retry on kTimeout is safe.
              if (rt.call_within<int>(40'000'000, 1, "echo", i) == i)
                ++correct;
              break;
            } catch (const RpcError& e) {
              ASSERT_EQ(rpc_error_code(e.what()), RpcErrorCode::kTimeout)
                  << e.what();
            }
          }
        }
        timeouts = rt.rpc_timeouts();
        ASSERT_NE(rt.fault_fabric(), nullptr);
        dropped = rt.fault_fabric()->stats().dropped;
      },
      [&](Runtime& rt) { rt.service("echo", &echo_service); });
  EXPECT_EQ(correct.load(), 12);
  // P(zero drops across ~24+ eligible frames at p=0.25) is negligible.
  EXPECT_GE(dropped.load(), 1u);
  EXPECT_GE(timeouts.load(), 1u);
}

// --- heartbeat happy path ----------------------------------------------------

TEST(FaultInjection, HeartbeatsKeepHealthyPeersUp) {
  std::atomic<uint64_t> beats{0};
  std::atomic<int> false_downs{0};
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.fault_plan = "seed=1";
  cfg.rt.heartbeat_period_ns = 20'000'000;
  cfg.rt.heartbeat_miss_limit = 5;
  run_app(cfg, [&](Runtime& rt) {
    uint32_t other = 1 - rt.self();
    for (int i = 0; i < 15; ++i) {
      pm2_sleep_us(10'000);
      if (rt.peer_down(other)) ++false_downs;
    }
    if (rt.self() == 0) beats = rt.heartbeats_sent();
  });
  EXPECT_GE(beats.load(), 3u);
  EXPECT_EQ(false_downs.load(), 0);
}

// --- timed-out migration rolls back ------------------------------------------

std::atomic<bool> g_rb_release{false};

void rb_worker(void*) {
  while (!g_rb_release.load()) pm2_yield();
}

TEST(FaultInjection, TimedOutMigrationRollsBackToSource) {
  constexpr uint64_t kDeadlineNs = 250'000'000;
  g_rb_release = false;
  // Hand-rolled session (no run_app epilogue): the true one-way partition
  // 0->1 would also eat the final barrier release.
  iso::AreaConfig ac;
  ac.skip_decommit = true;
  iso::Area area(ac);
  auto hub = std::make_shared<fabric::InProcHub>(2);
  std::atomic<bool> done{false};
  std::atomic<int> code{-1};
  std::atomic<uint64_t> elapsed{0}, rollbacks{0}, arrived_at_dest{0};
  std::atomic<bool> joined{false};
  std::thread t1([&] {
    RuntimeConfig rc;
    rc.node = 1;
    rc.n_nodes = 2;
    rc.workers = 1;
    rc.fault_plan = "seed=1";
    Runtime rt(rc, area, hub->endpoint(1));
    rt.run([&] {
      while (!done.load()) pm2_yield();
      arrived_at_dest = rt.migrations_in();
      rt.halt();  // 1 -> 0 is not partitioned: the halt reaches node 0
    });
  });
  std::thread t0([&] {
    RuntimeConfig rc;
    rc.node = 0;
    rc.n_nodes = 2;
    rc.workers = 1;  // keeps the spawned worker READY for preemptive migration
    rc.fault_plan = "part=0->1,seed=1";  // the payload never arrives
    Runtime rt(rc, area, hub->endpoint(0));
    rt.run([&] {
      marcel::ThreadId tid = rt.spawn(&rb_worker, nullptr, "rb");
      uint64_t start = now_ns();
      marcel::Future<MigrateResult> fut =
          rt.migrate_async(tid, 1, kDeadlineNs);
      fut.wait();
      elapsed = now_ns() - start;
      if (fut.failed()) code = static_cast<int>(rpc_error_code(fut.error()));
      rollbacks = rt.migration_rollbacks();
      // Rollback adopted the thread back here: it is runnable and joinable.
      g_rb_release = true;
      joined = rt.join(tid);
      done = true;
    });
  });
  t0.join();
  t1.join();
  EXPECT_EQ(code.load(), static_cast<int>(RpcErrorCode::kTimeout));
  EXPECT_GE(elapsed.load(), kDeadlineNs - 5'000'000);
  EXPECT_LT(elapsed.load(), 2 * kDeadlineNs);
  EXPECT_EQ(rollbacks.load(), 1u);
  EXPECT_TRUE(joined.load());
  // Exactly one owner: the destination never installed a copy.
  EXPECT_EQ(arrived_at_dest.load(), 0u);
}

// --- kill -9 mid-session: kPeerDown + crash-mid-migration rollback -----------

std::atomic<bool> g_mp_release{false};

void mp_worker(void*) {
  while (!g_mp_release.load()) pm2_yield();
}

// Child node bodies.  Node 1 wedges itself on request (its single worker
// spins in a service that never yields, starving the comm daemon, so the
// node goes silent) and is then SIGKILLed by the parent.  Node 0 ships a
// call and a migration into the wedged node, waits for heartbeat detection
// to declare it down, and checks every pending-work failure path.
[[noreturn]] void fi_mp_child() {
  const char* dirp = std::getenv("PM2_FI_DIR");
  CHILD_REQUIRE(dirp != nullptr);
  std::string dir = dirp;
  uint32_t node =
      static_cast<uint32_t>(std::atoi(std::getenv("PM2_MP_NODE")));
  iso::Area area{iso::AreaConfig{}};
  fabric::SocketFabricConfig fc;
  fc.node_id = node;
  fc.n_nodes = 2;
  fc.dir = std::getenv("PM2_MP_DIR");
  RuntimeConfig rc;
  rc.node = node;
  rc.n_nodes = 2;
  rc.workers = 1;
  rc.fault_plan = "seed=1";
  rc.heartbeat_period_ns = 100'000'000;
  rc.heartbeat_miss_limit = 5;
  Runtime rt(rc, area, fabric::make_socket_fabric(fc));
  if (node == 1) {
    rt.service_local("wedge", [&](RpcContext&, int) -> int {
      touch(dir + "/wedged");
      while (true) {  // single worker: the comm daemon starves — silence
      }
    });
    rt.run([] {
      while (true) pm2_sleep_us(10'000);  // parked until the parent kills us
    });
    std::exit(1);  // unreachable: the SIGKILL lands first
  }
  rt.run([&] {
    rt.rpc(1, "wedge", 0);
    CHILD_REQUIRE(wait_for_file(dir + "/wedged", 30'000));
    // Ship pending work into the wedged node while its socket still
    // accepts bytes: an unbounded call (nothing dispatches it) and a
    // preemptive migration (payload enters the dead node's socket buffer,
    // the install ack never comes).
    marcel::ThreadId tid = rt.spawn(&mp_worker, nullptr, "mp");
    RpcFuture<int> call_fut = rt.call_async_within<int>(0, 1, "echo", 1);
    marcel::Future<MigrateResult> mig_fut = rt.migrate_async(tid, 1, 0);
    touch(dir + "/sent");
    CHILD_REQUIRE(wait_for_file(dir + "/killed", 30'000));
    // Heartbeat detection (5 x 100 ms of silence) declares node 1 down and
    // fails both: no deadline was armed (explicit 0), so kPeerDown is the
    // only way these can resolve.
    call_fut.wait();
    mig_fut.wait();
    CHILD_REQUIRE(call_fut.failed());
    CHILD_REQUIRE(rpc_error_code(call_fut.error()) ==
                  RpcErrorCode::kPeerDown);
    CHILD_REQUIRE(mig_fut.failed());
    CHILD_REQUIRE(rpc_error_code(mig_fut.error()) == RpcErrorCode::kPeerDown);
    CHILD_REQUIRE(rt.peer_down(1));
    CHILD_REQUIRE(rt.peer_down_failures() == 2);
    // The shipped thread rolled back: runnable and joinable at the source.
    CHILD_REQUIRE(rt.migration_rollbacks() == 1);
    g_mp_release = true;
    CHILD_REQUIRE(rt.join(tid));
    // Fail-fast on a known-down peer, no new pending entry.
    bool fast = false;
    try {
      rt.call_within<int>(0, 1, "echo", 2);
    } catch (const RpcError& e) {
      fast = rpc_error_code(e.what()) == RpcErrorCode::kPeerDown;
    }
    CHILD_REQUIRE(fast);
    // Halt must drain without hanging on the dead link (teardown drops the
    // kHalt frame to node 1).
    rt.halt();
  });
  std::exit(0);
}

TEST(FaultInjection, KillNinePeerFailsPendingWorkAsPeerDown) {
  if (is_spawned_child()) {
    fi_mp_child();  // never returns
  }
  std::string dir = make_dir();
  std::vector<std::string> args = {
      "--gtest_filter=FaultInjection.KillNinePeerFailsPendingWorkAsPeerDown"};
  auto env_for = [&](int node) {
    return std::vector<std::string>{
        "PM2_MP_NODE=" + std::to_string(node),
        "PM2_MP_NODES=2",
        "PM2_MP_DIR=" + dir,
        "PM2_FI_DIR=" + dir,
    };
  };
  pid_t n0 = sys::spawn(sys::self_exe(), args, env_for(0));
  pid_t n1 = sys::spawn(sys::self_exe(), args, env_for(1));
  ASSERT_TRUE(wait_for_file(dir + "/sent", 30'000)) << "pending-work marker";
  ::kill(n1, SIGKILL);
  EXPECT_EQ(sys::wait_child(n1), 128 + SIGKILL);
  touch(dir + "/killed");
  EXPECT_EQ(sys::wait_child(n0), 0);
  for (int i = 0; i < 2; ++i) {
    ::unlink((dir + "/node" + std::to_string(i) + ".sock").c_str());
  }
}

}  // namespace
}  // namespace pm2
