// Slot manager: ownership bitmap, acquire/release, cache, grant/surrender.
#include "isomalloc/slot_manager.hpp"

#include <gtest/gtest.h>

namespace pm2::iso {
namespace {

AreaConfig test_area_config() {
  AreaConfig cfg;
  cfg.base = iso::offset_area_base(7);
  cfg.size = 64ull << 20;  // 1024 slots
  cfg.slot_size = 64 * 1024;
  return cfg;
}

class SlotManagerTest : public ::testing::Test {
 protected:
  SlotManagerTest() : area_(test_area_config()) {}

  SlotManager make(uint32_t node, uint32_t nodes,
                   Distribution d = Distribution::kPartitioned,
                   size_t cache = 8) {
    SlotManagerConfig cfg;
    cfg.node = node;
    cfg.n_nodes = nodes;
    cfg.distribution = d;
    cfg.cache_capacity = cache;
    return SlotManager(area_, cfg);
  }

  Area area_;
};

TEST_F(SlotManagerTest, SingleNodeOwnsEverything) {
  auto mgr = make(0, 1);
  EXPECT_EQ(mgr.owned_free_slots(), 1024u);
}

TEST_F(SlotManagerTest, AcquireCommitsAndClearsBit) {
  auto mgr = make(0, 1);
  auto s = mgr.acquire(1);
  ASSERT_TRUE(s.has_value());
  EXPECT_FALSE(mgr.bitmap().test(*s));
  EXPECT_TRUE(area_.committed(*s));
  EXPECT_EQ(mgr.stats().slots_acquired, 1u);
}

TEST_F(SlotManagerTest, AcquireMultiContiguous) {
  auto mgr = make(0, 1);
  auto s = mgr.acquire(5);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(mgr.bitmap().none_set(*s, 5));
  for (size_t i = 0; i < 5; ++i) EXPECT_TRUE(area_.committed(*s + i));
}

TEST_F(SlotManagerTest, AcquireFailsWithoutContiguousRun) {
  // Round-robin on 2 nodes: node 0 owns only even slots — no run of 2.
  auto mgr = make(0, 2, Distribution::kRoundRobin);
  EXPECT_TRUE(mgr.acquire(1).has_value());
  EXPECT_FALSE(mgr.acquire(2).has_value());
  EXPECT_EQ(mgr.stats().multi_slot_requests, 1u);
}

TEST_F(SlotManagerTest, ReleaseSetsBitsBack) {
  auto mgr = make(0, 1, Distribution::kPartitioned, 0);  // no cache
  auto s = mgr.acquire(3);
  ASSERT_TRUE(s.has_value());
  mgr.release(*s, 3);
  EXPECT_TRUE(mgr.bitmap().all_set(*s, 3));
  EXPECT_FALSE(area_.committed(*s));  // decommitted (cache off / multi-run)
}

TEST_F(SlotManagerTest, CacheKeepsSingleSlotsCommitted) {
  auto mgr = make(0, 1);
  auto s = mgr.acquire(1);
  mgr.release(*s, 1);
  EXPECT_EQ(mgr.cached_slots(), 1u);
  EXPECT_TRUE(area_.committed(*s));  // the paper's §6 optimization
  // Next acquire is a cache hit, no commit.
  uint64_t commits_before = mgr.stats().commits;
  auto s2 = mgr.acquire(1);
  EXPECT_EQ(*s2, *s);
  EXPECT_EQ(mgr.stats().commits, commits_before);
  EXPECT_EQ(mgr.stats().cache_hits, 1u);
}

TEST_F(SlotManagerTest, CacheCapacityBounded) {
  auto mgr = make(0, 1, Distribution::kPartitioned, 2);
  size_t s0 = *mgr.acquire(1);
  size_t s1 = *mgr.acquire(1);
  size_t s2 = *mgr.acquire(1);
  mgr.release(s0, 1);
  mgr.release(s1, 1);
  mgr.release(s2, 1);  // over capacity: decommitted
  EXPECT_EQ(mgr.cached_slots(), 2u);
  EXPECT_FALSE(area_.committed(s2));
}

TEST_F(SlotManagerTest, CacheAbsorbsMultiSlotRuns) {
  auto mgr = make(0, 1);
  auto s = mgr.acquire(3);
  ASSERT_TRUE(s.has_value());
  uint64_t decommits_before = mgr.stats().decommits;
  mgr.release(*s, 3);  // whole run absorbed, stays committed
  EXPECT_EQ(mgr.cached_slots(), 3u);
  EXPECT_EQ(mgr.stats().decommits, decommits_before);
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(area_.committed(*s + i));
  // Re-acquiring the same width is a cache hit: no commit (mmap) at all.
  uint64_t commits_before = mgr.stats().commits;
  uint64_t hits_before = mgr.stats().cache_hits;
  auto s2 = mgr.acquire(3);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s2, *s);
  EXPECT_EQ(mgr.stats().commits, commits_before);
  EXPECT_EQ(mgr.stats().cache_hits, hits_before + 1);
  EXPECT_EQ(mgr.cached_slots(), 0u);
}

TEST_F(SlotManagerTest, CachedRunServesNarrowerAndWiderRequests) {
  auto mgr = make(0, 1);
  auto s = mgr.acquire(4);
  mgr.release(*s, 4);  // 4 cached committed slots
  // Narrower request carves out of the cached stretch (single path uses
  // the cache directly; the bitmap stays consistent).
  auto one = mgr.acquire(1);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(mgr.cached_slots(), 3u);
  // A wider request than any cached stretch falls back to first-fit and
  // commits only the uncached part (commit_run skips cached slots).
  mgr.release(*one, 1);
  auto six = mgr.acquire(6);
  ASSERT_TRUE(six.has_value());
  EXPECT_EQ(mgr.cached_slots(), 0u);
  for (size_t i = 0; i < 6; ++i) EXPECT_TRUE(area_.committed(*six + i));
}

TEST_F(SlotManagerTest, MultiRunOverCapacityStillDecommits) {
  auto mgr = make(0, 1, Distribution::kPartitioned, 4);
  auto a = mgr.acquire(3);
  auto b = mgr.acquire(3);
  mgr.release(*a, 3);  // 3 of 4 capacity used
  uint64_t decommits_before = mgr.stats().decommits;
  mgr.release(*b, 3);  // would overflow the cache: decommitted whole
  EXPECT_EQ(mgr.cached_slots(), 3u);
  EXPECT_EQ(mgr.stats().decommits, decommits_before + 1);
  EXPECT_FALSE(area_.committed(*b));
}

TEST_F(SlotManagerTest, FlushCacheDecommits) {
  auto mgr = make(0, 1);
  size_t s = *mgr.acquire(1);
  mgr.release(s, 1);
  mgr.flush_cache();
  EXPECT_EQ(mgr.cached_slots(), 0u);
  EXPECT_FALSE(area_.committed(s));
}

TEST_F(SlotManagerTest, MultiAcquireOverlappingCachedSlot) {
  auto mgr = make(0, 1);
  size_t s = *mgr.acquire(1);  // slot 0 of the partition
  mgr.release(s, 1);           // now cached + committed
  auto run = mgr.acquire(3);   // first-fit starts at the same slot
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(*run, s);
  EXPECT_EQ(mgr.cached_slots(), 0u);
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(area_.committed(*run + i));
}

TEST_F(SlotManagerTest, GrantAndSurrenderMoveOwnership) {
  auto a = make(0, 2);  // partitioned: node 0 owns [0, 512)
  auto b = make(1, 2);
  // Simulate a negotiation purchase: node 1 sells [512, 516) to node 0.
  b.surrender_slots(512, 4);
  a.grant_slots(512, 4);
  EXPECT_TRUE(a.bitmap().all_set(512, 4));
  EXPECT_TRUE(b.bitmap().none_set(512, 4));
  EXPECT_EQ(a.stats().negotiated_slots, 4u);
  // Node 0 can now acquire the run normally.
  auto s = a.acquire(4);
  // first-fit finds its own partition first; force by consuming:
  // (acquire(4) returns the earliest run, still fine — just verify success)
  EXPECT_TRUE(s.has_value());
}

TEST_F(SlotManagerTest, SetBitmapReconcilesCache) {
  auto mgr = make(0, 1);
  size_t s = *mgr.acquire(1);
  mgr.release(s, 1);  // cached
  pm2::Bitmap newmap(area_.n_slots());
  // New bitmap without slot s: a negotiation sold it.
  newmap.set_range(0, area_.n_slots());
  newmap.clear(s);
  mgr.set_bitmap(std::move(newmap));
  EXPECT_EQ(mgr.cached_slots(), 0u);
  EXPECT_FALSE(area_.committed(s));
}

TEST_F(SlotManagerTest, StatsSummarize) {
  auto mgr = make(0, 1);
  auto s = mgr.acquire(1);
  mgr.release(*s, 1);
  EXPECT_NE(mgr.stats().summary().find("acquired=1"), std::string::npos);
}

TEST_F(SlotManagerTest, DisjointnessAcrossManagers) {
  auto a = make(0, 3, Distribution::kRoundRobin);
  auto b = make(1, 3, Distribution::kRoundRobin);
  auto c = make(2, 3, Distribution::kRoundRobin);
  EXPECT_FALSE(a.bitmap().intersects(b.bitmap()));
  EXPECT_FALSE(a.bitmap().intersects(c.bitmap()));
  EXPECT_FALSE(b.bitmap().intersects(c.bitmap()));
}

TEST_F(SlotManagerTest, DoubleReleaseDies) {
  auto mgr = make(0, 1);
  auto s = mgr.acquire(1);
  mgr.release(*s, 1);
  EXPECT_DEATH(mgr.release(*s, 1), "double release");
}

}  // namespace
}  // namespace pm2::iso
