#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace pm2 {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  Flags f = make({"--nodes=4", "--dist=round-robin"});
  EXPECT_EQ(f.i64("nodes", 0), 4);
  EXPECT_EQ(f.str("dist"), "round-robin");
}

TEST(Flags, SpaceSyntax) {
  Flags f = make({"--nodes", "8"});
  EXPECT_EQ(f.i64("nodes", 0), 8);
}

TEST(Flags, BareBool) {
  Flags f = make({"--spawn", "--verbose"});
  EXPECT_TRUE(f.b("spawn"));
  EXPECT_TRUE(f.b("verbose"));
  EXPECT_FALSE(f.b("absent"));
}

TEST(Flags, ExplicitFalse) {
  Flags f = make({"--cache=false"});
  EXPECT_FALSE(f.b("cache", true));
}

TEST(Flags, Defaults) {
  Flags f = make({});
  EXPECT_EQ(f.i64("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.f64("x", 2.5), 2.5);
  EXPECT_EQ(f.str("s", "d"), "d");
}

TEST(Flags, Positional) {
  Flags f = make({"--a=1", "pos1", "pos2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
}

TEST(Flags, HexValues) {
  Flags f = make({"--base=0x5000"});
  EXPECT_EQ(f.i64("base", 0), 0x5000);
}

}  // namespace
}  // namespace pm2
