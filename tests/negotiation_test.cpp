// Pure negotiation engine tests (paper §4.4 steps c+d) — no networking.
#include "isomalloc/negotiation.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "isomalloc/distribution.hpp"

namespace pm2::iso {
namespace {

std::vector<pm2::Bitmap> rr_bitmaps(size_t slots, uint32_t nodes) {
  std::vector<pm2::Bitmap> v;
  for (uint32_t n = 0; n < nodes; ++n)
    v.push_back(initial_bitmap(Distribution::kRoundRobin, slots, n, nodes));
  return v;
}

TEST(Negotiation, RoundRobinPairNeedsPurchases) {
  auto bitmaps = rr_bitmaps(64, 2);
  // Node 0 owns even slots; a run of 4 needs the odd ones from node 1.
  auto plan = plan_negotiation(bitmaps, 0, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->first_slot, 0u);
  EXPECT_EQ(plan->run, 4u);
  // Purchases: slots 1 and 3 from node 1 (two single-slot segments).
  ASSERT_EQ(plan->purchases.size(), 2u);
  EXPECT_EQ(plan->purchases[0].from_node, 1u);
  EXPECT_EQ(plan->purchases[0].first, 1u);
  EXPECT_EQ(plan->purchases[0].count, 1u);
  EXPECT_EQ(plan->purchases[1].first, 3u);
}

TEST(Negotiation, ApplyPlanTransfersOwnership) {
  auto bitmaps = rr_bitmaps(64, 2);
  auto plan = plan_negotiation(bitmaps, 0, 4);
  ASSERT_TRUE(plan.has_value());
  apply_plan(bitmaps, 0, *plan);
  EXPECT_TRUE(bitmaps[0].all_set(0, 4));
  EXPECT_FALSE(bitmaps[1].test(1));
  EXPECT_FALSE(bitmaps[1].test(3));
  EXPECT_TRUE(is_disjoint(bitmaps));
}

TEST(Negotiation, RequesterOwnedSlotsNotPurchased) {
  std::vector<pm2::Bitmap> bitmaps;
  bitmaps.emplace_back(32);
  bitmaps.emplace_back(32);
  bitmaps[0].set_range(0, 2);  // requester already owns [0,2)
  bitmaps[1].set_range(2, 2);  // needs [2,4) from node 1
  auto plan = plan_negotiation(bitmaps, 0, 4);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->purchases.size(), 1u);
  EXPECT_EQ(plan->purchases[0].from_node, 1u);
  EXPECT_EQ(plan->purchases[0].first, 2u);
  EXPECT_EQ(plan->purchases[0].count, 2u);
}

TEST(Negotiation, FailsWhenNoGlobalRun) {
  std::vector<pm2::Bitmap> bitmaps;
  bitmaps.emplace_back(32);
  bitmaps.emplace_back(32);
  bitmaps[0].set(0);
  bitmaps[1].set(2);  // gap at 1 (thread-owned): no run of 2 anywhere
  EXPECT_FALSE(plan_negotiation(bitmaps, 0, 2).has_value());
}

TEST(Negotiation, SkipsThreadOwnedGaps) {
  std::vector<pm2::Bitmap> bitmaps;
  bitmaps.emplace_back(32);
  bitmaps.emplace_back(32);
  // Slots 0-1 free at node 1, slot 2 thread-owned, 4-7 free at node 1.
  bitmaps[1].set_range(0, 2);
  bitmaps[1].set_range(4, 4);
  auto plan = plan_negotiation(bitmaps, 0, 3);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->first_slot, 4u);
}

TEST(Negotiation, MultiOwnerRun) {
  std::vector<pm2::Bitmap> bitmaps;
  for (int i = 0; i < 3; ++i) bitmaps.emplace_back(32);
  bitmaps[0].set(10);
  bitmaps[1].set(11);
  bitmaps[2].set_range(12, 2);
  auto plan = plan_negotiation(bitmaps, 0, 4);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->first_slot, 10u);
  ASSERT_EQ(plan->purchases.size(), 2u);
  EXPECT_EQ(plan->purchases[0].from_node, 1u);
  EXPECT_EQ(plan->purchases[1].from_node, 2u);
  EXPECT_EQ(plan->purchases[1].count, 2u);
  apply_plan(bitmaps, 0, *plan);
  EXPECT_TRUE(bitmaps[0].all_set(10, 4));
}

TEST(Negotiation, BestFitVariant) {
  std::vector<pm2::Bitmap> bitmaps;
  bitmaps.emplace_back(64);
  bitmaps.emplace_back(64);
  bitmaps[1].set_range(0, 10);   // loose hole
  bitmaps[1].set_range(20, 3);   // tight hole
  auto ff = plan_negotiation(bitmaps, 0, 3, FitPolicy::kFirstFit);
  auto bf = plan_negotiation(bitmaps, 0, 3, FitPolicy::kBestFit);
  ASSERT_TRUE(ff && bf);
  EXPECT_EQ(ff->first_slot, 0u);
  EXPECT_EQ(bf->first_slot, 20u);
}

// Property: random ownership states stay disjoint and conserve the total
// number of owned slots across arbitrary negotiation sequences.
class NegotiationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NegotiationProperty, DisjointnessAndConservation) {
  pm2::Rng rng(GetParam());
  const size_t slots = 256;
  const uint32_t nodes = 4;
  auto bitmaps = rr_bitmaps(slots, nodes);

  // Randomly knock out some slots to "thread-owned" (cleared everywhere).
  for (size_t i = 0; i < slots; ++i) {
    if (rng.next_bool(0.2)) {
      for (auto& b : bitmaps)
        if (b.test(i)) b.clear(i);
    }
  }
  size_t total_owned = 0;
  for (auto& b : bitmaps) total_owned += b.count();

  for (int round = 0; round < 50; ++round) {
    auto requester = static_cast<uint32_t>(rng.next_below(nodes));
    size_t run = rng.next_range(1, 12);
    auto plan = plan_negotiation(bitmaps, requester, run);
    if (!plan) continue;
    apply_plan(bitmaps, requester, *plan);
    ASSERT_TRUE(is_disjoint(bitmaps)) << "round " << round;
    size_t owned_now = 0;
    for (auto& b : bitmaps) owned_now += b.count();
    ASSERT_EQ(owned_now, total_owned) << "slots created or destroyed";
    ASSERT_TRUE(bitmaps[requester].all_set(plan->first_slot, run));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NegotiationProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace pm2::iso
