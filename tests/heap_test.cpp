// ThreadHeap: slot-list management over the slot manager.
#include "isomalloc/heap.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pm2::iso {
namespace {

AreaConfig heap_area_config() {
  AreaConfig cfg;
  cfg.base = iso::offset_area_base(4);
  cfg.size = 64ull << 20;  // 1024 slots
  cfg.slot_size = 64 * 1024;
  return cfg;
}

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : area_(heap_area_config()), mgr_(area_, mgr_config()) {}

  static SlotManagerConfig mgr_config() {
    SlotManagerConfig cfg;
    cfg.node = 0;
    cfg.n_nodes = 1;
    cfg.distribution = Distribution::kPartitioned;
    return cfg;
  }

  ThreadHeap heap(HeapConfig cfg = {}) {
    return ThreadHeap(&slot_list_, /*owner=*/42, mgr_, cfg, &stats_);
  }

  Area area_;
  SlotManager mgr_;
  void* slot_list_ = nullptr;
  HeapStats stats_;
};

TEST_F(HeapTest, FirstAllocAttachesSlot) {
  auto h = heap();
  void* p = h.alloc(100);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(slot_list_, nullptr);
  EXPECT_EQ(stats_.allocs, 1u);
  EXPECT_EQ(stats_.slot_attach, 1u);
  ThreadHeap::check_invariants(slot_list_, area_.slot_size());
}

TEST_F(HeapTest, SecondAllocReusesSlot) {
  auto h = heap();
  h.alloc(100);
  h.alloc(100);
  EXPECT_EQ(stats_.slot_attach, 1u);  // both fit in one slot
  size_t count = 0;
  ThreadHeap::for_each_slot(slot_list_, [&](SlotHeader*) { ++count; });
  EXPECT_EQ(count, 1u);
}

TEST_F(HeapTest, OverflowAttachesSecondSlot) {
  auto h = heap();
  h.alloc(40 * 1024);
  h.alloc(40 * 1024);  // does not fit beside the first
  EXPECT_EQ(stats_.slot_attach, 2u);
  ThreadHeap::check_invariants(slot_list_, area_.slot_size());
}

TEST_F(HeapTest, LargeAllocBuildsMergedRun) {
  auto h = heap();
  void* p = h.alloc(300 * 1024);  // needs 5 slots of 64K
  ASSERT_NE(p, nullptr);
  auto* head = static_cast<SlotHeader*>(slot_list_);
  EXPECT_EQ(head->nslots, 5u);
  std::memset(p, 0x11, 300 * 1024);
  ThreadHeap::check_invariants(slot_list_, area_.slot_size());
}

TEST_F(HeapTest, FreeReleasesEmptySlot) {
  auto h = heap();
  void* p = h.alloc(100);
  uint64_t released_before = mgr_.stats().slots_released;
  h.free(p);
  EXPECT_EQ(slot_list_, nullptr);
  EXPECT_EQ(mgr_.stats().slots_released, released_before + 1);
  EXPECT_EQ(stats_.slot_detach, 1u);
}

TEST_F(HeapTest, KeepEmptySlotsPolicy) {
  HeapConfig cfg;
  cfg.release_empty_slots = false;
  auto h = heap(cfg);
  void* p = h.alloc(100);
  h.free(p);
  EXPECT_NE(slot_list_, nullptr);  // slot stays attached
  // And is reused by the next allocation.
  h.alloc(100);
  EXPECT_EQ(stats_.slot_attach, 1u);
}

TEST_F(HeapTest, FreeNullIsNoop) {
  auto h = heap();
  h.free(nullptr);
  EXPECT_EQ(stats_.frees, 0u);
}

TEST_F(HeapTest, StatsTrackLiveBytes) {
  auto h = heap();
  void* a = h.alloc(1000);
  void* b = h.alloc(3000);
  EXPECT_GE(stats_.bytes_allocated, 4000u);
  EXPECT_EQ(stats_.peak_bytes, stats_.bytes_allocated);
  h.free(a);
  EXPECT_LT(stats_.bytes_allocated, stats_.peak_bytes);
  h.free(b);
  EXPECT_EQ(stats_.bytes_allocated, 0u);
}

TEST_F(HeapTest, ReallocGrowsPreservingContents) {
  auto h = heap();
  char* p = static_cast<char*>(h.alloc(64));
  std::strcpy(p, "payload");
  char* q = static_cast<char*>(h.realloc(p, 10000));
  ASSERT_NE(q, nullptr);
  EXPECT_STREQ(q, "payload");
  h.free(q);
}

TEST_F(HeapTest, ReallocShrinkKeepsPointer) {
  auto h = heap();
  void* p = h.alloc(1000);
  EXPECT_EQ(h.realloc(p, 10), p);
}

TEST_F(HeapTest, ReallocNullActsAsAlloc) {
  auto h = heap();
  void* p = h.realloc(nullptr, 50);
  EXPECT_NE(p, nullptr);
}

TEST_F(HeapTest, ReallocZeroFrees) {
  auto h = heap();
  void* p = h.alloc(50);
  EXPECT_EQ(h.realloc(p, 0), nullptr);
  EXPECT_EQ(stats_.frees, 1u);
}

TEST_F(HeapTest, ReleaseChainReturnsEverything) {
  auto h = heap();
  h.alloc(100);
  h.alloc(40 * 1024);
  h.alloc(40 * 1024);
  h.alloc(200 * 1024);
  size_t owned_before = mgr_.owned_free_slots();
  ThreadHeap::release_chain(static_cast<SlotHeader*>(slot_list_), mgr_);
  slot_list_ = nullptr;
  // All slots are back: total owned must equal the initial 1024 again
  // (some may sit in the cache, still counted by the bitmap).
  EXPECT_EQ(mgr_.owned_free_slots(), 1024u);
  EXPECT_GT(mgr_.owned_free_slots(), owned_before);
}

TEST_F(HeapTest, AllocFailureReportsNeededSlots) {
  // Two-node round-robin: no contiguous pair owned locally.
  SlotManagerConfig cfg;
  cfg.node = 0;
  cfg.n_nodes = 2;
  cfg.distribution = Distribution::kRoundRobin;
  SlotManager rr(area_, cfg);
  void* list = nullptr;
  ThreadHeap h(&list, 1, rr);
  void* p = h.alloc(100 * 1024);  // needs 2 contiguous slots
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(h.needed_slots(), 2u);
  // Single-slot requests still succeed.
  EXPECT_NE(h.alloc(1024), nullptr);
  ThreadHeap::release_chain(static_cast<SlotHeader*>(list), rr);
}

TEST_F(HeapTest, ManyAllocationsAcrossManySlots) {
  auto h = heap();
  std::vector<void*> ptrs;
  for (int i = 0; i < 500; ++i) {
    void* p = h.alloc(1024);
    ASSERT_NE(p, nullptr);
    std::memset(p, i & 0xFF, 1024);
    ptrs.push_back(p);
  }
  ThreadHeap::check_invariants(slot_list_, area_.slot_size());
  // Verify contents survived neighbouring writes.
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(static_cast<unsigned char*>(ptrs[i])[0],
              static_cast<unsigned char>(i & 0xFF));
  }
  for (void* p : ptrs) h.free(p);
  EXPECT_EQ(slot_list_, nullptr);
  EXPECT_EQ(stats_.allocs, 500u);
  EXPECT_EQ(stats_.frees, 500u);
}

}  // namespace
}  // namespace pm2::iso
