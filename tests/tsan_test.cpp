// Happens-before regression tests for the fiber-aware TSan instrumentation.
//
// Each test drives one synchronization edge the runtime promises: a plain
// (non-atomic) write on the producer side must be visible to the consumer
// purely through the primitive under test.  On a normal build these are
// ordinary functional tests; under -fsanitize=thread (the CI TSan leg runs
// this file at 1 and 4 workers) they are the regression net for the
// __tsan_switch_to_fiber annotations in the scheduler — if a context-switch
// edge is dropped, TSan reports the plain write as a data race.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "marcel/scheduler.hpp"
#include "marcel/sync.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

AppConfig config_with_workers(uint32_t nodes, uint32_t workers) {
  AppConfig cfg;
  cfg.nodes = nodes;
  cfg.rt.workers = workers;
  return cfg;
}

// Promise::set_value publishes the producer's plain writes to the consumer
// parked in Future::wait() (Event::set release / wake handoff).
TEST(TsanHappensBefore, PromiseSetValueToFutureWake) {
  std::atomic<int> bad{0};
  run_app(config_with_workers(1, 4), [&](Runtime& rt) {
    for (int round = 0; round < 64; ++round) {
      marcel::Promise<int> p;
      marcel::Future<int> f = p.future();
      int payload = 0;  // plain: published only by set_value
      rt.spawn_local([&] {
        payload = 123;
        p.set_value(round);
      });
      if (f.take() != round || payload != 123) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

// WaitQueue unpark(front): the unparker's plain writes must be visible to
// the woken thread — the direct-handoff path jumps the thread to the front
// of a ready deque, crossing workers.
TEST(TsanHappensBefore, WaitQueueUnparkFrontHandoff) {
  std::atomic<int> bad{0};
  run_app(config_with_workers(1, 4), [&](Runtime& rt) {
    for (int round = 0; round < 64; ++round) {
      marcel::WaitQueue q;
      int data = 0;  // plain: handed off through the unpark
      auto id = rt.spawn_local([&] {
        q.park_current();
        if (data != 7) ++bad;
      });
      // Park first, then publish, then wake to the front.
      while (q.empty()) marcel::Scheduler::current_scheduler()->yield();
      data = 7;
      q.unpark_one(/*front=*/true);
      rt.join(id);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

// Outbox path: on a transport that is not concurrent-send-safe (the socket
// fabric), a worker's reply is flattened into the outbox under out_lock_
// and the comm daemon drains it onto the wire.  The reply payload rides
// that edge end to end.
TEST(TsanHappensBefore, OutboxFlattenToCommDaemonDrain) {
  AppConfig cfg = config_with_workers(2, 4);
  cfg.socket_fabric = true;  // concurrent_send_safe() == false: replies defer
  std::atomic<int> bad{0};
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          for (int i = 0; i < 32; ++i) {
            if (rt.call<int>(1, "triple", i) != 3 * i) ++bad;
          }
        }
        rt.barrier();
      },
      [](Runtime& rt) {
        rt.service("triple", [](RpcContext&, int v) -> int { return 3 * v; });
      });
  EXPECT_EQ(bad.load(), 0);
}

// Invocation pool: an exiting service thread parks its context on one
// worker; the next dispatch re-arms it and any worker may steal and run
// it.  The rearm (ctx_make + state reset) must happen-before the stolen
// first dispatch — pipelined calls from several client threads keep the
// pool churning across all workers.
TEST(TsanHappensBefore, InvocationPoolRearmVsSteal) {
  std::atomic<int> bad{0};
  run_app(
      config_with_workers(1, 4),
      [&](Runtime& rt) {
        std::vector<marcel::ThreadId> clients;
        for (int c = 0; c < 4; ++c) {
          clients.push_back(rt.spawn_local([&rt, &bad, c] {
            for (int i = 0; i < 16; ++i) {
              int v = 100 * c + i;
              if (Runtime::current()->call<int>(0, "inc", v) != v + 1) ++bad;
            }
          }));
        }
        for (auto id : clients) rt.join(id);
      },
      [](Runtime& rt) {
        rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
      });
  EXPECT_EQ(bad.load(), 0);
}

// Spawn publication: Runtime::spawn_local creates the thread frozen, fills
// user_fn/user_arg (the copied closure), then unfreeze()s it — push_ready's
// release-store of kReady plus the Chase-Lev publication is the only edge
// carrying the creator's plain writes to the (frequently stealing) worker
// that dispatches the newborn.  At 4 workers with churn, newborns are
// routinely stolen before the creator yields.
TEST(TsanHappensBefore, SpawnUnfreezePublishesClosure) {
  std::atomic<int> bad{0};
  run_app(config_with_workers(1, 4), [&](Runtime& rt) {
    for (int round = 0; round < 64; ++round) {
      int payload = 0;  // plain: published only by the unfreeze edge
      payload = round + 1;
      auto id = rt.spawn_local([&bad, &payload, round] {
        if (payload != round + 1) ++bad;
      });
      rt.join(id);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

// The non-front unpark: the wakeup goes through unblock(front=false) — a
// remote push into the target worker's inbox, drained into its Chase-Lev
// deque, and possibly stolen from there by a third worker.  The unparker's
// plain write must survive that whole chain (inbox release-CAS, deque
// publication, steal acquire).
TEST(TsanHappensBefore, WaitQueueUnparkBackCrossesDeque) {
  std::atomic<int> bad{0};
  run_app(config_with_workers(1, 4), [&](Runtime& rt) {
    for (int round = 0; round < 64; ++round) {
      marcel::WaitQueue q;
      int data = 0;  // plain: rides the inbox -> deque -> steal chain
      auto id = rt.spawn_local([&] {
        q.park_current();
        if (data != round + 41) ++bad;
      });
      while (q.empty()) marcel::Scheduler::current_scheduler()->yield();
      data = round + 41;
      q.unpark_one(/*front=*/false);
      rt.join(id);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace pm2
