// Distributed negotiation integration tests: the full lock/gather/update
// protocol over the fabric, triggered transparently by pm2_isomalloc.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "isomalloc/distribution.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<bool> g_ok{true};

#define NEGO_EXPECT(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      g_ok = false;                                                \
      pm2_printf("NEGO_EXPECT failed: %s (line %d)\n", #cond,      \
                 __LINE__);                                        \
    }                                                              \
  } while (0)

AppConfig rr_config(uint32_t nodes) {
  AppConfig cfg;
  cfg.nodes = nodes;
  cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
  return cfg;
}

// Round-robin over 2 nodes: any multi-slot allocation *must* negotiate
// (the paper's own experimental setup for Fig. 11).
void multi_slot_worker(void*) {
  auto* p = static_cast<unsigned char*>(pm2_isomalloc(200 * 1024));
  NEGO_EXPECT(p != nullptr);
  std::memset(p, 0x77, 200 * 1024);
  NEGO_EXPECT(p[0] == 0x77 && p[200 * 1024 - 1] == 0x77);
  pm2_isofree(p);
  pm2_signal(0);
}

TEST(NegotiationRuntime, MultiSlotAllocationTriggersNegotiation) {
  g_ok = true;
  std::atomic<uint64_t> negotiations{0};
  run_app(rr_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&multi_slot_worker, nullptr, "big");
      pm2_wait_signals(1);
      negotiations = rt.negotiations_initiated();
    }
  });
  EXPECT_TRUE(g_ok.load());
  EXPECT_GE(negotiations.load(), 1u);
}

TEST(NegotiationRuntime, SingleSlotAllocationsStayLocal) {
  std::atomic<uint64_t> negotiations{0};
  run_app(rr_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      for (int i = 0; i < 50; ++i) {
        void* p = rt.isomalloc(1024);
        rt.isofree(p);
      }
      negotiations = rt.negotiations_initiated();
    }
  });
  EXPECT_EQ(negotiations.load(), 0u);
}

// Both nodes negotiate concurrently: the lock must serialize them and the
// final ownership must stay disjoint.
void contender_worker(void* arg) {
  auto signal_to = static_cast<uint32_t>(reinterpret_cast<uintptr_t>(arg));
  for (int i = 0; i < 5; ++i) {
    auto* p = static_cast<unsigned char*>(pm2_isomalloc(150 * 1024));
    NEGO_EXPECT(p != nullptr);
    p[0] = 1;
    p[150 * 1024 - 1] = 2;
    pm2_isofree(p);
  }
  pm2_signal(signal_to);
}

TEST(NegotiationRuntime, ConcurrentNegotiationsSerialize) {
  g_ok = true;
  run_app(rr_config(2), [&](Runtime& rt) {
    // Both nodes run a contender locally.
    pm2_thread_create(&contender_worker,
                      reinterpret_cast<void*>(uintptr_t{rt.self()}),
                      "contender");
    rt.wait_signals(1);
    rt.barrier();
    // Invariant: bitmaps disjoint after the dust settles (each node checks
    // against its own view implicitly; cross-check via slot counts).
    NEGO_EXPECT(rt.slots().bitmap().count() <= rt.area().n_slots());
  });
  EXPECT_TRUE(g_ok.load());
}

TEST(NegotiationRuntime, FourNodeNegotiation) {
  g_ok = true;
  run_app(rr_config(4), [&](Runtime& rt) {
    if (rt.self() == 2) {  // a non-coordinator initiator
      auto* p = static_cast<unsigned char*>(pm2_isomalloc(400 * 1024));
      NEGO_EXPECT(p != nullptr);
      std::memset(p, 0xEE, 400 * 1024);
      pm2_isofree(p);
      EXPECT_GE(rt.negotiations_initiated(), 1u);
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_ok.load());
}

// A node with zero free slots can buy single slots through negotiation
// (paper: "the same algorithm may be used if a node has run out of slots").
TEST(NegotiationRuntime, ExhaustedNodeBuysSlots) {
  AppConfig cfg;
  cfg.nodes = 2;
  // Tiny area: 128 slots of 64K = 8 MiB, partitioned: node 0 owns 64.
  // Keep the default base: it is sanitizer-dependent (see AreaConfig).
  cfg.area.size = 8ull << 20;
  cfg.rt.slots.distribution = iso::Distribution::kPartitioned;
  cfg.rt.slots.cache_capacity = 0;
  std::atomic<uint64_t> negotiated{0};
  std::atomic<bool> oom{false};
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      // Eat all local slots (each 60K alloc owns one slot), then keep
      // allocating: the extra slots must come from node 1.
      std::vector<void*> hold;
      try {
        for (int i = 0; i < 80; ++i) hold.push_back(rt.isomalloc(60 * 1024));
      } catch (const std::bad_alloc&) {
        oom = true;
      }
      negotiated = rt.slots().stats().negotiated_slots;
      for (void* p : hold) rt.isofree(p);
    }
    rt.barrier();
  });
  EXPECT_FALSE(oom.load());
  EXPECT_GE(negotiated.load(), 10u);
}

// Exhausting the *entire* system must surface as bad_alloc, with bitmaps
// still consistent afterwards.
TEST(NegotiationRuntime, GlobalExhaustionThrows) {
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.area.size = 4ull << 20;  // 64 slots total
  cfg.rt.slots.distribution = iso::Distribution::kPartitioned;
  std::atomic<bool> threw{false};
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      std::vector<void*> hold;
      try {
        for (int i = 0; i < 100; ++i) hold.push_back(rt.isomalloc(60 * 1024));
      } catch (const std::bad_alloc&) {
        threw = true;
      }
      for (void* p : hold) rt.isofree(p);
    }
    rt.barrier();
  });
  EXPECT_TRUE(threw.load());
}

// Thread death during someone else's negotiation: releases are deferred
// but must not be lost.
void die_quickly_worker(void*) {
  void* p = pm2_isomalloc(1024);
  pm2_isofree(p);
  pm2_signal(0);
}

TEST(NegotiationRuntime, ChurnDuringNegotiations) {
  g_ok = true;
  run_app(rr_config(2), [&](Runtime& rt) {
    if (rt.self() == 1) {
      // Node 1 churns short-lived threads while node 0 negotiates.
      for (int i = 0; i < 20; ++i) pm2_thread_create(&die_quickly_worker,
                                                     nullptr, "churn");
    }
    if (rt.self() == 0) {
      for (int i = 0; i < 10; ++i) {
        void* p = rt.isomalloc(150 * 1024);  // negotiation every time
        rt.isofree(p);
      }
      rt.wait_signals(20);
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_ok.load());
}

}  // namespace
}  // namespace pm2
