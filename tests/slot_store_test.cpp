// SlotStore residency tiering: freeze -> demote -> (unfreeze | migrate),
// budget-driven eviction order, capacity beyond the resident budget,
// header/stamp validation on recovery, ASan poison round trips through the
// store file, audit coverage of demoted runs, and incremental (soft-dirty)
// node checkpoints.
#include <gtest/gtest.h>

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"
#include "fabric/inproc.hpp"
#include "isomalloc/area.hpp"
#include "isomalloc/slot_store.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/audit.hpp"
#include "pm2/checkpoint.hpp"
#include "pm2/runtime.hpp"
#include "sys/sanitizer.hpp"
#include "sys/vm.hpp"

namespace pm2 {
namespace {

std::atomic<int> g_phase{0};
std::atomic<int> g_built{0};
std::atomic<int> g_done{0};
std::atomic<bool> g_ok{true};

#define WEXPECT(cond)                                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      g_ok = false;                                                     \
      pm2_printf("WEXPECT failed: %s (line %d)\n", #cond, __LINE__);    \
    }                                                                   \
  } while (0)

std::string make_store_dir() {
  char tmpl[] = "/tmp/pm2-store-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  PM2_CHECK(dir != nullptr) << "mkdtemp failed";
  return dir;
}

/// True when the page holding `addr` has resident (committed) physical
/// memory.  Demotion decommits (MADV_DONTNEED + PROT_NONE), so a demoted
/// run's pages read as non-resident without touching them.
bool page_resident(const void* addr) {
  uintptr_t page = reinterpret_cast<uintptr_t>(addr) & ~uintptr_t{4095};
  unsigned char vec = 0;
  PM2_CHECK(::mincore(reinterpret_cast<void*>(page), 1, &vec) == 0);
  return (vec & 1) != 0;
}

// --- freeze -> demote -> unfreeze -------------------------------------------

void tier_worker(void*) {
  auto* data = static_cast<int*>(pm2_isomalloc(2048 * sizeof(int)));
  for (int i = 0; i < 2048; ++i) data[i] = i ^ 0x5a5a;
  int local = 4242;
  g_phase = 1;
  while (g_phase.load() < 2) pm2_yield();
  // Back from the store file: heap and stack contents must be intact.
  for (int i = 0; i < 2048; ++i) WEXPECT(data[i] == (i ^ 0x5a5a));
  WEXPECT(local == 4242);
  pm2_isofree(data);
  g_done = 1;
  pm2_signal(0);
}

TEST(SlotStore, TierCycleFreezeDemoteUnfreeze) {
  g_phase = 0;
  g_done = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.slot_store_dir = make_store_dir();
  run_app(cfg, [](Runtime& rt) {
    ASSERT_NE(rt.slot_store(), nullptr);
    marcel::ThreadId id = pm2_thread_create(tier_worker, nullptr, "tier");
    while (g_phase.load() < 1) pm2_yield();
    marcel::Thread* t = rt.sched().find(id);
    ASSERT_NE(t, nullptr);
    void* stack_probe = t->stack_base;
    EXPECT_TRUE(page_resident(stack_probe));

    ASSERT_TRUE(rt.freeze_thread(id));
    ASSERT_TRUE(rt.demote_thread(id));
    EXPECT_TRUE(rt.thread_demoted(id));
    EXPECT_EQ(rt.demoted_count(), 1u);
    EXPECT_EQ(rt.demotions(), 1u);
    EXPECT_GT(rt.demoted_bytes(), 0u);
    // Pages are really gone, not just bookkept: the store file is the only
    // copy of the thread now.
    EXPECT_FALSE(page_resident(stack_probe));
    EXPECT_TRUE(rt.slot_store()->has_record(id));

    ASSERT_TRUE(rt.unfreeze_thread(id));
    EXPECT_EQ(rt.fault_backs(), 1u);
    EXPECT_FALSE(rt.thread_demoted(id));
    EXPECT_EQ(rt.demoted_count(), 0u);
    EXPECT_TRUE(page_resident(stack_probe));
    g_phase = 2;
    pm2_wait_signals(1);
    EXPECT_EQ(g_done.load(), 1);
  });
  EXPECT_TRUE(g_ok.load());
}

// --- freeze -> demote -> migrate out ----------------------------------------

void roam_worker(void*) {
  auto* data = static_cast<long*>(pm2_isomalloc(1024 * sizeof(long)));
  for (int i = 0; i < 1024; ++i) data[i] = 3L * i + 7;
  g_phase = 1;
  while (pm2_self() == 0) pm2_yield();
  // Resumed on node 1 after a demote + ship: the pack faulted the image
  // back from node 0's store file.
  WEXPECT(pm2_self() == 1);
  for (int i = 0; i < 1024; ++i) WEXPECT(data[i] == 3L * i + 7);
  pm2_isofree(data);
  pm2_signal(0);
}

TEST(SlotStore, FreezeDemoteMigrateFaultsBackOnPack) {
  g_phase = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.slot_store_dir = make_store_dir();
  run_app(cfg, [](Runtime& rt) {
    if (rt.self() != 0) return;
    marcel::ThreadId id = pm2_thread_create(roam_worker, nullptr, "roam");
    while (g_phase.load() < 1) pm2_yield();
    ASSERT_TRUE(rt.freeze_thread(id));
    ASSERT_TRUE(rt.demote_thread(id));
    EXPECT_TRUE(rt.thread_demoted(id));
    ASSERT_TRUE(rt.migrate(id, 1));
    // The slots left this node: the demotion record went with them.
    EXPECT_EQ(rt.demoted_count(), 0u);
    EXPECT_FALSE(rt.slot_store()->has_record(id));
    EXPECT_GE(rt.fault_backs(), 1u);
    pm2_wait_signals(1);
  });
  EXPECT_TRUE(g_ok.load());
}

// --- budget-driven decay: coldest first -------------------------------------

void spin_worker(void* arg) {
  // Stack-only footprint (one slot): a recognizable local pattern survives
  // the store round trip.
  long seed = reinterpret_cast<intptr_t>(arg);
  volatile long pattern[32];
  for (int i = 0; i < 32; ++i) pattern[i] = seed * 1000 + i;
  g_built.fetch_add(1);
  while (g_phase.load() < 1) pm2_yield();
  for (int i = 0; i < 32; ++i) WEXPECT(pattern[i] == seed * 1000 + i);
  g_done.fetch_add(1);
  pm2_signal(0);
}

TEST(SlotStore, OverBudgetEvictionIsColdestFirst) {
  g_phase = 0;
  g_built = 0;
  g_done = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.slot_store_dir = make_store_dir();
  cfg.rt.slot_store_budget = cfg.area.slot_size;  // one resident cold thread
  cfg.rt.slot_store_decay_us = 0;                 // age horizon: immediate
  run_app(cfg, [](Runtime& rt) {
    marcel::ThreadId ids[3];
    for (int i = 0; i < 3; ++i) {
      ids[i] = pm2_thread_create(spin_worker,
                                 reinterpret_cast<void*>(intptr_t{i + 1}),
                                 "spin");
    }
    while (g_built.load() < 3) pm2_yield();
    // Freeze in order 0,1,2 with distinct cold stamps: 0 is coldest.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(rt.freeze_thread(ids[i]));
      pm2_sleep_us(2000);
    }
    rt.store_decay(now_ns());
    // Budget fits exactly one stack slot: the two coldest page out, the
    // youngest stays resident.
    EXPECT_TRUE(rt.thread_demoted(ids[0]));
    EXPECT_TRUE(rt.thread_demoted(ids[1]));
    EXPECT_FALSE(rt.thread_demoted(ids[2]));
    EXPECT_EQ(rt.demoted_count(), 2u);
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(rt.unfreeze_thread(ids[i]));
    EXPECT_EQ(rt.demoted_count(), 0u);
    g_phase = 1;
    pm2_wait_signals(3);
    EXPECT_EQ(g_done.load(), 3);
  });
  EXPECT_TRUE(g_ok.load());
}

// --- capacity beyond the resident budget ------------------------------------

// Acceptance shape: a node hosts 4x more frozen threads than the resident
// budget allows hot — 8 frozen one-slot threads against a 2-slot budget.
constexpr int kThreads = 8;

TEST(SlotStore, HostsFourTimesMoreFrozenThanBudget) {
  g_phase = 0;
  g_built = 0;
  g_done = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.slot_store_dir = make_store_dir();
  cfg.rt.slot_store_budget = 2 * cfg.area.slot_size;
  cfg.rt.slot_store_decay_us = 0;
  run_app(cfg, [](Runtime& rt) {
    marcel::ThreadId ids[kThreads];
    for (int i = 0; i < kThreads; ++i) {
      ids[i] = pm2_thread_create(spin_worker,
                                 reinterpret_cast<void*>(intptr_t{i + 1}),
                                 "spin");
    }
    while (g_built.load() < kThreads) pm2_yield();
    for (int i = 0; i < kThreads; ++i) ASSERT_TRUE(rt.freeze_thread(ids[i]));
    rt.store_decay(now_ns());
    // 8 frozen threads, at most 2 slots resident: >= 6 demoted to the file.
    EXPECT_GE(rt.demoted_count(), static_cast<size_t>(kThreads - 2));
    EXPECT_GE(rt.demoted_bytes(),
              static_cast<size_t>(kThreads - 2) * rt.area().slot_size());
    for (int i = 0; i < kThreads; ++i) ASSERT_TRUE(rt.unfreeze_thread(ids[i]));
    EXPECT_EQ(rt.demoted_count(), 0u);
    EXPECT_GE(rt.fault_backs(), static_cast<uint64_t>(kThreads - 2));
    g_phase = 1;
    pm2_wait_signals(kThreads);
    EXPECT_EQ(g_done.load(), kThreads);
  });
  EXPECT_TRUE(g_ok.load());
}

// --- recovery validation: refuse foreign or torn store files ----------------

TEST(SlotStore, RecoveryRefusesGarbageFile) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string path = make_store_dir() + "/bad.store";
  {
    std::ofstream f(path, std::ios::binary);
    for (int i = 0; i < 8192; ++i) f.put(static_cast<char>(i * 37));
  }
  iso::AreaConfig ac;
  ac.base = iso::offset_area_base(8);
  ac.size = 64ull << 20;
  iso::Area area(ac);
  iso::SlotStoreConfig sc;
  sc.path = path;
  sc.recover = true;
  EXPECT_DEATH({ iso::SlotStore store(area, sc, binary_stamp(), 0, 1); },
               "not a PM2 slot store");
}

TEST(SlotStore, RecoveryRefusesForeignBinaryStamp) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string path = make_store_dir() + "/stamp.store";
  iso::AreaConfig ac;
  ac.base = iso::offset_area_base(9);
  ac.size = 64ull << 20;
  iso::Area area(ac);
  {
    iso::SlotStoreConfig sc;
    sc.path = path;
    iso::SlotStore store(area, sc, binary_stamp(), 0, 1);
  }
  iso::SlotStoreConfig sc;
  sc.path = path;
  sc.recover = true;
  EXPECT_DEATH({ iso::SlotStore store(area, sc, binary_stamp() ^ 1, 0, 1); },
               "different binary");
}

TEST(SlotStore, RecoveryRefusesGeometryMismatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string path = make_store_dir() + "/geom.store";
  iso::AreaConfig ac;
  ac.base = iso::offset_area_base(10);
  ac.size = 64ull << 20;
  iso::Area area(ac);
  {
    iso::SlotStoreConfig sc;
    sc.path = path;
    iso::SlotStore store(area, sc, binary_stamp(), 0, 1);
  }
  iso::AreaConfig ac2 = ac;
  ac2.base = iso::offset_area_base(11);  // different area base, same file
  iso::Area area2(ac2);
  iso::SlotStoreConfig sc;
  sc.path = path;
  sc.recover = true;
  EXPECT_DEATH({ iso::SlotStore store(area2, sc, binary_stamp(), 0, 1); },
               "geometry mismatch");
}

TEST(SlotStore, RecoveryRefusesSessionShapeMismatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string path = make_store_dir() + "/shape.store";
  iso::AreaConfig ac;
  ac.base = iso::offset_area_base(12);
  ac.size = 64ull << 20;
  iso::Area area(ac);
  {
    iso::SlotStoreConfig sc;
    sc.path = path;
    iso::SlotStore store(area, sc, binary_stamp(), /*node=*/0, /*n_nodes=*/2);
  }
  iso::SlotStoreConfig sc;
  sc.path = path;
  sc.recover = true;
  EXPECT_DEATH(
      { iso::SlotStore store(area, sc, binary_stamp(), /*node=*/1,
                             /*n_nodes=*/2); },
      "different node/session shape");
}

// --- ASan poison round trip through the store -------------------------------

// A parked invocation-pool stack is poisoned.  Demoting it unpoisons (the
// bytes must be readable for the file write and the pages vanish anyway);
// faulting it back must re-poison, so a stray write into the recycled
// stack is still caught.
void parked_demote_roundtrip() {
  iso::AreaConfig ac;
  ac.base = iso::offset_area_base(13);
  ac.size = 64ull << 20;
  iso::Area area(ac);
  auto hub = std::make_shared<fabric::InProcHub>(1);
  RuntimeConfig rc;
  rc.node = 0;
  rc.n_nodes = 1;
  rc.slot_store_dir = make_store_dir();
  rc.slot_store_budget = 0;     // every cold byte pages out
  rc.slot_store_decay_us = 0;   // immediately
  Runtime rt(rc, area, hub->endpoint(0));
  rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
  rt.run([] {
    Runtime& self = *Runtime::current();
    PM2_CHECK(self.call<int>(0, "inc", 1) == 2);
    PM2_CHECK(self.pool_size() > 0);
    marcel::Thread* parked = nullptr;
    self.for_each_parked([&](marcel::Thread* t) { parked = t; });
    PM2_CHECK(parked != nullptr);
    self.store_decay(now_ns());
    PM2_CHECK(self.demoted_count() >= 1);
    self.ensure_resident(parked);
    PM2_CHECK(self.demoted_count() == 0);
    // Faulted back AND re-poisoned: this write must die under ASan.
    auto* into = static_cast<volatile char*>(parked->stack_base) + 2048;
    *into = 42;
    self.halt();
  });
}

TEST(SlotStore, AsanParkedStackRepoisonedAfterFaultBack) {
  if constexpr (sys::kAsan) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(parked_demote_roundtrip(), "use-after-poison");
  } else {
    parked_demote_roundtrip();
  }
}

// --- audit covers demoted runs ----------------------------------------------

TEST(SlotStore, AuditCoversDemotedRuns) {
  g_phase = 0;
  g_done = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.slot_store_dir = make_store_dir();
  run_app(cfg, [](Runtime& rt) {
    if (rt.self() != 0) return;
    marcel::ThreadId id = pm2_thread_create(tier_worker, nullptr, "tier");
    while (g_phase.load() < 1) pm2_yield();
    ASSERT_TRUE(rt.freeze_thread(id));
    ASSERT_TRUE(rt.demote_thread(id));
    AuditReport report = audit_session(rt);
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_EQ(report.threads_demoted, 1u);
    // Stack run plus at least one heap run.
    EXPECT_GE(report.demoted_slots, 2u);
    ASSERT_TRUE(rt.unfreeze_thread(id));
    AuditReport after = audit_session(rt);
    EXPECT_TRUE(after.ok) << after.summary();
    EXPECT_EQ(after.threads_demoted, 0u);
    g_phase = 2;
    pm2_wait_signals(1);
  });
  EXPECT_TRUE(g_ok.load());
}

// --- incremental node checkpoints -------------------------------------------

void dirty_worker(void*) {
  constexpr size_t kBytes = 64 * 1024;
  auto* data = static_cast<unsigned char*>(pm2_isomalloc(kBytes));
  std::memset(data, 0xab, kBytes);
  g_phase = 1;
  while (g_phase.load() < 2) pm2_yield();
  // Dirty ~10% of the pages between the two checkpoints.
  for (size_t p = 0; p < kBytes / 4096; p += 8) data[p * 4096] = 0xcd;
  g_phase = 3;
  while (g_phase.load() < 4) pm2_yield();
  for (size_t i = 0; i < kBytes; ++i) {
    unsigned char want = (i % 4096 == 0 && (i / 4096) % 8 == 0) ? 0xcd : 0xab;
    WEXPECT(data[i] == want);
  }
  pm2_isofree(data);
  pm2_signal(0);
}

TEST(SlotStore, IncrementalCheckpointWritesLessThanFull) {
  g_phase = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.slot_store_dir = make_store_dir();
  run_app(cfg, [](Runtime& rt) {
    pm2_thread_create(dirty_worker, nullptr, "dirty");
    while (g_phase.load() < 1) pm2_yield();
    StoreCheckpointStats full = checkpoint_node_to_store(rt);
    EXPECT_EQ(full.threads, 1u);
    EXPECT_FALSE(full.incremental);  // first round: nothing armed yet
    EXPECT_GT(full.bytes_written, 0u);
    g_phase = 2;
    while (g_phase.load() < 3) pm2_yield();
    StoreCheckpointStats incr = checkpoint_node_to_store(rt);
    EXPECT_EQ(incr.threads, 1u);
    if (sys::soft_dirty_supported()) {
      EXPECT_TRUE(incr.incremental);
      EXPECT_LT(incr.bytes_written, full.bytes_written);
      EXPECT_GT(incr.bytes_skipped, 0u);
    }
    g_phase = 4;
    pm2_wait_signals(1);
  });
  EXPECT_TRUE(g_ok.load());
}

// --- multi-node in-process sessions stay on full images ---------------------

std::atomic<int> g_node_built[2];

void shared_as_worker(void*) {
  auto* data = static_cast<unsigned char*>(pm2_isomalloc(16 * 1024));
  std::memset(data, 0x77, 16 * 1024);
  g_node_built[pm2_self()] = 1;
  while (g_phase.load() < 1) pm2_yield();
  pm2_isofree(data);
  pm2_signal(pm2_self());
}

// clear_refs resets soft-dirty bits for the *whole process*, so a second
// in-process Runtime's baseline reset would silently wipe the dirty bits
// this node's next delta depends on (and vice versa).  Shared address
// space => every checkpoint round must stay a full image.
TEST(SlotStore, InprocMultiNodeCheckpointsStayFull) {
  g_phase = 0;
  g_node_built[0] = 0;
  g_node_built[1] = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.slot_store_dir = make_store_dir();
  run_app(cfg, [](Runtime& rt) {
    rt.barrier();  // both Runtimes constructed before the counter is read
    EXPECT_EQ(Runtime::live_in_process(), 2u);
    pm2_thread_create(shared_as_worker, nullptr, "shared");
    while (g_node_built[rt.self()].load() == 0) pm2_yield();
    StoreCheckpointStats first = checkpoint_node_to_store(rt);
    EXPECT_EQ(first.threads, 1u);
    EXPECT_FALSE(first.incremental);
    EXPECT_GT(first.bytes_written, 0u);
    StoreCheckpointStats second = checkpoint_node_to_store(rt);
    // A one-Runtime process would go incremental here (the first round
    // arms the soft-dirty baseline); sharing the address space forbids it.
    EXPECT_FALSE(second.incremental);
    EXPECT_GT(second.bytes_written, 0u);
    rt.barrier();  // both nodes checkpoint before either releases its worker
    g_phase = 1;
    pm2_wait_signals(1);
  });
  EXPECT_TRUE(g_ok.load());
}

// A demoted thread is already fully persisted: the node checkpoint counts
// it without touching its (PROT_NONE) image.
TEST(SlotStore, NodeCheckpointSkipsDemotedThreads) {
  g_phase = 0;
  g_done = 0;
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.slot_store_dir = make_store_dir();
  run_app(cfg, [](Runtime& rt) {
    marcel::ThreadId id = pm2_thread_create(tier_worker, nullptr, "tier");
    while (g_phase.load() < 1) pm2_yield();
    ASSERT_TRUE(rt.freeze_thread(id));
    ASSERT_TRUE(rt.demote_thread(id));
    StoreCheckpointStats stats = checkpoint_node_to_store(rt);
    EXPECT_EQ(stats.threads, 1u);
    EXPECT_EQ(stats.bytes_written, 0u);   // image already in the file
    EXPECT_GT(stats.bytes_skipped, 0u);
    ASSERT_TRUE(rt.unfreeze_thread(id));
    g_phase = 2;
    pm2_wait_signals(1);
  });
  EXPECT_TRUE(g_ok.load());
}

}  // namespace
}  // namespace pm2
