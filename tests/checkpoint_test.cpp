// Checkpoint/restore ("migration in time") tests.
#include "pm2/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<int> g_progress{0};
std::atomic<int> g_sum{0};
std::atomic<bool> g_ok{true};

AppConfig single_node() {
  AppConfig cfg;
  cfg.nodes = 1;
  return cfg;
}

// Worker that builds iso-state, parks READY (yield loop) at a known point,
// and validates its state when resumed.
void counting_worker(void*) {
  auto* data = static_cast<int*>(pm2_isomalloc(256 * sizeof(int)));
  for (int i = 0; i < 256; ++i) data[i] = i * 3;
  int local = 777;
  int* p = &local;
  g_progress = 1;
  // Park until the controller advances the phase.
  while (g_progress.load() < 2) pm2_yield();
  // Validate everything after the restore.
  if (*p != 777) g_ok = false;
  for (int i = 0; i < 256; ++i)
    if (data[i] != i * 3) g_ok = false;
  g_sum += *p;
  pm2_isofree(data);
  pm2_signal(0);
}

TEST(Checkpoint, RestoreAfterDeathResumesExactly) {
  g_progress = 0;
  g_sum = 0;
  g_ok = true;
  run_app(single_node(), [&](Runtime& rt) {
    auto id = pm2_thread_create(&counting_worker, nullptr, "ck");
    while (g_progress.load() < 1) pm2_yield();
    // Freeze the moment: the worker sits in its yield loop.
    std::vector<uint8_t> image = checkpoint_thread(rt, id);
    EXPECT_GT(image.size(), sizeof(CheckpointHeader));

    // Let the original finish and die (its slots return to the node).
    g_progress = 2;
    pm2_wait_signals(1);
    EXPECT_EQ(g_sum.load(), 777);

    // Resurrect: the clone resumes inside the yield loop, re-validates the
    // same stack local and iso-heap, finishes again.
    auto id2 = restore_thread(rt, image);
    EXPECT_EQ(id2, id);  // identity travels with the descriptor
    pm2_wait_signals(1);
    EXPECT_EQ(g_sum.load(), 2 * 777);
  });
  EXPECT_TRUE(g_ok.load());
}

void self_ck_worker(void* out_ptr) {
  auto* image = static_cast<std::vector<uint8_t>*>(out_ptr);
  int x = 5;
  bool restored = checkpoint_self(*Runtime::current(), *image);
  // Original: restored == false; clone: true.  Both see x == 5.
  if (x != 5) g_ok = false;
  if (restored) {
    g_sum += 100;
  } else {
    g_sum += 1;
  }
  pm2_signal(0);
}

TEST(Checkpoint, SelfCheckpointSetjmpContract) {
  g_sum = 0;
  g_ok = true;
  // The image vector must live outside the checkpointed thread's stack.
  static std::vector<uint8_t> image;
  image.clear();
  run_app(single_node(), [&](Runtime& rt) {
    pm2_thread_create(&self_ck_worker, &image, "selfck");
    pm2_wait_signals(1);
    EXPECT_EQ(g_sum.load(), 1);  // original path
    ASSERT_FALSE(image.empty());
    restore_thread(rt, image);
    pm2_wait_signals(1);
    EXPECT_EQ(g_sum.load(), 101);  // clone took the restored branch
  });
  EXPECT_TRUE(g_ok.load());
}

TEST(Checkpoint, SaveLoadFileRoundTrip) {
  g_progress = 0;
  g_sum = 0;
  g_ok = true;
  const char* path = "/tmp/pm2_ckpt_test.bin";
  run_app(single_node(), [&](Runtime& rt) {
    auto id = pm2_thread_create(&counting_worker, nullptr, "ckfile");
    while (g_progress.load() < 1) pm2_yield();
    save_checkpoint(path, checkpoint_thread(rt, id));
    g_progress = 2;
    pm2_wait_signals(1);

    auto image = load_checkpoint(path);
    restore_thread(rt, image);
    pm2_wait_signals(1);
    EXPECT_EQ(g_sum.load(), 2 * 777);
  });
  EXPECT_TRUE(g_ok.load());
  std::remove(path);
}

TEST(Checkpoint, RestoredFlagVisible) {
  g_progress = 0;
  g_sum = 0;
  run_app(single_node(), [&](Runtime& rt) {
    auto id = pm2_thread_create(&counting_worker, nullptr, "flag");
    while (g_progress.load() < 1) pm2_yield();
    auto image = checkpoint_thread(rt, id);
    g_progress = 2;
    pm2_wait_signals(1);

    auto id2 = restore_thread(rt, image);
    marcel::Thread* t = rt.sched().find(id2);
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->flags & marcel::Thread::kFlagRestored);
    pm2_wait_signals(1);
  });
}

TEST(CheckpointDeath, RestoreWhileOriginalAliveRefuses) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        g_progress = 0;
        run_app(single_node(), [&](Runtime& rt) {
          auto id = pm2_thread_create(&counting_worker, nullptr, "alive");
          while (g_progress.load() < 1) pm2_yield();
          auto image = checkpoint_thread(rt, id);
          // Original still parked: its slots are thread-owned, so the
          // restore cannot claim them.
          restore_thread(rt, image);
        });
      },
      "not free on this node|duplicate thread id");
}

TEST(CheckpointDeath, CorruptImageRefused) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        run_app(single_node(), [&](Runtime& rt) {
          std::vector<uint8_t> junk(128, 0xAB);
          restore_thread(rt, junk);
        });
      },
      "not a PM2 checkpoint");
}

TEST(Checkpoint, GeometryMismatchRefused) {
  // Tamper with the header: wrong slot size must be rejected (in a child,
  // via death test).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        g_progress = 0;
        run_app(single_node(), [&](Runtime& rt) {
          auto id = pm2_thread_create(&counting_worker, nullptr, "geom");
          while (g_progress.load() < 1) pm2_yield();
          auto image = checkpoint_thread(rt, id);
          auto* h = reinterpret_cast<CheckpointHeader*>(image.data());
          h->slot_size *= 2;
          g_progress = 2;
          pm2_wait_signals(1);
          restore_thread(rt, image);
        });
      },
      "geometry mismatch");
}

}  // namespace
}  // namespace pm2
