// sys::StripedMap tests: the locked surface, the grow-only lock-free read
// path, and the compound lock_for/*_locked critical-section surface the
// scheduler's exit/join protocol is built on.
#include "sys/striped_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace pm2::sys {
namespace {

TEST(StripedMap, EmplaceFindErase) {
  StripedMap<uint32_t, std::string, 8> m(LockRank::kRuntimeMaps);
  EXPECT_EQ(m.size(), 0u);
  auto [v, inserted] = m.try_emplace(7, "seven");
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*v, "seven");
  EXPECT_EQ(m.size(), 1u);

  std::string* hit = m.find(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit, v);  // stable address contract
  EXPECT_EQ(m.find(8), nullptr);

  std::string copy;
  EXPECT_TRUE(m.find_copy(7, &copy));
  EXPECT_EQ(copy, "seven");
  EXPECT_FALSE(m.find_copy(8, &copy));

  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_EQ(m.size(), 0u);
}

TEST(StripedMap, DuplicateKeyReturnsExisting) {
  StripedMap<uint32_t, std::string, 8> m(LockRank::kRuntimeMaps);
  auto [first, ok1] = m.try_emplace(3, "first");
  ASSERT_TRUE(ok1);
  auto [second, ok2] = m.try_emplace(3, "second");
  EXPECT_FALSE(ok2);
  EXPECT_EQ(second, first);     // points at the incumbent
  EXPECT_EQ(*second, "first");  // value untouched
  EXPECT_EQ(m.size(), 1u);
}

TEST(StripedMap, FindFastSeesAllEntries) {
  StripedMap<uint32_t, int, 8> m(LockRank::kRuntimeMaps);
  for (uint32_t k = 0; k < 100; ++k) m.try_emplace(k, static_cast<int>(k * 10));
  for (uint32_t k = 0; k < 100; ++k) {
    int* v = m.find_fast(k);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, static_cast<int>(k * 10));
  }
  EXPECT_EQ(m.find_fast(1000), nullptr);
}

TEST(StripedMap, ForEachValueVisitsEverything) {
  StripedMap<uint32_t, uint32_t, 8> m(LockRank::kRuntimeMaps);
  for (uint32_t k = 1; k <= 50; ++k) m.try_emplace(k, k);
  uint64_t sum = 0;
  uint32_t visits = 0;
  m.for_each_value([&](uint32_t v) {
    sum += v;
    ++visits;
    // Callback runs outside the stripe locks: re-entering the map is legal.
    EXPECT_NE(m.find(v), nullptr);
  });
  EXPECT_EQ(visits, 50u);
  EXPECT_EQ(sum, 50u * 51u / 2u);
}

TEST(StripedMap, CompoundLockedOps) {
  // The scheduler's exit path: mutate the value and erase the key in one
  // stripe critical section.
  StripedMap<uint32_t, int, 8> m(LockRank::kRuntimeMaps);
  m.try_emplace(42, 1);
  {
    SpinGuard g(m.lock_for(42));
    int* v = m.find_locked(42);
    ASSERT_NE(v, nullptr);
    *v = 2;
    EXPECT_TRUE(m.erase_locked(42));
    EXPECT_EQ(m.find_locked(42), nullptr);
  }
  EXPECT_EQ(m.find(42), nullptr);
  {
    SpinGuard g(m.lock_for(42));
    EXPECT_FALSE(m.erase_locked(42));
  }
}

// Grow-only concurrency: writers insert disjoint key ranges while readers
// run find_fast with no lock.  Every value a reader observes must be fully
// constructed (the release/acquire pair on the chain head), and at the end
// every key is present exactly once.
TEST(StripedMap, ConcurrentInsertAndLockFreeRead) {
  constexpr int kWriters = 4;
  constexpr uint32_t kPerWriter = 2000;
  struct Fat {
    explicit Fat(uint64_t s) : a(s), b(s ^ 0xfeedfaceULL), c(s * 3) {}
    uint64_t a, b, c;  // torn construction would break a==seed etc.
  };
  StripedMap<uint32_t, Fat, 16> m(LockRank::kRuntimeMaps);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint32_t k = 0; k < kWriters * kPerWriter; ++k) {
          Fat* v = m.find_fast(k);
          if (v == nullptr) continue;
          uint64_t seed = k + 1;
          // A half-published node would fail these.
          if (v->a != seed || v->b != (seed ^ 0xfeedfaceULL) ||
              v->c != seed * 3) {
            ADD_FAILURE() << "torn value at key " << k;
            return;
          }
          observed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint32_t i = 0; i < kPerWriter; ++i) {
        uint32_t k = static_cast<uint32_t>(w) * kPerWriter + i;
        auto [_, inserted] = m.try_emplace(k, static_cast<uint64_t>(k) + 1);
        EXPECT_TRUE(inserted);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(m.size(), static_cast<size_t>(kWriters) * kPerWriter);
  for (uint32_t k = 0; k < kWriters * kPerWriter; ++k)
    ASSERT_NE(m.find_fast(k), nullptr) << "key " << k;
  EXPECT_GT(observed.load(), 0u);
}

// Churny concurrency through the locked surface: threads insert and erase
// their own key ranges repeatedly; counts must balance.
TEST(StripedMap, ConcurrentChurnLockedPath) {
  constexpr int kThreads = 4;
  constexpr uint32_t kKeys = 64;
  constexpr int kRounds = 500;
  StripedMap<uint32_t, uint32_t, 8> m(LockRank::kRuntimeMaps);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint32_t base = static_cast<uint32_t>(t) * kKeys;
      for (int r = 0; r < kRounds; ++r) {
        for (uint32_t i = 0; i < kKeys; ++i) {
          auto [v, inserted] = m.try_emplace(base + i, i);
          EXPECT_TRUE(inserted);
          EXPECT_EQ(*v, i);
        }
        for (uint32_t i = 0; i < kKeys; ++i) {
          // find_copy is the erase-safe lookup on a churny map: the value
          // is copied out under the stripe lock.
          uint32_t v = 0;
          ASSERT_TRUE(m.find_copy(base + i, &v));
          EXPECT_EQ(v, i);
          EXPECT_TRUE(m.erase(base + i));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace pm2::sys
