// Defragmentation (paper §4.1) and pre-buy (§4.4) extension tests.
#include <gtest/gtest.h>

#include <atomic>

#include "isomalloc/negotiation.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

// --- pure plan_defragmentation ----------------------------------------------

TEST(DefragPlan, PacksScatteredOwnershipContiguously) {
  // Round-robin over 2 nodes: maximally fragmented.
  std::vector<Bitmap> maps;
  maps.emplace_back(64);
  maps.emplace_back(64);
  for (size_t i = 0; i < 64; ++i) maps[i % 2].set(i);

  auto packed = iso::plan_defragmentation(maps);
  ASSERT_EQ(packed.size(), 2u);
  EXPECT_EQ(packed[0].count(), 32u);
  EXPECT_EQ(packed[1].count(), 32u);
  EXPECT_TRUE(iso::is_partition(packed));
  // Both nodes now own one maximal run.
  EXPECT_EQ(packed[0].find_run(32).value(), 0u);
  EXPECT_EQ(packed[1].find_run(32).value(), 32u);
}

TEST(DefragPlan, ThreadOwnedHolesStayPut) {
  std::vector<Bitmap> maps;
  maps.emplace_back(16);
  maps.emplace_back(16);
  // Slots 4..7 thread-owned (absent everywhere); rest alternates.
  for (size_t i = 0; i < 16; ++i) {
    if (i >= 4 && i < 8) continue;
    maps[i % 2].set(i);
  }
  auto packed = iso::plan_defragmentation(maps);
  // The hole must remain unowned.
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_FALSE(packed[0].test(i));
    EXPECT_FALSE(packed[1].test(i));
  }
  EXPECT_EQ(packed[0].count() + packed[1].count(), 12u);
  EXPECT_TRUE(iso::is_disjoint(packed));
}

TEST(DefragPlan, CountsPreservedPerNode) {
  std::vector<Bitmap> maps;
  for (int n = 0; n < 3; ++n) maps.emplace_back(128);
  // Unequal holdings.
  maps[0].set_range(0, 10);
  maps[1].set_range(40, 30);
  maps[2].set_range(100, 5);
  auto packed = iso::plan_defragmentation(maps);
  EXPECT_EQ(packed[0].count(), 10u);
  EXPECT_EQ(packed[1].count(), 30u);
  EXPECT_EQ(packed[2].count(), 5u);
  EXPECT_TRUE(iso::is_disjoint(packed));
}

// --- runtime defragment() ------------------------------------------------------

TEST(DefragRuntime, EnablesLocalMultiSlotAllocs) {
  std::atomic<uint64_t> nego_before{0}, nego_after{0};
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      // Under round-robin, no node owns 2 contiguous slots: this alloc
      // must negotiate.
      void* a = rt.isomalloc(100 * 1024);
      rt.isofree(a);
      nego_before = rt.negotiations_initiated();

      // After defragmentation every node's holdings are contiguous, so the
      // same allocations are satisfied locally.
      rt.defragment();
      for (int i = 0; i < 5; ++i) {
        void* p = rt.isomalloc(100 * 1024);
        rt.isofree(p);
      }
      nego_after = rt.negotiations_initiated();
    }
    rt.barrier();
  });
  EXPECT_EQ(nego_before.load(), 1u);
  EXPECT_EQ(nego_after.load(), nego_before.load());  // zero new negotiations
}

TEST(DefragRuntime, SingleNodeIsNoop) {
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime& rt) {
    rt.defragment();
    void* p = rt.isomalloc(1024);
    rt.isofree(p);
  });
}

TEST(DefragRuntime, SafeUnderConcurrentTraffic) {
  std::atomic<bool> stop{false};
  AppConfig cfg;
  cfg.nodes = 3;
  cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
  // The churn loop never yields explicitly: the deferred-preemption quantum
  // must deschedule it at the isomalloc safe points, or the comm daemon
  // would starve and gather requests would never be answered.
  cfg.rt.preemption_quantum_us = 100;
  run_app(cfg, [&](Runtime& rt) {
    // Every node churns allocations while node 1 defragments repeatedly.
    auto worker = rt.spawn_local([&] {
      while (!stop.load()) {
        void* p = pm2_isomalloc(100 * 1024);
        pm2_isofree(p);
      }
    });
    if (rt.self() == 1) {
      for (int i = 0; i < 10; ++i) rt.defragment();
    }
    rt.barrier();
    stop = true;
    rt.join(worker);
  });
}

// --- pre-buy -----------------------------------------------------------------

TEST(Prebuy, ReducesSubsequentNegotiations) {
  std::atomic<uint64_t> with{0}, without{0};
  for (bool prebuy : {false, true}) {
    AppConfig cfg;
    cfg.nodes = 2;
    cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
    cfg.rt.nego_prebuy_slots = prebuy ? 32 : 0;
    run_app(cfg, [&](Runtime& rt) {
      if (rt.self() == 0) {
        // 10 multi-slot allocations, kept alive (so each needs new slots).
        std::vector<void*> hold;
        for (int i = 0; i < 10; ++i) hold.push_back(rt.isomalloc(100 * 1024));
        for (void* p : hold) rt.isofree(p);
        (prebuy ? with : without) = rt.negotiations_initiated();
      }
      rt.barrier();
    });
  }
  EXPECT_EQ(without.load(), 10u);  // one negotiation per allocation
  EXPECT_LE(with.load(), 2u);      // the pre-bought stretch covers the rest
}

}  // namespace
}  // namespace pm2
