// Virtual-memory reservation semantics: the substitution DESIGN.md documents
// (PROT_NONE reservation + mprotect commit) must behave like per-slot mmap.
#include "sys/vm.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "isomalloc/area.hpp"

namespace pm2::sys {
namespace {

// A test base away from the default iso-area base so tests never collide
// with runtime tests in the same process.  Derived from the default (k=14,
// above every other hand-built test area) so it lands inside sanitizer
// application address ranges: ASan parks its allocator near
// 0x6400'0000'0000, and TSan only shadows select app zones.
const uintptr_t kTestBase = iso::offset_area_base(14);

TEST(Vm, ReserveAndRelease) {
  {
    VmReservation r(kTestBase, 1 << 20);
    EXPECT_TRUE(r.valid());
    EXPECT_EQ(r.base(), kTestBase);
  }
  // Released: the same range must be reservable again.
  VmReservation r2(kTestBase, 1 << 20);
  EXPECT_TRUE(r2.valid());
}

TEST(Vm, DoubleReservationFails) {
  VmReservation r(kTestBase, 1 << 20);
  EXPECT_THROW(VmReservation(kTestBase, 1 << 20), std::runtime_error);
}

TEST(Vm, ReservedIsNotReadable) {
  VmReservation r(kTestBase, 1 << 20);
  EXPECT_FALSE(probe_readable(kTestBase, 1));
}

TEST(Vm, CommitMakesWritable) {
  VmReservation r(kTestBase, 1 << 20);
  size_t ps = page_size();
  r.commit(kTestBase, ps);
  EXPECT_TRUE(probe_readable(kTestBase, ps));
  auto* p = reinterpret_cast<char*>(kTestBase);
  std::memset(p, 0xAB, ps);
  EXPECT_EQ(p[0], static_cast<char>(0xAB));
  EXPECT_FALSE(probe_readable(kTestBase + ps, 1));  // next page untouched
}

TEST(Vm, DecommitRemovesAccessAndZeroes) {
  VmReservation r(kTestBase, 1 << 20);
  size_t ps = page_size();
  r.commit(kTestBase, ps);
  auto* p = reinterpret_cast<char*>(kTestBase);
  p[0] = 42;
  r.decommit(kTestBase, ps);
  EXPECT_FALSE(probe_readable(kTestBase, 1));
  // Re-commit must observe zeroed memory (fresh pages for migration).
  r.commit(kTestBase, ps);
  EXPECT_EQ(p[0], 0);
}

TEST(Vm, CommitInMiddleOfReservation) {
  VmReservation r(kTestBase, 1 << 20);
  size_t ps = page_size();
  uintptr_t mid = kTestBase + 16 * ps;
  r.commit(mid, 4 * ps);
  EXPECT_TRUE(probe_readable(mid, 4 * ps));
  EXPECT_FALSE(probe_readable(kTestBase, 1));
  EXPECT_FALSE(probe_readable(mid + 4 * ps, 1));
}

TEST(Vm, MoveTransfersOwnership) {
  VmReservation a(kTestBase, 1 << 20);
  VmReservation b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.commit(kTestBase, page_size());
  EXPECT_TRUE(probe_readable(kTestBase, 1));
}

TEST(VmDeath, CommitOutsideReservationAborts) {
  VmReservation r(kTestBase, 1 << 20);
  EXPECT_DEATH(r.commit(kTestBase + (1 << 20), page_size()),
               "outside reservation");
}

}  // namespace
}  // namespace pm2::sys
