// Scheduler and sync edge cases beyond the basic lifecycle tests.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <functional>
#include <vector>

#include "marcel/scheduler.hpp"
#include "marcel/sync.hpp"

namespace pm2::marcel {
namespace {

constexpr size_t kRegion = 64 * 1024;

class EdgeFixture : public ::testing::Test {
 protected:
  ThreadId spawn(std::function<void()> body) {
    bodies_.push_back(std::move(body));
    void* region = std::aligned_alloc(64, kRegion);
    regions_.push_back(region);
    ThreadId id = next_id_++;
    sched_.create(region, kRegion, &EdgeFixture::entry, &bodies_.back(), id,
                  "t");
    return id;
  }
  void run_all() {
    sched_.stop();
    sched_.run();
  }
  ~EdgeFixture() override {
    for (void* r : regions_) std::free(r);
  }
  static void entry(void* arg) {
    (*static_cast<std::function<void()>*>(arg))();
    Scheduler::current_scheduler()->exit_current([](Thread*) {});
  }

  Scheduler sched_;
  std::vector<void*> regions_;
  std::deque<std::function<void()>> bodies_;
  ThreadId next_id_ = 1;
};

TEST_F(EdgeFixture, JoinAfterExitReturnsFalse) {
  ThreadId fast = spawn([] {});
  bool join_result = true;
  spawn([&] {
    // Let the fast thread finish first.
    Scheduler::current_scheduler()->yield();
    join_result = Scheduler::current_scheduler()->join(fast);
  });
  run_all();
  EXPECT_FALSE(join_result);  // already gone: no wait happened
}

TEST_F(EdgeFixture, UnfreezeRequeuesAtTail) {
  std::vector<int> order;
  ThreadId victim_id = 0;  // filled before run_all(); read at body runtime
  spawn([&] {
    Scheduler* s = Scheduler::current_scheduler();
    Thread* t = s->find(victim_id);
    ASSERT_TRUE(s->freeze(t));
    order.push_back(0);
    s->unfreeze(t);
  });
  victim_id = spawn([&] { order.push_back(1); });
  run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST_F(EdgeFixture, MutexWaitersServedFifo) {
  Mutex mu;
  std::vector<int> order;
  spawn([&] {
    mu.lock();
    for (int i = 0; i < 3; ++i) Scheduler::current_scheduler()->yield();
    mu.unlock();
  });
  for (int i = 1; i <= 3; ++i) {
    spawn([&, i] {
      mu.lock();
      order.push_back(i);
      mu.unlock();
    });
  }
  run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(EdgeFixture, CondVarWithoutWaitersIsNoop) {
  CondVar cv;
  spawn([&] {
    cv.signal();     // nobody parked
    cv.broadcast();  // still nobody
  });
  run_all();
}

TEST_F(EdgeFixture, SemaphoreNegativePressure) {
  Semaphore sem(0);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([&] {
      sem.acquire();
      ++completed;
    });
  }
  spawn([&] {
    EXPECT_EQ(completed, 0);  // all parked
    sem.release();
    sem.release();
    sem.release();
  });
  run_all();
  EXPECT_EQ(completed, 3);
}

TEST_F(EdgeFixture, EventSetTwiceIsIdempotent) {
  Event ev;
  int woke = 0;
  spawn([&] {
    ev.wait();
    ++woke;
  });
  spawn([&] {
    ev.set();
    ev.set();
  });
  spawn([&] {
    ev.wait();  // already set: immediate
    ++woke;
  });
  run_all();
  EXPECT_EQ(woke, 2);
}

TEST_F(EdgeFixture, ContextSwitchCountMonotone) {
  uint64_t before = sched_.context_switches();
  spawn([&] {
    for (int i = 0; i < 5; ++i) Scheduler::current_scheduler()->yield();
  });
  run_all();
  EXPECT_GE(sched_.context_switches(), before + 6);
}

TEST_F(EdgeFixture, NamesAreTruncatedSafely) {
  void* region = std::aligned_alloc(64, kRegion);
  regions_.push_back(region);
  auto body = [](void*) {
    Scheduler::current_scheduler()->exit_current([](Thread*) {});
  };
  Thread* t = sched_.create(
      region, kRegion, body, nullptr, 777,
      "a-very-long-thread-name-that-exceeds-the-descriptor-field");
  EXPECT_EQ(t->name[Thread::kNameLen - 1], '\0');
  run_all();
}

TEST_F(EdgeFixture, ThreadStateStrings) {
  EXPECT_STREQ(to_string(ThreadState::kReady), "ready");
  EXPECT_STREQ(to_string(ThreadState::kRunning), "running");
  EXPECT_STREQ(to_string(ThreadState::kBlocked), "blocked");
  EXPECT_STREQ(to_string(ThreadState::kFrozen), "frozen");
  EXPECT_STREQ(to_string(ThreadState::kDead), "dead");
}

TEST_F(EdgeFixture, TenThousandThreads) {
  // "each such process may contain tens of thousands of threads" (§2) —
  // scaled to a quick test: create/run/destroy 10k threads in waves that
  // reuse a bounded region pool.
  constexpr int kWave = 500;
  constexpr int kWaves = 20;
  std::vector<void*> pool;
  for (int i = 0; i < kWave; ++i) pool.push_back(std::aligned_alloc(64, kRegion));
  int total = 0;
  auto body = [](void* arg) {
    ++*static_cast<int*>(arg);
    Scheduler::current_scheduler()->exit_current([](Thread*) {});
  };
  ThreadId id = 1;
  for (int wave = 0; wave < kWaves; ++wave) {
    Scheduler fresh;
    for (int i = 0; i < kWave; ++i)
      fresh.create(pool[i], kRegion, body, &total, id++, "w");
    fresh.stop();
    fresh.run();
  }
  for (void* r : pool) std::free(r);
  EXPECT_EQ(total, kWave * kWaves);
}

}  // namespace
}  // namespace pm2::marcel
