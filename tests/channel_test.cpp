// Madeleine channels: mux unit tests over the in-process fabric, plus
// integration with the runtime's comm daemon.
#include "madeleine/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "fabric/inproc.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2::mad {
namespace {

// --- mux-level tests (no runtime) --------------------------------------------

struct MuxPair {
  std::shared_ptr<fabric::InProcHub> hub;
  std::unique_ptr<fabric::Fabric> f0, f1;
  std::unique_ptr<ChannelMux> m0, m1;

  MuxPair() {
    hub = std::make_shared<fabric::InProcHub>(2);
    f0 = hub->endpoint(0);
    f1 = hub->endpoint(1);
    m0 = std::make_unique<ChannelMux>(*f0, 100);
    m1 = std::make_unique<ChannelMux>(*f1, 100);
  }

  /// Drain node 1's fabric into its mux.
  void pump1() {
    while (auto msg = f1->try_recv()) m1->feed(std::move(*msg));
  }
};

TEST(ChannelMux, OpenAssignsDenseIds) {
  MuxPair mp;
  Channel& a = mp.m0->open("alpha");
  Channel& b = mp.m0->open("beta");
  EXPECT_EQ(a.id(), 0);
  EXPECT_EQ(b.id(), 1);
  EXPECT_EQ(mp.m0->find("alpha"), &a);
  EXPECT_EQ(mp.m0->find("gamma"), nullptr);
  EXPECT_EQ(mp.m0->channel_count(), 2u);
}

TEST(ChannelMux, SendReceivePolling) {
  MuxPair mp;
  Channel& tx = mp.m0->open("data");
  Channel& rx = mp.m1->open("data");

  PackBuffer pb;
  pb.pack<uint32_t>(77);
  pb.pack_string("hello");
  tx.send(1, std::move(pb));
  mp.pump1();

  auto got = rx.try_receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, 0u);
  UnpackBuffer ub(got->second);
  EXPECT_EQ(ub.unpack<uint32_t>(), 77u);
  EXPECT_EQ(ub.unpack_string(), "hello");
  EXPECT_FALSE(rx.try_receive().has_value());
}

TEST(ChannelMux, ChannelsAreIsolated) {
  MuxPair mp;
  Channel& tx_a = mp.m0->open("a");
  Channel& tx_b = mp.m0->open("b");
  Channel& rx_a = mp.m1->open("a");
  Channel& rx_b = mp.m1->open("b");

  PackBuffer p1, p2;
  p1.pack<uint32_t>(1);
  p2.pack<uint32_t>(2);
  tx_a.send(1, std::move(p1));
  tx_b.send(1, std::move(p2));
  mp.pump1();

  EXPECT_EQ(rx_a.pending(), 1u);
  EXPECT_EQ(rx_b.pending(), 1u);
  EXPECT_EQ(UnpackBuffer(rx_a.try_receive()->second).unpack<uint32_t>(), 1u);
  EXPECT_EQ(UnpackBuffer(rx_b.try_receive()->second).unpack<uint32_t>(), 2u);
}

TEST(ChannelMux, HandlerBypassesQueue) {
  MuxPair mp;
  Channel& tx = mp.m0->open("evt");
  Channel& rx = mp.m1->open("evt");
  uint64_t seen = 0;
  rx.set_handler([&](fabric::NodeId src, UnpackBuffer& ub) {
    EXPECT_EQ(src, 0u);
    seen = ub.unpack<uint64_t>();
  });
  PackBuffer pb;
  pb.pack<uint64_t>(0xFEED);
  tx.send(1, std::move(pb));
  mp.pump1();
  EXPECT_EQ(seen, 0xFEEDu);
  EXPECT_EQ(rx.pending(), 0u);
  EXPECT_EQ(rx.delivered(), 1u);
}

TEST(ChannelMux, OwnsRespectsRange) {
  MuxPair mp;
  mp.m0->open("only");
  fabric::Message in_range;
  in_range.type = 100;
  fabric::Message below;
  below.type = 99;
  fabric::Message above;
  above.type = 101;  // only one channel open
  EXPECT_TRUE(mp.m0->owns(in_range));
  EXPECT_FALSE(mp.m0->owns(below));
  EXPECT_FALSE(mp.m0->owns(above));
}

TEST(ChannelMux, FifoWithinChannel) {
  MuxPair mp;
  Channel& tx = mp.m0->open("fifo");
  Channel& rx = mp.m1->open("fifo");
  for (uint32_t i = 0; i < 50; ++i) {
    PackBuffer pb;
    pb.pack<uint32_t>(i);
    tx.send(1, std::move(pb));
  }
  mp.pump1();
  for (uint32_t i = 0; i < 50; ++i) {
    auto got = rx.try_receive();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(UnpackBuffer(got->second).unpack<uint32_t>(), i);
  }
}

// --- runtime integration: daemon-fed channels ---------------------------------

std::atomic<uint64_t> g_channel_sum{0};

TEST(ChannelRuntime, DaemonFeedsChannels) {
  g_channel_sum = 0;
  AppConfig cfg;
  cfg.nodes = 3;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) {
          // Workers post on the "results" channel to node 0.
          PackBuffer pb;
          pb.pack<uint64_t>(rt.self() * 100);
          rt.channels().find("results")->send(0, std::move(pb));
        } else {
          // Node 0 collects two messages through the handler path.
          rt.wait_signals(2);
        }
        rt.barrier();
      },
      [&](Runtime& rt) {
        Channel& ch = rt.channels().open("results");
        if (rt.self() == 0) {
          ch.set_handler([](fabric::NodeId, UnpackBuffer& ub) {
            g_channel_sum += ub.unpack<uint64_t>();
            pm2_signal(0);
          });
        }
      });
  EXPECT_EQ(g_channel_sum.load(), 300u);  // 100 + 200
}

}  // namespace
}  // namespace pm2::mad
