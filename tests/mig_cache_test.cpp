// Migration slot cache (the §6 optimization applied to the migration path):
// bookkeeping correctness — entries consumed on return, invalidated when
// slots re-enter local ownership, bounded by eviction.
#include <gtest/gtest.h>

#include <atomic>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<int> g_phase{0};

void bouncer(void*) {
  for (int i = 0; i < 5; ++i) {
    pm2_migrate(marcel_self(), 1);
    pm2_migrate(marcel_self(), 0);
  }
  pm2_signal(0);
}

TEST(MigCache, PingPongPopulatesAndConsumes) {
  std::atomic<size_t> cache0{999}, cache0_mid{0};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&bouncer, nullptr, "bounce");
      pm2_wait_signals(1);
      // Thread finished on node 0: its run is not cached here (it lives
      // here); earlier hops left at most transient entries.
      cache0_mid = rt.mig_cache_size();
    }
    rt.barrier();
    if (rt.self() == 0) cache0 = rt.mig_cache_size();
  });
  // While the thread lived on node 0 at the end, node 0 must not hold its
  // slots in the cache (they were taken at the last return hop).
  EXPECT_EQ(cache0_mid.load(), 0u);
  EXPECT_EQ(cache0.load(), 0u);
}

void one_way(void*) {
  pm2_migrate(marcel_self(), 1);
  pm2_signal(0);
}

TEST(MigCache, SenderKeepsEntryAfterOneWayMigration) {
  std::atomic<size_t> cache0{0};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&one_way, nullptr, "oneway");
      pm2_wait_signals(1);
      cache0 = rt.mig_cache_size();
    }
    rt.barrier();
  });
  // The thread left and never returned: its stack-slot run stays cached.
  EXPECT_EQ(cache0.load(), 1u);
}

TEST(MigCache, DisabledConfigKeepsCacheEmpty) {
  std::atomic<size_t> cache0{999};
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.migration_slot_cache = 0;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&bouncer, nullptr, "bounce");
      pm2_wait_signals(1);
      cache0 = rt.mig_cache_size();
    }
    rt.barrier();
  });
  EXPECT_EQ(cache0.load(), 0u);
}

void short_hop(void* arg) {
  auto n = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  (void)n;
  pm2_migrate(marcel_self(), 1);
  pm2_signal(0);
}

TEST(MigCache, EvictionBoundsTheCache) {
  std::atomic<size_t> cache0{0};
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.migration_slot_cache = 4;  // tiny: 10 one-way threads overflow it
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      for (intptr_t i = 0; i < 10; ++i)
        pm2_thread_create(&short_hop, reinterpret_cast<void*>(i), "hop");
      pm2_wait_signals(10);
      cache0 = rt.mig_cache_size();
    }
    rt.barrier();
  });
  EXPECT_LE(cache0.load(), 4u);
  EXPECT_GE(cache0.load(), 1u);
}

void returner(void*) {
  // Leave, come back, exit here: the slots re-enter local ownership via
  // the reaper; a stale cache entry would be fatal later.
  g_phase = 1;
  pm2_migrate(marcel_self(), 1);
  pm2_migrate(marcel_self(), 0);
  pm2_signal(0);
}

TEST(MigCache, SlotsReusableAfterReturnAndDeath) {
  g_phase = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&returner, nullptr, "ret");
      pm2_wait_signals(1);
      // The dead thread's slots are back in the node bitmap; spawning many
      // new threads must reuse them without tripping cache bookkeeping.
      for (int i = 0; i < 20; ++i) {
        pm2_thread_create(&one_way, nullptr, "reuse");
      }
      pm2_wait_signals(20);
    }
    rt.barrier();
  });
}

}  // namespace
}  // namespace pm2
