#include "common/check.hpp"
// Real multi-process sessions over UNIX-domain sockets: validates the
// fixed-address iso-area reservation across distinct address spaces — the
// configuration the paper actually ran (one heavy process per node).
//
// Mechanism: the test body calls run_app with multiprocess=true; the parent
// re-executes this test binary once per node with PM2_MP_* set and a gtest
// filter pinning execution to the same test, so the child takes the
// node path inside run_app and exits there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

AppConfig mp_config(uint32_t nodes) {
  AppConfig cfg;
  cfg.nodes = nodes;
  cfg.multiprocess = true;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  cfg.child_args = {std::string("--gtest_filter=") + info->test_suite_name() +
                    "." + info->name()};
  return cfg;
}

// Children communicate results to the parent only via exit status: any
// PM2_CHECK/abort in a child surfaces as a non-zero run_app return.
#define CHILD_REQUIRE(cond) PM2_CHECK(cond) << "multiprocess child assertion"

TEST(MultiProcess, SessionBootsAndHalts) {
  int rc = run_app(mp_config(2), [](Runtime& rt) {
    CHILD_REQUIRE(rt.n_nodes() == 2);
    rt.barrier();
  });
  EXPECT_EQ(rc, 0);
}

void mp_list_worker(void*) {
  // The Fig. 7 scenario across real processes.
  struct Item {
    int value;
    Item* next;
  };
  Item* head = nullptr;
  for (int j = 0; j < 500; ++j) {
    auto* it = static_cast<Item*>(pm2_isomalloc(sizeof(Item)));
    it->value = j;
    it->next = head;
    head = it;
  }
  pm2_migrate(marcel_self(), 1);
  CHILD_REQUIRE(pm2_self() == 1);
  long sum = 0;
  for (Item* p = head; p != nullptr; p = p->next) sum += p->value;
  CHILD_REQUIRE(sum == 499L * 500 / 2);
  pm2_signal(0);
}

TEST(MultiProcess, MigrationAcrossAddressSpaces) {
  int rc = run_app(mp_config(2), [](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&mp_list_worker, nullptr, "mplist");
      pm2_wait_signals(1);
    }
  });
  EXPECT_EQ(rc, 0);
}

void mp_pingpong_worker(void*) {
  int counter = 0;
  int* p = &counter;
  for (int i = 0; i < 10; ++i) {
    pm2_migrate(marcel_self(), 1 - pm2_self());
    ++*p;
  }
  CHILD_REQUIRE(counter == 10);
  pm2_signal(0);
}

TEST(MultiProcess, PingPong) {
  int rc = run_app(mp_config(2), [](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&mp_pingpong_worker, nullptr, "mp-pp");
      pm2_wait_signals(1);
    }
  });
  EXPECT_EQ(rc, 0);
}

TEST(MultiProcess, NegotiationOverSockets) {
  AppConfig cfg = mp_config(3);
  cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
  int rc = run_app(cfg, [](Runtime& rt) {
    if (rt.self() == 1) {
      auto* p = static_cast<unsigned char*>(pm2_isomalloc(300 * 1024));
      CHILD_REQUIRE(p != nullptr);
      std::memset(p, 0x5C, 300 * 1024);
      CHILD_REQUIRE(p[300 * 1024 - 1] == 0x5C);
      pm2_isofree(p);
      CHILD_REQUIRE(rt.negotiations_initiated() >= 1);
    }
    rt.barrier();
  });
  EXPECT_EQ(rc, 0);
}

TEST(MultiProcess, FourNodeTour) {
  struct Worker {
    static void tour(void*) {
      uint32_t n = pm2_nodes();
      auto* log = static_cast<uint32_t*>(pm2_isomalloc(n * sizeof(uint32_t)));
      for (uint32_t hop = 0; hop < n; ++hop) {
        log[hop] = pm2_self();
        pm2_migrate(marcel_self(), (pm2_self() + 1) % n);
      }
      for (uint32_t hop = 0; hop < n; ++hop) CHILD_REQUIRE(log[hop] == hop);
      pm2_isofree(log);
      pm2_signal(0);
    }
  };
  int rc = run_app(mp_config(4), [](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&Worker::tour, nullptr, "mp-tour");
      pm2_wait_signals(1);
    }
  });
  EXPECT_EQ(rc, 0);
}

}  // namespace
}  // namespace pm2
