// Event tracer unit tests + integration with the runtime's trace points.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

using trace::Event;
using trace::Tracer;

TEST(Tracer, RecordsInOrder) {
  Tracer t(3, 1024);
  t.record(Event::kThreadCreate, 1);
  t.record(Event::kMigrationOut, 1, 2);
  t.record(Event::kThreadExit, 1);
  auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].event, Event::kThreadCreate);
  EXPECT_EQ(snap[1].event, Event::kMigrationOut);
  EXPECT_EQ(snap[1].b, 2u);
  EXPECT_EQ(snap[2].event, Event::kThreadExit);
  EXPECT_LE(snap[0].t_ns, snap[2].t_ns);
  EXPECT_EQ(snap[0].node, 3);
}

TEST(Tracer, RingOverwritesOldest) {
  Tracer t(0, 16);
  for (uint64_t i = 0; i < 40; ++i) t.record(Event::kUser, i);
  EXPECT_EQ(t.total(), 40u);
  auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 16u);
  EXPECT_EQ(snap.front().a, 24u);  // oldest survivor
  EXPECT_EQ(snap.back().a, 39u);
}

TEST(Tracer, CountByEvent) {
  Tracer t(0);
  t.record(Event::kMigrationOut);
  t.record(Event::kMigrationOut);
  t.record(Event::kBarrier);
  EXPECT_EQ(t.count(Event::kMigrationOut), 2u);
  EXPECT_EQ(t.count(Event::kBarrier), 1u);
  EXPECT_EQ(t.count(Event::kRpcIn), 0u);
}

TEST(Tracer, CsvHasHeaderAndRows) {
  Tracer t(1);
  t.record(Event::kNegotiationStart, 4);
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("t_us,node,event,a,b"), std::string::npos);
  EXPECT_NE(csv.find("negotiation_start,4,0"), std::string::npos);
}

TEST(Tracer, ClearResets) {
  Tracer t(0);
  t.record(Event::kUser);
  t.clear();
  EXPECT_EQ(t.total(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

// --- runtime integration -----------------------------------------------------

void traced_worker(void*) {
  void* p = pm2_isomalloc(200 * 1024);  // forces a negotiation under RR
  pm2_migrate(marcel_self(), 1);
  pm2_isofree(p);
  pm2_signal(0);
}

TEST(TracerRuntime, RuntimeEmitsLifecycleEvents) {
  static Tracer tracer0(0), tracer1(1);
  tracer0.clear();
  tracer1.clear();
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          pm2_thread_create(&traced_worker, nullptr, "traced");
          pm2_wait_signals(1);
        }
        rt.barrier();
      },
      // Attach tracers in the pre-run setup hook: the comm daemon may
      // install the incoming migration before node 1's *main thread* ever
      // runs, so attaching from node_main races the arrival.
      [&](Runtime& rt) {
        rt.set_tracer(rt.self() == 0 ? &tracer0 : &tracer1);
      });
  // Node 0 saw: thread create, a negotiation (start+end), migration out.
  EXPECT_GE(tracer0.count(Event::kThreadCreate), 1u);
  EXPECT_GE(tracer0.count(Event::kNegotiationStart), 1u);
  EXPECT_EQ(tracer0.count(Event::kNegotiationStart),
            tracer0.count(Event::kNegotiationEnd));
  EXPECT_EQ(tracer0.count(Event::kMigrationOut), 1u);
  // Node 1 saw the arrival and the exit.
  EXPECT_EQ(tracer1.count(Event::kMigrationIn), 1u);
  EXPECT_GE(tracer1.count(Event::kThreadExit), 1u);
  EXPECT_GE(tracer0.count(Event::kBarrier), 1u);
}

}  // namespace
}  // namespace pm2
