// Timer queue: sleep_us under pure marcel and under the PM2 runtime.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <functional>

#include "common/time.hpp"
#include "marcel/scheduler.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

using marcel::Scheduler;
using marcel::Thread;

constexpr size_t kRegion = 64 * 1024;

struct SleepFixture : ::testing::Test {
  marcel::ThreadId spawn(std::function<void()> body) {
    bodies_.push_back(std::move(body));
    void* region = std::aligned_alloc(64, kRegion);
    regions_.push_back(region);
    marcel::ThreadId id = next_id_++;
    sched_.create(region, kRegion, &SleepFixture::entry, &bodies_.back(), id,
                  "t");
    return id;
  }
  static void entry(void* arg) {
    (*static_cast<std::function<void()>*>(arg))();
    Scheduler::current_scheduler()->exit_current([](Thread*) {});
  }
  ~SleepFixture() override {
    for (void* r : regions_) std::free(r);
  }
  Scheduler sched_;
  std::vector<void*> regions_;
  std::deque<std::function<void()>> bodies_;
  marcel::ThreadId next_id_ = 1;
};

TEST_F(SleepFixture, SleepActuallyWaits) {
  uint64_t slept_ns = 0;
  spawn([&] {
    Stopwatch sw;
    Scheduler::current_scheduler()->sleep_us(5000);
    slept_ns = sw.elapsed_ns();
  });
  sched_.stop();
  sched_.run();
  EXPECT_GE(slept_ns, 5000u * 1000);
  EXPECT_LT(slept_ns, 500u * 1000 * 1000);  // sanity upper bound
}

TEST_F(SleepFixture, SleepersWakeInDeadlineOrder) {
  std::vector<int> order;
  spawn([&] {
    Scheduler::current_scheduler()->sleep_us(9000);
    order.push_back(3);
  });
  spawn([&] {
    Scheduler::current_scheduler()->sleep_us(1000);
    order.push_back(1);
  });
  spawn([&] {
    Scheduler::current_scheduler()->sleep_us(5000);
    order.push_back(2);
  });
  sched_.stop();
  sched_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SleepFixture, RunnableThreadsKeepExecutingDuringSleep) {
  int ticks = 0;
  bool sleeper_done = false;
  spawn([&] {
    Scheduler::current_scheduler()->sleep_us(3000);
    sleeper_done = true;
  });
  spawn([&] {
    while (!sleeper_done) {
      ++ticks;
      Scheduler::current_scheduler()->yield();
    }
  });
  sched_.stop();
  sched_.run();
  EXPECT_TRUE(sleeper_done);
  EXPECT_GT(ticks, 10);  // the busy thread was not starved by the sleeper
}

TEST_F(SleepFixture, ZeroSleepIsAYield) {
  std::vector<int> order;
  spawn([&] {
    order.push_back(1);
    Scheduler::current_scheduler()->sleep_us(0);
    order.push_back(3);
  });
  spawn([&] { order.push_back(2); });
  sched_.stop();
  sched_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SleepFixture, IdleSchedulerSleepsInsteadOfSpinning) {
  // The scheduler's idle path must park the kernel thread until the
  // nearest timer deadline (clock_nanosleep), not busy-wait on it: a
  // 50 ms pure-marcel sleep should cost almost no CPU time.
  spawn([] { Scheduler::current_scheduler()->sleep_us(50'000); });
  rusage before{};
  ASSERT_EQ(getrusage(RUSAGE_THREAD, &before), 0);
  sched_.stop();
  sched_.run();
  rusage after{};
  ASSERT_EQ(getrusage(RUSAGE_THREAD, &after), 0);
  auto cpu_us = [](const rusage& r) {
    return static_cast<uint64_t>(r.ru_utime.tv_sec + r.ru_stime.tv_sec) *
               1'000'000 +
           static_cast<uint64_t>(r.ru_utime.tv_usec + r.ru_stime.tv_usec);
  };
  EXPECT_LT(cpu_us(after) - cpu_us(before), 25'000u)
      << "idle scheduler burned CPU across a 50 ms sleep (busy-wait "
         "regression)";
}

TEST(SleepRuntime, Pm2SleepUnderCommDaemon) {
  std::atomic<uint64_t> elapsed_us{0};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime&) {
    if (pm2_self() == 0) {
      Stopwatch sw;
      pm2_sleep_us(10000);
      elapsed_us = static_cast<uint64_t>(sw.elapsed_us());
    }
  });
  EXPECT_GE(elapsed_us.load(), 10000u);
  EXPECT_LT(elapsed_us.load(), 2000000u);
}

TEST(SleepRuntime, SleepingThreadRefusesPreemptiveMigration) {
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      auto sleeper = [](void*) {
        pm2_sleep_us(20000);
        pm2_signal(0);
      };
      auto id = pm2_thread_create(sleeper, nullptr, "sleeper");
      pm2_yield();  // let it park on the timer
      EXPECT_FALSE(rt.migrate(id, 1));  // kBlocked: not migratable
      pm2_wait_signals(1);
    }
  });
}

}  // namespace
}  // namespace pm2
