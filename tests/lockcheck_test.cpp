// Dynamic lock-discipline checker tests (debug / sanitizer builds only).
//
// The checks under test live in sys/spinlock.hpp: per-lock static ranks
// with strictly-decreasing acquisition order, a per-kernel-thread held
// stack that catches double unlocks and unlocks from non-owners, and the
// in-context-switch window that turns "never hold a SpinLock across
// pm2_ctx_switch" into a CHECK.  All of them PM2_FATAL on violation, so
// every test here is a death test; in release builds (PM2_LOCK_CHECKS off)
// the whole suite skips.
#include "sys/spinlock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "marcel/scheduler.hpp"

namespace pm2 {
namespace {

#if PM2_LOCK_CHECKS == 0

TEST(LockCheck, DisabledInThisBuild) {
  GTEST_SKIP() << "PM2_LOCK_CHECKS is off (release build without "
                  "sanitizers); lock-discipline death tests need a debug "
                  "or sanitizer build";
}

#else

TEST(LockCheckDeath, DoubleUnlock) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sys::SpinLock l;
        l.lock();
        l.unlock();
        l.unlock();
      },
      "unheld lock");
}

TEST(LockCheckDeath, UnlockFromNonOwningThread) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sys::SpinLock l;
        std::atomic<bool> locked{false};
        std::atomic<bool> release{false};
        std::thread owner([&] {
          l.lock();
          locked.store(true);
          while (!release.load()) {
          }
          // Never unlocks; the lock dies with the process.
        });
        while (!locked.load()) {
        }
        // The lock is held — but by the other kernel thread, whose held
        // stack we are not on.
        l.unlock();
        release.store(true);
        owner.join();
      },
      "does not hold");
}

TEST(LockCheckDeath, OutOfOrderAcquisition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        // Leaf locks are the innermost layer; taking the outbox
        // (outermost) on top of one inverts the documented order.
        // (kSchedulerDeque used to play the inner role here; that rank
        // retired with the lock-free ready deques.)
        sys::SpinLock leaf{sys::LockRank::kLeaf};
        sys::SpinLock outbox{sys::LockRank::kOutbox};
        leaf.lock();
        outbox.lock();
      },
      "lock-rank violation");
}

TEST(LockCheck, EqualRankLockFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Strictly decreasing: two locks of the same rank may not nest via
  // lock() — equal-rank peers (e.g. two registry stripes) cross only via
  // try_lock.
  EXPECT_DEATH(
      {
        sys::SpinLock a{sys::LockRank::kRegistryShard};
        sys::SpinLock b{sys::LockRank::kRegistryShard};
        a.lock();
        b.lock();
      },
      "lock-rank violation");
}

TEST(LockCheck, TryLockIsExemptFromOrder) {
  // try_lock cannot deadlock, so rank order does not apply — equal-rank
  // peers (registry stripes, pool shards) may be probed this way.  The
  // ready deques that once relied on this for stealing are lock-free now.
  // A successful try_lock still joins the held stack (unlock bookkeeping
  // must balance).
  sys::SpinLock a{sys::LockRank::kRegistryShard};
  sys::SpinLock b{sys::LockRank::kRegistryShard};
  a.lock();
  ASSERT_TRUE(b.try_lock());
  b.unlock();
  a.unlock();
}

TEST(LockCheck, DecreasingOrderIsAllowed) {
  sys::SpinLock outer{sys::LockRank::kRuntimeMaps};
  sys::SpinLock inner{sys::LockRank::kLeaf};
  outer.lock();
  inner.lock();
  inner.unlock();
  outer.unlock();
}

constexpr size_t kRegion = 64 * 1024;

void yield_with_lock_held(void*) {
  sys::SpinLock l;
  l.lock();
  marcel::Scheduler::current_scheduler()->yield();
  l.unlock();
  marcel::Scheduler::current_scheduler()->exit_current([](marcel::Thread*) {});
}

TEST(LockCheckDeath, LockHeldAcrossContextSwitch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        void* region = std::aligned_alloc(64, kRegion);
        marcel::Scheduler sched;
        sched.create(region, kRegion, &yield_with_lock_held, nullptr, 1,
                     "locked-yield");
        sched.stop();
        sched.run();
      },
      "SpinLock\\(s\\) held");
}

#endif  // PM2_LOCK_CHECKS

}  // namespace
}  // namespace pm2
