// Deferred preemption: compute-bound threads get descheduled at PM2 API
// safe points once their quantum expires (Scheduler::maybe_preempt).
#include <gtest/gtest.h>

#include <atomic>

#include "common/time.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<int> g_interleave{0};
std::atomic<bool> g_saw_other{false};
std::atomic<bool> g_stop{false};

// Busy worker that calls an API safe point but never yields explicitly.
void greedy_worker(void*) {
  uint64_t deadline = now_ns() + 300ull * 1000 * 1000;  // hard cap 300 ms
  while (!g_stop.load() && now_ns() < deadline) {
    volatile uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
    // API calls are safe points; with a quantum set, this deschedules us.
    void* p = pm2_isomalloc(64);
    pm2_isofree(p);
  }
  pm2_signal(0);
}

void observer_worker(void*) {
  // If preemption works, this runs interleaved with the greedy worker.
  for (int i = 0; i < 20; ++i) {
    ++g_interleave;
    pm2_yield();
  }
  g_saw_other = true;
  g_stop = true;
  pm2_signal(0);
}

TEST(Preemption, QuantumInterleavesGreedyThreads) {
  g_interleave = 0;
  g_saw_other = false;
  g_stop = false;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.preemption_quantum_us = 200;
  run_app(cfg, [&](Runtime&) {
    // Spawn greedy first: without preemption it would monopolize the node
    // until its 300 ms cap, and the observer could not finish first.
    pm2_thread_create(&greedy_worker, nullptr, "greedy");
    pm2_thread_create(&observer_worker, nullptr, "observer");
    pm2_wait_signals(2);
  });
  EXPECT_TRUE(g_saw_other.load());
  EXPECT_GE(g_interleave.load(), 20);
}

TEST(Preemption, DisabledQuantumRunsToCompletion) {
  // Sanity for the cooperative default: a yielding pair still interleaves,
  // quantum or not.
  std::atomic<int> ticks{0};
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime& rt) {
    auto a = rt.spawn_local([&] {
      for (int i = 0; i < 10; ++i) {
        ++ticks;
        pm2_yield();
      }
    });
    auto b = rt.spawn_local([&] {
      for (int i = 0; i < 10; ++i) {
        ++ticks;
        pm2_yield();
      }
    });
    rt.join(a);
    rt.join(b);
  });
  EXPECT_EQ(ticks.load(), 20);
}

// Preemptive migration composes with the preemption quantum: a greedy
// thread that never asks to migrate is first descheduled (quantum), then
// shipped (balancer-style migrate), and keeps computing remotely.
void greedy_migratable(void*) {
  uint64_t deadline = now_ns() + 300ull * 1000 * 1000;
  while (pm2_self() == 0 && now_ns() < deadline) {
    volatile uint64_t sink = 0;
    for (int i = 0; i < 5000; ++i) sink = sink + i;
    void* p = pm2_isomalloc(32);  // safe point
    pm2_isofree(p);
  }
  g_saw_other = pm2_self() == 1;
  pm2_signal(0);
}

TEST(Preemption, QuantumEnablesPreemptiveMigrationOfGreedyThread) {
  g_saw_other = false;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.preemption_quantum_us = 100;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      auto id = pm2_thread_create(&greedy_migratable, nullptr, "greedy");
      bool moved = false;
      for (int tries = 0; tries < 2000 && !moved; ++tries) {
        moved = rt.migrate(id, 1);  // succeeds once the quantum parks it
        if (!moved) pm2_yield();
      }
      EXPECT_TRUE(moved);
      pm2_wait_signals(1);
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_saw_other.load());
}

}  // namespace
}  // namespace pm2
