// Invocation-pool semantics: service threads (descriptor + initialized
// stack + owned slot run) are recycled across RPC dispatches instead of
// being torn down per call.  These tests pin the contract:
//   * sequential and pipelined calls reuse parked threads (hits/misses);
//   * a burst beyond the pool bound falls back to the cold build path and
//     the pool stays bounded;
//   * parked threads release their slot runs at halt (no leak) and on
//     idle decay;
//   * a pool-spawned thread that migrates is lazily evicted — the install
//     side never parks a foreign run, and nothing double-releases.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "fabric/inproc.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/audit.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};
std::atomic<uint64_t> g_evictions{0};
std::atomic<uint64_t> g_pool_size{0};
std::atomic<bool> g_ok{true};

void register_pool_stats(Runtime& rt) {
  rt.service("pool-stats", [](RpcContext&) -> std::vector<uint64_t> {
    Runtime& self = *Runtime::current();
    return {self.pool_hits(), self.pool_misses(), self.pool_evictions(),
            self.pool_size()};
  });
}

// Sequential blocking calls to a local service: the first dispatch builds
// the thread (miss), every later one re-arms the same parked thread.
TEST(InvocationPool, SequentialCallsReuseOneThread) {
  g_hits = 0;
  g_misses = 0;
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(
      cfg,
      [&](Runtime& rt) {
        for (int i = 0; i < 10; ++i)
          ASSERT_EQ(rt.call<int>(0, "inc", i), i + 1);
        g_hits = rt.pool_hits();
        g_misses = rt.pool_misses();
        g_pool_size = rt.pool_size();
      },
      [](Runtime& rt) {
        rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
      });
  EXPECT_EQ(g_misses.load(), 1u);
  EXPECT_EQ(g_hits.load(), 9u);
  EXPECT_EQ(g_pool_size.load(), 1u);
}

// Pipelined burst wider than the pool bound: every concurrent invocation
// beyond the parked supply takes the cold build path, all complete, and
// at most `invocation_pool` threads park afterwards — the rest release
// their slot runs immediately.
TEST(InvocationPool, BurstBeyondPoolSizeFallsBackAndStaysBounded) {
  g_hits = 0;
  g_misses = 0;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.invocation_pool = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        std::vector<RpcFuture<int>> futs;
        futs.reserve(8);
        for (int i = 0; i < 8; ++i)
          futs.push_back(rt.call_async<int>(0, "inc", i));
        for (int i = 0; i < 8; ++i) EXPECT_EQ(futs[i].take(), i + 1);
        // On the single-loop scheduler the whole burst dispatches before
        // any invocation runs, so all eight are cold builds.  With SMP
        // workers (or sanitizer slowdowns) an early invocation may finish
        // and park before a later dispatch arrives, turning that one into
        // a legitimate pool hit — the scheduling-independent invariants
        // are the accounting and that the first dispatch found an empty
        // pool.
        EXPECT_EQ(rt.pool_misses() + rt.pool_hits(), 8u);
        EXPECT_GE(rt.pool_misses(), 1u);
        EXPECT_LE(rt.pool_size(), 2u);
        // Sequential follow-ups are pool-served.
        uint64_t hits_before = rt.pool_hits();
        EXPECT_EQ(rt.call<int>(0, "inc", 41), 42);
        EXPECT_EQ(rt.call<int>(0, "inc", 42), 43);
        g_hits = rt.pool_hits() - hits_before;
        g_pool_size = rt.pool_size();
      },
      [](Runtime& rt) {
        rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
      });
  EXPECT_EQ(g_hits.load(), 2u);
  EXPECT_LE(g_pool_size.load(), 2u);
}

// Disabling the pool turns every dispatch into a cold build.
TEST(InvocationPool, DisabledPoolNeverParks) {
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.invocation_pool = 0;
  run_app(
      cfg,
      [&](Runtime& rt) {
        for (int i = 0; i < 5; ++i) ASSERT_EQ(rt.call<int>(0, "inc", i), i + 1);
        g_hits = rt.pool_hits();
        g_misses = rt.pool_misses();
        g_pool_size = rt.pool_size();
      },
      [](Runtime& rt) {
        rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
      });
  EXPECT_EQ(g_hits.load(), 0u);
  EXPECT_EQ(g_misses.load(), 5u);
  EXPECT_EQ(g_pool_size.load(), 0u);
}

// halt() with parked threads: the comm daemon drains the pool on exit, so
// every slot run returns to the node — observable after run() because the
// session is built by hand instead of through run_app.
TEST(InvocationPool, HaltReleasesParkedThreadSlots) {
  iso::AreaConfig ac;
  ac.base = iso::offset_area_base(5);
  ac.size = 64ull << 20;
  iso::Area area(ac);
  auto hub = std::make_shared<fabric::InProcHub>(1);
  RuntimeConfig rc;
  rc.node = 0;
  rc.n_nodes = 1;
  Runtime rt(rc, area, hub->endpoint(0));
  rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
  std::atomic<size_t> parked{0};
  rt.run([&] {
    Runtime& self = *Runtime::current();
    for (int i = 0; i < 4; ++i) EXPECT_EQ(self.call<int>(0, "inc", i), i + 1);
    parked = self.pool_size();
    self.halt();
  });
  EXPECT_GT(parked.load(), 0u);
  EXPECT_EQ(rt.pool_size(), 0u);
  EXPECT_GE(rt.pool_evictions(), parked.load());
  // Main, daemon and every service stack released: the node owns the
  // whole area again.
  EXPECT_EQ(rt.slots().owned_free_slots(), area.n_slots());
}

// Idle decay: parked threads past the horizon are evicted by the comm
// daemon's idle laps and their slots rejoin the node's distribution.
TEST(InvocationPool, IdleDecayEvictsParkedThreads) {
  g_evictions = 0;
  g_pool_size = 0;
  AppConfig cfg;
  cfg.nodes = 1;
  cfg.rt.invocation_pool_decay_us = 1000;  // 1 ms horizon
  run_app(
      cfg,
      [&](Runtime& rt) {
        ASSERT_EQ(rt.call<int>(0, "inc", 1), 2);
        EXPECT_EQ(rt.pool_size(), 1u);
        // Two sleeps: the daemon re-enters its idle path between them and
        // finds the parked thread aged past the horizon.
        pm2_sleep_us(20'000);
        pm2_sleep_us(20'000);
        g_evictions = rt.pool_evictions();
        g_pool_size = rt.pool_size();
      },
      [](Runtime& rt) {
        rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
      });
  EXPECT_EQ(g_evictions.load(), 1u);
  EXPECT_EQ(g_pool_size.load(), 0u);
}

// A pool-spawned service thread that migrates: the source parks nothing
// (the thread left), the destination strips pool eligibility at install
// and releases the slots through the ordinary exit path — the audit
// proves nothing leaked or double-released.
TEST(InvocationPool, MigratedServiceThreadIsEvictedNotPooled) {
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        // Fire-and-forget: the handler hops to node 0 and signals from
        // there, so no reply routing is involved.
        for (int i = 0; i < 3; ++i) {
          rt.rpc(1, "roam", uint32_t{7});
          pm2_wait_signals(1);
        }
        // Node 1 dispatched 3 roam invocations; none of those threads
        // came back to its pool (they exited on node 0).
        auto stats = rt.call<std::vector<uint64_t>>(1, "pool-stats");
        ASSERT_EQ(stats.size(), 4u);
        EXPECT_EQ(stats[0], 0u);  // hits: nothing ever parked before this
        EXPECT_EQ(stats[1], 4u);  // misses: 3 roam + this pool-stats call
        // Node 0 received the migrants but must not have parked them.
        EXPECT_EQ(rt.pool_size(), 0u);
        EXPECT_EQ(rt.pool_hits() + rt.pool_misses(), 0u);
        // Global exactly-one-owner invariant: nothing leaked, nothing
        // double-released (covers the parked pool-stats thread too).
        AuditReport report = audit_session(rt);
        if (!report.ok) {
          pm2_printf("%s\n", report.summary().c_str());
          g_ok = false;
        }
      },
      [](Runtime& rt) {
        rt.service("roam", [](RpcContext&, uint32_t) {
          Runtime::current()->migrate_self(0);
          pm2_signal(0);
        });
        register_pool_stats(rt);
      });
  EXPECT_TRUE(g_ok.load());
}

// Cross-node pipelined reuse: the remote pool serves a steady stream.
TEST(InvocationPool, RemotePipelinedCallsHitPool) {
  g_hits = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        for (int round = 0; round < 4; ++round) {
          std::vector<RpcFuture<int>> futs;
          for (int i = 0; i < 8; ++i)
            futs.push_back(rt.call_async<int>(1, "inc", i));
          for (int i = 0; i < 8; ++i) EXPECT_EQ(futs[i].take(), i + 1);
        }
        auto stats = rt.call<std::vector<uint64_t>>(1, "pool-stats");
        ASSERT_EQ(stats.size(), 4u);
        g_hits = stats[0];
      },
      [](Runtime& rt) {
        rt.service("inc", [](RpcContext&, int v) -> int { return v + 1; });
        register_pool_stats(rt);
      });
  // 32 invocations; only the first burst can miss.  Later rounds re-arm
  // parked threads (the exact split depends on arrival overlap).
  EXPECT_GE(g_hits.load(), 16u);
}

}  // namespace
}  // namespace pm2
