// Iso-address thread migration integration tests.
//
// These are the paper's figures as executable assertions: stack locals and
// pointers survive migration unchanged (Figs. 1–3), pm2_isomalloc'd heap
// data migrates with the thread at identical addresses (Figs. 4, 7–9), and
// migration is preemptive (§2).
#include "pm2/migration.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "isomalloc/heap.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<bool> g_ok{true};
std::atomic<int> g_value{0};

#define MIG_EXPECT(cond)                                      \
  do {                                                        \
    if (!(cond)) {                                            \
      g_ok = false;                                           \
      pm2_printf("MIG_EXPECT failed: %s (line %d)\n", #cond,  \
                 __LINE__);                                   \
    }                                                         \
  } while (0)

AppConfig mig_config(uint32_t nodes) {
  AppConfig cfg;
  cfg.nodes = nodes;
  return cfg;
}

// --- Fig. 1/2: stack variable reached through a pointer ---------------------

void stack_pointer_worker(void*) {
  int x = 1;
  int* ptr = &x;  // pointer into the thread's own stack
  MIG_EXPECT(*ptr == 1);
  MIG_EXPECT(pm2_self() == 0);
  pm2_migrate(marcel_self(), 1);
  // Same virtual address, same contents — no registration, no fix-up.
  MIG_EXPECT(pm2_self() == 1);
  MIG_EXPECT(*ptr == 1);
  MIG_EXPECT(ptr == &x);
  *ptr = 2;
  MIG_EXPECT(x == 2);
  pm2_signal(0);
}

TEST(Migration, StackPointersSurvive) {
  g_ok = true;
  run_app(mig_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&stack_pointer_worker, nullptr, "fig2");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

// --- Fig. 7/8: linked list in iso-memory, migration mid-traversal -----------

struct Item {
  int value;
  Item* next;
};

void list_worker(void*) {
  constexpr int kElements = 1000;
  // Create the list on node 0 (paper Fig. 7).
  Item* head = nullptr;
  for (int j = 0; j < kElements; ++j) {
    auto* item = static_cast<Item*>(pm2_isomalloc(sizeof(Item)));
    item->value = j * 2 + 1;
    item->next = head;
    head = item;
  }
  // Traverse; migrate at element 100 and keep going (Fig. 8).
  int j = 0;
  long sum = 0;
  Item* ptr = head;
  while (ptr != nullptr) {
    if (j == 100) {
      MIG_EXPECT(pm2_self() == 0);
      pm2_migrate(marcel_self(), 1);
      MIG_EXPECT(pm2_self() == 1);
    }
    sum += ptr->value;
    ptr = ptr->next;
    ++j;
  }
  MIG_EXPECT(j == kElements);
  // sum of first kElements odd numbers = kElements^2
  MIG_EXPECT(sum == static_cast<long>(kElements) * kElements);
  // Free everything on the destination node — the slots are handed to the
  // node the thread is visiting (paper Fig. 6 step 4).
  while (head != nullptr) {
    Item* next = head->next;
    pm2_isofree(head);
    head = next;
  }
  pm2_signal(0);
}

TEST(Migration, LinkedListTraversalAcrossNodes) {
  g_ok = true;
  run_app(mig_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&list_worker, nullptr, "fig7");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

// --- Ping-pong: repeated migration stability -------------------------------

void pingpong_worker(void* arg) {
  auto rounds = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  int counter = 0;
  int* p = &counter;
  for (int i = 0; i < rounds; ++i) {
    pm2_migrate(marcel_self(), 1 - pm2_self());
    ++*p;  // through the stack pointer, every round
  }
  MIG_EXPECT(counter == rounds);
  MIG_EXPECT(pm2_self() == static_cast<uint32_t>(rounds % 2));
  pm2_signal(0);
}

TEST(Migration, PingPongTwentyRounds) {
  g_ok = true;
  run_app(mig_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&pingpong_worker,
                        reinterpret_cast<void*>(intptr_t{20}), "pingpong");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

// --- Preemptive migration (§2): the thread is unaware ------------------------

void oblivious_worker(void*) {
  // Compute-and-yield loop; never asks to migrate.
  while (pm2_self() == 0) pm2_yield();
  // Someone moved us.
  MIG_EXPECT(pm2_self() == 1);
  pm2_signal(0);
}

TEST(Migration, PreemptiveMigrationOfReadyThread) {
  g_ok = true;
  run_app(mig_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      auto id = pm2_thread_create(&oblivious_worker, nullptr, "oblivious");
      // Let it start, then migrate it out from under its feet.
      pm2_yield();
      bool moved = false;
      for (int tries = 0; tries < 100 && !moved; ++tries) {
        moved = rt.migrate(id, 1);
        if (!moved) pm2_yield();
      }
      EXPECT_TRUE(moved);
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

TEST(Migration, PinnedThreadRefusesToMigrate) {
  // `stop` must outlive node_main: the pinned worker may observe it after
  // node_main's frame is gone.
  std::atomic<bool> stop{false};
  run_app(mig_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      auto id = rt.spawn_local([&] {
        while (!stop) pm2_yield();
      });
      pm2_yield();
      EXPECT_FALSE(rt.migrate(id, 1));
      stop = true;
      rt.join(id);
    }
  });
}

// --- Heap-heavy migration (multi-slot runs, freed holes) ---------------------

void heavy_heap_worker(void* arg) {
  bool blocks_only = arg != nullptr;
  (void)blocks_only;
  // A mix: small blocks, a hole, and a 300 KB multi-slot block.
  auto* a = static_cast<unsigned char*>(pm2_isomalloc(1000));
  auto* b = static_cast<unsigned char*>(pm2_isomalloc(2000));
  auto* c = static_cast<unsigned char*>(pm2_isomalloc(3000));
  auto* big = static_cast<unsigned char*>(pm2_isomalloc(300 * 1024));
  std::memset(a, 0xA1, 1000);
  std::memset(c, 0xC3, 3000);
  std::memset(big, 0xB2, 300 * 1024);
  pm2_isofree(b);  // leave a hole: the free list must migrate too

  pm2_migrate(marcel_self(), 1);

  for (int i = 0; i < 1000; ++i) MIG_EXPECT(a[i] == 0xA1);
  for (int i = 0; i < 3000; ++i) MIG_EXPECT(c[i] == 0xC3);
  for (int i = 0; i < 300 * 1024; i += 4096) MIG_EXPECT(big[i] == 0xB2);

  // The heap must still be a valid heap and the freed hole must have
  // migrated with its free-list entry intact: allocating straight from the
  // slot that held b reuses b's bytes.
  marcel::Thread* self = marcel_self();
  size_t slot_size = Runtime::current()->area().slot_size();
  iso::ThreadHeap::check_invariants(self->slot_list, slot_size);
  iso::SlotHeader* ab_slot = iso::BlockHeader::of_payload(a)->slot;
  MIG_EXPECT(iso::slot_largest_free(ab_slot) >= 1900);
  auto* b2 = static_cast<unsigned char*>(iso::block_alloc(
      ab_slot, 1900, slot_size, iso::FitPolicy::kFirstFit));
  MIG_EXPECT(b2 == b);  // first-fit in that slot lands in the migrated hole
  pm2_isofree(a);
  pm2_isofree(b2);
  pm2_isofree(c);
  pm2_isofree(big);
  pm2_signal(0);
}

class MigrationPayloadMode : public ::testing::TestWithParam<bool> {};

TEST_P(MigrationPayloadMode, HeapMigratesIntact) {
  g_ok = true;
  AppConfig cfg = mig_config(2);
  cfg.rt.migrate_blocks_only = GetParam();
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&heavy_heap_worker, nullptr, "heavy");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

INSTANTIATE_TEST_SUITE_P(BothModes, MigrationPayloadMode,
                         ::testing::Values(true, false));

// --- Tour: visit every node in order ----------------------------------------

void tour_worker(void*) {
  auto* log = static_cast<uint32_t*>(pm2_isomalloc(16 * sizeof(uint32_t)));
  uint32_t n = pm2_nodes();
  for (uint32_t hop = 0; hop < n; ++hop) {
    log[hop] = pm2_self();
    pm2_migrate(marcel_self(), (pm2_self() + 1) % n);
  }
  MIG_EXPECT(pm2_self() == 0);  // full circle
  for (uint32_t hop = 0; hop < n; ++hop) MIG_EXPECT(log[hop] == hop);
  pm2_isofree(log);
  pm2_signal(0);
}

TEST(Migration, TourOfFourNodes) {
  g_ok = true;
  run_app(mig_config(4), [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&tour_worker, nullptr, "tour");
      pm2_wait_signals(1);
    }
  });
  EXPECT_TRUE(g_ok.load());
}

// --- Accounting --------------------------------------------------------------

void one_hop_worker(void*) {
  pm2_migrate(marcel_self(), 1);
  pm2_signal(0);
}

TEST(Migration, CountersTrackInAndOut) {
  std::atomic<uint64_t> out0{0}, in1{0};
  run_app(mig_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&one_hop_worker, nullptr, "hop");
      pm2_wait_signals(1);
    }
    rt.barrier();
    if (rt.self() == 0) out0 = rt.migrations_out();
    if (rt.self() == 1) in1 = rt.migrations_in();
  });
  EXPECT_EQ(out0.load(), 1u);
  EXPECT_EQ(in1.load(), 1u);
}

TEST(Migration, MigrateToSelfIsNoop) {
  g_value = 0;
  run_app(mig_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      int x = 7;
      rt.migrate_self(0);  // no-op
      EXPECT_EQ(x, 7);
      EXPECT_EQ(rt.migrations_out(), 0u);
      ++g_value;
    }
  });
  EXPECT_EQ(g_value.load(), 1);
}

// --- Pack/install unit-level checks ------------------------------------------

void sleeper_worker(void*) {
  // Allocate, then yield forever until moved; used to inspect payloads.
  void* p = pm2_isomalloc(10000);
  std::memset(p, 0x55, 10000);
  while (pm2_self() == 0) pm2_yield();
  pm2_isofree(p);
  pm2_signal(0);
}

TEST(Migration, BlocksOnlyPayloadIsSmaller) {
  std::atomic<size_t> full{0}, sparse{0};
  run_app(mig_config(2), [&](Runtime& rt) {
    if (rt.self() == 0) {
      auto id = pm2_thread_create(&sleeper_worker, nullptr, "sleeper");
      pm2_yield();  // let it allocate and park in its yield loop
      pm2_yield();
      marcel::Thread* t = rt.sched().find(id);
      ASSERT_NE(t, nullptr);
      ASSERT_TRUE(rt.sched().freeze(t));
      full = migration_payload_size(rt, t, /*blocks_only=*/false);
      sparse = migration_payload_size(rt, t, /*blocks_only=*/true);
      // Un-freeze by re-adopting locally, then actually ship it.
      rt.sched().forget(t);
      rt.sched().adopt(t);
      ASSERT_TRUE(rt.migrate(id, 1));
      pm2_wait_signals(1);
    }
  });
  // Whole-slot payload: stack slot (64K) + heap slot (64K).  Sparse: live
  // stack + headers + one 10 KB block.
  EXPECT_GT(full.load(), 120u * 1024);
  EXPECT_LT(sparse.load(), 40u * 1024);
  EXPECT_GT(sparse.load(), 10u * 1024);
}

}  // namespace
}  // namespace pm2
