// Distributed invariant audit tests: the global exactly-one-owner property
// verified on live sessions, including after heavy churn.
#include "pm2/audit.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/random.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<bool> g_audit_ok{true};
std::atomic<uint64_t> g_thread_owned{0};

TEST(Audit, FreshSessionIsClean) {
  g_audit_ok = true;
  AppConfig cfg;
  cfg.nodes = 3;
  run_app(cfg, [&](Runtime& rt) {
    rt.barrier();  // everyone booted
    if (rt.self() == 1) {
      AuditReport report = audit_session(rt);
      if (!report.ok) {
        pm2_printf("%s\n", report.summary().c_str());
        g_audit_ok = false;
      }
      // 3 nodes x (daemon + main) hold one stack slot each.
      g_thread_owned = report.thread_owned;
      EXPECT_EQ(report.threads_seen, 6u);
      EXPECT_EQ(report.total_slots, rt.area().n_slots());
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_audit_ok.load());
  EXPECT_EQ(g_thread_owned.load(), 6u);
}

void audit_churn_worker(void* arg) {
  auto seed = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(arg));
  Rng rng(seed);
  void* blocks[8] = {};
  for (int step = 0; step < 120; ++step) {
    int i = static_cast<int>(rng.next_below(8));
    if (blocks[i] != nullptr) {
      pm2_isofree(blocks[i]);
      blocks[i] = nullptr;
    } else {
      blocks[i] = pm2_isomalloc(rng.next_range(100, 120 * 1024));
    }
    if (rng.next_bool(0.1))
      pm2_migrate(marcel_self(), static_cast<uint32_t>(
                                     rng.next_below(pm2_nodes())));
  }
  for (void*& b : blocks)
    if (b != nullptr) pm2_isofree(b);
  pm2_signal(0);
}

TEST(Audit, CleanAfterMigrationAndNegotiationChurn) {
  g_audit_ok = true;
  AppConfig cfg;
  cfg.nodes = 3;
  cfg.rt.slots.distribution = iso::Distribution::kRoundRobin;  // negotiations
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      for (uintptr_t w = 0; w < 6; ++w)
        pm2_thread_create(&audit_churn_worker, reinterpret_cast<void*>(w * 31),
                          "churn");
      pm2_wait_signals(6);
    }
    rt.barrier();  // quiescent: workers drained everywhere
    if (rt.self() == 2) {
      AuditReport report = audit_session(rt);
      if (!report.ok) {
        pm2_printf("%s\n", report.summary().c_str());
        g_audit_ok = false;
      }
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_audit_ok.load());
}

TEST(Audit, CleanWithLiveAllocationsAcrossNodes) {
  g_audit_ok = true;
  static std::atomic<int> phase{0};
  phase = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      // A worker holding live blocks, parked mid-flight on node 1.
      auto holder = [](void*) {
        void* a = pm2_isomalloc(10000);
        void* b = pm2_isomalloc(200 * 1024);
        pm2_migrate(marcel_self(), 1);
        phase = 1;
        while (phase.load() < 2) pm2_yield();
        pm2_isofree(a);
        pm2_isofree(b);
        pm2_signal(0);
      };
      pm2_thread_create(holder, nullptr, "holder");
      while (phase.load() < 1) pm2_yield();
      AuditReport report = audit_session(rt);
      if (!report.ok) {
        pm2_printf("%s\n", report.summary().c_str());
        g_audit_ok = false;
      }
      EXPECT_GE(report.thread_owned, 4u);  // stacks + holder's heap slots
      phase = 2;
      pm2_wait_signals(1);
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_audit_ok.load());
}

TEST(Audit, SummaryFormats) {
  AuditReport r;
  r.ok = false;
  r.total_slots = 10;
  r.violations.push_back("slot 3 held by two threads");
  auto s = r.summary();
  EXPECT_NE(s.find("VIOLATIONS"), std::string::npos);
  EXPECT_NE(s.find("slot 3"), std::string::npos);
}

}  // namespace
}  // namespace pm2
