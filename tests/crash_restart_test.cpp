// Crash-restart sessions: kill -9 a node after a slot-store checkpoint,
// restart it against the same store file, and continue the session with
// the recorded threads adopted back.
//
// Two fabrics are covered:
//   * in-process hub — the whole 2-node session is one child process that
//     checkpoints both node stores, dies, and restarts recovered;
//   * socket fabric (real processes) — node 1 dies mid-session and comes
//     back while node 0 holds a pending RPC to it; the reconnect-capable
//     fabric parks the send until the restarted node re-joins, and the
//     reply is computed from the restored thread's iso data.
//
// Children report only through their exit status (the gtest parent owns
// the assertions): CHILD_REQUIRE aborts the child on violation.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/checkpoint.hpp"
#include "pm2/runtime.hpp"
#include "sys/process.hpp"

namespace pm2 {
namespace {

#define CHILD_REQUIRE(cond) \
  PM2_CHECK(cond) << "crash-restart child assertion failed"

std::string make_dir() {
  char tmpl[] = "/tmp/pm2-crash-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  PM2_CHECK(dir != nullptr) << "mkdtemp failed";
  return dir;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void touch(const std::string& path) {
  std::ofstream f(path);
  f << "1\n";
}

bool wait_for_file(const std::string& path, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    if (file_exists(path)) return true;
    ::usleep(20'000);
  }
  return file_exists(path);
}

constexpr int kWords = 1000;

long expected_sum(uint32_t node) {
  long sum = 0;
  for (int i = 0; i < kWords; ++i) sum += 1000L * node + i;
  return sum;
}

// --- in-process session: whole process dies and restarts --------------------

std::atomic<int> g_built[2];

// One per node.  Builds iso state, then parks in a yield loop until it
// finds itself in a *restarted* process (PM2_CR_RESTART set) — the
// pre-crash incarnation spins here until the kill.  The restored
// incarnation recomputes everything from the restored heap and stack.
void cr_worker(void*) {
  uint32_t node = pm2_self();
  auto* data = static_cast<long*>(pm2_isomalloc(kWords * sizeof(long)));
  for (int i = 0; i < kWords; ++i) data[i] = 1000L * node + i;
  long local = 31337 + static_cast<long>(node);
  g_built[node] = 1;
  while (std::getenv("PM2_CR_RESTART") == nullptr) pm2_yield();
  CHILD_REQUIRE(pm2_self() == node);
  long sum = 0;
  for (int i = 0; i < kWords; ++i) sum += data[i];
  CHILD_REQUIRE(sum == expected_sum(node));
  CHILD_REQUIRE(local == 31337 + static_cast<long>(node));
  pm2_isofree(data);
  pm2_signal(node);
}

void cr_inproc_child() {
  const char* dir = std::getenv("PM2_CR_DIR");
  CHILD_REQUIRE(dir != nullptr);
  const bool restart = std::getenv("PM2_CR_RESTART") != nullptr;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.slot_store_dir = dir;
  cfg.rt.slot_store_recover = restart;
  std::string marker = std::string(dir) + "/ckpt";
  run_app(cfg, [&](Runtime& rt) {
    if (!restart) {
      pm2_thread_create(cr_worker, nullptr, "cr");
      while (g_built[rt.self()].load() == 0) pm2_yield();
      StoreCheckpointStats stats = checkpoint_node_to_store(rt);
      CHILD_REQUIRE(stats.threads == 1);
      rt.slot_store()->sync();
      rt.barrier();  // both node stores durable before the marker appears
      if (rt.self() == 0) touch(marker);
      while (true) pm2_sleep_us(5'000);  // park until the parent kills us
    }
    CHILD_REQUIRE(rt.slot_store() != nullptr);
    CHILD_REQUIRE(rt.slot_store()->recovered());
    std::vector<marcel::ThreadId> ids = restore_node_from_store(rt);
    CHILD_REQUIRE(ids.size() == 1);
    pm2_wait_signals(1);
  });
  std::exit(0);
}

TEST(CrashRestart, InprocSessionRestoresFromStoreFiles) {
  if (std::getenv("PM2_CR_DIR") != nullptr && !is_spawned_child()) {
    cr_inproc_child();  // never returns
  }
  std::string dir = make_dir();
  std::vector<std::string> args = {
      "--gtest_filter=CrashRestart.InprocSessionRestoresFromStoreFiles"};
  pid_t run = sys::spawn(sys::self_exe(), args, {"PM2_CR_DIR=" + dir});
  ASSERT_TRUE(wait_for_file(dir + "/ckpt", 30'000)) << "checkpoint marker";
  ::kill(run, SIGKILL);
  EXPECT_EQ(sys::wait_child(run), 128 + SIGKILL);
  pid_t re = sys::spawn(sys::self_exe(), args,
                        {"PM2_CR_DIR=" + dir, "PM2_CR_RESTART=1"});
  EXPECT_EQ(sys::wait_child(re), 0);
}

// --- socket fabric: one node process dies, peers wait it back ---------------

std::atomic<long> g_value{0};
std::atomic<bool> g_value_ready{false};

// Node 1's stateful thread.  Pre-crash it only builds the data; the
// restored incarnation answers through the process-local mailbox the
// "peek" service reads.
void mp_worker(void*) {
  auto* data = static_cast<long*>(pm2_isomalloc(kWords * sizeof(long)));
  for (int i = 0; i < kWords; ++i) data[i] = 1000L * pm2_self() + i;
  g_built[pm2_self()] = 1;
  while (std::getenv("PM2_CR_RESTART") == nullptr) pm2_yield();
  long sum = 0;
  for (int i = 0; i < kWords; ++i) sum += data[i];
  pm2_isofree(data);
  g_value = sum;
  g_value_ready = true;
  pm2_signal(pm2_self());
}

void cr_mp_child() {
  const char* dir = std::getenv("PM2_CR_DIR");
  CHILD_REQUIRE(dir != nullptr);
  const bool restart = std::getenv("PM2_CR_RESTART") != nullptr;
  std::string ckpt_marker = std::string(dir) + "/ckpt";
  std::string killed_marker = std::string(dir) + "/killed";
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.rt.slot_store_dir = dir;
  cfg.rt.slot_store_recover = restart;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          // Only issue the call once node 1 is certainly dead: the send
          // must ride the reconnect path, not the original socket.
          while (!file_exists(killed_marker)) pm2_sleep_us(10'000);
          long v = rt.call<long>(1, "peek", 0);
          CHILD_REQUIRE(v == expected_sum(1));
          return;
        }
        if (!restart) {
          pm2_thread_create(mp_worker, nullptr, "mp");
          while (g_built[1].load() == 0) pm2_yield();
          StoreCheckpointStats stats = checkpoint_node_to_store(rt);
          CHILD_REQUIRE(stats.threads == 1);
          rt.slot_store()->sync();
          touch(ckpt_marker);
          while (true) pm2_sleep_us(5'000);  // park until the parent kills us
        }
        CHILD_REQUIRE(rt.slot_store()->recovered());
        std::vector<marcel::ThreadId> ids = restore_node_from_store(rt);
        CHILD_REQUIRE(ids.size() == 1);
        pm2_wait_signals(1);
      },
      [](Runtime& rt) {
        rt.service("peek", [](RpcContext&, int) -> long {
          while (!g_value_ready.load()) pm2_yield();
          return g_value.load();
        });
      });
  std::exit(0);  // unreachable: run_as_child exits, but keep the shape clear
}

TEST(CrashRestart, MultiprocessPendingRpcCompletesAfterRestart) {
  if (is_spawned_child()) {
    cr_mp_child();  // never returns
  }
  std::string dir = make_dir();
  std::vector<std::string> args = {
      "--gtest_filter=CrashRestart.MultiprocessPendingRpcCompletesAfterRestart"};
  auto env_for = [&](int node, bool restart) {
    std::vector<std::string> env = {
        "PM2_MP_NODE=" + std::to_string(node),
        "PM2_MP_NODES=2",
        "PM2_MP_DIR=" + dir,
        "PM2_MP_RECONNECT=1",
        "PM2_CR_DIR=" + dir,
    };
    if (restart) env.push_back("PM2_CR_RESTART=1");
    return env;
  };
  pid_t n0 = sys::spawn(sys::self_exe(), args, env_for(0, false));
  pid_t n1 = sys::spawn(sys::self_exe(), args, env_for(1, false));
  ASSERT_TRUE(wait_for_file(dir + "/ckpt", 30'000)) << "checkpoint marker";
  ::kill(n1, SIGKILL);
  EXPECT_EQ(sys::wait_child(n1), 128 + SIGKILL);
  touch(dir + "/killed");
  pid_t n1b = sys::spawn(sys::self_exe(), args, env_for(1, true));
  EXPECT_EQ(sys::wait_child(n1b), 0);
  EXPECT_EQ(sys::wait_child(n0), 0);
  for (int i = 0; i < 2; ++i) {
    ::unlink((dir + "/node" + std::to_string(i) + ".sock").c_str());
  }
}

}  // namespace
}  // namespace pm2
