// Session lifecycle edge cases: halt ordering, draining in-flight work,
// signals outliving their senders, sessions of every size.
#include <gtest/gtest.h>

#include <atomic>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<int> g_completed{0};

void slow_finisher(void* arg) {
  auto yields = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  for (int i = 0; i < yields; ++i) pm2_yield();
  ++g_completed;
  pm2_signal(0);
}

// A node's run() must not return while application threads still live,
// even when halt arrived long before they finish.
TEST(Shutdown, HaltWaitsForLiveThreads) {
  g_completed = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime&) {
    if (pm2_self() == 0) {
      // Long-running thread; main returns immediately afterwards, the
      // session barrier passes, node 0 halts — and the worker must still
      // complete.
      pm2_thread_create(&slow_finisher, reinterpret_cast<void*>(intptr_t{500}),
                        "slow");
      pm2_wait_signals(1);
    }
  });
  EXPECT_EQ(g_completed.load(), 1);
}

void remote_finisher(void*) {
  pm2_migrate(marcel_self(), 1);
  for (int i = 0; i < 200; ++i) pm2_yield();
  ++g_completed;
  pm2_signal(0);
}

// Same, but the straggler finishes on a *different* node than it started.
TEST(Shutdown, RemoteStragglerDrainsBeforeExit) {
  g_completed = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime&) {
    if (pm2_self() == 0) {
      pm2_thread_create(&remote_finisher, nullptr, "straggler");
      pm2_wait_signals(1);
    }
  });
  EXPECT_EQ(g_completed.load(), 1);
}

TEST(Shutdown, SessionSizesOneThroughSix) {
  for (uint32_t n = 1; n <= 6; ++n) {
    std::atomic<uint32_t> ran{0};
    AppConfig cfg;
    cfg.nodes = n;
    int rc = run_app(cfg, [&](Runtime& rt) {
      ++ran;
      rt.barrier();
    });
    EXPECT_EQ(rc, 0) << n;
    EXPECT_EQ(ran.load(), n) << n;
  }
}

TEST(Shutdown, BackToBackSessionsReuseTheAreaBase) {
  // The iso-area reservation must come and go cleanly across sessions in
  // one process (each run_app reserves the same fixed base).
  for (int round = 0; round < 5; ++round) {
    AppConfig cfg;
    cfg.nodes = 2;
    int rc = run_app(cfg, [&](Runtime& rt) {
      void* p = rt.isomalloc(1000);
      rt.isofree(p);
    });
    ASSERT_EQ(rc, 0) << "round " << round;
  }
}

TEST(Shutdown, SignalsQueuedBeforeWaiterArrives) {
  // Signals are counting, not rendezvous: senders may all fire before the
  // receiver ever waits.
  AppConfig cfg;
  cfg.nodes = 3;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() != 0) {
      for (int i = 0; i < 5; ++i) pm2_signal(0);
      rt.barrier();
    } else {
      rt.barrier();  // both senders done before we start waiting
      pm2_wait_signals(10);
    }
  });
}

void local_grandchild(void*) {
  for (int i = 0; i < 10; ++i) pm2_yield();
  ++g_completed;
  pm2_signal(pm2_self());  // wake the parent waiting on this node
}

void migrate_then_spawn(void*) {
  pm2_migrate(marcel_self(), 1);
  // Threads spawned on the destination node inherit full citizenship.
  g_completed = 0;
  for (int i = 0; i < 4; ++i)
    pm2_thread_create(&local_grandchild, nullptr, "grandchild");
  pm2_wait_signals(4);
  PM2_CHECK(g_completed.load() == 4);
  pm2_signal(0);
}

TEST(Shutdown, MigrantSpawnsOnDestination) {
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime&) {
    if (pm2_self() == 0) {
      pm2_thread_create(&migrate_then_spawn, nullptr, "parent");
      pm2_wait_signals(1);
    }
  });
}

}  // namespace
}  // namespace pm2
