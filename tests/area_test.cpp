// Iso-address area tests: address arithmetic and commit/decommit.
#include "isomalloc/area.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pm2::iso {
namespace {

AreaConfig small_config() {
  AreaConfig cfg;
  cfg.base = iso::offset_area_base(1);  // away from the default runtime base
  cfg.size = 64ull << 20;          // 64 MiB
  cfg.slot_size = 64 * 1024;
  return cfg;
}

TEST(Area, Geometry) {
  Area area(small_config());
  EXPECT_EQ(area.n_slots(), 1024u);
  EXPECT_EQ(area.slot_size(), 64u * 1024);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(area.slot_addr(0)), area.base());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(area.slot_addr(3)),
            area.base() + 3 * area.slot_size());
}

TEST(Area, SlotOfInverse) {
  Area area(small_config());
  for (size_t i : {size_t{0}, size_t{1}, size_t{511}, size_t{1023}}) {
    EXPECT_EQ(area.slot_of(area.slot_addr(i)), i);
    // Interior addresses map to the same slot.
    auto* mid = static_cast<char*>(area.slot_addr(i)) + 1000;
    EXPECT_EQ(area.slot_of(mid), i);
  }
}

TEST(Area, Contains) {
  Area area(small_config());
  EXPECT_TRUE(area.contains(area.slot_addr(0)));
  EXPECT_TRUE(area.contains(
      reinterpret_cast<void*>(area.base() + area.size() - 1)));
  EXPECT_FALSE(area.contains(reinterpret_cast<void*>(area.base() - 1)));
  EXPECT_FALSE(
      area.contains(reinterpret_cast<void*>(area.base() + area.size())));
}

TEST(Area, CommitWriteDecommit) {
  Area area(small_config());
  EXPECT_FALSE(area.committed(5));
  area.commit(5, 2);
  EXPECT_TRUE(area.committed(5));
  EXPECT_TRUE(area.committed(6));
  EXPECT_FALSE(area.committed(7));
  std::memset(area.slot_addr(5), 0x7E, 2 * area.slot_size());
  area.decommit(5, 2);
  EXPECT_FALSE(area.committed(5));
}

TEST(Area, RecommitIsZeroFilled) {
  Area area(small_config());
  area.commit(9, 1);
  auto* p = static_cast<unsigned char*>(area.slot_addr(9));
  p[0] = 0xFF;
  area.decommit(9, 1);
  area.commit(9, 1);
  EXPECT_EQ(p[0], 0);  // fresh pages: migration lands on clean slots
}

TEST(Area, IdenticalRangeReservableAcrossInstances) {
  // Two successive areas at the same base emulate two SPMD processes: the
  // fixed range must be obtainable deterministically.
  auto cfg = small_config();
  {
    Area a(cfg);
    a.commit(0, 1);
  }
  Area b(cfg);
  EXPECT_FALSE(b.committed(0));  // nothing leaked from the previous life
}

TEST(AreaDeath, MisalignedSlotSizeRejected) {
  auto cfg = small_config();
  cfg.slot_size = 1000;  // not page aligned
  EXPECT_DEATH(Area{cfg}, "page aligned");
}

TEST(AreaDeath, OutOfRangeSlotRejected) {
  Area area(small_config());
  EXPECT_DEATH(area.commit(1024, 1), "");
  EXPECT_DEATH(area.slot_of(reinterpret_cast<void*>(0x1000)), "outside");
}

}  // namespace
}  // namespace pm2::iso
