// Synchronization primitive tests (run under the cooperative scheduler).
#include "marcel/sync.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <functional>
#include <vector>

namespace pm2::marcel {
namespace {

constexpr size_t kRegion = 64 * 1024;

/// Harness: run a set of std::function bodies as PM2 threads to completion.
class SyncFixture : public ::testing::Test {
 protected:
  void spawn(std::function<void()> body) {
    bodies_.push_back(std::move(body));
    void* region = std::aligned_alloc(64, kRegion);
    regions_.push_back(region);
    sched_.create(region, kRegion, &SyncFixture::entry,
                  &bodies_.back(), next_id_++, "t");
  }

  void run_all() {
    sched_.stop();
    sched_.run();
  }

  ~SyncFixture() override {
    for (void* r : regions_) std::free(r);
  }

  static void entry(void* arg) {
    (*static_cast<std::function<void()>*>(arg))();
    Scheduler::current_scheduler()->exit_current([](Thread*) {});
  }

  Scheduler sched_;
  std::vector<void*> regions_;
  std::deque<std::function<void()>> bodies_;
  ThreadId next_id_ = 1;
};

TEST_F(SyncFixture, MutexMutualExclusion) {
  Mutex mu;
  int in_section = 0;
  int max_in_section = 0;
  for (int i = 0; i < 5; ++i) {
    spawn([&] {
      for (int k = 0; k < 10; ++k) {
        mu.lock();
        ++in_section;
        max_in_section = std::max(max_in_section, in_section);
        Scheduler::current_scheduler()->yield();  // try to break exclusion
        --in_section;
        mu.unlock();
      }
    });
  }
  run_all();
  EXPECT_EQ(max_in_section, 1);
}

TEST_F(SyncFixture, MutexTryLock) {
  Mutex mu;
  std::vector<int> trace;
  spawn([&] {
    EXPECT_TRUE(mu.try_lock());
    EXPECT_FALSE(mu.try_lock() && false);  // non-recursive: stays locked
    Scheduler::current_scheduler()->yield();
    mu.unlock();
  });
  spawn([&] {
    EXPECT_FALSE(mu.try_lock());  // first thread holds it
    Scheduler::current_scheduler()->yield();
    EXPECT_TRUE(mu.try_lock());
    mu.unlock();
  });
  run_all();
}

TEST_F(SyncFixture, CondVarSignalWakesOne) {
  Mutex mu;
  CondVar cv;
  bool flag = false;
  std::vector<int> trace;
  spawn([&] {
    mu.lock();
    while (!flag) cv.wait(mu);
    trace.push_back(2);
    mu.unlock();
  });
  spawn([&] {
    mu.lock();
    flag = true;
    trace.push_back(1);
    cv.signal();
    mu.unlock();
  });
  run_all();
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
}

TEST_F(SyncFixture, CondVarBroadcastWakesAll) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  for (int i = 0; i < 4; ++i) {
    spawn([&] {
      mu.lock();
      while (!go) cv.wait(mu);
      ++woke;
      mu.unlock();
    });
  }
  spawn([&] {
    mu.lock();
    go = true;
    cv.broadcast();
    mu.unlock();
  });
  run_all();
  EXPECT_EQ(woke, 4);
}

TEST_F(SyncFixture, SemaphoreCountsPermits) {
  Semaphore sem(2);
  int concurrent = 0;
  int max_concurrent = 0;
  for (int i = 0; i < 6; ++i) {
    spawn([&] {
      sem.acquire();
      ++concurrent;
      max_concurrent = std::max(max_concurrent, concurrent);
      Scheduler::current_scheduler()->yield();
      --concurrent;
      sem.release();
    });
  }
  run_all();
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(sem.value(), 2);
}

TEST_F(SyncFixture, SemaphoreProducerConsumer) {
  Semaphore items(0);
  std::vector<int> consumed;
  spawn([&] {
    for (int i = 0; i < 5; ++i) items.acquire(), consumed.push_back(i);
  });
  spawn([&] {
    for (int i = 0; i < 5; ++i) {
      items.release();
      Scheduler::current_scheduler()->yield();
    }
  });
  run_all();
  EXPECT_EQ(consumed.size(), 5u);
}

TEST_F(SyncFixture, BarrierReleasesTogether) {
  Barrier bar(3);
  int before = 0, after = 0;
  int releasers = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([&] {
      ++before;
      if (bar.arrive_and_wait()) ++releasers;
      // By the time anyone passes, all three must have arrived.
      EXPECT_EQ(before, 3);
      ++after;
    });
  }
  run_all();
  EXPECT_EQ(after, 3);
  EXPECT_EQ(releasers, 1);
}

TEST_F(SyncFixture, BarrierIsReusable) {
  Barrier bar(2);
  std::vector<int> trace;
  for (int i = 0; i < 2; ++i) {
    spawn([&, i] {
      for (int round = 0; round < 3; ++round) {
        trace.push_back(round * 10 + i);
        bar.arrive_and_wait();
      }
    });
  }
  run_all();
  // Rounds must not interleave: sort within pairs.
  ASSERT_EQ(trace.size(), 6u);
  for (int round = 0; round < 3; ++round) {
    int a = trace[round * 2] / 10;
    int b = trace[round * 2 + 1] / 10;
    EXPECT_EQ(a, round);
    EXPECT_EQ(b, round);
  }
}

TEST_F(SyncFixture, EventWaitAfterSetDoesNotBlock) {
  Event ev;
  std::vector<int> trace;
  spawn([&] {
    ev.set();
    trace.push_back(1);
  });
  spawn([&] {
    ev.wait();
    trace.push_back(2);
  });
  run_all();
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
}

TEST_F(SyncFixture, EventWakesAllWaiters) {
  Event ev;
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    spawn([&] {
      ev.wait();
      ++woke;
    });
  }
  spawn([&] { ev.set(); });
  run_all();
  EXPECT_EQ(woke, 3);
}

TEST_F(SyncFixture, FutureCompletedBeforeWait) {
  Promise<int> p;
  Future<int> f = p.future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.ready());
  p.set_value(42);
  EXPECT_TRUE(f.ready());
  EXPECT_FALSE(f.failed());
  int got = 0;
  spawn([&] { got = f.take(); });  // take() after completion: no parking
  run_all();
  EXPECT_EQ(got, 42);
}

TEST_F(SyncFixture, FutureWaitParksUntilSet) {
  Promise<std::vector<int>> p;
  Future<std::vector<int>> f = p.future();
  std::vector<int> got;
  bool producer_ran = false;
  spawn([&] {
    got = f.take();  // parks: the producer has not run yet
    EXPECT_TRUE(producer_ran);
  });
  spawn([&] {
    producer_ran = true;
    p.set_value({1, 2, 3});
  });
  run_all();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST_F(SyncFixture, FutureError) {
  Promise<int> p;
  Future<int> f = p.future();
  bool observed = false;
  spawn([&] {
    f.wait();
    observed = f.failed() && f.error() == "boom";
  });
  spawn([&] { p.set_error("boom"); });
  run_all();
  EXPECT_TRUE(observed);
}

TEST_F(SyncFixture, WaitAllAndWaitAny) {
  std::vector<Promise<int>> promises(3);
  std::vector<Future<int>> futures;
  for (auto& p : promises) futures.push_back(p.future());
  size_t first = 99;
  int sum = 0;
  spawn([&] {
    first = wait_any(futures);  // polls + yields until one completes
    wait_all(futures);
    for (auto& f : futures) sum += f.take();
  });
  spawn([&] {
    promises[1].set_value(20);  // completes first
    Scheduler::current_scheduler()->yield();
    promises[0].set_value(10);
    promises[2].set_value(30);
  });
  run_all();
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(sum, 60);
}

TEST_F(SyncFixture, WaitQueueFifoOrder) {
  WaitQueue q;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    spawn([&, i] {
      q.park_current();
      order.push_back(i);
    });
  }
  spawn([&] {
    EXPECT_EQ(q.size(), 3u);
    while (q.unpark_one() != nullptr) {
    }
  });
  run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace pm2::marcel
