// Byte writer/reader round-trip tests.
#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pm2 {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  ByteWriter w;
  w.put<uint8_t>(0x12);
  w.put<uint16_t>(0x3456);
  w.put<uint32_t>(0x789ABCDE);
  w.put<uint64_t>(0x0123456789ABCDEFull);
  w.put<double>(3.25);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<uint8_t>(), 0x12);
  EXPECT_EQ(r.get<uint16_t>(), 0x3456);
  EXPECT_EQ(r.get<uint32_t>(), 0x789ABCDEu);
  EXPECT_EQ(r.get<uint64_t>(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter w;
  w.put_string("");
  w.put_string("hello pm2");
  std::string big(10000, 'x');
  w.put_string(big);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello pm2");
  EXPECT_EQ(r.get_string(), big);
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter w;
  std::vector<uint64_t> v = {1, 2, 3, 0xFFFFFFFFFFFFFFFFull};
  w.put_vector(v);
  std::vector<uint64_t> empty;
  w.put_vector(empty);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<uint64_t>(), v);
  EXPECT_EQ(r.get_vector<uint64_t>(), empty);
}

TEST(Serialize, ViewBytesIsZeroCopy) {
  ByteWriter w;
  w.put_bytes("abcdef", 6);
  ByteReader r(w.bytes());
  const uint8_t* p = r.view_bytes(6);
  EXPECT_EQ(p, w.bytes().data());
  EXPECT_EQ(std::memcmp(p, "abcdef", 6), 0);
}

TEST(Serialize, StructRoundTrip) {
  struct Pod {
    uint32_t a;
    uint64_t b;
    char c[8];
  };
  Pod in{7, 9, "pm2"};
  ByteWriter w;
  w.put(in);
  ByteReader r(w.bytes());
  Pod out = r.get<Pod>();
  EXPECT_EQ(out.a, 7u);
  EXPECT_EQ(out.b, 9u);
  EXPECT_STREQ(out.c, "pm2");
}

TEST(SerializeDeath, UnderrunAborts) {
  ByteWriter w;
  w.put<uint32_t>(1);
  ByteReader r(w.bytes());
  r.get<uint32_t>();
  EXPECT_DEATH(r.get<uint8_t>(), "underrun");
}

}  // namespace
}  // namespace pm2
