// PM2 runtime integration tests: node lifecycle, threads, RPC, collectives.
// All run with real multi-node sessions on the in-process fabric (each
// logical node on its own kernel thread, full protocol stack).
#include "pm2/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "pm2/api.hpp"
#include "pm2/app.hpp"

namespace pm2 {
namespace {

AppConfig test_config(uint32_t nodes) {
  AppConfig cfg;
  cfg.nodes = nodes;
  return cfg;
}

TEST(Runtime, SingleNodeStartsAndHalts) {
  std::atomic<int> ran{0};
  int rc = run_app(test_config(1), [&](Runtime& rt) {
    EXPECT_EQ(rt.self(), 0u);
    EXPECT_EQ(rt.n_nodes(), 1u);
    ++ran;
  });
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(ran.load(), 1);
}

TEST(Runtime, EveryNodeRunsMain) {
  std::atomic<uint32_t> mask{0};
  run_app(test_config(4), [&](Runtime& rt) { mask |= 1u << rt.self(); });
  EXPECT_EQ(mask.load(), 0b1111u);
}

TEST(Runtime, SpawnLocalThreadsRunToCompletion) {
  std::atomic<int> count{0};
  run_app(test_config(2), [&](Runtime& rt) {
    for (int i = 0; i < 10; ++i) {
      rt.spawn_local([&count] { ++count; });
    }
    // Main returns; the session barrier keeps the node alive until the
    // spawned threads (live count) finish... they must finish before halt:
    // joining is implicit because run() drains live threads before exiting.
  });
  EXPECT_EQ(count.load(), 20);
}

TEST(Runtime, JoinWaitsForChild) {
  std::atomic<int> order{0};
  std::atomic<int> child_done_at{-1};
  std::atomic<int> join_done_at{-1};
  run_app(test_config(1), [&](Runtime& rt) {
    auto id = rt.spawn_local([&] { child_done_at = order++; });
    rt.join(id);
    join_done_at = order++;
  });
  EXPECT_LT(child_done_at.load(), join_done_at.load());
}

TEST(Runtime, IsomallocRoundTrip) {
  run_app(test_config(1), [&](Runtime& rt) {
    auto* p = static_cast<int*>(rt.isomalloc(100 * sizeof(int)));
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(rt.area().contains(p));
    for (int i = 0; i < 100; ++i) p[i] = i;
    for (int i = 0; i < 100; ++i) EXPECT_EQ(p[i], i);
    rt.isofree(p);
  });
}

TEST(Runtime, IsomallocApiWrappers) {
  run_app(test_config(1), [&](Runtime&) {
    EXPECT_EQ(pm2_self(), 0u);
    EXPECT_EQ(pm2_nodes(), 1u);
    EXPECT_NE(marcel_self(), nullptr);
    void* p = pm2_isomalloc(64);
    ASSERT_NE(p, nullptr);
    p = pm2_isorealloc(p, 128);
    ASSERT_NE(p, nullptr);
    pm2_isofree(p);
    pm2_isofree(nullptr);  // no-op
  });
}

// RPC: fire-and-forget creates a thread remotely (typed, name-keyed).
std::atomic<int> g_rpc_sum{0};
std::atomic<uint32_t> g_rpc_node{999};

TEST(Runtime, RpcSpawnsRemoteThread) {
  g_rpc_sum = 0;
  g_rpc_node = 999;
  run_app(
      test_config(2),
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          rt.rpc(1, "add", int32_t{20}, int32_t{22});
          rt.wait_signals(1);
        }
      },
      [&](Runtime& rt) {
        rt.service("add", [](RpcContext& ctx, int32_t a, int32_t b) {
          g_rpc_sum += a + b;
          g_rpc_node = pm2_self();
          pm2_signal(ctx.source_node());
        });
      });
  EXPECT_EQ(g_rpc_sum.load(), 42);
  EXPECT_EQ(g_rpc_node.load(), 1u);
}

/// Typed reply carrying both the echoed value and the responding node —
/// trivially copyable structs marshal as fixed-size scalars.
struct EchoReply {
  uint64_t doubled;
  uint32_t node;
};

void register_echo(Runtime& rt) {
  rt.service("echo", [](RpcContext&, uint64_t v) {
    return EchoReply{v * 2, pm2_self()};
  });
}

TEST(Runtime, CallGetsReply) {
  std::atomic<uint64_t> result{0};
  std::atomic<uint32_t> responder{99};
  run_app(
      test_config(3),
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          EchoReply r = rt.call<EchoReply>(2, "echo", uint64_t{21});
          result = r.doubled;
          responder = r.node;
        }
      },
      [&](Runtime& rt) { register_echo(rt); });
  EXPECT_EQ(result.load(), 42u);
  EXPECT_EQ(responder.load(), 2u);
}

TEST(Runtime, CallToSelf) {
  std::atomic<uint64_t> result{0};
  run_app(
      test_config(1),
      [&](Runtime& rt) {
        result = rt.call<EchoReply>(0, "echo", uint64_t{5}).doubled;
      },
      [&](Runtime& rt) { register_echo(rt); });
  EXPECT_EQ(result.load(), 10u);
}

TEST(Runtime, BarrierSynchronizesNodes) {
  std::atomic<int> phase1{0};
  std::atomic<bool> violation{false};
  run_app(test_config(4), [&](Runtime& rt) {
    ++phase1;
    rt.barrier();
    if (phase1.load() != 4) violation = true;
    rt.barrier();
  });
  EXPECT_FALSE(violation.load());
}

TEST(Runtime, SignalsCrossNodes) {
  run_app(test_config(3), [&](Runtime& rt) {
    if (rt.self() != 0) {
      pm2_signal(0);
      pm2_signal(0);
    } else {
      pm2_wait_signals(4);  // 2 from each of nodes 1, 2
    }
  });
}

TEST(Runtime, LoadGossip) {
  std::atomic<uint64_t> observed{0};
  run_app(test_config(2), [&](Runtime& rt) {
    if (rt.self() == 1) {
      // Spawn some load, gossip, give node 0 time to observe it.
      for (int i = 0; i < 5; ++i)
        rt.spawn_local([&rt] {
          for (int k = 0; k < 50; ++k) rt.sched().yield();
        });
      rt.broadcast_load();
    }
    rt.barrier();
    if (rt.self() == 0) {
      observed = rt.load_table()[1];
    }
  });
  EXPECT_GE(observed.load(), 1u);
}

TEST(Runtime, ManyThreadsManyNodes) {
  std::atomic<int> done{0};
  run_app(test_config(4), [&](Runtime& rt) {
    for (int i = 0; i < 50; ++i) {
      rt.spawn_local([&done, &rt] {
        for (int k = 0; k < 10; ++k) rt.sched().yield();
        ++done;
      });
    }
  });
  EXPECT_EQ(done.load(), 200);
}

TEST(Runtime, HeapStatsAccumulate) {
  run_app(test_config(1), [&](Runtime& rt) {
    void* p = rt.isomalloc(1000);
    rt.isofree(p);
    EXPECT_EQ(rt.heap_stats().allocs, 1u);
    EXPECT_EQ(rt.heap_stats().frees, 1u);
  });
}

TEST(Runtime, ThreadStacksLiveInIsoArea) {
  run_app(test_config(1), [&](Runtime& rt) {
    int on_stack = 0;
    EXPECT_TRUE(rt.area().contains(&on_stack));
    EXPECT_TRUE(rt.area().contains(marcel_self()));
  });
}

}  // namespace
}  // namespace pm2
