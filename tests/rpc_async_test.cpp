// v2 asynchronous RPC & migration API: pipelined call_async futures, typed
// name-keyed services, unknown-service and hash-collision error paths,
// migrate_async ack ordering, and the shutdown drain of pending calls.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/protocol.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

// ---------------------------------------------------------------------------
// Pipelining: many outstanding futures from one thread, on both fabrics
// ---------------------------------------------------------------------------

void register_add1(Runtime& rt) {
  rt.service("add1", [](RpcContext&, uint64_t v) -> uint64_t { return v + 1; });
}

void sixty_four_outstanding(bool socket_fabric) {
  std::atomic<int> correct{0};
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.socket_fabric = socket_fabric;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        constexpr uint64_t kOutstanding = 64;
        std::vector<RpcFuture<uint64_t>> futs;
        futs.reserve(kOutstanding);
        for (uint64_t i = 0; i < kOutstanding; ++i)
          futs.push_back(rt.call_async<uint64_t>(1, "add1", i));
        wait_all(futs);
        // Consume out of issue order: completion is per-correlation, not
        // positional.
        for (size_t i = futs.size(); i-- > 0;)
          if (futs[i].take() == i + 1) ++correct;
      },
      &register_add1);
  EXPECT_EQ(correct.load(), 64);
}

TEST(RpcAsync, SixtyFourOutstandingInproc) { sixty_four_outstanding(false); }
TEST(RpcAsync, SixtyFourOutstandingSocketFabric) {
  sixty_four_outstanding(true);
}

// ---------------------------------------------------------------------------
// Interleaved replies: futures complete in service-finish order
// ---------------------------------------------------------------------------

TEST(RpcAsync, InterleavedRepliesOutOfOrder) {
  std::atomic<bool> fast_first{false};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        std::vector<RpcFuture<uint64_t>> futs;
        // 100ms margin: at workers > 1 on an oversubscribed box the fast
        // reply contends with real kernel threads, and a 20ms margin
        // occasionally loses to scheduler delay alone.
        futs.push_back(rt.call_async<uint64_t>(1, "delayed",
                                               uint64_t{100000}, uint64_t{1}));
        futs.push_back(
            rt.call_async<uint64_t>(1, "delayed", uint64_t{0}, uint64_t{2}));
        size_t first = wait_any(futs);
        fast_first = first == 1 && futs[1].take() == 2;
        EXPECT_EQ(futs[0].take(), 1u);  // the slow one still lands
      },
      [](Runtime& rt) {
        rt.service("delayed",
                   [](RpcContext&, uint64_t us, uint64_t token) -> uint64_t {
                     if (us > 0) pm2_sleep_us(us);
                     return token;
                   });
      });
  EXPECT_TRUE(fast_first.load());
}

// ---------------------------------------------------------------------------
// Typed round trips: mixed scalar / string / vector arguments
// ---------------------------------------------------------------------------

std::atomic<int> g_touched{0};

TEST(RpcAsync, TypedMixedArgsRoundTrip) {
  std::atomic<bool> ok_string{false};
  std::atomic<bool> ok_vector{false};
  g_touched = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        // A void service auto-acks: call<void> returns only after it ran.
        rt.call<void>(1, "touch", int32_t{5});
        EXPECT_EQ(g_touched.load(), 5);
        std::string s = rt.call<std::string>(
            1, "describe", int32_t{-7}, std::string("abc"),
            std::vector<double>{1.5, 2.5}, uint8_t{9});
        ok_string = s == "a=-7 s=abc n=2 sum=4.0 b=9";
        // Empty vector and empty string are legal wire values.
        auto scaled = rt.call<std::vector<int64_t>>(
            1, "scale", std::vector<int64_t>{3, -4, 5}, int64_t{10});
        auto empty = rt.call<std::vector<int64_t>>(
            1, "scale", std::vector<int64_t>{}, int64_t{2});
        std::string echoed =
            rt.call<std::string>(1, "describe", int32_t{0}, std::string(),
                                 std::vector<double>{}, uint8_t{0});
        ok_vector = scaled == std::vector<int64_t>{30, -40, 50} &&
                    empty.empty() && echoed == "a=0 s= n=0 sum=0.0 b=0";
      },
      [](Runtime& rt) {
        rt.service("touch", [](RpcContext&, int32_t v) { g_touched = v; });
        rt.service("describe",
                   [](RpcContext&, int32_t a, std::string s,
                      std::vector<double> v, uint8_t b) -> std::string {
                     double sum = 0;
                     for (double d : v) sum += d;
                     char buf[128];
                     std::snprintf(buf, sizeof(buf),
                                   "a=%d s=%s n=%zu sum=%.1f b=%u", a,
                                   s.c_str(), v.size(), sum, b);
                     return std::string(buf);
                   });
        rt.service("scale",
                   [](RpcContext&, std::vector<int64_t> v,
                      int64_t k) -> std::vector<int64_t> {
                     for (int64_t& x : v) x *= k;
                     return v;
                   });
      });
  EXPECT_TRUE(ok_string.load());
  EXPECT_TRUE(ok_vector.load());
}

// ---------------------------------------------------------------------------
// Error paths: unknown service (remote and local), hash collision
// ---------------------------------------------------------------------------

TEST(RpcAsync, UnknownServiceFailsTheFuture) {
  std::atomic<bool> remote_failed{false};
  std::atomic<bool> local_failed{false};
  std::atomic<bool> typed_threw{false};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() != 0) return;
    auto fut = rt.call_async(1, "no-such-service", mad::PackBuffer());
    fut.wait();
    remote_failed =
        fut.failed() && fut.error().find("unknown service") != std::string::npos;
    auto self_fut = rt.call_async(0, "also-missing", mad::PackBuffer());
    self_fut.wait();
    local_failed = self_fut.failed();
    try {
      rt.call<uint64_t>(1, "no-such-service");
    } catch (const RpcError&) {
      typed_threw = true;
    }
  });
  EXPECT_TRUE(remote_failed.load());
  EXPECT_TRUE(local_failed.load());
  EXPECT_TRUE(typed_threw.load());
}

// A service whose handler throws (here: a nested blocking call to an
// unknown downstream service) must fail its caller's future — not hang the
// caller, not terminate the node.
TEST(RpcAsync, ServiceFailurePropagatesToCaller) {
  std::atomic<bool> propagated{false};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        auto fut = rt.call_async<uint64_t>(1, "relay");
        fut.wait();
        propagated = fut.failed() &&
                     fut.error().find("service failed") != std::string::npos;
      },
      [](Runtime& rt) {
        rt.service("relay", [](RpcContext&) -> uint64_t {
          return current_runtime().call<uint64_t>(0, "missing-downstream");
        });
      });
  EXPECT_TRUE(propagated.load());
}

TEST(RpcAsyncDeath, ServiceNameHashCollisionChecks) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // "dhgbbe" and "hcagfa" FNV-1a-collide on 0x1cc08a29.
  ASSERT_EQ(service_id("dhgbbe"), service_id("hcagfa"));
  EXPECT_DEATH(
      {
        AppConfig cfg;
        cfg.nodes = 1;
        run_app(
            cfg, [](Runtime&) {},
            [](Runtime& rt) {
              rt.service("dhgbbe", [](RpcContext&) {});
              rt.service("hcagfa", [](RpcContext&) {});
            });
      },
      "collision");
}

TEST(RpcAsyncDeath, DoubleReplyChecks) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        AppConfig cfg;
        cfg.nodes = 2;
        run_app(
            cfg,
            [](Runtime& rt) {
              if (rt.self() == 0)
                rt.call(1, "twice", mad::PackBuffer());
            },
            [](Runtime& rt) {
              rt.service_raw("twice", [](RpcContext& ctx) {
                mad::PackBuffer a;
                a.pack<uint32_t>(1);
                ctx.reply(std::move(a));
                mad::PackBuffer b;
                b.pack<uint32_t>(2);
                ctx.reply(std::move(b));
              });
            });
      },
      "double reply");
}

// ---------------------------------------------------------------------------
// migrate_async: ack ordering vs migrations_in(), and failure modes
// ---------------------------------------------------------------------------

std::atomic<bool> g_stop_worker{false};
std::atomic<uint64_t> g_worker_final_node{99};

void yielding_worker(void*) {
  while (!g_stop_worker.load()) pm2_yield();
  g_worker_final_node = pm2_self();
  pm2_signal(pm2_self());
}

TEST(RpcAsync, MigrateAsyncAcksAfterInstall) {
  g_stop_worker = false;
  g_worker_final_node = 99;
  std::atomic<bool> ack_ok{false};
  std::atomic<uint64_t> dest_migrations_at_ack{0};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      marcel::ThreadId id = rt.spawn(&yielding_worker, nullptr, "roamer");
      auto fut = rt.migrate_async(id, 1);
      MigrateResult res = fut.take();
      ack_ok = res.thread == id && res.dest == 1;
      EXPECT_EQ(rt.migrations_out(), 1u);
      g_stop_worker = true;  // worker now yields on node 1; let it finish
    } else {
      rt.wait_signals(1);  // worker exited here
      dest_migrations_at_ack = rt.migrations_in();
    }
  });
  EXPECT_TRUE(ack_ok.load());
  // The ack (and thus the future) completed only after the destination
  // counted the arrival: by the time the worker ran there, the count shows.
  EXPECT_EQ(dest_migrations_at_ack.load(), 1u);
  EXPECT_EQ(g_worker_final_node.load(), 1u);
}

TEST(RpcAsync, MigrateAsyncFailureModes) {
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() != 0) return;
    // Unknown thread: fails, never hangs.
    auto missing = rt.migrate_async(0xdeadbeef, 1);
    missing.wait();
    EXPECT_TRUE(missing.failed());
    // Pinned thread (spawn_local refuses to migrate): fails.
    std::atomic<bool> done{false};
    marcel::ThreadId pinned = rt.spawn_local([&] { done = true; }, "pinned");
    auto fut = rt.migrate_async(pinned, 1);
    fut.wait();
    EXPECT_TRUE(fut.failed());
    // Same-node migration completes immediately.
    auto self_dest = rt.migrate_async(pinned, 0);
    EXPECT_TRUE(self_dest.ready());
    EXPECT_EQ(self_dest.take().dest, 0u);
    rt.join(pinned);
    EXPECT_TRUE(done.load());
  });
}

// ---------------------------------------------------------------------------
// on_migration hooks fire on source (pre) and destination (post)
// ---------------------------------------------------------------------------

TEST(RpcAsync, MigrationHooksFire) {
  g_stop_worker = false;
  std::atomic<int> pre_on_node0{0};
  std::atomic<int> post_on_node1{0};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          marcel::ThreadId id = rt.spawn(&yielding_worker, nullptr, "hooked");
          rt.migrate_async(id, 1).take();
          g_stop_worker = true;
        } else {
          rt.wait_signals(1);
        }
      },
      [&](Runtime& rt) {
        // In setup: the migration may reach the destination before its
        // main thread ever runs.
        if (rt.self() == 0)
          rt.on_migration([&](marcel::Thread*) { ++pre_on_node0; }, nullptr);
        else
          rt.on_migration(nullptr, [&](marcel::Thread*) { ++post_on_node1; });
      });
  EXPECT_EQ(pre_on_node0.load(), 1);
  EXPECT_EQ(post_on_node1.load(), 1);
}

// ---------------------------------------------------------------------------
// halt() drains pending calls: blocked callers wake with an error
// ---------------------------------------------------------------------------

TEST(RpcAsync, ShutdownDrainsPendingCalls) {
  std::atomic<bool> sync_drained{false};
  std::atomic<bool> async_drained{false};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        // Two victims, parked before main returns: one in the blocking
        // call (throws), one on a bare future (fails).  "blackhole"
        // exits without replying, so only the halt drain can wake them.
        rt.spawn_local([&] {
          try {
            rt.call<uint64_t>(1, "blackhole");
          } catch (const RpcError&) {
            sync_drained = true;
          }
        });
        rt.spawn_local([&] {
          auto fut = rt.call_async(1, "blackhole", mad::PackBuffer());
          fut.wait();
          async_drained = fut.failed() &&
                          fut.error().find("shutdown") != std::string::npos;
        });
        for (int i = 0; i < 50; ++i) pm2_yield();  // let both park
      },
      [](Runtime& rt) {
        // Untyped registration: manual reply control — and this service
        // never replies (a typed void service would auto-ack).
        rt.service_raw("blackhole", [](RpcContext&) {});
      });
  EXPECT_TRUE(sync_drained.load());
  EXPECT_TRUE(async_drained.load());
}

}  // namespace
}  // namespace pm2
