// Madeleine pack/unpack buffer and BufferChain tests.
#include "madeleine/buffers.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

namespace pm2::mad {
namespace {

TEST(PackBuffer, ScalarsRoundTrip) {
  PackBuffer pack;
  pack.pack<uint32_t>(7);
  pack.pack<uint64_t>(0xAABBCCDDEEFF0011ull);
  pack.pack_string("madeleine");
  auto wire = pack.finalize();

  UnpackBuffer unpack(wire);
  EXPECT_EQ(unpack.unpack<uint32_t>(), 7u);
  EXPECT_EQ(unpack.unpack<uint64_t>(), 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(unpack.unpack_string(), "madeleine");
  EXPECT_TRUE(unpack.exhausted());
}

TEST(PackBuffer, CopyModeDetachesFromSource) {
  char src[16] = "original";
  PackBuffer pack;
  pack.pack_region(src, sizeof(src), PackMode::kCopy);
  std::memcpy(src, "clobbered", 10);  // mutate after packing
  auto wire = pack.finalize();

  UnpackBuffer unpack(wire);
  char out[16];
  EXPECT_EQ(unpack.unpack_region(out, sizeof(out)), sizeof(src));
  EXPECT_STREQ(out, "original");
}

TEST(PackBuffer, BorrowModeReadsAtFinalize) {
  char src[16] = "original";
  PackBuffer pack;
  pack.pack_region(src, sizeof(src), PackMode::kBorrow);
  std::memcpy(src, "mutated!", 9);  // borrowed: finalize sees the new bytes
  auto wire = pack.finalize();

  UnpackBuffer unpack(wire);
  char out[16];
  unpack.unpack_region(out, sizeof(out));
  EXPECT_STREQ(out, "mutated!");
}

TEST(PackBuffer, MixedSegmentsPreserveOrder) {
  std::vector<uint8_t> big(1000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  PackBuffer pack;
  pack.pack<uint32_t>(1);
  pack.pack_bytes(big.data(), big.size(), PackMode::kBorrow);
  pack.pack<uint32_t>(2);
  EXPECT_EQ(pack.size(), 4 + 1000 + 4);
  auto wire = pack.finalize();

  UnpackBuffer unpack(wire);
  EXPECT_EQ(unpack.unpack<uint32_t>(), 1u);
  std::vector<uint8_t> out(1000);
  unpack.unpack_bytes(out.data(), out.size());
  EXPECT_EQ(out, big);
  EXPECT_EQ(unpack.unpack<uint32_t>(), 2u);
}

TEST(PackBuffer, FinalizeResets) {
  PackBuffer pack;
  pack.pack<uint32_t>(1);
  pack.finalize();
  EXPECT_EQ(pack.size(), 0u);
  pack.pack<uint32_t>(2);
  auto wire = pack.finalize();
  UnpackBuffer unpack(wire);
  EXPECT_EQ(unpack.unpack<uint32_t>(), 2u);
}

TEST(UnpackBuffer, RegionView) {
  PackBuffer pack;
  pack.pack_region("zerocopy", 8);
  auto wire = pack.finalize();
  UnpackBuffer unpack(wire);
  size_t len = 0;
  const uint8_t* p = unpack.unpack_region_view(&len);
  EXPECT_EQ(len, 8u);
  EXPECT_EQ(std::memcmp(p, "zerocopy", 8), 0);
}

TEST(UnpackBufferDeath, RegionOverflowAborts) {
  PackBuffer pack;
  pack.pack_region("0123456789", 10);
  auto wire = pack.finalize();
  UnpackBuffer unpack(wire);
  char small[4];
  EXPECT_DEATH(unpack.unpack_region(small, sizeof(small)), "too small");
}

TEST(PackBuffer, EmptyRegion) {
  PackBuffer pack;
  pack.pack_region(nullptr, 0);
  auto wire = pack.finalize();
  UnpackBuffer unpack(wire);
  size_t len = 7;
  unpack.unpack_region_view(&len);
  EXPECT_EQ(len, 0u);
  EXPECT_TRUE(unpack.exhausted());
}

// --- BufferChain -------------------------------------------------------------

TEST(BufferChain, SegmentsGatherInOrder) {
  BufferChain chain;
  char ext[8] = "borrow!";
  chain.append_copy("abc", 3);
  chain.append_borrow(ext, 7);
  chain.append_copy("xyz", 3);
  EXPECT_EQ(chain.size(), 13u);
  EXPECT_EQ(chain.copied_bytes(), 6u);
  EXPECT_EQ(chain.borrowed_bytes(), 7u);

  auto flat = chain.flatten();
  EXPECT_EQ(std::string(flat.begin(), flat.end()), "abcborrow!xyz");
}

TEST(BufferChain, AdjacentCopiesMergeIntoOneSegment) {
  BufferChain chain;
  chain.append_copy("ab", 2);
  chain.append_copy("cd", 2);
  EXPECT_EQ(chain.segments().size(), 1u);
  EXPECT_EQ(chain.segments()[0].len, 4u);
}

TEST(BufferChain, SealDetachesBorrowedMemory) {
  char src[16] = "volatile bytes!";
  BufferChain chain;
  chain.append_copy("hdr:", 4);
  chain.append_borrow(src, 15);
  size_t copied = chain.seal();
  EXPECT_EQ(copied, chain.size());  // seal gathers into one owned chunk
  EXPECT_EQ(chain.borrowed_bytes(), 0u);
  std::memset(src, 'X', sizeof(src));  // sealed: source may now die
  auto flat = chain.take_flat();
  EXPECT_EQ(std::string(flat.begin(), flat.end()), "hdr:volatile bytes!");
  EXPECT_EQ(chain.seal(), 0u);  // owned-only chains seal for free
}

TEST(BufferChain, TakeFlatMovesSingleOwnedChunk) {
  BufferChain chain;
  std::vector<uint8_t> big(100000, 0x5A);
  chain.append_copy(big.data(), big.size());
  const uint8_t* before = chain.segments()[0].data;
  auto flat = chain.take_flat();
  // Single owned chunk: the storage moved, no gather copy happened.
  EXPECT_EQ(flat.data(), before);
  EXPECT_EQ(flat.size(), 100000u);
  EXPECT_TRUE(chain.empty());
}

TEST(BufferChain, AppendChainSplicesWithoutCopying) {
  char ext[6] = "tail!";
  BufferChain a, b;
  a.append_copy("head:", 5);
  b.append_borrow(ext, 5);
  const uint8_t* borrowed_ptr = b.segments()[0].data;
  a.append_chain(std::move(b));
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a.borrowed_bytes(), 5u);
  // The spliced borrow still points at the caller's memory.
  EXPECT_EQ(a.segments().back().data, borrowed_ptr);
  auto flat = a.flatten();
  EXPECT_EQ(std::string(flat.begin(), flat.end()), "head:tail!");
}

// Property test: across randomized pack sequences, the chain's
// gather-serialization is byte-identical to the flat finalize() of an
// identically packed buffer, and the segment walk covers exactly size()
// bytes.  This is the invariant the whole zero-copy pipeline rests on.
TEST(BufferChain, GatherMatchesFlatFinalizeOnRandomSequences) {
  std::mt19937_64 rng(0xC0FFEE);
  // Stable pool for borrowed regions (must outlive the chains).
  std::vector<std::vector<uint8_t>> pool;
  for (int i = 0; i < 64; ++i) {
    std::vector<uint8_t> v(1 + rng() % 5000);
    for (auto& byte : v) byte = static_cast<uint8_t>(rng());
    pool.push_back(std::move(v));
  }

  for (int round = 0; round < 100; ++round) {
    PackBuffer flat_pack;
    PackBuffer chain_pack;
    auto both = [&](auto&& op) {
      op(flat_pack);
      op(chain_pack);
    };
    int ops = 1 + static_cast<int>(rng() % 24);
    for (int i = 0; i < ops; ++i) {
      switch (rng() % 5) {
        case 0:
          both([&, v = rng()](PackBuffer& p) { p.pack<uint64_t>(v); });
          break;
        case 1:
          both([&, v = static_cast<uint32_t>(rng())](PackBuffer& p) {
            p.pack<uint32_t>(v);
          });
          break;
        case 2: {
          const auto& r = pool[rng() % pool.size()];
          both([&](PackBuffer& p) {
            p.pack_region(r.data(), r.size(), PackMode::kCopy);
          });
          break;
        }
        case 3: {
          const auto& r = pool[rng() % pool.size()];
          both([&](PackBuffer& p) {
            p.pack_region(r.data(), r.size(), PackMode::kBorrow);
          });
          break;
        }
        case 4:
          both([&, s = std::string(rng() % 40, 'q')](PackBuffer& p) {
            p.pack_string(s);
          });
          break;
      }
    }
    ASSERT_EQ(flat_pack.size(), chain_pack.size());

    std::vector<uint8_t> flat = flat_pack.finalize();
    BufferChain chain = chain_pack.take_chain();
    ASSERT_EQ(chain.size(), flat.size());
    ASSERT_EQ(chain.copied_bytes() + chain.borrowed_bytes(), chain.size());

    // Segment walk covers the payload exactly and in order.
    size_t seg_total = 0;
    std::vector<uint8_t> gathered;
    gathered.reserve(chain.size());
    for (const auto& seg : chain.segments()) {
      seg_total += seg.len;
      gathered.insert(gathered.end(), seg.data, seg.data + seg.len);
    }
    ASSERT_EQ(seg_total, chain.size());
    ASSERT_EQ(gathered, flat) << "round " << round;
    // And the built-in gather agrees.
    ASSERT_EQ(chain.flatten(), flat);
    ASSERT_EQ(chain.take_flat(), flat);
  }
}

}  // namespace
}  // namespace pm2::mad
