// Madeleine pack/unpack buffer tests.
#include "madeleine/buffers.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace pm2::mad {
namespace {

TEST(PackBuffer, ScalarsRoundTrip) {
  PackBuffer pack;
  pack.pack<uint32_t>(7);
  pack.pack<uint64_t>(0xAABBCCDDEEFF0011ull);
  pack.pack_string("madeleine");
  auto wire = pack.finalize();

  UnpackBuffer unpack(wire);
  EXPECT_EQ(unpack.unpack<uint32_t>(), 7u);
  EXPECT_EQ(unpack.unpack<uint64_t>(), 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(unpack.unpack_string(), "madeleine");
  EXPECT_TRUE(unpack.exhausted());
}

TEST(PackBuffer, CopyModeDetachesFromSource) {
  char src[16] = "original";
  PackBuffer pack;
  pack.pack_region(src, sizeof(src), PackMode::kCopy);
  std::memcpy(src, "clobbered", 10);  // mutate after packing
  auto wire = pack.finalize();

  UnpackBuffer unpack(wire);
  char out[16];
  EXPECT_EQ(unpack.unpack_region(out, sizeof(out)), sizeof(src));
  EXPECT_STREQ(out, "original");
}

TEST(PackBuffer, BorrowModeReadsAtFinalize) {
  char src[16] = "original";
  PackBuffer pack;
  pack.pack_region(src, sizeof(src), PackMode::kBorrow);
  std::memcpy(src, "mutated!", 9);  // borrowed: finalize sees the new bytes
  auto wire = pack.finalize();

  UnpackBuffer unpack(wire);
  char out[16];
  unpack.unpack_region(out, sizeof(out));
  EXPECT_STREQ(out, "mutated!");
}

TEST(PackBuffer, MixedSegmentsPreserveOrder) {
  std::vector<uint8_t> big(1000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  PackBuffer pack;
  pack.pack<uint32_t>(1);
  pack.pack_bytes(big.data(), big.size(), PackMode::kBorrow);
  pack.pack<uint32_t>(2);
  EXPECT_EQ(pack.size(), 4 + 1000 + 4);
  auto wire = pack.finalize();

  UnpackBuffer unpack(wire);
  EXPECT_EQ(unpack.unpack<uint32_t>(), 1u);
  std::vector<uint8_t> out(1000);
  unpack.unpack_bytes(out.data(), out.size());
  EXPECT_EQ(out, big);
  EXPECT_EQ(unpack.unpack<uint32_t>(), 2u);
}

TEST(PackBuffer, FinalizeResets) {
  PackBuffer pack;
  pack.pack<uint32_t>(1);
  pack.finalize();
  EXPECT_EQ(pack.size(), 0u);
  pack.pack<uint32_t>(2);
  auto wire = pack.finalize();
  UnpackBuffer unpack(wire);
  EXPECT_EQ(unpack.unpack<uint32_t>(), 2u);
}

TEST(UnpackBuffer, RegionView) {
  PackBuffer pack;
  pack.pack_region("zerocopy", 8);
  auto wire = pack.finalize();
  UnpackBuffer unpack(wire);
  size_t len = 0;
  const uint8_t* p = unpack.unpack_region_view(&len);
  EXPECT_EQ(len, 8u);
  EXPECT_EQ(std::memcmp(p, "zerocopy", 8), 0);
}

TEST(UnpackBufferDeath, RegionOverflowAborts) {
  PackBuffer pack;
  pack.pack_region("0123456789", 10);
  auto wire = pack.finalize();
  UnpackBuffer unpack(wire);
  char small[4];
  EXPECT_DEATH(unpack.unpack_region(small, sizeof(small)), "too small");
}

TEST(PackBuffer, EmptyRegion) {
  PackBuffer pack;
  pack.pack_region(nullptr, 0);
  auto wire = pack.finalize();
  UnpackBuffer unpack(wire);
  size_t len = 7;
  unpack.unpack_region_view(&len);
  EXPECT_EQ(len, 0u);
  EXPECT_TRUE(unpack.exhausted());
}

}  // namespace
}  // namespace pm2::mad
