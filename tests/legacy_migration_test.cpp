// Baseline (registered-pointer) migration tests — paper §2, Fig. 3.
#include "pm2/legacy_migration.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sys/sanitizer.hpp"

namespace pm2::legacy {
namespace {

#ifndef PM2_ASM_CONTEXT
// Relocation needs the assembly context layout.
#define SKIP_WITHOUT_ASM() GTEST_SKIP() << "asm context switch disabled"
#else
#define SKIP_WITHOUT_ASM()
#endif

// Thread bodies that survive relocate() run UNINSTRUMENTED under ASan
// (PM2_NO_SANITIZE_ADDRESS): instrumentation materializes extra
// stack-address-holding frame bases that the legacy scheme's heuristic
// patcher cannot see — the paper's compiler-dependence criticism made
// literal.  The relocation machinery, the driver, and every assertion
// stay fully instrumented.

void simple_body(LegacyThread& self, void* arg) {
  auto* out = static_cast<int*>(arg);
  *out = 1;
  self.yield();
  *out = 2;
}

TEST(LegacyThread, RunYieldFinish) {
  int out = 0;
  LegacyThread t(64 * 1024, &simple_body, &out);
  EXPECT_FALSE(t.finished());
  t.resume();
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(t.finished());
  EXPECT_GT(t.used_stack(), 0u);
  t.resume();
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(t.finished());
}

// The core demonstration: an UNREGISTERED pointer to stack data keeps its
// old value after relocation (Fig. 2's failure mode), while a REGISTERED
// one is patched (Fig. 3).
struct PtrProbe {
  void* registered_before = nullptr;
  void* registered_after = nullptr;
  void* unregistered_before = nullptr;
  void* unregistered_after = nullptr;
  int value_via_registered = 0;
};

PM2_NO_SANITIZE_ADDRESS void pointer_body(LegacyThread& self, void* arg) {
  auto* probe = static_cast<PtrProbe*>(arg);
  volatile int x = 41;                        // stack local
  int* reg_ptr = const_cast<int*>(&x);        // will be registered
  // Unregistered pointer *held in stack memory* (volatile defeats the
  // callee-saved-register heuristic): nothing can know it needs patching.
  int* volatile raw_ptr = const_cast<int*>(&x);
  uint32_t key = self.register_pointer(reinterpret_cast<void**>(&reg_ptr));

  probe->registered_before = reg_ptr;
  probe->unregistered_before = raw_ptr;
  self.yield();  // relocation happens here

  probe->registered_after = reg_ptr;
  probe->unregistered_after = raw_ptr;
  x = 42;
  probe->value_via_registered = *reg_ptr;  // must see 42 through new address
  self.unregister_pointer(key);
}

TEST(LegacyThread, RegisteredPointerPatchedUnregisteredStale) {
  SKIP_WITHOUT_ASM();
  PtrProbe probe;
  LegacyThread t(64 * 1024, &pointer_body, &probe);
  t.resume();
  ptrdiff_t delta = t.relocate();
  ASSERT_NE(delta, 0);
  t.resume();
  EXPECT_TRUE(t.finished());
  // Registered pointer moved by exactly the relocation distance.
  EXPECT_EQ(static_cast<char*>(probe.registered_after),
            static_cast<char*>(probe.registered_before) + delta);
  EXPECT_EQ(probe.value_via_registered, 42);
  // Unregistered pointer silently kept the stale address — the paper's
  // Fig. 2 segfault in embryo.
  EXPECT_EQ(probe.unregistered_after, probe.unregistered_before);
}

// Deep call chains: the saved-rbp frame chain must be patched link by link.
PM2_NO_SANITIZE_ADDRESS int deep_recursion(LegacyThread& self, int depth) {
  // Force a real frame: local consumed after the recursive call.
  volatile int local = depth;
  if (depth > 0) {
    int below = deep_recursion(self, depth - 1);
    return below + local;
  }
  self.yield();  // relocate at maximum depth
  return local;
}

PM2_NO_SANITIZE_ADDRESS void deep_body(LegacyThread& self, void* arg) {
  *static_cast<int*>(arg) = deep_recursion(self, 30);
}

TEST(LegacyThread, DeepFrameChainSurvivesRelocation) {
  SKIP_WITHOUT_ASM();
  int result = -1;
  LegacyThread t(256 * 1024, &deep_body, &result);
  t.resume();
  EXPECT_GT(t.used_stack(), 0u);  // (the optimizer may flatten some frames)
  t.relocate();
  t.resume();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(result, 30 * 31 / 2);  // sum 0..30
}

// Many registered pointers: the cost model of bench E6.
PM2_NO_SANITIZE_ADDRESS void many_pointers_body(LegacyThread& self, void* arg) {
  auto* ok = static_cast<bool*>(arg);
  constexpr int kN = 64;
  int values[kN];
  int* ptrs[kN];
  uint32_t keys[kN];
  for (int i = 0; i < kN; ++i) {
    values[i] = i * 3;
    ptrs[i] = &values[i];
    keys[i] = self.register_pointer(reinterpret_cast<void**>(&ptrs[i]));
  }
  self.yield();
  *ok = true;
  for (int i = 0; i < kN; ++i) {
    if (*ptrs[i] != i * 3) *ok = false;
    self.unregister_pointer(keys[i]);
  }
}

TEST(LegacyThread, SixtyFourRegisteredPointers) {
  SKIP_WITHOUT_ASM();
  bool ok = false;
  LegacyThread t(128 * 1024, &many_pointers_body, &ok);
  t.resume();
  EXPECT_EQ(t.registered_count(), 64u);
  t.relocate();
  t.resume();
  EXPECT_TRUE(ok);
  EXPECT_EQ(t.registered_count(), 0u);
  EXPECT_TRUE(t.finished());
}

TEST(LegacyThread, RepeatedRelocations) {
  SKIP_WITHOUT_ASM();
  PtrProbe probe;
  LegacyThread t(64 * 1024, &pointer_body, &probe);
  t.resume();
  // Two relocations back to back before resuming: the registry must track
  // the moving locations.
  t.relocate();
  t.relocate();
  t.resume();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(probe.value_via_registered, 42);
}

TEST(LegacyThreadDeath, UnregisterUnknownKeyDies) {
  int out = 0;
  LegacyThread t(64 * 1024, &simple_body, &out);
  EXPECT_DEATH(t.unregister_pointer(999), "unknown pointer key");
}

}  // namespace
}  // namespace pm2::legacy
