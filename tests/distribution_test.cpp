// Initial slot distribution policies (paper §4.1).
#include "isomalloc/distribution.hpp"

#include <gtest/gtest.h>

namespace pm2::iso {
namespace {

std::vector<pm2::Bitmap> all_bitmaps(Distribution d, size_t slots,
                                     uint32_t nodes, size_t block = 16) {
  std::vector<pm2::Bitmap> v;
  for (uint32_t n = 0; n < nodes; ++n)
    v.push_back(initial_bitmap(d, slots, n, nodes, block));
  return v;
}

TEST(Distribution, RoundRobinPattern) {
  auto b = initial_bitmap(Distribution::kRoundRobin, 16, 1, 4);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(b.test(i), i % 4 == 1) << i;
}

TEST(Distribution, BlockCyclicPattern) {
  auto b = initial_bitmap(Distribution::kBlockCyclic, 32, 0, 2, 4);
  for (size_t i = 0; i < 32; ++i)
    EXPECT_EQ(b.test(i), (i / 4) % 2 == 0) << i;
}

TEST(Distribution, PartitionedPattern) {
  auto b0 = initial_bitmap(Distribution::kPartitioned, 100, 0, 3);
  auto b2 = initial_bitmap(Distribution::kPartitioned, 100, 2, 3);
  EXPECT_TRUE(b0.all_set(0, 33));
  EXPECT_TRUE(b0.none_set(33, 67));
  // Last node absorbs the remainder.
  EXPECT_TRUE(b2.all_set(66, 34));
  EXPECT_EQ(b2.count(), 34u);
}

class DistributionPartition
    : public ::testing::TestWithParam<std::tuple<Distribution, uint32_t>> {};

TEST_P(DistributionPartition, EverySlotOwnedExactlyOnce) {
  auto [dist, nodes] = GetParam();
  auto bitmaps = all_bitmaps(dist, 1024, nodes);
  EXPECT_TRUE(is_partition(bitmaps));
  EXPECT_TRUE(is_disjoint(bitmaps));
}

TEST_P(DistributionPartition, FairShare) {
  auto [dist, nodes] = GetParam();
  auto bitmaps = all_bitmaps(dist, 1024, nodes);
  for (const auto& b : bitmaps) {
    EXPECT_NEAR(static_cast<double>(b.count()), 1024.0 / nodes,
                16.0 + 1024.0 / nodes * 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DistributionPartition,
    ::testing::Combine(::testing::Values(Distribution::kRoundRobin,
                                         Distribution::kBlockCyclic,
                                         Distribution::kPartitioned),
                       ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u)));

TEST(Distribution, RoundRobinHasNoLongRunsMultiNode) {
  // The paper: round-robin "behaves rather poorly for multi-slot
  // allocations" — no node owns 2 contiguous slots.
  auto b = initial_bitmap(Distribution::kRoundRobin, 256, 0, 2);
  EXPECT_FALSE(b.find_run(2).has_value());
}

TEST(Distribution, PartitionedHasMaximalRuns) {
  auto b = initial_bitmap(Distribution::kPartitioned, 256, 0, 2);
  EXPECT_TRUE(b.find_run(128).has_value());
}

TEST(Distribution, StringRoundTrip) {
  EXPECT_EQ(distribution_from_string("round-robin"), Distribution::kRoundRobin);
  EXPECT_EQ(distribution_from_string("rr"), Distribution::kRoundRobin);
  EXPECT_EQ(distribution_from_string("block-cyclic"),
            Distribution::kBlockCyclic);
  EXPECT_EQ(distribution_from_string("partitioned"),
            Distribution::kPartitioned);
  EXPECT_STREQ(to_string(Distribution::kRoundRobin), "round-robin");
}

TEST(Distribution, IsPartitionDetectsOverlap) {
  std::vector<pm2::Bitmap> v;
  v.emplace_back(10);
  v.emplace_back(10);
  v[0].set_range(0, 6);
  v[1].set_range(5, 5);  // slot 5 owned twice
  EXPECT_FALSE(is_disjoint(v));
  EXPECT_FALSE(is_partition(v));
}

TEST(Distribution, IsPartitionDetectsHole) {
  std::vector<pm2::Bitmap> v;
  v.emplace_back(10);
  v.emplace_back(10);
  v[0].set_range(0, 5);
  v[1].set_range(5, 4);  // slot 9 unowned
  EXPECT_TRUE(is_disjoint(v));
  EXPECT_FALSE(is_partition(v));
}

}  // namespace
}  // namespace pm2::iso
