// RPC depth and volume: chained calls across nodes, large payloads, many
// concurrent service threads, services that spawn threads and migrate.
//
// The suite also runs in the chaos CI leg (active PM2_FAULT_PLAN), where
// requests and replies can be dropped and the configured PM2_RPC_TIMEOUT_MS
// turns each loss into a clean kTimeout.  Idempotent request/response tests
// retry on timeout; fire-and-forget tests skip (one-way rpc() has no
// retransmit, so a dropped request is silently lost by design).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "fabric/fault_fabric.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<int> g_fanout_done{0};

bool chaos_mode() { return fabric::FaultPlan::from_env().active(); }

// Retry a typed call until it succeeds; anything but a timeout is a real
// failure.  Safe only for idempotent services — a retry can re-execute the
// handler when the request arrived but the reply was lost.
template <typename R, typename... Args>
R call_retry(Runtime& rt, uint32_t node, const char* service_name,
             const Args&... args) {
  for (int attempt = 0;; ++attempt) {
    auto fut = rt.call_async<R>(node, service_name, args...);
    fut.wait();
    if (!fut.failed()) return fut.take();
    PM2_CHECK(rpc_error_code(fut.error()) == RpcErrorCode::kTimeout)
        << fut.error();
    PM2_CHECK(attempt < 100) << "call kept timing out: " << fut.error();
  }
}

// Chain: node k forwards (value+1) to node k+1; the last node replies back
// down the chain.  Exercises call<R>() reentrancy: a service thread itself
// blocks in a nested typed call.
uint64_t chain_service(RpcContext&, uint64_t value, uint32_t ttl) {
  if (ttl == 0) return value;
  Runtime& rt = *Runtime::current();
  return call_retry<uint64_t>(rt, (rt.self() + 1) % rt.n_nodes(), "chain",
                              value + 1, ttl - 1);
}

TEST(RpcStress, TwelveHopChainAcrossFourNodes) {
  std::atomic<uint64_t> result{0};
  AppConfig cfg;
  cfg.rt.workers = 4;  // whole file runs multi-worker: SMP dispatch under load
  cfg.nodes = 4;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          // 12 forwarding hops
          result =
              call_retry<uint64_t>(rt, 1, "chain", uint64_t{100}, uint32_t{12});
        }
      },
      [&](Runtime& rt) { rt.service("chain", &chain_service); });
  EXPECT_EQ(result.load(), 112u);
}

void big_echo_service(RpcContext& ctx) {
  size_t len = 0;
  const uint8_t* data = ctx.args().unpack_region_view(&len);
  // Verify the pattern, then echo it back.
  for (size_t i = 0; i < len; i += 997)
    PM2_CHECK(data[i] == static_cast<uint8_t>(i * 31));
  mad::PackBuffer reply;
  reply.pack_region(data, len);
  ctx.reply(std::move(reply));
}

TEST(RpcStress, MegabytePayloadRoundTrip) {
  std::atomic<bool> ok{false};
  AppConfig cfg;
  cfg.rt.workers = 4;  // whole file runs multi-worker: SMP dispatch under load
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          std::vector<uint8_t> blob(2 * 1024 * 1024);
          for (size_t i = 0; i < blob.size(); ++i)
            blob[i] = static_cast<uint8_t>(i * 31);
          // The raw call moves its args, so each retry rebuilds them.
          for (int attempt = 0; !ok.load(); ++attempt) {
            mad::PackBuffer args;
            args.pack_region(blob.data(), blob.size());
            try {
              auto resp = rt.call(1, "big-echo", std::move(args));
              mad::UnpackBuffer r(resp);
              size_t len = 0;
              const uint8_t* back = r.unpack_region_view(&len);
              ok = len == blob.size() &&
                   std::memcmp(back, blob.data(), len) == 0;
            } catch (const RpcError& e) {
              PM2_CHECK(rpc_error_code(e.what()) == RpcErrorCode::kTimeout)
                  << e.what();
              PM2_CHECK(attempt < 100) << "call kept timing out: " << e.what();
            }
          }
        }
      },
      [&](Runtime& rt) {
        // Raw registration: region views need manual args()/reply()
        // control (the typed layer would copy the payload into a vector).
        rt.service_raw("big-echo", &big_echo_service);
      });
  EXPECT_TRUE(ok.load());
}

void fanout_service(RpcContext& ctx, uint32_t token) {
  (void)token;
  ++g_fanout_done;
  pm2_signal(ctx.source_node());
}

TEST(RpcStress, HundredConcurrentServiceThreads) {
  if (chaos_mode())
    GTEST_SKIP() << "one-way rpc() has no retransmit; a dropped request is "
                    "lost by design";
  g_fanout_done = 0;
  AppConfig cfg;
  cfg.rt.workers = 4;  // whole file runs multi-worker: SMP dispatch under load
  cfg.nodes = 3;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          for (uint32_t i = 0; i < 100; ++i) rt.rpc(1 + i % 2, "fanout", i);
          rt.wait_signals(100);
        }
      },
      [&](Runtime& rt) { rt.service("fanout", &fanout_service); });
  EXPECT_EQ(g_fanout_done.load(), 100);
}

// A service that migrates mid-execution: the paper's LRPC + migration
// composition.  The typed layer unpacks the (node-local) args into
// parameters before the handler runs, so they are safe across the move.
void migrating_service(RpcContext&, uint32_t target) {
  auto* stamp = static_cast<uint32_t*>(pm2_isomalloc(sizeof(uint32_t)));
  *stamp = pm2_self();
  pm2_migrate(marcel_self(), target);
  PM2_CHECK(pm2_self() == target);
  PM2_CHECK(*stamp != target) << "service did not actually move";
  pm2_isofree(stamp);
  pm2_signal(0);
}

TEST(RpcStress, ServiceThreadItselfMigrates) {
  if (chaos_mode())
    GTEST_SKIP() << "one-way rpc() has no retransmit; a dropped request is "
                    "lost by design";
  AppConfig cfg;
  cfg.rt.workers = 4;  // whole file runs multi-worker: SMP dispatch under load
  cfg.nodes = 3;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          // service starts on 1, must end on 2
          rt.rpc(1, "migrating", uint32_t{2});
          rt.wait_signals(1);
        }
      },
      [&](Runtime& rt) { rt.service("migrating", &migrating_service); });
}

TEST(RpcStress, BarrierStormManyRounds) {
  std::atomic<int> rounds_done{0};
  AppConfig cfg;
  cfg.rt.workers = 4;  // whole file runs multi-worker: SMP dispatch under load
  cfg.nodes = 4;
  run_app(cfg, [&](Runtime& rt) {
    for (int round = 0; round < 50; ++round) rt.barrier();
    ++rounds_done;
  });
  EXPECT_EQ(rounds_done.load(), 4);
}

}  // namespace
}  // namespace pm2
