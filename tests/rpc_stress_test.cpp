// RPC depth and volume: chained calls across nodes, large payloads, many
// concurrent service threads, services that spawn threads and migrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<uint32_t> g_chain_service{0};
std::atomic<uint32_t> g_echo_service{0};
std::atomic<int> g_fanout_done{0};

// Chain: node k forwards (value+1) to node k+1; the last node replies back
// down the chain.  Exercises call() reentrancy: a service thread itself
// blocks in call().
void chain_service(RpcContext& ctx) {
  auto value = ctx.args().unpack<uint64_t>();
  auto ttl = ctx.args().unpack<uint32_t>();
  Runtime& rt = *Runtime::current();
  uint64_t result;
  if (ttl == 0) {
    result = value;
  } else {
    mad::PackBuffer fwd;
    fwd.pack<uint64_t>(value + 1);
    fwd.pack<uint32_t>(ttl - 1);
    auto resp = rt.call((rt.self() + 1) % rt.n_nodes(),
                        g_chain_service.load(), std::move(fwd));
    result = mad::UnpackBuffer(resp).unpack<uint64_t>();
  }
  mad::PackBuffer reply;
  reply.pack<uint64_t>(result);
  ctx.reply(std::move(reply));
}

TEST(RpcStress, TwelveHopChainAcrossFourNodes) {
  std::atomic<uint64_t> result{0};
  AppConfig cfg;
  cfg.nodes = 4;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          mad::PackBuffer args;
          args.pack<uint64_t>(100);
          args.pack<uint32_t>(12);  // 12 forwarding hops
          auto resp = rt.call(1, g_chain_service.load(), std::move(args));
          result = mad::UnpackBuffer(resp).unpack<uint64_t>();
        }
      },
      [&](Runtime& rt) {
        g_chain_service = rt.register_service("chain", &chain_service);
      });
  EXPECT_EQ(result.load(), 112u);
}

void big_echo_service(RpcContext& ctx) {
  size_t len = 0;
  const uint8_t* data = ctx.args().unpack_region_view(&len);
  // Verify the pattern, then echo it back.
  for (size_t i = 0; i < len; i += 997)
    PM2_CHECK(data[i] == static_cast<uint8_t>(i * 31));
  mad::PackBuffer reply;
  reply.pack_region(data, len);
  ctx.reply(std::move(reply));
}

TEST(RpcStress, MegabytePayloadRoundTrip) {
  std::atomic<bool> ok{false};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          std::vector<uint8_t> blob(2 * 1024 * 1024);
          for (size_t i = 0; i < blob.size(); ++i)
            blob[i] = static_cast<uint8_t>(i * 31);
          mad::PackBuffer args;
          args.pack_region(blob.data(), blob.size());
          auto resp = rt.call(1, g_echo_service.load(), std::move(args));
          mad::UnpackBuffer r(resp);
          size_t len = 0;
          const uint8_t* back = r.unpack_region_view(&len);
          ok = len == blob.size() &&
               std::memcmp(back, blob.data(), len) == 0;
        }
      },
      [&](Runtime& rt) {
        g_echo_service = rt.register_service("big-echo", &big_echo_service);
      });
  EXPECT_TRUE(ok.load());
}

void fanout_service(RpcContext& ctx) {
  auto token = ctx.args().unpack<uint32_t>();
  (void)token;
  ++g_fanout_done;
  pm2_signal(ctx.source_node());
}

TEST(RpcStress, HundredConcurrentServiceThreads) {
  g_fanout_done = 0;
  std::atomic<uint32_t> svc{0};
  AppConfig cfg;
  cfg.nodes = 3;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          for (uint32_t i = 0; i < 100; ++i) {
            mad::PackBuffer args;
            args.pack<uint32_t>(i);
            rt.rpc(1 + i % 2, svc.load(), std::move(args));
          }
          rt.wait_signals(100);
        }
      },
      [&](Runtime& rt) {
        svc = rt.register_service("fanout", &fanout_service);
      });
  EXPECT_EQ(g_fanout_done.load(), 100);
}

// A service that migrates mid-execution: the paper's LRPC + migration
// composition.  It must consume its (node-local) args before moving.
void migrating_service(RpcContext& ctx) {
  auto target = ctx.args().unpack<uint32_t>();  // consume BEFORE migrating
  auto* stamp = static_cast<uint32_t*>(pm2_isomalloc(sizeof(uint32_t)));
  *stamp = pm2_self();
  pm2_migrate(marcel_self(), target);
  PM2_CHECK(pm2_self() == target);
  PM2_CHECK(*stamp != target) << "service did not actually move";
  pm2_isofree(stamp);
  pm2_signal(0);
}

TEST(RpcStress, ServiceThreadItselfMigrates) {
  std::atomic<uint32_t> svc{0};
  AppConfig cfg;
  cfg.nodes = 3;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() == 0) {
          mad::PackBuffer args;
          args.pack<uint32_t>(2);  // service starts on 1, must end on 2
          rt.rpc(1, svc.load(), std::move(args));
          rt.wait_signals(1);
        }
      },
      [&](Runtime& rt) {
        svc = rt.register_service("migrating", &migrating_service);
      });
}

TEST(RpcStress, BarrierStormManyRounds) {
  std::atomic<int> rounds_done{0};
  AppConfig cfg;
  cfg.nodes = 4;
  run_app(cfg, [&](Runtime& rt) {
    for (int round = 0; round < 50; ++round) rt.barrier();
    ++rounds_done;
  });
  EXPECT_EQ(rounds_done.load(), 4);
}

}  // namespace
}  // namespace pm2
