// sys::ChaseLevDeque unit and race tests.
//
// The protocol's one delicate spot is the single-element race: the owner's
// pop_bottom and a thief's steal both see `top == bottom - 1` and the CAS on
// `top` must hand the element to exactly one of them.  The stress tests here
// hammer that window directly (tiny deque, constant refill) and account for
// every element exactly once; the plain tests pin the FIFO/LIFO orders and
// ring growth the scheduler relies on.
#include "sys/chase_lev.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pm2::sys {
namespace {

struct Item {
  explicit Item(int v) : value(v) {}
  int value;
};

TEST(ChaseLev, OwnerLifoPop) {
  ChaseLevDeque<Item> d;
  Item a(1), b(2), c(3);
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.pop_bottom(), &c);
  EXPECT_EQ(d.pop_bottom(), &b);
  EXPECT_EQ(d.pop_bottom(), &a);
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(ChaseLev, StealIsFifo) {
  // The scheduler's owner dequeue IS steal() — top-end takes must come out
  // in push order for round-robin dispatch fairness.
  ChaseLevDeque<Item> d;
  Item a(1), b(2), c(3);
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.steal(), &a);
  EXPECT_EQ(d.steal(), &b);
  EXPECT_EQ(d.steal(), &c);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  ChaseLevDeque<Item> d(8);
  EXPECT_EQ(d.capacity(), 8u);
  std::vector<Item> items;
  items.reserve(100);
  for (int i = 0; i < 100; ++i) items.emplace_back(i);
  for (Item& it : items) d.push_bottom(&it);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_GE(d.capacity(), 128u);
  // FIFO order survives the copies across ring generations.
  for (int i = 0; i < 100; ++i) {
    Item* x = d.steal();
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(x->value, i);
  }
  EXPECT_TRUE(d.empty());
}

TEST(ChaseLev, InterleavedPushPopWrapsRing) {
  // Ring indices are monotone; wrap the mask boundary many times.
  ChaseLevDeque<Item> d(8);
  Item pool[4] = {Item(0), Item(1), Item(2), Item(3)};
  for (int round = 0; round < 1000; ++round) {
    for (Item& it : pool) d.push_bottom(&it);
    for (int i = 0; i < 4; ++i) ASSERT_NE(d.pop_bottom(), nullptr);
  }
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.capacity(), 8u);  // never needed to grow
}

// One owner pushing/popping a deque that hovers at 0-2 elements, N thieves
// stealing: the single-element CAS race fires constantly.  Every item
// carries a take-counter; at the end each must have been taken exactly as
// many times as it was pushed.
TEST(ChaseLev, OneElementOwnerVsThiefRace) {
  constexpr int kThieves = 3;
  constexpr int kRounds = 50'000;
  ChaseLevDeque<Item> d(8);
  Item item(7);
  std::atomic<uint64_t> taken{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (d.steal() != nullptr) taken.fetch_add(1);
      }
    });
  }

  uint64_t pushed = 0;
  for (int r = 0; r < kRounds; ++r) {
    d.push_bottom(&item);
    ++pushed;
    Item* x = d.pop_bottom();
    if (x != nullptr) {
      ASSERT_EQ(x, &item);
      taken.fetch_add(1);
    }
    // If the thief won, the deque is empty and pop returned nullptr — the
    // element must have been counted on the thief side instead.
  }
  // Drain whatever is still in flight, then stop the thieves.
  while (taken.load() < pushed) {
    if (d.steal() != nullptr) taken.fetch_add(1);
  }
  stop.store(true);
  for (auto& t : thieves) t.join();
  EXPECT_EQ(taken.load(), pushed) << "an element was lost or duplicated";
  EXPECT_TRUE(d.empty());
}

// Bulk conservation: owner feeds K distinct items through the deque while
// thieves drain; each item must come out exactly once per generation.
TEST(ChaseLev, StealStormConservesElements) {
  constexpr int kThieves = 4;
  constexpr int kItems = 64;
  constexpr int kGenerations = 500;
  ChaseLevDeque<Item> d(8);  // forces growth under contention too
  std::vector<Item> items;
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) items.emplace_back(i);
  std::vector<std::atomic<uint32_t>> counts(kItems);
  for (auto& c : counts) c.store(0);
  std::atomic<bool> stop{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Item* x = d.steal();
        if (x != nullptr) counts[static_cast<size_t>(x->value)].fetch_add(1);
      }
    });
  }

  for (int gen = 0; gen < kGenerations; ++gen) {
    for (Item& it : items) d.push_bottom(&it);
    // Owner helps drain from the bottom.
    Item* x;
    while ((x = d.pop_bottom()) != nullptr)
      counts[static_cast<size_t>(x->value)].fetch_add(1);
    // Wait until this generation is fully consumed before the next, so a
    // per-item count below kGenerations pins a *lost* element, not skew.
    uint64_t expect = static_cast<uint64_t>(gen + 1) * kItems;
    for (;;) {
      uint64_t total = 0;
      for (auto& c : counts) total += c.load();
      if (total >= expect) break;
      Item* y = d.steal();
      if (y != nullptr) counts[static_cast<size_t>(y->value)].fetch_add(1);
    }
  }
  stop.store(true);
  for (auto& t : thieves) t.join();
  for (int i = 0; i < kItems; ++i)
    EXPECT_EQ(counts[static_cast<size_t>(i)].load(),
              static_cast<uint32_t>(kGenerations))
        << "item " << i << " lost or duplicated";
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace pm2::sys
