// Regression guards for the event-driven comm path (PR 3).
//
// The blocking-RPC latency bug: the reply wake-up used to bounce through a
// blind busy-poll window (starving the peer node of the core), a fixed 1 ms
// recv timeout and a round-robin lap before the caller ran — ~400 µs per
// blocking call on the in-process hub, and marcel sleeps overslept by the
// poll interval on idle nodes.  These tests fail loudly if that shape of
// bug returns; the bounds are generous multiples of the event-driven
// path's cost so they stay green on slow shared CI runners.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/time.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"
#include "sys/sanitizer.hpp"

namespace pm2 {
namespace {

// Wall-clock ceilings are meaningless under ASan/UBSan/TSan and in -O0
// debug builds: instrumentation (or the absence of the optimizer)
// multiplies every path by a hardware-dependent factor, and a flaky
// instrumented job would push the suite back onto an exclusion list.
// Those runs still execute every call and sleep — asserting behaviour
// (results, ordering, lower bounds) — and only the timing ceilings are
// waived.  The optimized tier-1 leg keeps the guard.
#ifdef NDEBUG
constexpr bool kOptimizedBuild = true;
#else
constexpr bool kOptimizedBuild = false;
#endif
constexpr bool kCheckCeilings = kOptimizedBuild && !sys::kAsan && !sys::kTsan;

// A blocking call on the in-process hub completes in single-digit µs when
// the comm daemons park on the fabric's readiness handle, the reply hands
// off directly to the caller, and the service thread is re-armed from the
// invocation pool (PR 4) instead of built per call.  The old poll-bounce
// path cost ~400 µs per call and the pre-pool path ~4.3 µs; the ceiling
// sits far above the fixed path (~3 µs on the 1-core dev box) and far
// below either regression shape, with slack for slow shared CI runners.
TEST(Latency, InprocBlockingCallStaysMicroseconds) {
  constexpr int kCalls = 300;
  constexpr double kCeilingUsPerCall = 50.0;
  std::atomic<uint64_t> total_ns{0};
  AppConfig cfg;
  cfg.nodes = 2;
  run_app(
      cfg,
      [&](Runtime& rt) {
        if (rt.self() != 0) return;
        rt.call<uint64_t>(1, "echo", uint64_t{0});  // warm the path
        Stopwatch sw;
        for (int i = 0; i < kCalls; ++i) {
          uint64_t r = rt.call<uint64_t>(1, "echo", static_cast<uint64_t>(i));
          ASSERT_EQ(r, static_cast<uint64_t>(i) + 1);
        }
        total_ns = sw.elapsed_ns();
      },
      [](Runtime& rt) {
        rt.service("echo",
                   [](RpcContext&, uint64_t v) -> uint64_t { return v + 1; });
      });
  double us_per_call = static_cast<double>(total_ns.load()) / 1e3 / kCalls;
  if (kCheckCeilings) {
    EXPECT_LT(us_per_call, kCeilingUsPerCall)
        << "blocking-call latency regressed: " << us_per_call
        << " us/call — the reply wake-up path is bouncing through poll "
           "windows again";
  }
}

// Sub-millisecond sleeps on an otherwise idle node must wake near their
// deadline: the comm daemon bounds its fabric wait by the scheduler's next
// timer.  The old path only fired timers between 1 ms recv timeouts, so
// twenty 500 µs sleeps took >25 ms; event-driven they take ~10-12 ms.
TEST(Latency, SleepAccurateOnIdleNode) {
  constexpr int kSleeps = 20;
  constexpr uint64_t kSleepUs = 500;
  std::atomic<uint64_t> total_ns{0};
  AppConfig cfg;
  cfg.nodes = 2;  // node 1 idles: both daemons must park, not poll
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() != 0) return;
    Stopwatch sw;
    for (int i = 0; i < kSleeps; ++i) pm2_sleep_us(kSleepUs);
    total_ns = sw.elapsed_ns();
  });
  uint64_t floor_ns = uint64_t{kSleeps} * kSleepUs * 1000;
  EXPECT_GE(total_ns.load(), floor_ns) << "sleeps returned early";
  if (kCheckCeilings) {
    EXPECT_LT(total_ns.load(), 2 * floor_ns)
        << "idle-node sleeps overslept: " << total_ns.load() / 1000
        << " us for " << kSleeps << " x " << kSleepUs
        << " us — expired timers are waiting on a fixed recv timeout again";
  }
}

// Under load the deadline still holds: a second thread keeps the node busy
// while the sleeper's timer must fire between dispatches.
TEST(Latency, SleepUnderLoadStillBounded) {
  std::atomic<uint64_t> elapsed_us{0};
  std::atomic<bool> stop{false};
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [&](Runtime& rt) {
    rt.spawn_local([&] {
      while (!stop.load()) pm2_yield();
    });
    Stopwatch sw;
    pm2_sleep_us(5000);
    elapsed_us = static_cast<uint64_t>(sw.elapsed_us());
    stop = true;
  });
  EXPECT_GE(elapsed_us.load(), 5000u);
  if (kCheckCeilings) {
    EXPECT_LT(elapsed_us.load(), 100000u);
  }
}

}  // namespace
}  // namespace pm2
