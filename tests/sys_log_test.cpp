// sys-layer primitives (poller, stream helpers, process spawn) and the
// logging front-end.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "common/log.hpp"
#include "sys/process.hpp"
#include "sys/socket.hpp"

namespace pm2 {
namespace {

TEST(SysSocket, SendRecvAllOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  sys::Fd a(fds[0]), b(fds[1]);

  std::vector<char> out(100000);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<char>(i * 7);
  std::thread writer([&] { sys::send_all(a, out.data(), out.size()); });
  std::vector<char> in(out.size());
  EXPECT_TRUE(sys::recv_all(b, in.data(), in.size()));
  writer.join();
  EXPECT_EQ(in, out);
}

TEST(SysSocket, RecvAllReportsEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  sys::Fd a(fds[0]), b(fds[1]);
  a.reset();  // close the writer
  char buf[4];
  EXPECT_FALSE(sys::recv_all(b, buf, sizeof(buf)));
}

TEST(SysSocket, PollerSignalsReadiness) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  sys::Fd a(fds[0]), b(fds[1]);
  sys::Poller poller;
  poller.add(b.get(), 42);

  EXPECT_TRUE(poller.wait(0).empty());  // nothing yet
  char byte = 1;
  sys::send_all(a, &byte, 1);
  auto tags = poller.wait(1000);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], 42u);

  // Drain and remove: no further events.
  char sink;
  sys::recv_all(b, &sink, 1);
  poller.remove(b.get());
  sys::send_all(a, &byte, 1);
  EXPECT_TRUE(poller.wait(10).empty());
}

TEST(SysSocket, FdMoveSemantics) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  sys::Fd a(fds[0]);
  sys::Fd b(fds[1]);
  sys::Fd moved = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(moved.valid());
  int raw = moved.release();
  EXPECT_FALSE(moved.valid());
  ::close(raw);
}

TEST(SysProcess, SpawnSelfExeAndWait) {
  // The test binary exits 0 when run with a filter matching nothing but
  // --gtest_list_tests.
  std::string exe = sys::self_exe();
  EXPECT_FALSE(exe.empty());
  pid_t pid = sys::spawn(exe, {"--gtest_list_tests"}, {});
  EXPECT_EQ(sys::wait_child(pid), 0);
}

TEST(SysProcess, ExitStatusPropagates) {
  pid_t pid = sys::spawn("/bin/sh", {"-c", "exit 7"}, {});
  EXPECT_EQ(sys::wait_child(pid), 7);
}

TEST(SysProcess, EnvReachesChild) {
  pid_t pid = sys::spawn("/bin/sh", {"-c", "test \"$PM2_TEST_ENV\" = yes"},
                         {"PM2_TEST_ENV=yes"});
  EXPECT_EQ(sys::wait_child(pid), 0);
}

TEST(Log, LevelGatingAndThreadTag) {
  auto old = log::level();
  log::set_level(log::Level::kError);
  EXPECT_LT(static_cast<int>(log::level()), static_cast<int>(log::Level::kInfo));
  // These must be cheap no-ops at kError (behavioural: just must not crash).
  PM2_INFO << "suppressed";
  PM2_DEBUG << "suppressed";
  log::set_thread_node(5);
  EXPECT_EQ(log::thread_node(), 5);
  PM2_ERROR << "visible error with node tag (stderr)";
  log::set_thread_node(-1);
  log::set_level(old);
}

TEST(Log, EnvInitParsesLevels) {
  auto old = log::level();
  ::setenv("PM2_LOG", "trace", 1);
  log::init_from_env();
  EXPECT_EQ(log::level(), log::Level::kTrace);
  ::setenv("PM2_LOG", "warn", 1);
  log::init_from_env();
  EXPECT_EQ(log::level(), log::Level::kWarn);
  ::unsetenv("PM2_LOG");
  log::set_level(old);
}

}  // namespace
}  // namespace pm2
