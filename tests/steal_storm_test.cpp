// Steal-storm stress: keep every worker's Chase-Lev deque hovering at zero
// or one element while thieves hammer it, so the owner-pop-vs-thief-steal
// CAS race and the handoff-mailbox path fire continuously.  Run at
// workers == 1 (parity with the historical single-loop scheduler: no
// thieves, everything through the deque) and workers == 4 (the storm).
// The CI TSan and chaos legs run this binary as well.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "marcel/scheduler.hpp"

namespace pm2::marcel {
namespace {

constexpr size_t kRegion = 64 * 1024;

struct Pool {
  std::vector<void*> regions;
  void* take() {
    void* p = std::aligned_alloc(64, kRegion);
    regions.push_back(p);
    return p;
  }
  ~Pool() {
    for (void* p : regions) std::free(p);
  }
};

void exit_now() {
  Scheduler::current_scheduler()->exit_current([](Thread*) {});
}

// --- one-element churn -----------------------------------------------------

struct ChurnCtx {
  std::atomic<uint64_t>* laps;  // one slot per thread: exactly-once proof
  int index;
  int iters;
};

void churn_entry(void* arg) {
  auto* c = static_cast<ChurnCtx*>(arg);
  for (int i = 0; i < c->iters; ++i) {
    // A second dispatcher running this context concurrently would corrupt
    // the stack long before the lap count went wrong, but the count is the
    // readable assertion: every yield epoch happens exactly once.
    c->laps[c->index].fetch_add(1, std::memory_order_relaxed);
    Scheduler::current_scheduler()->yield();
  }
  exit_now();
}

void run_storm(uint32_t workers, int threads, int iters,
               bool expect_steals) {
  Pool pool;
  Scheduler sched(workers);
  std::vector<std::atomic<uint64_t>> laps(static_cast<size_t>(threads));
  for (auto& l : laps) l.store(0);
  std::vector<ChurnCtx> ctxs;
  ctxs.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i)
    ctxs.push_back(ChurnCtx{laps.data(), i, iters});
  for (int i = 0; i < threads; ++i)
    sched.create(pool.take(), kRegion, &churn_entry, &ctxs[static_cast<size_t>(i)],
                 static_cast<ThreadId>(i + 1), "storm");
  sched.stop();
  sched.run();
  for (int i = 0; i < threads; ++i)
    EXPECT_EQ(laps[static_cast<size_t>(i)].load(),
              static_cast<uint64_t>(iters))
        << "thread " << i << " lost or repeated a lap";
  if (expect_steals) {
    uint64_t steals = 0;
    for (const WorkerStats& s : sched.worker_stats()) steals += s.steals;
    EXPECT_GT(steals, 0u) << "storm never exercised the steal path";
  }
}

TEST(StealStorm, Workers1Parity) {
  // Single worker: no thieves exist; the deque carries the full FIFO.
  run_storm(1, 8, 2000, /*expect_steals=*/false);
}

TEST(StealStorm, Workers4OneElementDeques) {
  // workers + 1 threads over 4 workers: at any instant at most one deque
  // holds more than one element, so nearly every steal is the one-element
  // race against the owner's pop.
  run_storm(4, 5, 20'000, /*expect_steals=*/true);
}

TEST(StealStorm, Workers4ManyThreads) {
  // Heavier mix: enough threads that drain/refill, inbox pushes from
  // remote unblocks, and deque growth all occur under contention.
  run_storm(4, 64, 2000, /*expect_steals=*/true);
}

// --- handoff-mailbox storm -------------------------------------------------
// Ping-pong pairs through block()/unblock(front=true): every wakeup goes
// through the single-slot handoff mailbox, and concurrent unblocks toward
// the same worker displace each other into the inbox.

struct PingCtx {
  ThreadId a_id;
  std::atomic<int> rounds{0};
  int target_rounds;
};

void ping_a(void* arg) {
  auto* c = static_cast<PingCtx*>(arg);
  Scheduler* s = Scheduler::current_scheduler();
  for (int i = 0; i < c->target_rounds; ++i) {
    s->block();
    c->rounds.fetch_add(1, std::memory_order_relaxed);
  }
  exit_now();
}

void ping_b(void* arg) {
  auto* c = static_cast<PingCtx*>(arg);
  Scheduler* s = Scheduler::current_scheduler();
  Thread* a = s->find(c->a_id);
  if (a == nullptr) {
    ADD_FAILURE() << "partner " << c->a_id << " not registered";
    exit_now();
  }
  for (int i = 0; i < c->target_rounds; ++i) {
    // Wait for A to be parked for round i+1: rounds == i proves A consumed
    // exactly i wakeups, and the kBlocked it stores afterwards is the new
    // park (our own unblock overwrote the previous one with kReady, so a
    // stale read cannot satisfy both conditions).
    while (!(c->rounds.load(std::memory_order_relaxed) == i &&
             a->state == ThreadState::kBlocked)) {
      s->yield();
    }
    s->unblock(a, /*front=*/true);
  }
  exit_now();
}

void run_pingpong(uint32_t workers, int pairs, int rounds) {
  Pool pool;
  Scheduler sched(workers);
  std::vector<PingCtx> ctxs(static_cast<size_t>(pairs));
  for (int p = 0; p < pairs; ++p) {
    auto& c = ctxs[static_cast<size_t>(p)];
    c.a_id = static_cast<ThreadId>(2 * p + 1);
    c.target_rounds = rounds;
    sched.create(pool.take(), kRegion, &ping_a, &c, c.a_id, "ping-a");
    sched.create(pool.take(), kRegion, &ping_b, &c,
                 static_cast<ThreadId>(2 * p + 2), "ping-b");
  }
  sched.stop();
  sched.run();
  uint64_t handoffs = 0;
  for (const WorkerStats& s : sched.worker_stats()) handoffs += s.handoffs;
  for (int p = 0; p < pairs; ++p)
    EXPECT_EQ(ctxs[static_cast<size_t>(p)].rounds.load(), rounds)
        << "pair " << p << " dropped a wakeup";
  EXPECT_GE(handoffs, static_cast<uint64_t>(pairs) * rounds)
      << "front unblocks bypassed the handoff mailbox";
}

TEST(StealStorm, HandoffPingPongWorkers1) { run_pingpong(1, 2, 300); }

TEST(StealStorm, HandoffPingPongWorkers4) { run_pingpong(4, 8, 300); }

// --- opportunistic freeze under the storm ----------------------------------
// Un-gated freeze at workers > 1 is the targeted-thief tier: it must hold
// the exactly-once property (the frozen thread is in no container, nobody
// dispatches it) even while thieves fight over the same deques.  It MAY
// fail under churn — the assertion is that attempts succeed often enough
// and that no victim is ever lost or run twice.

struct OppCtx {
  std::atomic<bool> done{false};
  std::atomic<uint64_t>* laps;
  int n_victims;
  int freezes = 0;
};

void opp_churn_entry(void* arg) {
  auto* c = static_cast<OppCtx*>(arg);
  int self = static_cast<int>(Scheduler::self()->id) - 1;
  while (!c->done.load(std::memory_order_relaxed)) {
    c->laps[self].fetch_add(1, std::memory_order_relaxed);
    Scheduler::current_scheduler()->yield();
  }
  exit_now();
}

void opp_controller(void* arg) {
  auto* c = static_cast<OppCtx*>(arg);
  Scheduler* s = Scheduler::current_scheduler();
  for (int round = 0; round < 200; ++round) {
    Thread* t =
        s->find(static_cast<ThreadId>(round % c->n_victims + 1));
    // No pause_workers(): this exercises freeze_opportunistic.
    if (t != nullptr && s->freeze(t)) {
      ++c->freezes;
      // While frozen the victim is in no container: its lap counter must
      // not advance.
      int idx = static_cast<int>(t->id) - 1;
      uint64_t before = c->laps[idx].load(std::memory_order_relaxed);
      for (int spin = 0; spin < 20; ++spin) s->yield();
      EXPECT_EQ(c->laps[idx].load(std::memory_order_relaxed), before)
          << "a frozen thread kept running";
      s->unfreeze(t);
    }
    s->yield();
  }
  c->done.store(true);
  exit_now();
}

TEST(StealStorm, OpportunisticFreezeUnderStorm) {
  Pool pool;
  Scheduler sched(4);
  constexpr int kVictims = 8;
  std::vector<std::atomic<uint64_t>> laps(kVictims);
  for (auto& l : laps) l.store(0);
  OppCtx c;
  c.laps = laps.data();
  c.n_victims = kVictims;
  for (int i = 0; i < kVictims; ++i)
    sched.create(pool.take(), kRegion, &opp_churn_entry, &c,
                 static_cast<ThreadId>(i + 1), "v");
  sched.create(pool.take(), kRegion, &opp_controller, &c, 99, "ctl");
  sched.stop();
  sched.run();
  // Bounded-retry freezes may lose races, but across 200 attempts on 8
  // yield-churning victims a total blank means the tier is broken.
  EXPECT_GT(c.freezes, 0) << "opportunistic freeze never succeeded";
  for (int i = 0; i < kVictims; ++i)
    EXPECT_GT(laps[static_cast<size_t>(i)].load(), 0u);
}

}  // namespace
}  // namespace pm2::marcel
