// Message framing + in-process and socket fabrics.
#include "fabric/message.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "fabric/inproc.hpp"

namespace pm2::fabric {
namespace {

TEST(MessageCodec, RoundTrip) {
  Message in;
  in.type = 7;
  in.src = 1;
  in.dst = 2;
  in.corr = 0xDEADBEEF;
  in.payload = {1, 2, 3, 4, 5};

  std::vector<uint8_t> wire;
  encode(in, wire);
  EXPECT_EQ(wire.size(), in.wire_size());

  auto out = try_decode(wire);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, 7);
  EXPECT_EQ(out->src, 1u);
  EXPECT_EQ(out->dst, 2u);
  EXPECT_EQ(out->corr, 0xDEADBEEFu);
  EXPECT_EQ(out->payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(wire.empty());
}

TEST(MessageCodec, PartialFrameReturnsNothing) {
  Message in;
  in.type = 1;
  in.payload.assign(100, 9);
  std::vector<uint8_t> wire;
  encode(in, wire);

  std::vector<uint8_t> partial(wire.begin(), wire.begin() + 50);
  EXPECT_FALSE(try_decode(partial).has_value());
  EXPECT_EQ(partial.size(), 50u);  // untouched
}

TEST(MessageCodec, TwoFramesBackToBack) {
  std::vector<uint8_t> wire;
  Message a, b;
  a.type = 1;
  a.payload = {1};
  b.type = 2;
  b.payload = {2, 2};
  encode(a, wire);
  encode(b, wire);
  auto first = try_decode(wire);
  auto second = try_decode(wire);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->type, 1);
  EXPECT_EQ(second->type, 2);
  EXPECT_FALSE(try_decode(wire).has_value());
}

TEST(InProc, SendReceive) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  auto b = hub->endpoint(1);

  Message msg;
  msg.type = 42;
  msg.dst = 1;
  msg.payload = {9, 8, 7};
  a->send(std::move(msg));

  auto got = b->recv(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 42);
  EXPECT_EQ(got->src, 0u);
  EXPECT_EQ(got->payload, (std::vector<uint8_t>{9, 8, 7}));
}

TEST(InProc, TryRecvEmpty) {
  auto hub = std::make_shared<InProcHub>(1);
  auto a = hub->endpoint(0);
  EXPECT_FALSE(a->try_recv().has_value());
}

TEST(InProc, RecvTimeout) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  EXPECT_FALSE(a->recv(10).has_value());
}

TEST(InProc, FifoPerDestination) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  auto b = hub->endpoint(1);
  for (uint16_t i = 0; i < 100; ++i) {
    Message m;
    m.type = i;
    m.dst = 1;
    a->send(std::move(m));
  }
  for (uint16_t i = 0; i < 100; ++i) {
    auto got = b->try_recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, i);
  }
}

TEST(InProc, CrossThreadWakeup) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  auto b = hub->endpoint(1);

  std::thread sender([&] {
    Message m;
    m.type = 5;
    m.dst = 1;
    a->send(std::move(m));
  });
  auto got = b->recv(-1);
  sender.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 5);
}

TEST(InProc, SelfSend) {
  auto hub = std::make_shared<InProcHub>(1);
  auto a = hub->endpoint(0);
  Message m;
  m.type = 3;
  m.dst = 0;
  a->send(std::move(m));
  auto got = a->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 3);
}

TEST(InProc, CountsBytes) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  Message m;
  m.dst = 1;
  m.payload.assign(100, 1);
  a->send(std::move(m));
  EXPECT_EQ(a->messages_sent(), 1u);
  EXPECT_EQ(a->bytes_sent(), sizeof(WireHeader) + 100);
}

}  // namespace
}  // namespace pm2::fabric
