// Message framing + in-process and socket fabrics.
#include "fabric/message.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>

#include "common/time.hpp"
#include "fabric/inproc.hpp"

namespace pm2::fabric {
namespace {

TEST(MessageCodec, RoundTrip) {
  Message in;
  in.type = 7;
  in.src = 1;
  in.dst = 2;
  in.corr = 0xDEADBEEF;
  in.payload = {1, 2, 3, 4, 5};

  std::vector<uint8_t> wire;
  encode(in, wire);
  EXPECT_EQ(wire.size(), in.wire_size());

  auto out = try_decode(wire);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, 7);
  EXPECT_EQ(out->src, 1u);
  EXPECT_EQ(out->dst, 2u);
  EXPECT_EQ(out->corr, 0xDEADBEEFu);
  EXPECT_EQ(out->payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(wire.empty());
}

TEST(MessageCodec, PartialFrameReturnsNothing) {
  Message in;
  in.type = 1;
  in.payload.assign(100, 9);
  std::vector<uint8_t> wire;
  encode(in, wire);

  std::vector<uint8_t> partial(wire.begin(), wire.begin() + 50);
  EXPECT_FALSE(try_decode(partial).has_value());
  EXPECT_EQ(partial.size(), 50u);  // untouched
}

TEST(MessageCodec, TwoFramesBackToBack) {
  std::vector<uint8_t> wire;
  Message a, b;
  a.type = 1;
  a.payload = {1};
  b.type = 2;
  b.payload = {2, 2};
  encode(a, wire);
  encode(b, wire);
  auto first = try_decode(wire);
  auto second = try_decode(wire);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->type, 1);
  EXPECT_EQ(second->type, 2);
  EXPECT_FALSE(try_decode(wire).has_value());
}

TEST(InProc, SendReceive) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  auto b = hub->endpoint(1);

  Message msg;
  msg.type = 42;
  msg.dst = 1;
  msg.payload = {9, 8, 7};
  a->send(std::move(msg));

  auto got = b->recv(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 42);
  EXPECT_EQ(got->src, 0u);
  EXPECT_EQ(got->payload, (std::vector<uint8_t>{9, 8, 7}));
}

TEST(InProc, TryRecvEmpty) {
  auto hub = std::make_shared<InProcHub>(1);
  auto a = hub->endpoint(0);
  EXPECT_FALSE(a->try_recv().has_value());
}

TEST(InProc, RecvTimeout) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  EXPECT_FALSE(a->recv(10).has_value());
}

TEST(InProc, FifoPerDestination) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  auto b = hub->endpoint(1);
  for (uint16_t i = 0; i < 100; ++i) {
    Message m;
    m.type = i;
    m.dst = 1;
    a->send(std::move(m));
  }
  for (uint16_t i = 0; i < 100; ++i) {
    auto got = b->try_recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, i);
  }
}

TEST(InProc, CrossThreadWakeup) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  auto b = hub->endpoint(1);

  std::thread sender([&] {
    Message m;
    m.type = 5;
    m.dst = 1;
    a->send(std::move(m));
  });
  auto got = b->recv(-1);
  sender.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 5);
}

TEST(InProc, WakeInterruptsBlockedRecv) {
  // The waitable-readiness contract: wake() from another thread makes an
  // indefinitely blocked recv_until return promptly without a frame.
  auto hub = std::make_shared<InProcHub>(1);
  auto a = hub->endpoint(0);
  std::thread waker([&] { a->wake(); });
  Stopwatch sw;
  auto got = a->recv_until(now_ns() + 5'000'000'000ull);
  waker.join();
  EXPECT_FALSE(got.has_value());
  EXPECT_LT(sw.elapsed_ms(), 1000.0) << "wake() did not interrupt recv_until";
  // The wake latch is consumed: the next bounded recv times out normally.
  EXPECT_FALSE(a->recv(1).has_value());
}

TEST(InProc, RecvUntilDeadlineExpires) {
  auto hub = std::make_shared<InProcHub>(1);
  auto a = hub->endpoint(0);
  Stopwatch sw;
  EXPECT_FALSE(a->recv_until(now_ns() + 20'000'000).has_value());
  EXPECT_GE(sw.elapsed_ms(), 15.0);
}

TEST(InProc, SelfSend) {
  auto hub = std::make_shared<InProcHub>(1);
  auto a = hub->endpoint(0);
  Message m;
  m.type = 3;
  m.dst = 0;
  a->send(std::move(m));
  auto got = a->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 3);
}

TEST(MessageCodec, ChainedEncodeMatchesFlatEncode) {
  std::vector<uint8_t> bulk(4096);
  for (size_t i = 0; i < bulk.size(); ++i) bulk[i] = static_cast<uint8_t>(i);

  Message chained;
  chained.type = 9;
  chained.dst = 1;
  chained.corr = 42;
  chained.chain.append_copy("meta", 4);
  chained.chain.append_borrow(bulk.data(), bulk.size());
  chained.chain.append_copy("tail", 4);

  Message flat;
  flat.type = 9;
  flat.dst = 1;
  flat.corr = 42;
  flat.payload.insert(flat.payload.end(), {'m', 'e', 't', 'a'});
  flat.payload.insert(flat.payload.end(), bulk.begin(), bulk.end());
  flat.payload.insert(flat.payload.end(), {'t', 'a', 'i', 'l'});

  EXPECT_EQ(chained.wire_size(), flat.wire_size());
  std::vector<uint8_t> wire_chained, wire_flat;
  encode(chained, wire_chained);
  encode(flat, wire_flat);
  EXPECT_EQ(wire_chained, wire_flat);
}

// Chained messages must survive framing even when the stream arrives in
// arbitrary fragments (partial headers, split payloads) — the situation the
// socket fabric's scatter-read path deals with.
TEST(MessageCodec, ChainedRoundTripOverSplitReads) {
  std::mt19937_64 rng(1234);
  std::vector<uint8_t> bulk(100000);
  for (auto& b : bulk) b = static_cast<uint8_t>(rng());

  for (int round = 0; round < 20; ++round) {
    // A run of chained messages of varying shapes, encoded back to back.
    std::vector<uint8_t> stream;
    std::vector<std::vector<uint8_t>> expected;
    for (uint16_t i = 0; i < 8; ++i) {
      Message m;
      m.type = static_cast<uint16_t>(100 + i);
      m.dst = 1;
      size_t off = rng() % (bulk.size() / 2);
      size_t len = rng() % (bulk.size() - off);
      m.chain.append_copy(&i, sizeof(i));
      m.chain.append_borrow(bulk.data() + off, len);
      expected.push_back(m.chain.flatten());
      encode(m, stream);
    }

    // Feed the stream in random-sized slices.
    std::vector<uint8_t> rx;
    size_t fed = 0;
    size_t decoded = 0;
    while (decoded < expected.size()) {
      ASSERT_TRUE(fed < stream.size() || !rx.empty());
      size_t n = std::min<size_t>(1 + rng() % 40000, stream.size() - fed);
      rx.insert(rx.end(), stream.begin() + fed, stream.begin() + fed + n);
      fed += n;
      while (auto msg = try_decode(rx)) {
        ASSERT_LT(decoded, expected.size());
        EXPECT_EQ(msg->type, 100 + decoded);
        EXPECT_EQ(msg->payload, expected[decoded]);
        ++decoded;
      }
    }
    EXPECT_EQ(fed, stream.size());
    EXPECT_TRUE(rx.empty());
  }
}

TEST(InProc, ChainedSendSealsBorrowedMemory) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  auto b = hub->endpoint(1);

  std::vector<uint8_t> bulk(5000, 0xAB);
  Message m;
  m.type = 1;
  m.dst = 1;
  m.chain.append_copy("hdr", 3);
  m.chain.append_borrow(bulk.data(), bulk.size());
  size_t total = m.chain.size();
  a->send(std::move(m));
  // The hub took ownership: mutating the source must not affect delivery.
  std::fill(bulk.begin(), bulk.end(), uint8_t{0});
  // Only the transport's unavoidable ownership copy was paid.
  EXPECT_EQ(a->payload_copy_bytes(), total);

  auto got = b->recv(1000);
  ASSERT_TRUE(got.has_value());
  auto& flat = got->flat();
  EXPECT_EQ(flat.size(), total);
  EXPECT_EQ(std::memcmp(flat.data(), "hdr", 3), 0);
  EXPECT_TRUE(std::all_of(flat.begin() + 3, flat.end(),
                          [](uint8_t v) { return v == 0xAB; }));
}

TEST(InProc, OwnedChainMovesWithZeroCopies) {
  auto hub = std::make_shared<InProcHub>(1);
  auto a = hub->endpoint(0);
  Message m;
  m.dst = 0;
  m.chain.append_copy("fully owned payload", 19);
  a->send(std::move(m));
  // No borrowed segments: nothing to seal, nothing copied in transit.
  EXPECT_EQ(a->payload_copy_bytes(), 0u);
  auto got = a->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->flat().size(), 19u);
}

TEST(InProc, CountsBytes) {
  auto hub = std::make_shared<InProcHub>(2);
  auto a = hub->endpoint(0);
  Message m;
  m.dst = 1;
  m.payload.assign(100, 1);
  a->send(std::move(m));
  EXPECT_EQ(a->messages_sent(), 1u);
  EXPECT_EQ(a->bytes_sent(), sizeof(WireHeader) + 100);
}

}  // namespace
}  // namespace pm2::fabric
