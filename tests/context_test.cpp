// Raw context-switch primitive tests (the foundation of thread migration).
//
// These drive pm2_ctx_switch directly, without the scheduler — so they also
// carry the sanitizer fiber annotations directly, the same protocol every
// scheduler call site speaks (see sys/sanitizer.hpp): announce the target
// stack before each switch, finish on the new stack, null handle for first
// entries and final exits.
#include "marcel/context.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "sys/sanitizer.hpp"

namespace pm2::marcel {
namespace {

struct Bounce {
  void* main_sp = nullptr;
  void* thread_sp = nullptr;
  std::vector<int> trace;
  int rounds = 0;

  // Annotation bookkeeping: both stacks' extents and the parked fake-stack
  // handle of whichever side is currently switched out.
  void* fiber_lo = nullptr;
  size_t fiber_sz = 0;
  const void* main_lo = nullptr;
  size_t main_sz = 0;
  void* main_fake = nullptr;
  void* fiber_fake = nullptr;

  Bounce(void* stack, size_t stack_size) : fiber_lo(stack), fiber_sz(stack_size) {
    sys::san_current_stack(&main_lo, &main_sz);
  }
};

/// Main side: run the fiber until it switches back.
void enter_fiber(Bounce& b, void* sp) {
  sys::san_start_switch(&b.main_fake, b.fiber_lo, b.fiber_sz);
  pm2_ctx_switch(&b.main_sp, sp);
  sys::san_finish_switch(b.main_fake);
}

/// Fiber side: hand control back, resumable.
void fiber_yield(Bounce& b) {
  sys::san_start_switch(&b.fiber_fake, b.main_lo, b.main_sz);
  pm2_ctx_switch(&b.thread_sp, b.main_sp);
  sys::san_finish_switch(b.fiber_fake);
}

/// Fiber side: final switch away, never resumed.
void fiber_exit(Bounce& b) {
  sys::san_start_switch(nullptr, b.main_lo, b.main_sz);
  pm2_ctx_switch(&b.thread_sp, b.main_sp);
  abort();
}

void bounce_entry(void* arg) {
  auto* b = static_cast<Bounce*>(arg);
  for (int i = 0; i < b->rounds; ++i) {
    b->trace.push_back(100 + i);
    fiber_yield(*b);
  }
  b->trace.push_back(999);
  fiber_exit(*b);
}

TEST(Context, PingPongInterleaves) {
  constexpr size_t kStack = 64 * 1024;
  void* stack = std::aligned_alloc(16, kStack);
  Bounce b(stack, kStack);
  b.rounds = 3;
  void* sp = ctx_make(stack, static_cast<char*>(stack) + kStack,
                      &bounce_entry, &b);

  for (int i = 0; i < 3; ++i) {
    b.trace.push_back(i);
    enter_fiber(b, sp);
    sp = b.thread_sp;
  }
  enter_fiber(b, sp);  // lets the entry run to its 999 mark
  EXPECT_EQ(b.trace, (std::vector<int>{0, 100, 1, 101, 2, 102, 999}));
  std::free(stack);
}

// Locals must survive across switches (they live on the private stack).
void locals_entry(void* arg) {
  auto* b = static_cast<Bounce*>(arg);
  int local = 7;
  int* ptr = &local;  // self-referential stack pointer
  fiber_yield(*b);
  *ptr += 1;
  fiber_yield(*b);
  b->trace.push_back(local);
  fiber_exit(*b);
}

TEST(Context, StackLocalsSurviveSwitches) {
  constexpr size_t kStack = 64 * 1024;
  void* stack = std::aligned_alloc(16, kStack);
  Bounce b(stack, kStack);
  void* sp = ctx_make(stack, static_cast<char*>(stack) + kStack,
                      &locals_entry, &b);
  enter_fiber(b, sp);
  enter_fiber(b, b.thread_sp);
  enter_fiber(b, b.thread_sp);
  EXPECT_EQ(b.trace, std::vector<int>{8});
  std::free(stack);
}

// Floating-point state must be preserved across switches.
void fp_entry(void* arg) {
  auto* b = static_cast<Bounce*>(arg);
  double x = 1.5;
  fiber_yield(*b);
  x *= 2.0;
  b->trace.push_back(static_cast<int>(x * 10));
  fiber_exit(*b);
}

TEST(Context, FloatingPointSurvives) {
  constexpr size_t kStack = 64 * 1024;
  void* stack = std::aligned_alloc(16, kStack);
  Bounce b(stack, kStack);
  void* sp = ctx_make(stack, static_cast<char*>(stack) + kStack, &fp_entry,
                      &b);
  enter_fiber(b, sp);
  double main_side = 0.25 * 8;  // disturb FP state on the main context
  EXPECT_DOUBLE_EQ(main_side, 2.0);
  enter_fiber(b, b.thread_sp);
  EXPECT_EQ(b.trace, std::vector<int>{30});
  std::free(stack);
}

// The migration primitive in miniature: a yielded context is relocated by
// byte copy to the SAME address after the original is poisoned, proving the
// saved frame lives entirely within the stack bytes.
void relocate_entry(void* arg) {
  auto* b = static_cast<Bounce*>(arg);
  int magic = 4242;
  fiber_yield(*b);
  b->trace.push_back(magic);
  fiber_exit(*b);
}

TEST(Context, YieldedContextIsFullyContainedInStackBytes) {
  constexpr size_t kStack = 64 * 1024;
  void* stack = std::aligned_alloc(16, kStack);
  Bounce b(stack, kStack);
  void* sp = ctx_make(stack, static_cast<char*>(stack) + kStack,
                      &relocate_entry, &b);
  enter_fiber(b, sp);  // run to first yield

  // Snapshot the stack, poison the original, restore the snapshot: if any
  // context state lived outside the stack bytes, resumption would fail.
  // The yielded frames left redzone poison in shadow — scrub it so the
  // snapshot may read every byte, exactly like pack_thread_chain does
  // before the fabric reads a migrating stack.
  sys::san_unpoison(stack, kStack);
  std::vector<char> image(static_cast<char*>(stack),
                          static_cast<char*>(stack) + kStack);
  std::memset(stack, 0x5A, kStack);
  std::memcpy(stack, image.data(), kStack);

  enter_fiber(b, b.thread_sp);
  EXPECT_EQ(b.trace, std::vector<int>{4242});
  std::free(stack);
}

}  // namespace
}  // namespace pm2::marcel
