// Raw context-switch primitive tests (the foundation of thread migration).
#include "marcel/context.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

namespace pm2::marcel {
namespace {

struct Bounce {
  void* main_sp = nullptr;
  void* thread_sp = nullptr;
  std::vector<int> trace;
  int rounds = 0;
};

void bounce_entry(void* arg) {
  auto* b = static_cast<Bounce*>(arg);
  for (int i = 0; i < b->rounds; ++i) {
    b->trace.push_back(100 + i);
    pm2_ctx_switch(&b->thread_sp, b->main_sp);
  }
  b->trace.push_back(999);
  // Final switch away; never resumed.
  pm2_ctx_switch(&b->thread_sp, b->main_sp);
  abort();
}

TEST(Context, PingPongInterleaves) {
  constexpr size_t kStack = 64 * 1024;
  void* stack = std::aligned_alloc(16, kStack);
  Bounce b;
  b.rounds = 3;
  void* sp = ctx_make(stack, static_cast<char*>(stack) + kStack,
                      &bounce_entry, &b);

  for (int i = 0; i < 3; ++i) {
    b.trace.push_back(i);
    pm2_ctx_switch(&b.main_sp, sp);
    sp = b.thread_sp;
  }
  pm2_ctx_switch(&b.main_sp, sp);  // lets the entry run to its 999 mark
  EXPECT_EQ(b.trace, (std::vector<int>{0, 100, 1, 101, 2, 102, 999}));
  std::free(stack);
}

// Locals must survive across switches (they live on the private stack).
void locals_entry(void* arg) {
  auto* b = static_cast<Bounce*>(arg);
  int local = 7;
  int* ptr = &local;  // self-referential stack pointer
  pm2_ctx_switch(&b->thread_sp, b->main_sp);
  *ptr += 1;
  pm2_ctx_switch(&b->thread_sp, b->main_sp);
  b->trace.push_back(local);
  pm2_ctx_switch(&b->thread_sp, b->main_sp);
  abort();
}

TEST(Context, StackLocalsSurviveSwitches) {
  constexpr size_t kStack = 64 * 1024;
  void* stack = std::aligned_alloc(16, kStack);
  Bounce b;
  void* sp = ctx_make(stack, static_cast<char*>(stack) + kStack,
                      &locals_entry, &b);
  pm2_ctx_switch(&b.main_sp, sp);
  pm2_ctx_switch(&b.main_sp, b.thread_sp);
  pm2_ctx_switch(&b.main_sp, b.thread_sp);
  EXPECT_EQ(b.trace, std::vector<int>{8});
  std::free(stack);
}

// Floating-point state must be preserved across switches.
void fp_entry(void* arg) {
  auto* b = static_cast<Bounce*>(arg);
  double x = 1.5;
  pm2_ctx_switch(&b->thread_sp, b->main_sp);
  x *= 2.0;
  b->trace.push_back(static_cast<int>(x * 10));
  pm2_ctx_switch(&b->thread_sp, b->main_sp);
  abort();
}

TEST(Context, FloatingPointSurvives) {
  constexpr size_t kStack = 64 * 1024;
  void* stack = std::aligned_alloc(16, kStack);
  Bounce b;
  void* sp = ctx_make(stack, static_cast<char*>(stack) + kStack, &fp_entry,
                      &b);
  pm2_ctx_switch(&b.main_sp, sp);
  double main_side = 0.25 * 8;  // disturb FP state on the main context
  EXPECT_DOUBLE_EQ(main_side, 2.0);
  pm2_ctx_switch(&b.main_sp, b.thread_sp);
  EXPECT_EQ(b.trace, std::vector<int>{30});
  std::free(stack);
}

// The migration primitive in miniature: a yielded context is relocated by
// byte copy to the SAME address after the original is poisoned, proving the
// saved frame lives entirely within the stack bytes.
void relocate_entry(void* arg) {
  auto* b = static_cast<Bounce*>(arg);
  int magic = 4242;
  pm2_ctx_switch(&b->thread_sp, b->main_sp);
  b->trace.push_back(magic);
  pm2_ctx_switch(&b->thread_sp, b->main_sp);
  abort();
}

TEST(Context, YieldedContextIsFullyContainedInStackBytes) {
  constexpr size_t kStack = 64 * 1024;
  void* stack = std::aligned_alloc(16, kStack);
  Bounce b;
  void* sp = ctx_make(stack, static_cast<char*>(stack) + kStack,
                      &relocate_entry, &b);
  pm2_ctx_switch(&b.main_sp, sp);  // run to first yield

  // Snapshot the stack, poison the original, restore the snapshot: if any
  // context state lived outside the stack bytes, resumption would fail.
  std::vector<char> image(static_cast<char*>(stack),
                          static_cast<char*>(stack) + kStack);
  std::memset(stack, 0x5A, kStack);
  std::memcpy(stack, image.data(), kStack);

  pm2_ctx_switch(&b.main_sp, b.thread_sp);
  EXPECT_EQ(b.trace, std::vector<int>{4242});
  std::free(stack);
}

}  // namespace
}  // namespace pm2::marcel
