#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace pm2 {
namespace {

TEST(LatencyHistogram, BasicStats) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  h.record(1000);
  h.record(2000);
  h.record(3000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_ns(), 1000u);
  EXPECT_EQ(h.max_ns(), 3000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 2000.0);
}

TEST(LatencyHistogram, PercentileMonotone) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.record(i * 100);
  EXPECT_LE(h.percentile_ns(0.5), h.percentile_ns(0.9));
  EXPECT_LE(h.percentile_ns(0.9), h.percentile_ns(0.99));
  // p50 bucket upper bound should be within 2x of the true median.
  uint64_t p50 = h.percentile_ns(0.5);
  EXPECT_GE(p50, 50000u / 2);
  EXPECT_LE(p50, 50000u * 2 + 1);
}

TEST(LatencyHistogram, MergeAccumulates) {
  LatencyHistogram a, b;
  a.record(100);
  b.record(100000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min_ns(), 100u);
  EXPECT_EQ(a.max_ns(), 100000u);
}

TEST(LatencyHistogram, SummaryMentionsCount) {
  LatencyHistogram h;
  h.record(5000);
  EXPECT_NE(h.summary().find("count=1"), std::string::npos);
}

TEST(SlotStats, SummaryFormat) {
  SlotStats s;
  s.negotiations = 3;
  EXPECT_NE(s.summary().find("negotiations=3"), std::string::npos);
}

TEST(HeapStats, SummaryFormat) {
  HeapStats s;
  s.allocs = 11;
  EXPECT_NE(s.summary().find("allocs=11"), std::string::npos);
}

}  // namespace
}  // namespace pm2
