// Property/stress tests for migration: randomized traces of allocation,
// mutation, verification and hops across many threads and nodes — the
// system-level analogue of the heap trace property test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "common/random.hpp"
#include "isomalloc/heap.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/migration.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<bool> g_ok{true};
std::atomic<uint64_t> g_hops{0};

#define ST_EXPECT(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      g_ok = false;                                                    \
      pm2_printf("stress failure: %s line %d (node %u)\n", #cond,      \
                 __LINE__, pm2_self());                                \
    }                                                                  \
  } while (0)

// Each worker keeps a private table of (pointer, size, fill) in iso-memory
// and randomly allocates / frees / rewrites / verifies / migrates.
struct StressState {
  static constexpr int kMaxLive = 24;
  void* ptr[kMaxLive];
  uint32_t size[kMaxLive];
  uint8_t fill[kMaxLive];
  int live;
  uint64_t seed;
  int steps;
};

void stress_worker(void* arg) {
  auto seed = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(arg));
  // The state table itself must migrate too: put it in iso-memory.
  auto* st = static_cast<StressState*>(pm2_isomalloc(sizeof(StressState)));
  std::memset(st, 0, sizeof(*st));
  st->seed = seed;
  st->steps = 300;

  Rng rng(seed);
  uint32_t nodes = pm2_nodes();
  for (int step = 0; step < st->steps; ++step) {
    double dice = rng.next_double();
    if (dice < 0.30 && st->live < StressState::kMaxLive) {
      int i = st->live++;
      st->size[i] = static_cast<uint32_t>(rng.next_range(1, 20000));
      st->fill[i] = static_cast<uint8_t>(rng.next() | 1);
      st->ptr[i] = pm2_isomalloc(st->size[i]);
      std::memset(st->ptr[i], st->fill[i], st->size[i]);
    } else if (dice < 0.45 && st->live > 0) {
      int i = static_cast<int>(rng.next_below(st->live));
      pm2_isofree(st->ptr[i]);
      st->ptr[i] = st->ptr[st->live - 1];
      st->size[i] = st->size[st->live - 1];
      st->fill[i] = st->fill[st->live - 1];
      --st->live;
    } else if (dice < 0.65 && st->live > 0) {
      // Verify a random block end-to-end.
      int i = static_cast<int>(rng.next_below(st->live));
      auto* p = static_cast<uint8_t*>(st->ptr[i]);
      for (uint32_t k = 0; k < st->size[i]; k += 97)
        ST_EXPECT(p[k] == st->fill[i]);
    } else if (dice < 0.80 && st->live > 0) {
      // Rewrite with a new fill byte.
      int i = static_cast<int>(rng.next_below(st->live));
      st->fill[i] = static_cast<uint8_t>(rng.next() | 1);
      std::memset(st->ptr[i], st->fill[i], st->size[i]);
    } else if (nodes > 1) {
      auto dest = static_cast<uint32_t>(rng.next_below(nodes));
      pm2_migrate(marcel_self(), dest);
      ++g_hops;
    } else {
      pm2_yield();
    }
  }
  // Final verification + drain on whatever node we ended at.
  for (int i = 0; i < st->live; ++i) {
    auto* p = static_cast<uint8_t*>(st->ptr[i]);
    for (uint32_t k = 0; k < st->size[i]; k += 61) {
      ST_EXPECT(p[k] == st->fill[i]);
    }
    pm2_isofree(st->ptr[i]);
  }
  iso::ThreadHeap::check_invariants(marcel_self()->slot_list,
                                    Runtime::current()->area().slot_size());
  pm2_isofree(st);
  pm2_signal(0);
}

class MigrationStress
    : public ::testing::TestWithParam<std::tuple<uint32_t, int, uint64_t>> {};

TEST_P(MigrationStress, RandomTraceKeepsDataIntact) {
  auto [nodes, workers, seed] = GetParam();
  g_ok = true;
  g_hops = 0;
  AppConfig cfg;
  cfg.nodes = nodes;
  // Multi-worker schedulers on every node: migration churn exercises the
  // cross-worker freeze/forget/adopt paths, not just the protocol.
  cfg.rt.workers = 4;
  run_app(cfg, [&, workers = workers, seed = seed](Runtime& rt) {
    if (rt.self() == 0) {
      for (int w = 0; w < workers; ++w) {
        pm2_thread_create(
            &stress_worker,
            reinterpret_cast<void*>(static_cast<uintptr_t>(seed + w * 1299721)),
            "stress");
      }
      pm2_wait_signals(static_cast<uint64_t>(workers));
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_ok.load());
  if (nodes > 1) {
    EXPECT_GT(g_hops.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, MigrationStress,
    ::testing::Values(std::make_tuple(1u, 4, 11ull),
                      std::make_tuple(2u, 4, 22ull),
                      std::make_tuple(2u, 8, 33ull),
                      std::make_tuple(3u, 6, 44ull),
                      std::make_tuple(4u, 8, 55ull),
                      std::make_tuple(4u, 8, 56ull)));

// The same randomized stress, but across the *socket* fabric (in-process
// logical nodes over real UNIX sockets), with the zero-copy acceptance
// assertion: ship_thread's payload segments go slot memory -> writev with
// no intermediate flatten, so every node's send-path payload copy counter
// must stay exactly 0 for the whole churn.
TEST(MigrationZeroCopy, SocketShipPerformsNoFlattenCopies) {
  g_ok = true;
  g_hops = 0;
  static std::atomic<uint64_t> copy_bytes{0};
  static std::atomic<uint64_t> wire_bytes{0};
  copy_bytes = 0;
  wire_bytes = 0;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.socket_fabric = true;
  run_app(cfg, [](Runtime& rt) {
    if (rt.self() == 0) {
      for (int w = 0; w < 4; ++w) {
        pm2_thread_create(
            &stress_worker,
            reinterpret_cast<void*>(static_cast<uintptr_t>(99 + w * 7919)),
            "stress");
      }
      pm2_wait_signals(4);
    }
    rt.barrier();
    copy_bytes += rt.fabric().payload_copy_bytes();
    wire_bytes += rt.fabric().bytes_sent();
  });
  EXPECT_TRUE(g_ok.load());
  EXPECT_GT(g_hops.load(), 0u);
  EXPECT_GT(wire_bytes.load(), 0u);
  EXPECT_EQ(copy_bytes.load(), 0u)
      << "migration payloads were flattened on the socket send path";
}

// The pack side of the zero-copy contract: a migration chain stages only
// the per-run metadata and *borrows* every extent straight from iso-address
// slot memory.
std::atomic<bool> g_pack_stop{false};

void pack_probe_worker(void* arg) {
  auto* heap_bytes = static_cast<uint8_t*>(pm2_isomalloc(200 * 1024));
  std::memset(heap_bytes, 0x7E, 200 * 1024);
  *static_cast<void**>(arg) = heap_bytes;
  while (!g_pack_stop.load()) pm2_yield();
  pm2_isofree(heap_bytes);
  pm2_signal(0);
}

TEST(MigrationZeroCopy, PackChainBorrowsSlotMemory) {
  g_pack_stop = false;
  static void* probe_data = nullptr;
  probe_data = nullptr;
  AppConfig cfg;
  cfg.nodes = 1;
  run_app(cfg, [](Runtime& rt) {
    marcel::ThreadId id =
        pm2_thread_create(&pack_probe_worker, &probe_data, "probe");
    while (probe_data == nullptr) pm2_yield();

    marcel::Thread* t = rt.sched().find(id);
    ASSERT_NE(t, nullptr);
    ASSERT_TRUE(rt.sched().freeze(t));

    for (bool blocks_only : {true, false}) {
      mad::BufferChain chain = pack_thread_chain(rt, t, blocks_only);
      EXPECT_EQ(chain.size(), migration_payload_size(rt, t, blocks_only));
      // The 200 KB of thread heap (plus stack/slot images) is carried by
      // borrowed segments pointing into the slots; staged copies are only
      // the run/extent metadata.
      EXPECT_GE(chain.borrowed_bytes(), 200u * 1024);
      EXPECT_LT(chain.copied_bytes(), 4096u);
      // Byte-identical to the legacy flat pack.
      EXPECT_EQ(chain.take_flat(), pack_thread(rt, t, blocks_only));
    }

    rt.sched().unfreeze(t);
    g_pack_stop = true;
    pm2_wait_signals(1);
    rt.join(id);
  });
}

// Slot conservation across a whole stressed session: after everything
// drains, every slot is owned by exactly one node again.
TEST(MigrationStressInvariant, SlotConservationAfterChurn) {
  g_ok = true;
  static std::atomic<uint64_t> owned_total{0};
  owned_total = 0;
  AppConfig cfg;
  cfg.nodes = 3;
  cfg.rt.workers = 4;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      for (int w = 0; w < 6; ++w) {
        pm2_thread_create(
            &stress_worker,
            reinterpret_cast<void*>(static_cast<uintptr_t>(777 + w)),
            "stress");
      }
      pm2_wait_signals(6);
    }
    rt.barrier();
    // All worker threads are gone; only main (1 stack slot per node) and
    // the daemon (1 stack slot) still hold slots.
    owned_total += rt.slots().bitmap().count();
  });
  EXPECT_TRUE(g_ok.load());
  // 3 nodes x (main + daemon) = 6 thread-held slots; everything else owned.
  AppConfig ref;
  iso::Area probe_area_unused(ref.area);  // same geometry as the session
  EXPECT_EQ(owned_total.load(), probe_area_unused.n_slots() - 6);
}

}  // namespace
}  // namespace pm2
