// Configuration sweeps: the runtime must behave identically across slot
// sizes, multi-slot stacks, distributions and node counts.  These
// parameterized integration tests run the same migration+allocation
// workload under each configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {
namespace {

std::atomic<bool> g_ok{true};

#define CFG_EXPECT(cond)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      g_ok = false;                                               \
      pm2_printf("config sweep failure: %s line %d\n", #cond,     \
                 __LINE__);                                       \
    }                                                             \
  } while (0)

struct SweepParams {
  size_t slot_size;
  size_t stack_slots;
  uint32_t nodes;
  iso::Distribution dist;
};

class ConfigSweep : public ::testing::TestWithParam<SweepParams> {};

void sweep_worker2(void*) {
  // Allocate a mix, migrate across all nodes, verify, free.
  auto* small = static_cast<unsigned char*>(pm2_isomalloc(100));
  auto* big = static_cast<unsigned char*>(pm2_isomalloc(150 * 1024));
  std::memset(small, 0x21, 100);
  std::memset(big, 0x43, 150 * 1024);
  uint32_t n = pm2_nodes();
  for (uint32_t hop = 1; hop <= n; ++hop)
    pm2_migrate(marcel_self(), hop % n);
  CFG_EXPECT(pm2_self() == 0);
  for (int i = 0; i < 100; ++i) CFG_EXPECT(small[i] == 0x21);
  for (int i = 0; i < 150 * 1024; i += 1024) CFG_EXPECT(big[i] == 0x43);
  pm2_isofree(small);
  pm2_isofree(big);
  pm2_signal(0);
}

TEST_P(ConfigSweep, MigrationWorkloadRunsClean) {
  const SweepParams p = GetParam();
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = p.nodes;
  cfg.area.slot_size = p.slot_size;
  cfg.rt.stack_slots = p.stack_slots;
  cfg.rt.slots.distribution = p.dist;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&sweep_worker2, nullptr, "sweep");
      pm2_wait_signals(1);
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_ok.load());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConfigSweep,
    ::testing::Values(
        // The paper's configuration: 64 KB slots, 1 slot per stack.
        SweepParams{64 * 1024, 1, 2, iso::Distribution::kRoundRobin},
        // Small slots: stacks need multiple contiguous slots.
        SweepParams{16 * 1024, 4, 2, iso::Distribution::kBlockCyclic},
        // Large slots.
        SweepParams{256 * 1024, 1, 2, iso::Distribution::kRoundRobin},
        // Multi-slot stacks even with 64 KB slots.
        SweepParams{64 * 1024, 2, 3, iso::Distribution::kPartitioned},
        // More nodes.
        SweepParams{64 * 1024, 1, 4, iso::Distribution::kBlockCyclic},
        // Multi-slot stacks need local contiguity for the bootstrap
        // threads (round-robin would offer none).
        SweepParams{128 * 1024, 2, 4, iso::Distribution::kBlockCyclic}));

// Deep stacks in multi-slot stack configurations: recursion that would
// overflow a single 16 KB slot must be fine with stack_slots = 4.
long deep_recurse(int depth) {
  volatile char pad[1024];
  pad[0] = 1;
  if (depth == 0) return pad[0];
  return deep_recurse(depth - 1) + pad[0];
}

void deep_stack_worker(void*) {
  CFG_EXPECT(deep_recurse(30) == 31);
  pm2_migrate(marcel_self(), 1);
  CFG_EXPECT(deep_recurse(30) == 31);  // still works after migration
  pm2_signal(0);
}

TEST(ConfigSweepDeep, MultiSlotStackSurvivesDeepRecursionAndMigration) {
  g_ok = true;
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.area.slot_size = 16 * 1024;
  cfg.rt.stack_slots = 8;  // 128 KB stacks from 16 KB slots
  // Multi-slot stacks need local contiguity for the bootstrap threads
  // (round-robin would leave no 8-runs anywhere).
  cfg.rt.slots.distribution = iso::Distribution::kBlockCyclic;
  cfg.rt.slots.block_cyclic_block = 32;
  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&deep_stack_worker, nullptr, "deep");
      pm2_wait_signals(1);
    }
    rt.barrier();
  });
  EXPECT_TRUE(g_ok.load());
}

}  // namespace
}  // namespace pm2
