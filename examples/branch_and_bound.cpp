// Branch-and-bound TSP on the v2 typed asynchronous RPC API.
//
// PM2 was "especially designed to serve as a runtime support for highly
// parallel irregular applications … threads may need to start or terminate
// at arbitrary moments" (§2).  Branch-and-bound is the canonical such
// application: subtree sizes are wildly unpredictable, so static placement
// loses.  This version expresses the search as *pipelined remote calls*
// (living documentation for pm2::service / pm2::call_async — quickstart.cpp
// stays on the paper-faithful free functions):
//
//   * every shallow branch becomes `call_async<int32_t>(node, "search", s)`
//     on a round-robin node — the LRPC layer turns each into a fresh
//     service thread there;
//   * the parent keeps ALL child futures in flight at once and combines
//     them with wait_all — the pipelining the blocking call() could never
//     do (one blocked thread per outstanding request);
//   * services recurse: a "search" service issues its own child calls and
//     blocks on their futures (reentrant LRPC, §3.4).
//
// The global incumbent (best tour so far) is node-shared via std::atomic —
// valid for in-process nodes, which is what this example runs.
//
//   ./branch_and_bound --cities 12 --nodes 4
//   ./branch_and_bound --cities 12 --spawn-depth 3   # more, smaller calls
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

constexpr int kMaxCities = 16;
int g_cities = 12;
int g_spawn_depth = 2;  // branches above this depth become remote calls
int g_dist[kMaxCities][kMaxCities];

std::atomic<int> g_best{INT32_MAX};       // incumbent tour length
std::atomic<uint64_t> g_nodes_explored{0};
std::atomic<uint64_t> g_calls_issued{0};
std::atomic<uint64_t> g_next_node{0};     // round-robin placement counter
std::atomic<uint32_t> g_work_mask{0};     // nodes that did search work

/// Search state: trivially copyable, so the typed RPC layer ships it as a
/// plain scalar argument — no manual packing anywhere in this file.
struct SearchState {
  int depth;
  int length;
  uint16_t visited;  // bitmask over cities
  int tour[kMaxCities];
};

int lower_bound(const SearchState& s) {
  // Cheapest outgoing edge for every unvisited city (+ the current one).
  int bound = s.length;
  for (int c = 0; c < g_cities; ++c) {
    if (c != s.tour[s.depth - 1] && (s.visited & (1u << c))) continue;
    int cheapest = INT32_MAX;
    for (int d = 0; d < g_cities; ++d)
      if (d != c && g_dist[c][d] < cheapest) cheapest = g_dist[c][d];
    bound += cheapest;
  }
  return bound;
}

SearchState child_of(const SearchState& s, int next_city) {
  SearchState child = s;
  child.length += g_dist[s.tour[s.depth - 1]][next_city];
  child.tour[child.depth++] = next_city;
  child.visited |= 1u << next_city;
  return child;
}

/// Best tour length reachable from `s` (also tightens the incumbent).
int subtree_search(const SearchState& s) {
  ++g_nodes_explored;
  g_work_mask |= 1u << pm2_self();

  if (s.depth == g_cities) {
    int total = s.length + g_dist[s.tour[g_cities - 1]][s.tour[0]];
    int best = g_best.load();
    while (total < best && !g_best.compare_exchange_weak(best, total)) {
    }
    return total;
  }
  if (lower_bound(s) >= g_best.load()) return INT32_MAX;  // pruned

  // Visit nearer cities first: tightens the incumbent sooner.
  int order[kMaxCities];
  int n = 0;
  for (int c = 0; c < g_cities; ++c)
    if (!(s.visited & (1u << c))) order[n++] = c;
  int from = s.tour[s.depth - 1];
  std::sort(order, order + n,
            [from](int a, int b) { return g_dist[from][a] < g_dist[from][b]; });

  int best_here = INT32_MAX;
  if (s.depth <= g_spawn_depth) {
    // Shallow branch: fan every child out as an asynchronous typed call and
    // keep all of them in flight — remote nodes create the service threads
    // while we are still issuing.
    std::vector<RpcFuture<int32_t>> futs;
    futs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (lower_bound(s) >= g_best.load()) break;  // incumbent tightened
      uint32_t target =
          static_cast<uint32_t>(g_next_node++ % static_cast<uint64_t>(pm2_nodes()));
      ++g_calls_issued;
      futs.push_back(call_async<int32_t>(target, "search",
                                         child_of(s, order[i])));
    }
    wait_all(futs);
    for (auto& f : futs) best_here = std::min(best_here, f.take());
  } else {
    // Deep branch: recurse inline inside this service thread.
    for (int i = 0; i < n; ++i) {
      if (lower_bound(s) >= g_best.load()) break;  // prune the rest
      best_here = std::min(best_here, subtree_search(child_of(s, order[i])));
    }
  }
  return best_here;
}

/// Serial reference solver (same pruning, no threads) for validation.
int serial_best = INT32_MAX;
void serial_search(SearchState& s) {
  if (s.depth == g_cities) {
    serial_best = std::min(
        serial_best, s.length + g_dist[s.tour[g_cities - 1]][s.tour[0]]);
    return;
  }
  if (s.length >= serial_best) return;
  for (int c = 0; c < g_cities; ++c) {
    if (s.visited & (1u << c)) continue;
    SearchState child = s;
    child.length += g_dist[s.tour[s.depth - 1]][c];
    child.tour[child.depth++] = c;
    child.visited |= 1u << c;
    serial_search(child);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  g_cities = static_cast<int>(flags.i64("cities", 12));
  g_spawn_depth = static_cast<int>(flags.i64("spawn-depth", 2));
  PM2_CHECK(g_cities >= 4 && g_cities <= kMaxCities);

  // Deterministic random instance.
  Rng rng(flags.i64("seed", 42));
  for (int i = 0; i < g_cities; ++i)
    for (int j = i + 1; j < g_cities; ++j)
      g_dist[i][j] = g_dist[j][i] = static_cast<int>(rng.next_range(10, 99));

  AppConfig cfg;
  cfg.nodes = static_cast<uint32_t>(flags.i64("nodes", 2));

  Stopwatch wall;
  run_app(
      cfg,
      [&](Runtime&) {
        if (pm2_self() != 0) return;
        SearchState root{};
        root.depth = 1;
        root.length = 0;
        root.visited = 1;  // start at city 0
        root.tour[0] = 0;
        // The whole search is one future tree rooted here: subtree_search
        // returns only when every remote subtree's future resolved, so no
        // signal counting or drain protocol is needed.
        int best = subtree_search(root);
        pm2_printf("parallel best tour = %d (%llu states, %llu remote calls)\n",
                   best,
                   static_cast<unsigned long long>(g_nodes_explored.load()),
                   static_cast<unsigned long long>(g_calls_issued.load()));
      },
      [](Runtime& rt) {
        // Name-keyed: any node could register any subset of services; here
        // every node is a search peer.
        rt.service("search", [](RpcContext&, SearchState s) -> int32_t {
          return subtree_search(s);
        });
      });
  double wall_ms = wall.elapsed_ms();

  // Validate against the serial solver.
  SearchState root{};
  root.depth = 1;
  root.visited = 1;
  root.tour[0] = 0;
  serial_search(root);
  std::printf("serial best tour   = %d\n", serial_best);
  std::printf("match: %s;  wall %.1f ms;  worked on nodes mask 0x%x\n",
              serial_best == g_best.load() ? "YES" : "NO", wall_ms,
              g_work_mask.load());
  return serial_best == g_best.load() ? 0 : 1;
}
