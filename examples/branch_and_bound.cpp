// Branch-and-bound TSP — the paper's target workload class in one program.
//
// PM2 was "especially designed to serve as a runtime support for highly
// parallel irregular applications … threads may need to start or terminate
// at arbitrary moments" (§2).  Branch-and-bound is the canonical such
// application: subtree sizes are wildly unpredictable, so static placement
// loses.  Here every search thread:
//
//   * keeps its whole search state (partial tour, visited set) in
//     iso-memory — it can be moved at any instant;
//   * spawns child threads for promising branches at shallow depths;
//   * never thinks about placement: the LoadBalancer module preemptively
//     redistributes READY threads between nodes.
//
// The global incumbent (best tour so far) is node-shared via std::atomic —
// valid for in-process nodes, which is what this example runs (the search
// logic itself is fully migration-clean).
//
//   ./branch_and_bound --cities 12 --nodes 4
//   ./branch_and_bound --cities 12 --no-balance   # compare wall time
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/load_balancer.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

constexpr int kMaxCities = 16;
int g_cities = 12;
int g_spawn_depth = 3;  // branches above this depth become threads
int g_dist[kMaxCities][kMaxCities];

std::atomic<int> g_best{INT32_MAX};       // incumbent tour length
std::atomic<uint64_t> g_nodes_explored{0};
std::atomic<uint64_t> g_threads_spawned{0};
std::atomic<uint32_t> g_work_mask{0};     // nodes that did search work

/// Search state: lives in iso-memory so the thread can be migrated with it.
struct SearchState {
  int depth;
  int length;
  uint16_t visited;  // bitmask over cities
  int tour[kMaxCities];
};

int lower_bound(const SearchState& s) {
  // Cheapest outgoing edge for every unvisited city (+ the current one).
  int bound = s.length;
  for (int c = 0; c < g_cities; ++c) {
    if (c != s.tour[s.depth - 1] && (s.visited & (1u << c))) continue;
    int cheapest = INT32_MAX;
    for (int d = 0; d < g_cities; ++d)
      if (d != c && g_dist[c][d] < cheapest) cheapest = g_dist[c][d];
    bound += cheapest;
  }
  return bound;
}

void search(SearchState* s);
void branch_worker(void* arg) { search(static_cast<SearchState*>(arg)); }

void expand(SearchState* s, int next_city) {
  SearchState child = *s;  // staged on our stack
  child.length += g_dist[s->tour[s->depth - 1]][next_city];
  child.tour[child.depth++] = next_city;
  child.visited |= 1u << next_city;

  if (s->depth <= g_spawn_depth) {
    // Shallow branch: fork a thread.  pm2_thread_create_copy clones the
    // state into the child's own iso-heap (blocks belong to exactly one
    // thread and migrate with it — handing the child a pointer into OUR
    // heap would be migration-unsafe).  The balancer decides placement.
    ++g_threads_spawned;
    pm2_thread_create_copy(&branch_worker, &child, sizeof(child), "bnb");
  } else {
    // Deep branch: recurse inline within our own heap.
    auto* own = static_cast<SearchState*>(pm2_isomalloc(sizeof(SearchState)));
    *own = child;
    search(own);
  }
}

void search(SearchState* s) {
  ++g_nodes_explored;
  g_work_mask |= 1u << pm2_self();

  if (s->depth == g_cities) {
    int total = s->length + g_dist[s->tour[g_cities - 1]][s->tour[0]];
    int best = g_best.load();
    while (total < best && !g_best.compare_exchange_weak(best, total)) {
    }
  } else if (lower_bound(*s) < g_best.load()) {
    // Visit nearer cities first: tightens the incumbent sooner.
    int order[kMaxCities];
    int n = 0;
    for (int c = 0; c < g_cities; ++c)
      if (!(s->visited & (1u << c))) order[n++] = c;
    int from = s->tour[s->depth - 1];
    std::sort(order, order + n,
              [from](int a, int b) { return g_dist[from][a] < g_dist[from][b]; });
    for (int i = 0; i < n; ++i) {
      if (lower_bound(*s) >= g_best.load()) break;  // prune the rest
      expand(s, order[i]);
    }
  }
  pm2_isofree(s);
  pm2_signal(0);  // one completion token per search thread / root call
}

/// Serial reference solver (same pruning, no threads) for validation.
int serial_best = INT32_MAX;
void serial_search(SearchState& s) {
  if (s.depth == g_cities) {
    serial_best = std::min(
        serial_best, s.length + g_dist[s.tour[g_cities - 1]][s.tour[0]]);
    return;
  }
  if (s.length >= serial_best) return;
  for (int c = 0; c < g_cities; ++c) {
    if (s.visited & (1u << c)) continue;
    SearchState child = s;
    child.length += g_dist[s.tour[s.depth - 1]][c];
    child.tour[child.depth++] = c;
    child.visited |= 1u << c;
    serial_search(child);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  g_cities = static_cast<int>(flags.i64("cities", 12));
  g_spawn_depth = static_cast<int>(flags.i64("spawn-depth", 3));
  bool balance = !flags.b("no-balance");
  PM2_CHECK(g_cities >= 4 && g_cities <= kMaxCities);

  // Deterministic random instance.
  Rng rng(flags.i64("seed", 42));
  for (int i = 0; i < g_cities; ++i)
    for (int j = i + 1; j < g_cities; ++j)
      g_dist[i][j] = g_dist[j][i] = static_cast<int>(rng.next_range(10, 99));

  AppConfig cfg;
  cfg.nodes = static_cast<uint32_t>(flags.i64("nodes", 2));

  Stopwatch wall;
  run_app(cfg, [&](Runtime& rt) {
    if (balance) {
      LoadBalancerConfig lb;
      lb.period_us = 300;
      lb.max_migrations_per_round = 4;
      LoadBalancer::start(rt, lb);
    }
    if (rt.self() == 0) {
      SearchState root{};
      root.depth = 1;
      root.length = 0;
      root.visited = 1;  // start at city 0
      root.tour[0] = 0;
      ++g_threads_spawned;
      pm2_thread_create_copy(&branch_worker, &root, sizeof(root), "bnb-root");
      // Every search thread signals exactly once; spawning happens strictly
      // before the parent's signal, so this drains the whole tree.
      uint64_t collected = 0;
      while (collected < g_threads_spawned.load()) {
        pm2_wait_signals(1);
        ++collected;
      }
      pm2_printf("parallel best tour = %d (%llu states, %llu threads)\n",
                 g_best.load(),
                 static_cast<unsigned long long>(g_nodes_explored.load()),
                 static_cast<unsigned long long>(g_threads_spawned.load()));
    }
    rt.barrier();
  });
  double wall_ms = wall.elapsed_ms();

  // Validate against the serial solver.
  SearchState root{};
  root.depth = 1;
  root.visited = 1;
  root.tour[0] = 0;
  serial_search(root);
  std::printf("serial best tour   = %d\n", serial_best);
  std::printf("match: %s;  wall %.1f ms;  balancing %s;  worked on nodes "
              "mask 0x%x\n",
              serial_best == g_best.load() ? "YES" : "NO", wall_ms,
              balance ? "ON" : "OFF", g_work_mask.load());
  return serial_best == g_best.load() ? 0 : 1;
}
