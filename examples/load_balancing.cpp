// Dynamic load balancing of an irregular workload (paper §1–2: thread
// migration "can be used to support the implementation of load balancing
// policies based on dynamic activity redistribution"; the balancer is "a
// generic module implemented outside the running application").
//
// An intentionally skewed workload: node 0 spawns all the workers, each
// with a random amount of compute.  The LoadBalancer module gossips load
// and preemptively migrates READY threads; workers are completely unaware.
//
// Living documentation for the v2 typed API around the migrating workers:
//
//   * completion is a name-keyed fire-and-forget service — each worker
//     reports `pm2::rpc(0, "done", ordinal, chunks, node)` from whatever
//     node it ended up on (the free functions re-resolve the runtime, so
//     they are safe right after a migration);
//   * the final per-node tally is gathered with pipelined typed calls:
//     node 0 keeps a `call_async<uint64_t>(n, "chunks-here")` future per
//     node in flight and wait_all's them — correct even with --spawn,
//     where the nodes share no memory;
//   * pm2::on_migration hooks count departures/arrivals per node, the
//     pm2_set_pre/post_migration_func observer pair of the original PM2.
//
//   ./load_balancing --workers 32 --nodes 4
//   ./load_balancing --no-balance        # same workload without the module
//   ./load_balancing --spawn             # real processes over UNIX sockets
#include <atomic>
#include <cstdio>

#include "common/flags.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/load_balancer.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

std::atomic<uint64_t> g_work_done_on[16];   // per final node (this process)
std::atomic<uint64_t> g_migrated_out[16];   // pre-migration hook census
std::atomic<uint64_t> g_migrated_in[16];    // post-migration hook census
int g_workers = 32;

void irregular_worker(void* arg) {
  // Irregular compute: the amount is derived from the thread's ordinal.
  auto ordinal = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(arg));
  Rng rng(ordinal * 7919 + 13);
  int chunks = static_cast<int>(rng.next_range(50, 400));

  // Private state in iso-memory: migrates with the thread.
  auto* acc = static_cast<uint64_t*>(pm2_isomalloc(sizeof(uint64_t)));
  *acc = 0;
  for (int c = 0; c < chunks; ++c) {
    volatile uint64_t sink = 0;
    for (int k = 0; k < 20000; ++k) sink = sink + k;
    *acc += sink;
    pm2_yield();  // safe point: the balancer may have moved us already
  }
  g_work_done_on[pm2_self()] += static_cast<uint64_t>(chunks);
  pm2_isofree(acc);
  // Typed completion report to the coordinator, from wherever we live now.
  pm2::rpc(0, "done", ordinal, static_cast<uint64_t>(chunks),
           static_cast<uint32_t>(pm2_self()));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  g_workers = static_cast<int>(flags.i64("workers", 32));
  bool balance = !flags.b("no-balance");

  AppConfig cfg;
  cfg.nodes = static_cast<uint32_t>(flags.i64("nodes", 2));
  PM2_CHECK(cfg.nodes >= 1 && cfg.nodes <= 16)
      << "--nodes must be 1..16 (per-node counters are fixed arrays)";
  cfg.multiprocess = flags.b("spawn");
  capture_argv_for_children(cfg, argc, argv);

  Stopwatch total;
  int rc = run_app(
      cfg,
      [&](Runtime& rt) {
        if (balance) {
          LoadBalancerConfig lb;
          lb.period_us = 500;
          lb.imbalance_threshold = 2;
          lb.max_migrations_per_round = 2;
          LoadBalancer::start(rt, lb);
        }
        if (rt.self() == 0) {
          Stopwatch sw;
          for (int i = 0; i < g_workers; ++i) {
            pm2_thread_create(&irregular_worker,
                              reinterpret_cast<void*>(static_cast<uintptr_t>(i)),
                              "worker");
          }
          // One "done" rpc per worker releases one signal (see setup).
          pm2_wait_signals(static_cast<uint64_t>(g_workers));
          pm2_printf("all %d workers done in %.1f ms (migrations out of node "
                     "0: %llu)\n",
                     g_workers, sw.elapsed_ms(),
                     static_cast<unsigned long long>(rt.migrations_out()));
        }
        rt.barrier();
        if (rt.self() == 0) {
          // Pipelined stats gather: one typed future per node, all in
          // flight at once.  Works with --spawn too — "chunks-here" reads
          // the per-process counter of the node that answers.
          std::vector<RpcFuture<uint64_t>> tallies;
          for (uint32_t n = 0; n < rt.n_nodes(); ++n)
            tallies.push_back(rt.call_async<uint64_t>(n, "chunks-here"));
          wait_all(tallies);
          for (uint32_t n = 0; n < rt.n_nodes(); ++n)
            rt.printf("node %u completed %llu work chunks\n", n,
                      static_cast<unsigned long long>(tallies[n].take()));
        }
        rt.barrier();
        uint64_t out = g_migrated_out[rt.self()].load();
        uint64_t in = g_migrated_in[rt.self()].load();
        if (out > 0 || in > 0) {
          rt.printf("migration hooks: %llu departures, %llu arrivals\n",
                    static_cast<unsigned long long>(out),
                    static_cast<unsigned long long>(in));
        }
      },
      [&](Runtime& rt) {
        // Name-keyed services; registered before the node runs.
        // service_local: these handlers read node-local state and must not
        // be picked up by the balancer (which would also be unsound across
        // --spawn process boundaries).
        rt.service_local("done", [](RpcContext&, uint64_t /*ordinal*/,
                                    uint64_t /*chunks*/, uint32_t /*node*/) {
          pm2_signal(0);  // runs on node 0: release the coordinator
        });
        rt.service_local("chunks-here", [](RpcContext&) -> uint64_t {
          return g_work_done_on[pm2_self()].load();
        });
        rt.on_migration(
            [](marcel::Thread*) { ++g_migrated_out[pm2_self()]; },
            [](marcel::Thread*) { ++g_migrated_in[pm2_self()]; });
      });
  std::printf("total wall time: %.1f ms (balancing %s)\n", total.elapsed_ms(),
              balance ? "ON" : "OFF");
  return rc;
}
