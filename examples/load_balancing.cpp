// Dynamic load balancing of an irregular workload (paper §1–2: thread
// migration "can be used to support the implementation of load balancing
// policies based on dynamic activity redistribution"; the balancer is "a
// generic module implemented outside the running application").
//
// An intentionally skewed workload: node 0 spawns all the workers, each
// with a random amount of compute.  The LoadBalancer module gossips load
// and preemptively migrates READY threads; workers are completely unaware.
//
//   ./load_balancing --workers 32 --nodes 4
//   ./load_balancing --no-balance        # same workload without the module
#include <atomic>
#include <cstdio>

#include "common/flags.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/load_balancer.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

std::atomic<int> g_done{0};
std::atomic<uint64_t> g_work_done_on[16];  // per final node
int g_workers = 32;

void irregular_worker(void* arg) {
  // Irregular compute: the amount is derived from the thread's ordinal.
  auto ordinal = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(arg));
  Rng rng(ordinal * 7919 + 13);
  int chunks = static_cast<int>(rng.next_range(50, 400));

  // Private state in iso-memory: migrates with the thread.
  auto* acc = static_cast<uint64_t*>(pm2_isomalloc(sizeof(uint64_t)));
  *acc = 0;
  for (int c = 0; c < chunks; ++c) {
    volatile uint64_t sink = 0;
    for (int k = 0; k < 20000; ++k) sink = sink + k;
    *acc += sink;
    pm2_yield();  // safe point: the balancer may have moved us already
  }
  g_work_done_on[pm2_self()] += static_cast<uint64_t>(chunks);
  pm2_isofree(acc);
  ++g_done;
  pm2_signal(0);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  g_workers = static_cast<int>(flags.i64("workers", 32));
  bool balance = !flags.b("no-balance");

  AppConfig cfg;
  cfg.nodes = static_cast<uint32_t>(flags.i64("nodes", 2));
  cfg.multiprocess = flags.b("spawn");
  capture_argv_for_children(cfg, argc, argv);

  Stopwatch total;
  int rc = run_app(cfg, [&](Runtime& rt) {
    if (balance) {
      LoadBalancerConfig lb;
      lb.period_us = 500;
      lb.imbalance_threshold = 2;
      lb.max_migrations_per_round = 2;
      LoadBalancer::start(rt, lb);
    }
    if (rt.self() == 0) {
      Stopwatch sw;
      for (int i = 0; i < g_workers; ++i) {
        pm2_thread_create(&irregular_worker,
                          reinterpret_cast<void*>(static_cast<uintptr_t>(i)),
                          "worker");
      }
      pm2_wait_signals(static_cast<uint64_t>(g_workers));
      pm2_printf("all %d workers done in %.1f ms (migrations out of node 0: "
                 "%llu)\n",
                 g_workers, sw.elapsed_ms(),
                 static_cast<unsigned long long>(rt.migrations_out()));
    }
    rt.barrier();
    uint64_t chunks = g_work_done_on[rt.self()].load();
    if (!cfg.multiprocess || chunks > 0) {
      rt.printf("work chunks completed here: %llu\n",
                static_cast<unsigned long long>(chunks));
    }
  });
  std::printf("total wall time: %.1f ms (balancing %s)\n", total.elapsed_ms(),
              balance ? "ON" : "OFF");
  return rc;
}
