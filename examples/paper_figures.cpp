// The paper's small listings as runnable programs.
//
//   ./paper_figures --fig 1    # Fig. 1: stack variable, no pointers
//   ./paper_figures --fig 2    # Fig. 2's scenario — SAFE here thanks to
//                              # iso-addressing (the paper's version faults)
//   ./paper_figures --fig 3    # Fig. 3: the legacy registered-pointer
//                              # scheme, single-process relocation demo
//   ./paper_figures --fig 4    # Fig. 4's scenario with pm2_isomalloc —
//                              # heap data migrates, no segfault
//   ./paper_figures            # run all of them
#include <cstdio>
#include <cstring>

#include "common/flags.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/legacy_migration.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

// --- Fig. 1: migration without pointers --------------------------------------

void p1(void*) {
  int x;
  x = 1;
  pm2_printf("value = %d\n", x);
  pm2_migrate(marcel_self(), 1);
  pm2_printf("value = %d\n", x);
  pm2_signal(0);
}

// --- Fig. 2: pointer to stack data.  The paper's non-iso PM2 printed one
// line and then segfaulted; with iso-addressing the same code is safe. ------

void p2(void*) {
  int x;
  int* ptr = &x;
  x = 1;
  pm2_printf("value = %d\n", *ptr);
  pm2_migrate(marcel_self(), 1);
  pm2_printf("value = %d   (the paper's Fig. 2 crashed here)\n", *ptr);
  pm2_signal(0);
}

// --- Fig. 4 fixed: heap data via pm2_isomalloc -------------------------------

void p3(void*) {
  int* t = static_cast<int*>(pm2_isomalloc(100 * sizeof(int)));
  t[10] = 1;
  pm2_printf("value = %d\n", t[10]);
  pm2_migrate(marcel_self(), 1);
  pm2_printf("value = %d   (with malloc this was a segfault, Fig. 4/9)\n",
             t[10]);
  pm2_isofree(t);
  pm2_signal(0);
}

int run_session(void (*fn)(void*), const char* name, const Flags& flags,
                int argc, char** argv) {
  AppConfig cfg;
  cfg.nodes = 2;
  cfg.multiprocess = flags.b("spawn");
  capture_argv_for_children(cfg, argc, argv);
  return run_app(cfg, [fn, name](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(fn, nullptr, name);
      pm2_wait_signals(1);
    }
  });
}

// --- Fig. 3: the legacy scheme, shown as a single-process relocation ---------

void fig3_body(legacy::LegacyThread& self, void*) {
  int x;
  int* ptr = &x;
  uint32_t key = self.register_pointer(reinterpret_cast<void**>(&ptr));
  x = 1;
  std::printf("[legacy] value = %d\n", *ptr);
  self.yield();  // "migration": the stack is relocated here
  std::printf("[legacy] value = %d   (valid only because ptr was "
              "registered)\n",
              *ptr);
  self.unregister_pointer(key);
}

void run_fig3() {
  std::printf("--- Fig. 3: registered pointers under the legacy scheme ---\n");
  legacy::LegacyThread t(64 * 1024, &fig3_body, nullptr);
  t.resume();
  ptrdiff_t delta = t.relocate();
  std::printf("[legacy] stack relocated by %td bytes; patching frame chain "
              "and 1 registered pointer\n",
              delta);
  t.resume();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  long fig = flags.i64("fig", 0);

  if (is_spawned_child()) {
    // A spawned node child re-enters main; route it to the session the
    // parent is running (figures 1/2/4 all use the same session shape).
    long f = flags.i64("fig", 1);
    void (*fn)(void*) = f == 2 ? &p2 : (f == 4 ? &p3 : &p1);
    return run_session(fn, "fig", flags, argc, argv);
  }

  if (fig == 0 || fig == 1) {
    std::printf("--- Fig. 1: thread migration without pointers ---\n");
    run_session(&p1, "p1", flags, argc, argv);
  }
  if (fig == 0 || fig == 2) {
    std::printf("--- Fig. 2 scenario, now safe with iso-addresses ---\n");
    run_session(&p2, "p2", flags, argc, argv);
  }
  if (fig == 0 || fig == 3) {
    run_fig3();
  }
  if (fig == 0 || fig == 4) {
    std::printf("--- Fig. 4 scenario with pm2_isomalloc (cf. Figs. 8/9) ---\n");
    run_session(&p3, "p3", flags, argc, argv);
  }
  return 0;
}
