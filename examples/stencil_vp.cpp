// Data-parallel "virtual processors" with migration — the scenario that
// motivated isomalloc in the first place (paper §1: "Our interest in
// iso-address allocation and migration stems from data-parallel compiling";
// refs [1,11]: HPF compilers generating multithreaded PM2 code, load
// balancing by migrating virtual processors).
//
// A 1-D Jacobi heat relaxation split across virtual processors (VPs): each
// VP is a PM2 thread owning its block of the array in iso-memory.  VPs
// exchange halo cells through RPC mailboxes each iteration.  Mid-run, half
// of the VPs are preemptively migrated to other nodes — in-flight, with
// all their pointers — and the result still matches the serial solver
// bit-for-bit.
//
//   ./stencil_vp --cells 4096 --vps 8 --iters 200 --nodes 2
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/flags.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

int g_cells = 4096;
int g_vps = 8;
int g_iters = 200;

// Halo mailboxes: one slot per (vp, side, iteration-parity).  Node-shared
// state is only valid in-process; this example therefore runs in-process
// (the iso-data of each VP still migrates for real).
struct Mailbox {
  std::atomic<int> seq{0};
  double value = 0;
};
Mailbox g_left_of[64];   // halo sent to vp i from its right neighbour
Mailbox g_right_of[64];  // halo sent to vp i from its left neighbour
std::atomic<int> g_vp_iter[64];
double g_checksum_parallel = 0;
std::atomic<int> g_finished{0};

// Two-phase rendezvous: the producer may not overwrite the cell until the
// consumer acknowledged the previous value (seq runs 2*iter -> 2*iter+1 on
// post, 2*iter+1 -> 2*iter+2 on take).
void post(Mailbox& box, int iter, double v) {
  while (box.seq.load(std::memory_order_acquire) != 2 * iter) pm2_yield();
  box.value = v;
  box.seq.store(2 * iter + 1, std::memory_order_release);
}

double take(Mailbox& box, int iter) {
  while (box.seq.load(std::memory_order_acquire) != 2 * iter + 1) pm2_yield();
  double v = box.value;
  box.seq.store(2 * iter + 2, std::memory_order_release);
  return v;
}

void vp_worker(void* arg) {
  const int vp = static_cast<int>(reinterpret_cast<uintptr_t>(arg));
  const int block = g_cells / g_vps;
  const int lo = vp * block;

  // The VP's array block lives in iso-memory: it follows the VP thread.
  auto* cur = static_cast<double*>(pm2_isomalloc(block * sizeof(double)));
  auto* nxt = static_cast<double*>(pm2_isomalloc(block * sizeof(double)));
  for (int i = 0; i < block; ++i) {
    cur[i] = std::sin(0.01 * (lo + i));  // same init as the serial solver
  }

  for (int iter = 0; iter < g_iters; ++iter) {
    g_vp_iter[vp] = iter;
    // Exchange halos with neighbours (fixed boundary at the array ends).
    if (vp > 0) post(g_right_of[vp - 1], iter, cur[0]);
    if (vp < g_vps - 1) post(g_left_of[vp + 1], iter, cur[block - 1]);
    double left = vp > 0 ? take(g_left_of[vp], iter) : 0.0;
    double right = vp < g_vps - 1 ? take(g_right_of[vp], iter) : 0.0;

    for (int i = 0; i < block; ++i) {
      double l = i == 0 ? left : cur[i - 1];
      double r = i == block - 1 ? right : cur[i + 1];
      nxt[i] = 0.5 * cur[i] + 0.25 * (l + r);
    }
    std::swap(cur, nxt);
  }

  double local = 0;
  for (int i = 0; i < block; ++i) local += cur[i];
  // Accumulate under the cooperative scheduler of whichever node we ended
  // on; the double-word sum needs no lock because additions from different
  // nodes are serialized by the mailbox-style handshake below.
  static std::atomic<int> sum_token{0};
  int turn = g_finished.fetch_add(1);
  while (sum_token.load() != turn) pm2_yield();
  g_checksum_parallel += local;
  sum_token.store(turn + 1);

  pm2_printf("vp %d finished on node %u\n", vp, pm2_self());
  pm2_isofree(cur);
  pm2_isofree(nxt);
  pm2_signal(0);
}

double serial_solution() {
  std::vector<double> cur(g_cells), nxt(g_cells);
  for (int i = 0; i < g_cells; ++i) cur[i] = std::sin(0.01 * i);
  for (int iter = 0; iter < g_iters; ++iter) {
    for (int i = 0; i < g_cells; ++i) {
      double l = i == 0 ? 0.0 : cur[i - 1];
      double r = i == g_cells - 1 ? 0.0 : cur[i + 1];
      nxt[i] = 0.5 * cur[i] + 0.25 * (l + r);
    }
    std::swap(cur, nxt);
  }
  double sum = 0;
  for (double v : cur) sum += v;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  g_cells = static_cast<int>(flags.i64("cells", 4096));
  g_vps = static_cast<int>(flags.i64("vps", 8));
  g_iters = static_cast<int>(flags.i64("iters", 200));
  PM2_CHECK(g_vps <= 64 && g_cells % g_vps == 0);

  AppConfig cfg;
  cfg.nodes = static_cast<uint32_t>(flags.i64("nodes", 2));
  // Shared mailboxes => in-process nodes only (documented above).
  cfg.multiprocess = false;

  run_app(cfg, [&](Runtime& rt) {
    if (rt.self() == 0) {
      std::vector<marcel::ThreadId> vps;
      for (int v = 0; v < g_vps; ++v) {
        vps.push_back(pm2_thread_create(
            &vp_worker, reinterpret_cast<void*>(static_cast<uintptr_t>(v)),
            "vp"));
      }
      // Mid-computation, rebalance: push every odd VP to another node,
      // preemptively (the VPs never ask).
      while (g_vp_iter[1].load() < g_iters / 2) pm2_yield();
      int moved = 0;
      for (int v = 1; v < g_vps; v += 2) {
        uint32_t dest = 1 + static_cast<uint32_t>(v) % (rt.n_nodes() - 1);
        for (int tries = 0; tries < 1000; ++tries) {
          if (rt.migrate(vps[v], dest)) {
            ++moved;
            break;
          }
          pm2_yield();
        }
      }
      pm2_printf("preemptively migrated %d of %d VPs mid-iteration\n", moved,
                 g_vps / 2);
      pm2_wait_signals(static_cast<uint64_t>(g_vps));

      double serial = serial_solution();
      pm2_printf("parallel checksum: %.12f\n", g_checksum_parallel);
      pm2_printf("serial   checksum: %.12f\n", serial);
      pm2_printf("match: %s\n",
                 std::abs(serial - g_checksum_parallel) < 1e-9 ? "YES" : "NO");
    }
  });
  return 0;
}
