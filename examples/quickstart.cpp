// Quickstart — the paper's flagship example (Fig. 7/8): build a linked list
// with pm2_isomalloc, traverse it, migrate mid-traversal, keep traversing.
// Every pointer in the list survives because the list is re-instantiated at
// identical virtual addresses on the destination node.
//
//   ./quickstart                     # 2 in-process nodes
//   ./quickstart --nodes 4           # 4 in-process nodes
//   ./quickstart --spawn --nodes 2   # real processes over UNIX sockets
//   ./quickstart --elements 100000   # paper-sized list
#include <cstdio>

#include "common/flags.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/runtime.hpp"

using namespace pm2;

namespace {

struct Item {
  int value;
  Item* next;
};

int g_elements = 1000;

void p4(void*) {
  // Create the list (paper Fig. 7, procedure p4).
  Item* head = nullptr;
  for (int j = 0; j < g_elements; ++j) {
    auto* ptr = static_cast<Item*>(pm2_isomalloc(sizeof(Item)));
    ptr->value = j * 2 + 1;
    ptr->next = head;
    head = ptr;
  }
  pm2_printf("I am thread %p\n", static_cast<void*>(marcel_self()));

  // Print the list elements; migrate at element 100 (Fig. 8 trace).
  int j = 0;
  Item* ptr = head;
  long checksum = 0;
  while (ptr != nullptr) {
    if (j == 100) {
      pm2_printf("Initializing migration from node %d\n", pm2_self());
      pm2_migrate(marcel_self(), 1);
      pm2_printf("Arrived at node %d\n", pm2_self());
    }
    if (j < 103 || j == g_elements - 1) {
      pm2_printf("Element %d = %d\n", j, ptr->value);
    } else if (j == 103) {
      pm2_printf("[... %d more elements on node %u ...]\n", g_elements - 104,
                 pm2_self());
    }
    checksum += ptr->value;
    ptr = ptr->next;
    ++j;
  }
  pm2_printf("Traversal done: %d elements, checksum %ld (expected %ld)\n", j,
             checksum, static_cast<long>(g_elements) * g_elements);

  while (head != nullptr) {
    Item* next = head->next;
    pm2_isofree(head);
    head = next;
  }
  pm2_signal(0);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  g_elements = static_cast<int>(flags.i64("elements", 1000));

  AppConfig cfg;
  cfg.nodes = static_cast<uint32_t>(flags.i64("nodes", 2));
  cfg.multiprocess = flags.b("spawn");
  capture_argv_for_children(cfg, argc, argv);

  return run_app(cfg, [](Runtime& rt) {
    if (rt.self() == 0) {
      pm2_thread_create(&p4, nullptr, "p4");
      pm2_wait_signals(1);
    }
  });
}
