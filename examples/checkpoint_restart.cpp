// Checkpoint/restart — "migration in time" (extension; see
// src/pm2/checkpoint.hpp).
//
// A worker computes a long reduction in chunks.  Halfway through it
// checkpoints itself to a file and stops, as if the machine went down.  A
// *separate process* of the same binary then restores the image: the
// thread resumes mid-computation — same stack, same iso-heap, same
// addresses — and finishes.  This works across processes because the
// binary is non-PIE and the iso-area base is fixed: the exact conditions
// iso-address migration already requires.
//
//   ./checkpoint_restart                 # both phases (re-execs itself)
//   ./checkpoint_restart --phase run     # compute half, checkpoint, stop
//   ./checkpoint_restart --phase resume  # restore and finish
#include <unistd.h>

#include <cstdio>

#include "common/flags.hpp"
#include "pm2/api.hpp"
#include "pm2/app.hpp"
#include "pm2/checkpoint.hpp"
#include "pm2/runtime.hpp"
#include "sys/process.hpp"

using namespace pm2;

namespace {

constexpr const char* kImagePath = "/tmp/pm2_checkpoint_restart.img";
constexpr long kChunks = 1000;
constexpr long kChunkSize = 100000;

// Shared only within one phase (never across the checkpoint).
std::vector<uint8_t>* g_image_out = nullptr;

void reduction_worker(void*) {
  // All computation state lives in iso-memory / on the stack: it is the
  // checkpoint.
  auto* state = static_cast<long*>(pm2_isomalloc(2 * sizeof(long)));
  long& chunk = state[0];
  long& sum = state[1];
  chunk = 0;
  sum = 0;

  for (; chunk < kChunks; ++chunk) {
    for (long i = 0; i < kChunkSize; ++i) sum += (chunk * kChunkSize + i) % 7;
    if (chunk == kChunks / 2) {
      pm2_printf("half done (chunk %ld, partial sum %ld) — checkpointing\n",
                 chunk, sum);
      bool restored = checkpoint_self(*Runtime::current(), *g_image_out);
      if (!restored) {
        // Original execution: persist and stop, as if preempted forever.
        save_checkpoint(kImagePath, *g_image_out);
        pm2_printf("checkpoint written to %s; stopping this incarnation\n",
                   kImagePath);
        pm2_isofree(state);
        pm2_signal(0);
        return;
      }
      pm2_printf("restored in pid %d — resuming at chunk %ld\n",
                 static_cast<int>(::getpid()), chunk);
    }
  }
  pm2_printf("final sum = %ld (expected %ld)\n", sum,
             [] {
               long s = 0;
               for (long c = 0; c < kChunks; ++c)
                 for (long i = 0; i < kChunkSize; ++i)
                   s += (c * kChunkSize + i) % 7;
               return s;
             }());
  pm2_isofree(state);
  pm2_signal(0);
}

int phase_run() {
  std::vector<uint8_t> image;
  g_image_out = &image;
  AppConfig cfg;
  cfg.nodes = 1;
  return run_app(cfg, [](Runtime&) {
    pm2_thread_create(&reduction_worker, nullptr, "reduction");
    pm2_wait_signals(1);
  });
}

int phase_resume() {
  std::vector<uint8_t> image;  // the clone needs a destination object too
  g_image_out = &image;
  AppConfig cfg;
  cfg.nodes = 1;
  return run_app(cfg, [](Runtime& rt) {
    auto img = load_checkpoint(kImagePath);
    restore_thread(rt, img);
    pm2_wait_signals(1);
  });
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string phase = flags.str("phase", "both");

  if (phase == "run") return phase_run();
  if (phase == "resume") return phase_resume();

  // Both: run phase in this process, resume in a fresh one to prove the
  // image survives the address space.
  int rc = phase_run();
  if (rc != 0) return rc;
  std::printf("--- re-executing %s --phase resume in a new process ---\n",
              argv[0]);
  std::fflush(stdout);
  pid_t pid = sys::spawn(sys::self_exe(), {"--phase", "resume"}, {});
  return sys::wait_child(pid);
}
