// Runtime checks and fatal-error handling.
//
// PM2 is a runtime system: internal invariant violations are programming
// errors and abort the process with a diagnostic (there is no meaningful way
// to "recover" a corrupted slot list).  User-facing errors (bad sizes,
// exhausted iso-area, transport failures) are reported through exceptions or
// status returns at the API layer instead.
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace pm2 {

/// Print a fatal diagnostic (file:line + message) to stderr and abort().
[[noreturn]] void panic(const char* file, int line, const std::string& msg);

namespace detail {

/// Stream-collecting helper so PM2_CHECK(x) << "context" works.
class Panicker {
 public:
  Panicker(const char* file, int line, const char* expr);
  [[noreturn]] ~Panicker() noexcept(false);
  template <typename T>
  Panicker& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace pm2

/// Always-on invariant check.  On failure prints the expression, any
/// streamed context, and aborts.
#define PM2_CHECK(expr)                                         \
  if (expr) {                                                   \
  } else                                                        \
    ::pm2::detail::Panicker(__FILE__, __LINE__, #expr)

/// Debug-only check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define PM2_DCHECK(expr) PM2_CHECK(true || (expr))
#else
#define PM2_DCHECK(expr) PM2_CHECK(expr)
#endif

/// Unconditional failure.
#define PM2_FATAL(msg) ::pm2::panic(__FILE__, __LINE__, (msg))
