// Monotonic time helpers for benches and the runtime.
#pragma once

#include <cstdint>
#include <ctime>

namespace pm2 {

/// Monotonic nanoseconds since an arbitrary origin.
inline uint64_t now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

inline double now_us() { return static_cast<double>(now_ns()) / 1e3; }

/// Simple interval timer.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_us() const { return static_cast<double>(elapsed_ns()) / 1e3; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }

 private:
  uint64_t start_;
};

}  // namespace pm2
