// Leveled, node-tagged logging.
//
// Every PM2 node (process or in-process logical node) tags its output with
// "[nodeN]" exactly like the traces in the paper (Fig. 8).  The log level is
// controlled by set_level() or the PM2_LOG environment variable
// (error|warn|info|debug|trace).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace pm2::log {

enum class Level : int { kError = 0, kWarn, kInfo, kDebug, kTrace };

/// Global minimum level; messages below it are discarded.
void set_level(Level level);
Level level();

/// Initialise from the PM2_LOG environment variable (no-op if unset).
void init_from_env();

/// Node id used in the "[nodeN]" prefix for this kernel thread, -1 = no tag.
/// The PM2 runtime sets this per logical node.
void set_thread_node(int node);
int thread_node();

/// Emit one formatted line (thread-safe, single write to stderr).
void write_line(Level level, const std::string& msg);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write_line(level_, stream_.str()); }
  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace pm2::log

#define PM2_LOG(lvl)                              \
  if (::pm2::log::level() < (lvl)) {              \
  } else                                          \
    ::pm2::log::detail::LineBuilder(lvl)

#define PM2_ERROR PM2_LOG(::pm2::log::Level::kError)
#define PM2_WARN PM2_LOG(::pm2::log::Level::kWarn)
#define PM2_INFO PM2_LOG(::pm2::log::Level::kInfo)
#define PM2_DEBUG PM2_LOG(::pm2::log::Level::kDebug)
#define PM2_TRACE PM2_LOG(::pm2::log::Level::kTrace)
