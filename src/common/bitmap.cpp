#include "common/bitmap.hpp"

#include <bit>

#include "common/check.hpp"

namespace pm2 {

Bitmap::Bitmap(size_t nbits)
    : nbits_(nbits), words_((nbits + kWordBits - 1) / kWordBits, 0) {}

bool Bitmap::test(size_t i) const {
  PM2_DCHECK(i < nbits_) << "bit " << i << " size " << nbits_;
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void Bitmap::set(size_t i) {
  PM2_DCHECK(i < nbits_);
  words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
}

void Bitmap::clear(size_t i) {
  PM2_DCHECK(i < nbits_);
  words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
}

void Bitmap::set_range(size_t first, size_t count) {
  PM2_DCHECK(first + count <= nbits_);
  for (size_t i = first; i < first + count; ++i) set(i);
}

void Bitmap::clear_range(size_t first, size_t count) {
  PM2_DCHECK(first + count <= nbits_);
  for (size_t i = first; i < first + count; ++i) clear(i);
}

bool Bitmap::all_set(size_t first, size_t count) const {
  PM2_DCHECK(first + count <= nbits_);
  for (size_t i = first; i < first + count; ++i)
    if (!test(i)) return false;
  return true;
}

bool Bitmap::none_set(size_t first, size_t count) const {
  PM2_DCHECK(first + count <= nbits_);
  for (size_t i = first; i < first + count; ++i)
    if (test(i)) return false;
  return true;
}

size_t Bitmap::count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

std::optional<size_t> Bitmap::find_first_set(size_t from) const {
  if (from >= nbits_) return std::nullopt;
  size_t wi = from / kWordBits;
  uint64_t w = words_[wi] & (~uint64_t{0} << (from % kWordBits));
  while (true) {
    if (w != 0) {
      size_t bit = wi * kWordBits + static_cast<size_t>(std::countr_zero(w));
      if (bit >= nbits_) return std::nullopt;
      return bit;
    }
    if (++wi >= words_.size()) return std::nullopt;
    w = words_[wi];
  }
}

std::optional<size_t> Bitmap::find_run(size_t run, size_t from) const {
  PM2_CHECK(run > 0);
  size_t pos = from;
  while (true) {
    auto start = find_first_set(pos);
    if (!start) return std::nullopt;
    // Extend the run from *start as far as needed.
    size_t i = *start;
    size_t end = *start + run;
    if (end > nbits_) return std::nullopt;
    while (i < end && test(i)) ++i;
    if (i == end) return *start;
    pos = i + 1;  // bit i is clear; restart after it
  }
}

std::optional<size_t> Bitmap::find_best_run(size_t run) const {
  PM2_CHECK(run > 0);
  std::optional<size_t> best;
  size_t best_len = SIZE_MAX;
  size_t pos = 0;
  while (true) {
    auto start = find_first_set(pos);
    if (!start) break;
    size_t i = *start;
    while (i < nbits_ && test(i)) ++i;
    size_t len = i - *start;
    if (len >= run && len < best_len) {
      best = *start;
      best_len = len;
      if (len == run) break;  // cannot do better
    }
    pos = i + 1;
  }
  return best;
}

void Bitmap::or_with(const Bitmap& other) {
  PM2_CHECK(nbits_ == other.nbits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitmap::subtract(const Bitmap& other) {
  PM2_CHECK(nbits_ == other.nbits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

bool Bitmap::intersects(const Bitmap& other) const {
  PM2_CHECK(nbits_ == other.nbits_);
  for (size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

Bitmap Bitmap::from_words(size_t nbits, std::vector<uint64_t> words) {
  Bitmap b;
  b.nbits_ = nbits;
  PM2_CHECK(words.size() == (nbits + kWordBits - 1) / kWordBits);
  b.words_ = std::move(words);
  return b;
}

}  // namespace pm2
