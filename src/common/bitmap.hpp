// Dynamic bitmap with contiguous-run search.
//
// This is the data structure behind the slot layer of isomalloc (paper
// §4.2): each node keeps one bit per slot of the iso-address area, 1 meaning
// "owned by this node and free".  The negotiation algorithm (paper §4.4)
// needs bitwise OR across node bitmaps and first-fit search for a run of n
// set bits; both are provided here on 64-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace pm2 {

class Bitmap {
 public:
  Bitmap() = default;
  /// Create a bitmap of `nbits` bits, all cleared.
  explicit Bitmap(size_t nbits);

  size_t size() const { return nbits_; }

  bool test(size_t i) const;
  void set(size_t i);
  void clear(size_t i);
  /// Set/clear a contiguous range [first, first+count).
  void set_range(size_t first, size_t count);
  void clear_range(size_t first, size_t count);
  /// True iff every bit in [first, first+count) is set.
  bool all_set(size_t first, size_t count) const;
  /// True iff every bit in [first, first+count) is clear.
  bool none_set(size_t first, size_t count) const;

  /// Number of set bits.
  size_t count() const;

  /// Index of the first set bit at or after `from`, or nullopt.
  std::optional<size_t> find_first_set(size_t from = 0) const;

  /// First-fit search: index of the first run of `run` consecutive set bits
  /// starting at or after `from`, or nullopt.  This is the search used both
  /// for local multi-slot allocation and inside the global negotiation.
  std::optional<size_t> find_run(size_t run, size_t from = 0) const;

  /// Best-fit search: the start of the *smallest* run of set bits that still
  /// holds `run` bits (ties: lowest address).  Used by the best-fit ablation.
  std::optional<size_t> find_best_run(size_t run) const;

  /// this |= other.  Sizes must match.
  void or_with(const Bitmap& other);
  /// this &= ~other.  Sizes must match.
  void subtract(const Bitmap& other);

  /// True iff (this & other) has any set bit (ownership overlap detector).
  bool intersects(const Bitmap& other) const;

  /// Serialize to / from a flat little-endian word vector (for shipping
  /// bitmaps during negotiation).
  std::vector<uint64_t> words() const { return words_; }
  static Bitmap from_words(size_t nbits, std::vector<uint64_t> words);

  bool operator==(const Bitmap& other) const = default;

 private:
  static constexpr size_t kWordBits = 64;
  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace pm2
