// Deterministic, fast PRNG (xoshiro256**) for property tests, workload
// generators and benchmarks.  Reproducibility beats std::mt19937's weight
// here; all workloads are seeded explicitly.
#pragma once

#include <cstdint>

namespace pm2 {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 to spread the seed over the state.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  uint64_t next_below(uint64_t bound) { return bound ? next() % bound : 0; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t next_range(uint64_t lo, uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace pm2
