#include "common/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

namespace pm2::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
thread_local int t_node = -1;

const char* level_name(Level l) {
  switch (l) {
    case Level::kError:
      return "E";
    case Level::kWarn:
      return "W";
    case Level::kInfo:
      return "I";
    case Level::kDebug:
      return "D";
    case Level::kTrace:
      return "T";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level)); }

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

void init_from_env() {
  const char* env = std::getenv("PM2_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "error") == 0) set_level(Level::kError);
  else if (std::strcmp(env, "warn") == 0) set_level(Level::kWarn);
  else if (std::strcmp(env, "info") == 0) set_level(Level::kInfo);
  else if (std::strcmp(env, "debug") == 0) set_level(Level::kDebug);
  else if (std::strcmp(env, "trace") == 0) set_level(Level::kTrace);
}

void set_thread_node(int node) { t_node = node; }
int thread_node() { return t_node; }

void write_line(Level level, const std::string& msg) {
  char buf[4096];
  int n;
  if (t_node >= 0) {
    n = std::snprintf(buf, sizeof(buf), "[node%d] %s %s\n", t_node,
                      level_name(level), msg.c_str());
  } else {
    n = std::snprintf(buf, sizeof(buf), "%s %s\n", level_name(level),
                      msg.c_str());
  }
  if (n > 0) {
    size_t len = static_cast<size_t>(n) < sizeof(buf) ? static_cast<size_t>(n)
                                                      : sizeof(buf) - 1;
    [[maybe_unused]] ssize_t ignored = ::write(2, buf, len);
  }
}

}  // namespace pm2::log
