// Lightweight counters and latency histograms.
//
// Used by the isomalloc slot layer (negotiation counts, cache hit rates) and
// by the benchmark harnesses (E1–E4, A1–A4 in DESIGN.md) to report the same
// quantities the paper discusses: allocation times, negotiation frequency,
// migration latency percentiles.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pm2 {

/// Fixed-boundary log-scale histogram of nanosecond samples.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(uint64_t ns);
  void merge(const LatencyHistogram& other);
  void reset();

  uint64_t count() const { return count_; }
  uint64_t min_ns() const { return count_ ? min_ : 0; }
  uint64_t max_ns() const { return max_; }
  double mean_ns() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  /// Approximate percentile (bucket upper bound), q in [0,1].
  uint64_t percentile_ns(double q) const;

  /// "count=.. mean=..us p50=.. p99=.. max=.." one-liner.
  std::string summary() const;

 private:
  static constexpr int kBuckets = 64;  // bucket i covers [2^i, 2^(i+1)) ns
  uint64_t buckets_[kBuckets];
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~uint64_t{0};
  uint64_t max_ = 0;
};

/// Monotonic counter with plain-integer syntax over relaxed atomics.
/// Increment sites and readers keep looking like `++c` / `uint64_t v = c`,
/// but with multiple scheduler workers bumping the same SlotManager's
/// counters (and bench --json dumping them mid-run) the plain uint64_t
/// original was a torn read/write data race.  Relaxed is enough: each
/// counter is an independent statistic, never used to order other memory.
class RelaxedCounter {
 public:
  constexpr RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t n) {
    v_.store(n, std::memory_order_relaxed);
    return *this;
  }
  operator uint64_t() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Named monotonically-increasing counters, grouped per subsystem instance.
/// Not global: each SlotManager / Runtime owns its own set so in-process
/// multi-node tests see per-node numbers.
struct SlotStats {
  RelaxedCounter slots_acquired;       // node -> thread handovers
  RelaxedCounter slots_released;       // thread -> node handovers
  RelaxedCounter multi_slot_requests;  // requests needing > 1 contiguous slot
  RelaxedCounter negotiations;         // global negotiation phases initiated
  RelaxedCounter negotiated_slots;     // slots bought from remote nodes
  RelaxedCounter cache_hits;           // commit avoided via slot cache
  RelaxedCounter cache_misses;
  RelaxedCounter commits;              // actual VM commit operations
  RelaxedCounter decommits;

  std::string summary() const;
};

/// Counters are atomic: each Heap belongs to one PM2 thread, but with
/// multiple scheduler workers different threads' heap operations run on
/// different kernel threads concurrently, and observers (audit, benches)
/// read another thread's stats without stopping it.
struct HeapStats {
  std::atomic<uint64_t> allocs{0};
  std::atomic<uint64_t> frees{0};
  std::atomic<uint64_t> bytes_allocated{0};  // live bytes (payload)
  std::atomic<uint64_t> peak_bytes{0};
  std::atomic<uint64_t> block_splits{0};
  std::atomic<uint64_t> block_coalesces{0};
  std::atomic<uint64_t> slot_attach{0};      // slots added to a thread heap
  std::atomic<uint64_t> slot_detach{0};

  std::string summary() const;
};

}  // namespace pm2
