// Minimal byte-level serialization used by the madeleine pack/unpack layer,
// the migration wire format and the negotiation protocol.
//
// All integers are little-endian (the cluster is homogeneous by assumption 1
// of the paper §3.1, so this is a convention, not a conversion requirement).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace pm2 {

/// Append-only byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_bytes(const void* data, size_t len) {
    if (len == 0) return;  // empty vectors hand out data() == nullptr
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  void put_string(const std::string& s) {
    put<uint32_t>(static_cast<uint32_t>(s.size()));
    put_bytes(s.data(), s.size());
  }

  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<uint32_t>(static_cast<uint32_t>(v.size()));
    put_bytes(v.data(), v.size() * sizeof(T));
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential byte source over a borrowed buffer.
class ByteReader {
 public:
  ByteReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    PM2_CHECK(pos_ + sizeof(T) <= len_) << "serialized buffer underrun";
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void get_bytes(void* out, size_t len) {
    PM2_CHECK(pos_ + len <= len_) << "serialized buffer underrun";
    if (len == 0) return;  // `out` may be an empty vector's nullptr
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }

  /// Borrow `len` bytes in place (no copy); caller must not outlive buffer.
  const uint8_t* view_bytes(size_t len) {
    PM2_CHECK(pos_ + len <= len_) << "serialized buffer underrun";
    const uint8_t* p = data_ + pos_;
    pos_ += len;
    return p;
  }

  std::string get_string() {
    auto n = get<uint32_t>();
    // Validate the length prefix before allocating: corrupt input should
    // die with the underrun diagnostic, not a multi-GB allocation.
    PM2_CHECK(n <= remaining()) << "serialized buffer underrun";
    std::string s(n, '\0');
    get_bytes(s.data(), n);
    return s;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto n = get<uint32_t>();
    PM2_CHECK(size_t{n} * sizeof(T) <= remaining())
        << "serialized buffer underrun";
    std::vector<T> v(n);
    get_bytes(v.data(), size_t{n} * sizeof(T));
    return v;
  }

  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace pm2
