#include "common/check.hpp"

#include <unistd.h>

#include <cstdio>

namespace pm2 {

void panic(const char* file, int line, const std::string& msg) {
  // Single write so concurrent node processes do not interleave mid-line.
  char buf[4096];
  int n = std::snprintf(buf, sizeof(buf), "PM2 PANIC %s:%d: %s\n", file, line,
                        msg.c_str());
  if (n > 0) {
    [[maybe_unused]] ssize_t ignored = ::write(2, buf, static_cast<size_t>(n));
  }
  std::abort();
}

namespace detail {

Panicker::Panicker(const char* file, int line, const char* expr)
    : file_(file), line_(line) {
  stream_ << "check failed: " << expr << " ";
}

Panicker::~Panicker() noexcept(false) { panic(file_, line_, stream_.str()); }

}  // namespace detail
}  // namespace pm2
