#include "common/stats.hpp"

#include <bit>
#include <cstring>
#include <sstream>

namespace pm2 {

LatencyHistogram::LatencyHistogram() { reset(); }

void LatencyHistogram::reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  min_ = ~uint64_t{0};
  max_ = 0;
}

void LatencyHistogram::record(uint64_t ns) {
  int b = ns == 0 ? 0 : 64 - std::countl_zero(ns) - 1;
  if (b >= kBuckets) b = kBuckets - 1;
  ++buckets_[b];
  ++count_;
  sum_ += ns;
  if (ns < min_) min_ = ns;
  if (ns > max_) max_ = ns;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

uint64_t LatencyHistogram::percentile_ns(double q) const {
  if (count_ == 0) return 0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) return uint64_t{1} << (i + 1);  // bucket upper bound
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean_ns() / 1e3 << "us"
     << " min=" << static_cast<double>(min_ns()) / 1e3 << "us"
     << " p50=" << static_cast<double>(percentile_ns(0.5)) / 1e3 << "us"
     << " p99=" << static_cast<double>(percentile_ns(0.99)) / 1e3 << "us"
     << " max=" << static_cast<double>(max_) / 1e3 << "us";
  return os.str();
}

std::string SlotStats::summary() const {
  std::ostringstream os;
  os << "acquired=" << slots_acquired << " released=" << slots_released
     << " multi=" << multi_slot_requests << " negotiations=" << negotiations
     << " negotiated_slots=" << negotiated_slots << " cache_hit=" << cache_hits
     << " cache_miss=" << cache_misses << " commits=" << commits
     << " decommits=" << decommits;
  return os.str();
}

std::string HeapStats::summary() const {
  std::ostringstream os;
  os << "allocs=" << allocs << " frees=" << frees << " live=" << bytes_allocated
     << "B peak=" << peak_bytes << "B splits=" << block_splits
     << " coalesces=" << block_coalesces << " slot_attach=" << slot_attach
     << " slot_detach=" << slot_detach;
  return os.str();
}

}  // namespace pm2
