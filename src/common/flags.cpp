#include "common/flags.hpp"

#include <cstdlib>

namespace pm2 {

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name); }

std::string Flags::str(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::i64(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 0);
}

double Flags::f64(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::b(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace pm2
