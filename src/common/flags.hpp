// Tiny command-line flag parser for the examples and benchmark drivers.
// Supports --name=value, --name value, and bare --bool flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pm2 {

class Flags {
 public:
  /// Parse argv; unrecognized positional arguments are kept in order.
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string str(const std::string& name, const std::string& def = "") const;
  int64_t i64(const std::string& name, int64_t def) const;
  double f64(const std::string& name, double def) const;
  bool b(const std::string& name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pm2
