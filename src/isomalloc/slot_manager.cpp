#include "isomalloc/slot_manager.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace pm2::iso {

SlotManager::SlotManager(Area& area, const SlotManagerConfig& config)
    : area_(area),
      config_(config),
      bitmap_(initial_bitmap(config.distribution, area.n_slots(), config.node,
                             config.n_nodes, config.block_cyclic_block)) {}

std::optional<size_t> SlotManager::acquire(size_t count) {
  PM2_CHECK(count >= 1);
  if (count > 1) ++stats_.multi_slot_requests;

  std::optional<size_t> first;
  if (count == 1 && !cache_.empty()) {
    // Prefer a cached (already committed) slot: no VM call at all.
    size_t idx = *cache_.begin();
    PM2_DCHECK(bitmap_.test(idx)) << "cached slot not owned";
    cache_.erase(cache_.begin());
    bitmap_.clear(idx);
    ++stats_.cache_hits;
    ++stats_.slots_acquired;
    return idx;
  }
  if (count > 1) {
    // Multi-slot fast path: a fully cached contiguous stretch (a released
    // stack/heap run still committed) beats first-fit — no VM call at all.
    if (auto run = find_cached_run(count)) {
      PM2_DCHECK(bitmap_.all_set(*run, count)) << "cached run not owned";
      bitmap_.clear_range(*run, count);
      for (size_t i = *run; i < *run + count; ++i) cache_.erase(i);
      ++stats_.cache_hits;
      stats_.slots_acquired += count;
      return run;
    }
  }

  first = bitmap_.find_run(count);
  if (!first) return std::nullopt;
  bitmap_.clear_range(*first, count);
  commit_run(*first, count);
  stats_.slots_acquired += count;
  if (count == 1) ++stats_.cache_misses;
  return first;
}

bool SlotManager::acquire_at(size_t first, size_t count) {
  PM2_CHECK(count >= 1 && first + count <= area_.n_slots());
  if (!bitmap_.all_set(first, count)) return false;
  bitmap_.clear_range(first, count);
  for (size_t i = first; i < first + count; ++i) cache_.erase(i);
  stats_.slots_acquired += count;
  return true;
}

void SlotManager::commit_run(size_t first, size_t count) {
  // Slots inside the run that sit in the cache are already committed;
  // commit the rest.  Commit ranges maximally to batch mprotect calls.
  size_t i = first;
  while (i < first + count) {
    if (cache_.erase(i) > 0) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < first + count && cache_.count(j) == 0) ++j;
    area_.commit(i, j - i);
    ++stats_.commits;
    i = j;
  }
}

void SlotManager::release(size_t first, size_t count) {
  PM2_CHECK(count >= 1 && first + count <= area_.n_slots());
  PM2_CHECK(bitmap_.none_set(first, count))
      << "releasing slots the node already owns (double release?)";
  bitmap_.set_range(first, count);
  stats_.slots_released += count;
  if (cache_.size() + count <= config_.cache_capacity) {
    // Absorb the whole run (stays committed for cheap reuse): multi-slot
    // runs enter per slot, so a later acquire of any width over them pays
    // no mmap either (commit_run skips cached stretches).
    for (size_t i = first; i < first + count; ++i) cache_.insert(i);
    return;
  }
  area_.decommit(first, count);
  ++stats_.decommits;
}

std::optional<size_t> SlotManager::find_cached_run(size_t count) const {
  // Only reached for count > 1 (single-slot acquires pick straight from
  // the set).  The cache is small (capacity defaults to 64), so sorting a
  // snapshot per multi-slot acquire is cheaper than keeping run structure.
  if (count < 2 || cache_.size() < count) return std::nullopt;
  std::vector<size_t> sorted(cache_.begin(), cache_.end());
  std::sort(sorted.begin(), sorted.end());
  size_t len = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    len = sorted[i] == sorted[i - 1] + 1 ? len + 1 : 1;
    if (len == count) return sorted[i] - count + 1;
  }
  return std::nullopt;
}

void SlotManager::grant_slots(size_t first, size_t count) {
  PM2_CHECK(bitmap_.none_set(first, count)) << "granted slots already owned";
  bitmap_.set_range(first, count);
  stats_.negotiated_slots += count;
}

void SlotManager::surrender_slots(size_t first, size_t count) {
  PM2_CHECK(bitmap_.all_set(first, count)) << "surrendering slots not owned";
  bitmap_.clear_range(first, count);
  for (size_t i = first; i < first + count; ++i) {
    if (cache_.erase(i) > 0) {
      area_.decommit(i, 1);
      ++stats_.decommits;
    }
  }
}

void SlotManager::set_bitmap(pm2::Bitmap bitmap) {
  PM2_CHECK(bitmap.size() == area_.n_slots());
  bitmap_ = std::move(bitmap);
  // Drop cached commits for slots we no longer own.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (!bitmap_.test(*it)) {
      area_.decommit(*it, 1);
      ++stats_.decommits;
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void SlotManager::flush_cache() {
  for (size_t idx : cache_) {
    area_.decommit(idx, 1);
    ++stats_.decommits;
  }
  cache_.clear();
}

}  // namespace pm2::iso
