// Initial slot distributions (paper §4.1, "Slot distribution").
//
// At initialisation every slot of the iso-address area is given to exactly
// one node.  The distribution is a pure policy choice: it never affects
// correctness (any slot is usable by any node after ownership transfers),
// only the frequency of global negotiations for multi-slot requests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitmap.hpp"

namespace pm2::iso {

enum class Distribution {
  /// slot i -> node i mod p (the paper's default; "behaves rather poorly
  /// for multi-slot allocations").
  kRoundRobin,
  /// Series of B contiguous slots per node, cyclically.
  kBlockCyclic,
  /// The area split into p contiguous sub-areas, one per node ("not
  /// advisable if the heap of the container process needs to grow in
  /// unpredictable ways" — kept for the ablation).
  kPartitioned,
};

const char* to_string(Distribution d);
Distribution distribution_from_string(const std::string& s);

/// Build node `node`'s initial ownership bitmap.
pm2::Bitmap initial_bitmap(Distribution dist, size_t n_slots, uint32_t node,
                           uint32_t n_nodes, size_t block = 16);

/// Property helper (used by tests): no slot appears in two nodes' bitmaps.
/// This is the system-wide safety invariant; it must hold at any instant
/// (slots owned by threads are simply absent from every bitmap).
bool is_disjoint(const std::vector<pm2::Bitmap>& bitmaps);

/// Stronger property that holds at initialisation: the bitmaps are disjoint
/// *and* cover every slot (each slot owned by exactly one node).
bool is_partition(const std::vector<pm2::Bitmap>& bitmaps);

}  // namespace pm2::iso
