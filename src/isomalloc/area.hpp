// The iso-address area (paper §3.1, Fig. 5).
//
// A range of virtual addresses reserved at the *same fixed base* in every
// node process of the application.  All iso-address allocations — thread
// stacks and pm2_isomalloc'd data — live inside it, which is what makes
// same-address re-instantiation on another node possible.
//
// The area is carved into fixed-size *slots* (64 KB by default, "16 pages…
// chosen so as to fit a thread stack", §4.1).  The area object does only
// address arithmetic and commit/decommit; ownership policy lives in
// SlotManager.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sys/sanitizer.hpp"
#include "sys/vm.hpp"

namespace pm2::iso {

struct AreaConfig {
  /// Fixed virtual base.  0x5000'0000'0000 (80 TiB) sits far above the libc
  /// heap and far below the stack/mmap zone on x86-64 Linux, mirroring the
  /// paper's "between the process stack and the heap" placement.
  ///
  /// Under TSan the default moves to 0x5600'0000'0000: libtsan's x86-64
  /// shadow layout only treats 0x5500'0000'0000–0x5680'0000'0000 (plus the
  /// low heap and the high stack zones) as application memory, and accesses
  /// outside those ranges have no shadow — they fault inside the runtime.
  /// Every node process computes the same constant, so iso-address
  /// semantics are unchanged.
  uintptr_t base = sys::kTsan ? 0x5600'0000'0000ull : 0x5000'0000'0000ull;
  /// Total size of the area.  Virtual-only cost until committed.
  size_t size = 4ull << 30;  // 4 GiB -> 65536 slots of 64 KiB
  /// Slot granularity; must be a multiple of the page size.
  size_t slot_size = 64 * 1024;
  /// In-process multi-node sessions share one address space, so a node
  /// decommitting a slot it no longer owns (cache reconcile after selling
  /// it, migration-cache eviction) could yank pages the new owner already
  /// committed at the same addresses.  Real per-process nodes are immune —
  /// their mappings are private.  When true, decommit() keeps the pages
  /// committed (ownership bookkeeping is unaffected); set by the in-process
  /// app harness.
  bool skip_decommit = false;
};

/// Distinct area base for hand-built test/bench sessions: the k-th
/// 32 GiB-spaced base above the default (k >= 1; k = 0 is the default base
/// itself).  Tests that reserve their own areas must not collide with the
/// default runtime base, but hard-coded far-away constants fall outside
/// TSan's application address ranges — deriving from the (sanitizer-aware)
/// default keeps both properties.
inline uintptr_t offset_area_base(unsigned k) {
  return AreaConfig{}.base + uintptr_t{k} * 0x8'0000'0000ull;
}

class Area {
 public:
  /// Reserve the area (PROT_NONE).  Throws if the range is taken.
  explicit Area(const AreaConfig& config = {});

  Area(const Area&) = delete;
  Area& operator=(const Area&) = delete;

  uintptr_t base() const { return config_.base; }
  size_t size() const { return config_.size; }
  size_t slot_size() const { return config_.slot_size; }
  size_t n_slots() const { return config_.size / config_.slot_size; }

  /// Address of slot `index`.
  void* slot_addr(size_t index) const;
  /// Slot index containing `addr` (must be inside the area).
  size_t slot_of(const void* addr) const;
  bool contains(const void* addr) const;

  /// Make `count` slots starting at `first` read-writable.
  void commit(size_t first, size_t count);
  /// Release physical memory and access for the range.
  void decommit(size_t first, size_t count);
  /// Like decommit(), but ignores AreaConfig::skip_decommit.  Used by the
  /// slot store when it demotes a *thread-owned* run to the backing file:
  /// no other in-process node ever touches a thread-owned address, so
  /// yanking the pages is safe even in a shared-address-space session (and
  /// is the whole point — the demotion must actually free RAM).
  void decommit_force(size_t first, size_t count);

  /// For tests: is the first byte of the slot readable?
  bool committed(size_t index) const;

 private:
  AreaConfig config_;
  sys::VmReservation reservation_;
};

}  // namespace pm2::iso
