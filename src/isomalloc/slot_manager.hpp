// Per-node slot ownership (paper §4.2, "Managing slots").
//
// Each node tracks the slots it owns in a private bitmap: bit = 1 means
// "owned by this node and free"; 0 means "owned by another node (free
// there) or by some thread (anywhere)".  Acquire hands slots to threads and
// clears bits; release takes slots back from threads and sets bits —
// possibly on a *different* node than the one the slot was acquired from,
// which is how nodes end up owning slots they did not start with.
//
// Pure node-local component: no networking.  When a contiguous run cannot
// be satisfied locally, acquire() returns nullopt and the caller (the PM2
// runtime) launches the global negotiation (negotiation.hpp), updates the
// bitmap through apply_purchase()/grant_slots(), and retries.
//
// Includes the paper's §6 optimization: a process-wide cache of committed
// empty slots, saving the commit/decommit (mmap) round-trip on slot churn.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/bitmap.hpp"
#include "common/stats.hpp"
#include "isomalloc/area.hpp"
#include "isomalloc/distribution.hpp"

namespace pm2::iso {

/// Slot provisioning as seen by a thread heap.  SlotManager implements it
/// directly (node-local policy only); the PM2 runtime interposes an adapter
/// that adds global negotiation on acquire misses and defers releases while
/// a negotiation freezes the bitmap.
class SlotOps {
 public:
  virtual ~SlotOps() = default;
  /// Contiguous run of `count` slots, committed, now thread-owned; nullopt
  /// when unobtainable.
  virtual std::optional<size_t> acquire(size_t count) = 0;
  virtual void release(size_t first, size_t count) = 0;
  virtual Area& area() = 0;
};

struct SlotManagerConfig {
  uint32_t node = 0;
  uint32_t n_nodes = 1;
  Distribution distribution = Distribution::kRoundRobin;
  size_t block_cyclic_block = 16;
  /// Max committed-but-free slots kept mapped (0 disables the cache).
  size_t cache_capacity = 64;
};

class SlotManager final : public SlotOps {
 public:
  SlotManager(Area& area, const SlotManagerConfig& config);

  /// Take `count` contiguous owned slots (first-fit over the bitmap),
  /// commit their memory, and hand them to the caller (the bits are
  /// cleared: the slots now belong to a thread).  Returns the first slot
  /// index, or nullopt when no owned run of that length exists — the
  /// signal to negotiate.
  std::optional<size_t> acquire(size_t count) override;

  /// Claim a *specific* run the node currently owns (checkpoint restore
  /// needs the exact slots recorded in the image).  Clears the bits and
  /// drops any cached commits without decommitting (the caller re-commits
  /// or reuses them).  Returns false if any slot is not owned-and-free.
  bool acquire_at(size_t first, size_t count);

  /// Give slots back to this node (thread released or died here).  Memory
  /// is decommitted unless the whole run fits in the committed-slot cache
  /// (any width — multi-slot stack/heap runs are absorbed per slot, so
  /// run churn pays no commit/decommit mmap round trip either).
  void release(size_t first, size_t count) override;

  /// Adopt slots bought for us during a negotiation: the bits become ours.
  /// The slots are *not* committed (acquire() will do that when used).
  void grant_slots(size_t first, size_t count);

  /// Surrender slots sold to another node during a negotiation.  Any cached
  /// commit is dropped.
  void surrender_slots(size_t first, size_t count);

  /// Replace the whole bitmap (scatter step of the negotiation, paper
  /// §4.4 step e).  Reconciles the slot cache against lost ownership.
  void set_bitmap(pm2::Bitmap bitmap);

  const pm2::Bitmap& bitmap() const { return bitmap_; }
  Area& area() override { return area_; }
  const SlotManagerConfig& config() const { return config_; }

  size_t owned_free_slots() const { return bitmap_.count(); }
  size_t cached_slots() const { return cache_.size(); }

  SlotStats& stats() { return stats_; }
  const SlotStats& stats() const { return stats_; }

  /// Drop every cached slot (decommit).  For tests/ablation.
  void flush_cache();

 private:
  void commit_run(size_t first, size_t count);
  /// Contiguous stretch of `count` cached slots, or nullopt.
  std::optional<size_t> find_cached_run(size_t count) const;

  Area& area_;
  SlotManagerConfig config_;
  pm2::Bitmap bitmap_;
  /// Committed, owned, free slots (paper §6 cache, extended to multi-slot
  /// runs — absorbed per slot).  Kept as a set: membership matters when an
  /// acquired run partially overlaps cached slots.
  std::unordered_set<size_t> cache_;
  SlotStats stats_;
};

}  // namespace pm2::iso
