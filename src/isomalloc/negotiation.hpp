// Global negotiation for contiguous slots (paper §4.4).
//
// When a node cannot satisfy a multi-slot request locally it "buys" slots
// from other nodes under a system-wide critical section:
//
//   (a) enter the critical section        — pm2 runtime (lock server)
//   (b) gather the local bitmaps          — pm2 runtime (messages)
//   (c) compute a global OR               — plan_negotiation() below
//   (d) first-fit a run of n, mark bought
//       slots 1 at the requester, 0 at
//       their former owners               — plan_negotiation()/apply_plan()
//   (e) send back the updated bitmaps     — pm2 runtime
//   (f) exit the critical section         — pm2 runtime
//
// This file implements the *pure* parts (c)+(d) so they are unit- and
// property-testable without any networking; src/pm2/negotiation_engine.*
// wraps them in the message protocol.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitmap.hpp"
#include "isomalloc/block.hpp"

namespace pm2::iso {

/// Slots transferred from one former owner to the requester.
struct Purchase {
  uint32_t from_node = 0;
  uint32_t first = 0;
  uint32_t count = 0;

  bool operator==(const Purchase&) const = default;
};

struct NegotiationPlan {
  size_t first_slot = 0;  // start of the contiguous run
  size_t run = 0;         // length requested
  /// Non-local purchases only; slots the requester already owned inside the
  /// run appear in no purchase.
  std::vector<Purchase> purchases;
};

/// Steps (c)+(d): OR all bitmaps, first-fit a run of `run` set bits, and
/// decompose the non-requester-owned portion into per-owner purchases.
/// Returns nullopt if no run of that length exists globally.
std::optional<NegotiationPlan> plan_negotiation(
    const std::vector<pm2::Bitmap>& bitmaps, uint32_t requester, size_t run,
    FitPolicy fit = FitPolicy::kFirstFit);

/// Mutate the bitmaps according to the plan: purchased bits move from their
/// former owners to the requester.  After this the requester's bitmap
/// contains the full run (so a local acquire succeeds).
void apply_plan(std::vector<pm2::Bitmap>& bitmaps, uint32_t requester,
                const NegotiationPlan& plan);

/// Global defragmentation (paper §4.1: "Observe that nothing prevents the
/// system from triggering at any point a global negotiation phase, where
/// all nodes would simply exchange their (free) slots to maximize the
/// contiguity").
///
/// Produces new bitmaps in which each node owns the same *number* of free
/// slots as before, but packed into contiguous stretches: the global free
/// set (the OR of all bitmaps; thread-owned slots stay where they are, as
/// immovable holes) is swept in address order and dealt out to nodes in
/// maximal contiguous chunks.  Pure function; the runtime wraps it in the
/// same lock/gather/scatter protocol as a normal negotiation.
std::vector<pm2::Bitmap> plan_defragmentation(
    const std::vector<pm2::Bitmap>& bitmaps);

}  // namespace pm2::iso
