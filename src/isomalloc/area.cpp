#include "isomalloc/area.hpp"

#include "common/check.hpp"

namespace pm2::iso {

Area::Area(const AreaConfig& config)
    : config_(config),
      reservation_(config.base, config.size) {
  PM2_CHECK(config_.slot_size % sys::page_size() == 0)
      << "slot size must be page aligned";
  PM2_CHECK(config_.size % config_.slot_size == 0)
      << "area size must be a whole number of slots";
  PM2_CHECK(n_slots() >= 2) << "area too small";
}

void* Area::slot_addr(size_t index) const {
  PM2_DCHECK(index < n_slots());
  return reinterpret_cast<void*>(config_.base + index * config_.slot_size);
}

size_t Area::slot_of(const void* addr) const {
  auto a = reinterpret_cast<uintptr_t>(addr);
  PM2_CHECK(a >= config_.base && a < config_.base + config_.size)
      << "address outside iso-area";
  return (a - config_.base) / config_.slot_size;
}

bool Area::contains(const void* addr) const {
  auto a = reinterpret_cast<uintptr_t>(addr);
  return a >= config_.base && a < config_.base + config_.size;
}

void Area::commit(size_t first, size_t count) {
  PM2_CHECK(first + count <= n_slots());
  reservation_.commit(config_.base + first * config_.slot_size,
                      count * config_.slot_size);
}

void Area::decommit(size_t first, size_t count) {
  PM2_CHECK(first + count <= n_slots());
  if (config_.skip_decommit) return;  // see AreaConfig::skip_decommit
  reservation_.decommit(config_.base + first * config_.slot_size,
                        count * config_.slot_size);
}

void Area::decommit_force(size_t first, size_t count) {
  PM2_CHECK(first + count <= n_slots());
  reservation_.decommit(config_.base + first * config_.slot_size,
                        count * config_.slot_size);
}

bool Area::committed(size_t index) const {
  return sys::probe_readable(
      config_.base + index * config_.slot_size, 1);
}

}  // namespace pm2::iso
