#include "isomalloc/distribution.hpp"

#include "common/check.hpp"

namespace pm2::iso {

const char* to_string(Distribution d) {
  switch (d) {
    case Distribution::kRoundRobin:
      return "round-robin";
    case Distribution::kBlockCyclic:
      return "block-cyclic";
    case Distribution::kPartitioned:
      return "partitioned";
  }
  return "?";
}

Distribution distribution_from_string(const std::string& s) {
  if (s == "round-robin" || s == "rr") return Distribution::kRoundRobin;
  if (s == "block-cyclic" || s == "bc") return Distribution::kBlockCyclic;
  if (s == "partitioned" || s == "part") return Distribution::kPartitioned;
  PM2_FATAL("unknown distribution: " + s);
}

pm2::Bitmap initial_bitmap(Distribution dist, size_t n_slots, uint32_t node,
                           uint32_t n_nodes, size_t block) {
  PM2_CHECK(n_nodes >= 1 && node < n_nodes);
  pm2::Bitmap bitmap(n_slots);
  switch (dist) {
    case Distribution::kRoundRobin:
      for (size_t i = node; i < n_slots; i += n_nodes) bitmap.set(i);
      break;
    case Distribution::kBlockCyclic: {
      PM2_CHECK(block >= 1);
      for (size_t i = 0; i < n_slots; ++i) {
        if ((i / block) % n_nodes == node) bitmap.set(i);
      }
      break;
    }
    case Distribution::kPartitioned: {
      size_t per = n_slots / n_nodes;
      size_t first = node * per;
      size_t count = (node == n_nodes - 1) ? n_slots - first : per;
      bitmap.set_range(first, count);
      break;
    }
  }
  return bitmap;
}

bool is_disjoint(const std::vector<pm2::Bitmap>& bitmaps) {
  if (bitmaps.empty()) return false;
  size_t n = bitmaps[0].size();
  for (const auto& b : bitmaps) {
    if (b.size() != n) return false;
  }
  for (size_t i = 0; i < bitmaps.size(); ++i) {
    for (size_t j = i + 1; j < bitmaps.size(); ++j) {
      if (bitmaps[i].intersects(bitmaps[j])) return false;
    }
  }
  return true;
}

bool is_partition(const std::vector<pm2::Bitmap>& bitmaps) {
  if (!is_disjoint(bitmaps)) return false;
  size_t total = 0;
  for (const auto& b : bitmaps) total += b.count();
  return total == bitmaps[0].size();
}

}  // namespace pm2::iso
