// The block layer (paper §3.3, §4.3): malloc-compatible arbitrary-size
// allocation *inside* slots.
//
// Each heap slot carries a doubly-linked list of free blocks; blocks have
// headers storing their size and physical/free-list links.  Allocation is
// first-fit (the paper's choice) with optional best-fit for the ablation;
// freeing coalesces with both physical neighbours.
//
// All functions here are pure slot-local operations — they never touch the
// bitmap or the network.  heap.hpp composes them with SlotManager into the
// pm2_isomalloc call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "isomalloc/layout.hpp"

namespace pm2::iso {

enum class FitPolicy { kFirstFit, kBestFit };

/// Initialise a freshly committed run of `nslots` slots at `base` as one
/// heap slot containing a single free block spanning all usable space.
SlotHeader* init_heap_slot(void* base, uint32_t nslots, size_t slot_size,
                           uint64_t owner_thread);

/// Initialise a stack slot (no blocks; descriptor+stack live in the body).
SlotHeader* init_stack_slot(void* base, uint32_t nslots, size_t slot_size,
                            uint64_t owner_thread);

/// Try to carve `payload_size` bytes out of `slot`'s free list.
/// Returns the payload pointer or nullptr if no free block fits.
void* block_alloc(SlotHeader* slot, size_t payload_size, size_t slot_size,
                  FitPolicy fit, uint64_t* splits = nullptr);

/// Like block_alloc but the returned payload is aligned to `align` (a power
/// of two ≥ 16).  Implemented by splitting a leading free remainder off the
/// chosen block, so the result frees like any other block.
void* block_alloc_aligned(SlotHeader* slot, size_t payload_size, size_t align,
                          size_t slot_size, FitPolicy fit,
                          uint64_t* splits = nullptr);

/// Free a payload pointer previously returned by block_alloc on any slot.
/// Coalesces with free physical neighbours.  Returns the owning slot, and
/// sets *slot_now_empty if the slot is entirely free afterwards.
SlotHeader* block_free(void* payload, size_t slot_size, bool* slot_now_empty,
                       uint64_t* coalesces = nullptr);

/// Payload size of an allocated block (for realloc).
size_t block_payload_size(void* payload);

/// True if `slot` consists of exactly one free block covering all usable
/// space (i.e. it can be detached and returned to the node).
bool slot_empty(const SlotHeader* slot, size_t slot_size);

/// Total free payload bytes in the slot's free list.
size_t slot_free_bytes(const SlotHeader* slot);

/// Largest single free payload available in the slot.
size_t slot_largest_free(const SlotHeader* slot);

/// Walk all physical blocks of a heap slot in address order.
void for_each_block(SlotHeader* slot, size_t slot_size,
                    const std::function<void(BlockHeader*)>& fn);

/// Heavyweight invariant checker for tests: physical chain covers the slot
/// exactly, free list <-> free flags agree, no two adjacent free blocks
/// (full coalescing), headers sane.  Aborts (PM2_CHECK) on violation.
void check_slot_invariants(SlotHeader* slot, size_t slot_size);

/// Given a payload size, the number of contiguous slots a fresh allocation
/// would need (header overheads included).
size_t slots_needed(size_t payload_size, size_t slot_size);

}  // namespace pm2::iso
