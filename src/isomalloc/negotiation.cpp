#include "isomalloc/negotiation.hpp"

#include "common/check.hpp"

namespace pm2::iso {

std::optional<NegotiationPlan> plan_negotiation(
    const std::vector<pm2::Bitmap>& bitmaps, uint32_t requester, size_t run,
    FitPolicy fit) {
  PM2_CHECK(requester < bitmaps.size());
  PM2_CHECK(run >= 1);

  pm2::Bitmap global = bitmaps[0];
  for (size_t i = 1; i < bitmaps.size(); ++i) global.or_with(bitmaps[i]);

  std::optional<size_t> first = fit == FitPolicy::kFirstFit
                                    ? global.find_run(run)
                                    : global.find_best_run(run);
  if (!first) return std::nullopt;

  NegotiationPlan plan;
  plan.first_slot = *first;
  plan.run = run;

  // Decompose [first, first+run) into maximal per-owner segments.
  size_t i = *first;
  while (i < *first + run) {
    uint32_t owner = UINT32_MAX;
    for (uint32_t node = 0; node < bitmaps.size(); ++node) {
      if (bitmaps[node].test(i)) {
        owner = node;
        break;
      }
    }
    PM2_CHECK(owner != UINT32_MAX)
        << "slot " << i << " set in global OR but owned by no node";
    size_t j = i + 1;
    while (j < *first + run && bitmaps[owner].test(j)) ++j;
    if (owner != requester) {
      plan.purchases.push_back(Purchase{owner, static_cast<uint32_t>(i),
                                        static_cast<uint32_t>(j - i)});
    }
    i = j;
  }
  return plan;
}

void apply_plan(std::vector<pm2::Bitmap>& bitmaps, uint32_t requester,
                const NegotiationPlan& plan) {
  PM2_CHECK(requester < bitmaps.size());
  for (const Purchase& p : plan.purchases) {
    PM2_CHECK(p.from_node < bitmaps.size() && p.from_node != requester);
    PM2_CHECK(bitmaps[p.from_node].all_set(p.first, p.count))
        << "purchase from node " << p.from_node << " of unowned slots";
    bitmaps[p.from_node].clear_range(p.first, p.count);
    bitmaps[requester].set_range(p.first, p.count);
  }
  PM2_CHECK(bitmaps[requester].all_set(plan.first_slot, plan.run))
      << "plan application left holes in the negotiated run";
}

std::vector<pm2::Bitmap> plan_defragmentation(
    const std::vector<pm2::Bitmap>& bitmaps) {
  PM2_CHECK(!bitmaps.empty());
  const size_t n_slots = bitmaps[0].size();
  const size_t n_nodes = bitmaps.size();

  // Quotas: every node keeps exactly the free-slot count it brought in.
  std::vector<size_t> quota(n_nodes);
  for (size_t node = 0; node < n_nodes; ++node)
    quota[node] = bitmaps[node].count();

  pm2::Bitmap global = bitmaps[0];
  for (size_t i = 1; i < n_nodes; ++i) global.or_with(bitmaps[i]);

  // Deal the free set out in address order, one node at a time, so each
  // node's quota lands in as few contiguous stretches as the immovable
  // thread-owned holes allow.
  std::vector<pm2::Bitmap> result;
  result.reserve(n_nodes);
  for (size_t node = 0; node < n_nodes; ++node)
    result.emplace_back(n_slots);
  size_t node = 0;
  size_t given = 0;
  for (size_t i = 0; i < n_slots && node < n_nodes; ++i) {
    if (!global.test(i)) continue;
    while (node < n_nodes && given == quota[node]) {
      ++node;
      given = 0;
    }
    if (node == n_nodes) break;
    result[node].set(i);
    ++given;
  }
  return result;
}

}  // namespace pm2::iso
