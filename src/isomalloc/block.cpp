#include "isomalloc/block.hpp"

#include <cstring>

#include "common/check.hpp"

namespace pm2::iso {

namespace {

size_t round_up(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

/// Physical successor of `b` within its slot run, or nullptr at the end.
BlockHeader* next_phys(BlockHeader* b, size_t slot_size) {
  char* end = slot_space_end(b->slot, slot_size);
  char* next = reinterpret_cast<char*>(b) + b->size;
  PM2_DCHECK(next <= end) << "block overruns its slot";
  return next < end ? reinterpret_cast<BlockHeader*>(next) : nullptr;
}

void freelist_insert(SlotHeader* slot, BlockHeader* b) {
  // Address-ordered insertion keeps first-fit deterministic (lowest
  // address wins) and makes the policy comparison in the benches honest.
  b->free = 1;
  BlockHeader* after = nullptr;
  for (BlockHeader* cur = slot->free_head; cur != nullptr && cur < b;
       cur = cur->fnext)
    after = cur;
  if (after == nullptr) {
    b->fprev = nullptr;
    b->fnext = slot->free_head;
    if (slot->free_head != nullptr) slot->free_head->fprev = b;
    slot->free_head = b;
  } else {
    b->fprev = after;
    b->fnext = after->fnext;
    if (after->fnext != nullptr) after->fnext->fprev = b;
    after->fnext = b;
  }
}

void freelist_remove(SlotHeader* slot, BlockHeader* b) {
  if (b->fprev != nullptr)
    b->fprev->fnext = b->fnext;
  else
    slot->free_head = b->fnext;
  if (b->fnext != nullptr) b->fnext->fprev = b->fprev;
  b->fnext = nullptr;
  b->fprev = nullptr;
  b->free = 0;
}

}  // namespace

SlotHeader* init_heap_slot(void* base, uint32_t nslots, size_t slot_size,
                           uint64_t owner_thread) {
  auto* slot = new (base) SlotHeader();
  slot->nslots = nslots;
  slot->kind = SlotKind::kHeap;
  slot->owner_thread = owner_thread;

  auto* block = reinterpret_cast<BlockHeader*>(slot_space_begin(slot));
  *block = BlockHeader();
  block->size = static_cast<uint64_t>(slot_space_end(slot, slot_size) -
                                      reinterpret_cast<char*>(block));
  block->slot = slot;
  block->prev_phys = nullptr;
  freelist_insert(slot, block);
  return slot;
}

SlotHeader* init_stack_slot(void* base, uint32_t nslots, size_t slot_size,
                            uint64_t owner_thread) {
  (void)slot_size;
  auto* slot = new (base) SlotHeader();
  slot->nslots = nslots;
  slot->kind = SlotKind::kStack;
  slot->owner_thread = owner_thread;
  return slot;
}

void* block_alloc(SlotHeader* slot, size_t payload_size, size_t slot_size,
                  FitPolicy fit, uint64_t* splits) {
  PM2_DCHECK(slot->valid() && slot->kind == SlotKind::kHeap);
  size_t rounded = round_up(payload_size, kBlockAlign);
  if (rounded < kMinPayload) rounded = kMinPayload;  // malloc(0) stays unique
  size_t need = sizeof(BlockHeader) + rounded;

  BlockHeader* chosen = nullptr;
  if (fit == FitPolicy::kFirstFit) {
    for (BlockHeader* b = slot->free_head; b != nullptr; b = b->fnext) {
      if (b->size >= need) {
        chosen = b;
        break;
      }
    }
  } else {
    for (BlockHeader* b = slot->free_head; b != nullptr; b = b->fnext) {
      if (b->size >= need && (chosen == nullptr || b->size < chosen->size))
        chosen = b;
    }
  }
  if (chosen == nullptr) return nullptr;

  freelist_remove(slot, chosen);
  // Split if the remainder can hold a viable free block.
  size_t remainder = chosen->size - need;
  if (remainder >= sizeof(BlockHeader) + kMinPayload) {
    chosen->size = need;
    auto* rest = reinterpret_cast<BlockHeader*>(
        reinterpret_cast<char*>(chosen) + need);
    *rest = BlockHeader();
    rest->size = remainder;
    rest->slot = slot;
    rest->prev_phys = chosen;
    // The block after the remainder (if any) must point back at `rest`.
    BlockHeader* after = next_phys(rest, slot_size);
    if (after != nullptr) after->prev_phys = rest;
    freelist_insert(slot, rest);
    if (splits != nullptr) ++*splits;
  }
  return chosen->payload();
}

void* block_alloc_aligned(SlotHeader* slot, size_t payload_size, size_t align,
                          size_t slot_size, FitPolicy fit, uint64_t* splits) {
  PM2_CHECK(align >= kBlockAlign && (align & (align - 1)) == 0)
      << "alignment must be a power of two >= " << kBlockAlign;
  if (align == kBlockAlign)
    return block_alloc(slot, payload_size, slot_size, fit, splits);

  size_t rounded = round_up(payload_size, kBlockAlign);
  if (rounded < kMinPayload) rounded = kMinPayload;
  const size_t need_tail = sizeof(BlockHeader) + rounded;
  const size_t min_front = sizeof(BlockHeader) + kMinPayload;

  // Scan free blocks for one where an aligned payload fits after carving a
  // viable leading free block (or none, if already aligned).
  BlockHeader* chosen = nullptr;
  uintptr_t chosen_payload = 0;
  for (BlockHeader* b = slot->free_head; b != nullptr; b = b->fnext) {
    auto start = reinterpret_cast<uintptr_t>(b);
    uintptr_t payload0 = start + sizeof(BlockHeader);
    uintptr_t aligned = (payload0 + align - 1) & ~(align - 1);
    if (aligned != payload0) {
      // Leading gap must host a whole free block.
      while (aligned - start < min_front + sizeof(BlockHeader))
        aligned += align;
    }
    uintptr_t end = start + b->size;
    if (aligned + rounded > end) continue;
    bool better = chosen == nullptr ||
                  (fit == FitPolicy::kBestFit && b->size < chosen->size);
    if (better) {
      chosen = b;
      chosen_payload = aligned;
      if (fit == FitPolicy::kFirstFit) break;
    }
  }
  if (chosen == nullptr) return nullptr;

  freelist_remove(slot, chosen);
  uintptr_t start = reinterpret_cast<uintptr_t>(chosen);
  uintptr_t block_at = chosen_payload - sizeof(BlockHeader);

  if (block_at != start) {
    // Split the leading gap off as a free block.
    size_t front_size = block_at - start;
    auto* body = reinterpret_cast<BlockHeader*>(block_at);
    *body = BlockHeader();
    body->size = chosen->size - front_size;
    body->slot = slot;
    body->prev_phys = chosen;
    chosen->size = front_size;
    freelist_insert(slot, chosen);  // the gap stays free
    BlockHeader* after = next_phys(body, slot_size);
    if (after != nullptr) after->prev_phys = body;
    if (splits != nullptr) ++*splits;
    chosen = body;
    chosen->free = 0;
  }

  // Split the tail remainder exactly like block_alloc does.
  size_t remainder = chosen->size - need_tail;
  if (remainder >= sizeof(BlockHeader) + kMinPayload) {
    chosen->size = need_tail;
    auto* rest = reinterpret_cast<BlockHeader*>(
        reinterpret_cast<char*>(chosen) + need_tail);
    *rest = BlockHeader();
    rest->size = remainder;
    rest->slot = slot;
    rest->prev_phys = chosen;
    BlockHeader* after = next_phys(rest, slot_size);
    if (after != nullptr) after->prev_phys = rest;
    freelist_insert(slot, rest);
    if (splits != nullptr) ++*splits;
  }
  PM2_DCHECK(reinterpret_cast<uintptr_t>(chosen->payload()) % align == 0);
  return chosen->payload();
}

SlotHeader* block_free(void* payload, size_t slot_size, bool* slot_now_empty,
                       uint64_t* coalesces) {
  BlockHeader* b = BlockHeader::of_payload(payload);
  PM2_CHECK(b->valid()) << "pm2_isofree: not an isomalloc block";
  PM2_CHECK(!b->free) << "pm2_isofree: double free";
  SlotHeader* slot = b->slot;
  PM2_CHECK(slot->valid()) << "pm2_isofree: corrupt slot header";

  // Coalesce with the physical successor first (so its links are dropped
  // while still reachable), then with the predecessor.
  BlockHeader* next = next_phys(b, slot_size);
  if (next != nullptr && next->free) {
    freelist_remove(slot, next);
    b->size += next->size;
    next->magic = 0;
    if (coalesces != nullptr) ++*coalesces;
    next = next_phys(b, slot_size);
  }
  if (next != nullptr) next->prev_phys = b;

  BlockHeader* prev = b->prev_phys;
  if (prev != nullptr && prev->free) {
    // prev stays in the free list; it just grows.
    prev->size += b->size;
    b->magic = 0;
    if (next != nullptr) next->prev_phys = prev;
    if (coalesces != nullptr) ++*coalesces;
    b = prev;
  } else {
    freelist_insert(slot, b);
  }

  if (slot_now_empty != nullptr) *slot_now_empty = slot_empty(slot, slot_size);
  return slot;
}

size_t block_payload_size(void* payload) {
  BlockHeader* b = BlockHeader::of_payload(payload);
  PM2_CHECK(b->valid() && !b->free);
  return b->payload_size();
}

bool slot_empty(const SlotHeader* slot, size_t slot_size) {
  const BlockHeader* b = slot->free_head;
  if (b == nullptr || b->fnext != nullptr) return false;
  auto* h = const_cast<SlotHeader*>(slot);
  return reinterpret_cast<const char*>(b) == slot_space_begin(h) &&
         reinterpret_cast<const char*>(b) + b->size ==
             slot_space_end(h, slot_size);
}

size_t slot_free_bytes(const SlotHeader* slot) {
  size_t total = 0;
  for (const BlockHeader* b = slot->free_head; b != nullptr; b = b->fnext)
    total += b->size - sizeof(BlockHeader);
  return total;
}

size_t slot_largest_free(const SlotHeader* slot) {
  size_t best = 0;
  for (const BlockHeader* b = slot->free_head; b != nullptr; b = b->fnext)
    if (b->size - sizeof(BlockHeader) > best) best = b->size - sizeof(BlockHeader);
  return best;
}

void for_each_block(SlotHeader* slot, size_t slot_size,
                    const std::function<void(BlockHeader*)>& fn) {
  PM2_CHECK(slot->kind == SlotKind::kHeap);
  auto* b = reinterpret_cast<BlockHeader*>(slot_space_begin(slot));
  char* end = slot_space_end(slot, slot_size);
  while (reinterpret_cast<char*>(b) < end) {
    PM2_CHECK(b->valid()) << "corrupt block chain";
    fn(b);
    b = reinterpret_cast<BlockHeader*>(reinterpret_cast<char*>(b) + b->size);
  }
  PM2_CHECK(reinterpret_cast<char*>(b) == end) << "block chain misaligned";
}

void check_slot_invariants(SlotHeader* slot, size_t slot_size) {
  PM2_CHECK(slot->valid());
  if (slot->kind == SlotKind::kStack) return;

  // 1. physical chain covers the usable space exactly, back-links agree.
  BlockHeader* prev = nullptr;
  size_t free_blocks = 0;
  bool prev_free = false;
  for_each_block(slot, slot_size, [&](BlockHeader* b) {
    PM2_CHECK(b->slot == slot) << "block points at wrong slot";
    PM2_CHECK(b->prev_phys == prev) << "phys back-link broken";
    PM2_CHECK(b->size >= sizeof(BlockHeader) + kMinPayload)
        << "undersized block";
    if (b->free) {
      PM2_CHECK(!prev_free) << "two adjacent free blocks (missed coalesce)";
      ++free_blocks;
    }
    prev_free = b->free != 0;
    prev = b;
  });

  // 2. free list matches the free flags.
  size_t listed = 0;
  BlockHeader* lp = nullptr;
  for (BlockHeader* b = slot->free_head; b != nullptr; b = b->fnext) {
    PM2_CHECK(b->free) << "busy block on free list";
    PM2_CHECK(b->fprev == lp) << "free-list back-link broken";
    lp = b;
    ++listed;
  }
  PM2_CHECK(listed == free_blocks) << "free list / free flags disagree";
}

size_t slots_needed(size_t payload_size, size_t slot_size) {
  size_t need = sizeof(SlotHeader) + sizeof(BlockHeader) +
                round_up(payload_size, kBlockAlign);
  return (need + slot_size - 1) / slot_size;
}

}  // namespace pm2::iso
