#include "isomalloc/heap.hpp"

#include <cstring>

#include "common/check.hpp"

namespace pm2::iso {

ThreadHeap::ThreadHeap(void** slot_list, uint64_t owner, SlotOps& ops,
                       const HeapConfig& config, HeapStats* stats)
    : slot_list_(slot_list),
      owner_(owner),
      ops_(ops),
      config_(config),
      stats_(stats) {}

void* ThreadHeap::alloc(size_t size) {
  needed_slots_ = 0;
  const size_t slot_size = ops_.area().slot_size();

  // 1. Try the thread's existing heap slots (first-fit across the list,
  //    then inside each slot — paper §4.3: "its slots are searched for a
  //    large enough free block").
  for (SlotHeader* s = static_cast<SlotHeader*>(*slot_list_); s != nullptr;
       s = s->next) {
    if (s->kind != SlotKind::kHeap) continue;
    uint64_t splits = 0;
    void* p = block_alloc(s, size, slot_size, config_.fit, &splits);
    if (p != nullptr) {
      if (stats_ != nullptr) {
        ++stats_->allocs;
        stats_->block_splits += splits;
        stats_->bytes_allocated += block_payload_size(p);
        uint64_t live = stats_->bytes_allocated.load();
        if (live > stats_->peak_bytes.load()) stats_->peak_bytes.store(live);
      }
      return p;
    }
  }

  // 2. Acquire fresh slots from the local node.  Multi-slot requests build
  //    one merged "large slot" (paper §3.3).
  size_t n = slots_needed(size, slot_size);
  auto first = ops_.acquire(n);
  if (!first) {
    needed_slots_ = n;  // caller must negotiate and retry
    return nullptr;
  }
  auto* s = init_heap_slot(ops_.area().slot_addr(*first),
                           static_cast<uint32_t>(n), slot_size, owner_);
  attach(slot_list_, s);
  if (stats_ != nullptr) ++stats_->slot_attach;

  uint64_t splits = 0;
  void* p = block_alloc(s, size, slot_size, config_.fit, &splits);
  PM2_CHECK(p != nullptr) << "fresh slot run cannot satisfy its own request";
  if (stats_ != nullptr) {
    ++stats_->allocs;
    stats_->block_splits += splits;
    stats_->bytes_allocated += block_payload_size(p);
    uint64_t live = stats_->bytes_allocated.load();
    if (live > stats_->peak_bytes.load()) stats_->peak_bytes.store(live);
  }
  return p;
}

void* ThreadHeap::alloc_aligned(size_t size, size_t align) {
  needed_slots_ = 0;
  const size_t slot_size = ops_.area().slot_size();
  if (align <= kBlockAlign) return alloc(size);

  for (SlotHeader* s = static_cast<SlotHeader*>(*slot_list_); s != nullptr;
       s = s->next) {
    if (s->kind != SlotKind::kHeap) continue;
    uint64_t splits = 0;
    void* p = block_alloc_aligned(s, size, align, slot_size, config_.fit,
                                  &splits);
    if (p != nullptr) {
      if (stats_ != nullptr) {
        ++stats_->allocs;
        stats_->block_splits += splits;
        stats_->bytes_allocated += block_payload_size(p);
        uint64_t live = stats_->bytes_allocated.load();
        if (live > stats_->peak_bytes.load()) stats_->peak_bytes.store(live);
      }
      return p;
    }
  }

  // Fresh slots: over-provision for the worst-case leading gap.
  size_t worst = size + align + 2 * (sizeof(BlockHeader) + kMinPayload);
  size_t n = slots_needed(worst, slot_size);
  auto first = ops_.acquire(n);
  if (!first) {
    needed_slots_ = n;
    return nullptr;
  }
  auto* s = init_heap_slot(ops_.area().slot_addr(*first),
                           static_cast<uint32_t>(n), slot_size, owner_);
  attach(slot_list_, s);
  if (stats_ != nullptr) ++stats_->slot_attach;
  uint64_t splits = 0;
  void* p = block_alloc_aligned(s, size, align, slot_size, config_.fit,
                                &splits);
  PM2_CHECK(p != nullptr) << "fresh slot run cannot satisfy aligned request";
  if (stats_ != nullptr) {
    ++stats_->allocs;
    stats_->block_splits += splits;
    stats_->bytes_allocated += block_payload_size(p);
    uint64_t live = stats_->bytes_allocated.load();
    if (live > stats_->peak_bytes.load()) stats_->peak_bytes.store(live);
  }
  return p;
}

void* ThreadHeap::calloc(size_t n, size_t elem_size) {
  if (n != 0 && elem_size > SIZE_MAX / n) return nullptr;  // overflow
  size_t total = n * elem_size;
  void* p = alloc(total);
  if (p != nullptr) std::memset(p, 0, total);
  return p;
}

void ThreadHeap::free(void* p) {
  if (p == nullptr) return;
  const size_t slot_size = ops_.area().slot_size();
  if (stats_ != nullptr) {
    ++stats_->frees;
    stats_->bytes_allocated -= block_payload_size(p);
  }
  bool empty = false;
  uint64_t coalesces = 0;
  SlotHeader* slot = block_free(p, slot_size, &empty, &coalesces);
  if (stats_ != nullptr) stats_->block_coalesces += coalesces;

  if (empty && config_.release_empty_slots) {
    detach(slot_list_, slot);
    if (stats_ != nullptr) ++stats_->slot_detach;
    size_t first = ops_.area().slot_of(slot);
    ops_.release(first, slot->nslots);
  }
}

void* ThreadHeap::realloc(void* p, size_t size) {
  if (p == nullptr) return alloc(size);
  if (size == 0) {
    free(p);
    return nullptr;
  }
  size_t old = block_payload_size(p);
  if (old >= size) return p;  // shrink in place (no split for simplicity)
  void* np = alloc(size);
  if (np == nullptr) return nullptr;  // negotiation needed; old block intact
  std::memcpy(np, p, old);
  free(p);
  return np;
}

void ThreadHeap::release_chain(SlotHeader* head, SlotOps& ops) {
  // `next` is read before releasing the current run: release() may
  // decommit the memory holding the header.  The chain head pointer in the
  // thread descriptor is likewise inside a released slot, hence the
  // by-value head.
  SlotHeader* s = head;
  while (s != nullptr) {
    SlotHeader* next = s->next;
    size_t first = ops.area().slot_of(s);
    ops.release(first, s->nslots);
    s = next;
  }
}

SlotHeader* ThreadHeap::release_heap_runs(SlotHeader* head, SlotOps& ops) {
  SlotHeader* stack = nullptr;
  SlotHeader* s = head;
  while (s != nullptr) {
    SlotHeader* next = s->next;
    if (s->kind == SlotKind::kStack) {
      PM2_CHECK(stack == nullptr) << "thread with two stack runs";
      stack = s;
    } else {
      size_t first = ops.area().slot_of(s);
      ops.release(first, s->nslots);
    }
    s = next;
  }
  PM2_CHECK(stack != nullptr) << "thread chain without a stack run";
  stack->prev = nullptr;
  stack->next = nullptr;
  return stack;
}

void ThreadHeap::attach(void** slot_list, SlotHeader* slot) {
  auto* head = static_cast<SlotHeader*>(*slot_list);
  slot->prev = nullptr;
  slot->next = head;
  if (head != nullptr) head->prev = slot;
  *slot_list = slot;
}

void ThreadHeap::detach(void** slot_list, SlotHeader* slot) {
  if (slot->prev != nullptr)
    slot->prev->next = slot->next;
  else {
    PM2_CHECK(*slot_list == slot) << "detaching slot not at list head";
    *slot_list = slot->next;
  }
  if (slot->next != nullptr) slot->next->prev = slot->prev;
  slot->prev = nullptr;
  slot->next = nullptr;
}

void ThreadHeap::for_each_slot(void* slot_list,
                               const std::function<void(SlotHeader*)>& fn) {
  for (auto* s = static_cast<SlotHeader*>(slot_list); s != nullptr;
       s = s->next)
    fn(s);
}

void ThreadHeap::check_invariants(void* slot_list, size_t slot_size) {
  SlotHeader* prev = nullptr;
  for (auto* s = static_cast<SlotHeader*>(slot_list); s != nullptr;
       s = s->next) {
    PM2_CHECK(s->valid()) << "corrupt slot header in list";
    PM2_CHECK(s->prev == prev) << "slot list back-link broken";
    check_slot_invariants(s, slot_size);
    prev = s;
  }
}

}  // namespace pm2::iso
