// On-memory layout of the iso-address heap: slot headers and block headers.
//
// Everything in this file lives *inside iso-address slots* and is linked
// with absolute pointers.  That is deliberate and is the paper's key trick
// (§4.2): "chaining is carried out by means of pointers stored in the slot
// headers.  Given that the slot contents get copied at the same virtual
// address in case of migration, these pointers remain valid" — an
// iso-address copy is the entire migration fix-up.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pm2::iso {

struct BlockHeader;

/// Kinds of slots attached to a thread.
enum class SlotKind : uint32_t {
  kHeap = 0,   // carries a block heap (pm2_isomalloc data)
  kStack = 1,  // carries the thread descriptor + execution stack
};

/// Header at the base of every slot (or merged run of slots) owned by a
/// thread.  Part of the thread's doubly-linked slot list (paper Fig. 10).
struct SlotHeader {
  static constexpr uint64_t kMagic = 0x504D32534C4F5421ull;  // "PM2SLOT!"

  uint64_t magic = kMagic;
  uint32_t nslots = 1;     // contiguous slots merged into this large slot
  SlotKind kind = SlotKind::kHeap;
  SlotHeader* prev = nullptr;  // thread slot list (iso pointers)
  SlotHeader* next = nullptr;
  BlockHeader* free_head = nullptr;  // this slot's free-block list
  uint64_t owner_thread = 0;         // ThreadId, for diagnostics

  bool valid() const { return magic == kMagic; }
};
static_assert(sizeof(SlotHeader) == 48);

/// Header preceding every block (free or busy) in a heap slot.
///
/// Blocks are physically contiguous within their slot: the next physical
/// block starts at (char*)header + header->size.  `size` includes the
/// header itself.  Free blocks are additionally linked into the owning
/// slot's free list through fnext/fprev.
struct BlockHeader {
  static constexpr uint32_t kMagic = 0x424C4B21;  // "BLK!"

  uint32_t magic = kMagic;
  uint32_t free = 0;
  uint64_t size = 0;               // total bytes incl. this header
  SlotHeader* slot = nullptr;      // owning slot header
  BlockHeader* prev_phys = nullptr;  // previous physical block (coalescing)
  BlockHeader* fnext = nullptr;    // free-list links (valid iff free)
  BlockHeader* fprev = nullptr;

  bool valid() const { return magic == kMagic; }
  void* payload() { return this + 1; }
  const void* payload() const { return this + 1; }
  size_t payload_size() const { return size - sizeof(BlockHeader); }

  static BlockHeader* of_payload(void* p) {
    return static_cast<BlockHeader*>(p) - 1;
  }
};
static_assert(sizeof(BlockHeader) == 48);
static_assert(sizeof(BlockHeader) % 16 == 0,
              "payloads must stay 16-byte aligned");

/// Allocation granularity and minimum split remainder.
inline constexpr size_t kBlockAlign = 16;
inline constexpr size_t kMinPayload = 16;

/// Usable byte range of a slot run beginning at `slot_base`:
/// [base + sizeof(SlotHeader), base + nslots*slot_size).
inline char* slot_space_begin(SlotHeader* h) {
  return reinterpret_cast<char*>(h) + sizeof(SlotHeader);
}
inline char* slot_space_end(SlotHeader* h, size_t slot_size) {
  return reinterpret_cast<char*>(h) + size_t{h->nslots} * slot_size;
}

}  // namespace pm2::iso
