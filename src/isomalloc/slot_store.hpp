// SlotStore: a buffer manager over iso-address slot runs.
//
// The iso-address discipline (paper §3.1) makes a thread's slot image
// *address-stable*: a run written out byte-for-byte can be read back at the
// same virtual addresses later — in this process, or in a restarted one —
// with every absolute pointer still valid.  That is exactly the property a
// database buffer manager needs to page data out without relocation, so the
// store treats slot runs like buffer pages with three residency states:
//
//   * hot          — committed anonymous RAM, as always;
//   * demoted      — run bytes written to a per-node backing file keyed by
//                    slot index, pages MADV_DONTNEED'd and re-protected
//                    PROT_NONE (Area::decommit_force), so a cold frozen or
//                    parked thread stops pinning physical memory;
//   * faulted-back — re-committed and read back from the file at the same
//                    iso-address when the thread resumes, packs for
//                    migration, or is checkpointed.
//
// The same backing file doubles as the persistence layer: a thread
// *directory* (MAP_SHARED header + records, so `kill -9` cannot lose it —
// the page cache survives the process) names the threads whose images live
// in the file, and pm2::checkpoint writes full or incremental (soft-dirty)
// images through SlotStore::write_range.  A restarted node re-opens the
// file with `recover = true`, validates the binary-stamp/geometry header,
// and adopts the recorded threads (pm2::restore_node_from_store).
//
// File layout (PM2STOR1):
//   [0, 4K)              StoreHeader — magic, version, binary stamp, area
//                        geometry, node, directory capacity, data offset.
//   [4K, data_off)       StoreDirEntry[dir_capacity] thread directory.
//   [data_off, ...)      sparse data region: slot index i lives at byte
//                        data_off + i * slot_size.  Only demoted or
//                        checkpointed slots occupy file blocks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isomalloc/area.hpp"
#include "sys/spinlock.hpp"
#include "sys/vm.hpp"

namespace pm2::iso {

/// One (first slot, slot count) run, as tracked by the directory.
using SlotRun = std::pair<size_t, uint32_t>;

struct SlotStoreConfig {
  /// Backing file path.  Empty disables the store.
  std::string path;
  /// Re-open an existing store and adopt its contents (crash restart).
  /// False truncates the file and writes a fresh header.
  bool recover = false;
  /// Thread-directory capacity.
  uint32_t dir_capacity = 4096;
};

struct StoreHeader {
  static constexpr uint64_t kMagic = 0x504D3253544F5231ull;  // "PM2STOR1"
  static constexpr uint32_t kVersion = 1;

  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t node = 0;
  uint64_t binary_stamp = 0;
  uint64_t area_base = 0;
  uint64_t area_size = 0;
  uint64_t slot_size = 0;
  uint32_t n_nodes = 0;
  uint32_t dir_capacity = 0;
  uint64_t data_off = 0;
};

struct StoreRun {
  uint32_t first = 0;
  uint32_t count = 0;
};

/// Fixed-size thread-directory record.  `state` is the crash-atomicity
/// latch: records are flipped to kWriting before any data write and sealed
/// kValid after, so a kill -9 mid-write leaves a record recovery skips
/// instead of a torn image it would adopt.
struct StoreDirEntry {
  static constexpr uint32_t kEmpty = 0;
  static constexpr uint32_t kWriting = 1;
  static constexpr uint32_t kValid = 2;
  static constexpr uint32_t kMaxRuns = 13;

  uint64_t id = 0;
  uint64_t desc_addr = 0;  // iso-address of the Thread descriptor
  uint32_t state = kEmpty;
  uint32_t n_runs = 0;
  StoreRun runs[kMaxRuns] = {};
};
static_assert(sizeof(StoreDirEntry) == 128, "directory entries are packed");

struct SlotStoreStats {
  uint64_t demotions = 0;
  uint64_t fault_backs = 0;
  uint64_t bytes_out = 0;  // written by demote()
  uint64_t bytes_in = 0;   // read by fault_back()/read_run()
};

class SlotStore {
 public:
  /// Open (or create) the per-node backing file.  `binary_stamp` is the
  /// caller's code-identity hash (pm2::binary_stamp()); with
  /// `config.recover` the on-file header must match it and the area
  /// geometry exactly — a mismatched store is refused with a fatal check,
  /// never silently adopted.
  SlotStore(Area& area, const SlotStoreConfig& config, uint64_t binary_stamp,
            uint32_t node, uint32_t n_nodes);
  ~SlotStore();

  SlotStore(const SlotStore&) = delete;
  SlotStore& operator=(const SlotStore&) = delete;

  /// True when recover=true found and validated an existing store.
  bool recovered() const { return recovered_; }

  // --- residency ---------------------------------------------------------

  /// Write the run's bytes to the file and release its memory (pages
  /// dropped, protection PROT_NONE).  Unpoisons the run first: parked pool
  /// stacks carry ASan poison, and both the pwrite source check and the
  /// file bytes themselves must see addressable memory.  The *caller*
  /// re-establishes the poison after fault_back().
  void demote(size_t first, size_t count);

  /// Re-commit the run and read its bytes back from the file at the same
  /// iso-addresses.
  void fault_back(size_t first, size_t count);

  // --- checkpoint I/O (residency unchanged) ------------------------------

  /// Write the run's current bytes to its file position (full image).
  /// Returns bytes written.
  uint64_t write_run(size_t first, size_t count);

  /// Write an arbitrary byte range inside the area to its file position —
  /// the incremental checkpoint's dirty-page/extent writer.  Returns `len`.
  uint64_t write_range(uintptr_t addr, size_t len);

  /// Read the run's bytes from the file into (already committed) memory.
  void read_run(size_t first, size_t count);

  // --- thread directory --------------------------------------------------

  /// Begin (or restart) a record for `id`: state kWriting.  Returns false
  /// when the directory is full or the thread spans more than
  /// StoreDirEntry::kMaxRuns runs (the caller then skips persisting it).
  bool record_thread(uint64_t id, uint64_t desc_addr,
                     const std::vector<SlotRun>& runs);
  /// Seal `id`'s record: state kValid.
  void seal_thread(uint64_t id);
  /// Drop `id`'s record (thread exited, migrated away, or was restored).
  void erase_thread(uint64_t id);
  bool has_record(uint64_t id) const;

  struct RecordedThread {
    uint64_t id = 0;
    uint64_t desc_addr = 0;
    std::vector<SlotRun> runs;
  };
  /// All sealed (kValid) records — the crash-restart adoption list.
  std::vector<RecordedThread> recorded_threads() const;

  // --- misc --------------------------------------------------------------

  /// Soft-dirty baseline latch for the incremental checkpoint: true once a
  /// full round has been written *and* the process soft-dirty bits cleared,
  /// i.e. pagemap deltas are meaningful against the file contents.
  bool soft_dirty_armed() const { return soft_dirty_armed_; }
  void set_soft_dirty_armed(bool armed) { soft_dirty_armed_ = armed; }

  /// fdatasync the backing file (durability against machine crash; kill -9
  /// survival needs nothing — the page cache persists).
  void sync();

  SlotStoreStats stats() const;

 private:
  uint64_t file_off(size_t first) const;
  StoreDirEntry* entry_of(uint64_t id);
  const StoreDirEntry* entry_of(uint64_t id) const;

  Area& area_;
  SlotStoreConfig config_;
  int fd_ = -1;
  sys::FileMapping meta_;     // header + directory
  StoreHeader* hdr_ = nullptr;
  StoreDirEntry* dir_ = nullptr;
  bool recovered_ = false;
  bool soft_dirty_armed_ = false;
  // Directory scans/updates.  kLeaf: fault_back/record run under the
  // runtime's store_lock_, so this lock must rank below every runtime map
  // lock and may acquire nothing itself.
  mutable sys::SpinLock lock_{sys::LockRank::kLeaf};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> fault_backs_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
};

}  // namespace pm2::iso
