// Per-thread iso-address heap: the composition of the slot layer and the
// block layer behind pm2_isomalloc/pm2_isofree (paper §3.4).
//
// A ThreadHeap is a *handle*, not a container: all persistent state lives in
// the slot/block headers inside iso-address memory, reached through the
// thread's slot-list head pointer (Thread::slot_list in the descriptor).
// The handle itself holds only node-local references (the SlotManager) and
// is reconstructed from TLS on every API call — that is what keeps the heap
// fully migratable: ship the slots, and the heap is whole again.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/stats.hpp"
#include "isomalloc/block.hpp"
#include "isomalloc/slot_manager.hpp"

namespace pm2::iso {

struct HeapConfig {
  FitPolicy fit = FitPolicy::kFirstFit;
  /// Release a heap slot to the local node as soon as it becomes empty
  /// ("At any point, a thread may release slots", §3.2).  Disable to keep
  /// slots attached until thread death.
  bool release_empty_slots = true;
};

class ThreadHeap {
 public:
  /// `slot_list` is the address of the owning thread's slot-list head (the
  /// descriptor field).  `owner` is the thread id recorded in new slots.
  ThreadHeap(void** slot_list, uint64_t owner, SlotOps& ops,
             const HeapConfig& config = {}, HeapStats* stats = nullptr);

  /// pm2_isomalloc.  Returns nullptr when the local node cannot provide the
  /// needed contiguous slots; `needed_slots()` then says how many a global
  /// negotiation must obtain for this node before retrying.
  void* alloc(size_t size);

  /// pm2_isomemalign: like alloc() with payload alignment `align` (power of
  /// two ≥ 16).  Frees with the ordinary free().
  void* alloc_aligned(size_t size, size_t align);

  /// pm2_isocalloc: zero-initialised array allocation with overflow check.
  void* calloc(size_t n, size_t elem_size);

  /// pm2_isofree (nullptr is a no-op, as with free(3)).
  void free(void* p);

  /// pm2_isorealloc (extension; same contract as realloc(3)).
  void* realloc(void* p, size_t size);

  /// After a failed alloc: contiguous slot count the negotiation must win.
  size_t needed_slots() const { return needed_slots_; }

  /// Hand every slot run of the chain back to `ops` (thread death, paper
  /// Fig. 6 step 4).  Takes the chain head by value: the head pointer
  /// itself may live inside one of the released slots (the descriptor in
  /// the stack slot), so the caller must not expect it to stay writable.
  static void release_chain(SlotHeader* head, SlotOps& ops);

  /// release_chain minus the stack run: hand every *heap* run back to
  /// `ops`, keep the (unique) kStack run, and return its header relinked
  /// as a single-element chain.  Used by the invocation pool to park an
  /// exited service thread with its descriptor + initialized stack intact.
  static SlotHeader* release_heap_runs(SlotHeader* head, SlotOps& ops);

  /// Attach an externally initialised slot (thread stack slot) at the list
  /// head.
  static void attach(void** slot_list, SlotHeader* slot);
  static void detach(void** slot_list, SlotHeader* slot);

  /// Walk the slot list.
  static void for_each_slot(void* slot_list,
                            const std::function<void(SlotHeader*)>& fn);

  /// Full heap invariant check (tests): every slot's block invariants plus
  /// list-link sanity.
  static void check_invariants(void* slot_list, size_t slot_size);

 private:
  void** slot_list_;
  uint64_t owner_;
  SlotOps& ops_;
  HeapConfig config_;
  HeapStats* stats_;
  size_t needed_slots_ = 0;
};

}  // namespace pm2::iso
