#include "isomalloc/slot_store.hpp"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "sys/backoff.hpp"
#include "sys/sanitizer.hpp"

namespace pm2::iso {

namespace {

void pwrite_all(int fd, const void* buf, size_t len, uint64_t off) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    ssize_t rc = sys::retry_eintr(
        [&] { return ::pwrite(fd, p, len, static_cast<off_t>(off)); });
    PM2_CHECK(rc > 0) << "slot store pwrite failed: " << std::strerror(errno);
    p += rc;
    off += static_cast<uint64_t>(rc);
    len -= static_cast<size_t>(rc);
  }
}

void pread_all(int fd, void* buf, size_t len, uint64_t off) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t rc = sys::retry_eintr(
        [&] { return ::pread(fd, p, len, static_cast<off_t>(off)); });
    PM2_CHECK(rc > 0) << "slot store pread failed: "
                      << (rc == 0 ? "truncated store file"
                                  : std::strerror(errno));
    p += rc;
    off += static_cast<uint64_t>(rc);
    len -= static_cast<size_t>(rc);
  }
}

uint64_t round_up(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

SlotStore::SlotStore(Area& area, const SlotStoreConfig& config,
                     uint64_t binary_stamp, uint32_t node, uint32_t n_nodes)
    : area_(area), config_(config) {
  PM2_CHECK(!config_.path.empty()) << "slot store needs a backing file path";
  const uint64_t dir_bytes =
      uint64_t{config_.dir_capacity} * sizeof(StoreDirEntry);
  const uint64_t meta_bytes = round_up(4096 + dir_bytes, sys::page_size());
  const uint64_t data_off = meta_bytes;

  int flags = O_RDWR | O_CLOEXEC | O_CREAT | (config_.recover ? 0 : O_TRUNC);
  fd_ = ::open(config_.path.c_str(), flags, 0644);
  PM2_CHECK(fd_ >= 0) << "slot store open(" << config_.path
                      << ") failed: " << std::strerror(errno);

  if (config_.recover) {
    // Adopting an existing store: the header must prove it was written by
    // this binary over this exact area geometry — iso-addresses are only
    // meaningful under both.
    StoreHeader on_file{};
    ssize_t rc = ::pread(fd_, &on_file, sizeof(on_file), 0);
    PM2_CHECK(rc == static_cast<ssize_t>(sizeof(on_file)))
        << "slot store recover: cannot read header of " << config_.path;
    PM2_CHECK(on_file.magic == StoreHeader::kMagic)
        << "not a PM2 slot store: " << config_.path;
    PM2_CHECK(on_file.version == StoreHeader::kVersion)
        << "slot store version mismatch";
    PM2_CHECK(on_file.binary_stamp == binary_stamp)
        << "slot store was written by a different binary";
    PM2_CHECK(on_file.area_base == area_.base() &&
              on_file.area_size == area_.size() &&
              on_file.slot_size == area_.slot_size())
        << "slot store iso-area geometry mismatch";
    PM2_CHECK(on_file.node == node && on_file.n_nodes == n_nodes)
        << "slot store belongs to a different node/session shape";
    PM2_CHECK(on_file.dir_capacity == config_.dir_capacity &&
              on_file.data_off == data_off)
        << "slot store directory layout mismatch";
    recovered_ = true;
  } else {
    PM2_CHECK(::ftruncate(fd_, static_cast<off_t>(meta_bytes)) == 0)
        << "slot store ftruncate failed: " << std::strerror(errno);
  }

  meta_ = sys::FileMapping(fd_, 0, meta_bytes);
  hdr_ = static_cast<StoreHeader*>(meta_.data());
  dir_ = reinterpret_cast<StoreDirEntry*>(static_cast<char*>(meta_.data()) +
                                          4096);
  if (!config_.recover) {
    std::memset(meta_.data(), 0, meta_bytes);
    hdr_->magic = StoreHeader::kMagic;
    hdr_->version = StoreHeader::kVersion;
    hdr_->node = node;
    hdr_->binary_stamp = binary_stamp;
    hdr_->area_base = area_.base();
    hdr_->area_size = area_.size();
    hdr_->slot_size = area_.slot_size();
    hdr_->n_nodes = n_nodes;
    hdr_->dir_capacity = config_.dir_capacity;
    hdr_->data_off = data_off;
  }
}

SlotStore::~SlotStore() {
  meta_.release();
  if (fd_ >= 0) ::close(fd_);
}

uint64_t SlotStore::file_off(size_t first) const {
  return hdr_->data_off + uint64_t{first} * area_.slot_size();
}

// --- residency ---------------------------------------------------------

void SlotStore::demote(size_t first, size_t count) {
  void* addr = area_.slot_addr(first);
  const size_t len = count * area_.slot_size();
  // Parked pool stacks are deliberately poisoned (PR-5 shadow rules); the
  // shadow must be clean both for ASan's pwrite source check and so the
  // file never captures poison as data.  fault_back()'s commit leaves the
  // range unpoisoned and the runtime re-applies park poison afterwards.
  sys::san_unpoison(addr, len);
  pwrite_all(fd_, addr, len, file_off(first));
  area_.decommit_force(first, count);
  demotions_.fetch_add(1, std::memory_order_relaxed);
  bytes_out_.fetch_add(len, std::memory_order_relaxed);
}

void SlotStore::fault_back(size_t first, size_t count) {
  area_.commit(first, count);  // mprotect RW + shadow unpoison
  const size_t len = count * area_.slot_size();
  pread_all(fd_, area_.slot_addr(first), len, file_off(first));
  fault_backs_.fetch_add(1, std::memory_order_relaxed);
  bytes_in_.fetch_add(len, std::memory_order_relaxed);
}

// --- checkpoint I/O ----------------------------------------------------

uint64_t SlotStore::write_run(size_t first, size_t count) {
  const size_t len = count * area_.slot_size();
  // Same scrub as pack_thread_chain: a frozen stack carries redzone poison
  // from its live frames, and ASan checks the pwrite source buffer.
  sys::san_unpoison(area_.slot_addr(first), len);
  pwrite_all(fd_, area_.slot_addr(first), len, file_off(first));
  return len;
}

uint64_t SlotStore::write_range(uintptr_t addr, size_t len) {
  PM2_CHECK(addr >= area_.base() && addr + len <= area_.base() + area_.size())
      << "slot store write_range outside the iso-area";
  sys::san_unpoison(reinterpret_cast<void*>(addr), len);
  pwrite_all(fd_, reinterpret_cast<void*>(addr), len,
             hdr_->data_off + (addr - area_.base()));
  return len;
}

void SlotStore::read_run(size_t first, size_t count) {
  const size_t len = count * area_.slot_size();
  pread_all(fd_, area_.slot_addr(first), len, file_off(first));
  bytes_in_.fetch_add(len, std::memory_order_relaxed);
}

// --- thread directory --------------------------------------------------

StoreDirEntry* SlotStore::entry_of(uint64_t id) {
  for (uint32_t i = 0; i < hdr_->dir_capacity; ++i) {
    if (dir_[i].state != StoreDirEntry::kEmpty && dir_[i].id == id) {
      return &dir_[i];
    }
  }
  return nullptr;
}

const StoreDirEntry* SlotStore::entry_of(uint64_t id) const {
  return const_cast<SlotStore*>(this)->entry_of(id);
}

bool SlotStore::record_thread(uint64_t id, uint64_t desc_addr,
                              const std::vector<SlotRun>& runs) {
  if (runs.size() > StoreDirEntry::kMaxRuns) {
    PM2_WARN << "slot store: thread " << id << " spans " << runs.size()
             << " runs (directory limit " << StoreDirEntry::kMaxRuns
             << "); not persisted";
    return false;
  }
  lock_.lock();
  StoreDirEntry* e = entry_of(id);
  if (e == nullptr) {
    for (uint32_t i = 0; i < hdr_->dir_capacity; ++i) {
      if (dir_[i].state == StoreDirEntry::kEmpty) {
        e = &dir_[i];
        break;
      }
    }
  }
  if (e == nullptr) {
    lock_.unlock();
    PM2_WARN << "slot store: thread directory full (capacity "
             << hdr_->dir_capacity << "); thread " << id << " not persisted";
    return false;
  }
  // kWriting first, then payload fields: a kill -9 between here and
  // seal_thread() leaves a record recovery ignores.  The flip goes through
  // an atomic ref + compiler fence so the payload stores below cannot be
  // hoisted above it — re-recording a kValid entry with a reordered run
  // list, killed in that window, would hand recovery new runs over old
  // data bytes.  (Crash ordering is same-CPU coherent, so a compiler
  // barrier is the whole requirement.)
  std::atomic_ref<uint32_t>(e->state).store(StoreDirEntry::kWriting,
                                            std::memory_order_release);
  std::atomic_signal_fence(std::memory_order_seq_cst);
  e->id = id;
  e->desc_addr = desc_addr;
  e->n_runs = static_cast<uint32_t>(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    e->runs[i].first = static_cast<uint32_t>(runs[i].first);
    e->runs[i].count = runs[i].second;
  }
  lock_.unlock();
  return true;
}

void SlotStore::seal_thread(uint64_t id) {
  lock_.lock();
  StoreDirEntry* e = entry_of(id);
  PM2_CHECK(e != nullptr) << "seal_thread without record_thread";
  // Release: every payload store (and the data pwrites, already ordered by
  // the syscall boundary) settles before the record turns adoptable.
  std::atomic_signal_fence(std::memory_order_seq_cst);
  std::atomic_ref<uint32_t>(e->state).store(StoreDirEntry::kValid,
                                            std::memory_order_release);
  lock_.unlock();
}

void SlotStore::erase_thread(uint64_t id) {
  lock_.lock();
  StoreDirEntry* e = entry_of(id);
  if (e != nullptr) {
    *e = StoreDirEntry{};
  }
  lock_.unlock();
}

bool SlotStore::has_record(uint64_t id) const {
  lock_.lock();
  bool found = entry_of(id) != nullptr;
  lock_.unlock();
  return found;
}

std::vector<SlotStore::RecordedThread> SlotStore::recorded_threads() const {
  std::vector<RecordedThread> out;
  lock_.lock();
  for (uint32_t i = 0; i < hdr_->dir_capacity; ++i) {
    const StoreDirEntry& e = dir_[i];
    if (e.state != StoreDirEntry::kValid) continue;
    RecordedThread rec;
    rec.id = e.id;
    rec.desc_addr = e.desc_addr;
    for (uint32_t r = 0; r < e.n_runs; ++r) {
      rec.runs.emplace_back(e.runs[r].first, e.runs[r].count);
    }
    out.push_back(std::move(rec));
  }
  lock_.unlock();
  return out;
}

void SlotStore::sync() {
  meta_.sync();
  ::fdatasync(fd_);
}

SlotStoreStats SlotStore::stats() const {
  SlotStoreStats s;
  s.demotions = demotions_.load(std::memory_order_relaxed);
  s.fault_backs = fault_backs_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pm2::iso
