// Striped concurrent hash map: a fixed array of lock-striped buckets with
// stable node addresses and an optional lock-free read path.
//
// Two runtime tables sit on hot paths and used to be a single spinlocked
// unordered_map each: the RPC service table (looked up on every dispatch)
// and the scheduler's thread registry (every create/exit/find).  Both fit
// the same shape:
//
//   * keys hash to one of kStripes buckets, each guarded by its own
//     SpinLock (rank supplied by the owner — the map is mechanism, the
//     layering decision stays with the caller);
//   * each bucket is an intrusive singly-linked chain of heap nodes, so a
//     value's address is stable for the node's whole lifetime — callers may
//     hold a V* past the lock, exactly the contract the old
//     unordered_map-node code documented;
//   * writers link new nodes at the head with a release store, which makes
//     a *grow-only* map readable with no lock at all: find_fast() walks the
//     chain through acquire loads and never observes a half-written node.
//
// find_fast() is only sound while no erase() ever runs (a reader holds no
// lock, so an unlinked node could be freed mid-walk).  The service table is
// grow-only by construction (registration is setup-phase and permanent) and
// uses find_fast on the dispatch path; the thread registry churns, so it
// uses the locked accessors, where erase may free immediately.
//
// Compound operations (the scheduler's exit path erases the id and claims
// the joiner under one critical section; join() parks *atomically* with the
// stripe release via block_commit) get the stripe lock handed to them:
// lock_for(k) plus the *_locked accessors.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "sys/spinlock.hpp"
#include "sys/thread_safety.hpp"

namespace pm2::sys {

template <typename K, typename V, size_t kStripes = 16>
class StripedMap {
  static_assert((kStripes & (kStripes - 1)) == 0, "stripe count: power of 2");

 public:
  explicit StripedMap(LockRank rank) {
    for (size_t i = 0; i < kStripes; ++i) stripes_[i].init_rank(rank);
  }

  ~StripedMap() {
    for (Stripe& s : stripes_) {
      Node* n = s.head.load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* next = n->next.load(std::memory_order_relaxed);
        delete n;
        n = next;
      }
    }
  }

  StripedMap(const StripedMap&) = delete;
  StripedMap& operator=(const StripedMap&) = delete;

  /// Insert, failing on a duplicate key.  Returns {value*, inserted}: on
  /// success the pointer addresses the new node's value; on a duplicate it
  /// addresses the existing one (so the caller can diagnose the clash).
  /// The pointer is stable until the key is erased.
  template <typename... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    Stripe& s = stripe_for(key);
    SpinGuard g(s.lock);
    if (Node* hit = chain_find(s, key)) return {&hit->value, false};
    auto* n = new Node(key, std::forward<Args>(args)...);
    n->next.store(s.head.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    // Release: find_fast readers that load this node must see key/value
    // fully constructed.
    s.head.store(n, std::memory_order_release);
    s.count += 1;
    size_.fetch_add(1, std::memory_order_relaxed);
    return {&n->value, true};
  }

  /// Locked lookup.  The returned pointer is stable until erase(key); for
  /// churny maps the caller must know the key cannot be erased concurrently
  /// (the scheduler registry's contract: only the thread itself erases its
  /// id, on exit).  nullptr when absent.
  V* find(const K& key) const {
    Stripe& s = stripe_for(key);
    SpinGuard g(s.lock);
    Node* n = chain_find(s, key);
    return n == nullptr ? nullptr : &n->value;
  }

  /// LOCK-FREE lookup — sound only on a grow-only map (no erase() ever; see
  /// header).  This is the RPC dispatch path: one hash, a short chain walk,
  /// zero shared-cache-line writes.
  V* find_fast(const K& key) const {
    const Stripe& s = stripe_for(key);
    for (Node* n = s.head.load(std::memory_order_acquire); n != nullptr;
         n = n->next.load(std::memory_order_acquire)) {
      if (n->key == key) return &n->value;
    }
    return nullptr;
  }

  /// Locked lookup that copies the value out *under* the stripe lock — the
  /// right call on churny maps where the key may be erased (and its node
  /// freed) the instant the lock drops, so even dereferencing a returned
  /// V* would race the delete.  Returns false when absent.
  bool find_copy(const K& key, V* out) const {
    Stripe& s = stripe_for(key);
    SpinGuard g(s.lock);
    Node* n = chain_find(s, key);
    if (n == nullptr) return false;
    *out = n->value;
    return true;
  }

  /// Erase, freeing the node immediately (all readers of a churny map hold
  /// the stripe lock, so nobody can be mid-walk).  Returns false if absent.
  bool erase(const K& key) {
    Stripe& s = stripe_for(key);
    SpinGuard g(s.lock);
    return erase_chain(s, key);
  }

  // --- compound-operation surface ------------------------------------------
  // The stripe lock is exposed so callers can compose "mutate the value and
  // erase/park atomically" critical sections (scheduler exit/join).  The
  // _locked variants require lock_for(key) to be held; clang TSA cannot
  // express a runtime-selected capability out of an array, so the dynamic
  // lock-rank checker is the enforcement here.

  SpinLock& lock_for(const K& key) const { return stripe_for(key).lock; }

  V* find_locked(const K& key) const PM2_NO_THREAD_SAFETY_ANALYSIS {
    // Caller holds lock_for(key) — hash-selected stripe capability.
    Stripe& s = stripe_for(key);
    Node* n = chain_find(s, key);
    return n == nullptr ? nullptr : &n->value;
  }

  bool erase_locked(const K& key) PM2_NO_THREAD_SAFETY_ANALYSIS {
    // Caller holds lock_for(key) — hash-selected stripe capability.
    return erase_chain(stripe_for(key), key);
  }

  /// Visit every value.  Entries are snapshotted stripe by stripe under the
  /// stripe locks and the callback runs outside them (it may re-enter the
  /// map or take other locks).  Concurrent mutators make the snapshot a
  /// point-in-time-per-stripe view — callers needing global consistency
  /// quiesce first (the scheduler wraps this in pause_workers()).
  void for_each_value(const std::function<void(V)>& fn) const {
    std::vector<V> snapshot;
    snapshot.reserve(size());
    for (const Stripe& s : stripes_) {
      SpinGuard g(s.lock);
      for (Node* n = s.head.load(std::memory_order_relaxed); n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        snapshot.push_back(n->value);
      }
    }
    for (const V& v : snapshot) fn(v);
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  struct Node {
    template <typename... Args>
    explicit Node(const K& k, Args&&... args)
        : key(k), value(std::forward<Args>(args)...) {}
    const K key;
    V value;
    std::atomic<Node*> next{nullptr};
  };

  struct alignas(64) Stripe {
    // The rank is injected post-construction (SpinLock's rank is set at
    // construction; a default-constructed array needs re-init).  Called
    // once from the StripedMap constructor, before any concurrency.
    void init_rank(LockRank rank) {
      new (&lock) SpinLock(rank);
    }
    mutable SpinLock lock;
    std::atomic<Node*> head{nullptr};
    size_t count = 0;  // under lock; per-stripe diagnostics
  };

  Stripe& stripe_for(const K& key) const {
    return stripes_[std::hash<K>{}(key)&(kStripes - 1)];
  }

  Node* chain_find(const Stripe& s, const K& key) const
      PM2_NO_THREAD_SAFETY_ANALYSIS {
    // Caller holds s.lock (or is find_fast on a grow-only map).
    for (Node* n = s.head.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->key == key) return n;
    }
    return nullptr;
  }

  bool erase_chain(Stripe& s, const K& key) PM2_NO_THREAD_SAFETY_ANALYSIS {
    // Caller holds s.lock.
    std::atomic<Node*>* link = &s.head;
    for (Node* n = link->load(std::memory_order_relaxed); n != nullptr;
         n = link->load(std::memory_order_relaxed)) {
      if (n->key == key) {
        link->store(n->next.load(std::memory_order_relaxed),
                    std::memory_order_release);
        delete n;
        s.count -= 1;
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      link = &n->next;
    }
    return false;
  }

  mutable Stripe stripes_[kStripes];
  std::atomic<size_t> size_{0};
};

}  // namespace pm2::sys
