// Sanitizer shim: fiber-switch annotations and shadow-memory control.
//
// Iso-address migration is invisible to AddressSanitizer by default: a
// thread's stack is byte-copied to a peer node (or recycled in place by the
// invocation pool), but ASan's *shadow* memory — the per-byte poison map and
// the per-kernel-thread notion of "the current stack" — does not travel with
// it.  Unannotated, every context switch leaves ASan believing execution is
// still on the previous stack, and every migration resurrects stale redzone
// poison at the destination address.  This header wraps the two mechanisms
// that make the runtime sanitizer-clean:
//
//   * san_start_switch/san_finish_switch — the __sanitizer_*_switch_fiber
//     protocol.  Every pm2_ctx_switch call site brackets the switch: start
//     announces the target stack's extent (and parks the current context's
//     fake-stack handle), finish (executed on the new stack) restores that
//     context's handle.  First entry into a fresh context and first resume
//     of a *migrated* stack pass a null handle — there is nothing to
//     restore, the frames were built on another kernel thread's fake stack.
//
//   * san_poison/san_unpoison — explicit shadow edits.  Committing or
//     installing a slot run scrubs whatever poison a previous tenant left
//     at those addresses; packing a live stack unpoisons the borrowed
//     extents so the fabric may read them; the invocation pool poisons a
//     parked service stack (writes through stale pointers into a recycled
//     stack become hard ASan reports) and unpoisons on re-arm.
//
// Everything compiles to nothing unless the build is ASan-instrumented, so
// call sites need no #ifdefs and the hot path pays zero cost in production
// builds.
//
// ThreadSanitizer needs the same treatment through its own fiber API:
// TSan keeps a per-"fiber" vector-clock state, and a PM2 thread hopping
// between worker kernel threads (or parking/unparking through the
// scheduler) looks like unsynchronized cross-thread access unless every
// pm2_ctx_switch is announced.  san_fiber_create/switch/destroy wrap
// __tsan_create_fiber & friends; the switch is announced on the *departing*
// context immediately before pm2_ctx_switch (TSan, unlike ASan, needs no
// finish call on the new stack).  Switching with flags=0 also establishes a
// happens-before edge from the departing context to the resumed one — which
// is real: the context switch is program order on one kernel thread, and
// cross-worker resumes synchronize through the running_on release/acquire
// handshake.
//
// Limitation: ASan's fake-stack mode (detect_stack_use_after_return=1,
// default-on under clang 15+) is incompatible with iso-address migration
// by construction — in that mode instrumented frames keep their locals on
// a per-kernel-thread fake stack *outside* the stack bytes, so a
// byte-copied stack resumes frames pointing into another context's fake
// stack.  Run sanitized suites with detect_stack_use_after_return=0 (the
// GCC default; CI pins it).  The invocation pool's park poison covers the
// same bug class — use-after-return onto a recycled stack — natively.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define PM2_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PM2_ASAN_ENABLED 1
#else
#define PM2_ASAN_ENABLED 0
#endif
#else
#define PM2_ASAN_ENABLED 0
#endif

#if defined(__SANITIZE_THREAD__)
#define PM2_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PM2_TSAN_ENABLED 1
#else
#define PM2_TSAN_ENABLED 0
#endif
#else
#define PM2_TSAN_ENABLED 0
#endif

#if PM2_ASAN_ENABLED
#include <pthread.h>

extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old, size_t* size_old);
void __asan_poison_memory_region(const void* addr, size_t size);
void __asan_unpoison_memory_region(const void* addr, size_t size);
}
#endif

#if PM2_TSAN_ENABLED
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

/// Opt a function out of ASan instrumentation.  Used by the legacy
/// (registered-pointer) migration baseline: ASan spills extra
/// stack-address-holding frame bases that no heuristic patcher can know
/// about — precisely the compiler-dependence the paper's iso-address
/// scheme exists to eliminate — so legacy thread *bodies* run
/// uninstrumented while the relocation machinery itself stays checked.
#if PM2_ASAN_ENABLED
#define PM2_NO_SANITIZE_ADDRESS __attribute__((no_sanitize_address))
#else
#define PM2_NO_SANITIZE_ADDRESS
#endif

namespace pm2::sys {

/// True in ASan-instrumented builds (runtime gates: timing assertions,
/// death tests that rely on poison reports).
inline constexpr bool kAsan = PM2_ASAN_ENABLED != 0;

/// True in TSan-instrumented builds (runtime gates: tests that only make
/// sense as race detectors, relocated iso-area base).
inline constexpr bool kTsan = PM2_TSAN_ENABLED != 0;

/// TSan state for the calling kernel thread's *current* context (its
/// scheduler stack, captured once per worker at loop entry).  Null without
/// TSan.
inline void* san_fiber_current() {
#if PM2_TSAN_ENABLED
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

/// Allocate TSan state for a context about to get its own stack (thread
/// creation, invocation-pool re-arm, migrated-stack adoption).  Null
/// without TSan.
inline void* san_fiber_create() {
#if PM2_TSAN_ENABLED
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

/// Free a context's TSan state: thread reaped, or its stack shipped to a
/// peer node (the destination adopts it with a *fresh* fiber — vector
/// clocks are process-local and do not migrate).
inline void san_fiber_destroy([[maybe_unused]] void* fiber) {
#if PM2_TSAN_ENABLED
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#endif
}

/// Announce the switch to `fiber`, called on the departing context
/// immediately before pm2_ctx_switch.  flags=0: the switch carries a
/// happens-before edge (true on one kernel thread by program order; true
/// cross-worker via the running_on handshake).
inline void san_fiber_switch([[maybe_unused]] void* fiber) {
#if PM2_TSAN_ENABLED
  __tsan_switch_to_fiber(fiber, 0);
#endif
}

/// Announce an imminent switch to the stack [bottom, bottom+size).  The
/// current context's fake-stack handle is parked in *fake_save; pass
/// fake_save == nullptr when the current context will never run again
/// (thread exit) so ASan releases its fake frames.
inline void san_start_switch([[maybe_unused]] void** fake_save,
                             [[maybe_unused]] const void* bottom,
                             [[maybe_unused]] size_t size) {
#if PM2_ASAN_ENABLED
  __sanitizer_start_switch_fiber(fake_save, bottom, size);
#endif
}

/// Complete a switch (must run on the new stack): restore this context's
/// fake-stack handle as parked by the matching san_start_switch.  Pass
/// nullptr on first entry into a fresh context and on first resume of a
/// stack that migrated in from another kernel thread.
inline void san_finish_switch([[maybe_unused]] void* fake) {
#if PM2_ASAN_ENABLED
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

/// Mark [p, p+n) unaddressable: any instrumented access becomes an ASan
/// "use-after-poison" report.
inline void san_poison([[maybe_unused]] const void* p,
                       [[maybe_unused]] size_t n) {
#if PM2_ASAN_ENABLED
  __asan_poison_memory_region(p, n);
#endif
}

/// Scrub all poison from [p, p+n).  Required wherever memory changes
/// logical owner without unwinding the code that poisoned it: slot commit,
/// migration install, stack re-arm, extent packing.
inline void san_unpoison([[maybe_unused]] const void* p,
                         [[maybe_unused]] size_t n) {
#if PM2_ASAN_ENABLED
  __asan_unpoison_memory_region(p, n);
#endif
}

/// Bounds of the calling kernel thread's own stack (the scheduler context
/// every PM2 thread switches back to).  Cached per kernel thread: glibc's
/// pthread_getattr_np re-parses /proc/self/maps for the main thread, and
/// LegacyThread::resume() asks on every switch.  No-op without ASan.
inline void san_current_stack([[maybe_unused]] const void** bottom,
                              [[maybe_unused]] size_t* size) {
#if PM2_ASAN_ENABLED
  thread_local const void* cached_bottom = nullptr;
  thread_local size_t cached_size = 0;
  if (cached_bottom == nullptr) {
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
    void* addr = nullptr;
    size_t len = 0;
    if (pthread_attr_getstack(&attr, &addr, &len) == 0) {
      cached_bottom = addr;
      cached_size = len;
    }
    pthread_attr_destroy(&attr);
  }
  if (cached_bottom != nullptr) {
    *bottom = cached_bottom;
    *size = cached_size;
  }
#endif
}

}  // namespace pm2::sys
