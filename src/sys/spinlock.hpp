// Kernel-level spinlock for the SMP scheduler's short critical sections.
//
// PM2 threads coordinate through the cooperative primitives in marcel/sync;
// this lock is for the *kernel* threads underneath them — worker ready
// deques, timer wheels, registry shards, runtime tables — where the critical
// section is a handful of pointer writes and parking a kernel thread would
// cost more than the wait.  Two rules keep it safe:
//
//   * never hold a SpinLock across a pm2_ctx_switch.  The one sanctioned
//     exception is Scheduler::block_commit(), which *releases* the lock
//     after publishing the park decision and before switching — the lock is
//     not held during the switch, only up to it.
//   * never call into the fabric (which may pump receives re-entrantly)
//     with a SpinLock held: decide under the lock, send outside it.
#pragma once

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pm2::sys {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // Spin on a plain load so the cache line stays shared while waiting.
      while (flag_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Scoped holder (std::lock_guard works too; this one permits early release
/// for the decide-under-lock / act-outside pattern).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) : lock_(&l) { lock_->lock(); }
  ~SpinGuard() { release(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;
  void release() {
    if (lock_ != nullptr) {
      lock_->unlock();
      lock_ = nullptr;
    }
  }

 private:
  SpinLock* lock_;
};

}  // namespace pm2::sys
