// Kernel-level spinlock for the SMP scheduler's short critical sections.
//
// PM2 threads coordinate through the cooperative primitives in marcel/sync;
// this lock is for the *kernel* threads underneath them — registry stripes,
// sync-primitive state, runtime tables — where the critical section is a
// handful of pointer writes and parking a kernel thread would cost more
// than the wait.  (The worker ready deques, once the heaviest user, are
// lock-free now: sys/chase_lev.hpp.)  Two rules keep it safe:
//
//   * never hold a SpinLock across a pm2_ctx_switch.  The one sanctioned
//     exception is Scheduler::block_commit(), which *releases* the lock
//     after publishing the park decision and before switching — the lock is
//     not held during the switch, only up to it.
//   * never call into the fabric (which may pump receives re-entrantly)
//     with a SpinLock held: decide under the lock, send outside it.
//
// Both rules are now *enforced*, not just stated:
//   * statically — clang's -Wthread-safety pass, via the PM2_CAPABILITY /
//     PM2_GUARDED_BY annotations (see sys/thread_safety.hpp);
//   * dynamically — the lock-rank checker below (debug and sanitizer
//     builds).  Every SpinLock carries a LockRank; acquisition order must
//     be strictly *decreasing* (outer layers rank high, inner layers rank
//     low), a thread-local stack records what each kernel thread holds, and
//     unlock verifies the caller actually holds the lock.  A thread-local
//     in-context-switch flag turns "no SpinLock across pm2_ctx_switch"
//     into a hard CHECK at both the switch site and any acquisition that
//     races one.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "common/check.hpp"
#include "sys/sanitizer.hpp"
#include "sys/thread_safety.hpp"

// The rank checker costs a TLS lookup and a few compares per lock op — too
// much for release hot paths, cheap next to sanitizer instrumentation.  It
// is on in debug builds and in every sanitizer build (the ASan/TSan CI legs
// run the full suite, so rank violations surface there even though those
// legs compile with optimizations and NDEBUG unset only sometimes).
#if !defined(NDEBUG) || PM2_ASAN_ENABLED || PM2_TSAN_ENABLED
#define PM2_LOCK_CHECKS 1
#else
#define PM2_LOCK_CHECKS 0
#endif

namespace pm2::sys {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Static lock order.  Acquisition must be strictly *decreasing*: while
/// holding a lock of rank R, a kernel thread may only acquire locks of rank
/// < R.  Outer (decision) layers rank high, inner (mechanism) layers rank
/// low, so the runtime's decide-under-lock pattern — runtime table lock ->
/// sync-primitive state lock -> registry stripe — is monotone, i.e.
/// registry-shard < sync-state < runtime-maps < outbox.
///
/// The order encodes the nestings that actually occur:
///   * CondVar::wait holds its state lock while Mutex::unlock runs
///     underneath (kSyncCondVar > kSyncState); the woken waiter's requeue
///     is lock-free (Chase-Lev deque / MPSC inbox), so nothing ranks
///     below it on that path anymore.
///   * Runtime::for_each_parked holds a pool shard while the store-decay /
///     audit callbacks take store_lock_ (kInvocationPool > kRuntimeMaps).
///   * Runtime's store paths hold store_lock_ while the slot store scans
///     its directory (kRuntimeMaps > kLeaf).
/// Same-rank acquisition is refused; peers of equal rank may only be taken
/// with try_lock, which cannot deadlock and is therefore exempt from the
/// order check.
///
/// Historical note: rank 0x10 (kSchedulerDeque) guarded the per-worker
/// ready deques until they became lock-free Chase-Lev deques plus MPSC
/// inbox/handoff slots (sys/chase_lev.hpp).  The rank is retired — the
/// value stays unassigned so old rank numbers in crash logs stay readable.
enum class LockRank : uint8_t {
  kLeaf = 0x08,            // slot-store directory, tracer: acquire nothing
  kRegistryShard = 0x20,   // Scheduler registry stripes (sys::StripedMap)
  kSyncState = 0x30,       // Mutex/Semaphore/Barrier/Event/RwLock/WaitQueue
  kSyncCondVar = 0x34,     // CondVar state (runs Mutex::unlock underneath)
  kRuntimeMaps = 0x40,     // runtime tables: pending/services/slots/store/...
  kInvocationPool = 0x48,  // pool shards + freelist (walk into store_lock_)
  kOutbox = 0x50,          // deferred-send queue
};

#if PM2_LOCK_CHECKS

namespace lockrank {

/// Per-kernel-thread record of held SpinLocks.  Fixed capacity: the deepest
/// legal chain today is three (pool shard -> runtime map -> leaf); eight
/// leaves headroom for tests and future layers.
struct HeldStack {
  static constexpr int kMax = 8;
  const void* lock[kMax];
  uint8_t rank[kMax];
  int depth = 0;
  /// Between a lockrank_ctx_switch_begin() and the matching _end(): this
  /// kernel thread is mid-pm2_ctx_switch and must not touch any SpinLock.
  bool in_switch = false;
};

inline thread_local HeldStack t_held;

/// TLS accessor, deliberately noinline.  PM2 fibers migrate between kernel
/// threads at every pm2_ctx_switch (steal, unblock on another worker), but
/// the compiler is entitled to assume a function never changes threads and
/// may CSE the thread_local address across the switch — an inlined t_held
/// access after a resume would then scribble on the *previous* kernel
/// thread's held stack (seen in the wild as a corrupted depth tripping
/// UBSan's object-size check under ASan at 4 workers).  An opaque call
/// re-derives the TLS base from the current thread every time; two calls
/// cannot be merged because the function is not const-qualified.
[[gnu::noinline]] inline HeldStack& held() { return t_held; }

inline uint8_t min_held_rank() {
  // try_lock may record out-of-order entries, so scan instead of trusting
  // the top (depth <= kMax keeps this trivial).
  const HeldStack& h = held();
  uint8_t m = 0xFF;
  for (int i = 0; i < h.depth; ++i)
    if (h.rank[i] < m) m = h.rank[i];
  return m;
}

inline void check_acquire(const void* l, LockRank r) {
  PM2_CHECK(!held().in_switch)
      << "SpinLock " << l << " (rank 0x" << std::hex
      << unsigned(static_cast<uint8_t>(r))
      << ") acquired while this kernel thread is mid-pm2_ctx_switch";
  PM2_CHECK(static_cast<uint8_t>(r) < min_held_rank())
      << "lock-rank violation: acquiring SpinLock " << l << " of rank 0x"
      << std::hex << unsigned(static_cast<uint8_t>(r))
      << " while holding rank 0x" << unsigned(min_held_rank())
      << " (acquisition order must strictly decrease; same-rank peers only "
         "via try_lock)";
}

inline void note_acquired(const void* l, LockRank r) {
  HeldStack& h = held();
  PM2_CHECK(h.depth < HeldStack::kMax) << "SpinLock held-stack overflow";
  h.lock[h.depth] = l;
  h.rank[h.depth] = static_cast<uint8_t>(r);
  ++h.depth;
}

inline void note_released(const void* l) {
  // Search from the top: releases are almost always LIFO, but the
  // decide-under-lock pattern legitimately releases out of order
  // (SpinGuard::release before a later guard unwinds).
  HeldStack& h = held();
  for (int i = h.depth - 1; i >= 0; --i) {
    if (h.lock[i] != l) continue;
    for (int j = i; j + 1 < h.depth; ++j) {
      h.lock[j] = h.lock[j + 1];
      h.rank[j] = h.rank[j + 1];
    }
    --h.depth;
    return;
  }
  PM2_FATAL("SpinLock::unlock of a lock this kernel thread does not hold "
            "(double unlock, or unlock from a non-owning thread)");
}

}  // namespace lockrank

#endif  // PM2_LOCK_CHECKS

/// Bracket every pm2_ctx_switch: begin() immediately before the switch on
/// the departing context, end() at the first instruction the resumed (or
/// freshly booted) context runs.  begin() asserts the departing kernel
/// thread holds no SpinLock — the "never hold a SpinLock across a switch"
/// rule — and arms the in-switch flag that fails any acquisition racing
/// the switch itself.
inline void lockrank_ctx_switch_begin() {
#if PM2_LOCK_CHECKS
  // held() and not t_held: begin() runs on the departing kernel thread,
  // end() on whichever kernel thread resumes the context — the opaque
  // accessor keeps the compiler from reusing the departing thread's TLS
  // base across the switch when both brackets inline into one function.
  lockrank::HeldStack& h = lockrank::held();
  PM2_CHECK(h.depth == 0)
      << "pm2_ctx_switch with " << h.depth
      << " SpinLock(s) held (first held: " << h.lock[0]
      << "); publish, release, then switch";
  h.in_switch = true;
#endif
}

inline void lockrank_ctx_switch_end() {
#if PM2_LOCK_CHECKS
  lockrank::held().in_switch = false;
#endif
}

class PM2_CAPABILITY("spinlock") SpinLock {
 public:
  constexpr SpinLock() = default;
  constexpr explicit SpinLock([[maybe_unused]] LockRank rank)
#if PM2_LOCK_CHECKS
      : rank_(rank)
#endif
  {
  }
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() PM2_ACQUIRE() {
#if PM2_LOCK_CHECKS
    // Order is checked *before* spinning: a rank violation is exactly the
    // shape that deadlocks, so fail fast instead of hanging in it.
    lockrank::check_acquire(this, rank_);
#endif
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // Spin on a plain load so the cache line stays shared while waiting.
      while (flag_.load(std::memory_order_relaxed)) cpu_relax();
    }
#if PM2_LOCK_CHECKS
    lockrank::note_acquired(this, rank_);
#endif
  }

  bool try_lock() PM2_TRY_ACQUIRE(true) {
    bool got = !flag_.load(std::memory_order_relaxed) &&
               !flag_.exchange(true, std::memory_order_acquire);
#if PM2_LOCK_CHECKS
    // A try-acquisition cannot deadlock (it fails instead of waiting), so
    // it is exempt from the rank-order check — this is how work stealing
    // takes a peer deque of equal rank — but the mid-switch rule and the
    // held-stack bookkeeping still apply.
    if (got) {
      PM2_CHECK(!lockrank::held().in_switch)
          << "SpinLock::try_lock succeeded mid-pm2_ctx_switch";
      lockrank::note_acquired(this, rank_);
    }
#endif
    return got;
  }

  void unlock() PM2_RELEASE() {
#if PM2_LOCK_CHECKS
    PM2_CHECK(flag_.load(std::memory_order_relaxed))
        << "SpinLock::unlock of an unheld lock (double unlock?)";
    lockrank::note_released(this);
#endif
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
#if PM2_LOCK_CHECKS
  LockRank rank_ = LockRank::kLeaf;
#endif
};

/// Scoped holder (std::lock_guard works too; this one permits early release
/// for the decide-under-lock / act-outside pattern).
class PM2_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) PM2_ACQUIRE(l) : lock_(&l) { lock_->lock(); }
  ~SpinGuard() PM2_RELEASE() { release(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;
  void release() PM2_RELEASE() {
    if (lock_ != nullptr) {
      lock_->unlock();
      lock_ = nullptr;
    }
  }

 private:
  SpinLock* lock_;
};

}  // namespace pm2::sys
