#include "sys/vm.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include "common/check.hpp"
#include "sys/sanitizer.hpp"

#ifndef MAP_FIXED_NOREPLACE
#define MAP_FIXED_NOREPLACE 0x100000
#endif

namespace pm2::sys {

size_t page_size() {
  static const size_t ps = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

VmReservation::VmReservation(uintptr_t base, size_t size)
    : base_(0), size_(size) {
  PM2_CHECK(base % page_size() == 0) << "base not page aligned";
  PM2_CHECK(size % page_size() == 0) << "size not page aligned";
  void* want = reinterpret_cast<void*>(base);
  void* got = ::mmap(want, size, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE |
                         MAP_FIXED_NOREPLACE,
                     -1, 0);
  if (got == MAP_FAILED) {
    throw std::runtime_error(
        "iso-area reservation failed at fixed base (errno=" +
        std::string(std::strerror(errno)) +
        "); is the address range already in use in this process?");
  }
  if (got != want) {
    // Kernel without MAP_FIXED_NOREPLACE support ignored the hint; we must
    // not keep a mapping at the wrong address.
    ::munmap(got, size);
    throw std::runtime_error("iso-area reservation landed at wrong address");
  }
  base_ = base;
}

VmReservation::~VmReservation() { release(); }

VmReservation::VmReservation(VmReservation&& other) noexcept
    : base_(other.base_), size_(other.size_) {
  other.base_ = 0;
  other.size_ = 0;
}

VmReservation& VmReservation::operator=(VmReservation&& other) noexcept {
  if (this != &other) {
    release();
    base_ = other.base_;
    size_ = other.size_;
    other.base_ = 0;
    other.size_ = 0;
  }
  return *this;
}

void VmReservation::release() {
  if (base_ != 0) {
    ::munmap(reinterpret_cast<void*>(base_), size_);
    base_ = 0;
    size_ = 0;
  }
}

void VmReservation::commit(uintptr_t addr, size_t len) {
  PM2_CHECK(valid());
  PM2_CHECK(addr >= base_ && addr + len <= base_ + size_)
      << "commit outside reservation";
  PM2_CHECK(addr % page_size() == 0 && len % page_size() == 0);
  int rc = ::mprotect(reinterpret_cast<void*>(addr), len,
                      PROT_READ | PROT_WRITE);
  PM2_CHECK(rc == 0) << "mprotect(commit) failed: " << std::strerror(errno);
  // A re-committed range may still carry a previous tenant's shadow poison
  // (ASan never observes our mprotect games): committed slots start fully
  // addressable, exactly like the zero pages the kernel hands back.
  san_unpoison(reinterpret_cast<void*>(addr), len);
}

void VmReservation::decommit(uintptr_t addr, size_t len) {
  PM2_CHECK(valid());
  PM2_CHECK(addr >= base_ && addr + len <= base_ + size_)
      << "decommit outside reservation";
  PM2_CHECK(addr % page_size() == 0 && len % page_size() == 0);
  // Release the physical pages first, then drop access.  MADV_DONTNEED on an
  // anonymous private mapping guarantees subsequent reads (after re-commit)
  // see zero pages — which also gives migration a clean destination slot.
  int rc = ::madvise(reinterpret_cast<void*>(addr), len, MADV_DONTNEED);
  PM2_CHECK(rc == 0) << "madvise(DONTNEED) failed: " << std::strerror(errno);
  rc = ::mprotect(reinterpret_cast<void*>(addr), len, PROT_NONE);
  PM2_CHECK(rc == 0) << "mprotect(PROT_NONE) failed: " << std::strerror(errno);
}

FileMapping::FileMapping(int fd, size_t offset, size_t len) {
  PM2_CHECK(offset % page_size() == 0) << "file mapping offset not aligned";
  void* got = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     static_cast<off_t>(offset));
  if (got == MAP_FAILED) {
    throw std::runtime_error("file-backed mapping failed: " +
                             std::string(std::strerror(errno)));
  }
  data_ = got;
  size_ = len;
}

FileMapping::~FileMapping() { release(); }

FileMapping::FileMapping(FileMapping&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

FileMapping& FileMapping::operator=(FileMapping&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void FileMapping::sync() {
  if (data_ != nullptr) ::msync(data_, size_, MS_SYNC);
}

void FileMapping::release() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

bool clear_soft_dirty() {
  int fd = ::open("/proc/self/clear_refs", O_WRONLY | O_CLOEXEC);
  if (fd < 0) return false;
  ssize_t rc = ::write(fd, "4", 1);
  ::close(fd);
  return rc == 1;
}

bool read_soft_dirty(uintptr_t addr, size_t len, std::vector<uint8_t>& bits) {
  bits.clear();
  const size_t ps = page_size();
  PM2_CHECK(addr % ps == 0) << "soft-dirty read not page aligned";
  int fd = ::open("/proc/self/pagemap", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const size_t pages = (len + ps - 1) / ps;
  bits.resize(pages, 1);  // unknown pages count as dirty (conservative)
  std::vector<uint64_t> entries(pages);
  off_t off = static_cast<off_t>(addr / ps) * 8;
  size_t filled = 0;
  while (filled < pages) {
    ssize_t rc = ::pread(fd, entries.data() + filled, (pages - filled) * 8,
                         off + static_cast<off_t>(filled) * 8);
    if (rc <= 0) {
      ::close(fd);
      bits.clear();
      return false;
    }
    filled += static_cast<size_t>(rc) / 8;
  }
  ::close(fd);
  for (size_t i = 0; i < pages; ++i) {
    bits[i] = (entries[i] >> 55) & 1 ? 1 : 0;
  }
  return true;
}

bool soft_dirty_supported() {
  // One live self-test: clear the bits, dirty a private page, and check the
  // kernel reports exactly that page dirty.  Some kernels/containers hide
  // pagemap bits (CONFIG_MEM_SOFT_DIRTY off, lockdown) — the incremental
  // checkpoint then falls back to heap-chain extents.
  static const bool supported = [] {
    if (!clear_soft_dirty()) return false;
    const size_t ps = page_size();
    void* p = ::mmap(nullptr, ps, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
    *static_cast<volatile char*>(p) = 1;
    std::vector<uint8_t> bits;
    bool ok = read_soft_dirty(reinterpret_cast<uintptr_t>(p), ps, bits) &&
              bits.size() == 1 && bits[0] == 1;
    ::munmap(p, ps);
    return ok;
  }();
  return supported;
}

bool probe_readable(uintptr_t addr, size_t len) {
  // Classic write(2)-probe, but against a pipe: unlike /dev/null (whose
  // write path never touches the source buffer), a pipe write copies the
  // bytes, so the kernel returns EFAULT instead of delivering SIGSEGV when
  // the source is unreadable.
  static thread_local int fds[2] = {-1, -1};
  if (fds[0] < 0) {
    PM2_CHECK(::pipe2(fds, O_NONBLOCK | O_CLOEXEC) == 0);
  }
  // Probe one byte per page covered by [addr, addr+len).
  const size_t ps = page_size();
  uintptr_t first = addr & ~(ps - 1);
  uintptr_t last = (addr + (len == 0 ? 0 : len - 1)) & ~(ps - 1);
  for (uintptr_t page = first; page <= last; page += ps) {
    uintptr_t at = page < addr ? addr : page;
    ssize_t rc = ::write(fds[1], reinterpret_cast<void*>(at), 1);
    if (rc < 0) {
      PM2_CHECK(errno == EFAULT)
          << "probe write failed: " << std::strerror(errno);
      return false;
    }
  }
  // Drain so repeated probes never fill the pipe.
  char buf[4096];
  while (::read(fds[0], buf, sizeof(buf)) > 0) {
  }
  return true;
}

}  // namespace pm2::sys
