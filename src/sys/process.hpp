// Child-process management for the multi-process launcher ("pm2load"
// equivalent) and the multi-process test harness.
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

namespace pm2::sys {

/// Spawn a child process running `exe` with `args` (argv[0] is set to exe)
/// and extra environment entries "KEY=VALUE" appended to the current env.
/// Returns the pid.
pid_t spawn(const std::string& exe, const std::vector<std::string>& args,
            const std::vector<std::string>& extra_env);

/// Wait for a child; returns its exit status (0 = clean), or 128+signal if
/// killed.
int wait_child(pid_t pid);

/// Path of the current executable (/proc/self/exe).
std::string self_exe();

}  // namespace pm2::sys
