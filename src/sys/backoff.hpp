#pragma once

// Shared retry policy for transient syscall failures.
//
// Two idioms keep reappearing around the fabric and the slot store:
//
//  * connect/reconnect loops — retry on a short list of "peer not up yet"
//    errnos with exponential, jittered sleeps so N nodes dialing the same
//    listener do not thundering-herd it in lockstep;
//  * EINTR loops around partial-I/O syscalls (pread/pwrite/send/recv).
//
// Both live here so the socket fabric, the slot store, and future transports
// share one tuning point instead of hand-rolled copies.

#include <errno.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>

namespace pm2::sys {

/// connect() failures worth retrying during session startup or reconnect:
/// the peer has not bound/listened yet, its socket file does not exist yet,
/// or its backlog is momentarily full.  Anything else (EACCES,
/// EADDRNOTAVAIL, ENETUNREACH, ...) is a configuration or environment error
/// that no amount of retrying fixes — callers should fail immediately with
/// the errno instead of burning their whole timeout on it.
inline bool connect_errno_is_transient(int err) {
  return err == ENOENT || err == ECONNREFUSED || err == ECONNRESET ||
         err == EAGAIN || err == EINTR || err == ETIMEDOUT;
}

/// Exponential backoff with deterministic jitter.
///
/// The delay starts short (the common case is a peer that binds
/// microseconds later) and doubles to a cap well below typical connect
/// timeouts so the last attempts still happen.  Jitter de-synchronizes
/// peers that start retrying at the same instant (session startup dials
/// every connection in the same few microseconds) without introducing a
/// global RNG: the sequence is a pure function of the seed, so fault
/// injection and tests stay reproducible.
class Backoff {
 public:
  struct Config {
    int start_us = 200;
    int cap_us = 20'000;
    uint64_t seed = 0;  // any value; distinct per dialing site is enough
  };

  Backoff() : Backoff(Config{}) {}
  explicit Backoff(Config config) : config_(config) { reset(); }

  void reset() {
    delay_us_ = config_.start_us;
    attempts_ = 0;
    state_ = config_.seed ^ 0x9E3779B97F4A7C15ull;
  }

  int attempts() const { return attempts_; }

  /// The next sleep, in microseconds, without sleeping: base delay plus up
  /// to +25% jitter.  Advances the schedule (doubling toward the cap).
  int next_delay_us() {
    ++attempts_;
    int base = delay_us_;
    delay_us_ = std::min(delay_us_ * 2, config_.cap_us);
    // SplitMix64 step: cheap, stateless-feeling, fully deterministic.
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    int jitter = static_cast<int>(z % (static_cast<uint64_t>(base) / 4 + 1));
    return base + jitter;
  }

  /// Sleep for the next scheduled delay.
  void sleep() { ::usleep(static_cast<useconds_t>(next_delay_us())); }

 private:
  Config config_;
  int delay_us_ = 0;
  int attempts_ = 0;
  uint64_t state_ = 0;
};

/// Retry `fn()` (a syscall wrapper returning ssize_t, -1 on error) for as
/// long as it fails with EINTR.  Returns the first non-EINTR result; errno
/// is that of the final attempt.
template <typename Fn>
inline auto retry_eintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) rc;
  do {
    rc = fn();
  } while (rc < 0 && errno == EINTR);
  return rc;
}

}  // namespace pm2::sys
