// RAII sockets and an epoll-based poller.
//
// These back the socket fabric (stand-in for the paper's BIP/Myrinet): full
// mesh of stream connections between node processes on one host, via UNIX
// domain sockets (default) or TCP loopback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pm2::sys {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int f = fd_;
    fd_ = -1;
    return f;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Listen on a UNIX domain socket path (unlinks stale path first).
Fd uds_listen(const std::string& path);
/// Connect to a UNIX socket, retrying until `timeout_ms` (the peer process
/// may not have bound yet during startup).
Fd uds_connect(const std::string& path, int timeout_ms);

/// Listen on 127.0.0.1:port (port 0 = ephemeral; returns chosen port).
Fd tcp_listen(uint16_t& port);
Fd tcp_connect(uint16_t port, int timeout_ms);

/// Accept one connection (blocking).
Fd accept_one(const Fd& listener);

/// Blocking full-buffer send/recv.  Returns false on EOF (recv only);
/// aborts on hard errors.
void send_all(const Fd& fd, const void* data, size_t len);
bool recv_all(const Fd& fd, void* data, size_t len);

/// Toggle O_NONBLOCK.
void set_nonblocking(const Fd& fd, bool nonblocking);
/// Disable Nagle on TCP sockets (no-op for UDS).
void set_nodelay(const Fd& fd);

/// Forced-I/O fault hooks (armed by fabric::FaultFabric): process-wide
/// budgets the socket send path consults.  While a budget lasts, each
/// consuming call simulates one short write (1-byte sendmsg) or one EINTR
/// return, exercising the partial-write resume and retry paths that real
/// signals and full pipes hit rarely.  Correctness-neutral by construction.
void fault_arm_short_writes(uint64_t n);
void fault_arm_eintr(uint64_t n);
bool fault_take_short_write();
bool fault_take_eintr();
uint64_t fault_short_writes_fired();
uint64_t fault_eintr_fired();

/// Thin epoll wrapper used by the socket fabric's receive path.
class Poller {
 public:
  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, uint64_t tag);
  void remove(int fd);
  /// Wait up to timeout_ms (-1 = forever, 0 = poll); returns tags of ready
  /// (EPOLLIN) fds.
  std::vector<uint64_t> wait(int timeout_ms);
  /// Nanosecond-resolution wait (UINT64_MAX = forever): epoll_pwait2 where
  /// the kernel provides it, millisecond epoll_wait (rounded up) otherwise.
  /// Sub-ms precision keeps the comm daemon's timer-bounded fabric waits
  /// from oversleeping marcel timers by a full millisecond.
  std::vector<uint64_t> wait_ns(uint64_t timeout_ns);

 private:
  int epfd_ = -1;
};

}  // namespace pm2::sys
