// Lock-free Chase-Lev work-stealing deque (dynamic circular array).
//
// The classic protocol from Chase & Lev, "Dynamic Circular Work-Stealing
// Deque" (SPAA '05), with the C11 memory orders of Lê, Pop, Cohen &
// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP '13):
//
//   * the OWNER pushes and pops at `bottom` — plain index arithmetic plus
//     one release store on push and one seq_cst fence on pop;
//   * THIEVES (any other kernel thread) take from `top` with a CAS;
//   * the only fence-heavy case is the one-element race, where the owner's
//     pop_bottom and a thief's steal fight for the same cell and the CAS on
//     `top` arbitrates.
//
// The element type is a pointer (the scheduler stores Thread*).  A push
// publishes everything written to *x before it: the release store of
// `bottom` in push_bottom pairs with the acquire load in steal(), so a
// thief that obtains the pointer also observes the owner's prior writes
// through it — this is the publication edge the scheduler's
// unfreeze/rearm discipline documents (see marcel/scheduler.hpp).  We
// deviate from the paper's fence-based formulation in one deliberate way:
// every `bottom` store is a release store rather than a relaxed store
// behind a fence, because TSan does not model standalone fences and the
// per-variable release/acquire pairing is what lets it (and human
// readers) see the edge.  Same semantics, same x86 codegen.
//
// Growth: when the ring fills, the owner allocates a double-size array and
// copies the live window.  Retired arrays are kept on a garbage chain until
// the deque is destroyed — a thief may still be reading a cell of an old
// array after the swap, and with at most log2(capacity) doublings the waste
// is bounded by ~2x the peak footprint, which buys freedom from any
// reclamation protocol.
//
// Indices are unsigned 64-bit and monotonically increasing, so the top CAS
// can never ABA.  size()/empty() are racy snapshots, fine for heuristics
// (steal victim selection, idle checks) and exact when the caller is the
// owner and no thief intervenes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/check.hpp"

namespace pm2::sys {

template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(size_t initial_capacity = 64) {
    size_t cap = 8;
    while (cap < initial_capacity) cap <<= 1;
    array_.store(new Array(cap), std::memory_order_relaxed);
  }

  ~ChaseLevDeque() {
    Array* a = array_.load(std::memory_order_relaxed);
    while (a != nullptr) {
      Array* prev = a->retired_prev;
      delete a;
      a = prev;
    }
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// OWNER ONLY.  Push `x` at the bottom (the hot end).  The release store
  /// of `bottom` publishes both the element pointer and everything the
  /// owner wrote before the push to whichever consumer later takes it.
  void push_bottom(T* x) {
    uint64_t b = bottom_.load(std::memory_order_relaxed);
    uint64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= a->capacity) {
      a = grow(a, b, t);
    }
    a->put(b, x);
    // Release *store* where Lê et al. use a release fence + relaxed store.
    // Equivalent synchronization under C11 for this edge (and free on
    // x86), but crucially visible to TSan, which does not model standalone
    // fences: the thief's acquire load of `bottom` is where descriptor
    // publication synchronizes, and a fence-only formulation would make
    // every field read through a stolen pointer a false TSan race.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// OWNER ONLY.  Pop from the bottom (LIFO).  Returns nullptr when empty.
  /// The seq_cst fence after the speculative bottom decrement is what makes
  /// the one-element race sound: it forces the decrement to be globally
  /// visible before the owner reads `top`, so the owner and a racing thief
  /// cannot both conclude they own the last element — the CAS on `top`
  /// decides, and exactly one of them wins.
  T* pop_bottom() {
    uint64_t b = bottom_.load(std::memory_order_relaxed);
    if (b == top_.load(std::memory_order_relaxed)) return nullptr;
    b -= 1;
    Array* a = array_.load(std::memory_order_relaxed);
    // Release for the same TSan-visibility reason as push_bottom: a thief
    // acquiring `bottom` must inherit the owner's history even when the
    // value it reads came from this speculative decrement (C++20 release
    // sequences do not extend through later relaxed stores, so this is
    // also the formally tight choice).  The seq_cst fence below is still
    // what arbitrates the one-element race.
    bottom_.store(b, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    uint64_t t = top_.load(std::memory_order_relaxed);
    T* x;
    if (t <= b) {
      x = a->get(b);
      if (t == b) {
        // One element left: race the thieves for it via the top CAS.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          x = nullptr;  // a thief got there first
        }
        bottom_.store(b + 1, std::memory_order_release);
      }
    } else {
      // Deque was already empty; undo the speculative decrement.
      x = nullptr;
      bottom_.store(b + 1, std::memory_order_release);
    }
    return x;
  }

  /// ANY THREAD.  Take from the top (the cold end, FIFO order).  Returns
  /// nullptr when the deque looks empty or the CAS lost a race (the caller
  /// retries or moves on — work stealing treats both the same).
  ///
  /// The scheduler also uses this as the *owner's* dequeue: taking from the
  /// top keeps dispatch order FIFO (round-robin fairness across ready
  /// threads), at the cost of one uncontended CAS — the same price the
  /// retired spinlock paid in its uncontended exchange.  Owner-side
  /// pop_bottom stays available for LIFO consumers.
  T* steal() {
    uint64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    uint64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;  // empty
    Array* a = array_.load(std::memory_order_acquire);
    T* x = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race for this element
    }
    return x;
  }

  /// Racy size snapshot (see header comment).
  size_t size() const {
    uint64_t b = bottom_.load(std::memory_order_relaxed);
    uint64_t t = top_.load(std::memory_order_relaxed);
    return b >= t ? static_cast<size_t>(b - t) : 0;
  }

  bool empty() const { return size() == 0; }

  /// Current ring capacity (owner/test introspection).
  size_t capacity() const {
    return array_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct Array {
    explicit Array(size_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T*>[cap]) {}
    ~Array() { delete[] cells; }

    T* get(uint64_t i) const {
      return cells[i & mask].load(std::memory_order_relaxed);
    }
    void put(uint64_t i, T* x) {
      cells[i & mask].store(x, std::memory_order_relaxed);
    }

    const size_t capacity;
    const size_t mask;
    std::atomic<T*>* cells;
    Array* retired_prev = nullptr;  // garbage chain; freed with the deque
  };

  /// OWNER ONLY (called from push_bottom with the ring full).
  Array* grow(Array* old, uint64_t b, uint64_t t) {
    auto* bigger = new Array(old->capacity * 2);
    for (uint64_t i = t; i != b; ++i) bigger->put(i, old->get(i));
    bigger->retired_prev = old;
    // Release: a thief loading the new array pointer must see initialized
    // cells.  The old array stays readable (and chained) for any thief
    // that loaded it before the swap.
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  alignas(64) std::atomic<uint64_t> top_{0};
  alignas(64) std::atomic<uint64_t> bottom_{0};
  alignas(64) std::atomic<Array*> array_{nullptr};
};

}  // namespace pm2::sys
