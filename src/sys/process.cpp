#include "sys/process.hpp"

#include <errno.h>
#include <limits.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include "common/check.hpp"

extern char** environ;

namespace pm2::sys {

pid_t spawn(const std::string& exe, const std::vector<std::string>& args,
            const std::vector<std::string>& extra_env) {
  // Build argv / envp before forking (no allocation after fork).
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) envp.push_back(*e);
  for (const auto& e : extra_env) envp.push_back(const_cast<char*>(e.c_str()));
  envp.push_back(nullptr);

  pid_t pid = ::fork();
  PM2_CHECK(pid >= 0) << "fork: " << std::strerror(errno);
  if (pid == 0) {
    ::execve(exe.c_str(), argv.data(), envp.data());
    // Only reached on failure.
    ::_exit(127);
  }
  return pid;
}

int wait_child(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    PM2_CHECK(errno == EINTR) << "waitpid: " << std::strerror(errno);
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

std::string self_exe() {
  char buf[PATH_MAX];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  PM2_CHECK(n > 0) << "readlink(/proc/self/exe) failed";
  buf[n] = '\0';
  return buf;
}

}  // namespace pm2::sys
