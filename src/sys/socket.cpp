#include "sys/socket.hpp"

#include <errno.h>
#include <fcntl.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/check.hpp"
#include "common/time.hpp"
#include "sys/backoff.hpp"

namespace pm2::sys {

namespace {

/// Shared retry loop for both connect flavors: `attempt()` returns a valid
/// Fd on success or an invalid one with errno set.  Retries transient
/// errnos on a jittered exponential schedule (sys::Backoff) until
/// `timeout_ms` elapses; non-transient errnos fail immediately.
template <typename Attempt, typename Describe>
Fd connect_with_retry(int timeout_ms, uint64_t backoff_seed,
                      const Attempt& attempt, const Describe& describe) {
  Stopwatch sw;
  Backoff backoff({.seed = backoff_seed});
  while (true) {
    Fd fd = attempt();
    if (fd.valid()) return fd;
    int err = errno;
    PM2_CHECK(connect_errno_is_transient(err))
        << describe() << ": " << std::strerror(err);
    PM2_CHECK(sw.elapsed_ms() < timeout_ms)
        << describe() << " timed out after " << backoff.attempts() + 1
        << " attempts: " << std::strerror(err);
    backoff.sleep();
  }
}

std::atomic<uint64_t> g_short_write_budget{0};
std::atomic<uint64_t> g_eintr_budget{0};
std::atomic<uint64_t> g_short_writes_fired{0};
std::atomic<uint64_t> g_eintr_fired{0};

bool take_budget(std::atomic<uint64_t>& budget,
                 std::atomic<uint64_t>& fired) {
  uint64_t v = budget.load(std::memory_order_relaxed);
  while (v > 0) {
    if (budget.compare_exchange_weak(v, v - 1, std::memory_order_relaxed)) {
      fired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

}  // namespace

void fault_arm_short_writes(uint64_t n) {
  g_short_write_budget.fetch_add(n, std::memory_order_relaxed);
}
void fault_arm_eintr(uint64_t n) {
  g_eintr_budget.fetch_add(n, std::memory_order_relaxed);
}
bool fault_take_short_write() {
  return take_budget(g_short_write_budget, g_short_writes_fired);
}
bool fault_take_eintr() {
  return take_budget(g_eintr_budget, g_eintr_fired);
}
uint64_t fault_short_writes_fired() {
  return g_short_writes_fired.load(std::memory_order_relaxed);
}
uint64_t fault_eintr_fired() {
  return g_eintr_fired.load(std::memory_order_relaxed);
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd uds_listen(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  PM2_CHECK(fd.valid()) << "socket: " << std::strerror(errno);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PM2_CHECK(path.size() < sizeof(addr.sun_path)) << "uds path too long: " << path;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  PM2_CHECK(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 0)
      << "bind(" << path << "): " << std::strerror(errno);
  PM2_CHECK(::listen(fd.get(), 64) == 0) << "listen: " << std::strerror(errno);
  return fd;
}

Fd uds_connect(const std::string& path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PM2_CHECK(path.size() < sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  uint64_t seed = std::hash<std::string>{}(path);
  return connect_with_retry(
      timeout_ms, seed,
      [&]() -> Fd {
        Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
        PM2_CHECK(fd.valid());
        if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          return fd;
        }
        int err = errno;   // close() in ~Fd must not clobber the
        fd.reset();        // connect() errno the retry loop inspects
        errno = err;
        return Fd();
      },
      [&] { return "uds_connect(" + path + ")"; });
}

Fd tcp_listen(uint16_t& port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  PM2_CHECK(fd.valid());
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  PM2_CHECK(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 0)
      << "tcp bind: " << std::strerror(errno);
  socklen_t len = sizeof(addr);
  PM2_CHECK(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) ==
            0);
  port = ntohs(addr.sin_port);
  PM2_CHECK(::listen(fd.get(), 64) == 0);
  return fd;
}

Fd tcp_connect(uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return connect_with_retry(
      timeout_ms, port,
      [&]() -> Fd {
        Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
        PM2_CHECK(fd.valid());
        if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          set_nodelay(fd);
          return fd;
        }
        int err = errno;
        fd.reset();
        errno = err;
        return Fd();
      },
      [&] { return "tcp_connect(" + std::to_string(port) + ")"; });
}

Fd accept_one(const Fd& listener) {
  int fd = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
  PM2_CHECK(fd >= 0) << "accept: " << std::strerror(errno);
  return Fd(fd);
}

void send_all(const Fd& fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd.get(), p, len, MSG_NOSIGNAL);
    if (n < 0) {
      PM2_CHECK(errno == EINTR || errno == EAGAIN)
          << "send: " << std::strerror(errno);
      continue;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
}

bool recv_all(const Fd& fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::recv(fd.get(), p, len, 0);
    if (n == 0) return false;  // orderly shutdown
    if (n < 0) {
      PM2_CHECK(errno == EINTR) << "recv: " << std::strerror(errno);
      continue;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void set_nonblocking(const Fd& fd, bool nonblocking) {
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  PM2_CHECK(flags >= 0);
  if (nonblocking)
    flags |= O_NONBLOCK;
  else
    flags &= ~O_NONBLOCK;
  PM2_CHECK(::fcntl(fd.get(), F_SETFL, flags) == 0);
}

void set_nodelay(const Fd& fd) {
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Poller::Poller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
  PM2_CHECK(epfd_ >= 0);
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Poller::add(int fd, uint64_t tag) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = tag;
  PM2_CHECK(::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl(ADD): " << std::strerror(errno);
}

void Poller::remove(int fd) {
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::vector<uint64_t> Poller::wait(int timeout_ms) {
  epoll_event evs[16];
  int n = ::epoll_wait(epfd_, evs, 16, timeout_ms);
  if (n < 0) {
    PM2_CHECK(errno == EINTR) << "epoll_wait: " << std::strerror(errno);
    return {};
  }
  std::vector<uint64_t> tags;
  tags.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) tags.push_back(evs[i].data.u64);
  return tags;
}

std::vector<uint64_t> Poller::wait_ns(uint64_t timeout_ns) {
#ifdef SYS_epoll_pwait2
  // Probe once: on a pre-5.11 kernel the syscall is a guaranteed ENOSYS,
  // and this sits on the comm daemon's every-wait hot path.
  static const bool have_pwait2 = [] {
    long r = ::syscall(SYS_epoll_pwait2, -1, nullptr, 0, nullptr, nullptr, 0);
    return !(r < 0 && errno == ENOSYS);
  }();
  if (have_pwait2) {
    epoll_event evs[16];
    timespec ts;
    timespec* tsp = nullptr;
    if (timeout_ns != UINT64_MAX) {
      ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000ull);
      ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000ull);
      tsp = &ts;
    }
    // Raw syscall: works on any glibc once the kernel has it.
    long n = ::syscall(SYS_epoll_pwait2, epfd_, evs, 16, tsp, nullptr, 0);
    if (n >= 0) {
      std::vector<uint64_t> tags;
      tags.reserve(static_cast<size_t>(n));
      for (long i = 0; i < n; ++i) tags.push_back(evs[i].data.u64);
      return tags;
    }
    PM2_CHECK(errno == EINTR) << "epoll_pwait2: " << std::strerror(errno);
    return {};
  }
#endif
  if (timeout_ns == UINT64_MAX) return wait(-1);
  int ms = static_cast<int>(
      std::min<uint64_t>((timeout_ns + 999'999) / 1'000'000, INT_MAX));
  return wait(ms);
}

}  // namespace pm2::sys
