#include "sys/socket.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "common/check.hpp"
#include "common/time.hpp"

namespace pm2::sys {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd uds_listen(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  PM2_CHECK(fd.valid()) << "socket: " << std::strerror(errno);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PM2_CHECK(path.size() < sizeof(addr.sun_path)) << "uds path too long: " << path;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  PM2_CHECK(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 0)
      << "bind(" << path << "): " << std::strerror(errno);
  PM2_CHECK(::listen(fd.get(), 64) == 0) << "listen: " << std::strerror(errno);
  return fd;
}

Fd uds_connect(const std::string& path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PM2_CHECK(path.size() < sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  Stopwatch sw;
  while (true) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    PM2_CHECK(fd.valid());
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    PM2_CHECK(sw.elapsed_ms() < timeout_ms)
        << "uds_connect(" << path << ") timed out: " << std::strerror(errno);
    ::usleep(1000);
  }
}

Fd tcp_listen(uint16_t& port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  PM2_CHECK(fd.valid());
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  PM2_CHECK(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 0)
      << "tcp bind: " << std::strerror(errno);
  socklen_t len = sizeof(addr);
  PM2_CHECK(::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) ==
            0);
  port = ntohs(addr.sin_port);
  PM2_CHECK(::listen(fd.get(), 64) == 0);
  return fd;
}

Fd tcp_connect(uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  Stopwatch sw;
  while (true) {
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    PM2_CHECK(fd.valid());
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      set_nodelay(fd);
      return fd;
    }
    PM2_CHECK(sw.elapsed_ms() < timeout_ms)
        << "tcp_connect(" << port << ") timed out";
    ::usleep(1000);
  }
}

Fd accept_one(const Fd& listener) {
  int fd = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
  PM2_CHECK(fd >= 0) << "accept: " << std::strerror(errno);
  return Fd(fd);
}

void send_all(const Fd& fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd.get(), p, len, MSG_NOSIGNAL);
    if (n < 0) {
      PM2_CHECK(errno == EINTR || errno == EAGAIN)
          << "send: " << std::strerror(errno);
      continue;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
}

bool recv_all(const Fd& fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::recv(fd.get(), p, len, 0);
    if (n == 0) return false;  // orderly shutdown
    if (n < 0) {
      PM2_CHECK(errno == EINTR) << "recv: " << std::strerror(errno);
      continue;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void set_nonblocking(const Fd& fd, bool nonblocking) {
  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  PM2_CHECK(flags >= 0);
  if (nonblocking)
    flags |= O_NONBLOCK;
  else
    flags &= ~O_NONBLOCK;
  PM2_CHECK(::fcntl(fd.get(), F_SETFL, flags) == 0);
}

void set_nodelay(const Fd& fd) {
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Poller::Poller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
  PM2_CHECK(epfd_ >= 0);
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Poller::add(int fd, uint64_t tag) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = tag;
  PM2_CHECK(::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl(ADD): " << std::strerror(errno);
}

void Poller::remove(int fd) {
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::vector<uint64_t> Poller::wait(int timeout_ms) {
  epoll_event evs[16];
  int n = ::epoll_wait(epfd_, evs, 16, timeout_ms);
  if (n < 0) {
    PM2_CHECK(errno == EINTR) << "epoll_wait: " << std::strerror(errno);
    return {};
  }
  std::vector<uint64_t> tags;
  tags.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) tags.push_back(evs[i].data.u64);
  return tags;
}

}  // namespace pm2::sys
