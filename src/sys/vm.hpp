// Virtual-memory control for the iso-address area.
//
// The paper (§4.1) allocates each slot with mmap() at a specified virtual
// address inside an "iso-address area" located identically in every node's
// address space.  The modern, race-free equivalent used here is:
//
//   1. reserve the whole iso-address area once per process with
//      mmap(base, size, PROT_NONE, MAP_FIXED_NOREPLACE|MAP_NORESERVE) —
//      this pins the range so neither libc malloc nor the loader can take
//      addresses inside it, and fails loudly if anything already lives
//      there (instead of silently clobbering, as plain MAP_FIXED would);
//   2. "allocating a slot" = mprotect(PROT_READ|PROT_WRITE) on its range
//      (commit);
//   3. "unmapping a slot" = madvise(MADV_DONTNEED) + mprotect(PROT_NONE)
//      (decommit: frees the physical pages, keeps the reservation).
//
// Because the same binary runs on every node (SPMD, paper assumption 1) the
// fixed base is free in every process, so a slot committed on one node can
// be re-committed at the same address on another: iso-addressing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pm2::sys {

/// System page size (cached).
size_t page_size();

/// RAII reservation of a fixed virtual address range.
///
/// Non-copyable, movable.  The destructor unmaps the whole range.
class VmReservation {
 public:
  VmReservation() = default;
  /// Reserve [base, base+size) with PROT_NONE.  `base` and `size` must be
  /// page aligned.  Throws std::runtime_error if the range is unavailable.
  VmReservation(uintptr_t base, size_t size);
  ~VmReservation();

  VmReservation(const VmReservation&) = delete;
  VmReservation& operator=(const VmReservation&) = delete;
  VmReservation(VmReservation&& other) noexcept;
  VmReservation& operator=(VmReservation&& other) noexcept;

  bool valid() const { return base_ != 0; }
  uintptr_t base() const { return base_; }
  size_t size() const { return size_; }

  /// Make [addr, addr+len) readable/writable.  Page aligned, inside the
  /// reservation.
  void commit(uintptr_t addr, size_t len);

  /// Return [addr, addr+len) to PROT_NONE and release its physical pages.
  void decommit(uintptr_t addr, size_t len);

  /// Release the reservation early (idempotent).
  void release();

 private:
  uintptr_t base_ = 0;
  size_t size_ = 0;
};

/// True if [addr, addr+len) is currently readable (committed) — used by
/// tests to assert commit/decommit behaviour without faulting.
bool probe_readable(uintptr_t addr, size_t len);

/// RAII shared file-backed mapping (MAP_SHARED, read/write) of
/// [offset, offset+len) of an open fd at a kernel-chosen address.
///
/// Used for the slot-store header + thread directory: a MAP_SHARED store
/// lands in the page cache on every ordinary store instruction, so the
/// metadata survives a `kill -9` of the process (only a machine crash
/// needs the explicit sync).  Non-copyable, movable.
class FileMapping {
 public:
  FileMapping() = default;
  /// Map `len` bytes of `fd` starting at page-aligned `offset`.  Throws
  /// std::runtime_error on failure.  The fd may be closed afterwards; the
  /// mapping keeps the file open.
  FileMapping(int fd, size_t offset, size_t len);
  ~FileMapping();

  FileMapping(const FileMapping&) = delete;
  FileMapping& operator=(const FileMapping&) = delete;
  FileMapping(FileMapping&& other) noexcept;
  FileMapping& operator=(FileMapping&& other) noexcept;

  bool valid() const { return data_ != nullptr; }
  void* data() const { return data_; }
  size_t size() const { return size_; }

  /// msync(MS_SYNC) the whole mapping — durability against machine crash,
  /// not needed for kill -9 survival.
  void sync();

  void release();

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

/// True when the kernel's soft-dirty page tracking is usable by this
/// process (writable /proc/self/clear_refs + pagemap bit 55 visible).
/// Probed once with a live write-then-read self-test.
bool soft_dirty_supported();

/// Reset the soft-dirty bit on every page of this process (writes "4" to
/// /proc/self/clear_refs).  Returns false if the kernel refused.
bool clear_soft_dirty();

/// Read the soft-dirty bit for each page of [addr, addr+len): `bits` gets
/// one byte per page (1 = written since the last clear_soft_dirty()).
/// `addr` must be page aligned.  Returns false (and leaves `bits` empty)
/// when pagemap is unavailable — callers fall back to full writes.
bool read_soft_dirty(uintptr_t addr, size_t len, std::vector<uint8_t>& bits);

}  // namespace pm2::sys
