// Clang Thread Safety Analysis macro shim.
//
// The SMP locking rules of this runtime ("decide under the lock, act
// outside", "never hold a SpinLock across pm2_ctx_switch") are enforced two
// ways: statically by clang's -Wthread-safety pass through the annotations
// below, and dynamically by the lock-rank checker in sys/spinlock.hpp.
// This header provides the annotation macros; they expand to clang's
// thread-safety attributes when the compiler supports them and to nothing
// otherwise (GCC builds the tree unannotated, bit-for-bit identical).
//
// Usage map:
//   * sys::SpinLock           -> PM2_CAPABILITY
//   * sys::SpinGuard          -> PM2_SCOPED_CAPABILITY
//   * lock-protected fields   -> PM2_GUARDED_BY(lock)
//   * decide-under-lock hooks -> PM2_REQUIRES(lock) (caller holds it)
//   * lock/unlock entry points-> PM2_ACQUIRE / PM2_RELEASE
//   * park-and-release paths  -> PM2_RELEASE(lock) on block_commit-shaped
//                                functions (the lock is released *inside*)
//
// Every PM2_NO_THREAD_SAFETY_ANALYSIS escape in the tree must carry a
// comment justifying why the analysis cannot see the protocol (there are
// deliberately few: the WaitQueue's dual-mode locking and the scheduler's
// publish-then-release-then-switch park are the canonical ones).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PM2_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PM2_THREAD_ANNOTATION(x)
#endif
#else
#define PM2_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lock-like capability (clang tracks acquire/release).
#define PM2_CAPABILITY(name) PM2_THREAD_ANNOTATION(capability(name))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define PM2_SCOPED_CAPABILITY PM2_THREAD_ANNOTATION(scoped_lockable)

/// Field access requires holding `x`.
#define PM2_GUARDED_BY(x) PM2_THREAD_ANNOTATION(guarded_by(x))

/// Pointee access requires holding `x` (the pointer itself is free).
#define PM2_PT_GUARDED_BY(x) PM2_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities on entry (and still does on
/// exit).
#define PM2_REQUIRES(...) \
  PM2_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define PM2_ACQUIRE(...) PM2_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (caller held them on entry).
#define PM2_RELEASE(...) PM2_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define PM2_TRY_ACQUIRE(result, ...) \
  PM2_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention for
/// functions that acquire them internally).
#define PM2_EXCLUDES(...) PM2_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Assert (to the analysis) that the capability is held here — for code
/// reached only from contexts that provably hold it but that the analysis
/// cannot follow (callback indirection).
#define PM2_ASSERT_CAPABILITY(x) \
  PM2_THREAD_ANNOTATION(assert_capability(x))

/// Returns the capability protecting the returned object.
#define PM2_RETURN_CAPABILITY(x) PM2_THREAD_ANNOTATION(lock_returned(x))

/// Opt a function out of the analysis.  EVERY use must carry a comment
/// justifying why the protocol is invisible to the static pass.
#define PM2_NO_THREAD_SAFETY_ANALYSIS \
  PM2_THREAD_ANNOTATION(no_thread_safety_analysis)
