#include "trace/trace.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/time.hpp"

namespace pm2::trace {

const char* to_string(Event e) {
  switch (e) {
    case Event::kThreadCreate:
      return "thread_create";
    case Event::kThreadExit:
      return "thread_exit";
    case Event::kMigrationOut:
      return "migration_out";
    case Event::kMigrationIn:
      return "migration_in";
    case Event::kNegotiationStart:
      return "negotiation_start";
    case Event::kNegotiationEnd:
      return "negotiation_end";
    case Event::kSlotAcquire:
      return "slot_acquire";
    case Event::kSlotRelease:
      return "slot_release";
    case Event::kRpcOut:
      return "rpc_out";
    case Event::kRpcIn:
      return "rpc_in";
    case Event::kBarrier:
      return "barrier";
    case Event::kCheckpoint:
      return "checkpoint";
    case Event::kRestore:
      return "restore";
    case Event::kUser:
      return "user";
  }
  return "?";
}

Tracer::Tracer(uint16_t node, size_t capacity) : node_(node) {
  PM2_CHECK(capacity >= 16);
  ring_.resize(capacity);
}

void Tracer::record(Event event, uint64_t a, uint64_t b) {
  uint64_t t = now_ns();
  sys::SpinGuard g(lock_);
  Record& r = ring_[head_];
  r.t_ns = t;
  r.event = event;
  r.node = node_;
  r.a = a;
  r.b = b;
  head_ = (head_ + 1) % ring_.size();
  ++total_;
}

std::vector<Record> Tracer::snapshot() const {
  std::vector<Record> out;
  sys::SpinGuard g(lock_);
  size_t n = total_ < ring_.size() ? static_cast<size_t>(total_) : ring_.size();
  out.reserve(n);
  size_t start = total_ < ring_.size() ? 0 : head_;
  for (size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

size_t Tracer::count(Event event) const {
  size_t n = 0;
  for (const Record& r : snapshot())
    if (r.event == event) ++n;
  return n;
}

std::string Tracer::to_csv() const {
  std::ostringstream os;
  os << "t_us,node,event,a,b\n";
  for (const Record& r : snapshot()) {
    os << static_cast<double>(r.t_ns) / 1e3 << ',' << r.node << ','
       << to_string(r.event) << ',' << r.a << ',' << r.b << '\n';
  }
  return os.str();
}

void Tracer::clear() {
  sys::SpinGuard g(lock_);
  head_ = 0;
  total_ = 0;
}

}  // namespace pm2::trace
