// Lightweight event tracing for PM2 nodes.
//
// A bounded per-node ring of timestamped events (migrations, negotiations,
// slot traffic, RPCs…).  Recording is cheap: no allocation, one short
// spinlock hold to claim the ring cell (threads record from any scheduler
// worker once a node runs multiple kernel threads); the ring can be dumped
// as CSV for offline inspection or asserted on in tests.
//
// The runtime records through an optional Tracer pointer, so tracing costs
// nothing when disabled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sys/spinlock.hpp"

namespace pm2::trace {

enum class Event : uint16_t {
  kThreadCreate = 0,
  kThreadExit,
  kMigrationOut,   // a = thread id, b = destination node
  kMigrationIn,    // a = thread id, b = source node
  kNegotiationStart,  // a = run length
  kNegotiationEnd,    // a = first slot or UINT64_MAX on failure
  kSlotAcquire,    // a = first, b = count
  kSlotRelease,    // a = first, b = count
  kRpcOut,         // a = service, b = destination
  kRpcIn,          // a = service, b = source
  kBarrier,
  kCheckpoint,     // a = thread id
  kRestore,        // a = thread id
  kUser,           // free-form application marker
};

const char* to_string(Event e);

struct Record {
  uint64_t t_ns;  // monotonic timestamp
  Event event;
  uint16_t node;
  uint64_t a;
  uint64_t b;
};

class Tracer {
 public:
  /// `capacity` = ring size in records (power of two recommended).
  explicit Tracer(uint16_t node, size_t capacity = 64 * 1024);

  void record(Event event, uint64_t a = 0, uint64_t b = 0);

  /// Records in chronological order (oldest survivor first).
  std::vector<Record> snapshot() const;

  /// Number of events recorded since construction (including overwritten).
  uint64_t total() const {
    sys::SpinGuard g(lock_);
    return total_;
  }
  /// Events of one kind currently in the ring.
  size_t count(Event event) const;

  /// Dump the ring as CSV: t_us,node,event,a,b
  std::string to_csv() const;
  void clear();

 private:
  // kLeaf: trace_event() fires from arbitrary runtime/scheduler contexts,
  // often with a higher-ranked lock held; recording acquires nothing.
  mutable sys::SpinLock lock_{sys::LockRank::kLeaf};
  uint16_t node_;
  std::vector<Record> ring_;
  size_t head_ = 0;   // next write position (under lock_)
  uint64_t total_ = 0;  // under lock_
};

}  // namespace pm2::trace
