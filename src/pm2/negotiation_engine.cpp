// Distributed wrapper of the slot negotiation (paper §4.4 steps a–f).
//
// The pure search/purchase logic is in isomalloc/negotiation.*; this file
// adds the protocol: the lock server hosted by node 0 (the system-wide
// critical section), the bitmap gather, the update scatter, and the freeze
// discipline that keeps every node's bitmap immutable while a negotiation
// is in flight.
//
// Locking: the lock-server state and this node's grant-wait event live
// under nego_lock_ (the comm daemon's handlers race worker threads calling
// lock_system/unlock_system); the bitmap, freeze depth, deferred releases
// and the freeze wait-queue live under slot_lock_.  Sends and wake-ups
// always happen outside both.
#include "common/check.hpp"
#include "common/log.hpp"
#include "isomalloc/negotiation.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {

void Runtime::lock_system() {
  PM2_CHECK(marcel::Scheduler::self() != nullptr);
  marcel::Event ev;
  bool send_req = false;
  nego_lock_.lock();
  PM2_CHECK(lock_wait_ == nullptr)
      << "two concurrent negotiations on one node";
  if (config_.node == 0) {
    if (!lock_held_) {
      lock_held_ = true;
      lock_owner_ = 0;
      nego_lock_.unlock();
      return;
    }
    lock_wait_ = &ev;
    lock_queue_.push_back(0);
  } else {
    lock_wait_ = &ev;
    send_req = true;
  }
  nego_lock_.unlock();
  if (send_req) {
    fabric::Message msg;
    msg.type = kLockReq;
    msg.dst = 0;
    fabric_send(std::move(msg));
  }
  ev.wait();
  nego_lock_.lock();
  lock_wait_ = nullptr;
  bool lost = nego_peer_lost_;
  nego_peer_lost_ = false;
  nego_lock_.unlock();
  // The global bitmap protocol cannot survive losing a participant (the
  // address-space consensus would silently diverge): abort loudly rather
  // than proceed with a partial view or hang on a grant that never comes.
  PM2_CHECK(!lost) << "peer went down while waiting for the system lock";
  PM2_DEBUG << "system lock granted";
}

void Runtime::unlock_system() {
  PM2_DEBUG << "releasing system lock";
  if (config_.node == 0) {
    handle_unlock(0);
    return;
  }
  fabric::Message msg;
  msg.type = kUnlock;
  msg.dst = 0;
  fabric_send(std::move(msg));
}

void Runtime::handle_lock_req(uint32_t from) {
  PM2_CHECK(config_.node == 0) << "lock request at non-server node";
  bool grant_now = false;
  nego_lock_.lock();
  if (!lock_held_) {
    lock_held_ = true;
    lock_owner_ = from;
    grant_now = true;
  } else {
    lock_queue_.push_back(from);
  }
  nego_lock_.unlock();
  if (grant_now) {
    fabric::Message grant;
    grant.type = kLockGrant;
    grant.dst = from;
    fabric_send(std::move(grant));
  }
}

void Runtime::handle_unlock(uint32_t from) {
  PM2_CHECK(config_.node == 0) << "unlock at non-server node";
  marcel::Event* waiter = nullptr;
  uint32_t next = 0;
  bool grant_remote = false;
  nego_lock_.lock();
  PM2_CHECK(lock_held_ && lock_owner_ == from)
      << "unlock by non-owner " << from;
  if (lock_queue_.empty()) {
    lock_held_ = false;
    nego_lock_.unlock();
    return;
  }
  next = lock_queue_.front();
  lock_queue_.erase(lock_queue_.begin());
  lock_owner_ = next;
  if (next == 0) {
    waiter = lock_wait_;
    PM2_CHECK(waiter != nullptr);
  } else {
    grant_remote = true;
  }
  nego_lock_.unlock();
  if (waiter != nullptr) waiter->set();
  if (grant_remote) {
    fabric::Message grant;
    grant.type = kLockGrant;
    grant.dst = next;
    fabric_send(std::move(grant));
  }
}

void Runtime::handle_gather_req(fabric::Message& msg) {
  // Step (a) seen from a peer: our bitmap becomes read-only until the
  // initiator's kNegoUpdate arrives.  Threads that try to acquire slots
  // meanwhile park; releases are deferred.  Freeze and snapshot atomically
  // under slot_lock_, serialize and send outside.
  std::vector<uint64_t> words;
  slot_lock_.lock();
  ++bitmap_freeze_;
  words = slot_mgr_.bitmap().words();
  slot_lock_.unlock();
  PM2_DEBUG << "gather req from " << msg.src;
  fabric::Message resp;
  resp.type = kGatherResp;
  resp.dst = msg.src;
  resp.corr = msg.corr;
  ByteWriter w;
  w.put_vector<uint64_t>(words);
  resp.payload = w.take();
  fabric_send(std::move(resp));
}

void Runtime::handle_nego_update(fabric::Message& msg) {
  PM2_DEBUG << "nego update from " << msg.src;
  ByteReader r(msg.flat());
  auto words = r.get_vector<uint64_t>();
  slot_lock_.lock();
  slot_mgr_.set_bitmap(Bitmap::from_words(area_.n_slots(), std::move(words)));
  PM2_CHECK(bitmap_freeze_ > 0) << "negotiation update without gather";
  --bitmap_freeze_;
  slot_lock_.unlock();
  apply_deferred_releases();
}

void Runtime::apply_deferred_releases() {
  slot_lock_.lock();
  if (bitmap_freeze_ > 0) {
    slot_lock_.unlock();
    return;
  }
  for (auto [first, count] : deferred_releases_)
    slot_mgr_.release(first, count);
  deferred_releases_.clear();
  // Detach the freeze waiters under the lock, wake them outside (unblock
  // takes ready-deque locks and may spin on a still-switching thread).
  marcel::Thread* chain = bitmap_wait_.pop_all_locked();
  slot_lock_.unlock();
  while (chain != nullptr) {
    marcel::Thread* next = chain->qnext;
    chain->qnext = nullptr;
    chain->qprev = nullptr;
    sched_.unblock(chain);
    chain = next;
  }
}

std::vector<Bitmap> Runtime::gather_all_bitmaps() {
  PM2_DEBUG << "gathering bitmaps";
  // Sequential per-peer gather: the paper's measured cost grows linearly,
  // ~165 us per extra node.
  std::vector<Bitmap> bitmaps(config_.n_nodes);
  slot_lock_.lock();
  bitmaps[config_.node] = slot_mgr_.bitmap();
  slot_lock_.unlock();
  for (uint32_t node = 0; node < config_.n_nodes; ++node) {
    if (node == config_.node) continue;
    uint64_t corr = next_corr_.fetch_add(1, std::memory_order_relaxed);
    // No deadline: gathers run under the system lock, whose own waiter is
    // failed by the peer-down sweep; the sweep also fails these futures if
    // the gathered peer dies mid-collection.
    marcel::Future<std::vector<uint8_t>> fut = register_pending(corr, node, 0);
    fabric::Message req;
    req.type = kGatherReq;
    req.dst = node;
    req.corr = corr;
    fabric_send(std::move(req));
    fut.wait();
    PM2_CHECK(!fut.failed()) << "negotiation gather aborted: " << fut.error();
    std::vector<uint8_t> resp = fut.take();
    ByteReader r(resp);
    bitmaps[node] =
        Bitmap::from_words(area_.n_slots(), r.get_vector<uint64_t>());
  }
  return bitmaps;
}

void Runtime::scatter_bitmaps(std::vector<Bitmap> bitmaps) {
  // Peers get their update even when nothing changed: the message also
  // releases the freeze their gather reply installed.
  for (uint32_t node = 0; node < config_.n_nodes; ++node) {
    if (node == config_.node) continue;
    fabric::Message upd;
    upd.type = kNegoUpdate;
    upd.dst = node;
    ByteWriter w;
    w.put_vector<uint64_t>(bitmaps[node].words());
    upd.payload = w.take();
    fabric_send(std::move(upd));
  }
  slot_lock_.lock();
  slot_mgr_.set_bitmap(std::move(bitmaps[config_.node]));
  slot_lock_.unlock();
}

std::optional<size_t> Runtime::negotiate(size_t run) {
  PM2_CHECK(marcel::Scheduler::self() != nullptr)
      << "negotiation outside a PM2 thread";
  ++negotiations_initiated_;
  trace_event(trace::Event::kNegotiationStart, run);
  PM2_DEBUG << "negotiating for " << run << " contiguous slots";

  // One critical-section client per node at a time.
  nego_mutex_.lock();
  // Freeze our own bitmap against other local threads for the duration.
  slot_lock_.lock();
  ++bitmap_freeze_;
  slot_lock_.unlock();

  // (a) enter the system-wide critical section.
  lock_system();

  // (b) gather the local bitmaps of all nodes.
  std::vector<Bitmap> bitmaps = gather_all_bitmaps();

  // (c)+(d) global OR, first-fit run, buy the non-local slots.  With
  // pre-buying enabled, first try to win a longer run so the next
  // multi-slot requests stay local (§4.4).
  size_t want = run + config_.nego_prebuy_slots;
  auto plan = iso::plan_negotiation(bitmaps, config_.node, want);
  if (!plan && want != run)
    plan = iso::plan_negotiation(bitmaps, config_.node, run);
  std::optional<size_t> acquired;
  slot_lock_.lock();
  ++slot_mgr_.stats().negotiations;
  if (plan) {
    for (const iso::Purchase& p : plan->purchases)
      slot_mgr_.stats().negotiated_slots += p.count;
  }
  slot_lock_.unlock();
  if (plan) iso::apply_plan(bitmaps, config_.node, *plan);

  // (e) send back the updated bitmaps.
  scatter_bitmaps(std::move(bitmaps));

  // Take the requested run (not the pre-buy surplus) for the calling
  // thread *inside* the critical section, so no later negotiation can
  // resell it between unlock and use.
  if (plan) {
    slot_lock_.lock();
    acquired = slot_mgr_.acquire(run);
    slot_lock_.unlock();
    // The acquire must succeed (the purchased run is in our bitmap and
    // nobody can take it inside the critical section), but first-fit may
    // land *before* plan->first_slot: between the failed local acquire
    // that triggered this negotiation and the bitmap freeze there is an
    // unfrozen window where a concurrent release_slots can open an
    // earlier local gap of sufficient size.  Taking that gap is fine —
    // the purchased run stays locally owned for the next request.
    PM2_CHECK(acquired.has_value())
        << "negotiated run vanished before acquisition";
  }

  // (f) leave the critical section.
  unlock_system();

  slot_lock_.lock();
  --bitmap_freeze_;
  slot_lock_.unlock();
  apply_deferred_releases();
  nego_mutex_.unlock();
  PM2_DEBUG << "negotiation done: acquired="
            << (acquired ? static_cast<long>(*acquired) : -1);
  trace_event(trace::Event::kNegotiationEnd,
              acquired ? *acquired : ~uint64_t{0});
  return acquired;
}

void Runtime::defragment() {
  PM2_CHECK(marcel::Scheduler::self() != nullptr)
      << "defragment outside a PM2 thread";
  if (config_.n_nodes == 1) return;  // a single bitmap is trivially packed
  PM2_DEBUG << "defragment: waiting for local nego mutex";
  nego_mutex_.lock();
  PM2_DEBUG << "defragment: entering critical section";
  slot_lock_.lock();
  ++bitmap_freeze_;
  slot_lock_.unlock();
  lock_system();
  std::vector<Bitmap> bitmaps = gather_all_bitmaps();
  std::vector<Bitmap> packed = iso::plan_defragmentation(bitmaps);
  scatter_bitmaps(std::move(packed));
  unlock_system();
  slot_lock_.lock();
  --bitmap_freeze_;
  slot_lock_.unlock();
  apply_deferred_releases();
  nego_mutex_.unlock();
  PM2_DEBUG << "defragment: done";
}

}  // namespace pm2
