// Distributed wrapper of the slot negotiation (paper §4.4 steps a–f).
//
// The pure search/purchase logic is in isomalloc/negotiation.*; this file
// adds the protocol: the lock server hosted by node 0 (the system-wide
// critical section), the bitmap gather, the update scatter, and the freeze
// discipline that keeps every node's bitmap immutable while a negotiation
// is in flight.
#include "common/check.hpp"
#include "common/log.hpp"
#include "isomalloc/negotiation.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {

void Runtime::lock_system() {
  PM2_CHECK(marcel::Scheduler::self() != nullptr);
  PM2_CHECK(lock_wait_ == nullptr)
      << "two concurrent negotiations on one node";
  marcel::Event ev;
  if (config_.node == 0) {
    if (!lock_held_) {
      lock_held_ = true;
      lock_owner_ = 0;
      return;
    }
    lock_wait_ = &ev;
    lock_queue_.push_back(0);
  } else {
    lock_wait_ = &ev;
    fabric::Message msg;
    msg.type = kLockReq;
    msg.dst = 0;
    fabric_->send(std::move(msg));
  }
  ev.wait();
  lock_wait_ = nullptr;
  PM2_DEBUG << "system lock granted";
}

void Runtime::unlock_system() {
  PM2_DEBUG << "releasing system lock";
  if (config_.node == 0) {
    handle_unlock(0);
    return;
  }
  fabric::Message msg;
  msg.type = kUnlock;
  msg.dst = 0;
  fabric_->send(std::move(msg));
}

void Runtime::handle_lock_req(uint32_t from) {
  PM2_CHECK(config_.node == 0) << "lock request at non-server node";
  if (!lock_held_) {
    lock_held_ = true;
    lock_owner_ = from;
    fabric::Message grant;
    grant.type = kLockGrant;
    grant.dst = from;
    fabric_->send(std::move(grant));
    return;
  }
  lock_queue_.push_back(from);
}

void Runtime::handle_unlock(uint32_t from) {
  PM2_CHECK(config_.node == 0) << "unlock at non-server node";
  PM2_CHECK(lock_held_ && lock_owner_ == from)
      << "unlock by non-owner " << from;
  if (lock_queue_.empty()) {
    lock_held_ = false;
    return;
  }
  uint32_t next = lock_queue_.front();
  lock_queue_.erase(lock_queue_.begin());
  lock_owner_ = next;
  if (next == 0) {
    PM2_CHECK(lock_wait_ != nullptr);
    lock_wait_->set();
  } else {
    fabric::Message grant;
    grant.type = kLockGrant;
    grant.dst = next;
    fabric_->send(std::move(grant));
  }
}

void Runtime::handle_gather_req(fabric::Message& msg) {
  PM2_DEBUG << "gather req from " << msg.src << " freeze=" << bitmap_freeze_;
  // Step (a) seen from a peer: our bitmap becomes read-only until the
  // initiator's kNegoUpdate arrives.  Threads that try to acquire slots
  // meanwhile park; releases are deferred.
  ++bitmap_freeze_;
  fabric::Message resp;
  resp.type = kGatherResp;
  resp.dst = msg.src;
  resp.corr = msg.corr;
  ByteWriter w;
  w.put_vector<uint64_t>(slot_mgr_.bitmap().words());
  resp.payload = w.take();
  fabric_->send(std::move(resp));
}

void Runtime::handle_nego_update(fabric::Message& msg) {
  PM2_DEBUG << "nego update from " << msg.src << " freeze=" << bitmap_freeze_;
  ByteReader r(msg.flat());
  auto words = r.get_vector<uint64_t>();
  slot_mgr_.set_bitmap(Bitmap::from_words(area_.n_slots(), std::move(words)));
  PM2_CHECK(bitmap_freeze_ > 0) << "negotiation update without gather";
  --bitmap_freeze_;
  apply_deferred_releases();
}

void Runtime::apply_deferred_releases() {
  if (bitmap_freeze_ > 0) return;
  for (auto [first, count] : deferred_releases_)
    slot_mgr_.release(first, count);
  deferred_releases_.clear();
  bitmap_wait_.unpark_all();
}

std::vector<Bitmap> Runtime::gather_all_bitmaps() {
  PM2_DEBUG << "gathering bitmaps";
  // Sequential per-peer gather: the paper's measured cost grows linearly,
  // ~165 us per extra node.
  std::vector<Bitmap> bitmaps(config_.n_nodes);
  bitmaps[config_.node] = slot_mgr_.bitmap();
  for (uint32_t node = 0; node < config_.n_nodes; ++node) {
    if (node == config_.node) continue;
    uint64_t corr = next_corr_++;
    marcel::Future<std::vector<uint8_t>> fut = register_pending(corr);
    fabric::Message req;
    req.type = kGatherReq;
    req.dst = node;
    req.corr = corr;
    fabric_->send(std::move(req));
    fut.wait();
    PM2_CHECK(!fut.failed()) << "negotiation gather aborted: " << fut.error();
    std::vector<uint8_t> resp = fut.take();
    ByteReader r(resp);
    bitmaps[node] =
        Bitmap::from_words(area_.n_slots(), r.get_vector<uint64_t>());
  }
  return bitmaps;
}

void Runtime::scatter_bitmaps(std::vector<Bitmap> bitmaps) {
  // Peers get their update even when nothing changed: the message also
  // releases the freeze their gather reply installed.
  for (uint32_t node = 0; node < config_.n_nodes; ++node) {
    if (node == config_.node) continue;
    fabric::Message upd;
    upd.type = kNegoUpdate;
    upd.dst = node;
    ByteWriter w;
    w.put_vector<uint64_t>(bitmaps[node].words());
    upd.payload = w.take();
    fabric_->send(std::move(upd));
  }
  slot_mgr_.set_bitmap(std::move(bitmaps[config_.node]));
}

std::optional<size_t> Runtime::negotiate(size_t run) {
  PM2_CHECK(marcel::Scheduler::self() != nullptr)
      << "negotiation outside a PM2 thread";
  ++negotiations_initiated_;
  trace_event(trace::Event::kNegotiationStart, run);
  PM2_DEBUG << "negotiating for " << run << " contiguous slots";

  // One critical-section client per node at a time.
  nego_mutex_.lock();
  // Freeze our own bitmap against other local threads for the duration.
  ++bitmap_freeze_;

  // (a) enter the system-wide critical section.
  lock_system();

  // (b) gather the local bitmaps of all nodes.
  std::vector<Bitmap> bitmaps = gather_all_bitmaps();

  // (c)+(d) global OR, first-fit run, buy the non-local slots.  With
  // pre-buying enabled, first try to win a longer run so the next
  // multi-slot requests stay local (§4.4).
  size_t want = run + config_.nego_prebuy_slots;
  auto plan = iso::plan_negotiation(bitmaps, config_.node, want);
  if (!plan && want != run)
    plan = iso::plan_negotiation(bitmaps, config_.node, run);
  std::optional<size_t> acquired;
  ++slot_mgr_.stats().negotiations;
  if (plan) {
    iso::apply_plan(bitmaps, config_.node, *plan);
    for (const iso::Purchase& p : plan->purchases)
      slot_mgr_.stats().negotiated_slots += p.count;
  }

  // (e) send back the updated bitmaps.
  scatter_bitmaps(std::move(bitmaps));

  // Take the requested run (not the pre-buy surplus) for the calling
  // thread *inside* the critical section, so no later negotiation can
  // resell it between unlock and use.
  if (plan) {
    acquired = slot_mgr_.acquire(run);
    PM2_CHECK(acquired.has_value() && *acquired == plan->first_slot)
        << "negotiated run vanished before acquisition";
  }

  // (f) leave the critical section.
  unlock_system();

  --bitmap_freeze_;
  apply_deferred_releases();
  nego_mutex_.unlock();
  PM2_DEBUG << "negotiation done: acquired="
            << (acquired ? static_cast<long>(*acquired) : -1);
  trace_event(trace::Event::kNegotiationEnd,
              acquired ? *acquired : ~uint64_t{0});
  return acquired;
}

void Runtime::defragment() {
  PM2_CHECK(marcel::Scheduler::self() != nullptr)
      << "defragment outside a PM2 thread";
  if (config_.n_nodes == 1) return;  // a single bitmap is trivially packed
  PM2_DEBUG << "defragment: waiting for local nego mutex";
  nego_mutex_.lock();
  PM2_DEBUG << "defragment: entering critical section";
  ++bitmap_freeze_;
  lock_system();
  std::vector<Bitmap> bitmaps = gather_all_bitmaps();
  std::vector<Bitmap> packed = iso::plan_defragmentation(bitmaps);
  scatter_bitmaps(std::move(packed));
  unlock_system();
  --bitmap_freeze_;
  apply_deferred_releases();
  nego_mutex_.unlock();
  PM2_DEBUG << "defragment: done";
}

}  // namespace pm2
