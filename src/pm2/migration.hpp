// Iso-address thread migration (paper §2 steps 1–3, §3.1).
//
// A frozen thread is entirely described by its slot list: the first (stack)
// slot holds the descriptor and the execution stack with the saved register
// frame; further slots hold its pm2_isomalloc heap.  Migration is:
//
//   pack    — describe every slot run (whole image, or just the live
//             extents: slot/block headers, busy payloads, descriptor and
//             live stack — the paper's §6 optimization) as a BufferChain
//             whose extent segments *borrow* the slot memory in place;
//   release — forget the thread locally;
//   send    — one kMigrate message; the fabric gathers the borrowed
//             extents straight from slot memory to the wire (writev on the
//             socket fabric: zero intermediate flatten copies);
//   decommit— only after send() returns are the slots decommitted (they
//             remain *thread-owned*: no bitmap changes anywhere, §4.2);
//   install — commit the same slot indices (guaranteed free: iso-address
//             discipline), scatter the extents straight into them, adopt.
//
// No pointer fix-ups of any kind happen anywhere in this file: that absence
// is the paper's contribution.
#pragma once

#include <cstdint>
#include <vector>

#include "madeleine/buffers.hpp"
#include "marcel/thread.hpp"

namespace pm2 {

namespace iso {
struct SlotHeader;
}

class Runtime;

/// Serialize a frozen thread into a migration chain: staged metadata plus
/// extent segments borrowing the thread's slot memory in place.  The chain
/// must be consumed (sent / flattened) while the slots are still committed.
mad::BufferChain pack_thread_chain(Runtime& rt, marcel::Thread* t,
                                   bool blocks_only);

/// Legacy flat form of pack_thread_chain (checkpointing, tests).
std::vector<uint8_t> pack_thread(Runtime& rt, marcel::Thread* t,
                                 bool blocks_only);

/// Pack + forget + send to `dest` + decommit.  `t` must be frozen (or be
/// the post-switch continuation target of freeze_current_and).  The node's
/// pre-migration hook (Runtime::on_migration) runs first.  `ack_corr != 0`
/// asks the destination for a kMigrateAck carrying that correlation once
/// the thread is installed (migrate_async).
void ship_thread(Runtime& rt, marcel::Thread* t, uint32_t dest,
                 uint64_t ack_corr = 0);

/// Commit + scatter + adopt a thread from a migration payload.  Returns
/// the (iso-address) descriptor.
marcel::Thread* install_thread(Runtime& rt, const uint8_t* payload,
                               size_t len);
marcel::Thread* install_thread(Runtime& rt, const std::vector<uint8_t>& payload);

/// Payload size a migration of `t` would ship (for the A4 ablation bench).
/// Costs only the pack walk — nothing is flattened or copied.
size_t migration_payload_size(Runtime& rt, marcel::Thread* t, bool blocks_only);

/// Live extents (offset, len from the run's first byte) of one slot run of a
/// frozen thread: slot/block headers, busy payloads, descriptor and live
/// stack — the same walk pack_thread_chain uses with blocks_only.  Exposed
/// for the incremental checkpoint's fallback writer (no soft-dirty support).
std::vector<std::pair<uint64_t, uint64_t>> run_live_extents(
    Runtime& rt, marcel::Thread* t, iso::SlotHeader* slot);

/// Slot runs (first, nslots) recorded in a migration payload, without
/// installing it (checkpoint restore claims them before committing).
std::vector<std::pair<size_t, uint32_t>> payload_slot_runs(
    const uint8_t* payload, size_t len);
std::vector<std::pair<size_t, uint32_t>> payload_slot_runs(
    const std::vector<uint8_t>& payload);

}  // namespace pm2
