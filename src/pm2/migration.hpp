// Iso-address thread migration (paper §2 steps 1–3, §3.1).
//
// A frozen thread is entirely described by its slot list: the first (stack)
// slot holds the descriptor and the execution stack with the saved register
// frame; further slots hold its pm2_isomalloc heap.  Migration is:
//
//   pack    — serialize every slot run (whole image, or just the live
//             extents: slot/block headers, busy payloads, descriptor and
//             live stack — the paper's §6 optimization);
//   release — forget the thread locally and decommit its slots (the slots
//             remain *thread-owned*: no bitmap changes anywhere, §4.2);
//   send    — one kMigrate message;
//   install — commit the same slot indices (guaranteed free: iso-address
//             discipline), copy the extents back, adopt the thread.
//
// No pointer fix-ups of any kind happen anywhere in this file: that absence
// is the paper's contribution.
#pragma once

#include <cstdint>
#include <vector>

#include "marcel/thread.hpp"

namespace pm2 {

class Runtime;

/// Serialize a frozen thread into a migration payload (pack step only; the
/// thread keeps living locally).  Exposed separately for tests and benches.
std::vector<uint8_t> pack_thread(Runtime& rt, marcel::Thread* t,
                                 bool blocks_only);

/// Pack + forget + decommit + send to `dest`.  `t` must be frozen (or be
/// the post-switch continuation target of freeze_current_and).
void ship_thread(Runtime& rt, marcel::Thread* t, uint32_t dest);

/// Commit + copy + adopt a thread from a migration payload.  Returns the
/// (iso-address) descriptor.
marcel::Thread* install_thread(Runtime& rt, const std::vector<uint8_t>& payload);

/// Payload size a migration of `t` would ship (for the A4 ablation bench).
size_t migration_payload_size(Runtime& rt, marcel::Thread* t, bool blocks_only);

/// Slot runs (first, nslots) recorded in a migration payload, without
/// installing it (checkpoint restore claims them before committing).
std::vector<std::pair<size_t, uint32_t>> payload_slot_runs(
    const std::vector<uint8_t>& payload);

}  // namespace pm2
