// Dynamic load balancing by preemptive thread migration (paper §1–2).
//
// "A generic module implemented outside the running application could
// balance the load by migrating the application threads.  The threads are
// unaware of their being migrated."  This is that module: a per-node daemon
// that gossips load figures (kLoadInfo) and preemptively migrates READY
// threads from overloaded to underloaded nodes.
#pragma once

#include <cstdint>

namespace pm2 {

class Runtime;

struct LoadBalancerConfig {
  /// Gossip/decision period.
  uint64_t period_us = 2000;
  /// Migrate only if our load exceeds the victim's by more than this.
  uint64_t imbalance_threshold = 2;
  /// Cap on threads shipped per decision round.
  uint32_t max_migrations_per_round = 1;
};

class LoadBalancer {
 public:
  /// Start the balancer daemon on this node (call on every node, SPMD).
  /// The daemon stops itself at halt.
  static void start(Runtime& rt, const LoadBalancerConfig& config = {});

  /// Total threads this node's balancer pushed away (diagnostics).
  static uint64_t migrations_triggered(Runtime& rt);
};

}  // namespace pm2
