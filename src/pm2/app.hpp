// SPMD application harness — the "pm2load" equivalent.
//
// run_app() executes `node_main` as the main PM2 thread of every node of
// the session, either as logical nodes inside this process (one kernel
// thread each, in-process fabric — the default for tests and benches) or as
// real processes talking over UNIX-domain sockets (set
// AppConfig::multiprocess, or run any example with --spawn).
//
// Multi-process bootstrap: the parent re-executes its own binary once per
// node with PM2_MP_* environment variables; when run_app() detects them it
// plays the designated node and exits the process when the node drains.
// That makes any main() using run_app() multi-process capable for free.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "isomalloc/area.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {

struct AppConfig {
  uint32_t nodes = 2;
  bool multiprocess = false;
  /// In-process logical nodes talking over the *socket* fabric (real UNIX
  /// domain sockets) instead of the in-process hub: the full wire path —
  /// writev gather, frame parsing, scatter reads — inside one observable
  /// process.  Tests use it to assert the zero-copy send path end to end.
  bool socket_fabric = false;
  bool use_tcp = false;          // multiprocess only: TCP instead of UDS
  uint16_t base_port = 0;        // 0 = derive from pid
  /// Socket-fabric crash-restart mode (SocketFabricConfig::allow_reconnect):
  /// a node process may die and be respawned mid-session; peers hold sends
  /// to it until it reconnects.  Forwarded to spawned children via
  /// PM2_MP_RECONNECT.
  bool fabric_reconnect = false;
  iso::AreaConfig area;
  RuntimeConfig rt;              // node/n_nodes overwritten per node
  /// argv[1..] to forward to spawned node processes so their main() takes
  /// the same path back into run_app (required when multiprocess).
  std::vector<std::string> child_args;
  /// Artificial per-message latency for the in-process fabric (benches).
  uint64_t inproc_latency_ns = 0;
};

/// Convenience: capture argv for child re-execution.
void capture_argv_for_children(AppConfig& config, int argc, char** argv);

/// True when this process is a spawned node child (PM2_MP_NODE set).
bool is_spawned_child();

/// Run the session.  `setup` (optional) runs on each node after runtime
/// construction and before the scheduler starts — register RPC services
/// there.  `node_main` is the main-thread body; when it returns the node
/// enters a session barrier and node 0 halts the session.
/// Returns the worst child exit status (multiprocess) or 0.
int run_app(const AppConfig& config,
            const std::function<void(Runtime&)>& node_main,
            const std::function<void(Runtime&)>& setup = {});

}  // namespace pm2
