// The PM2 node runtime: one instance per node (container process, or
// logical in-process node).  Composes the substrates:
//
//   marcel     — user-level threads on this node's kernel thread
//   isomalloc  — slot manager over the shared iso-address area
//   fabric     — messaging to the other nodes
//
// and implements the distributed pieces of the paper: remote thread
// creation (LRPC), iso-address thread migration, the global slot
// negotiation, barriers and shutdown.
//
// Threading model: a node's PM2 threads run on RuntimeConfig::workers
// scheduler kernel threads (1 = the original single-kernel-thread node).
// The comm daemon is a PM2 daemon thread pinned to worker 0; it owns the
// fabric's receive side and dispatches control messages inline.  Runtime
// state that multiple workers touch on the hot path (services, pending
// correlations, slot bitmap, invocation pool) is guarded by short
// sys::SpinLocks; sends from non-daemon workers go through fabric_send(),
// which is direct when the transport allows concurrent sends and otherwise
// defers to the daemon via an outbox.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <functional>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "fabric/message.hpp"
#include "isomalloc/area.hpp"
#include "isomalloc/heap.hpp"
#include "isomalloc/slot_manager.hpp"
#include "isomalloc/slot_store.hpp"
#include "madeleine/buffers.hpp"
#include "madeleine/channel.hpp"
#include "madeleine/typed.hpp"
#include "marcel/scheduler.hpp"
#include "marcel/sync.hpp"
#include "pm2/protocol.hpp"
#include "sys/spinlock.hpp"
#include "sys/striped_map.hpp"
#include "sys/thread_safety.hpp"
#include "trace/trace.hpp"

namespace pm2 {

namespace fabric {
class FaultFabric;
}

class Runtime;
struct AuditReport;
AuditReport audit_session(Runtime& rt);

/// Thrown by the blocking request paths (call / typed call<R> /
/// RpcFuture::take) when the request cannot complete: the session halted
/// while the reply was pending, or the destination had no such service.
/// Asynchronous callers observe the same conditions non-throwing via
/// Future::failed()/error().
struct RpcError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Coarse classification of an RPC/migration failure.  marcel futures carry
/// string errors, so the classified failures use stable message prefixes
/// (below) and this helper recovers the category.
///   kTimeout  — the request's deadline elapsed with no reply.
///   kPeerDown — the failure detector declared the destination dead.
///   kOther    — everything else (unknown service, session halting, the
///               remote handler threw).
enum class RpcErrorCode { kOther, kTimeout, kPeerDown };

inline constexpr const char* kRpcTimeoutPrefix = "rpc timeout";
inline constexpr const char* kRpcPeerDownPrefix = "peer down";

inline RpcErrorCode rpc_error_code(const std::string& why) {
  if (why.rfind(kRpcTimeoutPrefix, 0) == 0) return RpcErrorCode::kTimeout;
  if (why.rfind(kRpcPeerDownPrefix, 0) == 0) return RpcErrorCode::kPeerDown;
  return RpcErrorCode::kOther;
}

/// Completion value of migrate_async: the ack sent by the installing node
/// once the thread is adopted there.
struct MigrateResult {
  marcel::ThreadId thread = 0;
  uint32_t dest = 0;
};

/// Per-node migration observer (pm2_set_pre/post_migration_func).  The pre
/// hook runs on the source node right before the thread is packed; the
/// post hook runs on the destination right after it is adopted.  Both run
/// on the node's service context (scheduler stack or comm daemon), never
/// on the migrating thread itself.
using MigrationHook = std::function<void(marcel::Thread*)>;

/// Context handed to an RPC service running in its own fresh thread.
class RpcContext {
 public:
  /// `args_offset` skips transport framing at the front of `args` (the
  /// service id of a remote invocation), letting the whole received
  /// payload move in without a trim copy.
  RpcContext(Runtime& rt, uint32_t src, uint64_t corr,
             std::vector<uint8_t> args, size_t args_offset = 0)
      : rt_(rt), src_(src), corr_(corr), args_(std::move(args)),
        unpacker_(args_.data() + args_offset, args_.size() - args_offset) {}

  uint32_t source_node() const { return src_; }
  mad::UnpackBuffer& args() { return unpacker_; }
  /// True when the caller used call()/call_async() and waits for reply().
  bool reply_expected() const { return corr_ != 0; }
  /// Send the reply (allowed once; only if the caller used call()).
  void reply(mad::PackBuffer&& result);
  /// Fail the caller's future with `why` instead of replying (no-op if no
  /// reply is expected or one was already sent).  The RPC trampoline calls
  /// this when a service handler throws, so errors propagate up recursive
  /// call chains instead of terminating the node or hanging the caller.
  /// Routes through Runtime::current(), so it is safe even after the
  /// service migrated.
  void fail(const std::string& why);

 private:
  Runtime& rt_;
  uint32_t src_;
  uint64_t corr_;
  std::vector<uint8_t> args_;
  mad::UnpackBuffer unpacker_;
  bool replied_ = false;
};

using ServiceHandler = std::function<void(RpcContext&)>;

/// Typed view over a raw reply future: take() unpacks the service's return
/// value (throwing RpcError if the call failed).  Same then-free surface
/// as marcel::Future, so wait_all/wait_any work on either.
template <typename R>
class RpcFuture {
 public:
  RpcFuture() = default;
  explicit RpcFuture(marcel::Future<std::vector<uint8_t>> raw)
      : raw_(std::move(raw)) {}

  bool valid() const { return raw_.valid(); }
  bool ready() const { return raw_.ready(); }
  void wait() { raw_.wait(); }
  bool failed() const { return raw_.failed(); }
  const std::string& error() const { return raw_.error(); }

  R take() {
    wait();
    if (raw_.failed()) throw RpcError(raw_.error());
    std::vector<uint8_t> bytes = raw_.take();
    if constexpr (!std::is_void_v<R>) {
      mad::UnpackBuffer u(bytes.data(), bytes.size());
      return mad::unpack_value<R>(u);
    }
  }

 private:
  marcel::Future<std::vector<uint8_t>> raw_;
};

namespace detail {

/// Deduce a typed service handler's signature `R(RpcContext&, Args...)`
/// and bridge it to the untyped ServiceHandler: unpack the arguments left
/// to right, invoke, and auto-reply the packed result when the caller
/// expects one.  A void service auto-acks with an empty reply, so
/// call<void> has completion-barrier semantics; fire-and-forget
/// invocations send nothing.  (Only untyped service_raw handlers control
/// reply() manually.)
template <typename R, typename... Args>
struct RpcInvoker {
  template <typename F>
  static void run(F& fn, RpcContext& ctx) {
    // Braced init: unpack order is the parameter order.
    std::tuple<std::decay_t<Args>...> args{
        mad::unpack_value<std::decay_t<Args>>(ctx.args())...};
    if constexpr (std::is_void_v<R>) {
      std::apply([&](auto&... a) { fn(ctx, a...); }, args);
      if (ctx.reply_expected()) ctx.reply(mad::PackBuffer());
    } else {
      R result = std::apply([&](auto&... a) { return fn(ctx, a...); }, args);
      if (ctx.reply_expected()) {
        mad::PackBuffer out;
        mad::pack_value(out, result);
        ctx.reply(std::move(out));
      }
    }
  }
};

template <typename T>
struct RpcHandlerTraits : RpcHandlerTraits<decltype(&T::operator())> {};
template <typename R, typename... Args>
struct RpcHandlerTraits<R (*)(RpcContext&, Args...)> : RpcInvoker<R, Args...> {};
template <typename C, typename R, typename... Args>
struct RpcHandlerTraits<R (C::*)(RpcContext&, Args...)>
    : RpcInvoker<R, Args...> {};
template <typename C, typename R, typename... Args>
struct RpcHandlerTraits<R (C::*)(RpcContext&, Args...) const>
    : RpcInvoker<R, Args...> {};

}  // namespace detail

struct RuntimeConfig {
  uint32_t node = 0;
  uint32_t n_nodes = 1;
  iso::SlotManagerConfig slots;  // node/n_nodes are overwritten
  iso::HeapConfig heap;
  /// Contiguous slots per thread stack (1 = the paper's design point:
  /// "the slot size was chosen so as to fit a thread stack").
  size_t stack_slots = 1;
  /// Deferred-preemption quantum for the scheduler (0 = cooperative only).
  uint64_t preemption_quantum_us = 0;
  /// Migration payload: ship only slot headers + live blocks/stack instead
  /// of whole slots (paper §6 optimization).  Ablation A4 toggles this.
  bool migrate_blocks_only = true;
  /// Adaptive busy-poll window: when the node goes idle *while a reply or
  /// migration ack is outstanding*, the comm daemon polls the fabric for
  /// this long (yielding the core between probes) before parking on the
  /// fabric's readiness handle.  The paper's BIP/Myrinet layer was
  /// polling-mode — a poll catches the reply without paying the blocking
  /// wake-up — but a node with nothing in flight always blocks, so idle
  /// nodes burn no CPU.  0 disables the window (always block when idle).
  uint64_t comm_busy_poll_us = 200;
  /// Migration slot cache (the paper's §6 mmapped-slot cache applied to the
  /// migration path): slots of shipped threads stay committed, and a thread
  /// migrating back into cached slots skips the commit + page-fault cycle.
  /// Value = max cached slot runs per node; 0 disables.
  size_t migration_slot_cache = 64;
  /// Pre-buy (paper §4.4: "possible for the local node to take advantage
  /// of a negotiation phase to pre-buy slots in prevision of foreseeable
  /// large allocation requests"): each negotiation first tries to win this
  /// many extra contiguous slots beyond the request, so the next multi-slot
  /// allocations are satisfied locally.  0 disables.
  size_t nego_prebuy_slots = 0;
  /// Invocation pool: exited service threads park (descriptor +
  /// initialized stack + owned slot run, heap chain trimmed) instead of
  /// releasing, and the next service dispatch re-arms a parked thread —
  /// the RPC hot path becomes a context reset + ready push, no slot
  /// acquire / init_stack_slot / descriptor build.  Value = max parked
  /// threads per node; 0 disables (every invocation builds a thread).
  /// Sized to absorb a deep pipelining window (bench_rpc sweeps to 64
  /// outstanding) — idle decay returns the slots afterwards.
  size_t invocation_pool = 64;
  /// Parked service threads idle longer than this are evicted by the comm
  /// daemon (their slot run returns to the node's distribution), so a
  /// burst does not pin stack slots forever.  0 = decay only at halt.
  uint64_t invocation_pool_decay_us = 200'000;
  /// Scheduler worker kernel threads per node.  0 = auto: the PM2_WORKERS
  /// environment variable if set, else 1 (the historical single-loop
  /// scheduler).  Clamped to [1, hardware_concurrency].
  uint32_t workers = 0;
  /// Slot store (iso::SlotStore): directory holding this node's backing
  /// file ("" disables the store entirely — no demotion, no
  /// checkpoint_node_to_store, no crash restart).
  std::string slot_store_dir;
  /// Resident-byte budget for *cold* threads (frozen + parked): when their
  /// committed slot bytes exceed this, the comm daemon's idle decay
  /// demotes the coldest ones to the backing file until back under budget.
  /// SIZE_MAX (default) never demotes by decay — explicit demote_thread()
  /// and the checkpoint/restart paths still work.
  size_t slot_store_budget = SIZE_MAX;
  /// Only cold threads idle at least this long are demotion candidates
  /// (mirrors invocation_pool_decay_us for the pool itself).
  uint64_t slot_store_decay_us = 500'000;
  /// Re-open an existing store file and validate its header instead of
  /// truncating it — the crash-restart path (restore_node_from_store then
  /// adopts the recorded threads).
  bool slot_store_recover = false;
  /// Default request deadline: call_async / call<R> / migrate_async fail
  /// with a kTimeout error when no reply arrived within this window (the
  /// correlation is tombstoned, so a late reply is dropped instead of
  /// double-resolving).  0 (default) keeps the legacy unbounded behavior
  /// bit-for-bit; the PM2_RPC_TIMEOUT_MS environment variable overrides a
  /// zero value, so chaos runs can arm deadlines in spawned node processes
  /// without code changes.  Per-call deadlines override both.
  uint64_t rpc_timeout_ns = 0;
  /// Deterministic fault injection: when non-empty, the runtime wraps its
  /// fabric in a fabric::FaultFabric driven by this plan spec (grammar in
  /// fabric/fault_fabric.hpp).  Empty (default) consults the
  /// PM2_FAULT_PLAN environment variable instead — again so multiprocess
  /// tests inject into spawned nodes.  An inactive plan leaves the fabric
  /// untouched (zero overhead).
  std::string fault_plan;
  /// Heartbeat-based failure detection: the comm daemon sends a
  /// best-effort kHeartbeat to every peer each period, and declares a peer
  /// down after heartbeat_miss_limit periods without *any* frame from it
  /// (every received frame counts as liveness).  A down peer's pending
  /// calls and migration acks fail immediately with kPeerDown, new
  /// requests to it fail fast, the load balancer steers away from it, and
  /// barriers error out instead of hanging.  Any subsequent frame from the
  /// peer (e.g. after a crash-restart reconnect) marks it up again.
  /// 0 (default) disables detection entirely — the legacy behavior.
  uint64_t heartbeat_period_ns = 0;
  /// Consecutive missed heartbeat periods before a peer is declared down;
  /// the first miss already marks it suspect (observable, no action).
  uint32_t heartbeat_miss_limit = 5;

  /// The worker count run() will actually use (auto/env/clamp applied).
  uint32_t resolved_workers() const;
  /// rpc_timeout_ns with the PM2_RPC_TIMEOUT_MS override applied.
  uint64_t resolved_rpc_timeout_ns() const;
};

class Runtime {
 public:
  /// `area` must be the same reservation in every node of the session (the
  /// same object for in-process nodes; same AreaConfig across processes).
  Runtime(const RuntimeConfig& config, iso::Area& area,
          std::unique_ptr<fabric::Fabric> fabric);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Runtime of the calling kernel thread (valid inside run()).
  static Runtime* current();

  /// Number of live Runtime instances in this process.  In-process
  /// multi-node sessions share one address space, so process-global kernel
  /// facilities (clear_refs soft-dirty reset) are only safe when this is 1.
  static uint32_t live_in_process();

  uint32_t self() const { return config_.node; }
  uint32_t n_nodes() const { return config_.n_nodes; }

  marcel::Scheduler& sched() { return sched_; }
  iso::SlotManager& slots() { return slot_mgr_; }
  /// Negotiation-aware slot provisioning (what thread heaps should use).
  iso::SlotOps& slot_ops() { return slot_ops_; }
  iso::Area& area() { return area_; }
  fabric::Fabric& fabric() { return *fabric_; }
  /// The fault-injection decorator wrapping the transport, or nullptr when
  /// no fault plan is active (tests read its FaultStats through this).
  fabric::FaultFabric* fault_fabric();
  const RuntimeConfig& config() const { return config_; }

  /// Sentinel for per-request timeout parameters: "use the configured
  /// default" (RuntimeConfig::rpc_timeout_ns / PM2_RPC_TIMEOUT_MS).  An
  /// explicit 0 means "wait forever" regardless of the configured default.
  static constexpr uint64_t kTimeoutFromConfig = UINT64_MAX;

  // --- main loop -----------------------------------------------------------

  /// Start the comm daemon, run `node_main` as the first PM2 thread, then
  /// schedule until halt.  SPMD: every node calls run() with its own main.
  void run(std::function<void()> node_main);

  /// Broadcast shutdown; every node's run() returns once drained.
  void halt();
  /// True once halt was initiated or received (daemons poll this).
  bool halting() const { return halting_.load(std::memory_order_relaxed); }

  /// Send on the node's fabric from any scheduler worker.  Direct when the
  /// transport allows concurrent sends (in-process hub) or the caller runs
  /// on the comm daemon's worker; otherwise the message is flattened (chain
  /// sealed), queued on the outbox and the daemon is woken to put it on the
  /// wire — the socket fabric's send() drains receive state and must stay
  /// on one kernel thread.
  void fabric_send(fabric::Message msg);

  // --- threads -------------------------------------------------------------

  /// Create a migratable PM2 thread.  `fn` must be a plain function (code
  /// is SPMD-replicated so the pointer is valid on every node); `arg` must
  /// be either a value smuggled in the pointer or a pointer into
  /// iso-address memory — never into the libc heap, which is node-local.
  marcel::ThreadId spawn(marcel::EntryFn fn, void* arg,
                         const char* name = "thread");

  /// Convenience thread for node-local work (closures may capture
  /// anything).  Pinned: refuses to migrate.
  marcel::ThreadId spawn_local(std::function<void()> fn,
                               const char* name = "local");

  /// spawn() with argument hand-off: copies [data, data+len) into the NEW
  /// thread's own iso-heap and passes that pointer as arg.  This is the
  /// migration-safe way to give a child thread its inputs — blocks always
  /// belong to exactly one thread and move with it, so passing a pointer
  /// into the *parent's* heap would dangle as soon as either thread
  /// migrates (and the child must never isofree the parent's block).  The
  /// child owns the copy and should pm2_isofree it when done.
  marcel::ThreadId spawn_copy(marcel::EntryFn fn, const void* data,
                              size_t len, const char* name = "thread");

  /// Block until thread `id` (living on this node) exits.
  bool join(marcel::ThreadId id);

  /// Terminate the calling thread, releasing all its slots here.
  [[noreturn]] void thread_exit();

  // --- iso-address allocation (pm2_isomalloc / pm2_isofree) ----------------

  /// Allocate migratable memory for the calling thread.  Runs the global
  /// negotiation transparently when the local node lacks contiguous slots.
  /// Throws std::bad_alloc if the whole system is out of contiguous slots.
  void* isomalloc(size_t size);
  void isofree(void* p);
  void* isorealloc(void* p, size_t size);
  /// Extensions with malloc-family semantics.
  void* isocalloc(size_t n, size_t elem_size);
  void* isomemalign(size_t align, size_t size);

  // --- migration -----------------------------------------------------------

  /// Migrate the calling thread to `dest`; returns executing on `dest`.
  void migrate_self(uint32_t dest);

  /// Preemptively migrate thread `id` (must be READY on this node and not
  /// pinned).  "The threads are unaware of their being migrated" (§2).
  bool migrate(marcel::ThreadId id, uint32_t dest);

  /// Preemptive migration with a completion future: the destination node
  /// sends a kMigrateAck once the thread is installed there, completing
  /// the future *after* the destination's migrations_in() already counts
  /// the arrival.  Fails the future (never CHECKs) when the thread is
  /// unknown, pinned, running, blocked, or the session is halting.
  ///
  /// `timeout_ns` bounds the wait for the install ack (default: the
  /// configured rpc_timeout_ns; 0 = unbounded).  On expiry — or when the
  /// destination is declared down first — the migration *rolls back*: the
  /// shipped thread is adopted back onto this node's scheduler (its slots
  /// never left local commitment thanks to the migration slot cache) and
  /// the future fails with kTimeout / kPeerDown.  Rollback assumes the
  /// timeout means the payload was lost (dead or partitioned peer): a
  /// payload merely *delayed* past the deadline would install a second
  /// copy at the destination.  Deadline-armed migrations therefore require
  /// migration_slot_cache large enough to span the timeout window.
  marcel::Future<MigrateResult> migrate_async(
      marcel::ThreadId id, uint32_t dest,
      uint64_t timeout_ns = kTimeoutFromConfig);

  /// Install per-node migration observers (PM2's
  /// pm2_set_pre/post_migration_func).  Either hook may be null.
  void on_migration(MigrationHook pre, MigrationHook post) {
    pre_migration_ = std::move(pre);
    post_migration_ = std::move(post);
  }
  const MigrationHook& pre_migration_hook() const { return pre_migration_; }
  const MigrationHook& post_migration_hook() const { return post_migration_; }

  // --- RPC (LRPC: remote thread creation) -----------------------------------
  //
  // Services are keyed by the FNV-1a hash of their *name* (protocol.hpp's
  // service_id); the wire carries the hash, and every entry point below
  // takes the name — the PR-2-deprecated numeric-id overloads are gone.
  // Nodes may register any subset of services in any order.  A name
  // collision between two registered services CHECK-fails at registration;
  // a fire-and-forget rpc() to an unknown remote service is dropped with a
  // warning; a call()/call_async() to an unknown service fails the
  // caller's future with an error instead.

  /// Register an untyped service under `name`: the handler drives
  /// ctx.args()/ctx.reply() manually (no typed unpacking, no auto-reply —
  /// for region-view payloads and protocol tests).  Returns
  /// service_id(name).
  uint32_t service_raw(const char* name, ServiceHandler fn);

  /// Typed service registration: `handler` is any callable
  /// `R(RpcContext&, Args...)`.  Arguments are unpacked left to right with
  /// mad::unpack_value; a non-void R is auto-packed and replied when the
  /// caller expects a reply.  Returns service_id(name).
  ///
  /// Service threads are ordinary migratable threads (the paper's LRPC +
  /// migration composition) — but their invocation state (args buffer,
  /// reply route) is node-local, so migrating one is only sound between
  /// in-process logical nodes.  Multiprocess sessions running a load
  /// balancer must register with service_local() instead.
  template <typename F>
  uint32_t service(const char* name, F&& handler) {
    return service_with_flags(name, std::forward<F>(handler), 0);
  }

  /// service() whose threads are pinned (refuse to migrate), like
  /// spawn_local vs spawn: for handlers touching node-local state, and for
  /// any service of a multiprocess session with preemptive migration on.
  template <typename F>
  uint32_t service_local(const char* name, F&& handler) {
    return service_with_flags(name, std::forward<F>(handler),
                              marcel::Thread::kFlagPinned);
  }

  /// Fire-and-forget by name, pre-packed args: create a thread running the
  /// service on `node`.
  void rpc(uint32_t node, const char* service_name, mad::PackBuffer&& args) {
    rpc_hash(node, service_id(service_name), std::move(args));
  }

  /// Fire-and-forget by name, typed args.  Typed entry points frame the
  /// service hash into the same pack buffer as the arguments (one staged
  /// chunk, no head splice on the hot path).
  template <typename... Args>
  void rpc(uint32_t node, const char* service_name, const Args&... args) {
    uint32_t sid = service_id(service_name);
    mad::PackBuffer pb;
    pb.pack<uint32_t>(sid);
    mad::pack_values(pb, args...);
    rpc_framed(node, sid, std::move(pb));
  }

  /// Blocking request/response by name, pre-packed args: like rpc() but
  /// parks the calling thread until the service calls ctx.reply().
  /// Throws RpcError if the session halts while waiting or the
  /// destination has no such service.
  std::vector<uint8_t> call(uint32_t node, const char* service_name,
                            mad::PackBuffer&& args);

  /// Asynchronous request by name: returns immediately with a completion
  /// future for the raw reply bytes.  Unlimited outstanding requests per
  /// thread — this is the pipelined-RPC primitive.  The future fails
  /// (instead of hanging) on session shutdown, unknown destination
  /// service, deadline expiry (kTimeout) or a destination declared down
  /// (kPeerDown).  `timeout_ns` bounds the wait for the reply (default:
  /// the configured rpc_timeout_ns; explicit 0 = wait forever).
  marcel::Future<std::vector<uint8_t>> call_async(
      uint32_t node, const char* service_name, mad::PackBuffer&& args,
      uint64_t timeout_ns = kTimeoutFromConfig) {
    return call_async_hash(node, service_id(service_name), std::move(args),
                           timeout_ns);
  }

  /// Typed asynchronous call: packs `args` with mad::pack_values, returns
  /// a future whose take() unpacks the service's R.
  template <typename R, typename... Args>
  RpcFuture<R> call_async(uint32_t node, const char* service_name,
                          const Args&... args) {
    return call_async_within<R>(kTimeoutFromConfig, node, service_name,
                                args...);
  }

  /// Typed asynchronous call with an explicit deadline (`timeout_ns` from
  /// now; 0 = wait forever regardless of the configured default).  The
  /// deadline leads the argument list because the trailing pack is
  /// variadic.
  template <typename R, typename... Args>
  RpcFuture<R> call_async_within(uint64_t timeout_ns, uint32_t node,
                                 const char* service_name,
                                 const Args&... args) {
    uint32_t sid = service_id(service_name);
    mad::PackBuffer pb;
    pb.pack<uint32_t>(sid);
    mad::pack_values(pb, args...);
    return RpcFuture<R>(
        call_async_framed(node, sid, std::move(pb), timeout_ns));
  }

  /// Typed blocking call: call<R>(node, "name", args...) -> R.
  template <typename R, typename... Args>
  R call(uint32_t node, const char* service_name, const Args&... args) {
    return call_async<R>(node, service_name, args...).take();
  }

  /// Typed blocking call with an explicit deadline; throws RpcError whose
  /// message rpc_error_code() classifies as kTimeout on expiry.
  template <typename R, typename... Args>
  R call_within(uint64_t timeout_ns, uint32_t node, const char* service_name,
                const Args&... args) {
    return call_async_within<R>(timeout_ns, node, service_name, args...)
        .take();
  }

  /// Madeleine channels multiplexed over this node's fabric (message types
  /// kUserBase and up).  Open channels in the same order on every node
  /// (SPMD), before traffic starts; incoming channel messages are fed by
  /// the comm daemon.
  mad::ChannelMux& channels() { return channels_; }

  // --- collectives & signals -------------------------------------------------

  /// All-node barrier (each node's threads may call it, one at a time).
  /// When failure detection is on, throws RpcError (kPeerDown) instead of
  /// hanging if a peer is — or while waiting becomes — declared down.
  void barrier();

  /// Completion tokens: wait_signals(n) blocks until n kSignal messages
  /// arrived (from any node, including self).
  void send_signal(uint32_t node);
  void wait_signals(uint64_t count);

  // --- slot access with negotiation freeze (internal + tests) ---------------

  /// Acquire slots for a thread, negotiating if needed.  Returns nullopt
  /// only if the whole system lacks a contiguous run.
  std::optional<size_t> acquire_slots_negotiating(size_t count);

  /// Release slots, deferring while a negotiation freezes the bitmap.
  void release_slots(size_t first, size_t count);

  /// Claim a specific run (checkpoint restore), waiting out any bitmap
  /// freeze.  Returns false if any slot of the run is not free here.
  bool acquire_slots_at(size_t first, size_t count);

  /// Global defragmentation (paper §4.1): under the system-wide critical
  /// section, regroup every node's free slots into contiguous stretches
  /// (ownership counts preserved; thread-owned slots do not move).  Any
  /// thread of any node may call it.
  void defragment();

  /// Paper-trace printf: prefixes "[node<i>] " (Fig. 8).
  void printf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  // --- migration slot cache (see RuntimeConfig::migration_slot_cache) -------

  /// Record a shipped thread's slot run as still-committed (instead of
  /// decommitting).  Evicts (and decommits) the oldest run on overflow.
  void mig_cache_put(size_t first, size_t count);
  /// If the exact run is cached, consume the entry and return true (the
  /// caller may skip the commit; stale bytes in extent gaps are dead data
  /// by construction).
  bool mig_cache_take(size_t first, size_t count);
  /// Drop any cached run overlapping [first, first+count) without
  /// decommitting — used when the slots re-enter local ownership.
  void mig_cache_invalidate(size_t first, size_t count);
  size_t mig_cache_size() const {
    sys::SpinGuard g(mig_cache_lock_);
    return mig_cache_.size();
  }

  // --- tracing ----------------------------------------------------------------

  /// Attach an event tracer (not owned; nullptr disables).  Runtime events
  /// (thread lifecycle, migrations, negotiations, RPC, barriers) are
  /// recorded with zero cost when detached.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() { return tracer_; }
  void trace_event(trace::Event e, uint64_t a = 0, uint64_t b = 0) {
    if (tracer_ != nullptr) tracer_->record(e, a, b);
  }

  // --- stats -----------------------------------------------------------------

  HeapStats& heap_stats() { return heap_stats_; }
  uint64_t negotiations_initiated() const {
    return negotiations_initiated_.load(std::memory_order_relaxed);
  }
  uint64_t migrations_in() const {
    return migrations_in_.load(std::memory_order_relaxed);
  }
  uint64_t migrations_out() const {
    return migrations_out_.load(std::memory_order_relaxed);
  }

  // --- invocation pool -------------------------------------------------------

  /// Service dispatches served by re-arming a parked thread.
  uint64_t pool_hits() const {
    return pool_hits_.load(std::memory_order_relaxed);
  }
  /// Service dispatches that had to build a thread (cold path).
  uint64_t pool_misses() const {
    return pool_misses_.load(std::memory_order_relaxed);
  }
  /// Parked threads released without reuse (idle decay + halt drain).
  uint64_t pool_evictions() const {
    return pool_evictions_.load(std::memory_order_relaxed);
  }
  /// Currently parked service threads (all shards).
  size_t pool_size() const;
  /// Visit every parked thread (audit: parked threads still own their
  /// stack run while off the scheduler registry).
  void for_each_parked(const std::function<void(marcel::Thread*)>& fn) const;
  /// Evict parked threads idle past the decay horizon (comm daemon calls
  /// this on idle laps; exposed for tests).
  void pool_decay(uint64_t now);
  /// Load metric used by the balancer: runnable, non-daemon threads.
  uint64_t load() const;

  /// Observed load table (filled by kLoadInfo gossip).  Snapshot under the
  /// lock: the gossip handler mutates the table concurrently with balancer
  /// reads, and the values go stale the moment the lock drops anyway.
  std::vector<uint64_t> load_table() const {
    sys::SpinGuard g(load_lock_);
    return load_table_;
  }
  void broadcast_load();

  // --- failure detection (see RuntimeConfig::heartbeat_period_ns) -----------

  /// Detector verdict for a peer.  kSuspect (one missed period) is
  /// observational only; kDown triggers the failure sweep.
  enum class PeerState : uint8_t { kUp = 0, kSuspect = 1, kDown = 2 };

  /// Current verdict for `node` (kUp for self, out-of-range nodes, and
  /// whenever detection is disabled).
  PeerState peer_state(uint32_t node) const;
  bool peer_down(uint32_t node) const {
    return peer_state(node) == PeerState::kDown;
  }

  /// Heartbeat frames this node has sent.
  uint64_t heartbeats_sent() const {
    return heartbeats_sent_.load(std::memory_order_relaxed);
  }
  /// Requests failed with kTimeout by deadline expiry.
  uint64_t rpc_timeouts() const {
    return rpc_timeouts_.load(std::memory_order_relaxed);
  }
  /// Replies/acks that arrived after their correlation was resolved
  /// (timeout, peer-down sweep, or an injected duplicate) and were dropped
  /// via the tombstone instead of double-resolving a promise.
  uint64_t late_replies_dropped() const {
    return late_replies_dropped_.load(std::memory_order_relaxed);
  }
  /// Pending requests failed with kPeerDown by the failure sweep.
  uint64_t peer_down_failures() const {
    return peer_down_failures_.load(std::memory_order_relaxed);
  }
  /// Timed-out/peer-down migrations whose thread was adopted back locally.
  uint64_t migration_rollbacks() const {
    return migration_rollbacks_.load(std::memory_order_relaxed);
  }

  // --- slot store (buffer-managed residency + persistence) -------------------

  /// The node's slot store, or nullptr when RuntimeConfig::slot_store_dir
  /// is empty.
  iso::SlotStore* slot_store() { return store_.get(); }

  /// Freeze a READY thread of this node (pause-gated, so it works at any
  /// worker count) — the runtime-level companion of unfreeze_thread().
  bool freeze_thread(marcel::ThreadId id);
  /// Fault a frozen thread's runs back in if demoted, then reschedule it.
  /// Demotion-aware code must use this instead of sched().unfreeze().
  bool unfreeze_thread(marcel::ThreadId id);
  /// Demote a frozen thread's slot runs to the backing file right now,
  /// bypassing the decay age/budget policy (tests, bench).  False when the
  /// thread is unknown, not frozen, already demoted, or spans too many
  /// runs for the store directory.
  bool demote_thread(marcel::ThreadId id);
  /// The choke point every resume path funnels through (unfreeze, pool
  /// re-arm, migration pack, checkpoint, pool release): if `t` was
  /// demoted, fault its runs back in — re-applying park poison for pool
  /// entries — and drop the demotion record.  No-op for resident threads.
  void ensure_resident(marcel::Thread* t);
  /// Decay pass (comm daemon idle laps, beside pool_decay): demote cold
  /// threads past slot_store_decay_us, coldest first, until resident cold
  /// bytes fit slot_store_budget.  Exposed for tests.
  void store_decay(uint64_t now);

  bool thread_demoted(marcel::ThreadId id) const;
  /// Copy a demoted thread's recorded slot runs (audit inventories demoted
  /// threads from the record — their slot chain is PROT_NONE).  False when
  /// the thread is not demoted.
  bool demoted_runs(marcel::ThreadId id,
                    std::vector<iso::SlotRun>* out) const;
  /// Pointer-keyed demotion lookup: never dereferences `t` (the descriptor
  /// of a demoted thread is itself PROT_NONE).  Fills any non-null out
  /// params from the demotion record.  Registry/audit walks must call this
  /// *before* touching any field of a thread they did not resume.
  bool demoted_info(marcel::Thread* t, marcel::ThreadId* id,
                    std::vector<iso::SlotRun>* runs) const;
  size_t demoted_count() const;
  size_t demoted_bytes() const {
    return demoted_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t demotions() const {
    return demotions_.load(std::memory_order_relaxed);
  }
  uint64_t fault_backs() const {
    return fault_backs_.load(std::memory_order_relaxed);
  }

  /// Keep next_thread_id() ahead of an id this node minted in a previous
  /// incarnation (checkpoint restore adopts pre-crash ids).
  void ensure_thread_id_floor(marcel::ThreadId id);

  /// When the store recovered, construction pre-acquires every recorded
  /// thread's slot runs out of the node's free distribution, so traffic
  /// served before restore_node_from_store() (a pending RPC racing the
  /// restart) cannot allocate over a recorded image.  Returns true exactly
  /// once per recorded thread whose runs were reserved; the caller
  /// (restore) then owns the runs and must not acquire them again.
  bool take_restore_reservation(uint64_t id);

 private:
  friend class RpcContext;
  friend class MigrationEngine;
  friend AuditReport audit_session(Runtime& rt);

  struct SpawnLocalCtx;
  struct RpcInvocation;

  void comm_daemon_body();
  /// Put any outbox-deferred sends on the wire (comm daemon only).
  void flush_outbox();
  void handle_message(fabric::Message& msg);
  void handle_rpc(fabric::Message& msg);
  void handle_migrate(fabric::Message& msg);

  /// Shared service dispatch (local invocations and received kRpc frames):
  /// looks the hash up and spawns the service thread.  Unknown service:
  /// fails the caller's future when a reply is expected (corr != 0),
  /// CHECK-fails a fire-and-forget.
  void dispatch_rpc(uint32_t service, uint32_t src, uint64_t corr,
                    std::vector<uint8_t>&& args, size_t args_offset);
  uint32_t register_service_handler(const char* name, ServiceHandler fn,
                                    uint32_t thread_flags = 0);

  /// Wire-level RPC entry points keyed by the service-name hash — what
  /// the public name-keyed overloads compile down to.  The `_hash`
  /// variants splice the hash ahead of a caller-packed argument buffer;
  /// the `_framed` variants take a buffer that already starts with the
  /// u32 hash (the typed wrappers pack it in place).
  void rpc_hash(uint32_t node, uint32_t service, mad::PackBuffer&& args);
  void rpc_framed(uint32_t node, uint32_t service, mad::PackBuffer&& framed);
  marcel::Future<std::vector<uint8_t>> call_async_hash(uint32_t node,
                                                       uint32_t service,
                                                       mad::PackBuffer&& args,
                                                       uint64_t timeout_ns);
  marcel::Future<std::vector<uint8_t>> call_async_framed(
      uint32_t node, uint32_t service, mad::PackBuffer&& framed,
      uint64_t timeout_ns);

  /// Comm-daemon spin gate: true while some local thread awaits a reply
  /// or migration ack (see comm_daemon_body's adaptive busy-poll).
  bool reply_is_imminent() const;

  template <typename F>
  uint32_t service_with_flags(const char* name, F&& handler, uint32_t flags) {
    using Traits = detail::RpcHandlerTraits<std::decay_t<F>>;
    return register_service_handler(
        name,
        [fn = std::forward<F>(handler)](RpcContext& ctx) mutable {
          Traits::run(fn, ctx);
        },
        flags);
  }

  /// An outstanding call: the promise its reply completes, plus the data
  /// the failure paths need — which peer must answer (peer-down sweep) and
  /// the absolute deadline, if any (0 = unbounded).
  struct PendingCall {
    marcel::Promise<std::vector<uint8_t>> promise;
    uint32_t dest = 0;
    uint64_t deadline_ns = 0;
  };
  /// An outstanding migration awaiting its install ack.  Carries rollback
  /// state: the forgotten descriptor and its recorded slot runs (pages
  /// kept committed by the migration slot cache), enough to adopt the
  /// thread back if the ack never comes.
  struct PendingMigration {
    marcel::Promise<MigrateResult> promise;
    uint32_t dest = 0;
    uint64_t deadline_ns = 0;
    marcel::Thread* thread = nullptr;
    marcel::ThreadId thread_id = 0;
    std::vector<std::pair<size_t, size_t>> runs;
    // The entry is registered *before* ship_thread so an early ack always
    // finds it, but rollback is only legal once the pack/forget/send has
    // finished — the deadline is armed and the peer-down sweep may touch
    // the entry only after migrate_async flips this post-ship.
    bool shipped = false;
  };

  /// Correlation bookkeeping shared by RPC replies, negotiation gathers
  /// and audits: register_pending hands out the future completed by
  /// complete_pending / fail_pending when the matching corr arrives.
  /// `dest` is the node the reply must come from; `deadline_ns` (absolute,
  /// 0 = none) arms the timeout machinery.
  marcel::Future<std::vector<uint8_t>> register_pending(uint64_t corr,
                                                        uint32_t dest,
                                                        uint64_t deadline_ns);
  void complete_pending(uint64_t corr, std::vector<uint8_t>&& result,
                        const char* what);
  void fail_pending(uint64_t corr, std::string why, const char* what);

  /// Remove and return the entry for `corr`.  nullopt for an unknown
  /// correlation, which is tolerated in two cases: the corr was already
  /// resolved and tombstoned (deadline expiry, peer-down sweep, injected
  /// duplicate — the late frame is counted and dropped), or the session is
  /// halting (a reply may race the shutdown drain).  Anything else is a
  /// protocol bug.  Locks pending_lock_ internally; the caller resolves
  /// the promise *outside* the lock (completion unblocks the waiter, which
  /// may run scheduler code).
  template <typename Map>
  std::optional<typename Map::mapped_type> take_pending(Map& pending,
                                                        uint64_t corr,
                                                        const char* what) {
    pending_lock_.lock();
    auto it = pending.find(corr);
    if (it == pending.end()) {
      bool late = tombstones_.count(corr) != 0;
      pending_lock_.unlock();
      if (late) {
        late_replies_dropped_.fetch_add(1, std::memory_order_relaxed);
        PM2_DEBUG << "dropping late " << what << " (corr " << corr << ")";
        return std::nullopt;
      }
      PM2_CHECK(halting()) << what << " with no pending waiter";
      return std::nullopt;
    }
    typename Map::mapped_type ent = std::move(it->second);
    pending.erase(it);
    // Every resolved corr is tombstoned so a *duplicate* of its reply
    // (fault injection) is also dropped silently.
    tombstone_locked(corr);
    pending_lock_.unlock();
    return ent;
  }

  /// Record `corr` as resolved (bounded FIFO) so late/duplicate replies
  /// are dropped instead of double-resolving or tripping the
  /// unknown-correlation check.
  void tombstone_locked(uint64_t corr) PM2_REQUIRES(pending_lock_);
  /// Push `corr` on the deadline heap and refresh the daemon's cached
  /// next-deadline.  Callers only arm non-zero deadlines.
  void arm_deadline_locked(uint64_t corr, uint64_t deadline_ns,
                           bool migration) PM2_REQUIRES(pending_lock_);
  /// Fail every armed correlation whose deadline passed (comm daemon;
  /// early-outs on the cached next-deadline, so un-armed sessions pay one
  /// relaxed load per lap).
  void expire_deadlines(uint64_t now);
  /// Map a per-request timeout parameter (kTimeoutFromConfig sentinel /
  /// explicit value / 0) to an absolute deadline (0 = unbounded).
  uint64_t resolve_deadline(uint64_t timeout_ns) const;
  /// Adopt a timed-out / peer-down migration's thread back onto this
  /// node's scheduler and fail its future.  Callers must have removed the
  /// entry from pending_migrations_ (tombstoned) and hold no locks.
  void rollback_migration(PendingMigration ent, const std::string& why);

  /// Liveness bookkeeping (the comm daemon is the only writer): any
  /// received frame marks its sender up.
  void peer_seen(uint32_t node);
  /// Heartbeat emission + miss detection (comm daemon laps; internally
  /// rate-limited to a fraction of the heartbeat period).
  void check_peers(uint64_t now);
  /// Declare `node` dead: fail its pending calls with kPeerDown, roll back
  /// its in-flight migrations, and unwedge barrier/negotiation waiters.
  void mark_peer_down(uint32_t node);
  /// halt(): wake every thread blocked on a pending call or migration ack
  /// with an error instead of leaving it parked forever.
  void drain_pending(const std::string& why);
  void handle_lock_req(uint32_t from);
  void handle_unlock(uint32_t from);
  void handle_gather_req(fabric::Message& msg);
  void handle_audit_req(fabric::Message& msg);
  void handle_nego_update(fabric::Message& msg);

  /// Run one global negotiation for `run` contiguous slots (paper §4.4
  /// steps a–f) and, still inside the system-wide critical section, acquire
  /// the run for the calling thread.  Returns the first slot, or nullopt if
  /// no run of that length exists anywhere.
  std::optional<size_t> negotiate(size_t run);
  /// Enter/leave the system-wide critical section (lock server: node 0).
  void lock_system();
  void unlock_system();
  void apply_deferred_releases();
  /// Step (b): collect every node's bitmap (must hold the system lock).
  std::vector<Bitmap> gather_all_bitmaps();
  /// Step (e): push updated bitmaps to the other nodes and adopt our own.
  void scatter_bitmaps(std::vector<Bitmap> bitmaps);

  marcel::ThreadId next_thread_id();
  /// `start_frozen` hands the newborn back still frozen (spawn_copy
  /// finishes preparing it before any worker may steal and run it).
  marcel::Thread* create_thread_in_slots(marcel::EntryFn fn, void* arg,
                                         const char* name, uint32_t flags,
                                         bool start_frozen = false);
  void reap_thread(marcel::Thread* t);

  /// Service-thread factory: pop + re-arm a parked pool thread (hot path:
  /// no slot acquire, no init_stack_slot) or fall back to a full build.
  marcel::Thread* spawn_service_thread(marcel::EntryFn fn, void* arg,
                                       const char* name, uint32_t flags);
  /// Release a parked thread's slot run back to the node.
  void pool_release_entry(marcel::Thread* t);
  /// Drain the whole pool (daemon exit at halt: no leak, slots released).
  void pool_drain();

  static void thread_trampoline(void* descriptor);
  static void local_trampoline(void* ctx);
  static void rpc_trampoline(void* ctx);
  static void daemon_trampoline(void* runtime);

  /// ThreadHeap's view of the slot layer: acquire falls back to the global
  /// negotiation; release defers while a negotiation froze the bitmap.
  class NegotiatingSlotOps final : public iso::SlotOps {
   public:
    explicit NegotiatingSlotOps(Runtime& rt) : rt_(rt) {}
    std::optional<size_t> acquire(size_t count) override {
      return rt_.acquire_slots_negotiating(count);
    }
    void release(size_t first, size_t count) override {
      rt_.release_slots(first, count);
    }
    iso::Area& area() override { return rt_.area_; }

   private:
    Runtime& rt_;
  };

  RuntimeConfig config_;
  iso::Area& area_;
  std::unique_ptr<fabric::Fabric> fabric_;
  marcel::Scheduler sched_;
  iso::SlotManager slot_mgr_;
  NegotiatingSlotOps slot_ops_{*this};
  HeapStats heap_stats_;

  std::atomic<uint64_t> thread_counter_{0};
  std::atomic<bool> halting_{false};

  // Deferred sends (fabric_send from a worker when the transport is not
  // concurrent-send-safe): drained by the comm daemon.  Highest rank: the
  // outbox is a terminal sink — nothing else is ever acquired under it.
  sys::SpinLock out_lock_{sys::LockRank::kOutbox};
  std::vector<fabric::Message> outbox_ PM2_GUARDED_BY(out_lock_);

  // Services: name-hash keyed dispatch table (the wire carries the hash).
  // The lookup sits on the per-invocation hot path, so the table is a
  // striped concurrent map whose node addresses are stable and whose
  // *grow-only* discipline (registration is setup-phase and permanent; no
  // erase, ever) makes find_fast() — a lock-free acquire-walk, zero shared
  // cache-line writes — sound on the dispatch path.
  struct ServiceEntry {
    std::string name;
    ServiceHandler fn;
    uint32_t thread_flags = 0;  // kFlagPinned for service_local
  };
  sys::StripedMap<uint32_t, ServiceEntry, 8> services_{
      sys::LockRank::kRuntimeMaps};

  // Outstanding correlations: calls awaiting a reply and migrations
  // awaiting their install ack.  Unbounded — this is what lets one thread
  // pipeline arbitrarily many call_async requests.  Both maps (and the
  // corr counter's pairing with map insertion) live under pending_lock_;
  // promises are completed outside it.
  mutable sys::SpinLock pending_lock_{sys::LockRank::kRuntimeMaps};
  std::atomic<uint64_t> next_corr_{1};
  std::unordered_map<uint64_t, PendingCall> pending_calls_
      PM2_GUARDED_BY(pending_lock_);
  std::unordered_map<uint64_t, PendingMigration> pending_migrations_
      PM2_GUARDED_BY(pending_lock_);

  // Resolved-correlation tombstones (bounded FIFO): late or duplicated
  // replies for these corrs are dropped, not treated as protocol bugs.
  // Corr ids are never reused (next_corr_ only grows), so a tombstone can
  // never shadow a live request.
  static constexpr size_t kTombstoneCap = 1024;
  std::unordered_set<uint64_t> tombstones_ PM2_GUARDED_BY(pending_lock_);
  std::deque<uint64_t> tombstone_fifo_ PM2_GUARDED_BY(pending_lock_);

  // Deadline machinery: min-heap of armed (non-zero) deadlines, popped
  // lazily (an entry is live only while its corr is still pending).  The
  // cached earliest deadline lets the comm daemon's busy laps detect
  // expiry with one relaxed load — zero-timeout sessions keep the heap
  // empty and the cache at UINT64_MAX, i.e. the legacy fast path.
  struct DeadlineEnt {
    uint64_t deadline_ns;
    uint64_t corr;
    bool migration;
  };
  struct DeadlineLater {
    bool operator()(const DeadlineEnt& a, const DeadlineEnt& b) const {
      return a.deadline_ns > b.deadline_ns;
    }
  };
  std::priority_queue<DeadlineEnt, std::vector<DeadlineEnt>, DeadlineLater>
      deadlines_ PM2_GUARDED_BY(pending_lock_);
  std::atomic<uint64_t> next_deadline_ns_{UINT64_MAX};
  uint64_t rpc_timeout_ns_ = 0;  // resolved at construction (env applied)

  // Peer health, lock-free by design: the sweep on a down transition takes
  // pending_lock_ (same rank as every other runtime map), so the health
  // state itself must not live under a kRuntimeMaps lock.  The comm daemon
  // is the only writer; workers read `state` for fail-fast sends.
  struct PeerHealth {
    std::atomic<uint64_t> last_seen_ns{0};
    std::atomic<uint8_t> state{0};  // PeerState
  };
  std::unique_ptr<PeerHealth[]> peers_;  // n_nodes entries; null when 1 node
  uint64_t next_heartbeat_ns_ = 0;       // comm daemon only
  uint64_t next_peer_scan_ns_ = 0;       // comm daemon only
  std::atomic<uint64_t> heartbeats_sent_{0};
  std::atomic<uint64_t> rpc_timeouts_{0};
  std::atomic<uint64_t> late_replies_dropped_{0};
  std::atomic<uint64_t> peer_down_failures_{0};
  std::atomic<uint64_t> migration_rollbacks_{0};

  // Migration observers (on_migration).
  MigrationHook pre_migration_;
  MigrationHook post_migration_;

  // Barrier (centralized at node 0), state under barrier_lock_.
  // barrier_error_: set by the peer-down sweep before waking the waiter;
  // barrier() rethrows it instead of reporting the barrier complete.
  sys::SpinLock barrier_lock_{sys::LockRank::kRuntimeMaps};
  uint32_t barrier_seq_ PM2_GUARDED_BY(barrier_lock_) = 0;
  uint32_t barrier_arrivals_ PM2_GUARDED_BY(barrier_lock_) = 0;  // node 0 only
  marcel::Event* barrier_waiter_ PM2_GUARDED_BY(barrier_lock_) = nullptr;
  std::string barrier_error_ PM2_GUARDED_BY(barrier_lock_);

  // Signals
  std::atomic<uint64_t> signals_received_{0};
  marcel::Semaphore signal_sem_{0};

  // Negotiation state, under nego_lock_: lock-server fields (node 0 only)
  // and this node's lock_wait_ event pointer.
  sys::SpinLock nego_lock_{sys::LockRank::kRuntimeMaps};
  bool lock_held_ PM2_GUARDED_BY(nego_lock_) = false;
  uint32_t lock_owner_ PM2_GUARDED_BY(nego_lock_) = 0;
  std::vector<uint32_t> lock_queue_ PM2_GUARDED_BY(nego_lock_);
  // nego_mutex_ serializes this node's threads entering the system-wide
  // critical section (the lock server tracks one outstanding request per
  // node).
  marcel::Mutex nego_mutex_;
  marcel::Event* lock_wait_ PM2_GUARDED_BY(nego_lock_) = nullptr;
  // Set by the peer-down sweep while a thread waits for the system lock:
  // the global bitmap protocol cannot survive losing a participant, so the
  // woken waiter aborts loudly instead of hanging.
  bool nego_peer_lost_ PM2_GUARDED_BY(nego_lock_) = false;
  // Slot-bitmap state, under slot_lock_: the SlotManager itself, the freeze
  // depth (>0 between GatherReq and NegoUpdate of a remote negotiation and
  // while this node runs its own), deferred releases, and the wait queue of
  // threads parked until the freeze lifts (embedded mode: parked under
  // slot_lock_ so no unfreeze can slip between test and park).
  mutable sys::SpinLock slot_lock_{sys::LockRank::kRuntimeMaps};
  int bitmap_freeze_ PM2_GUARDED_BY(slot_lock_) = 0;
  // Embedded-mode WaitQueue: linked/popped under slot_lock_ (its own lock
  // is bypassed), which static analysis cannot express — the dynamic
  // lock-rank layer covers it.  slot_mgr_ (declared above) is likewise
  // guarded by slot_lock_ but escapes through the slots() accessor for
  // paused-worker audits, so it carries no GUARDED_BY either.
  marcel::WaitQueue bitmap_wait_;
  std::vector<std::pair<size_t, size_t>> deferred_releases_
      PM2_GUARDED_BY(slot_lock_);
  std::atomic<uint64_t> negotiations_initiated_{0};
  std::atomic<uint64_t> migrations_in_{0};
  std::atomic<uint64_t> migrations_out_{0};

  // Both writers (gossip handler, broadcast_load) and the balancer's read
  // go through load_lock_; values are advisory the moment the lock drops,
  // but the accesses themselves must not race.
  mutable sys::SpinLock load_lock_{sys::LockRank::kRuntimeMaps};
  std::vector<uint64_t> load_table_ PM2_GUARDED_BY(load_lock_);
  trace::Tracer* tracer_ = nullptr;
  mad::ChannelMux channels_{*fabric_, kUserBase};

  struct MigCacheEntry {
    size_t first;
    size_t count;
  };
  mutable sys::SpinLock mig_cache_lock_{sys::LockRank::kRuntimeMaps};
  std::deque<MigCacheEntry> mig_cache_
      PM2_GUARDED_BY(mig_cache_lock_);  // front = oldest

  // Invocation pool: parked service threads, LIFO (the most recently
  // parked stack is the cache-warmest).  Entries are off the scheduler
  // registry but still own their stack slot run (see for_each_parked).
  // One shard per scheduler worker: a reaping/dispatching worker works its
  // own shard lock-locally-contended, overflowing to peers — so pipelined
  // RPC across workers does not serialize on one pool lock.
  struct PoolEntry {
    marcel::Thread* thread;
    uint64_t parked_ns;
  };
  struct alignas(64) PoolShard {
    mutable sys::SpinLock lock{sys::LockRank::kInvocationPool};
    std::vector<PoolEntry> entries PM2_GUARDED_BY(lock);
    size_t cap = 0;  // per-shard park capacity, set once at startup; shard
                     // caps sum to config_.invocation_pool exactly
  };
  std::vector<std::unique_ptr<PoolShard>> pool_shards_;
  std::atomic<uint64_t> pool_hits_{0};
  std::atomic<uint64_t> pool_misses_{0};
  std::atomic<uint64_t> pool_evictions_{0};

  // Slot store: demoted-thread map under store_lock_, keyed by the
  // *descriptor pointer* — a demoted thread's descriptor lives inside its
  // PROT_NONE run, so the key must never require a dereference (id
  // lookups scan; the map is small and cold).  Demotion only happens with
  // the workers paused (store_decay / demote_thread), and fault-back I/O
  // completes under store_lock_, so no caller can resume a thread whose
  // bytes are still in flight.
  struct DemotedRec {
    marcel::ThreadId id = 0;
    std::vector<iso::SlotRun> runs;
    size_t bytes = 0;
    bool parked = false;  // invocation-pool entry: re-poison on fault-back
  };
  /// Demote `t` (must be cold and resident; workers paused).  False when
  /// the thread spans more runs than the store directory can record.
  bool demote_locked(marcel::Thread* t, bool parked);
  std::unique_ptr<iso::SlotStore> store_;
  mutable sys::SpinLock store_lock_{sys::LockRank::kRuntimeMaps};
  std::unordered_map<marcel::Thread*, DemotedRec> demoted_
      PM2_GUARDED_BY(store_lock_);
  // Thread ids whose recorded runs were pre-acquired at construction from
  // a recovered store (see take_restore_reservation).
  std::unordered_set<uint64_t> restore_reserved_ PM2_GUARDED_BY(store_lock_);
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> fault_backs_{0};
  std::atomic<size_t> demoted_bytes_{0};

  // Recycled RpcInvocation boxes (one per in-flight dispatch): the hot
  // path swaps a pointer instead of paying a heap round trip per call.
  sys::SpinLock inv_lock_{sys::LockRank::kInvocationPool};
  std::vector<RpcInvocation*> inv_free_ PM2_GUARDED_BY(inv_lock_);
  void recycle_invocation(RpcInvocation* inv);
  void drop_invocation_freelist();
};

}  // namespace pm2
