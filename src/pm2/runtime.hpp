// The PM2 node runtime: one instance per node (container process, or
// logical in-process node).  Composes the substrates:
//
//   marcel     — user-level threads on this node's kernel thread
//   isomalloc  — slot manager over the shared iso-address area
//   fabric     — messaging to the other nodes
//
// and implements the distributed pieces of the paper: remote thread
// creation (LRPC), iso-address thread migration, the global slot
// negotiation, barriers and shutdown.
//
// Threading model: everything of a node — its PM2 threads, its comm daemon,
// its message handlers — runs on the node's single kernel thread under the
// cooperative marcel scheduler, so node state needs no locks.  The comm
// daemon is itself a PM2 daemon thread that polls the fabric and dispatches
// control messages inline.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "fabric/message.hpp"
#include "isomalloc/area.hpp"
#include "isomalloc/heap.hpp"
#include "isomalloc/slot_manager.hpp"
#include "madeleine/buffers.hpp"
#include "madeleine/channel.hpp"
#include "marcel/scheduler.hpp"
#include "marcel/sync.hpp"
#include "pm2/protocol.hpp"
#include "trace/trace.hpp"

namespace pm2 {

class Runtime;
struct AuditReport;
AuditReport audit_session(Runtime& rt);

/// Context handed to an RPC service running in its own fresh thread.
class RpcContext {
 public:
  /// `args_offset` skips transport framing at the front of `args` (the
  /// service id of a remote invocation), letting the whole received
  /// payload move in without a trim copy.
  RpcContext(Runtime& rt, uint32_t src, uint64_t corr,
             std::vector<uint8_t> args, size_t args_offset = 0)
      : rt_(rt), src_(src), corr_(corr), args_(std::move(args)),
        unpacker_(args_.data() + args_offset, args_.size() - args_offset) {}

  uint32_t source_node() const { return src_; }
  mad::UnpackBuffer& args() { return unpacker_; }
  /// Send the reply (allowed once; only if the caller used call()).
  void reply(mad::PackBuffer&& result);

 private:
  Runtime& rt_;
  uint32_t src_;
  uint64_t corr_;
  std::vector<uint8_t> args_;
  mad::UnpackBuffer unpacker_;
  bool replied_ = false;
};

using ServiceFn = void (*)(RpcContext&);

struct RuntimeConfig {
  uint32_t node = 0;
  uint32_t n_nodes = 1;
  iso::SlotManagerConfig slots;  // node/n_nodes are overwritten
  iso::HeapConfig heap;
  /// Contiguous slots per thread stack (1 = the paper's design point:
  /// "the slot size was chosen so as to fit a thread stack").
  size_t stack_slots = 1;
  /// Deferred-preemption quantum for the scheduler (0 = cooperative only).
  uint64_t preemption_quantum_us = 0;
  /// Migration payload: ship only slot headers + live blocks/stack instead
  /// of whole slots (paper §6 optimization).  Ablation A4 toggles this.
  bool migrate_blocks_only = true;
  /// When a node goes idle, the comm daemon busy-polls the fabric for this
  /// long before blocking.  The paper's BIP/Myrinet layer was polling-mode;
  /// blocking wake-ups cost ~100 us of futex latency, which would swamp the
  /// migration path.  0 disables (always block when idle).
  uint64_t comm_busy_poll_us = 200;
  /// Migration slot cache (the paper's §6 mmapped-slot cache applied to the
  /// migration path): slots of shipped threads stay committed, and a thread
  /// migrating back into cached slots skips the commit + page-fault cycle.
  /// Value = max cached slot runs per node; 0 disables.
  size_t migration_slot_cache = 64;
  /// Pre-buy (paper §4.4: "possible for the local node to take advantage
  /// of a negotiation phase to pre-buy slots in prevision of foreseeable
  /// large allocation requests"): each negotiation first tries to win this
  /// many extra contiguous slots beyond the request, so the next multi-slot
  /// allocations are satisfied locally.  0 disables.
  size_t nego_prebuy_slots = 0;
};

class Runtime {
 public:
  /// `area` must be the same reservation in every node of the session (the
  /// same object for in-process nodes; same AreaConfig across processes).
  Runtime(const RuntimeConfig& config, iso::Area& area,
          std::unique_ptr<fabric::Fabric> fabric);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Runtime of the calling kernel thread (valid inside run()).
  static Runtime* current();

  uint32_t self() const { return config_.node; }
  uint32_t n_nodes() const { return config_.n_nodes; }

  marcel::Scheduler& sched() { return sched_; }
  iso::SlotManager& slots() { return slot_mgr_; }
  /// Negotiation-aware slot provisioning (what thread heaps should use).
  iso::SlotOps& slot_ops() { return slot_ops_; }
  iso::Area& area() { return area_; }
  fabric::Fabric& fabric() { return *fabric_; }
  const RuntimeConfig& config() const { return config_; }

  // --- main loop -----------------------------------------------------------

  /// Start the comm daemon, run `node_main` as the first PM2 thread, then
  /// schedule until halt.  SPMD: every node calls run() with its own main.
  void run(std::function<void()> node_main);

  /// Broadcast shutdown; every node's run() returns once drained.
  void halt();
  /// True once halt was initiated or received (daemons poll this).
  bool halting() const { return halting_; }

  // --- threads -------------------------------------------------------------

  /// Create a migratable PM2 thread.  `fn` must be a plain function (code
  /// is SPMD-replicated so the pointer is valid on every node); `arg` must
  /// be either a value smuggled in the pointer or a pointer into
  /// iso-address memory — never into the libc heap, which is node-local.
  marcel::ThreadId spawn(marcel::EntryFn fn, void* arg,
                         const char* name = "thread");

  /// Convenience thread for node-local work (closures may capture
  /// anything).  Pinned: refuses to migrate.
  marcel::ThreadId spawn_local(std::function<void()> fn,
                               const char* name = "local");

  /// spawn() with argument hand-off: copies [data, data+len) into the NEW
  /// thread's own iso-heap and passes that pointer as arg.  This is the
  /// migration-safe way to give a child thread its inputs — blocks always
  /// belong to exactly one thread and move with it, so passing a pointer
  /// into the *parent's* heap would dangle as soon as either thread
  /// migrates (and the child must never isofree the parent's block).  The
  /// child owns the copy and should pm2_isofree it when done.
  marcel::ThreadId spawn_copy(marcel::EntryFn fn, const void* data,
                              size_t len, const char* name = "thread");

  /// Block until thread `id` (living on this node) exits.
  bool join(marcel::ThreadId id);

  /// Terminate the calling thread, releasing all its slots here.
  [[noreturn]] void thread_exit();

  // --- iso-address allocation (pm2_isomalloc / pm2_isofree) ----------------

  /// Allocate migratable memory for the calling thread.  Runs the global
  /// negotiation transparently when the local node lacks contiguous slots.
  /// Throws std::bad_alloc if the whole system is out of contiguous slots.
  void* isomalloc(size_t size);
  void isofree(void* p);
  void* isorealloc(void* p, size_t size);
  /// Extensions with malloc-family semantics.
  void* isocalloc(size_t n, size_t elem_size);
  void* isomemalign(size_t align, size_t size);

  // --- migration -----------------------------------------------------------

  /// Migrate the calling thread to `dest`; returns executing on `dest`.
  void migrate_self(uint32_t dest);

  /// Preemptively migrate thread `id` (must be READY on this node and not
  /// pinned).  "The threads are unaware of their being migrated" (§2).
  bool migrate(marcel::ThreadId id, uint32_t dest);

  // --- RPC (LRPC: remote thread creation) -----------------------------------

  /// Register a service; SPMD requires every node to register the same
  /// services in the same order before run().  Returns the service id.
  uint32_t register_service(const char* name, ServiceFn fn);

  /// Fire-and-forget: create a thread running `service` on `node`.
  void rpc(uint32_t node, uint32_t service, mad::PackBuffer&& args);

  /// Request/response: like rpc() but blocks the calling thread until the
  /// service calls ctx.reply().
  std::vector<uint8_t> call(uint32_t node, uint32_t service,
                            mad::PackBuffer&& args);

  /// Madeleine channels multiplexed over this node's fabric (message types
  /// kUserBase and up).  Open channels in the same order on every node
  /// (SPMD), before traffic starts; incoming channel messages are fed by
  /// the comm daemon.
  mad::ChannelMux& channels() { return channels_; }

  // --- collectives & signals -------------------------------------------------

  /// All-node barrier (each node's threads may call it, one at a time).
  void barrier();

  /// Completion tokens: wait_signals(n) blocks until n kSignal messages
  /// arrived (from any node, including self).
  void send_signal(uint32_t node);
  void wait_signals(uint64_t count);

  // --- slot access with negotiation freeze (internal + tests) ---------------

  /// Acquire slots for a thread, negotiating if needed.  Returns nullopt
  /// only if the whole system lacks a contiguous run.
  std::optional<size_t> acquire_slots_negotiating(size_t count);

  /// Release slots, deferring while a negotiation freezes the bitmap.
  void release_slots(size_t first, size_t count);

  /// Global defragmentation (paper §4.1): under the system-wide critical
  /// section, regroup every node's free slots into contiguous stretches
  /// (ownership counts preserved; thread-owned slots do not move).  Any
  /// thread of any node may call it.
  void defragment();

  /// Paper-trace printf: prefixes "[node<i>] " (Fig. 8).
  void printf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  // --- migration slot cache (see RuntimeConfig::migration_slot_cache) -------

  /// Record a shipped thread's slot run as still-committed (instead of
  /// decommitting).  Evicts (and decommits) the oldest run on overflow.
  void mig_cache_put(size_t first, size_t count);
  /// If the exact run is cached, consume the entry and return true (the
  /// caller may skip the commit; stale bytes in extent gaps are dead data
  /// by construction).
  bool mig_cache_take(size_t first, size_t count);
  /// Drop any cached run overlapping [first, first+count) without
  /// decommitting — used when the slots re-enter local ownership.
  void mig_cache_invalidate(size_t first, size_t count);
  size_t mig_cache_size() const { return mig_cache_.size(); }

  // --- tracing ----------------------------------------------------------------

  /// Attach an event tracer (not owned; nullptr disables).  Runtime events
  /// (thread lifecycle, migrations, negotiations, RPC, barriers) are
  /// recorded with zero cost when detached.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() { return tracer_; }
  void trace_event(trace::Event e, uint64_t a = 0, uint64_t b = 0) {
    if (tracer_ != nullptr) tracer_->record(e, a, b);
  }

  // --- stats -----------------------------------------------------------------

  HeapStats& heap_stats() { return heap_stats_; }
  uint64_t negotiations_initiated() const { return negotiations_initiated_; }
  uint64_t migrations_in() const { return migrations_in_; }
  uint64_t migrations_out() const { return migrations_out_; }
  /// Load metric used by the balancer: runnable, non-daemon threads.
  uint64_t load() const;

  /// Observed load table (filled by kLoadInfo gossip).
  const std::vector<uint64_t>& load_table() const { return load_table_; }
  void broadcast_load();

 private:
  friend class RpcContext;
  friend class MigrationEngine;
  friend AuditReport audit_session(Runtime& rt);

  struct SpawnLocalCtx;
  struct RpcInvocation;

  void comm_daemon_body();
  void handle_message(fabric::Message& msg);
  void handle_rpc(fabric::Message& msg);
  void handle_migrate(fabric::Message& msg);
  void handle_lock_req(uint32_t from);
  void handle_unlock(uint32_t from);
  void handle_gather_req(fabric::Message& msg);
  void handle_audit_req(fabric::Message& msg);
  void handle_nego_update(fabric::Message& msg);

  /// Run one global negotiation for `run` contiguous slots (paper §4.4
  /// steps a–f) and, still inside the system-wide critical section, acquire
  /// the run for the calling thread.  Returns the first slot, or nullopt if
  /// no run of that length exists anywhere.
  std::optional<size_t> negotiate(size_t run);
  /// Enter/leave the system-wide critical section (lock server: node 0).
  void lock_system();
  void unlock_system();
  void apply_deferred_releases();
  /// Step (b): collect every node's bitmap (must hold the system lock).
  std::vector<Bitmap> gather_all_bitmaps();
  /// Step (e): push updated bitmaps to the other nodes and adopt our own.
  void scatter_bitmaps(std::vector<Bitmap> bitmaps);

  marcel::ThreadId next_thread_id();
  marcel::Thread* create_thread_in_slots(marcel::EntryFn fn, void* arg,
                                         const char* name, uint32_t flags);
  void reap_thread(marcel::Thread* t);

  static void thread_trampoline(void* descriptor);
  static void local_trampoline(void* ctx);
  static void rpc_trampoline(void* ctx);
  static void daemon_trampoline(void* runtime);

  /// ThreadHeap's view of the slot layer: acquire falls back to the global
  /// negotiation; release defers while a negotiation froze the bitmap.
  class NegotiatingSlotOps final : public iso::SlotOps {
   public:
    explicit NegotiatingSlotOps(Runtime& rt) : rt_(rt) {}
    std::optional<size_t> acquire(size_t count) override {
      return rt_.acquire_slots_negotiating(count);
    }
    void release(size_t first, size_t count) override {
      rt_.release_slots(first, count);
    }
    iso::Area& area() override { return rt_.area_; }

   private:
    Runtime& rt_;
  };

  RuntimeConfig config_;
  iso::Area& area_;
  std::unique_ptr<fabric::Fabric> fabric_;
  marcel::Scheduler sched_;
  iso::SlotManager slot_mgr_;
  NegotiatingSlotOps slot_ops_{*this};
  HeapStats heap_stats_;

  uint64_t thread_counter_ = 0;
  bool halting_ = false;

  // Services
  std::vector<std::pair<std::string, ServiceFn>> services_;

  // call() correlation
  uint64_t next_corr_ = 1;
  struct PendingCall {
    marcel::Event event;
    std::vector<uint8_t> result;
  };
  std::map<uint64_t, PendingCall*> pending_calls_;

  // Barrier (centralized at node 0)
  uint32_t barrier_seq_ = 0;
  uint32_t barrier_arrivals_ = 0;  // node 0 only
  marcel::Event* barrier_waiter_ = nullptr;

  // Signals
  uint64_t signals_received_ = 0;
  marcel::Semaphore signal_sem_{0};

  // Negotiation: lock server state (node 0 only)
  bool lock_held_ = false;
  uint32_t lock_owner_ = 0;
  std::vector<uint32_t> lock_queue_;
  // Negotiation: client state.  nego_mutex_ serializes this node's threads
  // entering the system-wide critical section (the lock server tracks one
  // outstanding request per node).
  marcel::Mutex nego_mutex_;
  marcel::Event* lock_wait_ = nullptr;
  // Bitmap freeze depth: >0 between GatherReq and NegoUpdate (remote
  // negotiation) and while this node runs its own negotiation.
  int bitmap_freeze_ = 0;
  marcel::WaitQueue bitmap_wait_;
  std::vector<std::pair<size_t, size_t>> deferred_releases_;
  uint64_t negotiations_initiated_ = 0;
  uint64_t migrations_in_ = 0;
  uint64_t migrations_out_ = 0;

  std::vector<uint64_t> load_table_;
  trace::Tracer* tracer_ = nullptr;
  mad::ChannelMux channels_{*fabric_, kUserBase};

  struct MigCacheEntry {
    size_t first;
    size_t count;
  };
  std::deque<MigCacheEntry> mig_cache_;  // front = oldest
};

}  // namespace pm2
