#include "pm2/audit.hpp"

#include <map>
#include <sstream>

#include "common/check.hpp"
#include "common/serialize.hpp"
#include "isomalloc/heap.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {

namespace {

struct HeldRun {
  uint64_t thread;
  uint64_t first;
  uint32_t count;
  uint8_t demoted;  // run's bytes live in the node's slot store file
};

/// Inventory of slot runs held by the threads registered on one node —
/// plus the invocation pool's parked service threads, which sit off the
/// scheduler registry but still own their stack run.  Demoted threads are
/// inventoried from their demotion record: their slot chain (descriptor
/// included) is PROT_NONE, so not a single descriptor field may be read —
/// exactly-one-owner must keep covering runs whose bytes live in the store
/// file, and this is where that coverage comes from.
std::vector<HeldRun> local_inventory(Runtime& rt) {
  std::vector<HeldRun> runs;
  auto add = [&](marcel::Thread* t) {
    marcel::ThreadId id = 0;
    std::vector<iso::SlotRun> demoted;
    if (rt.demoted_info(t, &id, &demoted)) {
      for (auto [first, count] : demoted) {
        runs.push_back(HeldRun{id, first, count, 1});
      }
      return;
    }
    iso::ThreadHeap::for_each_slot(t->slot_list, [&](iso::SlotHeader* s) {
      runs.push_back(HeldRun{t->id, rt.area().slot_of(s), s->nslots, 0});
    });
  };
  rt.sched().for_each(add);
  rt.for_each_parked(add);
  return runs;
}

void pack_inventory(ByteWriter& w, const std::vector<HeldRun>& runs) {
  w.put<uint32_t>(static_cast<uint32_t>(runs.size()));
  for (const HeldRun& r : runs) {
    w.put<uint64_t>(r.thread);
    w.put<uint64_t>(r.first);
    w.put<uint32_t>(r.count);
    w.put<uint8_t>(r.demoted);
  }
}

std::vector<HeldRun> unpack_inventory(ByteReader& r) {
  auto n = r.get<uint32_t>();
  std::vector<HeldRun> runs;
  runs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    HeldRun run;
    run.thread = r.get<uint64_t>();
    run.first = r.get<uint64_t>();
    run.count = r.get<uint32_t>();
    run.demoted = r.get<uint8_t>();
    runs.push_back(run);
  }
  return runs;
}

}  // namespace

void Runtime::handle_audit_req(fabric::Message& msg) {
  // Served by the comm daemon.  At workers == 1 no other thread of this
  // node runs while the daemon does; at workers > 1 the helper workers are
  // gated at their pause point first, so every registered thread's slot
  // list is quiescent for the walk either way.
  ByteWriter w;
  sched_.pause_workers();
  pack_inventory(w, local_inventory(*this));
  sched_.resume_workers();
  fabric::Message resp;
  resp.type = kAuditResp;
  resp.dst = msg.src;
  resp.corr = msg.corr;
  resp.payload = w.take();
  fabric_->send(std::move(resp));
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATIONS") << ": slots=" << total_slots
     << " node_owned=" << node_owned << " thread_owned=" << thread_owned
     << " threads=" << threads_seen;
  if (threads_demoted != 0) {
    os << " demoted=" << threads_demoted << " (slots=" << demoted_slots
       << ")";
  }
  for (const auto& v : violations) os << "\n  ! " << v;
  return os.str();
}

AuditReport audit_session(Runtime& rt) {
  PM2_CHECK(marcel::Scheduler::self() != nullptr)
      << "audit outside a PM2 thread";
  AuditReport report;
  report.total_slots = rt.area().n_slots();

  // Same discipline as a negotiation: exclusive ownership of the bitmaps
  // for the duration (gather freezes peers; the final scatter unfreezes).
  rt.nego_mutex_.lock();
  rt.slot_lock_.lock();
  ++rt.bitmap_freeze_;
  rt.slot_lock_.unlock();
  rt.lock_system();

  std::vector<Bitmap> bitmaps = rt.gather_all_bitmaps();

  // Collect inventories: remote via kAuditReq, local inline.  Walking the
  // local registry needs the other workers gated (their threads' slot
  // lists mutate freely otherwise).
  rt.sched().pause_workers();
  std::vector<HeldRun> held = local_inventory(rt);
  rt.sched().resume_workers();
  for (uint32_t node = 0; node < rt.n_nodes(); ++node) {
    if (node == rt.self()) continue;
    uint64_t corr = rt.next_corr_.fetch_add(1, std::memory_order_relaxed);
    // No deadline: audits run under the system lock; the peer-down sweep
    // fails this future (fut.failed() below reports the abort) if the
    // audited peer dies mid-inventory.
    marcel::Future<std::vector<uint8_t>> fut = rt.register_pending(corr, node, 0);
    fabric::Message req;
    req.type = kAuditReq;
    req.dst = node;
    req.corr = corr;
    rt.fabric_send(std::move(req));
    fut.wait();
    PM2_CHECK(!fut.failed()) << "audit aborted: " << fut.error();
    std::vector<uint8_t> resp = fut.take();
    ByteReader r(resp);
    for (HeldRun& run : unpack_inventory(r)) held.push_back(run);
  }

  // Release the peers (bitmaps unchanged) and the critical section before
  // the pure checking below.
  rt.scatter_bitmaps(bitmaps);  // by value copy retained for checks
  rt.unlock_system();
  rt.slot_lock_.lock();
  --rt.bitmap_freeze_;
  rt.slot_lock_.unlock();
  rt.apply_deferred_releases();
  rt.nego_mutex_.unlock();

  // ---- pure checks ----------------------------------------------------------
  auto violate = [&](const std::string& what) {
    report.violations.push_back(what);
  };

  // 1. bitmaps pairwise disjoint.
  for (size_t i = 0; i < bitmaps.size(); ++i) {
    report.node_owned += bitmaps[i].count();
    for (size_t j = i + 1; j < bitmaps.size(); ++j) {
      if (bitmaps[i].intersects(bitmaps[j]))
        violate("bitmaps of nodes " + std::to_string(i) + " and " +
                std::to_string(j) + " overlap");
    }
  }

  // 2. thread runs vs bitmaps and vs each other; 3. coverage.
  Bitmap global = bitmaps[0];
  for (size_t i = 1; i < bitmaps.size(); ++i) global.or_with(bitmaps[i]);
  std::map<uint64_t, bool> threads;
  Bitmap held_map(report.total_slots);
  for (const HeldRun& r : held) {
    auto ins = threads.emplace(r.thread, r.demoted != 0);
    // A thread's runs are either all resident or all demoted (demotion is
    // whole-thread): a mix means a torn demotion record.
    if (!ins.second && ins.first->second != (r.demoted != 0))
      violate("thread " + std::to_string(r.thread) +
              " mixes demoted and resident runs");
    if (r.demoted != 0) {
      report.demoted_slots += r.count;
      if (ins.second) ++report.threads_demoted;
    }
    report.thread_owned += r.count;
    for (uint64_t s = r.first; s < r.first + r.count; ++s) {
      if (global.test(s))
        violate("slot " + std::to_string(s) + " owned by both thread " +
                std::to_string(r.thread) + " and a node bitmap");
      if (held_map.test(s))
        violate("slot " + std::to_string(s) + " held by two threads");
      held_map.set(s);
    }
  }
  report.threads_seen = threads.size();
  if (report.node_owned + report.thread_owned != report.total_slots)
    violate("coverage leak: " +
            std::to_string(report.node_owned + report.thread_owned) + " of " +
            std::to_string(report.total_slots) + " slots accounted for");

  report.ok = report.violations.empty();
  return report;
}

}  // namespace pm2
