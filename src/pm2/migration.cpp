#include "pm2/migration.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "isomalloc/block.hpp"
#include "isomalloc/heap.hpp"
#include "madeleine/buffers.hpp"
#include "pm2/protocol.hpp"
#include "pm2/runtime.hpp"
#include "sys/sanitizer.hpp"

namespace pm2 {

namespace {

struct Extent {
  uint64_t offset;  // from the slot-run base
  uint64_t len;
};

/// Append an extent, merging with the previous one when contiguous.
void push_extent(std::vector<Extent>& v, uint64_t offset, uint64_t len) {
  if (len == 0) return;
  if (!v.empty() && v.back().offset + v.back().len == offset) {
    v.back().len += len;
    return;
  }
  v.push_back(Extent{offset, len});
}

/// Live extents of one slot run.  `base` is the run's first byte.
std::vector<Extent> live_extents(iso::SlotHeader* slot, size_t slot_size,
                                 const marcel::Thread* t) {
  std::vector<Extent> extents;
  auto base = reinterpret_cast<uintptr_t>(slot);
  if (slot->kind == iso::SlotKind::kStack) {
    // Slot header + padding + descriptor + stack canary…
    auto canary_end = reinterpret_cast<uintptr_t>(t->stack_base) + 8;
    push_extent(extents, 0, canary_end - base);
    // …then only the live part of the stack: [sp, stack_top).
    auto sp = reinterpret_cast<uintptr_t>(t->sp);
    auto top = reinterpret_cast<uintptr_t>(t->stack_top);
    PM2_CHECK(sp >= canary_end && sp <= top) << "saved sp outside stack";
    push_extent(extents, sp - base, top - sp);
  } else {
    push_extent(extents, 0, sizeof(iso::SlotHeader));
    iso::for_each_block(slot, slot_size, [&](iso::BlockHeader* b) {
      auto off = reinterpret_cast<uintptr_t>(b) - base;
      // Headers always travel (they carry the free-list and physical
      // chaining); payload bytes only for busy blocks.
      uint64_t len = b->free ? sizeof(iso::BlockHeader) : b->size;
      push_extent(extents, off, len);
    });
  }
  return extents;
}

std::vector<Extent> full_extent(iso::SlotHeader* slot, size_t slot_size) {
  return {Extent{0, uint64_t{slot->nslots} * slot_size}};
}

/// Shared payload walker: the wire format parsed in exactly one place.
/// `on_run` may return a scatter base (the committed run's first byte) to
/// have extents copied in, or nullptr to skip the bytes (metadata scans).
template <typename OnRun>
void walk_payload(mad::UnpackBuffer& unpack, uint64_t* desc_addr,
                  const OnRun& on_run) {
  auto desc = unpack.unpack<uint64_t>();
  if (desc_addr != nullptr) *desc_addr = desc;
  unpack.unpack<uint8_t>();  // mode: self-describing via extents
  auto n_runs = unpack.unpack<uint32_t>();
  for (uint32_t i = 0; i < n_runs; ++i) {
    auto first = unpack.unpack<uint64_t>();
    auto nslots = unpack.unpack<uint32_t>();
    unpack.unpack<uint32_t>();  // kind (informational)
    char* base = on_run(static_cast<size_t>(first), nslots);
    auto n_extents = unpack.unpack<uint32_t>();
    for (uint32_t e = 0; e < n_extents; ++e) {
      auto offset = unpack.unpack<uint64_t>();
      auto len = unpack.unpack<uint64_t>();
      if (base != nullptr) {
        unpack.unpack_bytes(base + offset, len);
      } else {
        unpack.skip(len);
      }
    }
  }
}

}  // namespace

mad::BufferChain pack_thread_chain(Runtime& rt, marcel::Thread* t,
                                   bool blocks_only) {
  PM2_CHECK(t->slot_list != nullptr) << "thread without slots";
  const size_t slot_size = rt.area().slot_size();

  // Count slot runs first.
  uint32_t n_runs = 0;
  iso::ThreadHeap::for_each_slot(t->slot_list,
                                 [&](iso::SlotHeader*) { ++n_runs; });

  mad::PackBuffer pack(1024);
  pack.pack<uint64_t>(reinterpret_cast<uint64_t>(t));
  pack.pack<uint8_t>(blocks_only ? 1 : 0);
  pack.pack<uint32_t>(n_runs);

  iso::ThreadHeap::for_each_slot(t->slot_list, [&](iso::SlotHeader* slot) {
    auto base = reinterpret_cast<const char*>(slot);
    pack.pack<uint64_t>(rt.area().slot_of(slot));
    pack.pack<uint32_t>(slot->nslots);
    pack.pack<uint32_t>(static_cast<uint32_t>(slot->kind));
    std::vector<Extent> extents = blocks_only
                                      ? live_extents(slot, slot_size, t)
                                      : full_extent(slot, slot_size);
    pack.pack<uint32_t>(static_cast<uint32_t>(extents.size()));
    for (const Extent& e : extents) {
      pack.pack<uint64_t>(e.offset);
      pack.pack<uint64_t>(e.len);
      // A live stack extent carries redzone poison from the frozen
      // thread's frames; scrub it so the fabric may read the borrowed
      // bytes.  Shadow is node-local and never ships — the install side
      // starts the copy with clean shadow too, which is the only safe
      // reconstruction (new frames re-poison as they are pushed).
      sys::san_unpoison(base + e.offset, e.len);
      // Borrow: the extent segment points straight into iso-address slot
      // memory; the fabric gathers it from there to the wire.  The slots
      // stay committed until ship_thread's send() returns.
      pack.pack_bytes(base + e.offset, e.len, mad::PackMode::kBorrow);
    }
  });
  return pack.take_chain();
}

std::vector<uint8_t> pack_thread(Runtime& rt, marcel::Thread* t,
                                 bool blocks_only) {
  return pack_thread_chain(rt, t, blocks_only).take_flat();
}

size_t migration_payload_size(Runtime& rt, marcel::Thread* t,
                              bool blocks_only) {
  return pack_thread_chain(rt, t, blocks_only).size();
}

std::vector<std::pair<uint64_t, uint64_t>> run_live_extents(
    Runtime& rt, marcel::Thread* t, iso::SlotHeader* slot) {
  std::vector<Extent> extents = live_extents(slot, rt.area().slot_size(), t);
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(extents.size());
  for (const Extent& e : extents) out.emplace_back(e.offset, e.len);
  return out;
}

void ship_thread(Runtime& rt, marcel::Thread* t, uint32_t dest,
                 uint64_t ack_corr) {
  PM2_CHECK(dest != rt.self());
  // Demoted runs fault back through the store before any descriptor field
  // (including t->id below) is readable; the pack walk needs the bytes hot
  // anyway.  The thread's directory record — if a demotion or checkpoint
  // left one — no longer describes slots this node owns once the thread
  // ships, so a crash restart here must not resurrect it.
  rt.ensure_resident(t);
  PM2_TRACE << "shipping thread " << t->id << " to node " << dest;
  if (auto* store = rt.slot_store()) store->erase_thread(t->id);

  // Observer hook (pm2_set_pre_migration_func): the thread is frozen but
  // still entirely resident — the hook may inspect it, not unfreeze it.
  if (rt.pre_migration_hook()) rt.pre_migration_hook()(t);

  mad::BufferChain chain =
      pack_thread_chain(rt, t, rt.config().migrate_blocks_only);

  // Record the runs before the descriptor becomes unreachable.
  std::vector<std::pair<size_t, size_t>> runs;
  iso::ThreadHeap::for_each_slot(t->slot_list, [&](iso::SlotHeader* slot) {
    runs.emplace_back(rt.area().slot_of(slot), slot->nslots);
  });

  // keep_fiber: an in-process install (hub fabric, or socket nodes sharing
  // the process) adopts the byte-copied stack on its original TSan fiber.
  rt.sched().forget(t, /*keep_fiber=*/true);

  // Gather straight from the (still committed) slots to the wire.  By the
  // time fabric_send() returns the borrowed extents have been written out
  // (socket fabric), taken over (in-process hub), or flattened into an
  // owned outbox copy (deferred send from a non-daemon worker), so the
  // pages may go away.
  fabric::Message msg;
  msg.type = kMigrate;
  msg.dst = dest;
  msg.corr = ack_corr;  // != 0: destination acks after install
  msg.chain = std::move(chain);
  rt.fabric_send(std::move(msg));

  // "The memory area storing the resources is set free" (§2 step 1).  The
  // slots stay owned by the thread — no bitmap traffic — so the same
  // addresses are guaranteed free on every node, including this one if the
  // thread ever migrates back.  mig_cache_put keeps the pages committed
  // (bounded) so a returning thread skips the commit/page-fault cycle —
  // the paper's §6 slot-cache idea on the migration path.
  for (auto [first, count] : runs) rt.mig_cache_put(first, count);
  rt.trace_event(trace::Event::kMigrationOut, 0, dest);
}

std::vector<std::pair<size_t, uint32_t>> payload_slot_runs(
    const uint8_t* payload, size_t len) {
  mad::UnpackBuffer unpack(payload, len);
  std::vector<std::pair<size_t, uint32_t>> runs;
  walk_payload(unpack, nullptr, [&](size_t first, uint32_t nslots) -> char* {
    runs.emplace_back(first, nslots);
    return nullptr;
  });
  return runs;
}

std::vector<std::pair<size_t, uint32_t>> payload_slot_runs(
    const std::vector<uint8_t>& payload) {
  return payload_slot_runs(payload.data(), payload.size());
}

marcel::Thread* install_thread(Runtime& rt, const uint8_t* payload,
                               size_t len) {
  mad::UnpackBuffer unpack(payload, len);
  uint64_t desc_addr = 0;
  walk_payload(unpack, &desc_addr,
               [&](size_t first, uint32_t nslots) -> char* {
    // Iso-address guarantee: these slot indices are free here (they are
    // owned by the migrating thread system-wide).  If the run sits in the
    // migration slot cache (the thread bounced through this node before),
    // the pages are already committed; stale bytes in the extent gaps are
    // dead data by construction (below-sp stack, free-block payloads).
    if (!rt.mig_cache_take(first, nslots)) rt.area().commit(first, nslots);
    // Whatever poison this address range carried locally (a previous
    // tenant's frames, a cached run of this very thread's earlier visit)
    // is stale: the installed extent must be fully addressable before the
    // first resume.
    char* run_base = reinterpret_cast<char*>(rt.area().slot_addr(first));
    sys::san_unpoison(run_base, size_t{nslots} * rt.area().slot_size());
    // The walker scatters each extent straight into the freshly committed
    // slots — the receive buffer is the only staging between wire and
    // iso-address memory.
    return run_base;
  });
  PM2_CHECK(unpack.exhausted()) << "trailing bytes in migration payload";

  auto* t = reinterpret_cast<marcel::Thread*>(desc_addr);
  PM2_CHECK(t->magic == marcel::Thread::kMagic)
      << "migration payload did not reconstruct a valid descriptor";
  PM2_CHECK(t->canary_ok()) << "migrated stack arrived corrupt";
  // Lazy invocation-pool eviction: a service thread that migrated here is
  // a foreign slot run — it exits through the ordinary release path, the
  // install side never parks it in the pool.
  t->flags &= ~marcel::Thread::kFlagService;
  // The descriptor's parked fake-stack handle references the *source*
  // kernel thread's ASan allocator: the first switch onto this foreign
  // stack must hand ASan a null handle instead.
  t->san_fake_stack = nullptr;
  rt.sched().adopt(t);
  PM2_TRACE << "installed thread " << t->id;
  return t;
}

marcel::Thread* install_thread(Runtime& rt,
                               const std::vector<uint8_t>& payload) {
  return install_thread(rt, payload.data(), payload.size());
}

}  // namespace pm2
