#include "pm2/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/serialize.hpp"
#include "pm2/api.hpp"
#include "pm2/migration.hpp"
#include "pm2/runtime.hpp"
#include "sys/vm.hpp"

namespace pm2 {

uint64_t binary_stamp() {
  // Address + leading code bytes of a reference function: both are fixed
  // across runs of the same non-PIE binary and differ across binaries.
  auto addr = reinterpret_cast<uint64_t>(&binary_stamp);
  uint64_t code = 0;
  std::memcpy(&code, reinterpret_cast<const void*>(&binary_stamp),
              sizeof(code));
  return addr ^ (code * 0x9E3779B97F4A7C15ull);
}

namespace {

/// Image = CheckpointHeader + migration payload.  The payload chain is
/// gathered once, straight from the thread's slot memory into the image
/// (no intermediate flat payload).
std::vector<uint8_t> wrap_image(Runtime& rt, mad::BufferChain chain) {
  CheckpointHeader h;
  h.area_base = rt.area().base();
  h.area_size = rt.area().size();
  h.slot_size = rt.area().slot_size();
  h.binary_stamp = binary_stamp();
  h.payload_len = chain.size();
  std::vector<uint8_t> image(sizeof(h) + chain.size());
  std::memcpy(image.data(), &h, sizeof(h));
  chain.gather(image.data() + sizeof(h));
  return image;
}

/// Zero-copy view of the migration payload inside `image` (valid while the
/// image lives).
std::pair<const uint8_t*, size_t> unwrap_image(
    Runtime& rt, const std::vector<uint8_t>& image) {
  ByteReader r(image);
  auto h = r.get<CheckpointHeader>();
  PM2_CHECK(h.magic == CheckpointHeader::kMagic) << "not a PM2 checkpoint";
  PM2_CHECK(h.binary_stamp == binary_stamp())
      << "checkpoint was taken by a different binary";
  PM2_CHECK(h.area_base == rt.area().base() &&
            h.area_size == rt.area().size() &&
            h.slot_size == rt.area().slot_size())
      << "iso-area geometry mismatch";
  PM2_CHECK(h.payload_len == r.remaining()) << "truncated checkpoint";
  return {r.view_bytes(h.payload_len), h.payload_len};
}

}  // namespace

std::vector<uint8_t> checkpoint_thread(Runtime& rt, marcel::ThreadId id) {
  // Gate the other workers across find+freeze: a READY target could be
  // stolen and dispatched between the two calls, turning a legitimate
  // checkpoint into a spurious "not READY" failure.
  rt.sched().pause_workers();
  marcel::Thread* t = rt.sched().find(id);
  PM2_CHECK(t != nullptr) << "checkpoint: no thread " << id << " here";
  // A demoted thread's descriptor (and everything the pack walk reads) is
  // PROT_NONE until its runs fault back in.
  rt.ensure_resident(t);
  PM2_CHECK(!t->is_pinned()) << "checkpoint: pinned thread";
  bool frozen = rt.sched().freeze(t);
  rt.sched().resume_workers();
  PM2_CHECK(frozen)
      << "checkpoint: thread must be READY (not running/blocked)";
  // Always pack whole-slot images: a restore may happen after the dead
  // stack/free payloads were recycled, and a self-contained image is worth
  // the bytes in a persistence format.
  mad::BufferChain chain = pack_thread_chain(rt, t, /*blocks_only=*/false);
  std::vector<uint8_t> image = wrap_image(rt, std::move(chain));
  // Thaw: put the thread back exactly as it was (same process, same
  // frames — keep_fiber so adopt resumes on the matching TSan fiber).
  rt.sched().forget(t, /*keep_fiber=*/true);
  rt.sched().adopt(t);
  return image;
}

bool checkpoint_self(Runtime& rt, std::vector<uint8_t>& out) {
  marcel::Thread* t = marcel::Scheduler::self();
  PM2_CHECK(t != nullptr) << "checkpoint_self outside a PM2 thread";
  PM2_CHECK(!t->is_pinned()) << "checkpoint_self: pinned thread";
  // Clear the restore marker *before* the image is taken: the image must
  // contain the cleared flag so a restored clone (which gets the flag set
  // by restore_thread after installation) is distinguishable.
  t->flags &= ~marcel::Thread::kFlagRestored;
  rt.sched().freeze_current_and([&rt, &out](marcel::Thread* frozen) {
    // Runs on the scheduler stack while the thread is quiescent.  Pack
    // first (the image captures `out` still untouched), then deliver.
    mad::BufferChain chain = pack_thread_chain(rt, frozen, false);
    out = wrap_image(rt, std::move(chain));
    // Thaw: freeze_current_and left the thread registered, so re-enter it
    // through forget+adopt (adopt also resets node-local links;
    // keep_fiber — same process, same frames).
    rt.sched().forget(frozen, /*keep_fiber=*/true);
    rt.sched().adopt(frozen);
  });
  // Both the original and a restored clone resume here.
  return (marcel::Scheduler::self()->flags & marcel::Thread::kFlagRestored) !=
         0;
}

marcel::ThreadId restore_thread(Runtime& rt,
                                const std::vector<uint8_t>& image) {
  auto [payload, payload_len] = unwrap_image(rt, image);

  // The image's slot ranges must be re-claimed from this node before the
  // install may commit them (they were released when the original thread
  // died — or never claimed, after a process restart).  A just-exited
  // original releases its slots in the exit reaper, which runs on the
  // exiting worker's scheduler stack — under SMP that reaper can still be
  // in flight when a restore races it off the exit signal, so a failed
  // claim gets a bounded grace window before it is treated as "original
  // still alive / foreign node".
  auto runs = payload_slot_runs(payload, payload_len);
  for (auto [first, count] : runs) {
    bool claimed = rt.acquire_slots_at(first, count);
    for (int spin = 0; !claimed && spin < 200; ++spin) {
      pm2_sleep_us(1000);
      claimed = rt.acquire_slots_at(first, count);
    }
    PM2_CHECK(claimed)
        << "restore: slot run [" << first << ", +" << count
        << ") is not free on this node (original thread still alive, or the "
           "slots belong to another node — restore on the owning node)";
  }

  // Scatter straight from the image into the re-claimed slots.
  marcel::Thread* t = install_thread(rt, payload, payload_len);
  t->flags |= marcel::Thread::kFlagRestored;
  return t->id;
}

void save_checkpoint(const std::string& path,
                     const std::vector<uint8_t>& image) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  PM2_CHECK(f.good()) << "cannot write " << path;
  f.write(reinterpret_cast<const char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
  PM2_CHECK(f.good()) << "short write to " << path;
}

namespace {

/// One thread's image for the store checkpoint.  `slots` are the chain's
/// slot headers (for the live-extent fallback); `runs` the matching
/// (first, count) pairs recorded in the directory.
void store_write_thread(Runtime& rt, iso::SlotStore* store, marcel::Thread* t,
                        const std::vector<iso::SlotHeader*>& slots,
                        const std::vector<iso::SlotRun>& runs,
                        bool incremental, StoreCheckpointStats& stats) {
  const size_t slot_size = rt.area().slot_size();
  const size_t ps = sys::page_size();
  for (size_t r = 0; r < runs.size(); ++r) {
    auto [first, count] = runs[r];
    const auto base = reinterpret_cast<uintptr_t>(slots[r]);
    const size_t len = size_t{count} * slot_size;
    if (!incremental) {
      stats.bytes_written += store->write_run(first, count);
      continue;
    }
    std::vector<uint8_t> dirty;
    if (sys::read_soft_dirty(base, len, dirty)) {
      // Kernel soft-dirty delta: write only the pages touched since the
      // last checkpoint's clear_refs baseline.
      size_t i = 0;
      while (i < dirty.size()) {
        if (dirty[i] == 0) {
          stats.bytes_skipped += ps;
          ++i;
          continue;
        }
        size_t j = i;
        while (j < dirty.size() && dirty[j] != 0) ++j;
        stats.bytes_written += store->write_range(base + i * ps, (j - i) * ps);
        i = j;
      }
    } else {
      // pagemap unavailable: rewrite the frozen thread's live extents (the
      // migration §6 walk) — dead stack and free-block payloads in the
      // file may go stale, which is exactly what makes them dead.
      uint64_t live = 0;
      for (auto [off, elen] : run_live_extents(rt, t, slots[r])) {
        stats.bytes_written += store->write_range(base + off, elen);
        live += elen;
      }
      stats.bytes_skipped += len - live;
    }
  }
}

}  // namespace

StoreCheckpointStats checkpoint_node_to_store(Runtime& rt) {
  iso::SlotStore* store = rt.slot_store();
  PM2_CHECK(store != nullptr) << "checkpoint_node_to_store: no slot store "
                                 "(set RuntimeConfig::slot_store_dir)";
  StoreCheckpointStats stats;
  const size_t slot_size = rt.area().slot_size();
  // clear_refs resets soft-dirty bits for the *whole process*, but a node
  // pauses only its own workers: with a second in-process Runtime running
  // its own incremental rounds, our clear would silently erase the dirty
  // bits its next delta depends on (and vice versa), leaving its store
  // file stale with no error.  Shared address space ⇒ full images only;
  // one-Runtime processes (the real crash-restart deployment) keep the
  // delta path.  The armed latch is left alone: bits keep accumulating,
  // so the baseline is again valid (conservatively superset) if the
  // process later returns to a single Runtime.
  const bool soft_dirty =
      sys::soft_dirty_supported() && Runtime::live_in_process() == 1;
  stats.incremental = soft_dirty && store->soft_dirty_armed();

  marcel::Thread* self = marcel::Scheduler::self();
  rt.sched().pause_workers();

  // Pass 1 under the pause: pick the checkpointable threads.  Demoted
  // threads must not have a single field read — their descriptor is
  // PROT_NONE — and need no I/O at all: the bytes written at demotion are
  // still exact (nothing could have touched the protected pages), so the
  // record made then *is* this round's checkpoint.
  std::vector<marcel::Thread*> targets;
  rt.sched().for_each([&](marcel::Thread* t) {
    std::vector<iso::SlotRun> druns;
    if (rt.demoted_info(t, nullptr, &druns)) {
      for (auto [first, count] : druns) {
        (void)first;
        stats.bytes_skipped += uint64_t{count} * slot_size;
      }
      ++stats.threads;
      return;
    }
    if (t == self || t->is_daemon()) return;
    if (t->state != marcel::ThreadState::kReady &&
        t->state != marcel::ThreadState::kFrozen) {
      PM2_WARN << "checkpoint_node_to_store: thread " << t->id << " is "
               << marcel::to_string(t->state) << "; not persisted";
      return;
    }
    targets.push_back(t);
  });

  for (marcel::Thread* t : targets) {
    // Quiesce READY targets exactly like a migration; frozen ones are
    // already quiescent and stay frozen afterwards.
    const bool was_ready = t->state == marcel::ThreadState::kReady;
    if (was_ready && !rt.sched().freeze(t)) {
      PM2_WARN << "checkpoint_node_to_store: cannot freeze thread " << t->id
               << "; not persisted";
      continue;
    }
    std::vector<iso::SlotHeader*> slots;
    std::vector<iso::SlotRun> runs;
    iso::ThreadHeap::for_each_slot(t->slot_list, [&](iso::SlotHeader* s) {
      slots.push_back(s);
      runs.emplace_back(rt.area().slot_of(s), s->nslots);
    });
    // A thread first seen this round gets a full image even in an
    // incremental round — the file has no base for it to diff against.
    const bool fresh = !store->has_record(t->id);
    if (store->record_thread(t->id, reinterpret_cast<uint64_t>(t), runs)) {
      store_write_thread(rt, store, t, slots, runs,
                         stats.incremental && !fresh, stats);
      store->seal_thread(t->id);
      ++stats.threads;
    }
    if (was_ready) rt.sched().unfreeze(t);
  }

  // Reset the dirty baseline: the file now mirrors memory, so the next
  // round only needs pages touched from here on.  If clear_refs fails the
  // latch disarms and the next round writes full images again.
  if (soft_dirty) store->set_soft_dirty_armed(sys::clear_soft_dirty());
  store->sync();
  rt.sched().resume_workers();
  return stats;
}

std::vector<marcel::ThreadId> restore_node_from_store(Runtime& rt) {
  iso::SlotStore* store = rt.slot_store();
  PM2_CHECK(store != nullptr && store->recovered())
      << "restore_node_from_store needs a store opened with "
         "RuntimeConfig::slot_store_recover = true";
  std::vector<marcel::ThreadId> restored;
  for (const auto& rec : store->recorded_threads()) {
    // Runtime construction pre-reserved the recorded runs of a recovered
    // store; take that reservation if it exists, else re-claim the runs
    // from this node's distribution.  All or nothing: a partial claim is
    // rolled back and the thread skipped.
    if (!rt.take_restore_reservation(rec.id)) {
      size_t claimed = 0;
      bool ok = true;
      for (auto [first, count] : rec.runs) {
        if (!rt.acquire_slots_at(first, count)) {
          ok = false;
          break;
        }
        ++claimed;
      }
      if (!ok) {
        for (size_t i = 0; i < claimed; ++i) {
          rt.release_slots(rec.runs[i].first, rec.runs[i].second);
        }
        PM2_WARN << "restore_node_from_store: slot runs of thread " << rec.id
                 << " are not free here; restore it on the owning node";
        continue;
      }
    }
    for (auto [first, count] : rec.runs) {
      rt.area().commit(first, count);
      store->read_run(first, count);
    }
    auto* t = reinterpret_cast<marcel::Thread*>(rec.desc_addr);
    PM2_CHECK(t->magic == marcel::Thread::kMagic)
        << "slot store record for thread " << rec.id
        << " did not reconstruct a valid descriptor";
    PM2_CHECK(t->canary_ok())
        << "restored stack arrived corrupt (thread " << rec.id << ")";
    // Same arrival hygiene as a migration install: never park a restored
    // shell in the pool, and never hand ASan a dead process's fake-stack.
    t->flags &= ~marcel::Thread::kFlagService;
    t->flags |= marcel::Thread::kFlagRestored;
    t->san_fake_stack = nullptr;
    // The restored id was minted by this node's previous incarnation —
    // keep the fresh counter from re-issuing it.
    rt.ensure_thread_id_floor(t->id);
    rt.sched().adopt(t);
    restored.push_back(t->id);
  }
  return restored;
}

std::vector<uint8_t> load_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  PM2_CHECK(f.good()) << "cannot read " << path;
  auto size = static_cast<size_t>(f.tellg());
  f.seekg(0);
  std::vector<uint8_t> image(size);
  f.read(reinterpret_cast<char*>(image.data()),
         static_cast<std::streamsize>(size));
  PM2_CHECK(f.good()) << "short read from " << path;
  return image;
}

}  // namespace pm2
