#include "pm2/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "common/check.hpp"
#include "common/serialize.hpp"
#include "pm2/migration.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {

uint64_t binary_stamp() {
  // Address + leading code bytes of a reference function: both are fixed
  // across runs of the same non-PIE binary and differ across binaries.
  auto addr = reinterpret_cast<uint64_t>(&binary_stamp);
  uint64_t code = 0;
  std::memcpy(&code, reinterpret_cast<const void*>(&binary_stamp),
              sizeof(code));
  return addr ^ (code * 0x9E3779B97F4A7C15ull);
}

namespace {

/// Image = CheckpointHeader + migration payload.  The payload chain is
/// gathered once, straight from the thread's slot memory into the image
/// (no intermediate flat payload).
std::vector<uint8_t> wrap_image(Runtime& rt, mad::BufferChain chain) {
  CheckpointHeader h;
  h.area_base = rt.area().base();
  h.area_size = rt.area().size();
  h.slot_size = rt.area().slot_size();
  h.binary_stamp = binary_stamp();
  h.payload_len = chain.size();
  std::vector<uint8_t> image(sizeof(h) + chain.size());
  std::memcpy(image.data(), &h, sizeof(h));
  chain.gather(image.data() + sizeof(h));
  return image;
}

/// Zero-copy view of the migration payload inside `image` (valid while the
/// image lives).
std::pair<const uint8_t*, size_t> unwrap_image(
    Runtime& rt, const std::vector<uint8_t>& image) {
  ByteReader r(image);
  auto h = r.get<CheckpointHeader>();
  PM2_CHECK(h.magic == CheckpointHeader::kMagic) << "not a PM2 checkpoint";
  PM2_CHECK(h.binary_stamp == binary_stamp())
      << "checkpoint was taken by a different binary";
  PM2_CHECK(h.area_base == rt.area().base() &&
            h.area_size == rt.area().size() &&
            h.slot_size == rt.area().slot_size())
      << "iso-area geometry mismatch";
  PM2_CHECK(h.payload_len == r.remaining()) << "truncated checkpoint";
  return {r.view_bytes(h.payload_len), h.payload_len};
}

}  // namespace

std::vector<uint8_t> checkpoint_thread(Runtime& rt, marcel::ThreadId id) {
  // Gate the other workers across find+freeze: a READY target could be
  // stolen and dispatched between the two calls, turning a legitimate
  // checkpoint into a spurious "not READY" failure.
  rt.sched().pause_workers();
  marcel::Thread* t = rt.sched().find(id);
  PM2_CHECK(t != nullptr) << "checkpoint: no thread " << id << " here";
  PM2_CHECK(!t->is_pinned()) << "checkpoint: pinned thread";
  bool frozen = rt.sched().freeze(t);
  rt.sched().resume_workers();
  PM2_CHECK(frozen)
      << "checkpoint: thread must be READY (not running/blocked)";
  // Always pack whole-slot images: a restore may happen after the dead
  // stack/free payloads were recycled, and a self-contained image is worth
  // the bytes in a persistence format.
  mad::BufferChain chain = pack_thread_chain(rt, t, /*blocks_only=*/false);
  std::vector<uint8_t> image = wrap_image(rt, std::move(chain));
  // Thaw: put the thread back exactly as it was.
  rt.sched().forget(t);
  rt.sched().adopt(t);
  return image;
}

bool checkpoint_self(Runtime& rt, std::vector<uint8_t>& out) {
  marcel::Thread* t = marcel::Scheduler::self();
  PM2_CHECK(t != nullptr) << "checkpoint_self outside a PM2 thread";
  PM2_CHECK(!t->is_pinned()) << "checkpoint_self: pinned thread";
  // Clear the restore marker *before* the image is taken: the image must
  // contain the cleared flag so a restored clone (which gets the flag set
  // by restore_thread after installation) is distinguishable.
  t->flags &= ~marcel::Thread::kFlagRestored;
  rt.sched().freeze_current_and([&rt, &out](marcel::Thread* frozen) {
    // Runs on the scheduler stack while the thread is quiescent.  Pack
    // first (the image captures `out` still untouched), then deliver.
    mad::BufferChain chain = pack_thread_chain(rt, frozen, false);
    out = wrap_image(rt, std::move(chain));
    // Thaw: freeze_current_and left the thread registered, so re-enter it
    // through forget+adopt (adopt also resets node-local links).
    rt.sched().forget(frozen);
    rt.sched().adopt(frozen);
  });
  // Both the original and a restored clone resume here.
  return (marcel::Scheduler::self()->flags & marcel::Thread::kFlagRestored) !=
         0;
}

marcel::ThreadId restore_thread(Runtime& rt,
                                const std::vector<uint8_t>& image) {
  auto [payload, payload_len] = unwrap_image(rt, image);

  // The image's slot ranges must be re-claimed from this node before the
  // install may commit them (they were released when the original thread
  // died — or never claimed, after a process restart).
  auto runs = payload_slot_runs(payload, payload_len);
  for (auto [first, count] : runs) {
    PM2_CHECK(rt.acquire_slots_at(first, count))
        << "restore: slot run [" << first << ", +" << count
        << ") is not free on this node (original thread still alive, or the "
           "slots belong to another node — restore on the owning node)";
  }

  // Scatter straight from the image into the re-claimed slots.
  marcel::Thread* t = install_thread(rt, payload, payload_len);
  t->flags |= marcel::Thread::kFlagRestored;
  return t->id;
}

void save_checkpoint(const std::string& path,
                     const std::vector<uint8_t>& image) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  PM2_CHECK(f.good()) << "cannot write " << path;
  f.write(reinterpret_cast<const char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
  PM2_CHECK(f.good()) << "short write to " << path;
}

std::vector<uint8_t> load_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  PM2_CHECK(f.good()) << "cannot read " << path;
  auto size = static_cast<size_t>(f.tellg());
  f.seekg(0);
  std::vector<uint8_t> image(size);
  f.read(reinterpret_cast<char*>(image.data()),
         static_cast<std::streamsize>(size));
  PM2_CHECK(f.good()) << "short read from " << path;
  return image;
}

}  // namespace pm2
