#include "pm2/runtime.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "fabric/fault_fabric.hpp"
#include "isomalloc/block.hpp"
#include "pm2/checkpoint.hpp"
#include "pm2/migration.hpp"
#include "sys/sanitizer.hpp"

namespace pm2 {

namespace {
thread_local Runtime* t_runtime = nullptr;

// Live Runtime instances in this process.  Kernel facilities with
// process-wide blast radius (clear_refs soft-dirty reset) are only safe to
// use when exactly one logical node owns the address space.
std::atomic<uint32_t> g_live_runtimes{0};

class RuntimeBinding {
 public:
  explicit RuntimeBinding(Runtime* rt) : prev_(t_runtime) { t_runtime = rt; }
  ~RuntimeBinding() { t_runtime = prev_; }

 private:
  Runtime* prev_;
};

// Fault-injection hook point: wrap the transport when a plan is configured
// (RuntimeConfig::fault_plan, else the PM2_FAULT_PLAN env var — the env
// path is what lets multiprocess tests inject into spawned node
// processes).  Runs in the fabric_ member initializer, before channels_
// captures the fabric reference.
std::unique_ptr<fabric::Fabric> wrap_runtime_fabric(
    const RuntimeConfig& config, std::unique_ptr<fabric::Fabric> inner) {
  fabric::FaultPlan plan = config.fault_plan.empty()
                               ? fabric::FaultPlan::from_env()
                               : fabric::FaultPlan::parse(config.fault_plan);
  return fabric::wrap_with_faults(std::move(inner), plan);
}
}  // namespace

Runtime* Runtime::current() { return t_runtime; }

uint32_t Runtime::live_in_process() {
  return g_live_runtimes.load(std::memory_order_acquire);
}

uint32_t RuntimeConfig::resolved_workers() const {
  uint32_t w = workers;
  if (w == 0) {
    // Auto: PM2_WORKERS if set (lets CI run whole suites multi-worker
    // without per-test edits), else the historical single-loop scheduler.
    const char* env = std::getenv("PM2_WORKERS");
    if (env != nullptr && *env != '\0') {
      long v = std::strtol(env, nullptr, 10);
      if (v > 0) w = static_cast<uint32_t>(v);
    }
    if (w == 0) w = 1;
  }
  // An explicit request (config or env) is honored even above the core
  // count — oversubscribed workers still exercise every multi-worker code
  // path, which is exactly what CI on small boxes needs.  Only a sanity
  // cap applies.
  constexpr uint32_t kMaxWorkers = 64;
  if (w > kMaxWorkers) w = kMaxWorkers;
  return w == 0 ? 1 : w;
}

uint64_t RuntimeConfig::resolved_rpc_timeout_ns() const {
  if (rpc_timeout_ns != 0) return rpc_timeout_ns;
  // Env override only fills in an *unset* default, so explicit configs win
  // and PM2_RPC_TIMEOUT_MS can arm whole multiprocess chaos runs at once.
  const char* env = std::getenv("PM2_RPC_TIMEOUT_MS");
  if (env != nullptr && *env != '\0') {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<uint64_t>(v) * 1'000'000ull;
  }
  return 0;
}

Runtime::Runtime(const RuntimeConfig& config, iso::Area& area,
                 std::unique_ptr<fabric::Fabric> fabric)
    : config_(config),
      area_(area),
      fabric_(wrap_runtime_fabric(config, std::move(fabric))),
      sched_(config.resolved_workers()),
      slot_mgr_(area, [&] {
        iso::SlotManagerConfig sc = config.slots;
        sc.node = config.node;
        sc.n_nodes = config.n_nodes;
        return sc;
      }()),
      load_table_(config.n_nodes, 0) {
  g_live_runtimes.fetch_add(1, std::memory_order_acq_rel);
  PM2_CHECK(fabric_ != nullptr);
  PM2_CHECK(fabric_->node_id() == config_.node &&
            fabric_->n_nodes() == config_.n_nodes)
      << "fabric/runtime node configuration mismatch";
  rpc_timeout_ns_ = config_.resolved_rpc_timeout_ns();
  // Peer-health slots exist only when the failure detector can run — a
  // null array keeps every legacy path (peer_seen, fail-fast checks) at a
  // single pointer test.
  if (config_.heartbeat_period_ns > 0 && config_.n_nodes > 1)
    peers_ = std::make_unique<PeerHealth[]>(config_.n_nodes);
  // Invocation-pool shards: one per scheduler worker, per-shard caps
  // summing to exactly invocation_pool (reap-side spill makes the whole
  // capacity reachable regardless of which workers do the reaping, and
  // the configured bound stays hard — workers == 1 keeps the exact
  // single-pool capacity).
  uint32_t nw = sched_.workers();
  pool_shards_.reserve(nw);
  for (uint32_t i = 0; i < nw; ++i) {
    auto shard = std::make_unique<PoolShard>();
    shard->cap = config_.invocation_pool / nw +
                 (i < config_.invocation_pool % nw ? 1 : 0);
    pool_shards_.push_back(std::move(shard));
  }
  if (!config_.slot_store_dir.empty()) {
    iso::SlotStoreConfig sc;
    sc.path = config_.slot_store_dir + "/node" +
              std::to_string(config_.node) + ".store";
    sc.recover = config_.slot_store_recover;
    store_ = std::make_unique<iso::SlotStore>(
        area_, sc, binary_stamp(), config_.node, config_.n_nodes);
    if (store_->recovered()) {
      // Fence off every recorded image before this node serves anything:
      // a pending RPC racing the restart would otherwise allocate a
      // service stack over a recorded thread's slots and make the restore
      // impossible.  restore_node_from_store() takes these reservations
      // instead of re-acquiring.
      for (const auto& rec : store_->recorded_threads()) {
        // Also fence the id space: a service thread spawned by that same
        // racing RPC must not mint a recorded thread's id before the
        // restore adopts it.
        ensure_thread_id_floor(rec.id);
        size_t claimed = 0;
        bool ok = true;
        for (auto [first, count] : rec.runs) {
          if (!acquire_slots_at(first, count)) {
            ok = false;
            break;
          }
          ++claimed;
        }
        if (!ok) {
          for (size_t i = 0; i < claimed; ++i) {
            release_slots(rec.runs[i].first, rec.runs[i].second);
          }
          PM2_WARN << "recovered store: slot runs of thread " << rec.id
                   << " are not locally free; left unreserved";
          continue;
        }
        restore_reserved_.insert(rec.id);
      }
    }
  }
}

Runtime::~Runtime() {
  drop_invocation_freelist();
  g_live_runtimes.fetch_sub(1, std::memory_order_acq_rel);
}

// ---------------------------------------------------------------------------
// Thread lifecycle
// ---------------------------------------------------------------------------

marcel::ThreadId Runtime::next_thread_id() {
  // Node id in the top bits keeps ids globally unique without coordination.
  return (static_cast<uint64_t>(config_.node) << 40) | ++thread_counter_;
}

marcel::Thread* Runtime::create_thread_in_slots(marcel::EntryFn fn, void* arg,
                                                const char* name,
                                                uint32_t flags,
                                                bool start_frozen) {
  std::optional<size_t> first;
  if (marcel::Scheduler::self() != nullptr) {
    first = acquire_slots_negotiating(config_.stack_slots);
  } else {
    // Bootstrap (comm daemon / main, created before the scheduler runs):
    // negotiation needs a running node, so the stack run must be locally
    // available.  stack_slots == 1 always is; multi-slot stacks require a
    // contiguity-friendly initial distribution.
    slot_lock_.lock();
    first = slot_mgr_.acquire(config_.stack_slots);
    slot_lock_.unlock();
    PM2_CHECK(first.has_value())
        << "initial slot distribution cannot host a " << config_.stack_slots
        << "-slot stack run locally; use block-cyclic/partitioned "
           "distribution (or stack_slots=1) so bootstrap threads need no "
           "negotiation";
    mig_cache_invalidate(*first, config_.stack_slots);
  }
  PM2_CHECK(first.has_value()) << "out of iso-address slots for thread stack";

  marcel::ThreadId id = next_thread_id();
  void* slot_base = area_.slot_addr(*first);
  iso::SlotHeader* sh = iso::init_stack_slot(
      slot_base, static_cast<uint32_t>(config_.stack_slots),
      area_.slot_size(), id);

  // Descriptor right after the slot header, 64-byte aligned; the stack
  // fills the rest of the run.
  auto region = (reinterpret_cast<uintptr_t>(slot_base) +
                 sizeof(iso::SlotHeader) + 63) &
                ~uintptr_t{63};
  size_t region_size = reinterpret_cast<uintptr_t>(slot_base) +
                       config_.stack_slots * area_.slot_size() - region;

  // Always create frozen: a ready thread is immediately stealable by any
  // worker, and the descriptor fields below must be in place before its
  // first dispatch reads them in thread_trampoline.  unfreeze() publishes:
  // push_ready's release-store of kReady (paired with the consumer's
  // acquire in claim) plus the Chase-Lev push/steal edge carry the
  // happens-before these writes need.
  marcel::Thread* t =
      sched_.create(reinterpret_cast<void*>(region), region_size,
                    &Runtime::thread_trampoline,
                    reinterpret_cast<void*>(region), id, name, flags,
                    /*start_frozen=*/true);
  t->user_fn = reinterpret_cast<void*>(fn);
  t->user_arg = arg;
  t->home_node = config_.node;
  t->slot_list = sh;
  if (!start_frozen) sched_.unfreeze(t);
  trace_event(trace::Event::kThreadCreate, id);
  return t;
}

void Runtime::thread_trampoline(void* descriptor) {
  auto* t = static_cast<marcel::Thread*>(descriptor);
  auto fn = reinterpret_cast<marcel::EntryFn>(t->user_fn);
  fn(t->user_arg);
  // The thread may have migrated inside fn(): resolve the runtime afresh.
  Runtime::current()->thread_exit();
}

marcel::ThreadId Runtime::spawn(marcel::EntryFn fn, void* arg,
                                const char* name) {
  sched_.maybe_preempt();
  return create_thread_in_slots(fn, arg, name, 0)->id;
}

struct Runtime::SpawnLocalCtx {
  std::function<void()> fn;
};

void Runtime::local_trampoline(void* p) {
  auto* ctx = static_cast<SpawnLocalCtx*>(p);
  ctx->fn();
  delete ctx;
  Runtime::current()->thread_exit();
}

marcel::ThreadId Runtime::spawn_local(std::function<void()> fn,
                                      const char* name) {
  auto* ctx = new SpawnLocalCtx{std::move(fn)};
  return create_thread_in_slots(&Runtime::local_trampoline, ctx, name,
                                marcel::Thread::kFlagPinned)
      ->id;
}

marcel::ThreadId Runtime::spawn_copy(marcel::EntryFn fn, const void* data,
                                     size_t len, const char* name) {
  sched_.maybe_preempt();
  // The newborn comes back frozen: the argument allocation below may
  // negotiate and park us, and the child must not run — or be stolen by
  // another worker — with its argument unset.
  marcel::Thread* t = create_thread_in_slots(fn, nullptr, name, 0,
                                             /*start_frozen=*/true);
  // Allocate the argument inside the new thread's heap: it now belongs to
  // the child and will follow it on migration / be reaped at exit.
  iso::ThreadHeap child_heap(&t->slot_list, t->id, slot_ops_, config_.heap,
                             &heap_stats_);
  void* arg = child_heap.alloc(len);
  if (arg == nullptr) {
    // Unwind the half-created thread instead of CHECK-failing with it
    // leaked: the frozen newborn never ran, so forget it and hand its
    // slots back, then report the failure the way isomalloc does.
    sched_.forget(t);
    iso::ThreadHeap::release_chain(
        static_cast<iso::SlotHeader*>(t->slot_list), slot_ops_);
    throw std::bad_alloc();
  }
  std::memcpy(arg, data, len);
  t->user_arg = arg;
  sched_.unfreeze(t);
  return t->id;
}

bool Runtime::join(marcel::ThreadId id) { return sched_.join(id); }

void Runtime::reap_thread(marcel::Thread* t) {
  trace_event(trace::Event::kThreadExit, t->id);
  // An exited thread's slots return to circulation, so a checkpoint record
  // naming them must not survive — a crash restart adopting it would claim
  // runs that may belong to someone else by then.
  if (store_ != nullptr) store_->erase_thread(t->id);
  // Runs on the scheduler stack: the thread is off its stack for good.
  // Its frames never unwound, so their redzone poison is still in shadow;
  // scrub it before the slots are recycled (the slot cache hands released
  // runs back without another commit).
  sys::san_unpoison(t->stack_base, t->stack_size());
  auto* head = static_cast<iso::SlotHeader*>(t->slot_list);
  if (!halting() && (t->flags & marcel::Thread::kFlagService) != 0 &&
      config_.invocation_pool > 0) {
    // Invocation pool: park the service thread — heap chain trimmed back
    // to the stack run — instead of releasing it.  The next dispatch
    // re-arms it without the slot acquire / init_stack_slot round trip.
    // The flag is cleared on migration install, so a foreign run never
    // lands here; the width check guards heterogeneous stack_slots.
    iso::SlotHeader* stack = iso::ThreadHeap::release_heap_runs(head, slot_ops_);
    if (stack->nslots == config_.stack_slots) {
      t->slot_list = stack;
      // TSD hygiene: a recycled invocation must observe pristine keys, and
      // the window starts at park, not at the next re-arm — audits and
      // debuggers walking the pool see no stale cross-call values either.
      std::memset(t->specific, 0, sizeof(t->specific));
      // Poison the parked stack whole: any write through a pointer that
      // outlived its invocation (classic use-after-return onto a recycled
      // service stack) is now a hard ASan report instead of silent
      // corruption of the next invocation.  rearm() lifts the poison.
      sys::san_poison(t->stack_base, t->stack_size());
      // Park into the reaping worker's own shard, spilling into peer
      // shards when it is full: reaping concentrates on whichever worker
      // the service threads ran on (often worker 0, next to the daemon),
      // and without the spill that skew would cut effective pool capacity
      // to one shard's share.  Only when *every* shard is full is the run
      // released (total capacity stays exactly invocation_pool).
      uint32_t me = marcel::Scheduler::current_worker();
      if (me == marcel::kNoWorker || me >= pool_shards_.size()) me = 0;
      bool parked = false;
      // Demotion-age stamp (see store_decay).  Relaxed: the decay prescan
      // may read it from another worker without a lock.
      t->cold_ns.store(now_ns(), std::memory_order_relaxed);
      for (size_t k = 0; k < pool_shards_.size() && !parked; ++k) {
        PoolShard& shard = *pool_shards_[(me + k) % pool_shards_.size()];
        shard.lock.lock();
        if (shard.entries.size() < shard.cap) {
          shard.entries.push_back(PoolEntry{t, now_ns()});
          parked = true;
        }
        shard.lock.unlock();
      }
      if (parked) return;
      sys::san_unpoison(t->stack_base, t->stack_size());
    }
    iso::ThreadHeap::release_chain(stack, slot_ops_);
    return;
  }
  // Release every slot run it owned to this node (paper Fig. 6 step 4 —
  // "the thread dies and its slots are acquired by the destination node").
  iso::ThreadHeap::release_chain(head, slot_ops_);
  // `t` itself lived inside the chain's stack slot: gone now.
}

void Runtime::thread_exit() {
  sched_.exit_current([this](marcel::Thread* t) { reap_thread(t); });
}

marcel::Thread* Runtime::spawn_service_thread(marcel::EntryFn fn, void* arg,
                                              const char* name,
                                              uint32_t flags) {
  flags |= marcel::Thread::kFlagService;
  // Pop from our own shard first (uncontended in steady state), then scan
  // the peers — a reply-heavy worker may drain faster than it reaps.
  marcel::Thread* t = nullptr;
  if (!pool_shards_.empty()) {
    uint32_t me = marcel::Scheduler::current_worker();
    if (me == marcel::kNoWorker || me >= pool_shards_.size()) me = 0;
    uint32_t n = static_cast<uint32_t>(pool_shards_.size());
    for (uint32_t k = 0; k < n && t == nullptr; ++k) {
      PoolShard& shard = *pool_shards_[(me + k) % n];
      shard.lock.lock();
      if (!shard.entries.empty()) {
        t = shard.entries.back().thread;
        shard.entries.pop_back();
      }
      shard.lock.unlock();
    }
  }
  if (t != nullptr) {
    ++pool_hits_;
    // A demoted parked thread must be byte-identical in RAM before rearm()
    // rebuilds its context (rearm reads the descriptor and unpoisons the
    // stack — both live in the demoted run).
    ensure_resident(t);
    marcel::ThreadId id = next_thread_id();
    // The slot header's owner id is diagnostics; keep it in step with the
    // recycled identity.
    static_cast<iso::SlotHeader*>(t->slot_list)->owner_thread = id;
    // Rearm frozen, publish after the descriptor is complete (same
    // stealable-before-initialized hazard as create_thread_in_slots;
    // unfreeze()'s release-store of kReady is the publication the
    // stealing worker acquires before reading user_fn/user_arg).
    sched_.rearm(t, &Runtime::thread_trampoline, t, id, name, flags,
                 /*start_frozen=*/true);
    t->user_fn = reinterpret_cast<void*>(fn);
    t->user_arg = arg;
    t->home_node = config_.node;
    sched_.unfreeze(t);
    trace_event(trace::Event::kThreadCreate, id);
    return t;
  }
  ++pool_misses_;
  return create_thread_in_slots(fn, arg, name, flags);
}

void Runtime::pool_release_entry(marcel::Thread* t) {
  ++pool_evictions_;
  // Releasing walks the slot chain, so a demoted entry comes back first.
  ensure_resident(t);
  // Lift the park poison: the slot run re-enters general circulation (heap
  // slots, fresh stacks) and must be addressable for its next tenant.
  sys::san_unpoison(t->stack_base, t->stack_size());
  iso::ThreadHeap::release_chain(static_cast<iso::SlotHeader*>(t->slot_list),
                                 slot_ops_);
}

void Runtime::pool_decay(uint64_t now) {
  if (config_.invocation_pool_decay_us == 0) return;
  uint64_t horizon = config_.invocation_pool_decay_us * 1000;
  for (auto& shard_ptr : pool_shards_) {
    PoolShard& shard = *shard_ptr;
    // LIFO vector: park times are monotone per shard, the oldest entries
    // sit at the front (reuse pops from the back).  Collect the victims
    // under the lock, release their slots outside it (release takes
    // slot_lock_ and may decommit).
    std::vector<marcel::Thread*> victims;
    shard.lock.lock();
    size_t n = 0;
    while (n < shard.entries.size() &&
           now - shard.entries[n].parked_ns > horizon)
      ++n;
    if (n > 0) {
      victims.reserve(n);
      for (size_t i = 0; i < n; ++i)
        victims.push_back(shard.entries[i].thread);
      shard.entries.erase(shard.entries.begin(),
                          shard.entries.begin() +
                              static_cast<std::ptrdiff_t>(n));
    }
    shard.lock.unlock();
    for (marcel::Thread* t : victims) pool_release_entry(t);
  }
}

void Runtime::pool_drain() {
  for (auto& shard_ptr : pool_shards_) {
    PoolShard& shard = *shard_ptr;
    std::vector<PoolEntry> drained;
    shard.lock.lock();
    drained.swap(shard.entries);
    shard.lock.unlock();
    for (const PoolEntry& e : drained) pool_release_entry(e.thread);
  }
}

size_t Runtime::pool_size() const {
  size_t n = 0;
  for (const auto& shard_ptr : pool_shards_) {
    sys::SpinGuard g(shard_ptr->lock);
    n += shard_ptr->entries.size();
  }
  return n;
}

void Runtime::for_each_parked(
    const std::function<void(marcel::Thread*)>& fn) const {
  // Audit-time walk: callers pause the scheduler workers first, so holding
  // each shard lock across the visit is uncontended and keeps the snapshot
  // coherent.
  for (const auto& shard_ptr : pool_shards_) {
    sys::SpinGuard g(shard_ptr->lock);
    for (const PoolEntry& e : shard_ptr->entries) fn(e.thread);
  }
}

// ---------------------------------------------------------------------------
// Slot store: buffer-managed slot residency
// ---------------------------------------------------------------------------

bool Runtime::demote_locked(marcel::Thread* t, bool parked) {
  std::vector<iso::SlotRun> runs;
  size_t bytes = 0;
  iso::ThreadHeap::for_each_slot(t->slot_list, [&](iso::SlotHeader* s) {
    runs.emplace_back(area_.slot_of(s), s->nslots);
    bytes += size_t{s->nslots} * area_.slot_size();
  });
  marcel::ThreadId id = t->id;
  // Frozen threads get a directory record too: their file image is a
  // complete, current checkpoint (PROT_NONE pages cannot go stale), so a
  // crash restart adopts them for free.  Parked pool shells are dead
  // invocations — their bytes back the fault-back path only, never a
  // restart.
  if (!parked && store_->record_thread(id, reinterpret_cast<uint64_t>(t),
                                       runs) == false) {
    return false;  // too many runs for the directory: stays resident
  }
  if (runs.size() > iso::StoreDirEntry::kMaxRuns) return false;
  for (const iso::SlotRun& r : runs) store_->demote(r.first, r.second);
  if (!parked) store_->seal_thread(id);
  store_lock_.lock();
  demoted_.emplace(t, DemotedRec{id, std::move(runs), bytes, parked});
  store_lock_.unlock();
  demoted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  demotions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Runtime::ensure_resident(marcel::Thread* t) {
  if (store_ == nullptr) return;
  store_lock_.lock();
  auto it = demoted_.find(t);
  if (it == demoted_.end()) {
    store_lock_.unlock();
    return;
  }
  DemotedRec rec = std::move(it->second);
  demoted_.erase(it);
  // The fault-back I/O completes under the lock: a second resumer (or the
  // audit walking inventories) must never observe the record gone while
  // the bytes are still on their way in.
  for (const iso::SlotRun& r : rec.runs) store_->fault_back(r.first, r.second);
  if (rec.parked) {
    // Re-establish the park poison the demotion round trip scrubbed: a
    // parked stack stays a use-after-return tripwire until rearm().
    sys::san_poison(t->stack_base, t->stack_size());
  }
  store_lock_.unlock();
  demoted_bytes_.fetch_sub(rec.bytes, std::memory_order_relaxed);
  fault_backs_.fetch_add(1, std::memory_order_relaxed);
}

bool Runtime::thread_demoted(marcel::ThreadId id) const {
  sys::SpinGuard g(store_lock_);
  for (const auto& kv : demoted_) {
    if (kv.second.id == id) return true;
  }
  return false;
}

bool Runtime::demoted_runs(marcel::ThreadId id,
                           std::vector<iso::SlotRun>* out) const {
  sys::SpinGuard g(store_lock_);
  for (const auto& kv : demoted_) {
    if (kv.second.id == id) {
      if (out != nullptr) *out = kv.second.runs;
      return true;
    }
  }
  return false;
}

bool Runtime::demoted_info(marcel::Thread* t, marcel::ThreadId* id,
                           std::vector<iso::SlotRun>* runs) const {
  sys::SpinGuard g(store_lock_);
  auto it = demoted_.find(t);
  if (it == demoted_.end()) return false;
  if (id != nullptr) *id = it->second.id;
  if (runs != nullptr) *runs = it->second.runs;
  return true;
}

size_t Runtime::demoted_count() const {
  sys::SpinGuard g(store_lock_);
  return demoted_.size();
}

bool Runtime::freeze_thread(marcel::ThreadId id) {
  sched_.pause_workers();
  marcel::Thread* t = sched_.find(id);
  // A demoted thread is already frozen (and its descriptor is PROT_NONE):
  // refuse before any field access.
  bool ok = t != nullptr && t != marcel::Scheduler::self() &&
            !thread_demoted(id) && sched_.freeze(t);
  sched_.resume_workers();
  return ok;
}

bool Runtime::unfreeze_thread(marcel::ThreadId id) {
  sched_.pause_workers();
  marcel::Thread* t = sched_.find(id);
  bool ok = t != nullptr;
  if (ok) {
    ensure_resident(t);
    ok = t->state == marcel::ThreadState::kFrozen;
    if (ok) sched_.unfreeze(t);
  }
  sched_.resume_workers();
  return ok;
}

bool Runtime::demote_thread(marcel::ThreadId id) {
  if (store_ == nullptr) return false;
  sched_.pause_workers();
  marcel::Thread* t = sched_.find(id);
  bool ok = t != nullptr && !thread_demoted(id) &&
            t->state == marcel::ThreadState::kFrozen;
  if (ok) ok = demote_locked(t, /*parked=*/false);
  sched_.resume_workers();
  return ok;
}

void Runtime::store_decay(uint64_t now) {
  if (store_ == nullptr || config_.slot_store_budget == SIZE_MAX) return;
  const uint64_t horizon = config_.slot_store_decay_us * 1000;
  // Cheap racy pre-scan (no pause): is any cold thread past the horizon
  // and still resident?  Reads only age stamps and the demoted map — never
  // a demoted thread's (PROT_NONE) descriptor, because demoted threads are
  // filtered by pointer before any field access.
  bool candidates = false;
  auto prescan = [&](marcel::Thread* t, bool parked) {
    if (candidates) return;
    store_lock_.lock();
    bool demoted = demoted_.count(t) > 0;
    store_lock_.unlock();
    if (demoted) return;
    // Registered threads must be frozen to qualify; parked pool shells
    // (kDead) are cold by construction.
    if (!parked && t->state != marcel::ThreadState::kFrozen) return;
    if (now - t->cold_ns.load(std::memory_order_relaxed) >= horizon)
      candidates = true;
  };
  sched_.for_each([&](marcel::Thread* t) { prescan(t, false); });
  if (!candidates) {
    for_each_parked([&](marcel::Thread* t) { prescan(t, true); });
  }
  if (!candidates) return;

  // Authoritative pass under the worker pause: no unfreeze/re-arm/pack can
  // race the page-out.
  sched_.pause_workers();
  struct Cand {
    marcel::Thread* t;
    uint64_t cold_ns;
    bool parked;
  };
  std::vector<Cand> cold;
  size_t resident_cold = 0;
  auto consider = [&](marcel::Thread* t, bool parked) {
    store_lock_.lock();
    bool demoted = demoted_.count(t) > 0;
    store_lock_.unlock();
    if (demoted) return;  // already paid for
    if (!parked && t->state != marcel::ThreadState::kFrozen) return;
    size_t bytes = 0;
    iso::ThreadHeap::for_each_slot(t->slot_list, [&](iso::SlotHeader* s) {
      bytes += size_t{s->nslots} * area_.slot_size();
    });
    resident_cold += bytes;
    cold.push_back(Cand{t, t->cold_ns.load(std::memory_order_relaxed), parked});
  };
  sched_.for_each([&](marcel::Thread* t) { consider(t, false); });
  for_each_parked([&](marcel::Thread* t) { consider(t, true); });
  // Coldest first: stable eviction order a test can pin down.
  std::sort(cold.begin(), cold.end(),
            [](const Cand& a, const Cand& b) { return a.cold_ns < b.cold_ns; });
  for (const Cand& c : cold) {
    if (resident_cold <= config_.slot_store_budget) break;
    if (now - c.cold_ns < horizon) break;  // sorted: the rest are younger
    size_t before = demoted_bytes_.load(std::memory_order_relaxed);
    if (demote_locked(c.t, c.parked)) {
      resident_cold -=
          demoted_bytes_.load(std::memory_order_relaxed) - before;
    }
  }
  sched_.resume_workers();
}

bool Runtime::take_restore_reservation(uint64_t id) {
  sys::SpinGuard g(store_lock_);
  return restore_reserved_.erase(id) != 0;
}

void Runtime::ensure_thread_id_floor(marcel::ThreadId id) {
  if ((id >> 40) != config_.node) return;  // minted elsewhere: no clash
  uint64_t seq = id & ((uint64_t{1} << 40) - 1);
  uint64_t cur = thread_counter_.load(std::memory_order_relaxed);
  while (cur < seq &&
         !thread_counter_.compare_exchange_weak(cur, seq,
                                                std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// isomalloc API
// ---------------------------------------------------------------------------

void* Runtime::isomalloc(size_t size) {
  sched_.maybe_preempt();
  marcel::Thread* t = marcel::Scheduler::self();
  PM2_CHECK(t != nullptr) << "pm2_isomalloc outside a PM2 thread";
  iso::ThreadHeap heap(&t->slot_list, t->id, slot_ops_, config_.heap,
                       &heap_stats_);
  void* p = heap.alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void Runtime::isofree(void* p) {
  sched_.maybe_preempt();
  if (p == nullptr) return;
  marcel::Thread* t = marcel::Scheduler::self();
  PM2_CHECK(t != nullptr) << "pm2_isofree outside a PM2 thread";
  // Blocks belong to exactly one thread (paper §1: data "belong to some
  // unique thread and thus have to follow it on migration").  Freeing
  // another thread's block would corrupt that thread's slot list — and the
  // pointer would dangle anyway the moment the owner migrates.  Use
  // spawn_copy() to hand data to a child thread instead.
  iso::SlotHeader* slot = iso::BlockHeader::of_payload(p)->slot;
  PM2_CHECK(slot->valid() && slot->owner_thread == t->id)
      << "pm2_isofree: block belongs to thread " << slot->owner_thread
      << ", not to the calling thread " << t->id;
  iso::ThreadHeap heap(&t->slot_list, t->id, slot_ops_, config_.heap,
                       &heap_stats_);
  heap.free(p);
}

void* Runtime::isorealloc(void* p, size_t size) {
  marcel::Thread* t = marcel::Scheduler::self();
  PM2_CHECK(t != nullptr) << "pm2_isorealloc outside a PM2 thread";
  iso::ThreadHeap heap(&t->slot_list, t->id, slot_ops_, config_.heap,
                       &heap_stats_);
  return heap.realloc(p, size);
}

void* Runtime::isocalloc(size_t n, size_t elem_size) {
  sched_.maybe_preempt();
  marcel::Thread* t = marcel::Scheduler::self();
  PM2_CHECK(t != nullptr) << "pm2_isocalloc outside a PM2 thread";
  iso::ThreadHeap heap(&t->slot_list, t->id, slot_ops_, config_.heap,
                       &heap_stats_);
  void* p = heap.calloc(n, elem_size);
  if (p == nullptr && n != 0 && elem_size != 0) throw std::bad_alloc();
  return p;
}

void* Runtime::isomemalign(size_t align, size_t size) {
  sched_.maybe_preempt();
  marcel::Thread* t = marcel::Scheduler::self();
  PM2_CHECK(t != nullptr) << "pm2_isomemalign outside a PM2 thread";
  iso::ThreadHeap heap(&t->slot_list, t->id, slot_ops_, config_.heap,
                       &heap_stats_);
  void* p = heap.alloc_aligned(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

std::optional<size_t> Runtime::acquire_slots_negotiating(size_t count) {
  marcel::Thread* t = marcel::Scheduler::self();
  slot_lock_.lock();
  // Wait out any negotiation currently freezing the bitmap (only possible
  // from a thread context; the comm daemon never acquires slots).  The
  // park happens under slot_lock_ (embedded WaitQueue mode), so no
  // unfreeze can slip between the test and the park.
  while (bitmap_freeze_ > 0) {
    PM2_CHECK(t != nullptr) << "slot acquire on frozen bitmap outside thread";
    bitmap_wait_.park_current(slot_lock_);
    slot_lock_.lock();
  }
  std::optional<size_t> s = slot_mgr_.acquire(count);
  slot_lock_.unlock();
  if (!s && config_.n_nodes > 1) s = negotiate(count);
  // Slots re-entering local ownership must leave the migration cache (the
  // cached commit is now owned by the new user; never decommit it later).
  if (s) mig_cache_invalidate(*s, count);
  return s;
}

bool Runtime::acquire_slots_at(size_t first, size_t count) {
  marcel::Thread* t = marcel::Scheduler::self();
  slot_lock_.lock();
  while (bitmap_freeze_ > 0) {
    PM2_CHECK(t != nullptr) << "slot acquire on frozen bitmap outside thread";
    bitmap_wait_.park_current(slot_lock_);
    slot_lock_.lock();
  }
  bool ok = slot_mgr_.acquire_at(first, count);
  slot_lock_.unlock();
  if (ok) mig_cache_invalidate(first, count);
  return ok;
}

void Runtime::release_slots(size_t first, size_t count) {
  sys::SpinGuard g(slot_lock_);
  if (bitmap_freeze_ > 0) {
    // The bitmap is inside someone's system-wide critical section; the
    // release mutates only *our* view, but the paper's rule is strict
    // ("No other node is allowed to modify its slot bitmap within this
    // section"), so defer it.  Thread-owned slots are invisible to the
    // negotiation either way, hence no correctness impact.
    deferred_releases_.emplace_back(first, count);
    return;
  }
  slot_mgr_.release(first, count);
}

// ---------------------------------------------------------------------------
// Migration entry points (heavy lifting in migration.cpp)
// ---------------------------------------------------------------------------

void Runtime::migrate_self(uint32_t dest) {
  sched_.maybe_preempt();
  PM2_CHECK(dest < config_.n_nodes) << "migrate to unknown node " << dest;
  if (dest == config_.node) return;
  marcel::Thread* t = marcel::Scheduler::self();
  PM2_CHECK(t != nullptr) << "pm2_migrate outside a PM2 thread";
  PM2_CHECK(!t->is_pinned()) << "pinned thread cannot migrate";
  ++migrations_out_;
  sched_.freeze_current_and(
      [this, dest](marcel::Thread* frozen) { ship_thread(*this, frozen, dest); });
  // Executing on `dest` now (different Runtime/Scheduler instance):
  // deliberately no member access past this point.
}

bool Runtime::migrate(marcel::ThreadId id, uint32_t dest) {
  PM2_CHECK(dest < config_.n_nodes);
  marcel::Thread* t = sched_.find(id);
  if (t == nullptr) return false;
  // A demoted thread's descriptor is PROT_NONE: fault it back before any
  // field access.  (Registry + demoted ⇒ frozen, so this is the
  // freeze → demote → migrate tier cycle; the pack below reads the runs.)
  ensure_resident(t);
  if (t->is_pinned()) return false;
  if (dest == config_.node) return true;  // already there
  if (t == marcel::Scheduler::self()) {
    migrate_self(dest);
    return true;
  }
  if (t->state != marcel::ThreadState::kFrozen &&  // caller-frozen: ship as is
      !sched_.freeze(t)) {
    return false;  // running or blocked
  }
  ++migrations_out_;
  ship_thread(*this, t, dest);
  return true;
}

marcel::Future<MigrateResult> Runtime::migrate_async(marcel::ThreadId id,
                                                     uint32_t dest,
                                                     uint64_t timeout_ns) {
  marcel::Promise<MigrateResult> promise;
  marcel::Future<MigrateResult> fut = promise.future();
  PM2_CHECK(dest < config_.n_nodes) << "migrate to unknown node " << dest;
  if (halting()) {
    promise.set_error("session halting");
    return fut;
  }
  if (peer_down(dest)) {
    promise.set_error(std::string(kRpcPeerDownPrefix) + ": node " +
                      std::to_string(dest) + " is down");
    return fut;
  }
  marcel::Thread* t = sched_.find(id);
  if (t == nullptr) {
    promise.set_error("no such thread on this node");
    return fut;
  }
  ensure_resident(t);  // demoted descriptor is PROT_NONE until faulted back
  if (dest == config_.node) {
    promise.set_value(MigrateResult{id, dest});  // already there
    return fut;
  }
  if (t == marcel::Scheduler::self()) {
    promise.set_error("migrate_async cannot move the caller; use migrate_self");
    return fut;
  }
  if (t->is_pinned() ||
      (t->state != marcel::ThreadState::kFrozen && !sched_.freeze(t))) {
    promise.set_error("thread not migratable (pinned, running, or blocked)");
    return fut;
  }
  uint64_t deadline = resolve_deadline(timeout_ns);
  // Rollback state: the runs (recorded while the thread is still resident
  // and ours) let a timeout / peer-down sweep reclaim the cached pages and
  // adopt the descriptor back.
  std::vector<std::pair<size_t, size_t>> runs;
  if (deadline != 0 || peers_ != nullptr) {
    iso::ThreadHeap::for_each_slot(t->slot_list, [&](iso::SlotHeader* slot) {
      runs.emplace_back(area_.slot_of(slot), slot->nslots);
    });
  }
  uint64_t corr = next_corr_.fetch_add(1, std::memory_order_relaxed);
  pending_lock_.lock();
  if (halting()) {
    // halt()'s drain already swept the map; registering now would hang the
    // future forever.  Re-freeze nothing — fail fast like the check above.
    pending_lock_.unlock();
    sched_.unfreeze(t);
    promise.set_error("session halting");
    return fut;
  }
  pending_migrations_.emplace(
      corr, PendingMigration{std::move(promise), dest, deadline, t, id,
                             std::move(runs), /*shipped=*/false});
  pending_lock_.unlock();
  ++migrations_out_;
  ship_thread(*this, t, dest, corr);
  // Only now — with the pack sent and the descriptor forgotten — may the
  // failure paths roll this migration back: arm the deadline and, if the
  // destination went down while we were shipping (its sweep skipped the
  // unshipped entry), fail it ourselves.
  std::optional<PendingMigration> lost;
  pending_lock_.lock();
  if (auto it = pending_migrations_.find(corr);
      it != pending_migrations_.end()) {  // ack may already have landed
    it->second.shipped = true;
    if (peer_down(dest)) {
      lost = std::move(it->second);
      pending_migrations_.erase(it);
      tombstone_locked(corr);
    } else if (deadline != 0) {
      arm_deadline_locked(corr, deadline, /*migration=*/true);
    }
  }
  pending_lock_.unlock();
  if (lost) {
    peer_down_failures_.fetch_add(1, std::memory_order_relaxed);
    rollback_migration(std::move(*lost),
                       std::string(kRpcPeerDownPrefix) + ": node " +
                           std::to_string(dest) + " unreachable");
  }
  return fut;
}

// ---------------------------------------------------------------------------
// RPC
// ---------------------------------------------------------------------------

uint32_t Runtime::service_raw(const char* name, ServiceHandler fn) {
  PM2_CHECK(name != nullptr && fn != nullptr);
  return register_service_handler(name, std::move(fn));
}

uint32_t Runtime::register_service_handler(const char* name, ServiceHandler fn,
                                           uint32_t thread_flags) {
  PM2_CHECK(name != nullptr && fn != nullptr);
  uint32_t id = service_id(name);
  auto [entry, inserted] =
      services_.try_emplace(id, ServiceEntry{name, std::move(fn), thread_flags});
  if (!inserted) {
    PM2_CHECK(entry->name == name)
        << "FNV-1a service-name collision: \"" << entry->name << "\" and \""
        << name << "\" both hash to " << id << " — rename one of them";
    PM2_FATAL("service \"" + std::string(name) + "\" registered twice");
  }
  return id;
}

struct Runtime::RpcInvocation {
  const ServiceEntry* entry;  // resolved once at dispatch
  uint32_t src;
  uint64_t corr;
  std::vector<uint8_t> args;
  size_t args_offset;
};

void Runtime::drop_invocation_freelist() {
  sys::SpinGuard g(inv_lock_);
  for (RpcInvocation* inv : inv_free_) delete inv;
  inv_free_.clear();
}

void Runtime::recycle_invocation(RpcInvocation* inv) {
  constexpr size_t kFreeListCap = 64;
  inv->args.clear();
  inv_lock_.lock();
  if (inv_free_.size() < kFreeListCap) {
    inv_free_.push_back(inv);
    inv_lock_.unlock();
    return;
  }
  inv_lock_.unlock();
  delete inv;
}

void Runtime::rpc_trampoline(void* p) {
  auto* inv = static_cast<RpcInvocation*>(p);
  {
    RpcContext ctx(*Runtime::current(), inv->src, inv->corr,
                   std::move(inv->args), inv->args_offset);
    try {
      inv->entry->fn(ctx);
    } catch (const std::exception& e) {
      // A handler must never unwind off the top of its context (that is
      // std::terminate).  Typical case: a nested blocking call<R>() threw
      // RpcError because the session halted or the target service is
      // unknown — propagate the failure to our own caller instead.
      ctx.fail(e.what());
    }
  }
  // The service may have migrated: re-resolve (in-process nodes share the
  // libc heap, so the box recycles safely into the current node's list).
  Runtime* rt = Runtime::current();
  rt->recycle_invocation(inv);
  rt->thread_exit();
}

namespace {
/// kRpc wire payload: a staged service hash spliced ahead of the caller's
/// argument chain — borrowed pack regions go to the wire from the caller's
/// memory, never flattened here.
mad::BufferChain rpc_chain(uint32_t service, mad::PackBuffer&& args) {
  mad::PackBuffer head;
  head.pack<uint32_t>(service);
  mad::BufferChain chain = head.take_chain();
  chain.append_chain(args.take_chain());
  return chain;
}
}  // namespace

void Runtime::dispatch_rpc(uint32_t service, uint32_t src, uint64_t corr,
                           std::vector<uint8_t>&& args, size_t args_offset) {
  // Lock-free lookup: the service table is grow-only (registration is
  // setup-phase and permanent) and StripedMap node addresses are stable,
  // so find_fast's acquire-walk is sound and the pointer stays valid for
  // the invocation's whole lifetime.
  const ServiceEntry* entry = services_.find_fast(service);
  if (entry == nullptr) {
    // Name-keyed sessions are heterogeneous: the caller cannot know what a
    // peer registered, so a request expecting a reply gets an error back
    // (failing the caller's future) instead of killing this node.
    if (corr != 0) {
      std::string why = "unknown service hash " + std::to_string(service) +
                        " on node " + std::to_string(config_.node);
      if (src == config_.node) {
        fail_pending(corr, std::move(why), "local unknown-service");
      } else {
        fabric::Message msg;
        msg.type = kReplyError;
        msg.dst = src;
        msg.corr = corr;
        ByteWriter w;
        w.put_string(why);
        msg.payload = w.take();
        fabric_send(std::move(msg));
      }
      return;
    }
    // Fire-and-forget: a *local* miss is this node's own bug — fail fast.
    // A remote miss must not kill an innocent node on peer input (nodes
    // legitimately register different service subsets): drop and log.
    PM2_CHECK(src != config_.node)
        << "fire-and-forget rpc to unknown local service hash " << service;
    PM2_WARN << "dropping rpc from node " << src
             << " to unknown service hash " << service;
    return;
  }
  trace_event(trace::Event::kRpcIn, service, src);
  RpcInvocation* inv = nullptr;
  inv_lock_.lock();
  if (!inv_free_.empty()) {
    inv = inv_free_.back();
    inv_free_.pop_back();
  }
  inv_lock_.unlock();
  if (inv == nullptr) inv = new RpcInvocation{};
  inv->entry = entry;
  inv->src = src;
  inv->corr = corr;
  inv->args = std::move(args);
  inv->args_offset = args_offset;
  spawn_service_thread(&Runtime::rpc_trampoline, inv, entry->name.c_str(),
                       entry->thread_flags);
}

void Runtime::rpc_hash(uint32_t node, uint32_t service,
                       mad::PackBuffer&& args) {
  PM2_CHECK(node < config_.n_nodes);
  if (node == config_.node) {
    dispatch_rpc(service, config_.node, 0, args.finalize(), 0);
    return;
  }
  fabric::Message msg;
  msg.type = kRpc;
  msg.dst = node;
  msg.chain = rpc_chain(service, std::move(args));
  fabric_send(std::move(msg));
}

void Runtime::rpc_framed(uint32_t node, uint32_t service,
                         mad::PackBuffer&& framed) {
  PM2_CHECK(node < config_.n_nodes);
  if (node == config_.node) {
    // The buffer starts with the u32 service hash: skip it by offset.
    dispatch_rpc(service, config_.node, 0, framed.finalize(),
                 sizeof(uint32_t));
    return;
  }
  fabric::Message msg;
  msg.type = kRpc;
  msg.dst = node;
  msg.chain = framed.take_chain();
  fabric_send(std::move(msg));
}

marcel::Future<std::vector<uint8_t>> Runtime::call_async_hash(
    uint32_t node, uint32_t service, mad::PackBuffer&& args,
    uint64_t timeout_ns) {
  PM2_CHECK(node < config_.n_nodes);
  if (halting()) {
    marcel::Promise<std::vector<uint8_t>> p;
    p.set_error("session halting");
    return p.future();
  }
  if (node != config_.node && peer_down(node)) {
    marcel::Promise<std::vector<uint8_t>> p;
    p.set_error(std::string(kRpcPeerDownPrefix) + ": node " +
                std::to_string(node) + " is down");
    return p.future();
  }
  uint64_t corr = next_corr_.fetch_add(1, std::memory_order_relaxed);
  marcel::Future<std::vector<uint8_t>> fut =
      register_pending(corr, node, resolve_deadline(timeout_ns));
  if (fut.failed()) return fut;
  if (node == config_.node) {
    dispatch_rpc(service, config_.node, corr, args.finalize(), 0);
  } else {
    fabric::Message msg;
    msg.type = kRpc;
    msg.dst = node;
    msg.corr = corr;
    msg.chain = rpc_chain(service, std::move(args));
    fabric_send(std::move(msg));
  }
  return fut;
}

marcel::Future<std::vector<uint8_t>> Runtime::call_async_framed(
    uint32_t node, uint32_t service, mad::PackBuffer&& framed,
    uint64_t timeout_ns) {
  PM2_CHECK(node < config_.n_nodes);
  if (halting()) {
    marcel::Promise<std::vector<uint8_t>> p;
    p.set_error("session halting");
    return p.future();
  }
  if (node != config_.node && peer_down(node)) {
    marcel::Promise<std::vector<uint8_t>> p;
    p.set_error(std::string(kRpcPeerDownPrefix) + ": node " +
                std::to_string(node) + " is down");
    return p.future();
  }
  uint64_t corr = next_corr_.fetch_add(1, std::memory_order_relaxed);
  marcel::Future<std::vector<uint8_t>> fut =
      register_pending(corr, node, resolve_deadline(timeout_ns));
  if (fut.failed()) return fut;
  if (node == config_.node) {
    dispatch_rpc(service, config_.node, corr, framed.finalize(),
                 sizeof(uint32_t));
  } else {
    fabric::Message msg;
    msg.type = kRpc;
    msg.dst = node;
    msg.corr = corr;
    msg.chain = framed.take_chain();
    fabric_send(std::move(msg));
  }
  return fut;
}

std::vector<uint8_t> Runtime::call(uint32_t node, const char* service_name,
                                   mad::PackBuffer&& args) {
  PM2_CHECK(marcel::Scheduler::self() != nullptr) << "call outside a thread";
  marcel::Future<std::vector<uint8_t>> fut = call_async_hash(
      node, service_id(service_name), std::move(args), kTimeoutFromConfig);
  fut.wait();
  if (fut.failed()) throw RpcError(fut.error());
  return fut.take();
}

marcel::Future<std::vector<uint8_t>> Runtime::register_pending(
    uint64_t corr, uint32_t dest, uint64_t deadline_ns) {
  marcel::Promise<std::vector<uint8_t>> promise;
  marcel::Future<std::vector<uint8_t>> fut = promise.future();
  pending_lock_.lock();
  if (halting()) {
    // halt()'s drain already swept the map (the halting_ store precedes the
    // drain's lock hold): an entry registered now would never complete.
    pending_lock_.unlock();
    promise.set_error("session halting");
    return fut;
  }
  pending_calls_.emplace(corr,
                         PendingCall{std::move(promise), dest, deadline_ns});
  if (deadline_ns != 0) arm_deadline_locked(corr, deadline_ns, false);
  pending_lock_.unlock();
  return fut;
}

void Runtime::tombstone_locked(uint64_t corr) {
  if (tombstones_.insert(corr).second) {
    tombstone_fifo_.push_back(corr);
    if (tombstone_fifo_.size() > kTombstoneCap) {
      tombstones_.erase(tombstone_fifo_.front());
      tombstone_fifo_.pop_front();
    }
  }
}

void Runtime::arm_deadline_locked(uint64_t corr, uint64_t deadline_ns,
                                  bool migration) {
  deadlines_.push(DeadlineEnt{deadline_ns, corr, migration});
  // Monotonic min: the heap top only moves earlier on a push.
  if (deadline_ns < next_deadline_ns_.load(std::memory_order_relaxed))
    next_deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
}

uint64_t Runtime::resolve_deadline(uint64_t timeout_ns) const {
  uint64_t t = timeout_ns == kTimeoutFromConfig ? rpc_timeout_ns_ : timeout_ns;
  return t == 0 ? 0 : now_ns() + t;
}

void Runtime::expire_deadlines(uint64_t now) {
  if (next_deadline_ns_.load(std::memory_order_relaxed) > now) return;
  while (true) {
    // Extract one due correlation at a time: resolving a promise (or
    // rolling a migration back) runs scheduler code and must happen
    // outside pending_lock_.
    std::optional<PendingCall> call;
    std::optional<PendingMigration> mig;
    pending_lock_.lock();
    while (!deadlines_.empty() && deadlines_.top().deadline_ns <= now) {
      DeadlineEnt e = deadlines_.top();
      deadlines_.pop();
      if (e.migration) {
        auto it = pending_migrations_.find(e.corr);
        if (it == pending_migrations_.end()) continue;  // already resolved
        mig = std::move(it->second);
        pending_migrations_.erase(it);
      } else {
        auto it = pending_calls_.find(e.corr);
        if (it == pending_calls_.end()) continue;  // already resolved
        call = std::move(it->second);
        pending_calls_.erase(it);
      }
      tombstone_locked(e.corr);
      break;
    }
    next_deadline_ns_.store(
        deadlines_.empty() ? UINT64_MAX : deadlines_.top().deadline_ns,
        std::memory_order_relaxed);
    pending_lock_.unlock();
    if (!call && !mig) return;
    if (call) {
      rpc_timeouts_.fetch_add(1, std::memory_order_relaxed);
      call->promise.set_error(std::string(kRpcTimeoutPrefix) +
                              ": no reply from node " +
                              std::to_string(call->dest));
    } else {
      rpc_timeouts_.fetch_add(1, std::memory_order_relaxed);
      std::string why = std::string(kRpcTimeoutPrefix) +
                        ": no install ack from node " +
                        std::to_string(mig->dest);
      rollback_migration(std::move(*mig), why);
    }
  }
}

void Runtime::rollback_migration(PendingMigration ent, const std::string& why) {
  if (ent.thread != nullptr) {
    migration_rollbacks_.fetch_add(1, std::memory_order_relaxed);
    // ship_thread parked the runs in the migration slot cache, which kept
    // the pages (descriptor and stack included) committed.  Reclaim the
    // entries so the cache will not decommit them under the revived
    // thread.  An evicted entry means the descriptor bytes are gone and no
    // rollback exists — configure migration_slot_cache to span the
    // timeout window.
    for (auto [first, count] : ent.runs) {
      PM2_CHECK(mig_cache_take(first, count))
          << "migration rollback window lost (run " << first << "+" << count
          << " evicted from the slot cache): migration_slot_cache must "
             "cover deadline-armed migrations";
    }
    // Same adoption path an arriving migration uses: the frozen, forgotten
    // descriptor becomes runnable here again.  Locally the stack bytes,
    // flags and sanitizer state were never touched, so no install-side
    // fixups apply.
    sched_.adopt(ent.thread);
    PM2_WARN << "node " << config_.node << ": rolled back migration of thread "
             << ent.thread_id << " -> node " << ent.dest << " (" << why << ")";
  }
  ent.promise.set_error(why);
}

void Runtime::complete_pending(uint64_t corr, std::vector<uint8_t>&& result,
                               const char* what) {
  if (auto p = take_pending(pending_calls_, corr, what))
    p->promise.set_value(std::move(result));
}

void Runtime::fail_pending(uint64_t corr, std::string why, const char* what) {
  if (auto p = take_pending(pending_calls_, corr, what))
    p->promise.set_error(std::move(why));
}

void Runtime::drain_pending(const std::string& why) {
  // Swap the maps out under the lock first: set_error unparks waiters, and
  // a woken thread must not find its corr still registered.
  pending_lock_.lock();
  auto calls = std::move(pending_calls_);
  pending_calls_.clear();
  auto migs = std::move(pending_migrations_);
  pending_migrations_.clear();
  // Armed deadlines die with their entries (take_pending tolerates late
  // replies while halting anyway).
  deadlines_ = {};
  next_deadline_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  pending_lock_.unlock();
  for (auto& [corr, ent] : calls) ent.promise.set_error(why);
  for (auto& [corr, ent] : migs) ent.promise.set_error(why);
}

void RpcContext::fail(const std::string& why) {
  if (corr_ == 0 || replied_) return;
  replied_ = true;
  // Route through the *current* runtime, not rt_: the service may have
  // migrated, and the reply must leave through the node it now runs on.
  Runtime& rt = *Runtime::current();
  if (src_ == rt.self()) {
    rt.fail_pending(corr_, "service failed: " + why, "service failure");
    return;
  }
  fabric::Message msg;
  msg.type = kReplyError;
  msg.dst = src_;
  msg.corr = corr_;
  ByteWriter w;
  w.put_string("service failed: " + why);
  msg.payload = w.take();
  rt.fabric_send(std::move(msg));
}

void RpcContext::reply(mad::PackBuffer&& result) {
  PM2_CHECK(corr_ != 0) << "reply() but the caller used rpc(), not call()";
  PM2_CHECK(!replied_) << "double reply";
  replied_ = true;
  if (src_ == rt_.self()) {
    rt_.complete_pending(corr_, result.finalize(), "local reply");
    return;
  }
  fabric::Message msg;
  msg.type = kReply;
  msg.dst = src_;
  msg.corr = corr_;
  msg.chain = result.take_chain();
  rt_.fabric_send(std::move(msg));
}

// ---------------------------------------------------------------------------
// Collectives / signals / shutdown
// ---------------------------------------------------------------------------

void Runtime::barrier() {
  PM2_CHECK(marcel::Scheduler::self() != nullptr) << "barrier outside thread";
  trace_event(trace::Event::kBarrier);
  // A barrier cannot complete without every node: with failure detection
  // on, error out instead of parking forever behind a dead peer.
  if (peers_ != nullptr) {
    for (uint32_t n = 0; n < config_.n_nodes; ++n) {
      if (n != config_.node && peer_down(n))
        throw RpcError(std::string(kRpcPeerDownPrefix) + ": node " +
                       std::to_string(n) + " is down, barrier cannot complete");
    }
  }
  marcel::Event ev;
  // Decide under barrier_lock_ (the comm daemon's arrival handler races
  // the coordinator's own local arrival at workers > 1); send and set the
  // event outside it.
  bool release_all = false;
  barrier_lock_.lock();
  PM2_CHECK(barrier_waiter_ == nullptr) << "concurrent barriers on one node";
  barrier_waiter_ = &ev;
  uint32_t seq = barrier_seq_;
  if (config_.node == 0) {
    // Local arrival at the coordinator.
    if (++barrier_arrivals_ == config_.n_nodes) {
      barrier_arrivals_ = 0;
      ++barrier_seq_;
      release_all = true;
    }
  }
  barrier_lock_.unlock();
  if (config_.node == 0) {
    if (release_all) {
      for (uint32_t n = 1; n < config_.n_nodes; ++n) {
        fabric::Message msg;
        msg.type = kBarrierRelease;
        msg.dst = n;
        ByteWriter w;
        w.put<uint32_t>(seq);
        msg.payload = w.take();
        fabric_send(std::move(msg));
      }
      ev.set();
    }
  } else {
    fabric::Message msg;
    msg.type = kBarrierArrive;
    msg.dst = 0;
    ByteWriter w;
    w.put<uint32_t>(seq);
    msg.payload = w.take();
    fabric_send(std::move(msg));
  }
  ev.wait();
  barrier_lock_.lock();
  barrier_waiter_ = nullptr;
  // The peer-down sweep wakes a parked barrier with an error note instead
  // of a release: surface it as RpcError (kPeerDown) to the caller.
  std::string err = std::move(barrier_error_);
  barrier_error_.clear();
  barrier_lock_.unlock();
  if (!err.empty()) throw RpcError(err);
}

void Runtime::send_signal(uint32_t node) {
  PM2_CHECK(node < config_.n_nodes);
  if (node == config_.node) {
    ++signals_received_;
    signal_sem_.release();
    return;
  }
  fabric::Message msg;
  msg.type = kSignal;
  msg.dst = node;
  fabric_send(std::move(msg));
}

void Runtime::wait_signals(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) signal_sem_.acquire();
}

void Runtime::halt() {
  halting_.store(true);
  fabric_->set_teardown(true);  // peers may exit under late messages now
  // Wake every thread parked on an outstanding call or migration ack with
  // an error: the peers are shutting down and the replies may never come.
  // A reply that does arrive after the drain is dropped (complete_pending
  // tolerates unknown correlations while halting).
  drain_pending("session shutdown");
  for (uint32_t n = 0; n < config_.n_nodes; ++n) {
    if (n == config_.node) continue;
    fabric::Message msg;
    msg.type = kHalt;
    msg.dst = n;
    fabric_send(std::move(msg));
  }
}

uint64_t Runtime::load() const { return sched_.live_count(); }

void Runtime::broadcast_load() {
  uint64_t ld = load();
  load_lock_.lock();
  load_table_[config_.node] = ld;
  load_lock_.unlock();
  for (uint32_t n = 0; n < config_.n_nodes; ++n) {
    if (n == config_.node) continue;
    if (peer_down(n)) continue;  // gossip to a dead peer is wasted motion
    fabric::Message msg;
    msg.type = kLoadInfo;
    msg.dst = n;
    // Gossip is periodic and self-healing: if the peer is unreachable the
    // frame may be silently dropped rather than wedging the sender.
    msg.best_effort = true;
    ByteWriter w;
    w.put<uint32_t>(config_.node);
    w.put<uint64_t>(ld);
    msg.payload = w.take();
    fabric_send(std::move(msg));
  }
}

// ---------------------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------------------

fabric::FaultFabric* Runtime::fault_fabric() {
  return dynamic_cast<fabric::FaultFabric*>(fabric_.get());
}

Runtime::PeerState Runtime::peer_state(uint32_t node) const {
  if (peers_ == nullptr || node == config_.node || node >= config_.n_nodes)
    return PeerState::kUp;
  return static_cast<PeerState>(
      peers_[node].state.load(std::memory_order_acquire));
}

void Runtime::peer_seen(uint32_t node) {
  if (node >= config_.n_nodes) return;
  PeerHealth& h = peers_[node];
  h.last_seen_ns.store(now_ns(), std::memory_order_relaxed);
  if (h.state.load(std::memory_order_relaxed) !=
      static_cast<uint8_t>(PeerState::kUp)) {
    // Any frame from a suspect/down peer is proof of recovery: a healed
    // partition or a flapping link rejoins without ceremony.  (Pending
    // requests already failed by the down sweep stay failed — at-least-once
    // callers retry; the tombstones swallow the stale replies.)
    h.state.store(static_cast<uint8_t>(PeerState::kUp),
                  std::memory_order_release);
    PM2_WARN << "node " << node << " is back up";
  }
}

void Runtime::check_peers(uint64_t now) {
  // Re-scan at a quarter of the heartbeat period: fine enough that a miss
  // verdict lands within ~one period of its deadline, coarse enough that a
  // busy daemon is not rescanning the table on every frame.
  if (now < next_peer_scan_ns_) return;
  next_peer_scan_ns_ = now + config_.heartbeat_period_ns / 4 + 1;
  if (now >= next_heartbeat_ns_) {
    next_heartbeat_ns_ = now + config_.heartbeat_period_ns;
    for (uint32_t n = 0; n < config_.n_nodes; ++n) {
      if (n == config_.node) continue;
      // Down peers are probed too: a restarted or partition-healed peer
      // announces itself by answering traffic, and the probe is what keeps
      // traffic flowing to an otherwise-quiet peer.
      fabric::Message hb;
      hb.type = kHeartbeat;
      hb.dst = n;
      hb.best_effort = true;
      fabric_->send(std::move(hb));
      heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (uint32_t n = 0; n < config_.n_nodes; ++n) {
    if (n == config_.node) continue;
    PeerHealth& h = peers_[n];
    auto st = static_cast<PeerState>(h.state.load(std::memory_order_relaxed));
    if (st == PeerState::kDown) continue;
    uint64_t last = h.last_seen_ns.load(std::memory_order_relaxed);
    uint64_t silent = now > last ? now - last : 0;
    uint64_t missed = silent / config_.heartbeat_period_ns;
    if (missed >= config_.heartbeat_miss_limit) {
      mark_peer_down(n);
    } else if (missed >= 1 && st == PeerState::kUp) {
      h.state.store(static_cast<uint8_t>(PeerState::kSuspect),
                    std::memory_order_release);
      PM2_DEBUG << "node " << n << " suspect (" << missed
                << " heartbeats missed)";
    }
  }
}

void Runtime::mark_peer_down(uint32_t node) {
  peers_[node].state.store(static_cast<uint8_t>(PeerState::kDown),
                           std::memory_order_release);
  PM2_WARN << "node " << node << " declared down ("
           << config_.heartbeat_miss_limit << " heartbeats missed)";
  const std::string why = std::string(kRpcPeerDownPrefix) + ": node " +
                          std::to_string(node) + " unreachable";
  // Sweep the correlation tables under pending_lock_; resolve the futures
  // outside it (set_error may direct-switch to the woken thread).
  std::vector<PendingCall> calls;
  std::vector<PendingMigration> migs;
  pending_lock_.lock();
  for (auto it = pending_calls_.begin(); it != pending_calls_.end();) {
    if (it->second.dest == node) {
      tombstone_locked(it->first);
      calls.push_back(std::move(it->second));
      it = pending_calls_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pending_migrations_.begin();
       it != pending_migrations_.end();) {
    // Skip unshipped entries: the migrating worker is still mid-pack and
    // owns the thread; its post-ship code re-checks peer_down and rolls
    // back on its own.
    if (it->second.dest == node && it->second.shipped) {
      tombstone_locked(it->first);
      migs.push_back(std::move(it->second));
      it = pending_migrations_.erase(it);
    } else {
      ++it;
    }
  }
  pending_lock_.unlock();
  // Stale deadline-heap entries for the swept correlations are popped
  // lazily by expire_deadlines (tombstoned corr -> map miss -> skip).
  for (PendingCall& c : calls) {
    peer_down_failures_.fetch_add(1, std::memory_order_relaxed);
    c.promise.set_error(why);
  }
  for (PendingMigration& m : migs) {
    peer_down_failures_.fetch_add(1, std::memory_order_relaxed);
    rollback_migration(std::move(m), why);
  }
  // A parked barrier can never complete without `node`: wake the waiter
  // with the error recorded instead of leaving it parked forever.
  marcel::Event* bwaiter = nullptr;
  barrier_lock_.lock();
  if (barrier_waiter_ != nullptr && barrier_error_.empty()) {
    barrier_error_ = why + ", barrier cannot complete";
    bwaiter = barrier_waiter_;
  }
  barrier_lock_.unlock();
  if (bwaiter != nullptr) bwaiter->set();
  // Same for a thread waiting on the global system lock: the negotiation
  // protocol needs every participant, so the waiter aborts loudly.
  marcel::Event* lwaiter = nullptr;
  nego_lock_.lock();
  if (lock_wait_ != nullptr) {
    nego_peer_lost_ = true;
    lwaiter = lock_wait_;
  }
  nego_lock_.unlock();
  if (lwaiter != nullptr) lwaiter->set();
}

// ---------------------------------------------------------------------------
// Comm daemon & message dispatch
// ---------------------------------------------------------------------------

void Runtime::daemon_trampoline(void* runtime) {
  static_cast<Runtime*>(runtime)->comm_daemon_body();
}

bool Runtime::reply_is_imminent() const {
  // A non-empty correlation table means some local thread issued a request
  // whose reply is the next thing this node is waiting for — the only
  // situation where burning the idle window on a poll loop buys latency.
  sys::SpinGuard g(pending_lock_);
  return !pending_calls_.empty() || !pending_migrations_.empty();
}

void Runtime::fabric_send(fabric::Message msg) {
  // Direct when concurrent sends are safe on this transport (in-process
  // hub), when only one worker exists (the legacy single-kernel-thread
  // node), or when we already run on the comm daemon's worker: the daemon
  // is pinned to worker 0 and fabric calls contain no PM2 switch points,
  // so worker 0's threads access the fabric cooperatively serialized.
  if (sched_.workers() == 1 || fabric_->concurrent_send_safe() ||
      (marcel::Scheduler::current_scheduler() == &sched_ &&
       marcel::Scheduler::current_worker() == 0)) {
    fabric_->send(std::move(msg));
    return;
  }
  // Defer to the daemon.  Flatten first: chain segments are borrowed from
  // the caller (pack regions, slot memory) and only guaranteed to outlive
  // the fabric_send call itself.
  if (!msg.chain.empty()) msg.flat();
  out_lock_.lock();
  outbox_.push_back(std::move(msg));
  out_lock_.unlock();
  fabric_->wake();
}

void Runtime::flush_outbox() {
  std::vector<fabric::Message> batch;
  {
    sys::SpinGuard g(out_lock_);
    if (outbox_.empty()) return;
    batch.swap(outbox_);
  }
  for (fabric::Message& m : batch) fabric_->send(std::move(m));
}

void Runtime::comm_daemon_body() {
  // Heartbeat cap on the event-driven block: bounds the damage of any
  // missed-wakeup bug to one lap instead of a hang, at zero latency cost
  // (every frame still wakes the fabric handle immediately).
  constexpr uint64_t kIdleBlockNs = 500'000'000;
  // Failure detection runs on this daemon's clock: initialize every peer
  // as freshly seen so a slow-starting peer gets a full miss budget before
  // the first suspicion.
  const bool failure_detection = peers_ != nullptr;
  if (failure_detection) {
    uint64_t now = now_ns();
    for (uint32_t n = 0; n < config_.n_nodes; ++n)
      peers_[n].last_seen_ns.store(now, std::memory_order_relaxed);
    next_heartbeat_ns_ = now + config_.heartbeat_period_ns;
    next_peer_scan_ns_ = now;
  }
  while (true) {
    // A pending worker pause (audit / checkpoint quiesce) must never wait
    // on the daemon finishing a blocking lap: gate first.
    if (sched_.pause_pending()) {
      sched_.yield();
      continue;
    }
    flush_outbox();
    bool worked = false;
    while (auto msg = fabric_->try_recv()) {
      handle_message(*msg);
      worked = true;
    }
    // Deadline/heartbeat upkeep on every lap, busy or idle: a busy lap only
    // pays one relaxed load when no deadline is armed and detection is off.
    if (failure_detection ||
        next_deadline_ns_.load(std::memory_order_relaxed) != UINT64_MAX) {
      uint64_t nw = now_ns();
      expire_deadlines(nw);
      if (failure_detection) check_peers(nw);
    }
    if (halting() && sched_.live_count() == 0) break;
    if (worked || sched_.local_ready_count() > 0) {
      sched_.yield();
      continue;
    }
    // Idle node: every local thread is parked (on a reply, a timer, a
    // join).  Block on the fabric's readiness handle until a frame
    // arrives — but never past the next sleep deadline, so marcel timers
    // fire on time — with an adaptive busy-poll window in front only
    // while a reply is imminent (paper-faithful polling-mode latency for
    // RPC/migration ping-pong without spinning on truly idle nodes).
    uint64_t now = now_ns();
    // Idle lap: evict invocation-pool threads past the decay horizon so
    // their stack slots rejoin the node's distribution, and demote cold
    // frozen/parked threads over the slot-store budget to the backing file.
    pool_decay(now);
    store_decay(now);
    uint64_t timer_ns = sched_.ns_until_next_timer();
    uint64_t deadline =
        now + std::min<uint64_t>(timer_ns, kIdleBlockNs);
    // Clamp the park to the nearest RPC/migration deadline and the next
    // heartbeat tick: an expiry must fire on time even on a frame-silent
    // node (satellite of the 500 ms idle cap, not a replacement for it).
    deadline =
        std::min(deadline, next_deadline_ns_.load(std::memory_order_relaxed));
    if (failure_detection) deadline = std::min(deadline, next_heartbeat_ns_);
    if (config_.comm_busy_poll_us > 0 && reply_is_imminent()) {
      uint64_t spin_end =
          std::min(deadline, now + config_.comm_busy_poll_us * 1000);
      bool got = false;
      while (now_ns() < spin_end) {
        if (auto msg = fabric_->try_recv()) {
          handle_message(*msg);
          got = true;
          break;
        }
        // Single-core friendliness: the reply we are spinning for needs
        // CPU on the peer to be produced; on an idle multicore box this
        // is a few hundred ns and keeps the spin's latency edge.
        ::sched_yield();
      }
      if (got) continue;  // drain the rest (and re-check halt) at the top
      if (halting() && sched_.live_count() == 0) break;
    }
    if (auto msg = fabric_->recv_until(deadline)) {
      handle_message(*msg);
      // Re-check immediately: if that frame was the halt (or the last
      // drain), exit now instead of taking another blocking lap.
      if (halting() && sched_.live_count() == 0) break;
    }
    // Bounce through the scheduler so its loop fires expired sleep timers
    // and dispatches any thread the handled frame unparked.
    sched_.yield();
  }
  // The halt broadcast (or a worker's last reply) may still sit deferred:
  // put it on the wire before tearing the session down.
  flush_outbox();
  // Same for frames held back by an injected delay: nobody flushes the
  // fault fabric after this daemon's last lap, and a delayed halt
  // broadcast would strand every peer in its blocking receive.
  if (auto* ff = fault_fabric()) ff->drain_delayed();
  // Session over: parked service threads must not leak their stack runs.
  pool_drain();
  sched_.stop();
  thread_exit();
}

void Runtime::handle_message(fabric::Message& msg) {
  // Any frame is proof of life — heartbeats just guarantee a minimum rate
  // on otherwise-silent links.
  if (peers_ != nullptr && msg.src != config_.node) peer_seen(msg.src);
  switch (msg.type) {
    case kHeartbeat:
      break;  // liveness already recorded above; no payload
    case kHalt:
      halting_.store(true);
      fabric_->set_teardown(true);
      drain_pending("session shutdown");
      break;
    case kBarrierArrive: {
      PM2_CHECK(config_.node == 0) << "barrier arrival at non-coordinator";
      // Mutate under barrier_lock_ (racing the coordinator's own local
      // arrival on another worker); sends and the waiter wake-up happen
      // outside.  The waiter pointer stays valid until its thread returns
      // from ev.wait(), which cannot happen before set().
      bool release_all = false;
      uint32_t seq = 0;
      marcel::Event* waiter = nullptr;
      barrier_lock_.lock();
      if (++barrier_arrivals_ == config_.n_nodes) {
        barrier_arrivals_ = 0;
        seq = barrier_seq_++;
        release_all = true;
        waiter = barrier_waiter_;
      }
      barrier_lock_.unlock();
      if (release_all) {
        for (uint32_t n = 1; n < config_.n_nodes; ++n) {
          fabric::Message rel;
          rel.type = kBarrierRelease;
          rel.dst = n;
          ByteWriter w;
          w.put<uint32_t>(seq);
          rel.payload = w.take();
          fabric_->send(std::move(rel));
        }
        PM2_CHECK(waiter != nullptr)
            << "all nodes arrived but coordinator never entered the barrier";
        waiter->set(/*direct_handoff=*/true);
      }
      break;
    }
    case kBarrierRelease: {
      barrier_lock_.lock();
      marcel::Event* waiter = barrier_waiter_;
      barrier_lock_.unlock();
      PM2_CHECK(waiter != nullptr) << "spurious barrier release";
      waiter->set(/*direct_handoff=*/true);
      break;
    }
    case kSignal:
      ++signals_received_;
      signal_sem_.release();
      break;
    case kRpc:
      handle_rpc(msg);
      break;
    case kReply:
      complete_pending(msg.corr, std::move(msg.flat()), "reply");
      break;
    case kReplyError: {
      ByteReader r(msg.flat());
      fail_pending(msg.corr, r.get_string(), "error reply");
      break;
    }
    case kMigrate:
      handle_migrate(msg);
      break;
    case kMigrateAck: {
      if (auto p = take_pending(pending_migrations_, msg.corr, "migrate ack")) {
        ByteReader r(msg.flat());
        p->promise.set_value(MigrateResult{r.get<uint64_t>(), msg.src});
      }
      break;
    }
    case kLockReq:
      handle_lock_req(msg.src);
      break;
    case kLockGrant: {
      nego_lock_.lock();
      marcel::Event* waiter = lock_wait_;
      nego_lock_.unlock();
      PM2_CHECK(waiter != nullptr) << "spurious lock grant";
      waiter->set(/*direct_handoff=*/true);
      break;
    }
    case kUnlock:
      handle_unlock(msg.src);
      break;
    case kGatherReq:
      handle_gather_req(msg);
      break;
    case kAuditReq:
      handle_audit_req(msg);
      break;
    case kAuditResp:
      complete_pending(msg.corr, std::move(msg.flat()), "audit resp");
      break;
    case kGatherResp:
      complete_pending(msg.corr, std::move(msg.flat()), "gather resp");
      break;
    case kNegoUpdate:
      handle_nego_update(msg);
      break;
    case kLoadInfo: {
      ByteReader r(msg.flat());
      auto node = r.get<uint32_t>();
      auto ld = r.get<uint64_t>();
      PM2_CHECK(node < config_.n_nodes);
      load_lock_.lock();
      load_table_[node] = ld;
      load_lock_.unlock();
      break;
    }
    default:
      if (channels_.owns(msg)) {
        channels_.feed(std::move(msg));
        break;
      }
      PM2_FATAL("unhandled message type " + std::to_string(msg.type));
  }
}

void Runtime::handle_rpc(fabric::Message& msg) {
  std::vector<uint8_t>& payload = msg.flat();
  ByteReader r(payload);
  auto service = r.get<uint32_t>();
  // The whole payload moves into the invocation; the service-hash framing
  // is skipped by offset instead of trimmed by copy.
  size_t offset = r.position();
  dispatch_rpc(service, msg.src, msg.corr, std::move(payload), offset);
}

void Runtime::handle_migrate(fabric::Message& msg) {
  // Scatter straight from the received frame into freshly committed slots.
  marcel::Thread* t = install_thread(*this, msg.flat());
  ++migrations_in_;
  trace_event(trace::Event::kMigrationIn, t->id, msg.src);
  if (post_migration_) post_migration_(t);
  // migrate_async ack — sent only after migrations_in() counts the arrival
  // and the post-migration hook ran, so the source-side future completing
  // implies the thread is fully installed here.
  if (msg.corr != 0) {
    fabric::Message ack;
    ack.type = kMigrateAck;
    ack.dst = msg.src;
    ack.corr = msg.corr;
    ByteWriter w;
    w.put<uint64_t>(t->id);
    ack.payload = w.take();
    fabric_->send(std::move(ack));
  }
}

void Runtime::run(std::function<void()> node_main) {
  log::set_thread_node(static_cast<int>(config_.node));
  RuntimeBinding rt_bind(this);
  marcel::SchedulerBinding sched_bind(&sched_);
  if (config_.preemption_quantum_us > 0)
    sched_.set_preemption(config_.preemption_quantum_us);
  // Helper workers are raw kernel threads: bind them to this node the way
  // run()'s caller is bound, so PM2 threads they dispatch resolve
  // Runtime::current() and log with the right node tag.
  sched_.set_worker_init([this](uint32_t) {
    t_runtime = this;
    log::set_thread_node(static_cast<int>(config_.node));
  });
  // Cross-thread ready pushes targeting worker 0 (unblocks from other
  // workers, timer rearms) must pop the comm daemon out of its blocking
  // fabric wait.
  sched_.set_external_wake([this] { fabric_->wake(); });

  create_thread_in_slots(&Runtime::daemon_trampoline, this, "comm-daemon",
                         marcel::Thread::kFlagDaemon |
                             marcel::Thread::kFlagPinned);
  if (node_main) spawn_local(std::move(node_main), "main");
  sched_.run();
}

// ---------------------------------------------------------------------------
// Migration slot cache
// ---------------------------------------------------------------------------

void Runtime::mig_cache_put(size_t first, size_t count) {
  if (config_.migration_slot_cache == 0) {
    area_.decommit(first, count);
    return;
  }
  // Mutate under the lock; evicted runs are decommitted after (decommit is
  // an mmap call — too slow for a spinlock hold, and eviction order only
  // matters for the cache bookkeeping, not for the kernel).
  std::vector<MigCacheEntry> evicted;
  mig_cache_lock_.lock();
  // Idempotence: the run may already be cached if this thread bounced
  // through before.
  for (const MigCacheEntry& e : mig_cache_) {
    if (e.first == first && e.count == count) {
      mig_cache_lock_.unlock();
      return;
    }
  }
  mig_cache_.push_back(MigCacheEntry{first, count});
  while (mig_cache_.size() > config_.migration_slot_cache) {
    evicted.push_back(mig_cache_.front());
    mig_cache_.pop_front();
  }
  mig_cache_lock_.unlock();
  for (const MigCacheEntry& old : evicted) area_.decommit(old.first, old.count);
}

bool Runtime::mig_cache_take(size_t first, size_t count) {
  sys::SpinGuard g(mig_cache_lock_);
  for (auto it = mig_cache_.begin(); it != mig_cache_.end(); ++it) {
    if (it->first == first && it->count == count) {
      mig_cache_.erase(it);
      return true;
    }
  }
  return false;
}

void Runtime::mig_cache_invalidate(size_t first, size_t count) {
  sys::SpinGuard g(mig_cache_lock_);
  for (auto it = mig_cache_.begin(); it != mig_cache_.end();) {
    bool overlap = it->first < first + count && first < it->first + it->count;
    it = overlap ? mig_cache_.erase(it) : ++it;
  }
}

void Runtime::printf(const char* fmt, ...) {
  char body[2048];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof(body), fmt, ap);
  va_end(ap);
  char line[2112];
  int n = std::snprintf(line, sizeof(line), "[node%u] %s", config_.node, body);
  if (n > 0) {
    size_t len = static_cast<size_t>(n) < sizeof(line) ? static_cast<size_t>(n)
                                                       : sizeof(line) - 1;
    [[maybe_unused]] ssize_t ignored = ::write(1, line, len);
  }
}

}  // namespace pm2
