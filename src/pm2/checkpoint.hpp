// Thread checkpoint/restore — "migration in time".
//
// An extension the iso-address design gets almost for free: the migration
// payload (descriptor + slot images at fixed virtual addresses) is a
// complete, position-dependent-but-address-stable serialization of a
// thread.  Shipping it to a *later moment* instead of another node is the
// same operation:
//
//   * checkpoint(): freeze a thread, pack it exactly like a migration,
//     return the bytes (optionally keep the thread running);
//   * restore(): commit the recorded slots and adopt the thread — legal
//     whenever its slot ranges are free, which the iso-address discipline
//     guarantees if the original thread is gone (it owned those slots
//     system-wide).
//
// Because the build is non-PIE with a static C++ runtime (see the root
// CMakeLists), a checkpoint taken in one session restores in a *new
// process* of the same binary: code addresses, the iso-area base and the
// stack contents all line up.  The checkpoint format embeds the area
// geometry and a binary identity stamp and refuses to restore on mismatch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "marcel/thread.hpp"

namespace pm2 {

class Runtime;

struct CheckpointHeader {
  static constexpr uint64_t kMagic = 0x504D32434B505431ull;  // "PM2CKPT1"
  uint64_t magic = kMagic;
  uint64_t area_base = 0;
  uint64_t area_size = 0;
  uint64_t slot_size = 0;
  uint64_t binary_stamp = 0;  // identity of the SPMD binary (code addrs)
  uint64_t payload_len = 0;
};

/// Identity stamp of this binary: restoring a checkpoint into a different
/// binary would resume into the wrong code.  Derived from the address and
/// first bytes of a reference function — both fixed in a non-PIE build.
uint64_t binary_stamp();

/// Checkpoint a thread living on this node.
///
/// `id` must name a READY (not running, not blocked) non-pinned thread —
/// the same precondition as preemptive migration.  The thread keeps
/// running afterwards.  Returns the checkpoint image.
std::vector<uint8_t> checkpoint_thread(Runtime& rt, marcel::ThreadId id);

/// Checkpoint the *calling* thread and keep running.  Returns the image
/// through `out` (the thread cannot return it: the checkpoint captures the
/// moment inside this call, and a restored clone resumes right here with
/// `restored() == true`).
///
/// Returns false for the original ("just checkpointed") execution and true
/// for a restored clone — the classic setjmp-style contract.
bool checkpoint_self(Runtime& rt, std::vector<uint8_t>& out);

/// Restore a checkpointed thread into this node.  The thread's slot ranges
/// must be free (the original thread must have exited or never lived in
/// this session).  The restored thread resumes exactly where it was
/// frozen.  Returns its id.
///
/// Restores refuse images from a different binary or area geometry.
marcel::ThreadId restore_thread(Runtime& rt, const std::vector<uint8_t>& image);

/// Convenience: write/read a checkpoint image to/from a file.
void save_checkpoint(const std::string& path, const std::vector<uint8_t>& image);
std::vector<uint8_t> load_checkpoint(const std::string& path);

// --- node checkpoints through the slot store (PM2STOR1) ---------------------
//
// Where PM2CKPT1 serializes ONE thread into a flat self-contained image,
// the slot store checkpoint persists EVERY checkpointable thread of a node
// into the node's iso::SlotStore backing file: thread-directory records
// name the images, and slot bytes land at their fixed file positions
// (data_off + slot_index * slot_size) — the file is an address-stable
// mirror of the iso-area, so repeated checkpoints overwrite in place and
// only need to rewrite what changed.  Incremental rounds track dirty pages
// with the kernel's soft-dirty bits (/proc/self/clear_refs + pagemap bit
// 55) and fall back to the thread's live extents (the migration §6 walk)
// where pagemap is unavailable.

struct StoreCheckpointStats {
  uint64_t threads = 0;        // threads persisted this round
  uint64_t bytes_written = 0;  // slot bytes written to the store file
  uint64_t bytes_skipped = 0;  // clean bytes an incremental round avoided
  bool incremental = false;    // this round wrote deltas, not full images
};

/// Persist every checkpointable thread of this node into its slot store:
/// READY and frozen threads get directory records + slot images; demoted
/// threads are already byte-exact in the file (their record was written at
/// demotion) and are skipped as pure savings; running (the caller),
/// blocked and daemon threads are not checkpointable and are skipped with
/// a warning for blocked ones.  The first round writes full images and
/// arms soft-dirty tracking; later rounds write only dirty pages.
/// Requires RuntimeConfig::slot_store_dir.
StoreCheckpointStats checkpoint_node_to_store(Runtime& rt);

/// Crash restart: adopt every thread recorded in a recovered slot store
/// (RuntimeConfig::slot_store_recover = true).  Claims each thread's slot
/// runs, reads the images back at their iso-addresses and reschedules the
/// threads; returns their ids.  Threads whose runs are not free on this
/// node (another node's distribution) are skipped with a warning — restore
/// on the owning node.  Call from the restarted node's main thread.
std::vector<marcel::ThreadId> restore_node_from_store(Runtime& rt);

}  // namespace pm2
