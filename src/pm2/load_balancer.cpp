#include "pm2/load_balancer.hpp"

#include <vector>

#include "common/time.hpp"
#include "marcel/scheduler.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {

namespace {

void balancer_loop(Runtime& rt, LoadBalancerConfig cfg) {
  marcel::Scheduler& sched = rt.sched();
  while (!rt.halting()) {
    sched.sleep_us(cfg.period_us);
    // Halt may have arrived during the sleep: do not gossip to nodes that
    // are already draining (their processes may exit at any moment).
    if (rt.halting()) break;

    rt.broadcast_load();
    const auto& table = rt.load_table();
    uint64_t my = table[rt.self()];

    // Pick the least loaded node as the victim.  Skip peers the failure
    // detector has declared down: their load-table entry is stale (a dead
    // node gossips nothing, so it looks idle forever) and a migration
    // there would only burn its deadline before failing.
    uint32_t victim = rt.self();
    uint64_t victim_load = my;
    for (uint32_t n = 0; n < rt.n_nodes(); ++n) {
      if (n != rt.self() && rt.peer_down(n)) continue;
      if (table[n] < victim_load) {
        victim = n;
        victim_load = table[n];
      }
    }
    if (victim == rt.self() || my < victim_load + cfg.imbalance_threshold)
      continue;

    // Collect migratable candidates: READY, not pinned, not the balancer.
    std::vector<marcel::ThreadId> candidates;
    sched.for_each([&](marcel::Thread* t) {
      if (t->state == marcel::ThreadState::kReady && !t->is_pinned())
        candidates.push_back(t->id);
    });
    uint32_t shipped = 0;
    for (marcel::ThreadId id : candidates) {
      if (shipped >= cfg.max_migrations_per_round) break;
      if (rt.migrate(id, victim)) ++shipped;
    }
    if (shipped > 0) {
      // Optimistically account for the transfer so the next round does not
      // re-ship before fresh gossip arrives.
      rt.broadcast_load();
    }
  }
}

}  // namespace

void LoadBalancer::start(Runtime& rt, const LoadBalancerConfig& config) {
  // Pinned thread: participates in scheduling but never migrates; exits by
  // itself when the session halts.
  Runtime* rtp = &rt;
  LoadBalancerConfig cfg = config;
  rt.spawn_local([rtp, cfg] { balancer_loop(*rtp, cfg); }, "load-balancer");
}

uint64_t LoadBalancer::migrations_triggered(Runtime& rt) {
  return rt.migrations_out();
}

}  // namespace pm2
