#include "pm2/app.hpp"

#include <errno.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"
#include "fabric/inproc.hpp"
#include "fabric/socket_fabric.hpp"
#include "sys/process.hpp"

namespace pm2 {

namespace {

void node_session(Runtime& rt, const std::function<void(Runtime&)>& node_main,
                  const std::function<void(Runtime&)>& setup) {
  if (setup) setup(rt);
  rt.run([&rt, &node_main] {
    node_main(rt);
    // Session epilogue: wait for every node's main to finish, then node 0
    // shuts the session down.  Applications with cross-node work still in
    // flight must synchronize (pm2_wait_signals / pm2_join) before
    // returning from node_main.
    rt.barrier();
    if (rt.self() == 0) rt.halt();
  });
}

int run_inproc(const AppConfig& config,
               const std::function<void(Runtime&)>& node_main,
               const std::function<void(Runtime&)>& setup) {
  iso::AreaConfig ac = config.area;
  // Logical nodes share this address space: physical decommit by a node
  // that just lost a slot's ownership would race the new owner's commit of
  // the same pages (see AreaConfig::skip_decommit).
  ac.skip_decommit = true;
  iso::Area area(ac);
  std::shared_ptr<fabric::InProcHub> hub;
  std::string sock_dir;
  if (config.socket_fabric) {
    char dir[128];
    std::snprintf(dir, sizeof(dir), "/tmp/pm2-sf-%d-%u", ::getpid(),
                  static_cast<unsigned>(::time(nullptr) & 0xffff));
    PM2_CHECK(::mkdir(dir, 0700) == 0 || errno == EEXIST)
        << "cannot create socket dir " << dir;
    sock_dir = dir;
  } else {
    hub = std::make_shared<fabric::InProcHub>(config.nodes);
    hub->set_latency_ns(config.inproc_latency_ns);
  }

  std::vector<std::thread> threads;
  threads.reserve(config.nodes);
  for (uint32_t i = 0; i < config.nodes; ++i) {
    threads.emplace_back([&, i] {
      RuntimeConfig rc = config.rt;
      rc.node = i;
      rc.n_nodes = config.nodes;
      std::unique_ptr<fabric::Fabric> fab;
      if (config.socket_fabric) {
        fabric::SocketFabricConfig fc;
        fc.node_id = i;
        fc.n_nodes = config.nodes;
        fc.dir = sock_dir;
        fc.allow_reconnect = config.fabric_reconnect;
        fab = fabric::make_socket_fabric(fc);  // blocks until the mesh is up
      } else {
        fab = hub->endpoint(i);
      }
      Runtime rt(rc, area, std::move(fab));
      node_session(rt, node_main, setup);
    });
  }
  for (auto& t : threads) t.join();
  if (!sock_dir.empty()) {
    for (uint32_t i = 0; i < config.nodes; ++i) {
      std::string path = sock_dir + "/node" + std::to_string(i) + ".sock";
      ::unlink(path.c_str());
    }
    ::rmdir(sock_dir.c_str());
  }
  return 0;
}

int run_as_child(const AppConfig& config,
                 const std::function<void(Runtime&)>& node_main,
                 const std::function<void(Runtime&)>& setup) {
  uint32_t node = static_cast<uint32_t>(std::atoi(std::getenv("PM2_MP_NODE")));
  uint32_t nodes =
      static_cast<uint32_t>(std::atoi(std::getenv("PM2_MP_NODES")));
  const char* dir = std::getenv("PM2_MP_DIR");
  PM2_CHECK(dir != nullptr) << "PM2_MP_DIR missing in child environment";

  iso::Area area(config.area);
  fabric::SocketFabricConfig fc;
  fc.node_id = node;
  fc.n_nodes = nodes;
  fc.dir = dir;
  if (const char* port = std::getenv("PM2_MP_PORT")) {
    fc.use_tcp = true;
    fc.base_port = static_cast<uint16_t>(std::atoi(port));
  }
  fc.allow_reconnect =
      config.fabric_reconnect || std::getenv("PM2_MP_RECONNECT") != nullptr;

  RuntimeConfig rc = config.rt;
  rc.node = node;
  rc.n_nodes = nodes;
  Runtime rt(rc, area, fabric::make_socket_fabric(fc));
  node_session(rt, node_main, setup);
  // Never give control back to a main() that might spawn again.
  std::exit(0);
}

int spawn_children(const AppConfig& config) {
  char dir[128];
  std::snprintf(dir, sizeof(dir), "/tmp/pm2-%d-%u", ::getpid(),
                static_cast<unsigned>(::time(nullptr) & 0xffff));
  PM2_CHECK(::mkdir(dir, 0700) == 0 || errno == EEXIST)
      << "cannot create socket dir " << dir;

  std::string exe = sys::self_exe();
  std::vector<pid_t> pids;
  for (uint32_t i = 0; i < config.nodes; ++i) {
    std::vector<std::string> env = {
        "PM2_MP_NODE=" + std::to_string(i),
        "PM2_MP_NODES=" + std::to_string(config.nodes),
        std::string("PM2_MP_DIR=") + dir,
    };
    if (config.use_tcp) {
      uint16_t port = config.base_port != 0
                          ? config.base_port
                          : static_cast<uint16_t>(20000 + (::getpid() % 20000));
      env.push_back("PM2_MP_PORT=" + std::to_string(port));
    }
    if (config.fabric_reconnect) env.push_back("PM2_MP_RECONNECT=1");
    pids.push_back(sys::spawn(exe, config.child_args, env));
  }
  int worst = 0;
  for (pid_t pid : pids) {
    int status = sys::wait_child(pid);
    if (status > worst) worst = status;
  }
  for (uint32_t i = 0; i < config.nodes; ++i) {
    std::string path = std::string(dir) + "/node" + std::to_string(i) + ".sock";
    ::unlink(path.c_str());
  }
  ::rmdir(dir);
  return worst;
}

}  // namespace

void capture_argv_for_children(AppConfig& config, int argc, char** argv) {
  config.child_args.assign(argv + 1, argv + argc);
}

bool is_spawned_child() { return std::getenv("PM2_MP_NODE") != nullptr; }

int run_app(const AppConfig& config,
            const std::function<void(Runtime&)>& node_main,
            const std::function<void(Runtime&)>& setup) {
  log::init_from_env();
  if (is_spawned_child()) return run_as_child(config, node_main, setup);
  if (config.multiprocess) return spawn_children(config);
  return run_inproc(config, node_main, setup);
}

}  // namespace pm2
