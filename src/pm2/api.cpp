#include "pm2/api.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/check.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {

Runtime& current_runtime() {
  Runtime* r = Runtime::current();
  PM2_CHECK(r != nullptr) << "PM2 API used outside a running node";
  return *r;
}

namespace {
Runtime& rt() { return current_runtime(); }
}  // namespace

uint32_t pm2_self() { return rt().self(); }
uint32_t pm2_nodes() { return rt().n_nodes(); }

marcel::Thread* marcel_self() { return marcel::Scheduler::self(); }

void* pm2_isomalloc(size_t size) { return rt().isomalloc(size); }
void pm2_isofree(void* addr) { rt().isofree(addr); }
void* pm2_isorealloc(void* addr, size_t size) {
  return rt().isorealloc(addr, size);
}

void* pm2_isocalloc(size_t n, size_t elem_size) {
  return rt().isocalloc(n, elem_size);
}

void* pm2_isomemalign(size_t align, size_t size) {
  return rt().isomemalign(align, size);
}

marcel::ThreadId pm2_thread_create(marcel::EntryFn fn, void* arg,
                                   const char* name) {
  return rt().spawn(fn, arg, name);
}

marcel::ThreadId pm2_thread_create_copy(marcel::EntryFn fn, const void* data,
                                        size_t len, const char* name) {
  return rt().spawn_copy(fn, data, len, name);
}

void pm2_migrate(marcel::Thread* thr, uint32_t node) {
  PM2_CHECK(thr != nullptr);
  if (thr == marcel::Scheduler::self()) {
    rt().migrate_self(node);
    return;
  }
  PM2_CHECK(rt().migrate(thr->id, node))
      << "preemptive migration failed (thread not READY or pinned)";
}

void pm2_yield() {
  marcel::Scheduler* sched = marcel::Scheduler::current_scheduler();
  PM2_CHECK(sched != nullptr);
  sched->yield();
}

void pm2_sleep_us(uint64_t us) {
  marcel::Scheduler* sched = marcel::Scheduler::current_scheduler();
  PM2_CHECK(sched != nullptr);
  sched->sleep_us(us);
}

bool pm2_join(marcel::ThreadId id) { return rt().join(id); }

void pm2_printf(const char* fmt, ...) {
  char body[2048];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof(body), fmt, ap);
  va_end(ap);
  rt().printf("%s", body);
}

void pm2_barrier() { rt().barrier(); }
void pm2_halt() { rt().halt(); }

void pm2_signal(uint32_t node) { rt().send_signal(node); }
void pm2_wait_signals(uint64_t count) { rt().wait_signals(count); }

Future<MigrateResult> migrate_async(marcel::ThreadId id, uint32_t dest) {
  return rt().migrate_async(id, dest);
}

void on_migration(MigrationHook pre, MigrationHook post) {
  rt().on_migration(std::move(pre), std::move(post));
}

}  // namespace pm2
