// PM2 control-plane message types carried by the fabric.
#pragma once

#include <cstdint>

namespace pm2 {

enum MsgType : uint16_t {
  // Shutdown / collectives
  kHalt = 1,
  kBarrierArrive,   // node -> 0           {u32 seq}
  kBarrierRelease,  // 0 -> all            {u32 seq}
  kSignal,          // point-to-point completion token

  // Remote thread creation (LRPC) and replies
  kRpc,    // {u32 service; args...}  corr!=0 => reply expected
  kReply,  // {result...}             corr = matching request

  // Iso-address thread migration
  kMigrate,  // serialized thread: descriptor address + slot images

  // Global negotiation (paper §4.4): system-wide critical section on the
  // slot bitmaps, hosted by node 0.
  kLockReq,    // node -> 0
  kLockGrant,  // 0 -> node
  kUnlock,     // node -> 0
  kGatherReq,  // initiator -> node    (freezes the peer's bitmap)
  kGatherResp, // node -> initiator    {bitmap words}
  kNegoUpdate, // initiator -> node    {bitmap words} (unfreezes the peer)

  // Load balancer gossip
  kLoadInfo,  // {u32 node; u64 load}

  // Distributed invariant audit (pm2/audit.hpp)
  kAuditReq,   // initiator -> node
  kAuditResp,  // node -> initiator  {thread-held slot runs}

  kUserBase = 100,
};

}  // namespace pm2
