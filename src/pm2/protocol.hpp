// PM2 control-plane message types carried by the fabric, and the service-id
// hash that keys RPC dispatch on the wire.
#pragma once

#include <cstdint>
#include <string_view>

namespace pm2 {

enum MsgType : uint16_t {
  // Shutdown / collectives
  kHalt = 1,
  kBarrierArrive,   // node -> 0           {u32 seq}
  kBarrierRelease,  // 0 -> all            {u32 seq}
  kSignal,          // point-to-point completion token

  // Remote thread creation (LRPC) and replies.  The service field is the
  // FNV-1a hash of the service *name* (see service_id below): any node may
  // register any subset of services in any order, and dispatch still
  // agrees across heterogeneous binaries/roles.
  kRpc,    // {u32 service-name hash; args...}  corr!=0 => reply expected
  kReply,  // {result...}             corr = matching request

  // Iso-address thread migration.  corr != 0 requests a kMigrateAck from
  // the installing node once the thread is adopted (migrate_async).
  kMigrate,  // serialized thread: descriptor address + slot images

  // Global negotiation (paper §4.4): system-wide critical section on the
  // slot bitmaps, hosted by node 0.
  kLockReq,    // node -> 0
  kLockGrant,  // 0 -> node
  kUnlock,     // node -> 0
  kGatherReq,  // initiator -> node    (freezes the peer's bitmap)
  kGatherResp, // node -> initiator    {bitmap words}
  kNegoUpdate, // initiator -> node    {bitmap words} (unfreezes the peer)

  // Load balancer gossip
  kLoadInfo,  // {u32 node; u64 load}

  // Distributed invariant audit (pm2/audit.hpp)
  kAuditReq,   // initiator -> node
  kAuditResp,  // node -> initiator  {thread-held slot runs}

  // v2 asynchronous RPC / migration completions
  kReplyError,  // {string why}       corr = matching request (fails the future)
  kMigrateAck,  // {u64 thread id}    corr = matching migrate_async

  // Failure detection: periodic liveness beacon from each comm daemon.
  // Empty payload; best-effort (a heartbeat to a dead peer is dropped, not
  // retried).  Any received frame counts as liveness, so heartbeats only
  // carry information on otherwise-quiet links.
  kHeartbeat,

  kUserBase = 100,
};

/// FNV-1a 32-bit hash of a service name — the wire-level service id.
/// Name-keyed dispatch replaces the old registration-order ids: nodes no
/// longer need to register the same services in the same order (or at
/// all).  Collisions between *registered* names are CHECK-failed at
/// registration time; see Runtime::service / Runtime::service_raw.
constexpr uint32_t service_id(std::string_view name) {
  uint32_t h = 2166136261u;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

}  // namespace pm2
