// Distributed invariant audit.
//
// The whole iso-address design rests on one global safety property (paper
// §3.2): *at any instant, every slot has exactly one owner* — a node (bit
// set in exactly one bitmap) or a thread (bit clear everywhere, the slot
// appearing in exactly one thread's slot list, wherever that thread
// currently lives).
//
// audit_session() proves the property for a live session: under the same
// system-wide critical section the negotiation uses (so no ownership moves
// mid-audit), it gathers every node's bitmap and every node's inventory of
// thread-held slot runs, then checks:
//
//   1. node bitmaps are pairwise disjoint;
//   2. thread-held runs do not overlap each other or any bitmap;
//   3. every slot is covered (owned by someone) — no leaks;
//   4. per-node slot accounting matches the gathered inventory.
//
// Used by stress tests as a final oracle and available to applications as
// a debugging aid (expensive: O(nodes × slots), full lock).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pm2 {

class Runtime;

struct AuditReport {
  bool ok = false;
  uint64_t total_slots = 0;
  uint64_t node_owned = 0;    // free slots across all bitmaps
  uint64_t thread_owned = 0;  // slots in some thread's list
  uint64_t threads_seen = 0;  // live threads across the session
  /// Threads whose runs were demoted to a slot store at audit time, and the
  /// slots those runs span.  Demoted runs still count toward thread_owned:
  /// exactly-one-owner covers them through the demotion records.
  uint64_t threads_demoted = 0;
  uint64_t demoted_slots = 0;
  std::vector<std::string> violations;

  std::string summary() const;
};

/// Run the audit from any PM2 thread.  Locks the system-wide critical
/// section for the duration.
///
/// Caveat: the critical section freezes *ownership bookkeeping*, not
/// migrations — a thread whose slots are mid-flight between two nodes at
/// the moment of the audit belongs to neither inventory and reports as a
/// coverage leak.  Audit at quiescent points (after a barrier with workers
/// drained), which is how the stress tests use it.
AuditReport audit_session(Runtime& rt);

}  // namespace pm2
