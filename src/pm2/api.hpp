// The paper's programming interface (§3.4 and the listings in Figs. 1–4, 7).
//
// Thin free-function wrappers over the Runtime bound to the calling node:
//
//   paper                      here
//   ------------------------   -----------------------------------
//   pm2_isomalloc(size)        pm2::pm2_isomalloc(size)
//   pm2_isofree(addr)          pm2::pm2_isofree(addr)
//   pm2_migrate(thr, node)     pm2::pm2_migrate(thr, node)
//   marcel_self()              pm2::marcel_self()
//   pm2_self()                 pm2::pm2_self()
//   pm2_printf(...)            pm2::pm2_printf(...)
//
// All functions require a Runtime to be active on the calling kernel thread
// (inside Runtime::run, i.e. within any PM2 thread).
//
// The v2 typed asynchronous surface (futures, name-keyed services) lives
// at the bottom of this header: pm2::service / pm2::rpc / pm2::call<R> /
// pm2::call_async<R> / pm2::migrate_async / pm2::on_migration, with
// pm2::Future, pm2::wait_all and pm2::wait_any re-exported from marcel.
#pragma once

#include <cstddef>
#include <utility>

#include "marcel/context.hpp"
#include "marcel/thread.hpp"
#include "pm2/runtime.hpp"

namespace pm2 {

/// This node's rank and the session size.
uint32_t pm2_self();
uint32_t pm2_nodes();

/// Calling PM2 thread's descriptor (paper: marcel_self()).
marcel::Thread* marcel_self();

/// Iso-address allocation: memory that migrates with the calling thread at
/// an identical virtual address (§3.4).  Same contract as malloc/free.
void* pm2_isomalloc(size_t size);
void pm2_isofree(void* addr);
void* pm2_isorealloc(void* addr, size_t size);
/// Extensions: zeroed and aligned iso-address allocation.
void* pm2_isocalloc(size_t n, size_t elem_size);
void* pm2_isomemalign(size_t align, size_t size);

/// Create a migratable thread on this node.  `arg` must not point into
/// node-local (libc) memory if the thread may migrate; use pm2_isomalloc
/// for shared-with-self state.
marcel::ThreadId pm2_thread_create(marcel::EntryFn fn, void* arg,
                                   const char* name = "worker");

/// Create a thread handing it a private copy of [data, data+len): the copy
/// is allocated in the child's own iso-heap (it migrates with the child,
/// who frees it).  The migration-safe argument-passing idiom.
marcel::ThreadId pm2_thread_create_copy(marcel::EntryFn fn, const void* data,
                                        size_t len,
                                        const char* name = "worker");

/// Migrate `thr` to `node`.  If `thr` is the caller, returns on `node`;
/// otherwise preemptive (thr must be READY here).  Paper §2: "any thread
/// may decide to migrate to another node at any arbitrary point…  It may
/// also be preemptively migrated by another thread".
void pm2_migrate(marcel::Thread* thr, uint32_t node);

/// Cooperative yield / deferred-preemption safe point.
void pm2_yield();

/// Park the calling thread for at least `us` microseconds.
void pm2_sleep_us(uint64_t us);

/// Block until thread `id` (on this node) terminates.
bool pm2_join(marcel::ThreadId id);

/// Node-tagged printf, as in the paper's execution traces (Fig. 8).
void pm2_printf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// All-node barrier / session shutdown.
void pm2_barrier();
void pm2_halt();

/// Completion tokens for cross-node termination detection.
void pm2_signal(uint32_t node);
void pm2_wait_signals(uint64_t count);

// ---------------------------------------------------------------------------
// v2 surface: typed asynchronous RPC & migration
// ---------------------------------------------------------------------------

/// The Runtime bound to the calling kernel thread (CHECKs that one is).
Runtime& current_runtime();

/// Completion futures (marcel::Future re-exported; RpcFuture<R> is the
/// typed RPC flavour, declared in pm2/runtime.hpp).
template <typename T>
using Future = marcel::Future<T>;
template <typename T>
using Promise = marcel::Promise<T>;
using marcel::wait_all;
using marcel::wait_any;

/// Register a typed service on this node: `handler` is any callable
/// `R(RpcContext&, Args...)`.  Name-keyed: peers invoke it by name, in any
/// registration order, from any binary.  Returns service_id(name).
template <typename F>
uint32_t service(const char* name, F&& handler) {
  return current_runtime().service(name, std::forward<F>(handler));
}

/// service() whose threads are pinned (see Runtime::service_local).
template <typename F>
uint32_t service_local(const char* name, F&& handler) {
  return current_runtime().service_local(name, std::forward<F>(handler));
}

/// Fire-and-forget remote thread creation with typed arguments.
template <typename... Args>
void rpc(uint32_t node, const char* name, const Args&... args) {
  current_runtime().rpc(node, name, args...);
}

/// Typed blocking request/response: call<R>(node, "name", args...) -> R.
/// Throws RpcError on session shutdown or unknown service.
template <typename R, typename... Args>
R call(uint32_t node, const char* name, const Args&... args) {
  return current_runtime().call<R>(node, name, args...);
}

/// Typed pipelined request: returns immediately; take() yields R.  Any
/// number of requests may be outstanding per thread.
template <typename R, typename... Args>
RpcFuture<R> call_async(uint32_t node, const char* name,
                        const Args&... args) {
  return current_runtime().call_async<R>(node, name, args...);
}

/// Preemptive migration with a completion future (acked by the
/// destination once the thread is installed there).
Future<MigrateResult> migrate_async(marcel::ThreadId id, uint32_t dest);

/// Per-node migration observers (pm2_set_pre/post_migration_func).
void on_migration(MigrationHook pre, MigrationHook post);

}  // namespace pm2
