// Node-to-node message abstraction.
//
// The fabric plays the role of BIP/Myrinet in the paper's testbed: it moves
// byte payloads between "nodes" (container processes, or logical in-process
// nodes for deterministic tests).  Semantics of `type` belong to the layers
// above (pm2 runtime, negotiation protocol); the fabric only routes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace pm2::fabric {

using NodeId = uint32_t;

struct Message {
  uint16_t type = 0;     // protocol-defined discriminator
  NodeId src = 0;        // filled by the fabric on send
  NodeId dst = 0;        // destination node
  uint64_t corr = 0;     // request/reply correlation id (0 = none)
  std::vector<uint8_t> payload;

  size_t wire_size() const;
};

/// Frame header as it travels on stream sockets.
struct WireHeader {
  uint32_t magic;
  uint16_t type;
  uint16_t reserved;
  uint32_t src;
  uint32_t dst;
  uint64_t corr;
  uint64_t payload_len;
};
static_assert(sizeof(WireHeader) == 32);

inline constexpr uint32_t kWireMagic = 0x504D3247;  // "PM2G"

/// Encode `msg` into `out` (header + payload appended).
void encode(const Message& msg, std::vector<uint8_t>& out);

/// Try to decode one frame from the front of `buf`.  On success removes the
/// consumed bytes and returns the message; returns nullopt if `buf` does not
/// yet hold a complete frame.  Panics on corrupt magic.
std::optional<Message> try_decode(std::vector<uint8_t>& buf);

/// Abstract point-to-point transport endpoint bound to one node.
///
/// Threading contract: all calls on a given Fabric instance are made from
/// the kernel thread running that node (PM2 nodes are single-kernel-thread
/// containers for many user-level threads).  Implementations may be called
/// concurrently only through *different* endpoints.
class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual NodeId node_id() const = 0;
  virtual NodeId n_nodes() const = 0;

  /// Send to msg.dst.  Must not deadlock even if the peer is concurrently
  /// sending a large message back (implementations drain incoming traffic
  /// while blocked on a full pipe).
  virtual void send(Message msg) = 0;

  /// Non-blocking receive.
  virtual std::optional<Message> try_recv() = 0;

  /// Receive with timeout in milliseconds (-1 = wait forever).
  virtual std::optional<Message> recv(int timeout_ms) = 0;

  /// Bytes/messages moved (for benches).
  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t messages_sent() const = 0;
};

}  // namespace pm2::fabric
