// Node-to-node message abstraction.
//
// The fabric plays the role of BIP/Myrinet in the paper's testbed: it moves
// byte payloads between "nodes" (container processes, or logical in-process
// nodes for deterministic tests).  Semantics of `type` belong to the layers
// above (pm2 runtime, negotiation protocol); the fabric only routes.
//
// A message carries its payload in exactly one of two forms:
//  * `payload` — a flat byte vector (legacy senders; every decoded frame);
//  * `chain`   — a mad::BufferChain of scatter-gather segments, possibly
//    borrowing the sender's memory (slot images, large pack regions).
// Transports gather the chain straight to the wire; receivers that need
// contiguous bytes call flat(), which flattens lazily (and moves rather
// than copies when the chain is a single owned chunk).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "madeleine/buffers.hpp"

namespace pm2::fabric {

using NodeId = uint32_t;

struct Message {
  uint16_t type = 0;     // protocol-defined discriminator
  NodeId src = 0;        // filled by the fabric on send
  NodeId dst = 0;        // destination node
  uint64_t corr = 0;     // request/reply correlation id (0 = none)
  // Not on the wire: a best-effort frame (heartbeat, load gossip) may be
  // silently dropped if the peer is unreachable, instead of blocking on
  // reconnect or treating the dead link as fatal.  The failure detector is
  // the layer that reacts to an unreachable peer; its own probes must not
  // wedge the daemon that runs it.
  bool best_effort = false;
  std::vector<uint8_t> payload;  // flat form (mutually exclusive with chain)
  mad::BufferChain chain;        // scatter-gather form

  size_t payload_size() const {
    return chain.empty() ? payload.size() : chain.size();
  }
  size_t wire_size() const;

  /// Contiguous view of the payload; flattens `chain` into `payload` on
  /// first use (single-owned-chunk chains are moved, not copied).
  std::vector<uint8_t>& flat();
};

/// Frame header as it travels on stream sockets.
struct WireHeader {
  uint32_t magic;
  uint16_t type;
  uint16_t reserved;
  uint32_t src;
  uint32_t dst;
  uint64_t corr;
  uint64_t payload_len;
};
static_assert(sizeof(WireHeader) == 32);

inline constexpr uint32_t kWireMagic = 0x504D3247;  // "PM2G"

/// Header for `msg` as it would travel on the wire.
WireHeader wire_header(const Message& msg);

/// Encode `msg` into `out` (header + payload appended; chained payloads are
/// gathered in place).
void encode(const Message& msg, std::vector<uint8_t>& out);

/// Try to decode one frame from the front of `buf`.  On success removes the
/// consumed bytes and returns the message; returns nullopt if `buf` does not
/// yet hold a complete frame.  Panics on corrupt magic.
std::optional<Message> try_decode(std::vector<uint8_t>& buf);

/// Abstract point-to-point transport endpoint bound to one node.
///
/// Threading contract: receive-side calls (try_recv/recv_until) on a given
/// Fabric instance are made from one kernel thread — the node's comm-daemon
/// worker.  send() is also bound to that kernel thread unless the endpoint
/// declares concurrent_send_safe(); with multiple scheduler workers the PM2
/// runtime routes other workers' sends accordingly (direct for concurrent-
/// safe endpoints, deferred to the daemon otherwise).  wake() is always
/// callable from any thread.
class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual NodeId node_id() const = 0;
  virtual NodeId n_nodes() const = 0;

  /// May send() be called from a kernel thread other than the receive
  /// owner's, concurrently with send/try_recv/recv_until?  The in-process
  /// hub is (per-destination mailbox locks); the socket fabric is not — its
  /// send() drains incoming traffic while blocked on a full pipe, which
  /// would race the daemon's receive state.
  virtual bool concurrent_send_safe() const { return false; }

  /// Send to msg.dst.  Must not deadlock even if the peer is concurrently
  /// sending a large message back (implementations drain incoming traffic
  /// while blocked on a full pipe).
  ///
  /// Borrowed chain segments only need to stay valid until send() returns:
  /// implementations either gather them to the wire synchronously (socket
  /// fabric) or take ownership of the bytes (in-process hub).
  virtual void send(Message msg) = 0;

  /// Session teardown notice (the runtime calls this when halt is
  /// initiated or received): peers may now exit at any moment, so a send
  /// hitting a closed connection is a droppable late message — gossip or
  /// a reply racing the halt drain — not a fatal transport error.
  virtual void set_teardown(bool) {}

  /// Non-blocking receive.
  virtual std::optional<Message> try_recv() = 0;

  /// Event-driven receive: park the calling kernel thread until a frame
  /// arrives, wake() is called, or now_ns() reaches `deadline_ns`
  /// (UINT64_MAX = wait until a frame or wake).  This is the waitable
  /// readiness handle of the transport — the in-process hub waits on the
  /// destination mailbox's condition variable, the socket fabric on
  /// epoll over the peer links plus its wake eventfd — so an idle comm
  /// daemon consumes no CPU and resumes within the transport's wake
  /// latency of the event, not at the end of a poll interval.
  /// Returns nullopt on deadline expiry or wake-up without a frame.
  virtual std::optional<Message> recv_until(uint64_t deadline_ns) = 0;

  /// Interrupt a concurrent or subsequent recv_until from any kernel
  /// thread (the one cross-thread-safe entry point): the blocked receiver
  /// returns early (possibly nullopt).  Socket fabric: a write to its
  /// eventfd registered in the epoll set; in-process hub: a flagged
  /// notify on the mailbox condvar.
  virtual void wake() = 0;

  /// Receive with timeout in milliseconds (-1 = wait forever), layered on
  /// recv_until for callers that think in intervals (tests, tools).
  std::optional<Message> recv(int timeout_ms);

  /// Bytes/messages moved (for benches).  Both fabrics count
  /// Message::wire_size() at the top of send(), before delivery.
  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t messages_sent() const = 0;

  /// Payload bytes this endpoint memcpy'd on the send path before the wire
  /// (flatten/seal).  The zero-copy pipeline's scorecard: 0 on the socket
  /// fabric, where chained payloads gather straight from the sender's
  /// memory (slot images included) into writev.
  virtual uint64_t payload_copy_bytes() const = 0;
};

}  // namespace pm2::fabric
