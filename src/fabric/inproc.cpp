#include "fabric/inproc.hpp"

#include <chrono>

#include "common/check.hpp"
#include "common/time.hpp"

namespace pm2::fabric {

InProcHub::InProcHub(NodeId n_nodes) {
  PM2_CHECK(n_nodes >= 1);
  boxes_.reserve(n_nodes);
  for (NodeId i = 0; i < n_nodes; ++i)
    boxes_.push_back(std::make_unique<Mailbox>());
}

std::unique_ptr<Fabric> InProcHub::endpoint(NodeId node) {
  PM2_CHECK(node < n_nodes());
  return std::make_unique<InProcEndpoint>(shared_from_this(), node);
}

void InProcHub::deliver(Message msg) {
  PM2_CHECK(msg.dst < n_nodes()) << "bad destination " << msg.dst;
  if (latency_ns_ > 0) {
    // Busy-wait: sleep granularity is far coarser than the latencies being
    // modelled (sub-microsecond network stacks).
    uint64_t until = now_ns() + latency_ns_;
    while (now_ns() < until) {
    }
  }
  Mailbox& box = *boxes_[msg.dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

std::optional<Message> InProcHub::take_until(NodeId node, uint64_t deadline_ns) {
  Mailbox& box = *boxes_[node];
  std::unique_lock<std::mutex> lock(box.mu);
  auto ready = [&] { return !box.queue.empty() || box.wake_pending; };
  if (deadline_ns > 0) {
    if (!ready()) {
      uint64_t now = now_ns();
      if (deadline_ns == UINT64_MAX) {
        box.cv.wait(lock, ready);
      } else if (deadline_ns > now) {
        box.cv.wait_for(lock, std::chrono::nanoseconds(deadline_ns - now),
                        ready);
      }
    }
    // Only a blocking-capable receive consumes the wake latch: a wake()
    // landing during a non-blocking try_recv (deadline 0) must survive to
    // interrupt the *next* recv_until, matching the socket fabric's
    // eventfd semantics.
    box.wake_pending = false;
  }
  if (box.queue.empty()) return std::nullopt;
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

void InProcHub::wake(NodeId node) {
  Mailbox& box = *boxes_[node];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.wake_pending = true;
  }
  box.cv.notify_one();
}

InProcEndpoint::InProcEndpoint(std::shared_ptr<InProcHub> hub, NodeId id)
    : hub_(std::move(hub)), id_(id) {}

NodeId InProcEndpoint::n_nodes() const { return hub_->n_nodes(); }

void InProcEndpoint::send(Message msg) {
  msg.src = id_;
  bytes_sent_.fetch_add(msg.wire_size(), std::memory_order_relaxed);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  // Chained payloads move through the hub as-is — owned chunks change
  // hands with zero copies.  Borrowed segments would dangle once the
  // sender reuses its memory (e.g. migration decommits the slots), so
  // take ownership of those bytes now; this is the in-process equivalent
  // of the socket fabric's synchronous gather-to-wire.
  payload_copy_bytes_.fetch_add(msg.chain.seal(), std::memory_order_relaxed);
  hub_->deliver(std::move(msg));
}

std::optional<Message> InProcEndpoint::try_recv() {
  return hub_->take_until(id_, 0);
}

std::optional<Message> InProcEndpoint::recv_until(uint64_t deadline_ns) {
  return hub_->take_until(id_, deadline_ns);
}

void InProcEndpoint::wake() { hub_->wake(id_); }

}  // namespace pm2::fabric
