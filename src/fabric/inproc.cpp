#include "fabric/inproc.hpp"

#include <chrono>

#include "common/check.hpp"
#include "common/time.hpp"

namespace pm2::fabric {

InProcHub::InProcHub(NodeId n_nodes) {
  PM2_CHECK(n_nodes >= 1);
  boxes_.reserve(n_nodes);
  for (NodeId i = 0; i < n_nodes; ++i)
    boxes_.push_back(std::make_unique<Mailbox>());
}

std::unique_ptr<Fabric> InProcHub::endpoint(NodeId node) {
  PM2_CHECK(node < n_nodes());
  return std::make_unique<InProcEndpoint>(shared_from_this(), node);
}

void InProcHub::deliver(Message msg) {
  PM2_CHECK(msg.dst < n_nodes()) << "bad destination " << msg.dst;
  if (latency_ns_ > 0) {
    // Busy-wait: sleep granularity is far coarser than the latencies being
    // modelled (sub-microsecond network stacks).
    uint64_t until = now_ns() + latency_ns_;
    while (now_ns() < until) {
    }
  }
  Mailbox& box = *boxes_[msg.dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

std::optional<Message> InProcHub::take(NodeId node, int timeout_ms) {
  Mailbox& box = *boxes_[node];
  std::unique_lock<std::mutex> lock(box.mu);
  if (timeout_ms == 0) {
    if (box.queue.empty()) return std::nullopt;
  } else if (timeout_ms < 0) {
    box.cv.wait(lock, [&] { return !box.queue.empty(); });
  } else {
    if (!box.cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                         [&] { return !box.queue.empty(); })) {
      return std::nullopt;
    }
  }
  Message msg = std::move(box.queue.front());
  box.queue.pop_front();
  return msg;
}

InProcEndpoint::InProcEndpoint(std::shared_ptr<InProcHub> hub, NodeId id)
    : hub_(std::move(hub)), id_(id) {}

NodeId InProcEndpoint::n_nodes() const { return hub_->n_nodes(); }

void InProcEndpoint::send(Message msg) {
  msg.src = id_;
  bytes_sent_ += msg.wire_size();
  ++messages_sent_;
  // Chained payloads move through the hub as-is — owned chunks change
  // hands with zero copies.  Borrowed segments would dangle once the
  // sender reuses its memory (e.g. migration decommits the slots), so
  // take ownership of those bytes now; this is the in-process equivalent
  // of the socket fabric's synchronous gather-to-wire.
  payload_copy_bytes_ += msg.chain.seal();
  hub_->deliver(std::move(msg));
}

std::optional<Message> InProcEndpoint::try_recv() { return hub_->take(id_, 0); }

std::optional<Message> InProcEndpoint::recv(int timeout_ms) {
  return hub_->take(id_, timeout_ms);
}

}  // namespace pm2::fabric
