#include "fabric/message.hpp"

#include <cstring>

#include "common/check.hpp"

#include "common/time.hpp"

namespace pm2::fabric {

size_t Message::wire_size() const { return sizeof(WireHeader) + payload_size(); }

std::optional<Message> Fabric::recv(int timeout_ms) {
  if (timeout_ms < 0) return recv_until(UINT64_MAX);
  if (timeout_ms == 0) return try_recv();
  return recv_until(now_ns() + static_cast<uint64_t>(timeout_ms) * 1'000'000);
}

std::vector<uint8_t>& Message::flat() {
  if (!chain.empty()) {
    PM2_CHECK(payload.empty()) << "message with both flat and chained payload";
    payload = chain.take_flat();
  }
  return payload;
}

WireHeader wire_header(const Message& msg) {
  WireHeader h{};
  h.magic = kWireMagic;
  h.type = msg.type;
  h.reserved = 0;
  h.src = msg.src;
  h.dst = msg.dst;
  h.corr = msg.corr;
  h.payload_len = msg.payload_size();
  return h;
}

void encode(const Message& msg, std::vector<uint8_t>& out) {
  WireHeader h = wire_header(msg);
  const auto* hp = reinterpret_cast<const uint8_t*>(&h);
  out.insert(out.end(), hp, hp + sizeof(h));
  if (!msg.chain.empty()) {
    PM2_CHECK(msg.payload.empty())
        << "message with both flat and chained payload";
    size_t off = out.size();
    out.resize(off + msg.chain.size());
    msg.chain.gather(out.data() + off);
  } else {
    out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  }
}

std::optional<Message> try_decode(std::vector<uint8_t>& buf) {
  if (buf.size() < sizeof(WireHeader)) return std::nullopt;
  WireHeader h;
  std::memcpy(&h, buf.data(), sizeof(h));
  PM2_CHECK(h.magic == kWireMagic) << "corrupt frame on fabric stream";
  size_t total = sizeof(WireHeader) + h.payload_len;
  if (buf.size() < total) return std::nullopt;
  Message msg;
  msg.type = h.type;
  msg.src = h.src;
  msg.dst = h.dst;
  msg.corr = h.corr;
  msg.payload.assign(buf.begin() + sizeof(WireHeader), buf.begin() + total);
  buf.erase(buf.begin(), buf.begin() + total);
  return msg;
}

}  // namespace pm2::fabric
