#include "fabric/socket_fabric.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "sys/socket.hpp"

namespace pm2::fabric {

namespace {

class SocketFabric final : public Fabric {
 public:
  explicit SocketFabric(const SocketFabricConfig& config);

  NodeId node_id() const override { return config_.node_id; }
  NodeId n_nodes() const override { return config_.n_nodes; }
  void send(Message msg) override;
  std::optional<Message> try_recv() override;
  std::optional<Message> recv(int timeout_ms) override;
  uint64_t bytes_sent() const override { return bytes_sent_; }
  uint64_t messages_sent() const override { return messages_sent_; }

 private:
  struct Conn {
    sys::Fd fd;
    std::vector<uint8_t> rx;  // partial-frame accumulator
  };

  void connect_mesh();
  /// Drain every readable peer into rx queues; parse complete frames.
  void pump(int timeout_ms);
  void drain_fd(size_t peer);

  SocketFabricConfig config_;
  std::vector<Conn> conns_;  // indexed by peer node id (self unused)
  sys::Poller poller_;
  std::deque<Message> inbox_;
  // Heap-allocated receive buffer: fabric calls run on PM2 threads whose
  // whole stack is one 64 KB slot, so large stack buffers are forbidden.
  std::vector<char> rxbuf_ = std::vector<char>(64 * 1024);
  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
};

SocketFabric::SocketFabric(const SocketFabricConfig& config) : config_(config) {
  PM2_CHECK(config_.node_id < config_.n_nodes);
  conns_.resize(config_.n_nodes);
  connect_mesh();
}

std::string sock_path(const SocketFabricConfig& c, NodeId node) {
  return c.dir + "/node" + std::to_string(node) + ".sock";
}

void SocketFabric::connect_mesh() {
  const NodeId self = config_.node_id;
  const NodeId n = config_.n_nodes;

  // Listen first so lower-id peers can find us.
  sys::Fd listener;
  uint16_t port = static_cast<uint16_t>(config_.base_port + self);
  if (n > 1) {
    listener = config_.use_tcp ? sys::tcp_listen(port)
                               : sys::uds_listen(sock_path(config_, self));
  }

  // Connect to all lower-numbered nodes, sending a hello with our id.
  for (NodeId peer = 0; peer < self; ++peer) {
    sys::Fd fd =
        config_.use_tcp
            ? sys::tcp_connect(static_cast<uint16_t>(config_.base_port + peer),
                               config_.connect_timeout_ms)
            : sys::uds_connect(sock_path(config_, peer),
                               config_.connect_timeout_ms);
    uint32_t hello = self;
    sys::send_all(fd, &hello, sizeof(hello));
    conns_[peer].fd = std::move(fd);
  }

  // Accept from all higher-numbered nodes.
  for (NodeId k = self + 1; k < n; ++k) {
    sys::Fd fd = sys::accept_one(listener);
    if (config_.use_tcp) sys::set_nodelay(fd);
    uint32_t hello = 0;
    PM2_CHECK(sys::recv_all(fd, &hello, sizeof(hello)))
        << "peer hung up during hello";
    PM2_CHECK(hello > self && hello < n) << "bad hello id " << hello;
    PM2_CHECK(!conns_[hello].fd.valid()) << "duplicate connection from " << hello;
    conns_[hello].fd = std::move(fd);
  }

  // Switch all links to non-blocking and register for polling.  Grow the
  // socket buffers: migration payloads are slot-sized (64 KB+).
  for (NodeId peer = 0; peer < n; ++peer) {
    if (peer == self) continue;
    int sz = 1 << 20;
    ::setsockopt(conns_[peer].fd.get(), SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
    ::setsockopt(conns_[peer].fd.get(), SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
    sys::set_nonblocking(conns_[peer].fd, true);
    poller_.add(conns_[peer].fd.get(), peer);
  }
  PM2_DEBUG << "socket mesh up (" << n << " nodes)";
}

void SocketFabric::send(Message msg) {
  PM2_CHECK(msg.dst < config_.n_nodes && msg.dst != config_.node_id)
      << "bad destination " << msg.dst;
  msg.src = config_.node_id;
  std::vector<uint8_t> wire;
  wire.reserve(msg.wire_size());
  encode(msg, wire);
  bytes_sent_ += wire.size();
  ++messages_sent_;

  const sys::Fd& fd = conns_[msg.dst].fd;
  size_t off = 0;
  while (off < wire.size()) {
    ssize_t n = ::send(fd.get(), wire.data() + off, wire.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The pipe to the peer is full.  The peer may itself be blocked
      // sending to us; drain incoming traffic so both sides make progress
      // (classic anti-deadlock for synchronous meshes).
      pump(1);
      continue;
    }
    PM2_CHECK(n >= 0 || errno == EINTR) << "send: " << std::strerror(errno);
  }
}

void SocketFabric::drain_fd(size_t peer) {
  Conn& c = conns_[peer];
  char* buf = rxbuf_.data();
  while (true) {
    ssize_t n = ::recv(c.fd.get(), buf, rxbuf_.size(), 0);
    if (n > 0) {
      c.rx.insert(c.rx.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      // Peer exited; treated as fatal at this layer (PM2 nodes shut down
      // through an explicit HALT message before closing sockets).
      poller_.remove(c.fd.get());
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    PM2_CHECK(errno == EINTR) << "recv: " << std::strerror(errno);
  }
  while (auto msg = try_decode(c.rx)) inbox_.push_back(std::move(*msg));
}

void SocketFabric::pump(int timeout_ms) {
  for (uint64_t tag : poller_.wait(timeout_ms)) drain_fd(tag);
}

std::optional<Message> SocketFabric::try_recv() {
  if (inbox_.empty()) pump(0);
  if (inbox_.empty()) return std::nullopt;
  Message msg = std::move(inbox_.front());
  inbox_.pop_front();
  return msg;
}

std::optional<Message> SocketFabric::recv(int timeout_ms) {
  if (auto msg = try_recv()) return msg;
  pump(timeout_ms);
  if (inbox_.empty()) return std::nullopt;
  Message msg = std::move(inbox_.front());
  inbox_.pop_front();
  return msg;
}

}  // namespace

std::unique_ptr<Fabric> make_socket_fabric(const SocketFabricConfig& config) {
  return std::make_unique<SocketFabric>(config);
}

}  // namespace pm2::fabric
