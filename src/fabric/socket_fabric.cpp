#include "fabric/socket_fabric.hpp"

#include <errno.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "sys/socket.hpp"

namespace pm2::fabric {

namespace {

// Payloads at least this large are scatter-read directly into the final
// Message buffer instead of bouncing through the per-connection
// accumulator (which costs two extra copies per byte).  Small frames keep
// the bulk-read path: one recv() can pick up dozens of them.
constexpr size_t kDirectRecvMin = 8 * 1024;

// sendmsg() rejects iov counts above IOV_MAX (1024 on Linux); long chains
// (one segment per live heap extent) are gathered in slices.
constexpr size_t kMaxIov = 1024;

// Poller tag of the wake eventfd (peer links are tagged by NodeId).
constexpr uint64_t kWakeTag = UINT64_MAX;
// Poller tag of the session-lifetime listener (allow_reconnect only).
constexpr uint64_t kListenTag = UINT64_MAX - 1;
// Tag base of accepted sockets whose reconnect hello has not fully arrived
// yet: tag = kPendingTagBase + fd.  Disjoint from NodeId tags (32-bit) and
// from the two sentinels above (fds are nowhere near 2^63).
constexpr uint64_t kPendingTagBase = uint64_t{1} << 32;

class SocketFabric final : public Fabric {
 public:
  explicit SocketFabric(const SocketFabricConfig& config);

  NodeId node_id() const override { return config_.node_id; }
  NodeId n_nodes() const override { return config_.n_nodes; }
  void send(Message msg) override;
  std::optional<Message> try_recv() override;
  std::optional<Message> recv_until(uint64_t deadline_ns) override;
  void wake() override;
  uint64_t bytes_sent() const override { return bytes_sent_; }
  uint64_t messages_sent() const override { return messages_sent_; }
  uint64_t payload_copy_bytes() const override { return payload_copy_bytes_; }
  void set_teardown(bool teardown) override { teardown_ = teardown; }

 private:
  struct Conn {
    sys::Fd fd;
    std::vector<uint8_t> rx;  // partial-frame accumulator (bulk path)
    // Direct-read state: while in_body, payload bytes land straight in
    // `body` (the future Message::payload) with no staging copy.
    WireHeader hdr{};
    std::vector<uint8_t> body;
    size_t body_fill = 0;
    bool in_body = false;
  };

  void connect_mesh();
  /// Register a (fresh or replacement) peer link: socket buffers,
  /// non-blocking mode, poller membership.
  void attach_conn(NodeId peer, sys::Fd fd);
  /// Accept a restarted peer's replacement connection (allow_reconnect):
  /// park it as a pending handshake, never blocking the pump loop.
  void accept_reconnect();
  /// Drive a pending handshake whose fd turned readable; attaches the link
  /// once the 4-byte hello is complete, drops it on EOF or a bad id.
  void pump_pending_hello(int raw_fd);
  /// Drop a dead peer's link so a replacement can take its place.
  void detach_conn(NodeId peer);
  /// Block (bounded) until `peer` is connected again: higher peers dial us
  /// (wait on the listener), lower peers are redialed.
  void await_reconnect(NodeId peer);
  /// One sendmsg pass over a fully built iov_.  Returns false when the
  /// link died mid-frame (reconnect then resends the whole frame).
  bool send_frame(NodeId peer);
  /// Drain every readable peer; parse complete frames into the inbox.
  void pump(int timeout_ms);
  void pump_ns(uint64_t timeout_ns);
  void drain_fd(size_t peer);
  void dispatch_tags(const std::vector<uint64_t>& tags);
  /// Decode complete frames from the accumulator; switch large partial
  /// frames to the direct-read path.
  void parse_frames(Conn& c);
  void finish_direct(Conn& c);

  /// Reconnect handshake in flight: an accepted socket is nonblocking from
  /// the start and polled (kPendingTagBase + fd) until its hello arrives —
  /// a peer that connects and stalls can never wedge the node.
  struct PendingHello {
    sys::Fd fd;
    uint32_t hello = 0;
    size_t fill = 0;
  };

  SocketFabricConfig config_;
  std::vector<Conn> conns_;  // indexed by peer node id (self unused)
  std::unordered_map<int, PendingHello> pending_;  // keyed by raw fd
  // Kept open for the whole session under allow_reconnect (polled with
  // kListenTag); otherwise closed once the mesh is up.
  sys::Fd listener_;
  sys::Poller poller_;
  // Waitable readiness handle: wake() (from any thread) makes a blocked
  // recv_until return early by tripping this eventfd in the epoll set.
  sys::Fd wake_fd_;
  bool wake_pending_ = false;
  std::deque<Message> inbox_;
  // Pooled receive staging shared by all connections, heap-allocated:
  // fabric calls run on PM2 threads whose whole stack is one 64 KB slot,
  // so large stack buffers are forbidden.
  std::vector<uint8_t> rxbuf_ = std::vector<uint8_t>(64 * 1024);
  std::vector<struct iovec> iov_;  // scratch gather list for send()
  bool teardown_ = false;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t payload_copy_bytes_ = 0;
};

SocketFabric::SocketFabric(const SocketFabricConfig& config) : config_(config) {
  PM2_CHECK(config_.node_id < config_.n_nodes);
  conns_.resize(config_.n_nodes);
  wake_fd_ = sys::Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  PM2_CHECK(wake_fd_.valid()) << "eventfd: " << std::strerror(errno);
  poller_.add(wake_fd_.get(), kWakeTag);
  connect_mesh();
}

std::string sock_path(const SocketFabricConfig& c, NodeId node) {
  return c.dir + "/node" + std::to_string(node) + ".sock";
}

void SocketFabric::connect_mesh() {
  const NodeId self = config_.node_id;
  const NodeId n = config_.n_nodes;

  // Listen first so lower-id peers can find us.
  uint16_t port = static_cast<uint16_t>(config_.base_port + self);
  if (n > 1) {
    listener_ = config_.use_tcp ? sys::tcp_listen(port)
                                : sys::uds_listen(sock_path(config_, self));
  }

  // Connect to all lower-numbered nodes, sending a hello with our id.
  for (NodeId peer = 0; peer < self; ++peer) {
    sys::Fd fd =
        config_.use_tcp
            ? sys::tcp_connect(static_cast<uint16_t>(config_.base_port + peer),
                               config_.connect_timeout_ms)
            : sys::uds_connect(sock_path(config_, peer),
                               config_.connect_timeout_ms);
    uint32_t hello = self;
    sys::send_all(fd, &hello, sizeof(hello));
    conns_[peer].fd = std::move(fd);
  }

  // Accept from all higher-numbered nodes.
  for (NodeId k = self + 1; k < n; ++k) {
    sys::Fd fd = sys::accept_one(listener_);
    if (config_.use_tcp) sys::set_nodelay(fd);
    uint32_t hello = 0;
    PM2_CHECK(sys::recv_all(fd, &hello, sizeof(hello)))
        << "peer hung up during hello";
    PM2_CHECK(hello > self && hello < n) << "bad hello id " << hello;
    PM2_CHECK(!conns_[hello].fd.valid()) << "duplicate connection from " << hello;
    conns_[hello].fd = std::move(fd);
  }

  // Switch all links to non-blocking and register for polling.  Grow the
  // socket buffers: migration payloads are slot-sized (64 KB+).
  for (NodeId peer = 0; peer < n; ++peer) {
    if (peer == self) continue;
    int sz = 1 << 20;
    ::setsockopt(conns_[peer].fd.get(), SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
    ::setsockopt(conns_[peer].fd.get(), SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
    sys::set_nonblocking(conns_[peer].fd, true);
    poller_.add(conns_[peer].fd.get(), peer);
  }
  if (config_.allow_reconnect && n > 1) {
    // The listener lives as long as the fabric: a peer that crashed and
    // restarted dials the same path and replaces its link.
    poller_.add(listener_.get(), kListenTag);
  } else {
    listener_.reset();
  }
  PM2_DEBUG << "socket mesh up (" << n << " nodes)";
}

void SocketFabric::attach_conn(NodeId peer, sys::Fd fd) {
  if (config_.use_tcp) sys::set_nodelay(fd);
  int sz = 1 << 20;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
  ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
  sys::set_nonblocking(fd, true);
  poller_.add(fd.get(), peer);
  conns_[peer].fd = std::move(fd);
}

void SocketFabric::detach_conn(NodeId peer) {
  Conn& c = conns_[peer];
  c.fd.reset();
  // A partial frame from the dead incarnation is void; frames that fully
  // arrived are already in the inbox and stay deliverable.
  c.rx.clear();
  c.body.clear();
  c.body_fill = 0;
  c.in_body = false;
}

void SocketFabric::accept_reconnect() {
  sys::Fd fd = sys::accept_one(listener_);
  sys::set_nonblocking(fd, true);
  const int raw = fd.get();
  poller_.add(raw, kPendingTagBase + static_cast<uint64_t>(raw));
  pending_[raw].fd = std::move(fd);
  // The hello is read by pump_pending_hello as its bytes arrive.
}

void SocketFabric::pump_pending_hello(int raw_fd) {
  auto it = pending_.find(raw_fd);
  if (it == pending_.end()) return;  // stale event after a drop
  PendingHello& p = it->second;
  while (p.fill < sizeof(p.hello)) {
    ssize_t n = ::recv(p.fd.get(), reinterpret_cast<char*>(&p.hello) + p.fill,
                       sizeof(p.hello) - p.fill, 0);
    if (n > 0) {
      p.fill += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    PM2_WARN << "reconnecting peer hung up during hello";
    poller_.remove(p.fd.get());
    pending_.erase(it);
    return;
  }
  const uint32_t hello = p.hello;
  sys::Fd fd = std::move(p.fd);
  poller_.remove(fd.get());
  pending_.erase(it);
  if (hello >= config_.n_nodes || hello == config_.node_id) {
    // A stray connection must not take the node down with it.
    PM2_WARN << "dropping reconnect with bad hello id " << hello;
    return;
  }
  if (conns_[hello].fd.valid()) {
    // The old link died but we have not read its EOF yet (the peer was
    // killed and restarted between two pumps): retire it first.
    poller_.remove(conns_[hello].fd.get());
    detach_conn(static_cast<NodeId>(hello));
  }
  PM2_DEBUG << "node " << hello << " reconnected";
  attach_conn(static_cast<NodeId>(hello), std::move(fd));
}

void SocketFabric::await_reconnect(NodeId peer) {
  PM2_DEBUG << "waiting for node " << peer << " to come back";
  const uint64_t deadline =
      now_ns() + uint64_t{static_cast<uint64_t>(config_.connect_timeout_ms)} *
                     1'000'000ull;
  if (peer > config_.node_id) {
    // The restarted peer dials us (it connects to all lower ids): pump the
    // poller until accept_reconnect restored the link.
    while (!conns_[peer].fd.valid()) {
      PM2_CHECK(now_ns() < deadline)
          << "node " << peer << " did not reconnect";
      pump(10);
    }
    return;
  }
  // We dial lower-numbered peers.  uds/tcp_connect retry internally until
  // their own timeout; the restarted peer's accept loop picks us up.
  sys::Fd fd =
      config_.use_tcp
          ? sys::tcp_connect(static_cast<uint16_t>(config_.base_port + peer),
                             config_.connect_timeout_ms)
          : sys::uds_connect(sock_path(config_, peer),
                             config_.connect_timeout_ms);
  uint32_t hello = config_.node_id;
  sys::send_all(fd, &hello, sizeof(hello));
  attach_conn(peer, std::move(fd));
}

bool SocketFabric::send_frame(NodeId peer) {
  size_t idx = 0;
  while (idx < iov_.size()) {
    const sys::Fd& fd = conns_[peer].fd;
    if (!fd.valid()) return false;  // EOF was drained by a pump() below
    struct msghdr mh {};
    mh.msg_iov = iov_.data() + idx;
    mh.msg_iovlen = std::min(iov_.size() - idx, kMaxIov);
    ssize_t n;
    if (sys::fault_take_eintr()) {
      // Injected signal-interrupt: exercise the EINTR retry below.
      n = -1;
      errno = EINTR;
    } else if (sys::fault_take_short_write()) {
      // Injected short write: push one byte so the partial-write resume
      // logic (iov advance across segment boundaries) runs for real.
      struct iovec one = iov_[idx];
      one.iov_len = 1;
      struct msghdr mh1 {};
      mh1.msg_iov = &one;
      mh1.msg_iovlen = 1;
      n = ::sendmsg(fd.get(), &mh1, MSG_NOSIGNAL);
    } else {
      n = ::sendmsg(fd.get(), &mh, MSG_NOSIGNAL);
    }
    if (n > 0) {
      auto left = static_cast<size_t>(n);
      while (left > 0) {
        if (left >= iov_[idx].iov_len) {
          left -= iov_[idx].iov_len;
          ++idx;
        } else {
          iov_[idx].iov_base = static_cast<char*>(iov_[idx].iov_base) + left;
          iov_[idx].iov_len -= left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The pipe to the peer is full.  The peer may itself be blocked
      // sending to us; drain incoming traffic so both sides make progress
      // (classic anti-deadlock for synchronous meshes).
      pump(1);
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    PM2_CHECK(n >= 0 || errno == EINTR) << "sendmsg: " << std::strerror(errno);
  }
  return true;
}

void SocketFabric::send(Message msg) {
  PM2_CHECK(msg.dst < config_.n_nodes && msg.dst != config_.node_id)
      << "bad destination " << msg.dst;
  msg.src = config_.node_id;
  WireHeader h = wire_header(msg);
  bytes_sent_ += msg.wire_size();
  ++messages_sent_;

  while (true) {
    // Gather list: header + payload segments, straight from the sender's
    // memory (slot images included) — no flatten, no staging copy.  Built
    // fresh per attempt: a reconnect resends the frame from byte zero.
    iov_.clear();
    iov_.push_back({&h, sizeof(h)});
    if (!msg.chain.empty()) {
      PM2_CHECK(msg.payload.empty())
          << "message with both flat and chained payload";
      for (const mad::BufferChain::Segment& seg : msg.chain.segments())
        iov_.push_back({const_cast<uint8_t*>(seg.data), seg.len});
    } else if (!msg.payload.empty()) {
      iov_.push_back({msg.payload.data(), msg.payload.size()});
    }

    if (send_frame(msg.dst)) return;

    // The link died mid-frame.
    if (teardown_ || msg.best_effort) {
      // Session teardown: the peer legitimately exited, and this is a late
      // message (load gossip, a reply racing the halt drain) losing the
      // race — drop it rather than kill a node that is itself about to
      // exit.  Best-effort frames (heartbeats, gossip) get the same
      // treatment at any time: the failure detector handles dead peers,
      // and its probes must not block on reconnect or abort the prober.
      // Undo the top-of-send accounting: this frame never went out.
      bytes_sent_ -= msg.wire_size();
      --messages_sent_;
      PM2_DEBUG << "dropping frame to " << (teardown_ ? "exited" : "dead")
                << " node " << msg.dst;
      return;
    }
    // Outside teardown a dead peer is fatal unless the session runs in
    // crash-restart mode: dropping would turn a peer crash into a silent
    // hang of every pending caller.
    PM2_CHECK(config_.allow_reconnect)
        << "node " << msg.dst << " died mid-session";
    if (conns_[msg.dst].fd.valid()) {
      // sendmsg saw the break before recv did: retire the dead link.
      poller_.remove(conns_[msg.dst].fd.get());
      detach_conn(msg.dst);
    }
    await_reconnect(msg.dst);
    // The restarted peer never saw any byte of this frame (its old socket
    // died with the old process); resend it whole.
  }
}

void SocketFabric::finish_direct(Conn& c) {
  Message msg;
  msg.type = c.hdr.type;
  msg.src = c.hdr.src;
  msg.dst = c.hdr.dst;
  msg.corr = c.hdr.corr;
  msg.payload = std::move(c.body);
  c.body = std::vector<uint8_t>();
  c.body_fill = 0;
  c.in_body = false;
  inbox_.push_back(std::move(msg));
}

void SocketFabric::parse_frames(Conn& c) {
  while (!c.in_body) {
    if (c.rx.size() < sizeof(WireHeader)) return;
    WireHeader h;
    std::memcpy(&h, c.rx.data(), sizeof(h));
    PM2_CHECK(h.magic == kWireMagic) << "corrupt frame on fabric stream";
    size_t total = sizeof(WireHeader) + h.payload_len;
    if (c.rx.size() >= total) {
      auto msg = try_decode(c.rx);
      inbox_.push_back(std::move(*msg));
      continue;
    }
    if (h.payload_len >= kDirectRecvMin) {
      // Large frame, partially here: seed the direct-read buffer with the
      // bytes that already arrived and scatter the rest straight into it.
      // The resize() pays one value-init pass over the payload (vector has
      // no uninitialized grow until C++23); still one write per byte
      // against the old path's three (rxbuf -> accumulator -> payload).
      c.hdr = h;
      c.body.resize(h.payload_len);
      size_t have = c.rx.size() - sizeof(WireHeader);
      std::memcpy(c.body.data(), c.rx.data() + sizeof(WireHeader), have);
      c.body_fill = have;
      c.rx.clear();
      c.in_body = true;
    }
    return;
  }
}

void SocketFabric::drain_fd(size_t peer) {
  Conn& c = conns_[peer];
  while (true) {
    ssize_t n;
    if (c.in_body) {
      n = ::recv(c.fd.get(), c.body.data() + c.body_fill,
                 c.body.size() - c.body_fill, 0);
      if (n > 0) {
        c.body_fill += static_cast<size_t>(n);
        if (c.body_fill == c.body.size()) finish_direct(c);
        continue;
      }
    } else {
      n = ::recv(c.fd.get(), rxbuf_.data(), rxbuf_.size(), 0);
      if (n > 0) {
        c.rx.insert(c.rx.end(), rxbuf_.data(), rxbuf_.data() + n);
        // Parse immediately: frames must reach the inbox even if the very
        // next read reports the peer's EOF.
        parse_frames(c);
        continue;
      }
    }
    if (n == 0 || (n < 0 && errno == ECONNRESET)) {
      // Peer exited.  Complete frames were already parsed above; a partial
      // frame means the peer died mid-send, which PM2's explicit-HALT
      // shutdown protocol rules out — except in crash-restart sessions,
      // where the link is fully retired so a restarted peer can replace it.
      poller_.remove(c.fd.get());
      if (config_.allow_reconnect && !teardown_) {
        PM2_DEBUG << "node " << peer << " disconnected";
        detach_conn(static_cast<NodeId>(peer));
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    PM2_CHECK(errno == EINTR) << "recv: " << std::strerror(errno);
  }
}

void SocketFabric::dispatch_tags(const std::vector<uint64_t>& tags) {
  for (uint64_t tag : tags) {
    if (tag == kWakeTag) {
      uint64_t counter;
      while (::read(wake_fd_.get(), &counter, sizeof(counter)) > 0) {
      }
      wake_pending_ = true;
      continue;
    }
    if (tag == kListenTag) {
      accept_reconnect();
      continue;
    }
    if (tag >= kPendingTagBase) {
      pump_pending_hello(static_cast<int>(tag - kPendingTagBase));
      continue;
    }
    drain_fd(tag);
  }
}

void SocketFabric::pump(int timeout_ms) {
  dispatch_tags(poller_.wait(timeout_ms));
}

void SocketFabric::pump_ns(uint64_t timeout_ns) {
  dispatch_tags(poller_.wait_ns(timeout_ns));
}

std::optional<Message> SocketFabric::try_recv() {
  if (inbox_.empty()) pump(0);
  if (inbox_.empty()) return std::nullopt;
  Message msg = std::move(inbox_.front());
  inbox_.pop_front();
  return msg;
}

std::optional<Message> SocketFabric::recv_until(uint64_t deadline_ns) {
  while (true) {
    if (auto msg = try_recv()) return msg;
    if (wake_pending_) {  // interrupted by wake(): report "no frame"
      wake_pending_ = false;
      return std::nullopt;
    }
    uint64_t now = now_ns();
    if (now >= deadline_ns) return std::nullopt;
    pump_ns(deadline_ns == UINT64_MAX ? UINT64_MAX : deadline_ns - now);
  }
}

void SocketFabric::wake() {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t ignored =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace

std::unique_ptr<Fabric> make_socket_fabric(const SocketFabricConfig& config) {
  return std::make_unique<SocketFabric>(config);
}

}  // namespace pm2::fabric
