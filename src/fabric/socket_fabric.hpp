// Socket fabric: full mesh of stream connections between node *processes*
// on one host (UNIX domain sockets by default, TCP loopback optional).
//
// Stands in for the paper's BIP/Myrinet interconnect.  Topology setup is
// rendezvous-free: node i listens at <dir>/node<i>.sock; every node j
// connects to all i < j and accepts from all k > j, identifying itself with
// a hello byte carrying its node id.
#pragma once

#include <memory>
#include <string>

#include "fabric/message.hpp"

namespace pm2::fabric {

struct SocketFabricConfig {
  NodeId node_id = 0;
  NodeId n_nodes = 1;
  /// Directory for the UNIX socket files; every node of the session must use
  /// the same value (the launcher passes it through the environment).
  std::string dir = "/tmp/pm2";
  bool use_tcp = false;
  /// Base TCP port; node i listens on base_port + i (TCP mode only).
  uint16_t base_port = 29000;
  int connect_timeout_ms = 10000;
  /// Survive a peer process dying and coming back (crash-restart
  /// sessions): the listener stays open for the session's lifetime and a
  /// restarted peer's hello *replaces* its old link; send() to a dead peer
  /// blocks (bounded by connect_timeout_ms) until the peer is back, then
  /// resends the frame on the fresh connection.  Off (default), a dead
  /// peer outside teardown is fatal — crashing silently would hang every
  /// pending caller.
  bool allow_reconnect = false;
};

/// Build the mesh (blocks until all peers are connected).
std::unique_ptr<Fabric> make_socket_fabric(const SocketFabricConfig& config);

}  // namespace pm2::fabric
