// Deterministic fault injection for either transport.
//
// FaultFabric is a Fabric decorator driven by a seedable FaultPlan: it can
// drop, delay, duplicate, and truncate outgoing frames, enforce one-way
// partitions, flap a link for a while, and arm forced short writes / EINTR
// in the socket send path.  Everything it injects is counted, so a test can
// assert the plan actually fired rather than silently not matching.
//
// The plan is a pure function of its seed (pm2::Rng, no global RNG), which
// keeps chaos runs reproducible: the same seed over the same traffic makes
// the same decisions.
//
// Scope and safety: drop/dup/truncate model *application-level* loss on a
// reliable stream — there is no retransmission layer underneath, so a
// dropped control frame (barrier release, migration payload, install ack)
// would wedge or corrupt a session outright rather than exercise a recovery
// path.  By default those mutations therefore apply only to loss-tolerant
// types (RPC requests/replies, load gossip, heartbeats, user channels),
// where the deadline + tombstone machinery turns a loss into a clean
// kTimeout.  `all=1` lifts the filter for tests that want to break control
// traffic on purpose (e.g. partition tests already do, wholesale).
// Delay applies to every type: a slow frame is always legal.
//
// Plan grammar (comma-separated `key=value`; probabilities in [0,1];
// durations accept ns/us/ms/s suffixes, bare numbers are ns):
//
//   seed=42            RNG seed (default 1)
//   drop=0.01          P(drop) per eligible frame
//   dup=0.01           P(duplicate) per eligible frame
//   trunc=0.01         P(truncate payload to a random prefix)
//   delay=200us        max added latency; each delayed frame waits
//                      uniform(0, delay]
//   delay_p=0.5        P(delay) per frame (default 1 when delay is set)
//   part=0->1          one-way partition: frames from node 0 to node 1
//                      never arrive (repeatable; applied on the sender)
//   flap_p=0.001       P(start a link flap) per send
//   flap=5ms           flap duration: all traffic to that peer drops
//   shortw=16          force the next 16 socket writes to be 1-byte short
//   eintr=16           force the next 16 sendmsg calls to fail with EINTR
//   all=1              apply drop/dup/trunc to every message type
//
// A per-destination scope `key@node=value` overrides drop/dup/trunc/delay_p
// for frames to that node only, e.g. `drop@2=1` drops everything to node 2.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "fabric/message.hpp"
#include "sys/spinlock.hpp"

namespace pm2::fabric {

struct FaultPlan {
  uint64_t seed = 1;
  double drop = 0.0;
  double dup = 0.0;
  double trunc = 0.0;
  double delay_p = 0.0;
  uint64_t delay_ns = 0;
  double flap_p = 0.0;
  uint64_t flap_ns = 5'000'000;  // 5 ms
  uint64_t short_writes = 0;
  uint64_t eintr = 0;
  bool all_types = false;
  std::vector<std::pair<NodeId, NodeId>> partitions;  // one-way src -> dst
  // Per-destination overrides (key@node=value).
  std::unordered_map<NodeId, double> drop_per_peer;
  std::unordered_map<NodeId, double> dup_per_peer;
  std::unordered_map<NodeId, double> trunc_per_peer;
  std::unordered_map<NodeId, double> delay_p_per_peer;

  /// Does this plan inject anything at all?  An inactive plan makes
  /// FaultFabric a pure pass-through.
  bool active() const;

  /// Parse the grammar above; PM2_CHECK-fails on malformed input (a chaos
  /// run with a silently-ignored plan is worse than a loud one).
  static FaultPlan parse(const std::string& spec);

  /// Plan from the PM2_FAULT_PLAN env var; inactive plan when unset/empty.
  static FaultPlan from_env();
};

/// Injection counters.  Every mutated frame increments exactly one of the
/// first six; `short_writes`/`eintr` count consumed forced-I/O budget.
struct FaultStats {
  uint64_t dropped = 0;
  uint64_t delayed = 0;
  uint64_t duplicated = 0;
  uint64_t truncated = 0;
  uint64_t partitioned = 0;
  uint64_t flapped = 0;
  uint64_t short_writes = 0;
  uint64_t eintr = 0;
  uint64_t total() const {
    return dropped + delayed + duplicated + truncated + partitioned +
           flapped + short_writes + eintr;
  }
};

class FaultFabric : public Fabric {
 public:
  FaultFabric(std::unique_ptr<Fabric> inner, FaultPlan plan);
  ~FaultFabric() override;

  NodeId node_id() const override { return inner_->node_id(); }
  NodeId n_nodes() const override { return inner_->n_nodes(); }
  bool concurrent_send_safe() const override {
    return inner_->concurrent_send_safe();
  }
  void send(Message msg) override;
  void set_teardown(bool v) override { inner_->set_teardown(v); }
  std::optional<Message> try_recv() override;
  std::optional<Message> recv_until(uint64_t deadline_ns) override;
  void wake() override { inner_->wake(); }
  uint64_t bytes_sent() const override { return inner_->bytes_sent(); }
  uint64_t messages_sent() const override { return inner_->messages_sent(); }
  uint64_t payload_copy_bytes() const override {
    return inner_->payload_copy_bytes();
  }

  const FaultPlan& plan() const { return plan_; }
  FaultStats stats() const;
  Fabric& inner() { return *inner_; }

  /// Release every held frame immediately, ignoring release times.  The
  /// comm daemon calls this when it exits: a session-closing frame (the
  /// halt broadcast, a final reply) that drew a delay must still reach the
  /// wire — after the daemon's last lap nobody would ever flush it, and
  /// the peers would wait forever.
  void drain_delayed();

 private:
  struct Delayed {
    uint64_t release_ns;
    Message msg;
  };

  // What to do with one outgoing frame (decided under lock, acted outside).
  enum class Action { kForward, kDrop, kDuplicate, kTruncate, kDelay };

  Action decide(const Message& msg, uint64_t now, uint64_t* release_ns,
                uint64_t* trunc_len) PM2_REQUIRES(lock_);
  bool mutable_type(uint16_t type) const;
  /// Pop frames whose release time has passed (under lock) and send them
  /// through the inner transport (outside the lock).
  void flush_due(uint64_t now);
  uint64_t next_release() const;

  std::unique_ptr<Fabric> inner_;
  const FaultPlan plan_;
  const bool pass_through_;  // inactive plan: skip all bookkeeping

  mutable sys::SpinLock lock_{sys::LockRank::kLeaf};
  pm2::Rng rng_ PM2_GUARDED_BY(lock_);
  std::deque<Delayed> delayed_ PM2_GUARDED_BY(lock_);
  std::vector<uint64_t> flap_until_ PM2_GUARDED_BY(lock_);  // per peer, ns
  FaultStats stats_ PM2_GUARDED_BY(lock_);
};

/// Wrap `inner` when the plan is active; otherwise return it unchanged
/// (zero overhead for the fault-free path).
std::unique_ptr<Fabric> wrap_with_faults(std::unique_ptr<Fabric> inner,
                                         const FaultPlan& plan);

}  // namespace pm2::fabric
