#include "fabric/fault_fabric.hpp"

#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
// The loss-tolerant type filter needs the protocol's discriminators.  The
// fabric otherwise stays protocol-agnostic; this is a read-only peek at the
// enum, not a behavioral dependency.
#include "pm2/protocol.hpp"
#include "sys/socket.hpp"

namespace pm2::fabric {

namespace {

uint64_t parse_duration_ns(const std::string& v, const std::string& spec) {
  size_t pos = 0;
  double num = std::stod(v, &pos);
  std::string unit = v.substr(pos);
  double scale = 1.0;  // bare number = ns
  if (unit == "ns" || unit.empty()) {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    PM2_CHECK(false) << "fault plan: bad duration '" << v << "' in '" << spec
                     << "'";
  }
  return static_cast<uint64_t>(num * scale);
}

double parse_prob(const std::string& v, const std::string& spec) {
  double p = std::stod(v);
  PM2_CHECK(p >= 0.0 && p <= 1.0)
      << "fault plan: probability out of [0,1]: '" << v << "' in '" << spec
      << "'";
  return p;
}

double per_peer_or(const std::unordered_map<NodeId, double>& overrides,
                   NodeId dst, double fallback) {
  auto it = overrides.find(dst);
  return it == overrides.end() ? fallback : it->second;
}

}  // namespace

bool FaultPlan::active() const {
  return drop > 0 || dup > 0 || trunc > 0 ||
         (delay_ns > 0 && delay_p > 0) || flap_p > 0 || short_writes > 0 ||
         eintr > 0 || !partitions.empty() || !drop_per_peer.empty() ||
         !dup_per_peer.empty() || !trunc_per_peer.empty();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  size_t start = 0;
  bool delay_p_given = false;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    std::string tok = spec.substr(start, end - start);
    start = end + 1;
    if (tok.empty()) continue;
    size_t eq = tok.find('=');
    PM2_CHECK(eq != std::string::npos)
        << "fault plan: token without '=': '" << tok << "' in '" << spec
        << "'";
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    // Optional per-destination scope: key@node=value.
    bool scoped = false;
    NodeId peer = 0;
    if (size_t at = key.find('@'); at != std::string::npos) {
      scoped = true;
      peer = static_cast<NodeId>(std::stoul(key.substr(at + 1)));
      key = key.substr(0, at);
    }
    if (key == "seed") {
      plan.seed = std::stoull(val);
    } else if (key == "drop") {
      (scoped ? plan.drop_per_peer[peer] : plan.drop) =
          parse_prob(val, spec);
    } else if (key == "dup") {
      (scoped ? plan.dup_per_peer[peer] : plan.dup) = parse_prob(val, spec);
    } else if (key == "trunc") {
      (scoped ? plan.trunc_per_peer[peer] : plan.trunc) =
          parse_prob(val, spec);
    } else if (key == "delay") {
      plan.delay_ns = parse_duration_ns(val, spec);
    } else if (key == "delay_p") {
      (scoped ? plan.delay_p_per_peer[peer] : plan.delay_p) =
          parse_prob(val, spec);
      delay_p_given = true;
    } else if (key == "part") {
      size_t arrow = val.find("->");
      PM2_CHECK(arrow != std::string::npos)
          << "fault plan: part wants 'A->B', got '" << val << "'";
      plan.partitions.emplace_back(
          static_cast<NodeId>(std::stoul(val.substr(0, arrow))),
          static_cast<NodeId>(std::stoul(val.substr(arrow + 2))));
    } else if (key == "flap_p") {
      plan.flap_p = parse_prob(val, spec);
    } else if (key == "flap") {
      plan.flap_ns = parse_duration_ns(val, spec);
    } else if (key == "shortw") {
      plan.short_writes = std::stoull(val);
    } else if (key == "eintr") {
      plan.eintr = std::stoull(val);
    } else if (key == "all") {
      plan.all_types = std::stoull(val) != 0;
    } else {
      PM2_CHECK(false) << "fault plan: unknown key '" << key << "' in '"
                       << spec << "'";
    }
  }
  // A delay without an explicit probability means "delay every frame".
  if (plan.delay_ns > 0 && !delay_p_given && plan.delay_p_per_peer.empty())
    plan.delay_p = 1.0;
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("PM2_FAULT_PLAN");
  return parse(env == nullptr ? std::string() : std::string(env));
}

FaultFabric::FaultFabric(std::unique_ptr<Fabric> inner, FaultPlan plan)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      pass_through_(!plan_.active()),
      rng_(plan_.seed) {
  flap_until_.assign(inner_->n_nodes(), 0);
  // Forced-I/O budgets live in sys:: globals the socket send path consults;
  // they self-consume and are correctness-neutral (a short write or EINTR
  // only exercises the resume path), so leftovers are harmless.
  if (plan_.short_writes > 0) sys::fault_arm_short_writes(plan_.short_writes);
  if (plan_.eintr > 0) sys::fault_arm_eintr(plan_.eintr);
  if (!pass_through_) {
    PM2_INFO << "node " << inner_->node_id() << ": fault injection armed"
             << " (seed " << plan_.seed << ")";
  }
}

FaultFabric::~FaultFabric() = default;

bool FaultFabric::mutable_type(uint16_t type) const {
  if (plan_.all_types) return true;
  // Loss-tolerant traffic only: RPC requests/replies (deadline + tombstone
  // turn a loss into kTimeout), load gossip and heartbeats (periodic,
  // self-healing), and user channel messages.  Control frames (halt,
  // barriers, migration payloads and acks, negotiation) ride a reliable
  // stream with no retransmit layer — dropping them wedges the session
  // rather than exercising a recovery path.
  return type == kRpc || type == kReply || type == kReplyError ||
         type == kLoadInfo || type == kHeartbeat || type >= kUserBase;
}

FaultFabric::Action FaultFabric::decide(const Message& msg, uint64_t now,
                                        uint64_t* release_ns,
                                        uint64_t* trunc_len) {
  const NodeId dst = msg.dst;
  for (const auto& [a, b] : plan_.partitions) {
    if (a == inner_->node_id() && b == dst) {
      ++stats_.partitioned;
      return Action::kDrop;
    }
  }
  if (dst < flap_until_.size() && flap_until_[dst] > now) {
    ++stats_.flapped;
    return Action::kDrop;
  }
  if (plan_.flap_p > 0 && rng_.next_bool(plan_.flap_p)) {
    if (dst < flap_until_.size()) flap_until_[dst] = now + plan_.flap_ns;
    ++stats_.flapped;
    return Action::kDrop;
  }
  if (mutable_type(msg.type)) {
    double p = per_peer_or(plan_.drop_per_peer, dst, plan_.drop);
    if (p > 0 && rng_.next_bool(p)) {
      ++stats_.dropped;
      return Action::kDrop;
    }
    p = per_peer_or(plan_.trunc_per_peer, dst, plan_.trunc);
    if (p > 0 && msg.payload_size() > 0 && rng_.next_bool(p)) {
      *trunc_len = rng_.next_below(msg.payload_size());
      ++stats_.truncated;
      return Action::kTruncate;
    }
    p = per_peer_or(plan_.dup_per_peer, dst, plan_.dup);
    if (p > 0 && rng_.next_bool(p)) {
      ++stats_.duplicated;
      return Action::kDuplicate;
    }
  }
  double p = per_peer_or(plan_.delay_p_per_peer, dst, plan_.delay_p);
  if (plan_.delay_ns > 0 && p > 0 && rng_.next_bool(p)) {
    *release_ns = now + 1 + rng_.next_below(plan_.delay_ns);
    ++stats_.delayed;
    return Action::kDelay;
  }
  return Action::kForward;
}

void FaultFabric::send(Message msg) {
  if (pass_through_) {
    inner_->send(std::move(msg));
    return;
  }
  const uint64_t now = now_ns();
  flush_due(now);
  uint64_t release_ns = 0;
  uint64_t trunc_len = 0;
  Action act;
  {
    sys::SpinGuard g(lock_);
    act = decide(msg, now, &release_ns, &trunc_len);
  }
  switch (act) {
    case Action::kForward:
      inner_->send(std::move(msg));
      return;
    case Action::kDrop:
      // Borrowed chain segments only had to stay valid until send()
      // returns — dropping the frame honors that trivially.
      return;
    case Action::kDuplicate: {
      Message dup;
      dup.type = msg.type;
      dup.dst = msg.dst;
      dup.corr = msg.corr;
      dup.payload = msg.flat();  // copies; original stays intact
      inner_->send(std::move(msg));
      inner_->send(std::move(dup));
      return;
    }
    case Action::kTruncate: {
      msg.flat().resize(trunc_len);
      inner_->send(std::move(msg));
      return;
    }
    case Action::kDelay: {
      // The sender's borrowed bytes may vanish once we return: own them.
      msg.flat();
      {
        sys::SpinGuard g(lock_);
        delayed_.push_back(Delayed{release_ns, std::move(msg)});
      }
      // The daemon may be parked with a pre-clamp deadline; have it
      // re-evaluate so the frame is released on time.
      inner_->wake();
      return;
    }
  }
}

void FaultFabric::flush_due(uint64_t now) {
  std::vector<Message> due;
  {
    sys::SpinGuard g(lock_);
    for (auto it = delayed_.begin(); it != delayed_.end();) {
      if (it->release_ns <= now) {
        due.push_back(std::move(it->msg));
        it = delayed_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Message& m : due) inner_->send(std::move(m));
}

void FaultFabric::drain_delayed() {
  std::deque<Delayed> held;
  {
    sys::SpinGuard g(lock_);
    held.swap(delayed_);
  }
  for (Delayed& d : held) inner_->send(std::move(d.msg));
}

uint64_t FaultFabric::next_release() const {
  sys::SpinGuard g(lock_);
  uint64_t next = UINT64_MAX;
  for (const Delayed& d : delayed_) next = std::min(next, d.release_ns);
  return next;
}

std::optional<Message> FaultFabric::try_recv() {
  if (!pass_through_) flush_due(now_ns());
  return inner_->try_recv();
}

std::optional<Message> FaultFabric::recv_until(uint64_t deadline_ns) {
  if (pass_through_) return inner_->recv_until(deadline_ns);
  flush_due(now_ns());
  if (auto m = inner_->try_recv()) return m;
  // Clamp the park to the earliest delayed release so a held frame goes
  // out on schedule, not when the next unrelated wake happens.
  auto m = inner_->recv_until(std::min(deadline_ns, next_release()));
  flush_due(now_ns());
  if (m) return m;
  return inner_->try_recv();
}

FaultStats FaultFabric::stats() const {
  sys::SpinGuard g(lock_);
  FaultStats s = stats_;
  // Forced-I/O counts are process-wide (the sys:: hooks are consulted by
  // every socket connection in the process).
  s.short_writes = sys::fault_short_writes_fired();
  s.eintr = sys::fault_eintr_fired();
  return s;
}

std::unique_ptr<Fabric> wrap_with_faults(std::unique_ptr<Fabric> inner,
                                         const FaultPlan& plan) {
  if (!plan.active()) return inner;
  return std::make_unique<FaultFabric>(std::move(inner), plan);
}

}  // namespace pm2::fabric
