// In-process fabric: N logical nodes inside one process, each running on its
// own kernel thread, exchanging messages through per-node queues.
//
// This transport makes the full PM2 protocol stack (RPC, migration,
// negotiation) testable deterministically inside a single gtest process.
// Iso-addressing remains faithful: the logical nodes share one address
// space, but slot ownership is disjoint by construction, and migration
// still packs, decommits on the sender, transfers bytes and re-commits on
// the receiver — the same code path as the socket fabric.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "fabric/message.hpp"

namespace pm2::fabric {

class InProcHub;

/// One logical node's endpoint into the hub.
class InProcEndpoint final : public Fabric {
 public:
  InProcEndpoint(std::shared_ptr<InProcHub> hub, NodeId id);

  NodeId node_id() const override { return id_; }
  NodeId n_nodes() const override;
  /// Any scheduler worker may send directly: delivery serializes on the
  /// destination mailbox mutex, and the sender-side counters are atomic.
  bool concurrent_send_safe() const override { return true; }
  void send(Message msg) override;
  std::optional<Message> try_recv() override;
  std::optional<Message> recv_until(uint64_t deadline_ns) override;
  void wake() override;
  uint64_t bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t messages_sent() const override {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  uint64_t payload_copy_bytes() const override {
    return payload_copy_bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<InProcHub> hub_;
  NodeId id_;
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> payload_copy_bytes_{0};
};

/// Shared mailbox array.  Create once, then endpoint(i) for each node.
class InProcHub : public std::enable_shared_from_this<InProcHub> {
 public:
  explicit InProcHub(NodeId n_nodes);

  NodeId n_nodes() const { return static_cast<NodeId>(boxes_.size()); }
  std::unique_ptr<Fabric> endpoint(NodeId node);

  /// Simulated per-message latency in nanoseconds added on delivery (0 = off).
  /// Lets in-process benches approximate network-like conditions.
  void set_latency_ns(uint64_t ns) { latency_ns_ = ns; }

 private:
  friend class InProcEndpoint;
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    bool wake_pending = false;  // Fabric::wake() latch (consumed by take)
  };
  void deliver(Message msg);
  std::optional<Message> take_until(NodeId node, uint64_t deadline_ns);
  void wake(NodeId node);

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  uint64_t latency_ns_ = 0;
};

}  // namespace pm2::fabric
