// Madeleine channels: independent logical communication planes over one
// fabric (ref [2]: Madeleine multiplexed several channels — one per
// library/protocol — over one physical network, so PM2's control traffic,
// migrations and application messages never interfered).
//
// A ChannelMux owns the demultiplexing: each Channel gets a dense id and a
// receive queue; senders address (node, channel).  The mux does not poll
// the network itself — the owner (the PM2 comm daemon, or a test loop)
// feeds it every incoming kUser-range message, keeping the single-reader
// discipline of the fabric intact.
//
// Channels deliberately mirror madeleine's two receive styles:
//   * polling — try_receive() for latency-critical consumers;
//   * handler — a callback fired by the feeder for event-style consumers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fabric/message.hpp"
#include "madeleine/buffers.hpp"

namespace pm2::mad {

class ChannelMux;

/// One logical communication plane.
class Channel {
 public:
  using Handler = std::function<void(fabric::NodeId src, UnpackBuffer&)>;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  uint16_t id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Send a packed buffer to `node` on this channel.
  void send(fabric::NodeId node, PackBuffer&& buffer);

  /// Non-blocking receive of the oldest queued message.
  /// Returns (src, payload) or nullopt.
  std::optional<std::pair<fabric::NodeId, std::vector<uint8_t>>> try_receive();

  /// Install a handler: subsequent deliveries bypass the queue and invoke
  /// it synchronously from the feeder.  Pass nullptr to revert to queueing.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  size_t pending() const { return queue_.size(); }
  uint64_t delivered() const { return delivered_; }

 private:
  friend class ChannelMux;
  Channel(ChannelMux& mux, uint16_t id, std::string name)
      : mux_(mux), id_(id), name_(std::move(name)) {}
  void deliver(fabric::NodeId src, std::vector<uint8_t> payload);

  ChannelMux& mux_;
  uint16_t id_;
  std::string name_;
  Handler handler_;
  std::deque<std::pair<fabric::NodeId, std::vector<uint8_t>>> queue_;
  uint64_t delivered_ = 0;
};

/// Channel registry + demultiplexer bound to one fabric endpoint.
class ChannelMux {
 public:
  /// Message types at or above `type_base` belong to this mux; `type_base`
  /// + channel id is the wire discriminator.  Keep the base above the PM2
  /// control range (pm2::kUserBase).
  explicit ChannelMux(fabric::Fabric& fabric, uint16_t type_base = 100);

  /// Open a channel.  SPMD: all nodes must open channels in the same
  /// order so ids line up (same rule as RPC services).
  Channel& open(const std::string& name);

  /// True if `msg` belongs to this mux (caller routes others elsewhere).
  bool owns(const fabric::Message& msg) const;

  /// Deliver one incoming message to its channel.  Call from the fabric's
  /// single reader (comm daemon / test loop).
  void feed(fabric::Message&& msg);

  Channel* find(const std::string& name);
  size_t channel_count() const { return channels_.size(); }

 private:
  friend class Channel;
  fabric::Fabric& fabric_;
  uint16_t type_base_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace pm2::mad
