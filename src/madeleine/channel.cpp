#include "madeleine/channel.hpp"

#include "common/check.hpp"

namespace pm2::mad {

ChannelMux::ChannelMux(fabric::Fabric& fabric, uint16_t type_base)
    : fabric_(fabric), type_base_(type_base) {}

Channel& ChannelMux::open(const std::string& name) {
  PM2_CHECK(find(name) == nullptr) << "channel '" << name << "' already open";
  auto id = static_cast<uint16_t>(channels_.size());
  channels_.emplace_back(new Channel(*this, id, name));
  return *channels_.back();
}

bool ChannelMux::owns(const fabric::Message& msg) const {
  return msg.type >= type_base_ &&
         msg.type < type_base_ + channels_.size();
}

void ChannelMux::feed(fabric::Message&& msg) {
  PM2_CHECK(owns(msg)) << "message type " << msg.type << " not a channel";
  auto idx = static_cast<size_t>(msg.type - type_base_);
  channels_[idx]->deliver(msg.src, std::move(msg.flat()));
}

Channel* ChannelMux::find(const std::string& name) {
  for (auto& ch : channels_)
    if (ch->name() == name) return ch.get();
  return nullptr;
}

void Channel::send(fabric::NodeId node, PackBuffer&& buffer) {
  fabric::Message msg;
  msg.type = static_cast<uint16_t>(mux_.type_base_ + id_);
  msg.dst = node;
  // The packed chain goes to the fabric as-is: staged fields move, borrowed
  // regions (PackMode::kBorrow) gather straight from the caller's memory.
  msg.chain = buffer.take_chain();
  mux_.fabric_.send(std::move(msg));
}

void Channel::deliver(fabric::NodeId src, std::vector<uint8_t> payload) {
  ++delivered_;
  if (handler_) {
    UnpackBuffer unpack(payload);
    handler_(src, unpack);
    return;
  }
  queue_.emplace_back(src, std::move(payload));
}

std::optional<std::pair<fabric::NodeId, std::vector<uint8_t>>>
Channel::try_receive() {
  if (queue_.empty()) return std::nullopt;
  auto front = std::move(queue_.front());
  queue_.pop_front();
  return front;
}

}  // namespace pm2::mad
