#include "madeleine/buffers.hpp"

#include <cstring>

#include "common/check.hpp"

namespace pm2::mad {

void PackBuffer::pack_bytes(const void* data, size_t len, PackMode mode) {
  if (len == 0) return;
  Segment seg;
  seg.len = len;
  if (mode == PackMode::kBorrow) {
    seg.borrow = static_cast<const uint8_t*>(data);
  } else {
    seg.offset = staged_.size();
    const auto* p = static_cast<const uint8_t*>(data);
    staged_.insert(staged_.end(), p, p + len);
  }
  segments_.push_back(seg);
  total_ += len;
}

std::vector<uint8_t> PackBuffer::finalize() {
  std::vector<uint8_t> out;
  out.reserve(total_);
  for (const Segment& seg : segments_) {
    const uint8_t* src =
        seg.borrow != nullptr ? seg.borrow : staged_.data() + seg.offset;
    out.insert(out.end(), src, src + seg.len);
  }
  PM2_CHECK(out.size() == total_);
  staged_.clear();
  segments_.clear();
  total_ = 0;
  return out;
}

size_t UnpackBuffer::unpack_region(void* out, size_t capacity) {
  auto len = reader_.get<uint64_t>();
  PM2_CHECK(len <= capacity) << "unpack_region: destination too small ("
                             << capacity << " < " << len << ")";
  reader_.get_bytes(out, len);
  return len;
}

const uint8_t* UnpackBuffer::unpack_region_view(size_t* len) {
  auto n = reader_.get<uint64_t>();
  *len = n;
  return reader_.view_bytes(n);
}

}  // namespace pm2::mad
