#include "madeleine/buffers.hpp"

#include <atomic>
#include <cstring>
#include <utility>

#include "common/check.hpp"

namespace pm2::mad {

namespace {

// Per-kernel-thread cache of staged-chunk storage.  The RPC hot path makes
// one PackBuffer per call (args on the caller, reply on the service), so
// without recycling every call pays a chunk malloc/free pair.  The cache is
// keyed by kernel thread — under the SMP scheduler that is effectively a
// per-worker freelist; a chain released on a different worker than it was
// built on just refills that worker's cache.
constexpr size_t kMaxPooledChunk = 16 * 1024;
constexpr size_t kChunkCacheCap = 32;

thread_local std::vector<std::vector<uint8_t>> t_chunk_cache;

std::atomic<uint64_t> g_chunk_hits{0};
std::atomic<uint64_t> g_chunk_misses{0};

}  // namespace

uint64_t chunk_pool_hits() {
  return g_chunk_hits.load(std::memory_order_relaxed);
}
uint64_t chunk_pool_misses() {
  return g_chunk_misses.load(std::memory_order_relaxed);
}

void BufferChain::release_chunks() {
  for (std::vector<uint8_t>& chunk : chunks_) {
    if (chunk.capacity() < kMinChunk || chunk.capacity() > kMaxPooledChunk ||
        t_chunk_cache.size() >= kChunkCacheCap)
      continue;  // freed by the vector dtor as usual
    chunk.clear();
    t_chunk_cache.push_back(std::move(chunk));
  }
  chunks_.clear();
}

uint8_t* BufferChain::grow(size_t len) {
  if (chunks_.empty() ||
      chunks_.back().capacity() - chunks_.back().size() < len) {
    size_t cap = kMinChunk;
    if (reserve_hint_ > cap) cap = reserve_hint_;
    if (len > cap) cap = len;
    if (cap <= kMaxPooledChunk && !t_chunk_cache.empty() &&
        t_chunk_cache.back().capacity() >= cap) {
      chunks_.push_back(std::move(t_chunk_cache.back()));
      t_chunk_cache.pop_back();
      g_chunk_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (cap <= kMaxPooledChunk)
        g_chunk_misses.fetch_add(1, std::memory_order_relaxed);
      chunks_.emplace_back();
      chunks_.back().reserve(cap);
    }
  }
  std::vector<uint8_t>& chunk = chunks_.back();
  size_t at = chunk.size();
  chunk.resize(at + len);  // within capacity: no reallocation, stable ptrs
  return chunk.data() + at;
}

void BufferChain::append_copy(const void* data, size_t len) {
  if (len == 0) return;
  uint8_t* dst = grow(len);
  std::memcpy(dst, data, len);
  // Adjacent copies into the same chunk merge into one segment.
  if (!segments_.empty() &&
      segments_.back().data + segments_.back().len == dst) {
    segments_.back().len += len;
  } else {
    segments_.push_back(Segment{dst, len});
  }
  total_ += len;
  copied_ += len;
}

void BufferChain::append_borrow(const void* data, size_t len) {
  if (len == 0) return;
  const auto* p = static_cast<const uint8_t*>(data);
  if (!segments_.empty() && segments_.back().data + segments_.back().len == p) {
    segments_.back().len += len;
  } else {
    segments_.push_back(Segment{p, len});
  }
  total_ += len;
  borrowed_ += len;
}

void BufferChain::append_chain(BufferChain&& other) {
  for (std::vector<uint8_t>& chunk : other.chunks_)
    chunks_.push_back(std::move(chunk));  // data pointers survive the move
  segments_.insert(segments_.end(), other.segments_.begin(),
                   other.segments_.end());
  total_ += other.total_;
  copied_ += other.copied_;
  borrowed_ += other.borrowed_;
  other.clear();
}

void BufferChain::gather(uint8_t* dst) const {
  for (const Segment& seg : segments_) {
    std::memcpy(dst, seg.data, seg.len);
    dst += seg.len;
  }
}

std::vector<uint8_t> BufferChain::flatten() const {
  std::vector<uint8_t> out(total_);
  gather(out.data());
  return out;
}

std::vector<uint8_t> BufferChain::take_flat() {
  std::vector<uint8_t> out;
  if (single_owned_chunk()) {
    out = std::move(chunks_[0]);
  } else {
    out.resize(total_);
    gather(out.data());
  }
  clear();
  return out;
}

size_t BufferChain::seal() {
  if (borrowed_ == 0) return 0;
  // Gathering everything into one fresh chunk (rather than patching only
  // the borrowed segments) costs a few extra header bytes but leaves the
  // chain in single-owned-chunk form, so the receiver's take_flat() is a
  // move instead of another copy.
  std::vector<uint8_t> flat(total_);
  gather(flat.data());
  size_t copied = total_;
  size_t n = flat.size();
  clear();
  chunks_.push_back(std::move(flat));
  segments_.push_back(Segment{chunks_[0].data(), n});
  total_ = n;
  copied_ = n;
  return copied;
}

void BufferChain::clear() {
  release_chunks();
  segments_.clear();
  total_ = copied_ = borrowed_ = 0;
}

void PackBuffer::pack_bytes(const void* data, size_t len, PackMode mode) {
  if (mode == PackMode::kBorrow) {
    chain_.append_borrow(data, len);
  } else {
    chain_.append_copy(data, len);
  }
}

BufferChain PackBuffer::take_chain() {
  return std::exchange(chain_, BufferChain());
}

std::vector<uint8_t> PackBuffer::finalize() {
  std::vector<uint8_t> out = chain_.take_flat();
  PM2_CHECK(chain_.empty());
  return out;
}

size_t UnpackBuffer::unpack_region(void* out, size_t capacity) {
  auto len = reader_.get<uint64_t>();
  PM2_CHECK(len <= capacity) << "unpack_region: destination too small ("
                             << capacity << " < " << len << ")";
  reader_.get_bytes(out, len);
  return len;
}

const uint8_t* UnpackBuffer::unpack_region_view(size_t* len) {
  auto n = reader_.get<uint64_t>();
  *len = n;
  return reader_.view_bytes(n);
}

}  // namespace pm2::mad
