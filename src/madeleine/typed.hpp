// Typed argument marshalling for the v2 RPC layer.
//
// Maps C++ values onto the madeleine pack/unpack primitives so service
// signatures can be expressed as plain parameter lists:
//
//   wire type                 C++ type
//   ------------------------  -----------------------------------------
//   fixed-size scalar         any trivially copyable T (int, double, …)
//   length-prefixed string    std::string
//   length-prefixed array     std::vector<T>, T trivially copyable
//
// pack_values()/unpack_value() are the single source of truth for the
// typed wire encoding: Runtime::call<R> packs with them, the service
// wrapper unpacks with them, so both sides agree by construction.
#pragma once

#include <string>
#include <type_traits>
#include <vector>

#include "madeleine/buffers.hpp"

namespace pm2::mad {

template <typename T>
struct is_std_vector : std::false_type {};
template <typename T, typename A>
struct is_std_vector<std::vector<T, A>> : std::true_type {};

/// Does the typed layer know how to marshal T?  Pointers and raw arrays
/// are trivially copyable but deliberately rejected: packing them would
/// ship pointer bytes (meaningless on the peer) or a bare char array
/// where the handler expects a length-prefixed std::string.
template <typename T>
inline constexpr bool is_rpc_marshallable_v =
    !std::is_pointer_v<T> && !std::is_array_v<T> &&
    (std::is_same_v<T, std::string> || is_std_vector<T>::value ||
     std::is_trivially_copyable_v<T>);

template <typename T>
void pack_value(PackBuffer& pb, const T& v) {
  static_assert(!std::is_pointer_v<T> && !std::is_array_v<T>,
                "RPC arguments cannot be pointers or raw arrays — pass "
                "std::string (not a string literal) or std::vector");
  static_assert(is_rpc_marshallable_v<T>,
                "RPC argument must be trivially copyable, std::string, or "
                "std::vector<trivially-copyable>");
  if constexpr (std::is_same_v<T, std::string>) {
    pb.pack_string(v);
  } else if constexpr (is_std_vector<T>::value) {
    static_assert(std::is_trivially_copyable_v<typename T::value_type>);
    pb.pack<uint32_t>(static_cast<uint32_t>(v.size()));
    pb.pack_bytes(v.data(), v.size() * sizeof(typename T::value_type),
                  PackMode::kCopy);
  } else {
    pb.pack<T>(v);
  }
}

/// Pack every argument left to right.
template <typename... Args>
void pack_values(PackBuffer& pb, const Args&... args) {
  (pack_value(pb, args), ...);
}

template <typename T>
T unpack_value(UnpackBuffer& ub) {
  static_assert(!std::is_pointer_v<T> && !std::is_array_v<T>,
                "RPC arguments cannot be pointers or raw arrays — use "
                "std::string or std::vector");
  static_assert(is_rpc_marshallable_v<T>,
                "RPC argument must be trivially copyable, std::string, or "
                "std::vector<trivially-copyable>");
  if constexpr (std::is_same_v<T, std::string>) {
    return ub.unpack_string();
  } else if constexpr (is_std_vector<T>::value) {
    using E = typename T::value_type;
    static_assert(std::is_trivially_copyable_v<E>);
    auto n = ub.unpack<uint32_t>();
    // Validate the untrusted wire length before sizing the vector, so a
    // corrupt frame dies with the underrun diagnostic, not an OOM.
    PM2_CHECK(size_t{n} * sizeof(E) <= ub.remaining())
        << "serialized buffer underrun (vector length prefix)";
    if constexpr (sizeof(E) == 1) {
      // Byte payloads (the dominant RPC argument) construct straight from
      // a view of the wire: one copy, no zero-fill of the vector first.
      const uint8_t* src = ub.view_bytes(n);
      return T(reinterpret_cast<const E*>(src),
               reinterpret_cast<const E*>(src) + n);
    } else {
      // Wider elements may be unaligned on the wire: memcpy via
      // unpack_bytes keeps this well-defined.
      T v(n);
      ub.unpack_bytes(v.data(), size_t{n} * sizeof(E));
      return v;
    }
  } else {
    return ub.unpack<T>();
  }
}

}  // namespace pm2::mad
