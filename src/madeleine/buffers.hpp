// Madeleine-style pack/unpack buffers (paper ref [2]).
//
// PM2's migration and RPC layers describe outgoing data as a sequence of
// *pack* operations; the buffer gathers them (by copy for small fields, by
// reference for bulk regions like slot payloads) and flattens into one wire
// payload at finalization.  Unpacking mirrors the sequence.  The gather
// design is what kept Madeleine's migration path cheap: headers are staged,
// slot contents are appended with a single copy.
//
// Two packing modes, mirroring madeleine's send modes:
//  * kCopy   ("send_safer")  — bytes are copied immediately; the source may
//    change or vanish afterwards.
//  * kBorrow ("send_cheaper") — only the (pointer,len) is recorded; the
//    source must stay intact until finalize().  Used for slot images.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/serialize.hpp"

namespace pm2::mad {

enum class PackMode { kCopy, kBorrow };

class PackBuffer {
 public:
  PackBuffer() = default;
  explicit PackBuffer(size_t reserve_hint) { staged_.reserve(reserve_hint); }

  /// Fixed-size trivially copyable value (always copied).
  template <typename T>
  void pack(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pack_bytes(&v, sizeof(T), PackMode::kCopy);
  }

  void pack_string(const std::string& s) {
    pack<uint32_t>(static_cast<uint32_t>(s.size()));
    pack_bytes(s.data(), s.size(), PackMode::kCopy);
  }

  /// Length-prefixed byte region.
  void pack_region(const void* data, size_t len,
                   PackMode mode = PackMode::kCopy) {
    pack<uint64_t>(len);
    pack_bytes(data, len, mode);
  }

  /// Raw bytes, no length prefix (caller controls framing).
  void pack_bytes(const void* data, size_t len, PackMode mode);

  /// Total payload size so far.
  size_t size() const { return total_; }

  /// Flatten into a single contiguous payload.  Borrowed regions are copied
  /// now; the buffer is left empty.
  std::vector<uint8_t> finalize();

 private:
  struct Segment {
    const uint8_t* borrow = nullptr;  // non-null => borrowed region
    size_t offset = 0;                // into staged_ when copied
    size_t len = 0;
  };
  std::vector<uint8_t> staged_;  // copied bytes back-to-back
  std::vector<Segment> segments_;
  size_t total_ = 0;
};

/// Mirror of PackBuffer over a received payload.
class UnpackBuffer {
 public:
  UnpackBuffer(const void* data, size_t len) : reader_(data, len) {}
  explicit UnpackBuffer(const std::vector<uint8_t>& v)
      : reader_(v.data(), v.size()) {}

  template <typename T>
  T unpack() {
    return reader_.get<T>();
  }

  std::string unpack_string() { return reader_.get_string(); }

  /// Length-prefixed region: copies into `out` (must hold the prefix len).
  size_t unpack_region(void* out, size_t capacity);

  /// Length-prefixed region: zero-copy view into the underlying payload.
  const uint8_t* unpack_region_view(size_t* len);

  void unpack_bytes(void* out, size_t len) { reader_.get_bytes(out, len); }

  /// Advance past `len` bytes without copying them.
  void skip(size_t len) { reader_.view_bytes(len); }

  size_t remaining() const { return reader_.remaining(); }
  bool exhausted() const { return reader_.exhausted(); }

 private:
  pm2::ByteReader reader_;
};

}  // namespace pm2::mad
